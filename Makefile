# Build/test entry points. `make ci` is the gate: vet + full tests + the
# race-detector pass over the concurrent packages (the parallel explorer
# and the scheduler).

GO ?= go

.PHONY: build test vet race ci bench-explore bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The explorer's level workers and sharded seen-set, and sim's schedulers,
# are the only concurrent code; their tests are written to be meaningful
# under the race detector (multi-worker searches, concurrent seen-set adds).
race:
	$(GO) test -race ./internal/explore/... ./internal/sim/...

ci: vet test race

# Regenerate BENCH_explore.json (model-checker throughput + dedup memory).
bench-explore:
	$(GO) run ./cmd/perfsweep -exp e11 -json BENCH_explore.json

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...
