# Build/test entry points. `make ci` is the gate: vet + full tests + the
# race-detector pass over the concurrent packages (the parallel explorer,
# the scheduler and the swarm worker pool), plus the swarm and fuzz smoke
# runs.

GO ?= go

.PHONY: build test vet race swarm-smoke fuzz-smoke ci bench-explore bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The explorer's level workers and sharded seen-set, and sim's schedulers,
# are the only concurrent code; their tests are written to be meaningful
# under the race detector (multi-worker searches, concurrent seen-set adds).
race:
	$(GO) test -race ./internal/explore/... ./internal/sim/... ./internal/swarm/...

# A fixed-seed conformance sweep (~5s): every registered protocol over its
# claimed channels and tolerated faults must produce zero violations, and
# the known-bad abp-stuck target must be caught, shrunk and replayable.
# Fixed seeds keep the run byte-reproducible; exit 1 from the abp-stuck
# invocation is the expected "bug found" status, so it is inverted.
swarm-smoke:
	$(GO) run ./cmd/swarm -seeds 40 -steps 200 -workers 8 > /dev/null
	! $(GO) run ./cmd/swarm -protocols abp-stuck -faults loss -seeds 10 -steps 150 -workers 8 > /dev/null 2>&1

# Short fuzz runs of both fuzz targets: catches panics and containment
# breaks introduced by spec/channel changes without a dedicated fuzz job.
fuzz-smoke:
	$(GO) test -run FuzzCheckersContainment -fuzz FuzzCheckersContainment -fuzztime 10s ./internal/spec/
	$(GO) test -run FuzzChannelInvariants -fuzz FuzzChannelInvariants -fuzztime 10s ./internal/channel/

ci: vet test race swarm-smoke fuzz-smoke

# Regenerate BENCH_explore.json (model-checker throughput + dedup memory).
bench-explore:
	$(GO) run ./cmd/perfsweep -exp e11 -json BENCH_explore.json

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...
