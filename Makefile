# Build/test entry points. `make ci` is the gate: vet + the dlvet domain
# analyzers + full tests + the race-detector pass over the concurrent
# packages (the parallel explorer, the scheduler and the swarm worker
# pool), plus the swarm and fuzz smoke runs.

GO ?= go

.PHONY: build test vet lint lint-json race swarm-smoke fuzz-smoke obs-smoke ci bench-explore bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Domain-specific static analysis: the five dlvet analyzers enforce the
# paper's structural constraints (message-independence, the crashing
# property) and the checker's soundness invariants (fingerprint
# completeness, engine determinism, zero-cost disabled observability).
# Exit status is the OR of the failing analyzers' bits; see cmd/dlvet.
lint:
	$(GO) run ./cmd/dlvet

lint-json:
	$(GO) run ./cmd/dlvet -json

# The explorer's level workers and sharded seen-set, sim's schedulers,
# and the obs instruments (shared by all worker pools) are the concurrent
# code; their tests are written to be meaningful under the race detector
# (multi-worker searches, concurrent seen-set adds, parallel increments).
race:
	$(GO) test -race ./internal/explore/... ./internal/sim/... ./internal/swarm/... ./internal/obs/...

# A fixed-seed conformance sweep (~5s): every registered protocol over its
# claimed channels and tolerated faults must produce zero violations, and
# the known-bad abp-stuck target must be caught, shrunk and replayable.
# Fixed seeds keep the run byte-reproducible; exit 1 from the abp-stuck
# invocation is the expected "bug found" status, so it is inverted.
swarm-smoke:
	$(GO) run ./cmd/swarm -seeds 40 -steps 200 -workers 8 > /dev/null
	! $(GO) run ./cmd/swarm -protocols abp-stuck -faults loss -seeds 10 -steps 150 -workers 8 > /dev/null 2>&1

# Short fuzz runs of both fuzz targets: catches panics and containment
# breaks introduced by spec/channel changes without a dedicated fuzz job.
fuzz-smoke:
	$(GO) test -run FuzzCheckersContainment -fuzz FuzzCheckersContainment -fuzztime 10s ./internal/spec/
	$(GO) test -run FuzzChannelInvariants -fuzz FuzzChannelInvariants -fuzztime 10s ./internal/channel/

# End-to-end observability smoke: run both instrumented binaries with
# -trace/-metrics on short workloads, then obsreport must validate and
# summarise each trace (it exits non-zero on any malformed JSONL line).
obs-smoke:
	$(GO) run ./cmd/explore -protocol abp -crash r -msgs 1 -depth 20 -workers 2 \
		-trace /tmp/obs-smoke-explore.jsonl -metrics /tmp/obs-smoke-explore-metrics.json > /dev/null || test $$? -eq 1
	$(GO) run ./cmd/swarm -protocols abp -faults loss -seeds 5 -steps 100 -workers 2 \
		-trace /tmp/obs-smoke-swarm.jsonl -metrics /tmp/obs-smoke-swarm-metrics.json > /dev/null
	$(GO) run ./cmd/obsreport -msc /tmp/obs-smoke-explore.jsonl > /dev/null
	$(GO) run ./cmd/obsreport /tmp/obs-smoke-swarm.jsonl > /dev/null
	rm -f /tmp/obs-smoke-explore.jsonl /tmp/obs-smoke-explore-metrics.json \
		/tmp/obs-smoke-swarm.jsonl /tmp/obs-smoke-swarm-metrics.json

ci: vet lint test race swarm-smoke fuzz-smoke obs-smoke

# Regenerate BENCH_explore.json (model-checker throughput + dedup memory).
bench-explore:
	$(GO) run ./cmd/perfsweep -exp e11 -json BENCH_explore.json

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...
