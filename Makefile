# Build/test entry points. `make ci` is the gate: vet + the dlvet domain
# analyzers + full tests + the race-detector pass over the concurrent
# packages (the parallel explorer, the scheduler and the swarm worker
# pool), plus the swarm, fuzz, observability, checkpoint/resume and
# reduction A/B smoke runs.

GO ?= go

.PHONY: build test vet lint lint-json lint-sarif race swarm-smoke fuzz-smoke obs-smoke checkpoint-smoke reduction-smoke spill-smoke serve-smoke admin-smoke ci bench-explore bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Domain-specific static analysis: the eight dlvet analyzers enforce the
# paper's structural constraints (message-independence, the crashing
# property) and the engines' soundness invariants (fingerprint
# completeness, engine determinism, zero-cost disabled observability,
# Snapshot/Restore coverage, exact/canonical fingerprint parity, strict
# wire decoding), plus the stale-suppression audit (a rotted lint:ignore
# or fp:ignore line fails the run with bit 1024 — so `make ci` fails on
# stale suppressions). Exit status is the OR of the failing analyzers'
# bits, folded to a POSIX byte; see cmd/dlvet.
lint:
	$(GO) run ./cmd/dlvet

lint-json:
	$(GO) run ./cmd/dlvet -json

# SARIF 2.1.0 log for code-scanning consumers.
lint-sarif:
	$(GO) run ./cmd/dlvet -sarif dlvet.sarif

# The explorer's level workers and sharded seen-set, sim's schedulers,
# and the obs instruments (shared by all worker pools) are the concurrent
# code; their tests are written to be meaningful under the race detector
# (multi-worker searches, concurrent seen-set adds, parallel increments).
race:
	$(GO) test -race ./internal/explore/... ./internal/sim/... ./internal/swarm/... ./internal/obs/... ./internal/transport/...

# A fixed-seed conformance sweep (~5s): every registered protocol over its
# claimed channels and tolerated faults must produce zero violations, and
# the known-bad abp-stuck target must be caught, shrunk and replayable.
# Fixed seeds keep the run byte-reproducible; exit 1 from the abp-stuck
# invocation is the expected "bug found" status, so it is inverted.
swarm-smoke:
	$(GO) run ./cmd/swarm -seeds 40 -steps 200 -workers 8 > /dev/null
	! $(GO) run ./cmd/swarm -protocols abp-stuck -faults loss -seeds 10 -steps 150 -workers 8 > /dev/null 2>&1

# Short fuzz runs of the fuzz targets: catches panics and containment
# breaks introduced by spec/channel changes, and decoder panics or
# silent mis-resumes from corrupt checkpoint files, without a dedicated
# fuzz job.
fuzz-smoke:
	$(GO) test -run FuzzCheckersContainment -fuzz FuzzCheckersContainment -fuzztime 10s ./internal/spec/
	$(GO) test -run FuzzChannelInvariants -fuzz FuzzChannelInvariants -fuzztime 10s ./internal/channel/
	$(GO) test -run FuzzCheckpointDecode -fuzz FuzzCheckpointDecode -fuzztime 10s ./internal/explore/
	$(GO) test -run FuzzSpillRunDecode -fuzz FuzzSpillRunDecode -fuzztime 10s ./internal/explore/
	$(GO) test -run FuzzFrameDecode -fuzz FuzzFrameDecode -fuzztime 10s ./internal/transport/

# End-to-end observability smoke: run both instrumented binaries with
# -trace/-metrics on short workloads, then obsreport must validate and
# summarise each trace (it exits non-zero on any malformed JSONL line).
obs-smoke:
	$(GO) run ./cmd/explore -protocol abp -crash r -msgs 1 -depth 20 -workers 2 \
		-trace /tmp/obs-smoke-explore.jsonl -metrics /tmp/obs-smoke-explore-metrics.json > /dev/null || test $$? -eq 1
	$(GO) run ./cmd/swarm -protocols abp -faults loss -seeds 5 -steps 100 -workers 2 \
		-trace /tmp/obs-smoke-swarm.jsonl -metrics /tmp/obs-smoke-swarm-metrics.json > /dev/null
	$(GO) run ./cmd/obsreport -msc /tmp/obs-smoke-explore.jsonl > /dev/null
	$(GO) run ./cmd/obsreport /tmp/obs-smoke-swarm.jsonl > /dev/null
	rm -f /tmp/obs-smoke-explore.jsonl /tmp/obs-smoke-explore-metrics.json \
		/tmp/obs-smoke-swarm.jsonl /tmp/obs-smoke-swarm-metrics.json

# Kill/resume smoke, end to end through the real binary and real
# signals: run an exhaustive search with -checkpoint, SIGINT it
# mid-search (the distinct exit status 3 confirms the graceful stop and
# final checkpoint write), resume from the checkpoint file, and require
# the timing-free summary figures — state count, deepest path,
# exhausted flag and the certificate line — to match an uninterrupted
# baseline run exactly.
checkpoint-smoke:
	$(GO) build -o /tmp/ckpt-smoke-explore ./cmd/explore
	/tmp/ckpt-smoke-explore -protocol stenning -fifo=false -msgs 3 -depth 24 -workers 1 \
		> /tmp/ckpt-smoke-baseline.txt 2> /dev/null
	( /tmp/ckpt-smoke-explore -protocol stenning -fifo=false -msgs 3 -depth 24 -workers 1 \
		-checkpoint /tmp/ckpt-smoke.ckpt > /tmp/ckpt-smoke-interrupted.txt 2> /dev/null & \
	  pid=$$!; sleep 0.4; kill -INT $$pid; wait $$pid; test $$? -eq 3 )
	grep -q "interrupted at a level barrier — checkpoint written" /tmp/ckpt-smoke-interrupted.txt
	/tmp/ckpt-smoke-explore -protocol stenning -fifo=false -msgs 3 -depth 24 -workers 1 \
		-resume /tmp/ckpt-smoke.ckpt > /tmp/ckpt-smoke-resumed.txt 2> /dev/null
	grep -o "explored [0-9]* states" /tmp/ckpt-smoke-baseline.txt > /tmp/ckpt-smoke-want.txt
	grep -o "deepest path [0-9]*, exhausted=[a-z]*" /tmp/ckpt-smoke-baseline.txt >> /tmp/ckpt-smoke-want.txt
	tail -n 1 /tmp/ckpt-smoke-baseline.txt >> /tmp/ckpt-smoke-want.txt
	grep -o "explored [0-9]* states" /tmp/ckpt-smoke-resumed.txt > /tmp/ckpt-smoke-got.txt
	grep -o "deepest path [0-9]*, exhausted=[a-z]*" /tmp/ckpt-smoke-resumed.txt >> /tmp/ckpt-smoke-got.txt
	tail -n 1 /tmp/ckpt-smoke-resumed.txt >> /tmp/ckpt-smoke-got.txt
	cmp /tmp/ckpt-smoke-want.txt /tmp/ckpt-smoke-got.txt
	rm -f /tmp/ckpt-smoke-explore /tmp/ckpt-smoke.ckpt /tmp/ckpt-smoke-baseline.txt \
		/tmp/ckpt-smoke-interrupted.txt /tmp/ckpt-smoke-resumed.txt \
		/tmp/ckpt-smoke-want.txt /tmp/ckpt-smoke-got.txt

# Reduction A/B smoke through the real binary: the e11 workload with
# and without -symmetry -por must agree on everything the search
# certifies — deepest path, exhausted flag and the verdict line — while
# the reduced run explores strictly fewer states. This is the
# end-to-end twin of the soundness matrix in internal/explore.
reduction-smoke:
	$(GO) build -o /tmp/red-smoke-explore ./cmd/explore
	/tmp/red-smoke-explore -protocol stenning -fifo=false -msgs 3 -depth 24 -workers 1 \
		> /tmp/red-smoke-base.txt 2> /dev/null
	/tmp/red-smoke-explore -protocol stenning -fifo=false -msgs 3 -depth 24 -workers 1 \
		-symmetry -por > /tmp/red-smoke-reduced.txt 2> /dev/null
	grep -o "deepest path [0-9]*, exhausted=[a-z]*" /tmp/red-smoke-base.txt > /tmp/red-smoke-want.txt
	tail -n 1 /tmp/red-smoke-base.txt >> /tmp/red-smoke-want.txt
	grep -o "deepest path [0-9]*, exhausted=[a-z]*" /tmp/red-smoke-reduced.txt > /tmp/red-smoke-got.txt
	tail -n 1 /tmp/red-smoke-reduced.txt >> /tmp/red-smoke-got.txt
	cmp /tmp/red-smoke-want.txt /tmp/red-smoke-got.txt
	base=$$(grep -o "explored [0-9]* states" /tmp/red-smoke-base.txt | grep -o "[0-9]*"); \
	red=$$(grep -o "explored [0-9]* states" /tmp/red-smoke-reduced.txt | grep -o "[0-9]*"); \
	echo "reduction-smoke: $$base -> $$red states"; test "$$red" -lt "$$base"
	rm -f /tmp/red-smoke-explore /tmp/red-smoke-base.txt /tmp/red-smoke-reduced.txt \
		/tmp/red-smoke-want.txt /tmp/red-smoke-got.txt

# Memory-bound-run smoke through the real binary: the e11 workload with
# a deliberately tiny -spill-threshold (forcing run files onto disk and
# through the compacting merge) plus the frontier arena must certify
# exactly what the in-memory baseline certifies — state count, deepest
# path, exhausted flag and the verdict line — while visibly spilling.
# Then the strict run-file decoder, driven through -check-spill-run,
# must accept a minimal valid artifact and reject a truncated one with
# a clean diagnosis instead of a panic or silent short read.
spill-smoke:
	$(GO) build -o /tmp/spill-smoke-explore ./cmd/explore
	/tmp/spill-smoke-explore -protocol stenning -fifo=false -msgs 3 -depth 24 -workers 2 \
		> /tmp/spill-smoke-base.txt 2> /dev/null
	rm -rf /tmp/spill-smoke-dir
	/tmp/spill-smoke-explore -protocol stenning -fifo=false -msgs 3 -depth 24 -workers 2 \
		-spill-dir /tmp/spill-smoke-dir -spill-threshold 4096 -arena \
		> /tmp/spill-smoke-spill.txt 2> /dev/null
	grep -o "explored [0-9]* states" /tmp/spill-smoke-base.txt > /tmp/spill-smoke-want.txt
	grep -o "deepest path [0-9]*, exhausted=[a-z]*" /tmp/spill-smoke-base.txt >> /tmp/spill-smoke-want.txt
	tail -n 1 /tmp/spill-smoke-base.txt >> /tmp/spill-smoke-want.txt
	grep -o "explored [0-9]* states" /tmp/spill-smoke-spill.txt > /tmp/spill-smoke-got.txt
	grep -o "deepest path [0-9]*, exhausted=[a-z]*" /tmp/spill-smoke-spill.txt >> /tmp/spill-smoke-got.txt
	tail -n 1 /tmp/spill-smoke-spill.txt >> /tmp/spill-smoke-got.txt
	cmp /tmp/spill-smoke-want.txt /tmp/spill-smoke-got.txt
	grep -q "^spill: " /tmp/spill-smoke-spill.txt
	! grep -q "^spill: 0 spills" /tmp/spill-smoke-spill.txt
	printf '{"magic":"dl-explore-spillrun","version":1}\n{"end":1,"count":0,"crc":"dea4da88"}\n' \
		> /tmp/spill-smoke-run.sums
	/tmp/spill-smoke-explore -check-spill-run /tmp/spill-smoke-run.sums | grep -q "spill run ok: 0 sums"
	printf '{"magic":"dl-explore-spillrun","version":1}\n' > /tmp/spill-smoke-trunc.sums
	( ! /tmp/spill-smoke-explore -check-spill-run /tmp/spill-smoke-trunc.sums \
		> /dev/null 2> /tmp/spill-smoke-err.txt )
	grep -q "invalid spill run" /tmp/spill-smoke-err.txt
	rm -rf /tmp/spill-smoke-explore /tmp/spill-smoke-dir /tmp/spill-smoke-base.txt \
		/tmp/spill-smoke-spill.txt /tmp/spill-smoke-want.txt /tmp/spill-smoke-got.txt \
		/tmp/spill-smoke-run.sums /tmp/spill-smoke-trunc.sums /tmp/spill-smoke-err.txt

# Live-traffic smoke through the real binaries: a 100k-message loopback
# run must come back with a clean verdict, a TCP session through dlserve
# (address discovered via -addr-file, same idiom as checkpoint-smoke)
# must leave both sides clean, and a run whose faults exceed the
# protocol's envelope must exit with the distinct monitor-violation
# status 4 — the online monitors catching a real bug is itself a tested
# code path.
serve-smoke:
	$(GO) build -o /tmp/serve-smoke-dlserve ./cmd/dlserve
	$(GO) build -o /tmp/serve-smoke-loadgen ./cmd/loadgen
	/tmp/serve-smoke-loadgen -mode loopback -protocol gbn -msgs 100000 > /dev/null
	rm -f /tmp/serve-smoke-addr
	( /tmp/serve-smoke-dlserve -addr 127.0.0.1:0 -addr-file /tmp/serve-smoke-addr -sessions 1 \
		> /tmp/serve-smoke-server.txt 2>&1 & \
	  pid=$$!; \
	  for i in $$(seq 1 100); do test -s /tmp/serve-smoke-addr && break; sleep 0.1; done; \
	  /tmp/serve-smoke-loadgen -mode tcp -addr "$$(cat /tmp/serve-smoke-addr)" \
		-protocol gbn -msgs 2000 > /dev/null; \
	  wait $$pid )
	grep -q "DL^{t,r}: OK" /tmp/serve-smoke-server.txt
	( /tmp/serve-smoke-loadgen -mode loopback -protocol gbn -n 2 -w 1 -fifo=false \
		-msgs 30 -window 6 -faults reorder,loss -rate 0.3 -seed 1 > /dev/null 2>&1; \
	  test $$? -eq 4 )
	rm -f /tmp/serve-smoke-dlserve /tmp/serve-smoke-loadgen /tmp/serve-smoke-addr \
		/tmp/serve-smoke-server.txt

# Telemetry-plane smoke through the real binaries: dlserve runs with the
# admin endpoint, snapshot streaming and a server-side trace; loadgen
# drives a session while also tracing its side; mid-run /metrics and
# /healthz must answer (with the delivered counter visible and status
# ok); a SIGINT stops the server gracefully (exit 3, same contract as
# checkpoint-smoke); and obsreport -merge must join the two traces into
# one clean timeline.
admin-smoke:
	$(GO) build -o /tmp/admin-smoke-dlserve ./cmd/dlserve
	$(GO) build -o /tmp/admin-smoke-loadgen ./cmd/loadgen
	$(GO) build -o /tmp/admin-smoke-obsreport ./cmd/obsreport
	rm -f /tmp/admin-smoke-addr /tmp/admin-smoke-admin
	( /tmp/admin-smoke-dlserve -addr 127.0.0.1:0 -addr-file /tmp/admin-smoke-addr \
		-admin 127.0.0.1:0 -admin-file /tmp/admin-smoke-admin \
		-trace /tmp/admin-smoke-server.jsonl -snapshot-every 50ms \
		> /tmp/admin-smoke-server.txt 2>&1 & \
	  pid=$$!; \
	  for i in $$(seq 1 100); do test -s /tmp/admin-smoke-addr && test -s /tmp/admin-smoke-admin && break; sleep 0.1; done; \
	  /tmp/admin-smoke-loadgen -mode tcp -addr "$$(cat /tmp/admin-smoke-addr)" \
		-protocol gbn -msgs 2000 -trace /tmp/admin-smoke-client.jsonl > /tmp/admin-smoke-client.txt; \
	  curl -sf "http://$$(cat /tmp/admin-smoke-admin)/metrics" | grep -q "transport.msgs_delivered 2000"; \
	  curl -sf "http://$$(cat /tmp/admin-smoke-admin)/healthz" | grep -q '"status":"ok"'; \
	  kill -INT $$pid; wait $$pid; test $$? -eq 3 )
	grep -q "latency: p50=" /tmp/admin-smoke-client.txt
	/tmp/admin-smoke-obsreport -merge /tmp/admin-smoke-client.jsonl /tmp/admin-smoke-server.jsonl \
		> /tmp/admin-smoke-merge.txt
	grep -q "merged events" /tmp/admin-smoke-merge.txt
	! grep -q "violation at event" /tmp/admin-smoke-merge.txt
	rm -f /tmp/admin-smoke-dlserve /tmp/admin-smoke-loadgen /tmp/admin-smoke-obsreport \
		/tmp/admin-smoke-addr /tmp/admin-smoke-admin /tmp/admin-smoke-server.txt \
		/tmp/admin-smoke-client.txt /tmp/admin-smoke-server.jsonl \
		/tmp/admin-smoke-client.jsonl /tmp/admin-smoke-merge.txt

ci: vet lint test race swarm-smoke fuzz-smoke obs-smoke checkpoint-smoke reduction-smoke spill-smoke serve-smoke admin-smoke

# Regenerate BENCH_explore.json (model-checker throughput + dedup memory).
bench-explore:
	$(GO) run ./cmd/perfsweep -exp e11 -json BENCH_explore.json

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...
