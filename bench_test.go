// Package repro's benchmark harness regenerates every experiment in
// EXPERIMENTS.md (E1-E8), one benchmark family per experiment. Run with
//
//	go test -bench=. -benchmem
//
// The benchmarks measure the cost of the constructions and simulations;
// correctness of each experiment's outcome is asserted inside the loop so
// a regression cannot silently produce fast-but-wrong results.
package repro

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/perf"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/spec"
)

// BenchmarkE1CrashPump measures the Theorem 7.5 construction: pump length
// and cost against each crashing protocol over FIFO channels.
func BenchmarkE1CrashPump(b *testing.B) {
	cases := []struct {
		name string
		mk   func() core.Protocol
	}{
		{"abp", protocol.NewABP},
		{"gbn4w1", func() core.Protocol { return protocol.NewGoBackN(4, 1) }},
		{"gbn16w8", func() core.Protocol { return protocol.NewGoBackN(16, 8) }},
		{"stenning", protocol.NewStenning},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			cfg := adversary.CrashPumpConfig{
				// Hypotheses are verified once outside the loop; the bench
				// measures the construction itself.
				SkipVerify: true,
			}
			if err := sim.VerifyCrashing(c.mk(), sim.VerifyConfig{Trials: 2, StepsPerTrial: 40}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := adversary.CrashPump(c.mk(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Verdict.OK() {
					b.Fatal("pump failed to violate WDL")
				}
			}
		})
	}
}

// BenchmarkE2NonVolatileSurvives measures the randomized crash-torture run
// of the non-volatile protocol: the contrast experiment to E1.
func BenchmarkE2NonVolatileSurvives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(protocol.NewNonVolatile(), true)
		if err != nil {
			b.Fatal(err)
		}
		r := sim.NewRunner(sys)
		if err := r.WakeBoth(); err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		for ev := 0; ev < 20; ev++ {
			switch rng.Intn(4) {
			case 0:
				d := ioa.TR
				if rng.Intn(2) == 0 {
					d = ioa.RT
				}
				if err := r.Input(ioa.Crash(d)); err != nil {
					b.Fatal(err)
				}
				if err := r.Input(ioa.Wake(d)); err != nil {
					b.Fatal(err)
				}
			case 1:
				if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("b%d-%d", i, ev)))); err != nil {
					b.Fatal(err)
				}
			default:
				if _, err := r.RunFair(sim.RunConfig{MaxSteps: 30, Rand: rng}); err != nil && !errors.Is(err, sim.ErrStepLimit) {
					b.Fatal(err)
				}
			}
		}
		if _, err := r.RunFair(sim.RunConfig{}); err != nil {
			b.Fatal(err)
		}
		if v := spec.CheckDL(r.Behavior(), ioa.TR); !v.OK() {
			b.Fatalf("non-volatile protocol violated DL: %s", v)
		}
	}
}

// BenchmarkE3HeaderPump measures the Theorem 8.5 construction across
// header-space sizes: rounds scale with the modulus (n+1 rounds for
// Go-Back-N mod n).
func BenchmarkE3HeaderPump(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		n := n
		b.Run(fmt.Sprintf("gbn%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := adversary.HeaderPump(protocol.NewGoBackN(n, 1), adversary.HeaderPumpConfig{SkipVerify: true})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Verdict.OK() || rep.Rounds != n+1 {
					b.Fatalf("unexpected pump outcome: rounds=%d verdict=%s", rep.Rounds, rep.Verdict)
				}
			}
		})
	}
}

// BenchmarkE4StenningHeaderGrowth measures the header-growth run of
// Stenning's protocol over the reordering channel.
func BenchmarkE4StenningHeaderGrowth(b *testing.B) {
	for _, n := range []int{20, 100} {
		n := n
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := perf.MeasureStenningHeaderGrowth(n, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if !res.SpecOK || res.DistinctDataHeaders != n {
					b.Fatalf("unexpected growth result: %+v", res)
				}
			}
		})
	}
}

// BenchmarkE5WindowFIFOCorrect measures a lossy-FIFO delivery run of
// Go-Back-N with the full DL specification checked on the trace.
func BenchmarkE5WindowFIFOCorrect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(protocol.NewGoBackN(8, 3), true, core.WithChannelOptions(channel.WithLoss()))
		if err != nil {
			b.Fatal(err)
		}
		r := sim.NewRunner(sys)
		if err := r.WakeBoth(); err != nil {
			b.Fatal(err)
		}
		for m := 0; m < 8; m++ {
			if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("e5-%d", m)))); err != nil {
				b.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := r.RunFair(sim.RunConfig{MaxSteps: 4000, Rand: rng, AllowLoss: true}); err != nil {
			b.Fatal(err)
		}
		if _, err := r.RunFair(sim.RunConfig{}); err != nil {
			b.Fatal(err)
		}
		if v := spec.CheckDL(r.Behavior(), ioa.TR); !v.OK() {
			b.Fatalf("DL violated: %s", v)
		}
	}
}

// BenchmarkE6Goodput measures the discrete-time goodput simulator at three
// representative points of the sweep table.
func BenchmarkE6Goodput(b *testing.B) {
	cases := []perf.GoodputConfig{
		{Window: 1, Delay: 8, Loss: 0.05, Ticks: 20000, Seed: 1},
		{Window: 8, Delay: 8, Loss: 0.05, Ticks: 20000, Seed: 1},
		{Window: 32, Delay: 8, Loss: 0.05, Ticks: 20000, Seed: 1},
	}
	for _, cfg := range cases {
		cfg := cfg
		b.Run(fmt.Sprintf("W%d", cfg.Window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := perf.SimulateGoodput(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Delivered == 0 {
					b.Fatal("no deliveries")
				}
			}
		})
	}
}

// BenchmarkE6bDisciplines compares Go-Back-N and Selective Repeat at the
// lossy operating point where their goodput diverges (the E6b table).
func BenchmarkE6bDisciplines(b *testing.B) {
	for _, d := range []perf.Discipline{perf.GoBackN, perf.SelectiveRepeat} {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			var goodput float64
			for i := 0; i < b.N; i++ {
				res, err := perf.SimulateGoodput(perf.GoodputConfig{
					Discipline: d, Window: 16, Delay: 8, Loss: 0.1, Ticks: 20000, Seed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				goodput = res.Goodput
			}
			b.ReportMetric(goodput, "goodput")
		})
	}
}

// BenchmarkE7Channel measures the permissive channel substrate: delivery
// throughput on both channel kinds and delivery-set surgery.
func BenchmarkE7Channel(b *testing.B) {
	bench := func(b *testing.B, fifo bool) {
		var c *channel.Channel
		if fifo {
			c = channel.NewPermissiveFIFO(ioa.TR)
		} else {
			c = channel.NewPermissive(ioa.TR)
		}
		const pipeline = 32
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := c.Start()
			var err error
			for k := 0; k < pipeline; k++ {
				pkt := ioa.Packet{ID: uint64(k + 1), Header: "h", Payload: "m"}
				if st, err = c.Step(st, ioa.SendPkt(ioa.TR, pkt)); err != nil {
					b.Fatal(err)
				}
			}
			for k := 0; k < pipeline; k++ {
				pkt := ioa.Packet{ID: uint64(k + 1), Header: "h", Payload: "m"}
				if st, err = c.Step(st, ioa.ReceivePkt(ioa.TR, pkt)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("permissive", func(b *testing.B) { bench(b, false) })
	b.Run("fifo", func(b *testing.B) { bench(b, true) })
	b.Run("deliveryset-del", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := channel.IdentityDeliverySet()
			for j := 0; j < 32; j++ {
				s = s.Del(j%7 + 1)
			}
			if !s.Monotone() {
				b.Fatal("del broke monotonicity")
			}
		}
	})
}

// BenchmarkE9ChainDepth is the crash-pump ablation: protocols whose
// failure-free reference execution alternates more between the stations
// force deeper Lemma 7.3 chains. Compared: ABP (no handshake) vs. the
// handshake protocol, plus selective repeat.
func BenchmarkE9ChainDepth(b *testing.B) {
	cases := []struct {
		name string
		mk   func() core.Protocol
	}{
		{"abp", protocol.NewABP},
		{"handshake", protocol.NewHandshake},
		{"sr8w4", func() core.Protocol { return protocol.NewSelectiveRepeat(8, 4) }},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var phases, steps int
			for i := 0; i < b.N; i++ {
				rep, err := adversary.CrashPump(c.mk(), adversary.CrashPumpConfig{SkipVerify: true})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Verdict.OK() {
					b.Fatal("pump failed")
				}
				phases, steps = len(rep.Phases), rep.PumpSteps
			}
			b.ReportMetric(float64(phases), "phases")
			b.ReportMetric(float64(steps), "pump-steps")
		})
	}
}

// BenchmarkE10KBoundAblation is the Theorem 8.5 k-ablation: the
// fragmenting protocol with f fragments per message is f-bounded, so the
// pump's round count grows with both the header space and k.
func BenchmarkE10KBoundAblation(b *testing.B) {
	for _, f := range []int{1, 2, 3} {
		f := f
		b.Run(fmt.Sprintf("f%d", f), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				rep, err := adversary.HeaderPump(protocol.NewFragmenting(2, f), adversary.HeaderPumpConfig{SkipVerify: true})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Verdict.OK() {
					b.Fatal("pump failed")
				}
				rounds = rep.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkE11ModelCheck measures the bounded model checker on the two
// search problems that mirror the theorems — finding the reordering bug in
// Go-Back-N mod 2 over C̄ and finding the crash bug in ABP over Ĉ — plus
// an exhaustive verification (Stenning over C̄, the largest standard state
// space). Each case runs sequentially and with a 4-worker pool; on a
// multi-core machine the parallel variants show the level-synchronous BFS
// speedup, and on any machine they exercise the sharded seen-set.
func BenchmarkE11ModelCheck(b *testing.B) {
	cases := []struct {
		name      string
		fifo      bool
		mk        func() core.Protocol
		cfg       explore.Config
		violating bool
	}{
		{
			name: "find-reordering-bug", fifo: false,
			mk: func() core.Protocol { return protocol.NewGoBackN(2, 1) },
			cfg: explore.Config{
				Inputs: []ioa.Action{
					ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
					ioa.SendMsg(ioa.TR, "a"), ioa.SendMsg(ioa.TR, "b"), ioa.SendMsg(ioa.TR, "c"),
				},
				Monitor: explore.NewSafetyMonitor(false), MaxDepth: 26, MaxInTransit: 3,
			},
			violating: true,
		},
		{
			name: "find-crash-bug", fifo: true,
			mk: protocol.NewABP,
			cfg: explore.Config{
				Inputs: []ioa.Action{
					ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
					ioa.SendMsg(ioa.TR, "a"),
					ioa.Crash(ioa.RT), ioa.Wake(ioa.RT),
				},
				Monitor: explore.NewSafetyMonitor(false), MaxDepth: 20, MaxInTransit: 2,
			},
			violating: true,
		},
		{
			name: "verify-stenning", fifo: false,
			mk: protocol.NewStenning,
			cfg: explore.Config{
				Inputs: []ioa.Action{
					ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
					ioa.SendMsg(ioa.TR, "a"), ioa.SendMsg(ioa.TR, "b"), ioa.SendMsg(ioa.TR, "c"),
				},
				Monitor: explore.NewSafetyMonitor(true), MaxDepth: 24, MaxInTransit: 3,
			},
		},
	}
	for _, c := range cases {
		c := c
		for _, workers := range []int{1, 4} {
			workers := workers
			b.Run(fmt.Sprintf("%s/w%d", c.name, workers), func(b *testing.B) {
				var states int
				for i := 0; i < b.N; i++ {
					sys, err := core.NewSystem(c.mk(), c.fifo)
					if err != nil {
						b.Fatal(err)
					}
					cfg := c.cfg
					cfg.Workers = workers
					res, err := explore.BFS(sys, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if c.violating != (res.Violation != nil) {
						b.Fatalf("violation = %v, want violating=%t", res.Violation, c.violating)
					}
					states = res.StatesExplored
				}
				b.ReportMetric(float64(states), "states")
			})
		}
	}
}

// BenchmarkFingerprint compares the string Fingerprint path against the
// AppendFingerprint fast path on representative states — the composed
// system state of a mid-flight Go-Back-N run, its channel residual, and a
// populated safety monitor. The append variants should be allocation-free
// (see -benchmem).
func BenchmarkFingerprint(b *testing.B) {
	sys, err := core.NewSystem(protocol.NewGoBackN(4, 2), true)
	if err != nil {
		b.Fatal(err)
	}
	r := sim.NewRunner(sys)
	if err := r.WakeBoth(); err != nil {
		b.Fatal(err)
	}
	for m := 0; m < 3; m++ {
		if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("f%d", m)))); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := r.RunFair(sim.RunConfig{MaxSteps: 25}); err != nil && !errors.Is(err, sim.ErrStepLimit) {
		b.Fatal(err)
	}
	cs, ok := r.State().(ioa.CompositeState)
	if !ok {
		b.Fatalf("state is %T", r.State())
	}
	chState, err := sys.ChannelState(cs, ioa.TR)
	if err != nil {
		b.Fatal(err)
	}
	// Box once: the explorer's dedup loop passes states that are already
	// interfaces, so the boxing cost is not part of the measured path.
	var chIface ioa.State = chState
	mon := explore.Monitor(explore.NewSafetyMonitor(true))
	for _, a := range []ioa.Action{
		ioa.SendMsg(ioa.TR, "f0"), ioa.SendMsg(ioa.TR, "f1"), ioa.ReceiveMsg(ioa.TR, "f0"),
	} {
		mon, _ = mon.Step(a)
	}
	monAppend, ok := mon.(ioa.AppendFingerprinter)
	if !ok {
		b.Fatalf("monitor %T lacks AppendFingerprint", mon)
	}

	buf := make([]byte, 0, 512)
	b.Run("composite/string", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(cs.Fingerprint()) == 0 {
				b.Fatal("empty fingerprint")
			}
		}
	})
	b.Run("composite/append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = cs.AppendFingerprint(buf[:0])
			if len(buf) == 0 {
				b.Fatal("empty fingerprint")
			}
		}
	})
	b.Run("residual/string", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sys.CT.Residual(chIface)
			if err != nil || len(res) == 0 {
				b.Fatalf("residual %q: %v", res, err)
			}
		}
	})
	b.Run("residual/append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = sys.CT.AppendResidual(buf[:0], chIface)
			if err != nil || len(buf) == 0 {
				b.Fatalf("residual %q: %v", buf, err)
			}
		}
	})
	b.Run("monitor/string", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(mon.Fingerprint()) == 0 {
				b.Fatal("empty fingerprint")
			}
		}
	})
	b.Run("monitor/append", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = monAppend.AppendFingerprint(buf[:0])
			if len(buf) == 0 {
				b.Fatal("empty fingerprint")
			}
		}
	})
}

// BenchmarkE8FailureFree measures the Lemma 4.1 sanity run — one message,
// wake to delivery to quiescence — for each protocol.
func BenchmarkE8FailureFree(b *testing.B) {
	cases := []struct {
		name string
		mk   func() core.Protocol
	}{
		{"abp", protocol.NewABP},
		{"gbn8w3", func() core.Protocol { return protocol.NewGoBackN(8, 3) }},
		{"sr8w4", func() core.Protocol { return protocol.NewSelectiveRepeat(8, 4) }},
		{"frag4f2", func() core.Protocol { return protocol.NewFragmenting(4, 2) }},
		{"handshake", protocol.NewHandshake},
		{"stenning", protocol.NewStenning},
		{"nonvolatile", protocol.NewNonVolatile},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := c.mk()
				sys, err := core.NewSystem(p, p.Props.RequiresFIFO)
				if err != nil {
					b.Fatal(err)
				}
				r := sim.NewRunner(sys)
				if err := r.WakeBoth(); err != nil {
					b.Fatal(err)
				}
				if err := r.Input(ioa.SendMsg(ioa.TR, "m")); err != nil {
					b.Fatal(err)
				}
				quiescent, err := r.RunFair(sim.RunConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if !quiescent {
					b.Fatal("no quiescence")
				}
				if v := spec.CheckWDL(r.Behavior(), ioa.TR); !v.OK() {
					b.Fatalf("WDL violated: %s", v)
				}
			}
		})
	}
}
