package lint

import (
	"go/ast"
	"sort"

	"go/types"
)

// CanonParity guards the symmetry quotient introduced with the
// explorer's -symmetry flag: a type that implements both
// AppendFingerprint (exact dedup) and AppendCanonFingerprint (dedup up
// to packet-ID renaming) must fold the same receiver field set into
// both encodings. A field present in the exact fingerprint but missing
// from the canonical one makes the quotient coarser than the state
// space — two states differing only in that field collapse onto one
// canonical representative and the explorer silently merges
// non-equivalent states, which is exactly the unsoundness the PR 6
// symmetry reduction had to rule out. The converse gap makes the
// quotient finer than intended, which is sound but defeats the
// reduction, so it is flagged too.
//
// Fields that differ on purpose — the renaming section itself, where
// the canonical encoding substitutes ioa.Canon indices for raw packet
// IDs — carry a `// canon:ignore <reason>` comment on the field
// declaration.
var CanonParity = &Analyzer{
	Name: "canonparity",
	Doc:  "AppendFingerprint and AppendCanonFingerprint must fold the same field set",
	Bit:  256,
	Run:  runCanonParity,
}

func runCanonParity(p *Package, _ *Facts) []Diagnostic {
	type methods struct {
		plain, canon *ast.FuncDecl
	}
	byType := make(map[string]*methods)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			typeName := recvTypeName(fd.Recv.List[0].Type)
			if typeName == "" {
				continue
			}
			switch fd.Name.Name {
			case "AppendFingerprint", "AppendCanonFingerprint":
				if byType[typeName] == nil {
					byType[typeName] = &methods{}
				}
				if fd.Name.Name == "AppendFingerprint" {
					byType[typeName].plain = fd
				} else {
					byType[typeName].canon = fd
				}
			}
		}
	}

	names := make([]string, 0, len(byType))
	for n, m := range byType {
		if m.plain != nil && m.canon != nil {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	var diags []Diagnostic
	for _, typeName := range names {
		m := byType[typeName]
		diags = append(diags, checkCanonPair(p, typeName, m.plain, m.canon)...)
	}
	return diags
}

func checkCanonPair(p *Package, typeName string, plain, canon *ast.FuncDecl) []Diagnostic {
	plainRefs, esc1 := receiverFieldRefs(p, plain)
	canonRefs, esc2 := receiverFieldRefs(p, canon)
	if esc1 || esc2 {
		// The receiver escapes one of the bodies whole (delegation to a
		// helper that encodes it wholesale); field-level comparison would
		// be guesswork. Stay conservative.
		return nil
	}

	// Compare only the receiver's own fields: both bodies also touch
	// fields of nested values (pkt.ID vs a canon index), and those are
	// the legitimate encoding difference, not a parity violation.
	obj, ok := p.Types.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	own := make(map[*types.Var]bool)
	for i := 0; i < st.NumFields(); i++ {
		own[st.Field(i)] = true
	}
	for v := range plainRefs {
		if !own[v] {
			delete(plainRefs, v)
		}
	}
	for v := range canonRefs {
		if !own[v] {
			delete(canonRefs, v)
		}
	}

	decl := p.structDecl(typeName)
	var diags []Diagnostic
	flag := func(fieldName, present, absent string, missing *ast.FuncDecl, consequence string) {
		node, comment, markerPos := fieldDeclOf(p, decl, fieldName, "canon:ignore")
		if node == nil {
			node = missing
		}
		if reason, found := markerReason(comment, "canon:ignore"); found {
			if reason != "" {
				p.useMarker(markerPos)
				return
			}
			diags = append(diags, p.diag("canonparity", node,
				"field %s.%s has a canon:ignore annotation without a reason; state why the field is encoded differently in %s and %s",
				typeName, fieldName, present, absent))
			return
		}
		diags = append(diags, p.diag("canonparity", node,
			"field %s.%s is folded into %s but not %s: %s (encode it in both, or annotate `// canon:ignore <reason>`)",
			typeName, fieldName, present, absent, consequence))
	}

	// Deterministic order: walk each side's refs sorted by field name.
	for _, v := range sortedVars(plainRefs) {
		if !canonRefs[v] {
			flag(v.Name(), "AppendFingerprint", "AppendCanonFingerprint", canon,
				"the symmetry quotient is coarser than the state space, so -symmetry can merge non-equivalent states")
		}
	}
	for _, v := range sortedVars(canonRefs) {
		if !plainRefs[v] {
			flag(v.Name(), "AppendCanonFingerprint", "AppendFingerprint", plain,
				"exact dedup collides states the canonical encoding distinguishes, so unreduced exploration can cut off reachable executions")
		}
	}
	return diags
}

func sortedVars(set map[*types.Var]bool) []*types.Var {
	vars := make([]*types.Var, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name() < vars[j].Name() })
	return vars
}
