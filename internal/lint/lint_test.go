package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests load each testdata package under an assumed import
// path (so package-scoped analyzers see the scope they apply to), run
// one analyzer over it, and match the diagnostics against the `// want
// "substr"` comments in the sources — every want must be hit, and every
// diagnostic must be wanted.

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// expectation is one `// want` comment: a required message substring at
// a file:line.
type expectation struct {
	file string
	line int
	sub  string
	hit  bool
}

// parseWants scans a testdata directory for want comments. A want
// comment on a code line applies to that line; a want comment alone on
// its line applies to the next line (for sites whose trailing comment
// position is already taken, e.g. a reasonless fp:ignore).
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			m := wantRe.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			target := line
			if strings.HasPrefix(strings.TrimSpace(text), "//") {
				target = line + 1 // standalone want comment covers the next line
			}
			wants = append(wants, &expectation{file: e.Name(), line: target, sub: m[1]})
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if len(wants) == 0 {
		t.Fatalf("no // want comments found in %s", dir)
	}
	return wants
}

func TestAnalyzersGolden(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dir      string
		asPath   string
		analyzer *Analyzer
	}{
		{"fingerprint", "repro/internal/lint/fptest", Fingerprint},
		{"determinism", "repro/internal/sim/dtest", Determinism},
		{"msgindep", "repro/internal/protocol/mtest", MsgIndep},
		{"obsdiscipline", "repro/internal/lint/odtest", ObsDiscipline},
		{"obsnil", "repro/internal/obs", ObsDiscipline},
		{"crashreset", "repro/internal/protocol/ctest", CrashReset},
		{"snapshotcoverage", "repro/internal/lint/sctest", SnapshotCoverage},
		{"canonparity", "repro/internal/lint/cptest", CanonParity},
		{"strictdecode", "repro/internal/lint/sdtest", StrictDecode},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg, err := LoadDir(root, dir, tc.asPath)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			got := Run([]*Package{pkg}, []*Analyzer{tc.analyzer})
			wants := parseWants(t, dir)
			for _, d := range got {
				if !matchWant(wants, d) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("missing diagnostic at %s:%d containing %q", w.file, w.line, w.sub)
				}
			}
		})
	}
}

func matchWant(wants []*expectation, d Diagnostic) bool {
	base := filepath.Base(d.Pos.Filename)
	for _, w := range wants {
		if !w.hit && w.file == base && w.line == d.Pos.Line && strings.Contains(d.Message, w.sub) {
			w.hit = true
			return true
		}
	}
	return false
}

// TestGoldenExitCodes asserts each seeded violation class surfaces
// through its own exit-status bit.
func TestGoldenExitCodes(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dir    string
		asPath string
		bit    int
	}{
		{"fingerprint", "repro/internal/lint/fptest", 4},
		{"determinism", "repro/internal/sim/dtest", 8},
		{"msgindep", "repro/internal/protocol/mtest", 16},
		{"obsnil", "repro/internal/obs", 32},
		{"crashreset", "repro/internal/protocol/ctest", 64},
		{"snapshotcoverage", "repro/internal/lint/sctest", 128},
		{"canonparity", "repro/internal/lint/cptest", 256},
		{"strictdecode", "repro/internal/lint/sdtest", 512},
	}
	for _, tc := range cases {
		pkg, err := LoadDir(root, filepath.Join("testdata", "src", tc.dir), tc.asPath)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", tc.dir, err)
		}
		diags := Run([]*Package{pkg}, All())
		if code := ExitCode(diags); code&tc.bit == 0 {
			t.Errorf("%s: exit code %d does not include bit %d", tc.dir, code, tc.bit)
		}
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("fingerprint,crashreset")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "fingerprint" || as[1].Name != "crashreset" {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) should fail")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("ByName empty should fail")
	}
}

func TestExitCodeBitsDisjoint(t *testing.T) {
	seen := map[int]string{}
	for _, a := range All() {
		if a.Bit < 4 || a.Bit&(a.Bit-1) != 0 {
			t.Errorf("%s: bit %d is not a power of two >= 4", a.Name, a.Bit)
		}
		if prev, dup := seen[a.Bit]; dup {
			t.Errorf("bit %d shared by %s and %s", a.Bit, prev, a.Name)
		}
		seen[a.Bit] = a.Name
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	diags := []Diagnostic{{Analyzer: "determinism", Message: "m"}}
	diags[0].Pos.Filename = "/x/y.go"
	diags[0].Pos.Line = 3
	if err := WriteJSON(&sb, "/x", diags); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"count": 1`, `"analyzer": "determinism"`, `"file": "y.go"`, `"line": 3`, `"exit_code": 8`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON output missing %s:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := WriteJSON(&sb, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"diagnostics": []`) {
		t.Errorf("empty diagnostics should encode as [], got %s", sb.String())
	}
}

// TestAuditGolden runs the full analyzer set over the suppression
// fixture — so live annotations get consumed — and matches the audit's
// findings against the fixture's want comments: stale and reasonless
// suppressions are flagged, live ones are not.
func TestAuditGolden(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", "suppression")
	pkg, err := LoadDir(root, dir, "repro/internal/sim/satest")
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	pkgs := []*Package{pkg}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("fixture should be clean under the analyzers themselves, got: %s", d)
	}
	audit := AuditSuppressions(pkgs)
	wants := parseWants(t, dir)
	for _, d := range audit {
		if d.Analyzer != AuditName {
			t.Errorf("audit diagnostic with analyzer %q, want %q", d.Analyzer, AuditName)
		}
		if !matchWant(wants, d) {
			t.Errorf("unexpected audit diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing audit diagnostic at %s:%d containing %q", w.file, w.line, w.sub)
		}
	}
	if code := ExitCode(audit); code&AuditBit == 0 {
		t.Errorf("audit findings must set AuditBit: got %d", code)
	}
}

// TestProcessStatus pins the POSIX fold: logical bits above 255 force
// status bit 128 so an overflowing code never reads as success.
func TestProcessStatus(t *testing.T) {
	cases := []struct{ code, status int }{
		{0, 0},
		{4, 4},
		{12, 12},
		{128, 128},
		{252, 252},
		{256, 128},
		{512, 128},
		{1024, 128},
		{256 | 4, 132},
		{1024 | 8 | 64, 200},
	}
	for _, tc := range cases {
		if got := ProcessStatus(tc.code); got != tc.status {
			t.Errorf("ProcessStatus(%d) = %d, want %d", tc.code, got, tc.status)
		}
	}
	// No analyzer-producible code (any OR of bits >= 4) may fold to 0.
	for code := 4; code < 4096; code += 4 {
		if ProcessStatus(code) == 0 {
			t.Fatalf("ProcessStatus(%d) = 0: findings read as success", code)
		}
	}
}

func TestWriteSARIF(t *testing.T) {
	var sb strings.Builder
	diags := []Diagnostic{
		{Analyzer: "canonparity", Message: "field parity broken"},
		{Analyzer: AuditName, Message: "stale suppression"},
	}
	diags[0].Pos.Filename = "/m/internal/protocol/abp.go"
	diags[0].Pos.Line = 12
	diags[0].Pos.Column = 2
	diags[1].Pos.Filename = "/m/internal/sim/runner.go"
	diags[1].Pos.Line = 30
	if err := WriteSARIF(&sb, "/m", diags); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wants := []string{
		`"version": "2.1.0"`,
		`"name": "dlvet"`,
		`"ruleId": "canonparity"`,
		`"ruleId": "suppression"`,
		`"uri": "internal/protocol/abp.go"`,
		`"startLine": 12`,
		`"startColumn": 2`,
		`"level": "error"`,
	}
	for _, a := range All() {
		wants = append(wants, fmt.Sprintf(`"id": %q`, a.Name))
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("SARIF output missing %s", want)
		}
	}
	sb.Reset()
	if err := WriteSARIF(&sb, "", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"results": []`) {
		t.Errorf("empty run should encode results as [], got %s", sb.String())
	}
}

// TestIgnoreRequiresReason pins the suppression contract: a lint:ignore
// without a reason suppresses nothing.
func TestIgnoreRequiresReason(t *testing.T) {
	p := &Package{}
	_ = p
	d := Diagnostic{Analyzer: "determinism"}
	d.Pos.Filename = "f.go"
	d.Pos.Line = 2
	pkg := &Package{ignores: map[string][]string{}}
	if pkg.suppressed(d) {
		t.Fatal("no annotations: must not suppress")
	}
	pkg2 := &Package{ignores: map[string][]string{ignoreKey("determinism", "f.go", 2): {"f.go:2"}}}
	if !pkg2.suppressed(d) {
		t.Fatal("annotated line must suppress")
	}
	if !pkg2.usedAnnots["f.go:2"] {
		t.Fatal("suppression must record the consumed annotation for the audit")
	}
	if pkg2.suppressed(Diagnostic{Analyzer: "msgindep", Pos: d.Pos}) {
		t.Fatal("annotation is per-analyzer")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "fingerprint", Message: "boom"}
	d.Pos.Filename = "a.go"
	d.Pos.Line = 7
	d.Pos.Column = 2
	if got, want := d.String(), "a.go:7:2: [fingerprint] boom"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if fmt.Sprint(ExitCode(nil)) != "0" {
		t.Fatal("no diagnostics must exit 0")
	}
}
