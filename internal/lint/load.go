package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The loader resolves packages without any dependency outside the
// standard library. `go list -e -export -deps -json` yields, for every
// package in the transitive closure of the requested patterns, the
// package's source files and the path of its export data in the build
// cache; types are then checked with the gc importer pointed at those
// export files. This is the same information x/tools' go/packages uses —
// we just consume it directly.

// exportIndex memoizes export-data locations per module root, so the
// driver performs one `go list -export` pass and every later load in
// the same process — the testdata packages of the golden tests, repeat
// LoadDir calls — resolves its imports from the cache instead of
// shelling out again. `go list` dominated dlvet's wall time with five
// analyzers; with eight, reuse is what keeps `make lint` no slower.
var exportIndex = struct {
	mu    sync.Mutex
	byDir map[string]map[string]string // module dir -> import path -> export file
}{byDir: make(map[string]map[string]string)}

// cacheExports merges a listing's export-data paths into the index.
func cacheExports(dir string, listed []*listPkg) {
	exportIndex.mu.Lock()
	defer exportIndex.mu.Unlock()
	m := exportIndex.byDir[dir]
	if m == nil {
		m = make(map[string]string)
		exportIndex.byDir[dir] = m
	}
	for _, lp := range listed {
		if lp.Export != "" {
			m[lp.ImportPath] = lp.Export
		}
	}
}

// cachedExports returns the index's export map for dir when it already
// covers every import path in need; ok is false on any miss (the caller
// then falls back to `go list`, which repopulates the index).
func cachedExports(dir string, need []string) (map[string]string, bool) {
	exportIndex.mu.Lock()
	defer exportIndex.mu.Unlock()
	m := exportIndex.byDir[dir]
	if m == nil {
		return nil, false
	}
	for _, p := range need {
		if _, ok := m[p]; !ok {
			return nil, false
		}
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out, true
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// goList runs `go list -e -export -deps -json` for the patterns in dir.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(out)
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("go list: %v (%s)", err, stderr.String())
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %v (%s)", err, stderr.String())
	}
	return pkgs, nil
}

// ModuleRoot walks up from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadPackages loads and type-checks the packages matching patterns,
// resolving imports through gc export data. dir must lie inside the
// module. Only the requested (non-dependency, non-standard) packages are
// returned, but the whole closure feeds the importer.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	cacheExports(dir, listed)
	exports := make(map[string]string) // import path -> export data file
	for _, lp := range listed {
		if lp.Error != nil && !lp.Standard {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	// go list -deps emits dependencies before dependents, so requested
	// packages appear after their imports; order is irrelevant here
	// because each package type-checks against export data, not against
	// our own checked packages.
	var out []*Package
	for _, lp := range listed {
		if lp.Standard || lp.Name == "" {
			continue
		}
		// Keep only the packages the caller asked for: dependency
		// packages were listed solely for their export data. A package
		// is "requested" when it matched a pattern; `go list` offers no
		// direct flag for that, so key off module membership — all our
		// analysis targets are in-module.
		if !strings.HasPrefix(lp.ImportPath, "repro") {
			continue
		}
		if len(lp.GoFiles) == 0 {
			continue // e.g. the root package holding only *_test.go files
		}
		p, err := checkPackage(fset, imp, lp.Dir, lp.ImportPath, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir parses and type-checks the single directory dir as the package
// with import path asPath, resolving its imports through the current
// module (dir need not be under the module tree in a package-visible
// place — testdata directories are the intended use). modDir anchors the
// `go list` runs that provide export data for the imports.
func LoadDir(modDir, dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		files = append(files, e.Name())
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)

	// Collect the imports the files declare, then ask go list for their
	// export data (plus std, which rides along via -deps).
	fset := token.NewFileSet()
	var asts []*ast.File
	importSet := make(map[string]bool)
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	patterns := make([]string, 0, len(importSet))
	for p := range importSet {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)

	exports, cached := cachedExports(modDir, patterns)
	if !cached && len(patterns) > 0 {
		listed, err := goList(modDir, patterns)
		if err != nil {
			return nil, err
		}
		cacheExports(modDir, listed)
		exports = make(map[string]string)
		for _, lp := range listed {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	if exports == nil {
		exports = make(map[string]string)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	return checkFiles(fset, imp, asPath, asts)
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, imp types.Importer, dir, path string, goFiles []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	return checkFiles(fset, imp, path, asts)
}

func checkFiles(fset *token.FileSet, imp types.Importer, path string, asts []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %v", path, err)
	}
	return &Package{Fset: fset, Path: path, Files: asts, Types: tpkg, Info: info}, nil
}
