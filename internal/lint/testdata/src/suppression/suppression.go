// Package satest seeds stale-suppression-audit findings. It is loaded
// under an assumed import path inside internal/sim so the determinism
// engine-scope rules apply, runs the full analyzer set first (live
// annotations get consumed), and then audits: annotations and markers
// that suppressed nothing are the violations.
package satest

import "time"

// liveSuppression suppresses a real determinism diagnostic: the audit
// must not flag it.
func liveSuppression() time.Time {
	return time.Now() // lint:ignore determinism testdata: sanctioned wall-clock read
}

// staleSuppression annotates a line where no diagnostic fires any more.
func staleSuppression() time.Time {
	// want "stale suppression: no determinism diagnostic fires"
	return time.Time{} // lint:ignore determinism nothing violates determinism here
}

// want "has no reason and therefore suppresses nothing"
// lint:ignore determinism

// fpState's b field carries a live reasoned fp:ignore (consumed by the
// fingerprint analyzer): not flagged.
type fpState struct {
	a int
	b int // fp:ignore run-level configuration identical across all states
}

func (s *fpState) AppendFingerprint(dst []byte) []byte {
	return append(dst, byte(s.a))
}

// cfg has no fingerprint or rollback methods at all, so its marker
// exempts nothing.
type cfg struct {
	// want "marker no longer exempts any diagnostic"
	mode int // fp:ignore rotted: the type lost its AppendFingerprint long ago
}
