// Package cptest seeds canonparity-analyzer violations: fields folded
// into one of AppendFingerprint/AppendCanonFingerprint but not the
// other, in both directions, plus reasoned and reasonless canon:ignore
// annotations.
package cptest

// State implements both encodings but diverges on three fields.
type State struct {
	seq  int
	flag bool // want "folded into AppendFingerprint but not AppendCanonFingerprint"
	// id carries the documented renaming-section exemption: the
	// canonical encoding substitutes a canon index. No diagnostic.
	id int // canon:ignore renamed: the canonical encoding folds a canon index instead of the raw id
	// want "annotation without a reason; state why the field is encoded differently"
	aux int // canon:ignore
	// extra appears only in the canonical encoding.
	extra int // want "folded into AppendCanonFingerprint but not AppendFingerprint"
}

func (s *State) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, byte(s.seq))
	if s.flag {
		dst = append(dst, 1)
	}
	dst = append(dst, byte(s.id))
	dst = append(dst, byte(s.aux))
	return dst
}

func (s *State) AppendCanonFingerprint(dst []byte) []byte {
	dst = append(dst, byte(s.seq))
	dst = append(dst, byte(s.extra))
	return dst
}

// Aligned folds the same set into both encodings: no diagnostics.
type Aligned struct {
	a int
	b int
}

func (s *Aligned) AppendFingerprint(dst []byte) []byte {
	return append(dst, byte(s.a), byte(s.b))
}

func (s *Aligned) AppendCanonFingerprint(dst []byte) []byte {
	return append(dst, byte(s.a), byte(s.b))
}
