// Package sdtest seeds strictdecode-analyzer violations. The package
// declares a decode sentinel (Err*Format), which activates the
// analyzer: an unpaired wire encoder, raw error minting on decode
// paths, and a []byte decoder that neither returns a consumed count nor
// bounds its input.
package sdtest

import (
	"errors"
	"fmt"
)

// ErrBlobFormat is the package's decode sentinel.
var ErrBlobFormat = errors.New("sdtest: malformed blob")

// AppendWireBlob is paired with DecodeWireBlob below: no diagnostic.
func AppendWireBlob(dst []byte, v byte) []byte { return append(dst, v) }

// DecodeWireBlob wraps the sentinel and bounds its input: clean.
func DecodeWireBlob(b []byte) (byte, error) {
	if len(b) != 1 {
		return 0, fmt.Errorf("%w: want exactly 1 byte, got %d", ErrBlobFormat, len(b))
	}
	return b[0], nil
}

func AppendFrameHeader(dst []byte) []byte { // want "encoder AppendFrameHeader has no DecodeFrameHeader/decodeFrameHeader counterpart"
	return append(dst, 0xFE)
}

// appendBlobName has no sentinel stem in its name, so pairing is not
// required: no diagnostic.
func appendBlobName(dst []byte, s string) []byte { return append(dst, s...) }

// want "neither returns a consumed count nor bounds the input"
func decodeRaw(b []byte) (byte, error) {
	if b == nil {
		return 0, errors.New("sdtest: empty input") // want "mints a raw error with errors.New"
	}
	if b[0] == 0 {
		return 0, fmt.Errorf("sdtest: zero tag %d", b[0]) // want "fmt.Errorf but no"
	}
	return b[0], nil
}

// decodeCounted reports a consumed count, so the trailing-byte decision
// is the caller's: no trailing-bytes diagnostic.
func decodeCounted(b []byte) (byte, int, error) {
	if len(b) == 0 {
		return 0, 0, fmt.Errorf("%w: empty", ErrBlobFormat)
	}
	return b[0], 1, nil
}
