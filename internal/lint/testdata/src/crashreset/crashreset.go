// Package ctest seeds crashreset violations; it is loaded under an
// assumed import path inside internal/protocol so the crashing-property
// rules apply.
package ctest

import "repro/internal/ioa"

// cState models the sanctioned Theorem-7.5-tightness construction: a
// documented non-volatile field may survive a crash.
type cState struct {
	epoch int // non-volatile crash counter, survives by design
	seq   int
	queue []ioa.Message
}

func step(s cState, a ioa.Action) (cState, error) {
	switch {
	case a.Kind == ioa.KindCrash:
		return cState{epoch: s.epoch + 1}, nil
	case a.Kind == ioa.KindWake:
		return s, nil
	}
	return s, nil
}

// badState preserves an undocumented field across the crash.
type badState struct {
	seq   int
	queue []ioa.Message
}

func stepBad(s badState, a ioa.Action) (badState, error) {
	switch {
	case a.Kind == ioa.KindCrash:
		return badState{seq: s.seq}, nil // want "crash transition preserves field badState.seq"
	}
	return s, nil
}

// lazyState returns the pre-crash state wholesale.
type lazyState struct {
	seq int
}

func stepLazy(s lazyState, a ioa.Action) (lazyState, error) {
	switch {
	case a.Kind == ioa.KindCrash:
		return s, nil // want "crash transition returns a non-literal lazyState state"
	}
	return s, nil
}

// tagged exercises the tag-style switch shape.
func stepTagged(s badState, a ioa.Action) (badState, error) {
	switch a.Kind {
	case ioa.KindCrash:
		return badState{queue: s.queue}, nil // want "crash transition preserves field badState.queue"
	}
	return s, nil
}
