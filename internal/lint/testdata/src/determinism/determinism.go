// Package dtest seeds determinism-analyzer violations; it is loaded
// under an assumed import path inside internal/sim so the engine-scope
// rules apply.
package dtest

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "time.Now in an engine package"
}

func sinceStart(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in an engine package"
}

func annotated() time.Time {
	return time.Now() // lint:ignore determinism exercising the suppression path in the golden test
}

func globalRand() int {
	return rand.Intn(6) // want "math/rand.Intn draws from the global source"
}

func globalShuffle(xs []int) {
	// want "math/rand.Shuffle draws from the global source"
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

func leakOrder(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "map iteration order leaks into slice"
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func intoMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
