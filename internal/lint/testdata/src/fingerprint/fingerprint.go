// Package fptest seeds fingerprint-analyzer violations: state structs
// whose AppendFingerprint omits fields, breaking dedup soundness.
package fptest

// okState folds every field in: clean.
type okState struct {
	a int
	b string
}

func (s okState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, byte(s.a))
	dst = append(dst, s.b...)
	return dst
}

// gapState omits b: two states differing only in b dedup-collide.
type gapState struct {
	a int
	b string // want "field gapState.b is not referenced in AppendFingerprint"
}

func (s gapState) AppendFingerprint(dst []byte) []byte {
	return append(dst, byte(s.a))
}

// ignoredState documents its exclusion; reasonless annotations don't count.
type ignoredState struct {
	a   int
	cfg int // fp:ignore run-level configuration, identical for every state of a search
	// want "annotation without a reason"
	bad int // fp:ignore
}

func (s ignoredState) AppendFingerprint(dst []byte) []byte {
	return append(dst, byte(s.a))
}

// escState hands the whole receiver to a helper: all fields count as
// referenced (the helper may fingerprint them wholesale).
type escState struct {
	a int
	b int
}

func fpAll(dst []byte, s escState) []byte {
	return append(append(dst, byte(s.a)), byte(s.b))
}

func (s escState) AppendFingerprint(dst []byte) []byte {
	return fpAll(dst, s)
}

// helperState references a field only through a method call on it: that
// still counts as referenced.
type fpSet struct {
	members map[string]bool
}

func (s fpSet) appendFingerprint(dst []byte) []byte {
	for k := range s.members {
		_ = k
	}
	return dst
}

type helperState struct {
	seen fpSet
}

func (s helperState) AppendFingerprint(dst []byte) []byte {
	return s.seen.appendFingerprint(dst)
}
