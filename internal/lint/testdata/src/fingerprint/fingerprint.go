// Package fptest seeds fingerprint-analyzer violations: state structs
// whose AppendFingerprint omits fields, breaking dedup soundness, and
// fingerprints that fold in raw monotonic packet IDs, breaking the
// symmetry reduction's canonical dedup.
package fptest

import "repro/internal/ioa"

// okState folds every field in: clean.
type okState struct {
	a int
	b string
}

func (s okState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, byte(s.a))
	dst = append(dst, s.b...)
	return dst
}

// gapState omits b: two states differing only in b dedup-collide.
type gapState struct {
	a int
	b string // want "field gapState.b is not referenced in AppendFingerprint"
}

func (s gapState) AppendFingerprint(dst []byte) []byte {
	return append(dst, byte(s.a))
}

// ignoredState documents its exclusion; reasonless annotations don't count.
type ignoredState struct {
	a   int
	cfg int // fp:ignore run-level configuration, identical for every state of a search
	// want "annotation without a reason"
	bad int // fp:ignore
}

func (s ignoredState) AppendFingerprint(dst []byte) []byte {
	return append(dst, byte(s.a))
}

// escState hands the whole receiver to a helper: all fields count as
// referenced (the helper may fingerprint them wholesale).
type escState struct {
	a int
	b int
}

func fpAll(dst []byte, s escState) []byte {
	return append(append(dst, byte(s.a)), byte(s.b))
}

func (s escState) AppendFingerprint(dst []byte) []byte {
	return fpAll(dst, s)
}

// helperState references a field only through a method call on it: that
// still counts as referenced.
type fpSet struct {
	members map[string]bool
}

func (s fpSet) appendFingerprint(dst []byte) []byte {
	for k := range s.members {
		_ = k
	}
	return dst
}

type helperState struct {
	seen fpSet
}

func (s helperState) AppendFingerprint(dst []byte) []byte {
	return s.seen.appendFingerprint(dst)
}

// rawIDState folds the raw monotonic packet ID straight into the
// fingerprint: isomorphic executions with permuted IDs stop
// deduplicating under the symmetry reduction.
type rawIDState struct {
	pkt ioa.Packet
}

func (s rawIDState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, byte(s.pkt.ID)) // want "folds in the raw monotonic packet ID"
	return append(dst, s.pkt.Payload...)
}

// rawTextState reaches the raw ID through Packet.AppendText, which
// embeds it in the encoding.
type rawTextState struct {
	pkt ioa.Packet
}

func (s rawTextState) AppendFingerprint(dst []byte) []byte {
	return s.pkt.AppendText(dst) // want "calls Packet.AppendText"
}

// exemptIDState fingerprints raw IDs on purpose and says why; the
// same-line fp:ignore silences the packet-ID check. A reasonless
// marker exempts nothing.
type exemptIDState struct {
	pkt ioa.Packet
}

func (s exemptIDState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, byte(s.pkt.ID)) // fp:ignore exact-dedup baseline; canonical twin lives in AppendCanonFingerprint
	// want "folds in the raw monotonic packet ID"
	dst = append(dst, byte(s.pkt.ID)) // fp:ignore
	return append(dst, s.pkt.Payload...)
}

// headerOnlyState fingerprints the structural parts of a packet without
// its ID: clean under both checks.
type headerOnlyState struct {
	pkt ioa.Packet
}

func (s headerOnlyState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, s.pkt.Header...)
	return append(dst, s.pkt.Payload...)
}
