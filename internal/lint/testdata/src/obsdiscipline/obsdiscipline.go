// Package odtest seeds obsdiscipline loop-lookup and HTTP-handler
// violations against the real obs.Registry type.
package odtest

import (
	"fmt"
	"net/http"

	"repro/internal/obs"
)

func lookupInLoop(reg *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		c := reg.Counter(fmt.Sprintf("x.%d", i)) // want "obs handle resolved inside a loop"
		c.Inc()
	}
}

func bareLookupInRange(reg *obs.Registry, names []string) {
	for _, name := range names {
		reg.Counter(name).Inc() // want "obs handle resolved inside a loop"
	}
}

func preResolved(reg *obs.Registry, n int) {
	c := reg.Counter("x")
	for i := 0; i < n; i++ {
		c.Inc()
	}
}

// setupIdiom pre-resolves per-worker handles into storage declared
// outside the loop: the allowed startup pattern.
func setupIdiom(reg *obs.Registry, n int) []*obs.Counter {
	out := make([]*obs.Counter, n)
	for i := range out {
		out[i] = reg.Counter(fmt.Sprintf("w.%d", i))
	}
	return out
}

// admin is a handler-carrying type for the per-request rule.
type admin struct {
	reg  *obs.Registry
	hits *obs.Counter
}

// ServeHTTP is a per-request path: resolving the handle here pays the
// registry mutex on every scrape.
func (a *admin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.reg.Counter("admin.hits").Inc() // want "obs handle resolved inside an HTTP handler"
}

// handleFuncLookup: the same violation in a plain handler function.
func handleFuncLookup(reg *obs.Registry) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		reg.Gauge("admin.inflight").Set(1) // want "obs handle resolved inside an HTTP handler"
	}
}

// registerHandlers shows the sanctioned idiom: resolve at mux setup,
// close over the handle.
func registerHandlers(mux *http.ServeMux, a *admin) {
	hits := a.reg.Counter("admin.hits")
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		hits.Inc()
		a.hits.Inc()
	})
}
