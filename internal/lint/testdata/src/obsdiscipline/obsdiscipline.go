// Package odtest seeds obsdiscipline loop-lookup violations against the
// real obs.Registry type.
package odtest

import (
	"fmt"

	"repro/internal/obs"
)

func lookupInLoop(reg *obs.Registry, n int) {
	for i := 0; i < n; i++ {
		c := reg.Counter(fmt.Sprintf("x.%d", i)) // want "obs handle resolved inside a loop"
		c.Inc()
	}
}

func bareLookupInRange(reg *obs.Registry, names []string) {
	for _, name := range names {
		reg.Counter(name).Inc() // want "obs handle resolved inside a loop"
	}
}

func preResolved(reg *obs.Registry, n int) {
	c := reg.Counter("x")
	for i := 0; i < n; i++ {
		c.Inc()
	}
}

// setupIdiom pre-resolves per-worker handles into storage declared
// outside the loop: the allowed startup pattern.
func setupIdiom(reg *obs.Registry, n int) []*obs.Counter {
	out := make([]*obs.Counter, n)
	for i := range out {
		out[i] = reg.Counter(fmt.Sprintf("w.%d", i))
	}
	return out
}
