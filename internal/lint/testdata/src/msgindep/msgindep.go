// Package mtest seeds msgindep-analyzer violations; it is loaded under
// an assumed import path inside internal/protocol so the
// message-independence rules apply.
package mtest

import "repro/internal/ioa"

type state struct {
	pending []ioa.Message
}

// deliverMatch is the legal delivery idiom: payload-to-payload equality
// is equivariant under relabeling.
func deliverMatch(s state, a ioa.Action) bool {
	if len(s.pending) == 0 || s.pending[0] != a.Msg {
		return false
	}
	return true
}

func constCompare(a ioa.Action) bool {
	if a.Msg == "poison" { // want "comparing a message payload against a non-payload value"
		return true
	}
	return false
}

func nestedConstCompare(s state, a ioa.Action) bool {
	if len(s.pending) > 0 && a.Msg == "poison" { // want "comparing a message payload against a non-payload value"
		return true
	}
	return false
}

func ordered(a ioa.Action, m ioa.Message) bool {
	if a.Msg < m { // want "ordered comparison involving a message payload"
		return true
	}
	return false
}

func isEmpty(m ioa.Message) bool { return m == "" }

func callOnPayload(a ioa.Action) bool {
	if isEmpty(a.Msg) { // want "calling a function on a message payload"
		return true
	}
	return false
}

func indexPayload(a ioa.Action) bool {
	if a.Msg[0] == 'x' { // want "indexing into a message payload"
		return true
	}
	return false
}

func switchPayload(a ioa.Action) int {
	switch a.Msg { // want "switch on a message payload"
	case "a":
		return 1
	}
	return 0
}

// movePayload only copies payloads around: clean.
func movePayload(s state, a ioa.Action) state {
	if a.Kind == ioa.KindSendMsg {
		s.pending = append(s.pending, a.Msg)
	}
	return s
}
