// Package obs seeds disabled-path allocation violations. The golden
// test loads it under the assumed import path repro/internal/obs, where
// the nil-receiver no-op discipline applies.
package obs

import "fmt"

type Gadget struct {
	vals []int64
	name string
}

// Observe is the clean shape: leading nil guard, work after it.
func (g *Gadget) Observe(v int64) {
	if g == nil {
		return
	}
	g.vals = append(g.vals, v)
}

// Leaky allocates inside the guard body: the disabled path pays.
func (g *Gadget) Leaky() {
	if g == nil {
		_ = make([]int64, 8) // want "make on the nil-receiver disabled path"
		return
	}
	g.vals = g.vals[:0]
}

// Eager allocates before the guard: nil receivers pay for the format.
func (g *Gadget) Eager(name string) {
	full := fmt.Sprintf("gadget.%s", name) // want "fmt.Sprintf on the nil-receiver disabled path"
	if g == nil {
		return
	}
	g.name = full
}

// Snapshot follows the zero-alloc prefix idiom: a plain var before the
// guard is free.
func (g *Gadget) Snapshot() []int64 {
	var out []int64
	if g == nil {
		return out
	}
	out = append(out, g.vals...)
	return out
}

// Quantile's compound guard still counts as the nil guard.
func (g *Gadget) Quantile(q float64) float64 {
	if g == nil || q < 0 || q > 1 {
		return 0
	}
	return float64(g.vals[0])
}
