// Package sctest seeds snapshotcoverage-analyzer violations: mutable
// fields outside a Snapshot/Restore pair, reasonless and reasoned
// snap:ignore annotations, and capture delegation to a type that has a
// Snapshot but no Restore.
package sctest

// Counter pairs Snapshot/Restore but rolls back only n.
type Counter struct {
	n    int
	hits int // want "mutable field Counter.hits is outside the Snapshot/Restore pair"
	// cfg is written only by the constructor, so it is configuration,
	// not rollback state: no diagnostic.
	cfg int
	// want "annotation without a reason; state why the field is safe"
	note int // snap:ignore
	// seen carries a reasoned exemption: no diagnostic.
	seen int // snap:ignore monotone dedup bookkeeping survives rollback by design
}

func NewCounter(cfg int) *Counter { return &Counter{cfg: cfg} }

func (c *Counter) Step() {
	c.n++
	c.hits++
	c.note = c.n
	c.seen++
}

func (c *Counter) Snapshot() int  { return c.n }
func (c *Counter) Restore(v int) { c.n = v }

// clock has a parameterless Snapshot but no Restore: not a pair itself,
// but delegating to it from another capture is flagged.
type clock struct{ t int }

func (c *clock) tick()         { c.t++ }
func (c *clock) Snapshot() int { return c.t }

// Box delegates part of its capture to clock.Snapshot.
type Box struct {
	cl clock
	v  int
}

func (b *Box) Poke() {
	b.v++
	b.cl.tick()
}

func (b *Box) Snapshot() (int, int) {
	return b.cl.Snapshot(), b.v // want "capture delegates to clock.Snapshot, but clock has no Restore"
}

func (b *Box) Restore(cl, v int) {
	b.cl.t = cl
	b.v = v
}

// builder's snapshot takes a parameter, so it is a checkpoint builder,
// not a rollback pair: the analyzer must not pair it with restore.
type builder struct {
	depth int
	extra int
}

func (s *builder) grow()               { s.depth++; s.extra++ }
func (s *builder) snapshot(d int) int  { return s.depth + d }
func (s *builder) restore(d int)       { s.depth = d }
