package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CrashReset enforces the crashing property (MIT/LCS/TM-355 §5)
// structurally: a crash transition must return the automaton's start
// state, i.e. the zero value of the state struct. Theorem 7.5's
// impossibility argument (the crash-pump) is only sound against
// protocols with this property, so a protocol that silently preserves
// state across a crash would invalidate every checker result that
// assumed it crashing.
//
// In internal/protocol, every switch case guarded by KindCrash is
// examined: a returned state may only carry fields over from the
// pre-crash state when the field's declaration comment documents it as
// "non-volatile" (the deliberate Theorem-7.5-tightness construction in
// nonvolatile.go, whose Props also declare Crashing: false). Returning
// the old state wholesale, or copying an undocumented field, is
// flagged.
var CrashReset = &Analyzer{
	Name: "crashreset",
	Doc:  "crash transitions must reset to the start state (non-volatile fields excepted)",
	Bit:  64,
	Run:  runCrashReset,
}

func runCrashReset(p *Package, _ *Facts) []Diagnostic {
	if !pkgScope(p.Path, "protocol") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			for _, s := range sw.Body.List {
				cc, ok := s.(*ast.CaseClause)
				if !ok || !isCrashCase(p, cc) {
					continue
				}
				diags = append(diags, checkCrashCase(p, cc)...)
			}
			return true
		})
	}
	return diags
}

// isCrashCase reports whether the case expressions reference the
// KindCrash action kind.
func isCrashCase(p *Package, cc *ast.CaseClause) bool {
	for _, e := range cc.List {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == "KindCrash" && p.Info.Uses[id] != nil {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// checkCrashCase verifies every state-typed return in a crash case
// resets to the start state.
func checkCrashCase(p *Package, cc *ast.CaseClause) []Diagnostic {
	var diags []Diagnostic
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) == 0 {
				return true
			}
			diags = append(diags, checkCrashReturn(p, ret.Results[0])...)
			return true
		})
	}
	return diags
}

func checkCrashReturn(p *Package, res ast.Expr) []Diagnostic {
	tv, ok := p.Info.Types[res]
	if !ok {
		return nil
	}
	named := namedOf(tv.Type)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg() != p.Types {
		return nil // not a locally-declared state type (e.g. returning nil, error)
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	typeName := named.Obj().Name()

	lit, ok := unparen(res).(*ast.CompositeLit)
	if !ok {
		// `return s, nil` or a call: the pre-crash state (or something
		// derived from it) escapes the crash wholesale.
		return []Diagnostic{p.diag("crashreset", res,
			"crash transition returns a non-literal %s state: a crash must reset to the start state, so return a %s{} literal carrying over only non-volatile fields (§5 crashing property)",
			typeName, typeName)}
	}

	decl := p.structDecl(typeName)
	var diags []Diagnostic
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			// Positional literal: conservatively require all-zero; any
			// non-trivial positional literal is flagged per element below.
			if exprReadsState(p, el) {
				diags = append(diags, p.diag("crashreset", el,
					"crash transition copies pre-crash state positionally in %s literal; use keyed fields so non-volatile exemptions are checkable", typeName))
			}
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if !exprReadsState(p, kv.Value) {
			continue // explicit zero/constant reset is fine
		}
		_, comment, _ := fieldDeclOf(p, decl, key.Name, "fp:ignore")
		if strings.Contains(strings.ToLower(comment), "non-volatile") {
			continue // documented non-volatile memory (Theorem 7.5 tightness)
		}
		diags = append(diags, p.diag("crashreset", kv,
			"crash transition preserves field %s.%s: the crashing property (§5) requires a crash to reset to the start state; zero the field, or document it as `// non-volatile: <why>`",
			typeName, key.Name))
	}
	return diags
}

// exprReadsState reports whether e reads any local variable (i.e. is
// not a pure constant/zero expression) — in a crash return, any value
// derived from locals carries pre-crash state forward.
func exprReadsState(p *Package, e ast.Expr) bool {
	reads := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || reads {
			return !reads
		}
		if v, ok := p.Info.Uses[id].(*types.Var); ok && !v.IsField() {
			reads = true
			return false
		}
		return true
	})
	return reads
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
