package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsDiscipline locks in the observability layer's zero-cost guarantee:
//
//  1. Registry handle resolution (reg.Counter / reg.Gauge /
//     reg.Histogram) takes the registry mutex and must happen once at
//     startup, never inside a loop on a hot path. A lookup inside a loop
//     body is flagged unless its result is stored into storage declared
//     outside the loop (the setup idiom that pre-resolves a handle
//     slice).
//
//  2. The disabled mode is a nil handle: every instrument method
//     no-ops via an `if x == nil` guard. Code on that disabled path —
//     statements before the guard plus the guard's body — must not
//     allocate (make/new/&T{}/append/fmt.*), or "observability off"
//     stops being free.
//
//  3. HTTP handlers are per-request paths: an admin endpoint is scraped
//     continuously, so a registry lookup inside a handler (any function
//     or literal with the func(http.ResponseWriter, *http.Request)
//     shape) pays the registry mutex on every scrape and contends with
//     the hot paths it observes. Handlers must close over pre-resolved
//     handles or read a Snapshot() instead.
var ObsDiscipline = &Analyzer{
	Name: "obsdiscipline",
	Doc:  "obs handle resolution in loops; allocations on the nil-receiver disabled path",
	Bit:  32,
	Run:  runObsDiscipline,
}

func runObsDiscipline(p *Package, _ *Facts) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, checkRegistryLookups(p, fd)...)
			diags = append(diags, checkHandlerLookups(p, fd)...)
			// The disabled-path rule is about the instrument package's own
			// nil-receiver no-ops; other packages use nil guards for
			// unrelated (and legitimately allocating) error paths.
			if fd.Recv != nil && p.Path == "repro/internal/obs" {
				diags = append(diags, checkDisabledPath(p, fd)...)
			}
		}
	}
	return diags
}

// isRegistryLookup reports whether call resolves an obs.Registry handle.
func (p *Package) isRegistryLookup(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return false
	}
	return isNamedType(tv.Type, "repro/internal/obs", "Registry")
}

// checkRegistryLookups flags registry handle resolution inside loop
// bodies, excepting the pre-resolution idiom that fills outer storage.
func checkRegistryLookups(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	var walk func(n ast.Node, loop ast.Node)
	walk = func(n ast.Node, loop ast.Node) {
		ast.Inspect(n, func(nd ast.Node) bool {
			switch x := nd.(type) {
			case *ast.ForStmt:
				if x != n {
					walk(x.Body, x)
					return false
				}
			case *ast.RangeStmt:
				if x != n {
					walk(x.Body, x)
					return false
				}
			case *ast.AssignStmt:
				if loop == nil {
					return true
				}
				// reg.Counter(...) assigned into storage declared outside
				// the loop is the setup idiom: allowed.
				ok := true
				for i, rhs := range x.Rhs {
					call, isCall := rhs.(*ast.CallExpr)
					if !isCall || !p.isRegistryLookup(call) {
						continue
					}
					if i < len(x.Lhs) {
						if base := baseIdent(x.Lhs[i]); base != nil && x.Tok == token.ASSIGN && p.declaredBefore(base, loop.Pos()) {
							continue
						}
					}
					ok = false
					diags = append(diags, p.diag("obsdiscipline", call,
						"obs handle resolved inside a loop: %s takes the registry mutex per call; resolve the handle once before the loop (or store it into pre-loop storage)", callName(call)))
				}
				if ok {
					// Don't re-report the calls inside this assignment.
					for _, rhs := range x.Rhs {
						if call, isCall := rhs.(*ast.CallExpr); isCall && p.isRegistryLookup(call) {
							for _, arg := range call.Args {
								walk(arg, loop)
							}
						} else {
							walk(rhs, loop)
						}
					}
					return false
				}
				return false
			case *ast.CallExpr:
				if loop != nil && p.isRegistryLookup(x) {
					diags = append(diags, p.diag("obsdiscipline", x,
						"obs handle resolved inside a loop: %s takes the registry mutex per call; resolve the handle once before the loop (or store it into pre-loop storage)", callName(x)))
					return false
				}
			}
			return true
		})
	}
	walk(fd.Body, nil)
	return diags
}

// isHTTPHandlerSig reports whether sig has the standard handler shape
// func(http.ResponseWriter, *http.Request).
func isHTTPHandlerSig(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	if !isNamedType(sig.Params().At(0).Type(), "net/http", "ResponseWriter") {
		return false
	}
	ptr, ok := sig.Params().At(1).Type().(*types.Pointer)
	return ok && isNamedType(ptr.Elem(), "net/http", "Request")
}

// checkHandlerLookups flags registry handle resolution anywhere inside
// an HTTP handler — declaration or literal — loop or not: handlers run
// per request.
func checkHandlerLookups(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	flagLookups := func(body ast.Node) {
		ast.Inspect(body, func(nd ast.Node) bool {
			if call, ok := nd.(*ast.CallExpr); ok && p.isRegistryLookup(call) {
				diags = append(diags, p.diag("obsdiscipline", call,
					"obs handle resolved inside an HTTP handler: %s takes the registry mutex per request; resolve the handle at mux setup and close over it (or serve a Snapshot)", callName(call)))
			}
			return true
		})
	}
	if obj := p.Info.Defs[fd.Name]; obj != nil {
		if sig, ok := obj.Type().(*types.Signature); ok && isHTTPHandlerSig(sig) {
			flagLookups(fd.Body)
			return diags
		}
	}
	ast.Inspect(fd.Body, func(nd ast.Node) bool {
		lit, ok := nd.(*ast.FuncLit)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[lit]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok && isHTTPHandlerSig(sig) {
				flagLookups(lit.Body)
				return false
			}
		}
		return true
	})
	return diags
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return "call"
}

// checkDisabledPath finds the method's leading nil-receiver guard and
// flags allocations on the disabled path: statements before the guard
// and the guard's then-branch.
func checkDisabledPath(p *Package, fd *ast.FuncDecl) []Diagnostic {
	recv := fd.Recv.List[0]
	if len(recv.Names) != 1 || recv.Names[0].Name == "_" {
		return nil
	}
	if _, isPtr := recv.Type.(*ast.StarExpr); !isPtr {
		return nil
	}
	recvObj := p.Info.Defs[recv.Names[0]]
	if recvObj == nil {
		return nil
	}

	var diags []Diagnostic
	for _, stmt := range fd.Body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if ok && ifs.Init == nil && condTestsNil(p, ifs.Cond, recvObj) {
			diags = append(diags, findAllocs(p, ifs.Body)...)
			return diags // everything after the guard is the enabled path
		}
		// Statements before the guard also run when the receiver is nil.
		diags = append(diags, findAllocs(p, stmt)...)
		if hasControlFlow(stmt) {
			// The guard, if any, is not a leading guard; stop scanning.
			return nil
		}
	}
	return nil // no nil guard: not an instrument-style method
}

// condTestsNil reports whether cond contains `obj == nil` (possibly OR'd
// with further conditions, as in `h == nil || q < 0`).
func condTestsNil(p *Package, cond ast.Expr, obj types.Object) bool {
	switch x := cond.(type) {
	case *ast.ParenExpr:
		return condTestsNil(p, x.X, obj)
	case *ast.BinaryExpr:
		if x.Op == token.LOR {
			return condTestsNil(p, x.X, obj) || condTestsNil(p, x.Y, obj)
		}
		if x.Op != token.EQL {
			return false
		}
		return (isIdentFor(p, x.X, obj) && isNilIdent(p, x.Y)) ||
			(isIdentFor(p, x.Y, obj) && isNilIdent(p, x.X))
	}
	return false
}

func isIdentFor(p *Package, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && p.Info.ObjectOf(id) == obj
}

func isNilIdent(p *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.ObjectOf(id).(*types.Nil)
	return isNil
}

// hasControlFlow reports whether stmt can branch away, ending the
// "leading statements" prefix.
func hasControlFlow(stmt ast.Stmt) bool {
	switch stmt.(type) {
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
		*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.ReturnStmt,
		*ast.BranchStmt, *ast.GoStmt:
		return true
	}
	return false
}

// findAllocs flags allocating expressions under n: make/new, pointer
// composite literals, slice/map literals, append, and fmt.* calls.
func findAllocs(p *Package, n ast.Node) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(n, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "make", "new", "append":
					if _, isBuiltin := p.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
						diags = append(diags, p.diag("obsdiscipline", x,
							"%s on the nil-receiver disabled path: the no-op mode must be allocation-free", id.Name))
						return true
					}
				}
			}
			if pkg, fn := p.calleePkgFunc(x); pkg == "fmt" {
				diags = append(diags, p.diag("obsdiscipline", x,
					"fmt.%s on the nil-receiver disabled path allocates; the no-op mode must be allocation-free", fn))
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, isLit := x.X.(*ast.CompositeLit); isLit {
					diags = append(diags, p.diag("obsdiscipline", x,
						"pointer composite literal on the nil-receiver disabled path heap-allocates; the no-op mode must be allocation-free"))
				}
			}
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[x]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				diags = append(diags, p.diag("obsdiscipline", x,
					"slice/map literal on the nil-receiver disabled path allocates; the no-op mode must be allocation-free"))
			}
		}
		return true
	})
	return diags
}
