package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Fingerprint enforces the model checker's dedup-soundness invariant:
// every field of a state struct must be folded into its
// AppendFingerprint method, or two semantically distinct states can
// collide in the frontier's seen-set and cut off reachable (possibly
// violating) executions. A field that is intentionally excluded — e.g.
// run-level configuration identical across all states of a search — must
// say so with a trailing `// fp:ignore <reason>` comment.
//
// A field counts as referenced if any selector in the method body
// resolves to it (including through helper methods of field values), or
// if the whole receiver escapes the method as a value (passed to a
// helper that fingerprints it wholesale).
//
// The analyzer also guards the symmetry reduction built on ioa.Canon:
// a raw monotonic packet ID folded into a fingerprint makes two
// isomorphic executions (same behaviour, permuted packet identities)
// hash differently, so the canonical dedup the explorer's -symmetry
// flag relies on silently degrades to exact dedup. Inside
// AppendFingerprint bodies it flags direct `.ID` reads on ioa.Packet
// values and Packet.AppendText calls (AppendText embeds the raw ID).
// Sites that intentionally fingerprint raw IDs — e.g. the unreduced
// baseline encoding whose symmetry-aware twin lives in
// AppendCanonFingerprint — carry a same-line `// fp:ignore <reason>`.
var Fingerprint = &Analyzer{
	Name: "fingerprint",
	Doc:  "state struct fields missing from AppendFingerprint break dedup soundness",
	Bit:  4,
	Run:  runFingerprint,
}

func runFingerprint(p *Package, _ *Facts) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "AppendFingerprint" || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			diags = append(diags, checkFingerprintMethod(p, fd)...)
			diags = append(diags, checkFingerprintPacketIDs(p, f, fd)...)
		}
	}
	return diags
}

func checkFingerprintMethod(p *Package, fd *ast.FuncDecl) []Diagnostic {
	typeName := recvTypeName(fd.Recv.List[0].Type)
	if typeName == "" {
		return nil
	}
	obj, ok := p.Types.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}

	// The receiver object, when named; a blank receiver cannot reference
	// any field, so every field will be flagged (correctly).
	var recvObj types.Object
	if names := fd.Recv.List[0].Names; len(names) == 1 && names[0].Name != "_" {
		recvObj = p.Info.Defs[names[0]]
	}

	referenced := make(map[*types.Var]bool)
	escapes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					referenced[v] = true
				}
			}
			// The receiver used as a selector base is a field access or
			// method call, not an escape; skip the base ident below by
			// inspecting only the Sel side here and recursing manually.
			if id, ok := x.X.(*ast.Ident); ok && recvObj != nil && p.Info.ObjectOf(id) == recvObj {
				return false // base is the receiver: fields handled above
			}
		case *ast.Ident:
			if recvObj != nil && p.Info.ObjectOf(x) == recvObj {
				// Bare use of the receiver (argument, assignment source):
				// the whole value escapes, so all fields are potentially
				// fingerprinted by the callee. Be conservative: accept.
				escapes = true
			}
		}
		return true
	})
	if escapes {
		return nil
	}

	var diags []Diagnostic
	decl := p.structDecl(typeName)
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if referenced[fv] {
			continue
		}
		node, comment, markerPos := fieldDeclOf(p, decl, fv.Name(), "fp:ignore")
		if node == nil {
			node = fd // struct declared in another file of the package; anchor on the method
		}
		if reason, found := markerReason(comment, "fp:ignore"); found {
			if reason != "" {
				p.useMarker(markerPos)
				continue
			}
			diags = append(diags, p.diag("fingerprint", node,
				"field %s.%s has an fp:ignore annotation without a reason; state why the field is safe to omit from the fingerprint", typeName, fv.Name()))
			continue
		}
		diags = append(diags, p.diag("fingerprint", node,
			"field %s.%s is not referenced in AppendFingerprint: distinct states differing only in %s would collide in dedup (add it to the fingerprint, or annotate `// fp:ignore <reason>`)",
			typeName, fv.Name(), fv.Name()))
	}
	return diags
}

// ioaPkgPath is the import path of the package defining ioa.Packet.
const ioaPkgPath = "repro/internal/ioa"

// checkFingerprintPacketIDs flags raw monotonic packet-ID material
// inside an AppendFingerprint body: `.ID` field reads on ioa.Packet
// values, and Packet.AppendText calls (which embed the raw ID). Either
// one makes the fingerprint distinguish isomorphic executions that
// differ only in packet numbering, defeating the -symmetry reduction's
// canonical dedup. A same-line `// fp:ignore <reason>` exempts a site
// that fingerprints raw IDs on purpose (the exact-dedup baseline paired
// with an AppendCanonFingerprint twin); a reasonless marker exempts
// nothing, matching the field-level annotation's contract.
func checkFingerprintPacketIDs(p *Package, file *ast.File, fd *ast.FuncDecl) []Diagnostic {
	ignored := fpIgnoreLines(p, file)
	var diags []Diagnostic
	flag := func(n ast.Node, format string, args ...any) {
		pos := p.pos(n)
		if ignored[pos.Line] {
			// The marker is a same-line trailing comment, so its position
			// key is the flagged node's own file:line.
			p.useMarker(pos)
			return
		}
		diags = append(diags, p.diag("fingerprint", n, format, args...))
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		x, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel, ok := p.Info.Selections[x]
		if !ok || !isNamedType(sel.Recv(), ioaPkgPath, "Packet") {
			return true
		}
		switch {
		case sel.Kind() == types.FieldVal && x.Sel.Name == "ID":
			flag(x, "AppendFingerprint folds in the raw monotonic packet ID: isomorphic executions with permuted IDs stop deduplicating under -symmetry (canonicalise via ioa.Canon in AppendCanonFingerprint, or annotate `// fp:ignore <reason>`)")
		case sel.Kind() == types.MethodVal && x.Sel.Name == "AppendText":
			flag(x, "AppendFingerprint calls Packet.AppendText, which embeds the raw monotonic packet ID: isomorphic executions with permuted IDs stop deduplicating under -symmetry (canonicalise via ioa.Canon in AppendCanonFingerprint, or annotate `// fp:ignore <reason>`)")
		}
		return true
	})
	return diags
}

// fpIgnoreLines indexes the file's lines carrying a reasoned
// `fp:ignore <reason>` comment, for same-line exemption of packet-ID
// diagnostics.
func fpIgnoreLines(p *Package, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if reason, found := markerReason(c.Text, "fp:ignore"); found && reason != "" {
				lines[p.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// fieldDeclOf locates the AST field named name inside decl, returning
// the node to anchor the diagnostic on, the field's comment text, and
// the position of the comment group carrying marker (for suppression
// bookkeeping; zero when the marker is absent).
func fieldDeclOf(p *Package, decl *ast.StructType, name, marker string) (ast.Node, string, token.Position) {
	if decl == nil {
		return nil, "", token.Position{}
	}
	for _, f := range decl.Fields.List {
		for _, id := range f.Names {
			if id.Name != name {
				continue
			}
			var markerPos token.Position
			for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
				if cg == nil {
					continue
				}
				for _, c := range cg.List {
					if _, found := markerReason(c.Text, marker); found {
						markerPos = p.Fset.Position(c.Pos())
						break
					}
				}
			}
			return id, fieldComment(f), markerPos
		}
	}
	return decl, "", token.Position{}
}
