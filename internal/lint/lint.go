// Package lint is dlvet's analysis core: a dependency-free (stdlib
// go/ast + go/parser + go/types only) multi-analyzer driver that loads
// the module's packages and enforces the repository's domain invariants
// at compile time — the structural hypotheses of the paper's theorems
// (message-independence, the crashing property) and the checker's own
// soundness conventions (complete AppendFingerprint coverage,
// deterministic schedules and summaries, zero-cost disabled
// observability).
//
// Each analyzer reports file:line diagnostics. A diagnostic can be
// suppressed with an annotation on the offending line or the line above:
//
//	// lint:ignore <analyzer> <reason>
//
// The reason is mandatory; an annotation without one suppresses nothing.
// The fingerprint analyzer additionally honours the field-level form
//
//	field T // fp:ignore <reason>
//
// for struct fields that are intentionally excluded from a state
// fingerprint (for example run-level configuration that is identical for
// every state of a search).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violated invariant and how to fix it.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one domain check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -analyzers selections
	// and lint:ignore annotations.
	Name string
	// Doc is a one-line description.
	Doc string
	// Bit is the analyzer's exit-status bit: dlvet's logical exit code
	// is the OR of the bits of all analyzers that reported findings, so
	// scripts can tell which invariant class failed. Bits start at 4 to
	// stay clear of the conventional 1 (internal error) and 2 (usage
	// error). Bits above 255 do not fit in a POSIX status byte; see
	// ProcessStatus for how the process exit status folds them.
	Bit int
	// Run reports the analyzer's findings for one package, consulting
	// the driver-computed cross-package facts. The driver applies
	// lint:ignore suppression and sorting afterwards.
	Run func(p *Package, f *Facts) []Diagnostic
}

// All returns the eight analyzers in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{
		Fingerprint, Determinism, MsgIndep, ObsDiscipline, CrashReset,
		SnapshotCoverage, CanonParity, StrictDecode,
	}
}

// AuditName is the reserved analyzer name under which the driver's
// stale-suppression audit reports (see AuditSuppressions); AuditBit is
// its logical exit bit.
const (
	AuditName = "suppression"
	AuditBit  = 1024
)

// ByName resolves a comma-separated analyzer selection.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty analyzer selection %q", names)
	}
	return out, nil
}

// Package is one loaded, type-checked package.
type Package struct {
	Fset  *token.FileSet
	Path  string // import path, or the assumed path for testdata packages
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// ignores maps "analyzer\x00file:line" to the annotation positions
	// ("file:line" of the lint:ignore comment) covering that line; built
	// lazily.
	ignores map[string][]string
	// usedAnnots records the "file:line" of every lint:ignore annotation
	// that actually suppressed a diagnostic, and usedMarkers the same
	// for field/statement markers (fp:ignore, snap:ignore, canon:ignore)
	// consumed inside analyzers. AuditSuppressions reads both.
	usedAnnots  map[string]bool
	usedMarkers map[string]bool
}

// pos converts a node position.
func (p *Package) pos(n ast.Node) token.Position { return p.Fset.Position(n.Pos()) }

// diag builds a Diagnostic at node n.
func (p *Package) diag(analyzer string, n ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{Analyzer: analyzer, Pos: p.pos(n), Message: fmt.Sprintf(format, args...)}
}

// ignoreKey builds the suppression-index key.
func ignoreKey(analyzer, file string, line int) string {
	return analyzer + "\x00" + file + ":" + fmt.Sprint(line)
}

// posKey keys an annotation or marker by its own position.
func posKey(file string, line int) string {
	return file + ":" + fmt.Sprint(line)
}

// buildIgnores indexes every well-formed lint:ignore annotation. An
// annotation covers its own line and the following one, so it works both
// trailing the offending statement and on a line of its own above it.
func (p *Package) buildIgnores() {
	p.ignores = make(map[string][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "lint:ignore ")
				if idx < 0 {
					continue
				}
				fields := strings.Fields(text[idx+len("lint:ignore "):])
				if len(fields) < 2 {
					continue // a reason is mandatory; reasonless annotations suppress nothing
				}
				pos := p.Fset.Position(c.Pos())
				at := posKey(pos.Filename, pos.Line)
				k0 := ignoreKey(fields[0], pos.Filename, pos.Line)
				k1 := ignoreKey(fields[0], pos.Filename, pos.Line+1)
				p.ignores[k0] = append(p.ignores[k0], at)
				p.ignores[k1] = append(p.ignores[k1], at)
			}
		}
	}
}

// suppressed reports whether d is covered by a lint:ignore annotation,
// recording which annotations it consumed for the stale-suppression
// audit.
func (p *Package) suppressed(d Diagnostic) bool {
	if p.ignores == nil {
		p.buildIgnores()
	}
	annots := p.ignores[ignoreKey(d.Analyzer, d.Pos.Filename, d.Pos.Line)]
	if len(annots) == 0 {
		return false
	}
	if p.usedAnnots == nil {
		p.usedAnnots = make(map[string]bool)
	}
	for _, at := range annots {
		p.usedAnnots[at] = true
	}
	return true
}

// useMarker records that a field/statement marker (fp:ignore and kin) at
// the given position suppressed a would-be diagnostic. Analyzers call it
// whenever a reasoned marker actually changes their output, so the audit
// can tell live markers from rotted ones.
func (p *Package) useMarker(pos token.Position) {
	if p.usedMarkers == nil {
		p.usedMarkers = make(map[string]bool)
	}
	p.usedMarkers[posKey(pos.Filename, pos.Line)] = true
}

// Run applies the analyzers to every package, filters suppressed
// diagnostics and returns the remainder sorted by position. The
// cross-package fact store is computed once and shared by every
// analyzer over every package.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := ComputeFacts(pkgs)
	var out []Diagnostic
	for _, p := range pkgs {
		for _, a := range analyzers {
			for _, d := range a.Run(p, facts) {
				if !p.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sortDiags(out)
	return out
}

func sortDiags(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// AuditSuppressions reports, as diagnostics under the reserved
// "suppression" analyzer name, every suppression annotation in pkgs that
// did not suppress anything during the preceding Run over the *full*
// analyzer set: lint:ignore lines whose diagnostic no longer fires,
// reasonless lint:ignore lines (which suppress nothing by contract), and
// fp:ignore/snap:ignore/canon:ignore markers no analyzer consumed.
// Stale suppressions rot into misdocumentation — the annotated line
// reads as "this invariant is deliberately violated here" when nothing
// is violated at all — so the audit makes them errors.
//
// Call it only after running All() analyzers over the same packages;
// under a subset, annotations for the analyzers that did not run would
// be indistinguishable from stale ones.
func AuditSuppressions(pkgs []*Package) []Diagnostic {
	var out []Diagnostic
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, p := range pkgs {
		if p.ignores == nil {
			p.buildIgnores()
		}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					out = append(out, auditComment(p, c, known)...)
				}
			}
		}
	}
	sortDiags(out)
	return out
}

// annotationMarkers are the field/statement suppression markers the
// analyzers consume directly (outside the generic lint:ignore path).
var annotationMarkers = []string{"fp:ignore", "snap:ignore", "canon:ignore"}

// auditComment audits one comment for stale or reasonless suppressions.
// Only comments that *start* with an annotation count — prose that
// merely mentions a marker (doc comments explaining the convention) is
// not an annotation.
func auditComment(p *Package, c *ast.Comment, known map[string]bool) []Diagnostic {
	text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
	pos := p.Fset.Position(c.Pos())
	at := posKey(pos.Filename, pos.Line)
	var out []Diagnostic
	if rest, ok := strings.CutPrefix(text, "lint:ignore"); ok {
		fields := strings.Fields(rest)
		switch {
		case len(fields) == 0 || !known[fields[0]]:
			// Not a real annotation (e.g. a doc example naming no known
			// analyzer); ignore.
		case len(fields) < 2:
			out = append(out, p.diag(AuditName, c,
				"lint:ignore %s has no reason and therefore suppresses nothing: state why the violation is sanctioned, or delete the annotation", fields[0]))
		case !p.usedAnnots[at]:
			out = append(out, p.diag(AuditName, c,
				"stale suppression: no %s diagnostic fires on the annotated line any more; delete the lint:ignore (it now misdocuments clean code as a sanctioned violation)", fields[0]))
		}
		return out
	}
	for _, marker := range annotationMarkers {
		rest, ok := strings.CutPrefix(text, marker)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			// Either a different comment altogether, or prose where the
			// marker happens to start a wrapped line ("fp:ignore/...").
			continue
		}
		if strings.TrimSpace(rest) == "" {
			// Reasonless markers are flagged at their use site by the
			// owning analyzer (a field marker) or suppress nothing (a
			// statement marker); the audit flags the statement form.
			out = append(out, p.diag(AuditName, c,
				"%s has no reason and therefore suppresses nothing: state why the site is exempt, or delete the marker", marker))
		} else if !p.usedMarkers[at] {
			out = append(out, p.diag(AuditName, c,
				"stale suppression: this %s marker no longer exempts any diagnostic; delete it (the field or site it guarded is now covered, gone, or renamed)", marker))
		}
		return out
	}
	return out
}

// ExitCode ORs the exit-status bits of every analyzer with findings
// (including AuditBit for stale-suppression findings); zero means clean.
// This is the logical code reported in -json output; ProcessStatus folds
// it into the byte a POSIX exit status can carry.
func ExitCode(diags []Diagnostic) int {
	code := 0
	for _, d := range diags {
		if d.Analyzer == AuditName {
			code |= AuditBit
			continue
		}
		for _, a := range All() {
			if a.Name == d.Analyzer {
				code |= a.Bit
			}
		}
	}
	return code
}

// ProcessStatus folds a logical exit code into the single byte a POSIX
// process status can carry: bits 4..128 pass through unchanged, and bit
// 128 is additionally forced on when any analyzer with a logical bit
// above 255 fired (canonparity=256, strictdecode=512, suppression
// audit=1024) — so an overflowing code can never read as success. The
// full discriminating code is always available via -json ("exit_code")
// and the stderr summary dlvet prints when the two differ.
func ProcessStatus(code int) int {
	status := code & 0xFC
	if code&^0xFF != 0 {
		status |= 0x80
	}
	return status
}

// ---- shared type- and AST-inspection helpers ----

// pkgScope reports whether path lies in the module package modPkg
// ("repro/internal/<modPkg>") or below it.
func pkgScope(path, modPkg string) bool {
	full := "repro/internal/" + modPkg
	return path == full || strings.HasPrefix(path, full+"/")
}

// pkgNameOf returns the imported package path when e is a package
// qualifier identifier (e.g. the "time" in time.Now), or "".
func (p *Package) pkgNameOf(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// calleePkgFunc returns (pkgPath, funcName) when call invokes a
// package-level function through a qualified identifier, else ("", "").
func (p *Package) calleePkgFunc(call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	path := p.pkgNameOf(sel.X)
	if path == "" {
		return "", ""
	}
	return path, sel.Sel.Name
}

// namedOf strips pointers and returns the named type of t, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// recvTypeName returns the receiver's type name for a method
// declaration, stripping a pointer; "" when it is not a plain (possibly
// pointer) named receiver.
func recvTypeName(e ast.Expr) string {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	return id.Name
}

// structDecl finds the AST struct type declaration for the named type,
// so field comments (fp:ignore, non-volatile) can be read.
func (p *Package) structDecl(name string) *ast.StructType {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// fieldComment joins a struct field's doc and trailing comments.
func fieldComment(f *ast.Field) string {
	var parts []string
	if f.Doc != nil {
		parts = append(parts, f.Doc.Text())
	}
	if f.Comment != nil {
		parts = append(parts, f.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// markerReason extracts the reason following marker (e.g. "fp:ignore")
// in a comment; found reports whether the marker is present at all.
func markerReason(comment, marker string) (reason string, found bool) {
	idx := strings.Index(comment, marker)
	if idx < 0 {
		return "", false
	}
	rest := strings.TrimSpace(comment[idx+len(marker):])
	return rest, true
}

// declaredBefore reports whether id's declaration lies before pos (used
// to distinguish loop-local variables from outer state).
func (p *Package) declaredBefore(id *ast.Ident, pos token.Pos) bool {
	obj := p.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < pos
}

// baseIdent walks to the base identifier of a selector/index chain:
// a.b[i].c → a. Nil when the base is not a plain identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
