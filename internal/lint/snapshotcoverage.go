package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotCoverage generalises the fingerprint-coverage analysis to the
// rollback pairs the shrinker, the adversaries and checkpoint replay
// are built on: for every type with a Snapshot/Restore pair
// (sim.Runner, core.PacketIDs, the swarm shrinker's walkSnap methods),
// every *mutable* field of the receiver — a field some method of the
// type assigns — must be referenced by the capture or the restore body.
// A mutable field outside the pair makes rollback lossy: ddmin
// re-executes a candidate from a "restored" state that still carries
// the previous candidate's mutations, so shrunk counterexamples may not
// replay and checkpoint resume silently diverges from the
// uninterrupted run.
//
// A field that is deliberately outside the rollback scope — monotone
// observability bookkeeping, configuration fixed at construction that
// some method nevertheless reassigns — must say so with a
// `// snap:ignore <reason>` comment on the field.
//
// The analyzer also consumes the driver's cross-package facts: a
// capture body that delegates to field.Snapshot() where the field's
// type (possibly from another package) has no matching Restore is
// flagged, because the delegated portion of the state can then never be
// rewound.
var SnapshotCoverage = &Analyzer{
	Name: "snapshotcoverage",
	Doc:  "mutable state outside a Snapshot/Restore pair makes rollback and replay unsound",
	Bit:  128,
	Run:  runSnapshotCoverage,
}

// snapPair is one capture/restore method pair on a receiver type.
type snapPair struct {
	typeName string
	capture  *ast.FuncDecl
	restore  *ast.FuncDecl
}

// captureNames / restoreNames are the method names recognised as the
// two halves of a rollback pair. The capture must take no parameters
// and return the snapshot value; parameterised builders (the explorer's
// checkpoint assembly) are not rollback pairs.
func isCaptureName(s string) bool { return s == "Snapshot" || s == "snapshot" || s == "snap" }
func isRestoreName(s string) bool { return s == "Restore" || s == "restore" }

func runSnapshotCoverage(p *Package, facts *Facts) []Diagnostic {
	pairs := make(map[string]*snapPair)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			typeName := recvTypeName(fd.Recv.List[0].Type)
			if typeName == "" {
				continue
			}
			switch {
			case isCaptureName(fd.Name.Name):
				if fd.Type.Params.NumFields() != 0 || fd.Type.Results.NumFields() == 0 {
					continue
				}
				if pairs[typeName] == nil {
					pairs[typeName] = &snapPair{typeName: typeName}
				}
				pairs[typeName].capture = fd
			case isRestoreName(fd.Name.Name):
				if fd.Type.Params.NumFields() == 0 {
					continue
				}
				if pairs[typeName] == nil {
					pairs[typeName] = &snapPair{typeName: typeName}
				}
				pairs[typeName].restore = fd
			}
		}
	}

	var diags []Diagnostic
	for _, pair := range pairs {
		if pair.capture == nil || pair.restore == nil {
			continue
		}
		diags = append(diags, checkSnapPair(p, facts, pair)...)
	}
	return diags
}

func checkSnapPair(p *Package, facts *Facts, pair *snapPair) []Diagnostic {
	obj, ok := p.Types.Scope().Lookup(pair.typeName).(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}

	// Fields referenced anywhere in the capture or restore body, with
	// the same conservative escape rule as the fingerprint analyzer: a
	// receiver passed somewhere whole may be captured wholesale.
	referenced := make(map[*types.Var]bool)
	escapes := false
	var diags []Diagnostic
	for _, fd := range []*ast.FuncDecl{pair.capture, pair.restore} {
		refs, esc := receiverFieldRefs(p, fd)
		for v := range refs {
			referenced[v] = true
		}
		escapes = escapes || esc
	}
	diags = append(diags, checkSnapDelegation(p, facts, pair.capture)...)
	if escapes {
		return diags
	}

	mutable := mutableFields(p, pair.typeName, st)
	decl := p.structDecl(pair.typeName)
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if referenced[fv] || !mutable[fv] {
			continue
		}
		node, comment, markerPos := fieldDeclOf(p, decl, fv.Name(), "snap:ignore")
		if node == nil {
			node = pair.capture
		}
		if reason, found := markerReason(comment, "snap:ignore"); found {
			if reason != "" {
				p.useMarker(markerPos)
				continue
			}
			diags = append(diags, p.diag("snapshotcoverage", node,
				"field %s.%s has a snap:ignore annotation without a reason; state why the field is safe to leave outside the %s/%s rollback pair",
				pair.typeName, fv.Name(), pair.capture.Name.Name, pair.restore.Name.Name))
			continue
		}
		diags = append(diags, p.diag("snapshotcoverage", node,
			"mutable field %s.%s is outside the %s/%s pair: a restore keeps the previous run's value, so rollback-and-replay (ddmin shrinking, probe replay) silently diverges (capture and restore it, or annotate `// snap:ignore <reason>`)",
			pair.typeName, fv.Name(), pair.capture.Name.Name, pair.restore.Name.Name))
	}
	return diags
}

// receiverFieldRefs collects the receiver's struct fields referenced in
// fd's body, and whether the receiver escapes the method whole.
func receiverFieldRefs(p *Package, fd *ast.FuncDecl) (map[*types.Var]bool, bool) {
	var recvObj types.Object
	if names := fd.Recv.List[0].Names; len(names) == 1 && names[0].Name != "_" {
		recvObj = p.Info.Defs[names[0]]
	}
	refs := make(map[*types.Var]bool)
	escapes := recvObj == nil // a blank receiver cannot reference fields; treat as opaque
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok {
					refs[v] = true
				}
			}
			if id, ok := x.X.(*ast.Ident); ok && recvObj != nil && p.Info.ObjectOf(id) == recvObj {
				return false // base is the receiver: handled above, not an escape
			}
		case *ast.Ident:
			if recvObj != nil && p.Info.ObjectOf(x) == recvObj {
				escapes = true
			}
		}
		return true
	})
	return refs, escapes
}

// mutableFields reports which fields of typeName some method of the
// type assigns (s.f = ..., s.f++, s.f--): the state that can change
// between a capture and a restore and therefore must be covered by the
// pair. Fields written only by constructors or composite literals are
// configuration, not rollback state.
func mutableFields(p *Package, typeName string, st *types.Struct) map[*types.Var]bool {
	own := make(map[*types.Var]bool)
	for i := 0; i < st.NumFields(); i++ {
		own[st.Field(i)] = true
	}
	mutable := make(map[*types.Var]bool)
	mark := func(e ast.Expr) {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return
		}
		s, ok := p.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return
		}
		if v, ok := s.Obj().(*types.Var); ok && own[v] {
			mutable[v] = true
		}
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			if recvTypeName(fd.Recv.List[0].Type) != typeName {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					if x.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range x.Lhs {
						mark(lhs)
					}
				case *ast.IncDecStmt:
					mark(x.X)
				}
				return true
			})
		}
	}
	return mutable
}

// checkSnapDelegation flags capture-body delegation to a field whose
// type has a Snapshot but no Restore: the delegated state could be
// captured but never rewound. The field's type may live in another
// package; the driver's fact store answers from export data.
func checkSnapDelegation(p *Package, facts *Facts, capture *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(capture.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isCaptureName(sel.Sel.Name) {
			return true
		}
		s, ok := p.Info.Selections[sel]
		if !ok || s.Kind() != types.MethodVal {
			return true
		}
		named := namedOf(s.Recv())
		if named == nil {
			return true
		}
		tf := facts.TypeFacts(named)
		if tf.HasSnapshot && !tf.HasRestore {
			diags = append(diags, p.diag("snapshotcoverage", call,
				"capture delegates to %s.%s, but %s has no Restore: the delegated state can be captured but never rewound",
				named.Obj().Name(), sel.Sel.Name, named.Obj().Name()))
		}
		return true
	})
	return diags
}
