package lint

import (
	"go/ast"
	"go/token"
)

// MsgIndep statically enforces the paper's message-independence clause
// (MIT/LCS/TM-355 §5.3.1): a data-link protocol's control flow must be
// equivariant under relabeling of message payloads, i.e. the automata
// may move payloads around but must not branch on their content.
// sim.VerifyMessageIndependence spot-checks this dynamically per
// execution; this analyzer proves the absence of payload branches for
// whole protocol sources.
//
// In internal/protocol, every if-condition, switch tag and case
// expression is scanned for payload-typed (ioa.Message) operands:
//
//   - ==/!= with payload on BOTH sides is allowed — equality of two
//     relabeled payloads is preserved by any injective relabeling
//     (this is exactly the delivery-matching idiom
//     `s.pending[0] != a.Msg`);
//   - ==/!= with payload on ONE side compares content against a fixed
//     value and is flagged;
//   - ordered comparisons (<, <=, >, >=) on payloads, payloads passed
//     to calls inside conditions (len, parsers), and switching on a
//     payload value are all flagged.
var MsgIndep = &Analyzer{
	Name: "msgindep",
	Doc:  "protocol control flow branching on message payload content",
	Bit:  16,
	Run:  runMsgIndep,
}

func runMsgIndep(p *Package, _ *Facts) []Diagnostic {
	if !pkgScope(p.Path, "protocol") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.IfStmt:
				diags = append(diags, checkCond(p, x.Cond)...)
			case *ast.SwitchStmt:
				if x.Tag != nil && p.isPayload(x.Tag) {
					diags = append(diags, p.diag("msgindep", x.Tag,
						"switch on a message payload branches on content, violating message-independence (§5.3.1): protocols may move payloads, not inspect them"))
				}
				for _, s := range x.Body.List {
					cc, ok := s.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						diags = append(diags, checkCond(p, e)...)
					}
				}
			}
			return true
		})
	}
	return diags
}

// isPayload reports whether e is a non-constant expression of the
// payload type ioa.Message. Constants are excluded even when typed as
// Message: a literal acquires the payload type in `m == "x"`, but it is
// fixed content, so comparing a payload against it is exactly the
// content branch the analyzer exists to flag.
func (p *Package) isPayload(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	return isNamedType(tv.Type, "repro/internal/ioa", "Message")
}

// payloadInside reports whether any subexpression of e is
// payload-typed.
func (p *Package) payloadInside(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ex, ok := n.(ast.Expr); ok && p.isPayload(ex) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkCond scans one boolean condition expression for payload
// dependence, recursing through &&/||/!.
func checkCond(p *Package, cond ast.Expr) []Diagnostic {
	var diags []Diagnostic
	switch x := cond.(type) {
	case *ast.ParenExpr:
		return checkCond(p, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			return checkCond(p, x.X)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR:
			diags = append(diags, checkCond(p, x.X)...)
			diags = append(diags, checkCond(p, x.Y)...)
			return diags
		case token.EQL, token.NEQ:
			lp, rp := p.isPayload(x.X), p.isPayload(x.Y)
			if lp && rp {
				return nil // payload==payload is equivariant under relabeling
			}
			if lp || rp {
				return []Diagnostic{p.diag("msgindep", x,
					"comparing a message payload against a non-payload value branches on content, violating message-independence (§5.3.1); only payload-to-payload equality is equivariant")}
			}
			// Neither side is directly payload-typed; look deeper for
			// derived payload uses (len(msg), msg[0], ...).
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			if p.payloadInside(x.X) || p.payloadInside(x.Y) {
				return []Diagnostic{p.diag("msgindep", x,
					"ordered comparison involving a message payload branches on content, violating message-independence (§5.3.1)")}
			}
			return nil
		}
	}
	// Fallback: any call with a payload argument, payload indexing, or
	// other payload-derived value inside a condition is content
	// inspection.
	ast.Inspect(cond, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if p.payloadInside(arg) {
					diags = append(diags, p.diag("msgindep", x,
						"calling a function on a message payload inside a condition inspects content, violating message-independence (§5.3.1)"))
					return false
				}
			}
		case *ast.IndexExpr:
			if p.isPayload(x.X) {
				diags = append(diags, p.diag("msgindep", x,
					"indexing into a message payload inside a condition inspects content, violating message-independence (§5.3.1)"))
				return false
			}
		case *ast.BinaryExpr:
			// Nested comparisons were handled structurally above when
			// they are the whole condition; handle nested ones here.
			switch x.Op {
			case token.EQL, token.NEQ:
				lp, rp := p.isPayload(x.X), p.isPayload(x.Y)
				if lp != rp {
					diags = append(diags, p.diag("msgindep", x,
						"comparing a message payload against a non-payload value branches on content, violating message-independence (§5.3.1); only payload-to-payload equality is equivariant"))
					return false
				}
				if lp && rp {
					return false // equivariant equality; operands are bare payloads
				}
				// Neither side payload-typed: descend for derived uses.
			}
		}
		return true
	})
	return diags
}
