package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// jsonDiagnostic is the machine-readable diagnostic shape emitted by
// dlvet -json: one object per finding, in the same order as the text
// output.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteText prints diagnostics one per line, with file paths made
// relative to base when possible (keeps output stable across checkouts).
func WriteText(w io.Writer, base string, diags []Diagnostic) {
	for _, d := range diags {
		file := relPath(base, d.Pos.Filename)
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

// WriteJSON emits {"diagnostics": [...], "count": N, "exit_code": C}
// for machine consumption (make lint-json). exit_code is the *logical*
// OR of the firing analyzers' bits — including the values above 255
// (canonparity, strictdecode, the suppression audit) that the POSIX
// process status cannot carry; see ProcessStatus.
func WriteJSON(w io.Writer, base string, diags []Diagnostic) error {
	out := struct {
		Diagnostics []jsonDiagnostic `json:"diagnostics"`
		Count       int              `json:"count"`
		ExitCode    int              `json:"exit_code"`
	}{Diagnostics: []jsonDiagnostic{}, Count: len(diags), ExitCode: ExitCode(diags)}
	for _, d := range diags {
		out.Diagnostics = append(out.Diagnostics, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(base, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ---- SARIF 2.1.0 output ----

// The SARIF shapes below carry the minimal property set code-scanning
// consumers (GitHub, VS Code SARIF viewers) require: tool.driver with a
// rule per analyzer, and one result per diagnostic with a physical
// location. All fields are stdlib-JSON-encodable by construction.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// WriteSARIF emits the diagnostics as a single-run SARIF 2.1.0 log
// (make lint-sarif → dlvet.sarif). Every analyzer — plus the reserved
// suppression audit — appears as a rule even when it reported nothing,
// so consumers can tell "checked and clean" from "not checked". File
// URIs are relative to base, matching the text and JSON writers.
func WriteSARIF(w io.Writer, base string, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(All())+1)
	for _, a := range All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               AuditName,
		ShortDescription: sarifMessage{Text: "suppression annotations must suppress a live diagnostic and carry a reason"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(relPath(base, d.Pos.Filename))},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  sarifSchemaURI,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "dlvet", Version: "2", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func relPath(base, file string) string {
	if base == "" {
		return file
	}
	if rel, err := filepath.Rel(base, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return file
}
