package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// jsonDiagnostic is the machine-readable diagnostic shape emitted by
// dlvet -json: one object per finding, in the same order as the text
// output.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteText prints diagnostics one per line, with file paths made
// relative to base when possible (keeps output stable across checkouts).
func WriteText(w io.Writer, base string, diags []Diagnostic) {
	for _, d := range diags {
		file := relPath(base, d.Pos.Filename)
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

// WriteJSON emits {"diagnostics": [...], "count": N} for machine
// consumption (make lint-json).
func WriteJSON(w io.Writer, base string, diags []Diagnostic) error {
	out := struct {
		Diagnostics []jsonDiagnostic `json:"diagnostics"`
		Count       int              `json:"count"`
	}{Diagnostics: []jsonDiagnostic{}, Count: len(diags)}
	for _, d := range diags {
		out.Diagnostics = append(out.Diagnostics, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(base, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func relPath(base, file string) string {
	if base == "" {
		return file
	}
	if rel, err := filepath.Rel(base, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return file
}
