package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// StrictDecode enforces the serialization-soundness discipline on the
// three wire surfaces grown in PRs 5–8: the ioa wire-action codec, the
// transport frame codec and the explorer's checkpoint codec. The
// analyzer activates only in packages that declare a decode sentinel
// (an exported `ErrWire` or `Err*Format` error variable — a fact the
// driver collects once, across packages, from export data) and checks
// three things:
//
//  1. Pairing: an encoder whose name starts with Append/Encode and
//     names a sentinel-bearing surface (Wire, Frame, Checkpoint) must
//     have a Decode/decode counterpart in the same package. An
//     unpaired encoder is write-only wire format: replay and
//     conformance checking cannot read back what the engine emits.
//  2. Typed errors: decode paths (any function or method whose name
//     contains "decode") must not mint raw errors with errors.New or
//     non-wrapping fmt.Errorf. A decode error that does not wrap the
//     package sentinel is invisible to errors.Is dispatch, so callers
//     cannot distinguish "malformed input" from I/O failure — the
//     live-transport monitors would misclassify corruption as
//     disconnection.
//  3. Trailing bytes: a []byte-consuming decoder that does not report
//     a consumed count (no int result) must bound its input with
//     len(input) somewhere — otherwise concatenated or padded frames
//     decode "successfully" with silently ignored suffix bytes, the
//     classic read-back divergence.
var StrictDecode = &Analyzer{
	Name: "strictdecode",
	Doc:  "decode paths must pair their encoders, wrap the package sentinel, and reject trailing bytes",
	Bit:  512,
	Run:  runStrictDecode,
}

// sentinelStems are the wire-surface name stems that demand an
// encoder/decoder pair when they appear in an Append*/Encode* name.
var sentinelStems = []string{"Wire", "Frame", "Checkpoint"}

func runStrictDecode(p *Package, facts *Facts) []Diagnostic {
	sentinels := facts.Sentinels(p.Types.Path())
	if len(sentinels) == 0 {
		return nil
	}

	// Index every function and method name declared in the package, for
	// pairing lookups.
	declared := make(map[string]bool)
	var fns []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				declared[fd.Name.Name] = true
				fns = append(fns, fd)
			}
		}
	}

	var diags []Diagnostic
	for _, fd := range fns {
		diags = append(diags, checkEncoderPairing(p, fd, declared, sentinels)...)
		if strings.Contains(strings.ToLower(fd.Name.Name), "decode") && fd.Body != nil {
			diags = append(diags, checkDecodeErrors(p, fd)...)
			diags = append(diags, checkTrailingBytes(p, fd)...)
		}
	}
	return diags
}

// checkEncoderPairing requires a Decode/decode counterpart for every
// Append*/Encode* function naming a sentinel wire surface.
func checkEncoderPairing(p *Package, fd *ast.FuncDecl, declared map[string]bool, sentinels []string) []Diagnostic {
	name := fd.Name.Name
	var rest string
	switch {
	case strings.HasPrefix(name, "Append"):
		rest = strings.TrimPrefix(name, "Append")
	case strings.HasPrefix(name, "Encode"):
		rest = strings.TrimPrefix(name, "Encode")
	case strings.HasPrefix(name, "append"):
		rest = strings.TrimPrefix(name, "append")
	case strings.HasPrefix(name, "encode"):
		rest = strings.TrimPrefix(name, "encode")
	default:
		return nil
	}
	onSurface := false
	for _, stem := range sentinelStems {
		if strings.Contains(rest, stem) {
			onSurface = true
			break
		}
	}
	if !onSurface {
		return nil
	}
	if declared["Decode"+rest] || declared["decode"+rest] {
		return nil
	}
	return []Diagnostic{p.diag("strictdecode", fd.Name,
		"encoder %s has no Decode%s/decode%s counterpart in the package: the %s surface becomes write-only, so replay and conformance checking cannot read back what the engine emits",
		name, rest, rest, strings.Join(sentinels, "/"))}
}

// checkDecodeErrors flags raw error construction on a decode path:
// errors.New, or fmt.Errorf whose format string has no %w verb.
func checkDecodeErrors(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := p.Info.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		switch {
		case pkgName.Imported().Path() == "errors" && sel.Sel.Name == "New":
			diags = append(diags, p.diag("strictdecode", call,
				"%s mints a raw error with errors.New: decode failures that do not wrap the package sentinel are invisible to errors.Is, so callers cannot tell malformed input from I/O failure (use fmt.Errorf(\"%%w: ...\", <sentinel>))",
				fd.Name.Name))
		case pkgName.Imported().Path() == "fmt" && sel.Sel.Name == "Errorf":
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				return true // dynamic format string; cannot judge statically
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%w") {
				return true
			}
			diags = append(diags, p.diag("strictdecode", call,
				"%s builds a decode error with fmt.Errorf but no %%w verb: the error does not wrap the package sentinel, so errors.Is dispatch cannot classify it as malformed input",
				fd.Name.Name))
		}
		return true
	})
	return diags
}

// checkTrailingBytes requires a len(input) bound in []byte-consuming
// decoders that do not report a consumed count.
func checkTrailingBytes(p *Package, fd *ast.FuncDecl) []Diagnostic {
	// Decoders returning an int hand the trailing-byte decision to the
	// caller via the consumed count; streaming decoders take no []byte.
	if fd.Type.Results != nil {
		for _, r := range fd.Type.Results.List {
			if t := p.Info.TypeOf(r.Type); t != nil && t.String() == "int" {
				return nil
			}
		}
	}
	var param types.Object
	for _, f := range fd.Type.Params.List {
		t := p.Info.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if sl, ok := t.Underlying().(*types.Slice); ok && sl.Elem().String() == "byte" {
			if len(f.Names) > 0 {
				param = p.Info.ObjectOf(f.Names[0])
			}
			break
		}
	}
	if param == nil {
		return nil
	}
	bounded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "len" {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && p.Info.ObjectOf(arg) == param {
			bounded = true
		}
		return true
	})
	if bounded {
		return nil
	}
	return []Diagnostic{p.diag("strictdecode", fd.Name,
		"decoder %s consumes a []byte but neither returns a consumed count nor bounds the input with len(%s): concatenated or padded input decodes \"successfully\" with silently ignored trailing bytes",
		fd.Name.Name, param.Name())}
}
