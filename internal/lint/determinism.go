package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the engine-side reproducibility conventions the
// parallel checker and the swarm harness rely on: same seed, same
// result. In the engine packages (sim, explore, swarm, channel,
// protocol) it forbids
//
//   - wall-clock reads (time.Now / time.Since) — timing belongs in obs,
//     never in a Report or Summary;
//   - the global math/rand functions, which draw from a process-wide
//     source (all randomness must flow from an explicit seeded
//     rand.New(rand.NewSource(seed)));
//   - map iteration whose per-iteration results are accumulated into a
//     slice that is not subsequently sorted in the same block — Go
//     randomizes map order, so the slice's order would differ run to
//     run.
//
// Sites where wall-clock time is deliberately observability-only carry a
// `// lint:ignore determinism <reason>` annotation.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "wall-clock reads, global rand, and unsorted map-order leaks in engine packages",
	Bit:  8,
	Run:  runDeterminism,
}

// determinismScope lists the engine packages the analyzer applies to.
var determinismScope = []string{"sim", "explore", "swarm", "channel", "protocol"}

func runDeterminism(p *Package, _ *Facts) []Diagnostic {
	inScope := false
	for _, s := range determinismScope {
		if pkgScope(p.Path, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				pkg, fn := p.calleePkgFunc(x)
				switch {
				case pkg == "time" && (fn == "Now" || fn == "Since"):
					diags = append(diags, p.diag("determinism", x,
						"time.%s in an engine package: wall-clock time makes runs irreproducible; keep timing in obs and out of reports (or annotate `// lint:ignore determinism <reason>`)", fn))
				case pkg == "math/rand" && fn != "New" && fn != "NewSource" && fn != "NewZipf":
					diags = append(diags, p.diag("determinism", x,
						"math/rand.%s draws from the global source: use an explicit seeded rand.New(rand.NewSource(seed)) so walks replay", fn))
				}
			case *ast.RangeStmt:
				diags = append(diags, checkMapRange(p, x)...)
			}
			return true
		})
	}
	return diags
}

// checkMapRange flags a range over a map whose body accumulates
// key/value-derived results into an outer slice, unless a later
// statement in the enclosing block sorts that slice before it is used.
func checkMapRange(p *Package, rng *ast.RangeStmt) []Diagnostic {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}

	// Collect the slices the loop body appends to or index-assigns.
	targets := make(map[types.Object]ast.Node)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			// x = append(x, ...) into a slice
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
					if base := baseIdent(lhs); base != nil {
						if obj := p.Info.ObjectOf(base); obj != nil && isSliceObj(obj) && obj.Pos() < rng.Pos() {
							targets[obj] = as
						}
					}
				}
				continue
			}
			// s[i] = ... into an outer slice
			if idx, ok := lhs.(*ast.IndexExpr); ok {
				if base := baseIdent(idx.X); base != nil {
					if obj := p.Info.ObjectOf(base); obj != nil && isSliceObj(obj) && obj.Pos() < rng.Pos() {
						targets[obj] = as
					}
				}
			}
		}
		return true
	})
	if len(targets) == 0 {
		return nil
	}

	// Look for a sort of each target in the statements following the
	// range loop inside its enclosing block.
	following := stmtsAfter(p, rng)
	var diags []Diagnostic
	for obj, node := range targets {
		if sortedAfter(p, following, obj) {
			continue
		}
		diags = append(diags, p.diag("determinism", node,
			"map iteration order leaks into slice %q: Go randomizes range-over-map, so this slice's order differs between runs; sort it before use (or build it from sorted keys)", obj.Name()))
	}
	return diags
}

func isSliceObj(obj types.Object) bool {
	if obj == nil || obj.Type() == nil {
		return false
	}
	_, ok := obj.Type().Underlying().(*types.Slice)
	return ok
}

// stmtsAfter returns the statements following n in its innermost
// enclosing block.
func stmtsAfter(p *Package, n ast.Node) []ast.Stmt {
	var out []ast.Stmt
	for _, f := range p.Files {
		if n.Pos() < f.Pos() || n.End() > f.End() {
			continue
		}
		ast.Inspect(f, func(nd ast.Node) bool {
			blk, ok := nd.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, s := range blk.List {
				if s == n {
					out = blk.List[i+1:]
					return false
				}
			}
			return true
		})
	}
	return out
}

// sortedAfter reports whether stmts contain a sort.* or slices.Sort*
// call whose first argument (or whose closure) refers to obj.
func sortedAfter(p *Package, stmts []ast.Stmt, obj types.Object) bool {
	sorted := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || sorted {
				return !sorted
			}
			pkg, _ := p.calleePkgFunc(call)
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if base := baseIdent(arg); base != nil && p.Info.ObjectOf(base) == obj {
					sorted = true
					return false
				}
			}
			return true
		})
		if sorted {
			return true
		}
	}
	return false
}
