package lint

import "testing"

// TestRepoClean is the regression gate: the whole module must stay clean
// under all five analyzers. A new unfingerprinted state field, payload
// branch, wall-clock read, in-loop handle lookup or state-preserving
// crash transition fails this test (and `make lint`) at the exact
// file:line.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping module-wide load in -short mode")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("repo not dlvet-clean: %s", d)
	}
}
