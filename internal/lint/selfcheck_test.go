package lint

import "testing"

// TestRepoClean is the regression gate: the whole module must stay clean
// under all eight analyzers plus the stale-suppression audit. A new
// unfingerprinted state field, payload branch, wall-clock read, in-loop
// handle lookup, state-preserving crash transition, uncovered mutable
// field in a Snapshot/Restore pair, exact/canonical fingerprint parity
// gap, raw decode error, or rotted lint:ignore/fp:ignore line fails this
// test (and `make lint`) at the exact file:line.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping module-wide load in -short mode")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	if got, want := len(All()), 8; got != want {
		t.Fatalf("All() returned %d analyzers, want %d", got, want)
	}
	diags := Run(pkgs, All())
	diags = append(diags, AuditSuppressions(pkgs)...)
	for _, d := range diags {
		t.Errorf("repo not dlvet-clean: %s", d)
	}
}
