package lint

import (
	"go/types"
	"strings"
)

// The facts layer is dlvet v2's cross-package propagation mechanism:
// before any analyzer runs, the driver walks every loaded package *and*
// every in-module dependency visible through gc export data and records
// the soundness-relevant capabilities of each named type (which
// fingerprint, canonical-fingerprint and rollback methods it has) plus
// each package's decode sentinel errors. Analyzers then answer
// questions like "does the type this Snapshot delegates to have a
// matching Restore?" for types defined in *other* packages without any
// extra `go list` pass — the export data loaded once by the driver
// already carries the full method sets.

// TypeFacts records the soundness-relevant method set of one named type
// (methods on the type or its pointer).
type TypeFacts struct {
	// HasAppendFingerprint / HasCanonFingerprint: the exact-dedup and
	// symmetry-quotient encodings the explorer keys states by.
	HasAppendFingerprint bool
	HasCanonFingerprint  bool
	// HasSnapshot / HasRestore: the rollback pair ddmin shrinking and
	// the adversaries' probe-and-replay loops rely on. Snapshot here
	// means a parameterless capture method (Snapshot/snap/snapshot);
	// Restore a restore method (Restore/restore) taking the capture.
	HasSnapshot bool
	HasRestore  bool
}

// Facts is the driver-computed cross-package fact store handed to every
// analyzer run.
type Facts struct {
	// types maps "pkgpath.TypeName" to the type's capabilities.
	types map[string]TypeFacts
	// sentinels maps a package path to its decode sentinel error names
	// (package-level `var Err... = errors.New(...)` whose name is
	// ErrWire or Err*Format).
	sentinels map[string][]string
}

// ComputeFacts builds the fact store for the loaded packages and every
// in-module package reachable through their export data.
func ComputeFacts(pkgs []*Package) *Facts {
	f := &Facts{
		types:     make(map[string]TypeFacts),
		sentinels: make(map[string][]string),
	}
	seen := make(map[*types.Package]bool)
	var visit func(tp *types.Package)
	visit = func(tp *types.Package) {
		if tp == nil || seen[tp] {
			return
		}
		seen[tp] = true
		if strings.HasPrefix(tp.Path(), moduleImportPrefix) {
			f.addScope(tp)
		}
		for _, imp := range tp.Imports() {
			visit(imp)
		}
	}
	for _, p := range pkgs {
		visit(p.Types)
	}
	return f
}

// moduleImportPrefix scopes fact collection to this module.
const moduleImportPrefix = "repro"

// addScope records facts for every named type and sentinel in tp's
// package scope.
func (f *Facts) addScope(tp *types.Package) {
	scope := tp.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		switch o := obj.(type) {
		case *types.TypeName:
			n, ok := o.Type().(*types.Named)
			if !ok {
				continue
			}
			tf := typeFactsOf(n)
			if tf != (TypeFacts{}) {
				f.types[tp.Path()+"."+name] = tf
			}
		case *types.Var:
			if isDecodeSentinelName(name) && isErrorType(o.Type()) {
				f.sentinels[tp.Path()] = append(f.sentinels[tp.Path()], name)
			}
		}
	}
}

// typeFactsOf inspects the method set of n (through a pointer, so both
// value and pointer methods count).
func typeFactsOf(n *types.Named) TypeFacts {
	var tf TypeFacts
	ms := types.NewMethodSet(types.NewPointer(n))
	for i := 0; i < ms.Len(); i++ {
		m, ok := ms.At(i).Obj().(*types.Func)
		if !ok {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok {
			continue
		}
		switch m.Name() {
		case "AppendFingerprint":
			tf.HasAppendFingerprint = true
		case "AppendCanonFingerprint":
			tf.HasCanonFingerprint = true
		case "Snapshot", "snap", "snapshot":
			if sig.Params().Len() == 0 && sig.Results().Len() >= 1 {
				tf.HasSnapshot = true
			}
		case "Restore", "restore":
			if sig.Params().Len() >= 1 {
				tf.HasRestore = true
			}
		}
	}
	return tf
}

// TypeFacts returns the recorded capabilities of the named type n
// (possibly defined in a package outside the analysis set), or the zero
// value when nothing soundness-relevant is known about it.
func (f *Facts) TypeFacts(n *types.Named) TypeFacts {
	if f == nil || n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return TypeFacts{}
	}
	return f.types[n.Obj().Pkg().Path()+"."+n.Obj().Name()]
}

// Sentinels returns the decode sentinel error names declared by the
// package at path.
func (f *Facts) Sentinels(path string) []string {
	if f == nil {
		return nil
	}
	return f.sentinels[path]
}

// isDecodeSentinelName reports whether name follows the repository's
// decode-sentinel convention: ErrWire, ErrFrameFormat,
// ErrCheckpointFormat, ... — an exported Err* whose name is "ErrWire"
// or ends in "Format".
func isDecodeSentinelName(name string) bool {
	if name == "ErrWire" {
		return true
	}
	return strings.HasPrefix(name, "Err") && strings.HasSuffix(name, "Format")
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return t.String() == "error"
}
