package swarm

import (
	"repro/internal/obs"
)

// This file is the sweep's observability surface. Walk workers record
// plain-int walkStats locally; Run aggregates them into the registry and
// trace in job order after the pool drains, so the instruments never
// touch the hot walk loop and Summary stays deterministic (all timing
// lives in obs, never in Summary).
//
// Exported metric names:
//
//	swarm.walks            counter   completed walks (errors excluded)
//	swarm.errors           counter   harness-level walk failures
//	swarm.violations       counter   violating walks (== Summary.Violations)
//	swarm.steps            counter   schedule actions across all walks
//	swarm.faults.loss      counter   lose actions actually injected
//	swarm.faults.dup       counter   duplication surgeries applied
//	swarm.faults.crash     counter   crash+wake outages applied
//	swarm.faults.fail      counter   fail+wake outages applied
//	swarm.shrink.replays   counter   candidate replays spent shrinking
//	swarm.walk_steps       histogram schedule length per walk
//
// Trace events: swarm.walk (one per walk, in combo-then-seed job order),
// swarm.combo (per-combo rollup), swarm.violation (first failing seed of
// each combo, with the schedule tail embedded) and swarm.shrink.

// walkStats counts the fault operations a walk actually applied (skipped
// ops are not counted). Workers fill it with plain increments; Run folds
// it into the registry afterwards.
type walkStats struct {
	fired   int // locally-controlled actions fired by OpStep
	losses  int
	dups    int
	crashes int
	fails   int
}

// instruments is the sweep's resolved handle set; the zero value (all
// nil) is the disabled mode.
type instruments struct {
	walks      *obs.Counter
	errors     *obs.Counter
	violations *obs.Counter
	steps      *obs.Counter
	faultLoss  *obs.Counter
	faultDup   *obs.Counter
	faultCrash *obs.Counter
	faultFail  *obs.Counter
	shrink     *obs.Counter
	walkSteps  *obs.Histogram
}

func newInstruments(reg *obs.Registry) instruments {
	return instruments{
		walks:      reg.Counter("swarm.walks"),
		errors:     reg.Counter("swarm.errors"),
		violations: reg.Counter("swarm.violations"),
		steps:      reg.Counter("swarm.steps"),
		faultLoss:  reg.Counter("swarm.faults.loss"),
		faultDup:   reg.Counter("swarm.faults.dup"),
		faultCrash: reg.Counter("swarm.faults.crash"),
		faultFail:  reg.Counter("swarm.faults.fail"),
		shrink:     reg.Counter("swarm.shrink.replays"),
		walkSteps:  reg.Histogram("swarm.walk_steps", obs.ExpBuckets(8, 2, 12)),
	}
}

// observeWalk folds one completed walk into the counters and trace.
func (ins instruments) observeWalk(tr *obs.Trace, combo Combo, out walkOutcome) {
	ins.walks.Inc()
	ins.steps.Add(int64(out.report.Steps))
	ins.faultLoss.Add(int64(out.stats.losses))
	ins.faultDup.Add(int64(out.stats.dups))
	ins.faultCrash.Add(int64(out.stats.crashes))
	ins.faultFail.Add(int64(out.stats.fails))
	ins.walkSteps.Observe(int64(out.report.Steps))
	if out.report.Property != "" {
		ins.violations.Inc()
	}
	tr.Emit("swarm.walk",
		obs.Str("combo", combo.String()),
		obs.Int("seed", out.report.Seed),
		obs.Int("steps", int64(out.report.Steps)),
		obs.Int("delivered", int64(out.report.Delivered)),
		obs.Int("fired", int64(out.stats.fired)),
		obs.Str("property", out.report.Property),
		obs.F64("elapsed_ms", float64(out.duration.Microseconds())/1000),
	)
}

// violationScheduleTail is how many trailing schedule actions a
// swarm.violation trace event embeds: enough context for an msc chart of
// the failure without recording multi-thousand-step walks wholesale.
const violationScheduleTail = 40

// observeViolation emits the per-combo violation event for the first
// failing seed, embedding the schedule tail (start_index marks where in
// the full schedule the tail begins, so renderers can label real step
// numbers).
func (ins instruments) observeViolation(tr *obs.Trace, combo Combo, out walkOutcome) {
	if tr == nil {
		return
	}
	start := 0
	tail := out.schedule
	if len(tail) > violationScheduleTail {
		start = len(tail) - violationScheduleTail
		tail = tail[start:]
	}
	tr.Emit("swarm.violation",
		obs.Str("combo", combo.String()),
		obs.Int("seed", out.report.Seed),
		obs.Str("property", out.report.Property),
		obs.Str("detail", out.report.Detail),
		obs.Int("steps", int64(out.report.Steps)),
		obs.Int("start_index", int64(start)),
		obs.JSON("schedule", tail),
	)
}
