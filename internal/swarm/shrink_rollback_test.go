package swarm

import (
	"testing"

	"repro/internal/spec"
)

// TestShrinkerRestoreKeepsProgress pins the two snap:ignore contracts
// on the shrinker (checked by the snapshotcoverage analyzer): restore
// rewinds the walker to an execution prefix, while ddmin progress —
// the committed base and the monotone replays counter — must survive
// every rollback.
func TestShrinkerRestoreKeepsProgress(t *testing.T) {
	combo := brokenCombo()
	seed := findBrokenSeed(t, 200)
	ops := GenOps(seed, 200, combo.Faults)
	s, err := newShrinker(combo, ops, spec.PropDL4, 50)
	if err != nil {
		t.Fatal(err)
	}
	start := s.w.r.Execution().Len()
	baseLen := len(s.base)

	ok, err := s.try(0, s.base)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("full op list should violate DL4")
	}
	replays := s.replays
	if replays == 0 {
		t.Fatal("try must count as a replay")
	}

	s.restore(0)
	if got := s.w.r.Execution().Len(); got != start {
		t.Fatalf("restore(0) left the walk at %d steps, want %d", got, start)
	}
	if s.w.viol != nil {
		t.Fatal("restore must clear the recomputed violation")
	}
	// The rollback exemptions: base and replays are minimization state,
	// not walk state.
	if len(s.base) != baseLen {
		t.Fatalf("restore changed the committed base: %d ops, want %d", len(s.base), baseLen)
	}
	if s.replays != replays {
		t.Fatalf("restore rolled the replays counter back to %d, want %d (monotone)", s.replays, replays)
	}

	// A later commit shrinks the base and also survives restore.
	s.commit(0, s.base[:baseLen/2])
	s.restore(0)
	if got := len(s.base); got != baseLen/2 {
		t.Fatalf("committed base did not survive restore: %d ops, want %d", got, baseLen/2)
	}
}
