package swarm

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
)

// OpKind enumerates the fault-schedule operations a walk executes. Every
// operation is *skippable*: when it does not apply in the current state
// (no candidate action, fault class not enabled for the combo) it is a
// no-op. Skippability is what makes shrinking sound — any subsequence of
// any op list is itself executable.
type OpKind uint8

const (
	// OpStep fires one locally-controlled action, chosen by Arg among the
	// canonically sorted candidates (losses excluded; channel deliveries
	// gated by the combo's loss/reorder faults).
	OpStep OpKind = iota
	// OpSend injects the next deterministically minted message
	// (send_msg^{t,r}).
	OpSend
	// OpLose drops an in-transit packet, chosen by Arg among the enabled
	// lose actions.
	OpLose
	// OpDup clones an in-transit packet in place (channel.Duplicate),
	// chosen by Arg among all pending packets of both channels.
	OpDup
	// OpCrashT / OpCrashR crash a station and immediately wake it: a
	// volatile-state wipe for crashing protocols.
	OpCrashT
	OpCrashR
	// OpFailT / OpFailR end a station's working interval and immediately
	// start the next (no state loss).
	OpFailT
	OpFailR
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpStep:
		return "step"
	case OpSend:
		return "send"
	case OpLose:
		return "lose"
	case OpDup:
		return "dup"
	case OpCrashT:
		return "crash-t"
	case OpCrashR:
		return "crash-r"
	case OpFailT:
		return "fail-t"
	case OpFailR:
		return "fail-r"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one fault-schedule operation: a kind plus a selection argument
// (interpreted modulo the current candidate count, so any Arg is valid in
// any state).
type Op struct {
	K   OpKind `json:"k"`
	Arg int    `json:"a,omitempty"`
}

// String renders the op for reports.
func (o Op) String() string {
	if o.Arg == 0 {
		return o.K.String()
	}
	return fmt.Sprintf("%s(%d)", o.K.String(), o.Arg)
}

// FormatOps renders an op list compactly.
func FormatOps(ops []Op) string {
	s := ""
	for i, o := range ops {
		if i > 0 {
			s += " "
		}
		s += o.String()
	}
	return s
}

// GenOps derives a fault schedule of the given length from the seed: a
// weighted stream over the fault classes the combo tolerates. Equal
// (seed, steps, faults) give equal op lists.
func GenOps(seed int64, steps int, f Faults) []Op {
	rng := rand.New(rand.NewSource(seed))
	type weighted struct {
		k OpKind
		w int
	}
	table := []weighted{{OpStep, 12}, {OpSend, 3}}
	if f.Loss {
		table = append(table, weighted{OpLose, 2})
	}
	if f.Dup {
		table = append(table, weighted{OpDup, 1})
	}
	if f.Crash {
		table = append(table, weighted{OpCrashT, 1}, weighted{OpCrashR, 1})
	}
	if f.Fail {
		table = append(table, weighted{OpFailT, 1}, weighted{OpFailR, 1})
	}
	total := 0
	for _, e := range table {
		total += e.w
	}
	ops := make([]Op, 0, steps)
	for len(ops) < steps {
		roll := rng.Intn(total)
		var k OpKind
		for _, e := range table {
			if roll < e.w {
				k = e.k
				break
			}
			roll -= e.w
		}
		ops = append(ops, Op{K: k, Arg: rng.Intn(1 << 16)})
	}
	return ops
}

// PropNoQuiescence is the harness's pseudo-property for a walk whose fair
// extension exhausts its step budget without quiescing: on a finite-send
// trace this is a livelock, the finite shadow of a (DL8) failure.
const PropNoQuiescence = spec.Property("no-quiescence")

// RunResult is the outcome of replaying an op list against a combo.
type RunResult struct {
	// Violation is the first specification violation observed, nil for a
	// clean walk. OpIndex is the index of the op during which it surfaced;
	// len(ops) means it surfaced during the fair extension or final check.
	Violation *spec.Violation
	OpIndex   int
	// Quiesced reports that the fair extension reached quiescence.
	Quiesced bool
	// Sent and Delivered count send_msg and receive_msg events.
	Sent, Delivered int
	// Schedule is the recorded schedule up to the stopping point; Behavior
	// its data-link projection.
	Schedule ioa.Schedule
	Behavior ioa.Schedule
}

// Replay executes ops against a fresh instance of the combo's system,
// checking the behavior against the data link specification after every
// delivery, then runs the fair extension (Lemma 2.1) and applies the full
// DL and PL verdicts. It returns an error only for harness-level failures
// (the walk itself could not be executed); specification violations are
// reported in the result.
func Replay(c Combo, ops []Op, maxExtension int) (*RunResult, error) {
	res, _, err := replay(c, ops, maxExtension, nil)
	return res, err
}

// replay is Replay plus the observability surface: the runner's sim.*
// instruments are attached to reg (nil disables them, at the cost of one
// nil check per step), and the walker's fault-injection stats are
// returned alongside the result.
func replay(c Combo, ops []Op, maxExtension int, reg *obs.Registry) (*RunResult, walkStats, error) {
	var none walkStats
	sys, err := c.Build()
	if err != nil {
		return nil, none, err
	}
	r := sim.NewRunner(sys)
	r.Observe(reg)
	if err := r.WakeBoth(); err != nil {
		return nil, none, err
	}
	w := &walker{combo: c, sys: sys, r: r}
	for i, op := range ops {
		if err := w.apply(op); err != nil {
			return nil, none, fmt.Errorf("swarm: op %d (%s): %w", i, op, err)
		}
		if w.viol != nil {
			return w.result(i, false), w.stats, nil
		}
	}
	quiesced, err := w.extend(maxExtension)
	if err != nil {
		return nil, none, err
	}
	if w.viol == nil {
		v, err := w.finalChecks()
		if err != nil {
			return nil, none, err
		}
		w.viol = v
	}
	return w.result(len(ops), quiesced), w.stats, nil
}

// walker executes ops against one runner. Its rollback-relevant state
// beyond the runner is just the send counter (so snapshots are
// {sim.Snapshot, sent}) plus the first observed violation; stats is
// monotone bookkeeping for the observability layer and is deliberately
// not rolled back by the shrinker.
type walker struct {
	combo Combo
	sys   *core.System
	r     *sim.Runner
	sent  int
	viol  *spec.Violation
	stats walkStats
}

// apply executes one op; inapplicable ops are skipped.
func (w *walker) apply(op Op) error {
	switch op.K {
	case OpSend:
		w.sent++
		return w.r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", w.sent))))
	case OpStep:
		cands := w.stepCandidates()
		if len(cands) == 0 {
			return nil
		}
		fired, err := w.r.Fire(cands[op.Arg%len(cands)])
		if err != nil {
			return err
		}
		w.stats.fired++
		w.observe(fired)
		return nil
	case OpLose:
		if !w.combo.Faults.Loss {
			return nil
		}
		var cands []ioa.Action
		for _, a := range w.sys.Comp.Enabled(w.r.State()) {
			if channel.IsLoseAction(a) {
				cands = append(cands, a)
			}
		}
		if len(cands) == 0 {
			return nil
		}
		ioa.SortActions(cands)
		if _, err := w.r.Fire(cands[op.Arg%len(cands)]); err != nil {
			return err
		}
		w.stats.losses++
		return nil
	case OpDup:
		return w.duplicate(op.Arg)
	case OpCrashT:
		return w.outage(ioa.Crash(ioa.TR), w.combo.Faults.Crash)
	case OpCrashR:
		return w.outage(ioa.Crash(ioa.RT), w.combo.Faults.Crash)
	case OpFailT:
		return w.outage(ioa.Fail(ioa.TR), w.combo.Faults.Fail)
	case OpFailR:
		return w.outage(ioa.Fail(ioa.RT), w.combo.Faults.Fail)
	default:
		return fmt.Errorf("unknown op kind %d", op.K)
	}
}

// stepCandidates collects the locally-controlled actions an OpStep may
// fire: all enabled actions except losses (injected only by OpLose), with
// channel deliveries gated by the combo's fault envelope — when the combo
// may not lose (FIFO channels, where skipping the oldest deliverable
// packet loses it) or may not reorder (non-FIFO channels), only the
// oldest deliverable packet of each channel is eligible. The result is in
// canonical order, so Arg-indexed picks are enumeration-independent.
func (w *walker) stepCandidates() []ioa.Action {
	restrict := (w.combo.FIFO && !w.combo.Faults.Loss) ||
		(!w.combo.FIFO && !w.combo.Faults.Reorder)
	var out, recvTR, recvRT []ioa.Action
	for _, a := range w.sys.Comp.Enabled(w.r.State()) {
		switch {
		case channel.IsLoseAction(a):
		case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.TR:
			recvTR = append(recvTR, a)
		case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.RT:
			recvRT = append(recvRT, a)
		default:
			out = append(out, a)
		}
	}
	for _, grp := range [][]ioa.Action{recvTR, recvRT} {
		if len(grp) == 0 {
			continue
		}
		if restrict {
			oldest := grp[0]
			for _, a := range grp[1:] {
				if a.Pkt.ID < oldest.Pkt.ID {
					oldest = a
				}
			}
			out = append(out, oldest)
		} else {
			out = append(out, grp...)
		}
	}
	ioa.SortActions(out)
	return out
}

// duplicate clones the Arg-th pending packet (counting the t→r channel
// first) in place with a fresh ID. The surgery is applied via SetState:
// a duplicating medium is outside scheds(PL), so walks with dup faults
// are not judged against the PL modules (see finalChecks).
func (w *walker) duplicate(arg int) error {
	if !w.combo.Faults.Dup {
		return nil
	}
	st := w.r.State()
	csTR, err := w.sys.ChannelState(st, ioa.TR)
	if err != nil {
		return err
	}
	csRT, err := w.sys.ChannelState(st, ioa.RT)
	if err != nil {
		return err
	}
	nTR, nRT := csTR.PendingCount(), csRT.PendingCount()
	if nTR+nRT == 0 {
		return nil
	}
	idx := arg % (nTR + nRT)
	dir, local, cs := ioa.TR, idx, csTR
	if idx >= nTR {
		dir, local, cs = ioa.RT, idx-nTR, csRT
	}
	ch := w.sys.Channel(dir)
	dup, _, err := ch.Duplicate(cs, local, w.r.IDs().Next())
	if err != nil {
		return err
	}
	next, err := w.sys.Comp.WithComponentState(st, ch.Name(), dup)
	if err != nil {
		return err
	}
	w.r.SetState(next)
	w.stats.dups++
	return nil
}

// outage applies a crash or fail input immediately followed by the
// matching wake, preserving well-formedness and (DL1) (every interruption
// starts a new working interval).
func (w *walker) outage(a ioa.Action, enabled bool) error {
	if !enabled {
		return nil
	}
	if err := w.r.Input(a); err != nil {
		return err
	}
	if err := w.r.Input(ioa.Wake(a.Dir)); err != nil {
		return err
	}
	if a.Kind == ioa.KindCrash {
		w.stats.crashes++
	} else {
		w.stats.fails++
	}
	return nil
}

// observe checks the behavior prefix after a delivery against the
// prefix-closed safety fragment of the data link specification: (DL4) no
// duplicates, (DL5) no spurious deliveries, (DL6) FIFO order. ((DL7) is
// not prefix-closed and (DL8) is liveness; both wait for finalChecks.)
func (w *walker) observe(a ioa.Action) {
	if w.viol != nil || a.Kind != ioa.KindReceiveMsg {
		return
	}
	beh := w.r.Behavior()
	for _, check := range []func(ioa.Schedule, ioa.Dir) *spec.Violation{spec.DL4, spec.DL5, spec.DL6} {
		if v := check(beh, a.Dir); v != nil {
			w.viol = v
			return
		}
	}
}

// extend runs the lossless fair extension after the fault schedule: the
// executable Lemma 2.1. Exhausting the step budget is reported as a
// no-quiescence violation (livelock), not a harness error.
func (w *walker) extend(maxExtension int) (bool, error) {
	if maxExtension <= 0 {
		maxExtension = 20000
	}
	quiesced, err := w.r.RunFair(sim.RunConfig{
		MaxSteps: maxExtension,
		OnFired:  w.observe,
		Until:    func(ioa.Action, ioa.State) bool { return w.viol != nil },
	})
	if errors.Is(err, sim.ErrStepLimit) {
		w.viol = &spec.Violation{Property: PropNoQuiescence,
			Detail: fmt.Sprintf("no quiescence within %d fair steps after %d sends", maxExtension, w.sent)}
		return false, nil
	}
	return quiesced, err
}

// finalChecks applies the full conditional verdicts to the completed
// trace: CheckDL on the behavior in both directions, and the PL verdicts
// on each packet schedule (skipped when duplication surgery ran — the
// clone's receive_pkt has no matching send_pkt, which is exactly why a
// duplicating medium is not a PL channel). A vacuous DL verdict means the
// harness itself broke the environment hypotheses and is reported as an
// error, not a violation.
func (w *walker) finalChecks() (*spec.Violation, error) {
	beh := w.r.Behavior()
	for _, d := range []ioa.Dir{ioa.TR, ioa.RT} {
		verdict := spec.CheckDL(beh, d)
		if verdict.Vacuous {
			return nil, fmt.Errorf("swarm: walk broke the DL hypotheses for %s: %s", d, verdict)
		}
		if len(verdict.Violations) > 0 {
			return &verdict.Violations[0], nil
		}
	}
	if w.combo.Faults.Dup {
		return nil, nil
	}
	for _, d := range []ioa.Dir{ioa.TR, ioa.RT} {
		sched := w.r.PacketSchedule(d)
		var verdict spec.Verdict
		if w.combo.FIFO {
			verdict = spec.CheckPLFIFO(sched, d)
		} else {
			verdict = spec.CheckPL(sched, d)
		}
		if !verdict.OK() {
			return &verdict.Violations[0], nil
		}
	}
	return nil, nil
}

// result condenses the walker into a RunResult.
func (w *walker) result(opIndex int, quiesced bool) *RunResult {
	beh := w.r.Behavior()
	delivered := 0
	for _, a := range beh {
		if a.Kind == ioa.KindReceiveMsg {
			delivered++
		}
	}
	return &RunResult{
		Violation: w.viol,
		OpIndex:   opIndex,
		Quiesced:  quiesced,
		Sent:      w.sent,
		Delivered: delivered,
		Schedule:  w.r.Schedule(),
		Behavior:  beh,
	}
}
