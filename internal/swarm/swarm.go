// Package swarm is the repository's randomized conformance harness: a
// deterministic, seeded sweep that drives every registered protocol,
// composed with each channel variant it claims to work over, through long
// fault-injected executions and checks every finite behavior against the
// internal/spec verdicts.
//
// The paper's results are adversarial constructions over executions, so
// the repo's real product is trustworthy trace checking: every behavior a
// protocol produces must satisfy (PL1)-(PL6)/(DL1)-(DL8), or the harness
// must hand back a minimal violating schedule. Where the explore package
// proves bounded correctness by exhaustion and the adversary package
// constructs the paper's counterexamples, swarm searches the much larger
// depths that exhaustive search cannot reach: hundreds of steps of loss,
// reordering, duplication, medium outages and host crashes, across many
// seeds in parallel.
//
// Every run is a pure function of (combo, seed): the fault schedule is
// derived from the seed, all scheduling choices are made by seeded index
// into canonically sorted candidate sets (ioa.CompareActions), and packet
// IDs and messages are minted deterministically. Equal seeds therefore
// give byte-identical schedules — which is what makes counterexamples
// shrinkable (shrink.go) and replayable forever from the corpus
// (corpus.go).
package swarm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// Faults selects the fault classes a walk may inject. The zero value
// injects nothing: the walk is then an ordinary random fair execution.
type Faults struct {
	// Loss permits explicit packet drops (the channels' internal lose
	// actions) and, on FIFO channels, gap deliveries (delivering beyond the
	// oldest deliverable packet loses the skipped ones).
	Loss bool `json:"loss,omitempty"`
	// Reorder permits out-of-order delivery on non-FIFO channels: without
	// it the walk delivers oldest-first even over C̄. It has no effect on
	// FIFO channels, whose ordering discipline is structural.
	Reorder bool `json:"reorder,omitempty"`
	// Dup permits duplication surgery: an in-transit packet is cloned in
	// place with a fresh analysis ID (channel.Duplicate). This models a
	// duplicating medium, which the paper's channels never are, so packet
	// schedules are not judged against PL when Dup is set.
	Dup bool `json:"dup,omitempty"`
	// Crash permits host crashes (crash^{d} immediately followed by
	// wake^{d}): a volatile-state wipe for crashing protocols, a plain
	// restart for the non-volatile one.
	Crash bool `json:"crash,omitempty"`
	// Fail permits medium outages (fail^{d} immediately followed by
	// wake^{d}): the working interval ends but no state is lost.
	Fail bool `json:"fail,omitempty"`
}

// None reports whether no fault class is selected.
func (f Faults) None() bool { return !f.Loss && !f.Reorder && !f.Dup && !f.Crash && !f.Fail }

// Names renders the selected fault classes as a sorted list.
func (f Faults) Names() []string {
	var out []string
	if f.Crash {
		out = append(out, "crash")
	}
	if f.Dup {
		out = append(out, "dup")
	}
	if f.Fail {
		out = append(out, "fail")
	}
	if f.Loss {
		out = append(out, "loss")
	}
	if f.Reorder {
		out = append(out, "reorder")
	}
	return out
}

// String renders the fault set for reports, e.g. "loss,reorder".
func (f Faults) String() string {
	if f.None() {
		return "none"
	}
	return strings.Join(f.Names(), ",")
}

// ParseFaults parses a comma-separated fault list ("loss,dup,crash",
// "all", or "none").
func ParseFaults(s string) (Faults, error) {
	var f Faults
	switch s {
	case "", "none":
		return f, nil
	case "all":
		return Faults{Loss: true, Reorder: true, Dup: true, Crash: true, Fail: true}, nil
	}
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "loss":
			f.Loss = true
		case "reorder":
			f.Reorder = true
		case "dup":
			f.Dup = true
		case "crash":
			f.Crash = true
		case "fail":
			f.Fail = true
		default:
			return f, fmt.Errorf("swarm: unknown fault %q (want loss, reorder, dup, crash, fail, all or none)", part)
		}
	}
	return f, nil
}

// Combo is one protocol-channel-fault configuration under test: the unit
// of sweeping and of counterexample replay.
type Combo struct {
	// Protocol names a registry protocol (protocol.ByName), with N and W
	// its parameters where applicable.
	Protocol string `json:"protocol"`
	N        int    `json:"n,omitempty"`
	W        int    `json:"w,omitempty"`
	// FIFO selects the channel variant: Ĉ when true, C̄ otherwise.
	FIFO bool `json:"fifo"`
	// Faults is the fault classes injected in this combo.
	Faults Faults `json:"faults"`
}

// String renders the combo for reports, e.g. "gbn(4,2)/fifo+loss,fail".
func (c Combo) String() string {
	ch := "nonfifo"
	if c.FIFO {
		ch = "fifo"
	}
	name := c.Protocol
	if c.N != 0 || c.W != 0 {
		name = fmt.Sprintf("%s(%d,%d)", c.Protocol, c.N, c.W)
	}
	return name + "/" + ch + "+" + c.Faults.String()
}

// Build composes the combo's system. Channels are lossy whenever the
// combo's fault set includes loss, so that explicit lose actions exist.
func (c Combo) Build() (*core.System, error) {
	p, err := protocol.ByName(c.Protocol, c.N, c.W)
	if err != nil {
		return nil, err
	}
	var opts []core.SystemOption
	if c.Faults.Loss {
		opts = append(opts, core.WithChannelOptions(channel.WithLoss()))
	}
	return core.NewSystem(p, c.FIFO, opts...)
}

// defaultParams returns the (n, w) defaults used for parameterised
// registry protocols in sweeps; protocols without parameters get (0, 0).
func defaultParams(name string) (int, int) {
	switch name {
	case "gbn", "sr":
		return 4, 2
	case "frag":
		return 4, 2
	default:
		return 0, 0
	}
}

// Tolerated returns the subset of the requested fault classes the named
// protocol is claimed to tolerate over the given channel kind — the fault
// envelope inside which every behavior must satisfy the data link
// specification:
//
//   - loss, fail and dup are tolerated by every protocol: retransmission
//     and duplicate filtering are what data link protocols are for;
//   - reorder only exists over non-FIFO channels, and is then tolerated by
//     exactly the protocols that do not require FIFO channels;
//   - crash is only tolerated by non-crashing (non-volatile) protocols —
//     for everything else random crashes genuinely break the spec, which
//     is Theorem 7.5's point, not a harness finding.
func Tolerated(p core.Protocol, fifo bool, requested Faults) Faults {
	f := Faults{
		Loss: requested.Loss,
		Dup:  requested.Dup,
		Fail: requested.Fail,
	}
	if !fifo && !p.Props.RequiresFIFO {
		f.Reorder = requested.Reorder
	}
	if !p.Props.Crashing {
		f.Crash = requested.Crash
	}
	return f
}

// DefaultCombos expands protocol names into the expect-correct sweep
// matrix: each protocol over FIFO channels, plus over non-FIFO channels
// when it does not require FIFO, with the requested faults clipped to the
// protocol's tolerated envelope (see Tolerated). Unknown names are
// rejected. Names may carry explicit parameters via ByName's conventions
// already applied by the caller; here the registry defaults are used.
func DefaultCombos(names []string, requested Faults) ([]Combo, error) {
	var out []Combo
	for _, name := range names {
		n, w := defaultParams(name)
		p, err := protocol.ByName(name, n, w)
		if err != nil {
			return nil, err
		}
		out = append(out, Combo{Protocol: name, N: n, W: w, FIFO: true,
			Faults: Tolerated(p, true, requested)})
		if !p.Props.RequiresFIFO {
			out = append(out, Combo{Protocol: name, N: n, W: w, FIFO: false,
				Faults: Tolerated(p, false, requested)})
		}
	}
	return out, nil
}

// Config parameterises a sweep.
type Config struct {
	// Combos is the configurations to sweep; see DefaultCombos.
	Combos []Combo
	// Seeds is the explicit seed list; see SeedRange for the usual
	// consecutive block.
	Seeds []int64
	// Steps is the number of fault-schedule operations per walk (default
	// 200).
	Steps int
	// Workers bounds the number of concurrent walks (default 1; results
	// are Workers-independent).
	Workers int
	// Shrink enables counterexample minimisation for the first violating
	// seed of each combo.
	Shrink bool
	// MaxExtension bounds the fair extension run after the fault schedule
	// (default 20000 locally-controlled steps).
	MaxExtension int
	// Metrics, when non-nil, receives the sweep's counters and histograms
	// (swarm.* from the aggregation pass, sim.* live from the walks). It
	// never influences the Summary, which stays timing-free and
	// byte-identical for equal configurations.
	Metrics *obs.Registry
	// Trace, when non-nil, receives swarm.walk / swarm.combo /
	// swarm.violation / swarm.shrink events, emitted in deterministic job
	// order during aggregation.
	Trace *obs.Trace
	// OnWalk, when non-nil, is called after each completed walk with the
	// number done so far and the total. It is invoked concurrently from
	// worker goroutines.
	OnWalk func(done, total int)
	// Stop, when non-nil, requests a graceful stop: once the channel is
	// closed no further walks start, in-flight walks finish, and the
	// Summary reports Interrupted with the unstarted walks in Skipped.
	// Completed walks are aggregated normally, so partial sweeps still
	// surface any violations they found.
	Stop <-chan struct{}
}

func (c Config) withDefaults() Config {
	if c.Steps <= 0 {
		c.Steps = 200
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxExtension <= 0 {
		c.MaxExtension = 20000
	}
	return c
}

// SeedRange returns the n consecutive seeds starting at base.
func SeedRange(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// SeedReport records the outcome of one (combo, seed) walk.
type SeedReport struct {
	Seed int64 `json:"seed"`
	// Property is the violated specification property; empty for a clean
	// walk.
	Property string `json:"property,omitempty"`
	Detail   string `json:"detail,omitempty"`
	// Steps is the number of recorded schedule actions, Delivered the
	// number of receive_msg events.
	Steps     int `json:"steps"`
	Delivered int `json:"delivered"`
}

// ComboReport aggregates one combo's walks.
type ComboReport struct {
	Combo Combo `json:"combo"`
	// Name is Combo.String(), for readable JSON.
	Name       string `json:"name"`
	Seeds      int    `json:"seeds"`
	Violations int    `json:"violations"`
	// Failing lists the violating seeds' reports (clean seeds are elided
	// from the JSON to keep summaries small; Seeds counts them).
	Failing []SeedReport `json:"failing,omitempty"`
	// Counterexample is the shrunk minimal counterexample for the first
	// violating seed, when shrinking was enabled.
	Counterexample *Counterexample `json:"counterexample,omitempty"`
	// Errors lists harness-level failures (not spec violations): a walk
	// that could not be executed at all.
	Errors []string `json:"errors,omitempty"`
	// Skipped counts walks never started because the sweep was stopped;
	// Seeds still reports the requested count.
	Skipped int `json:"skipped,omitempty"`
}

// Summary is a sweep's deterministic result: it contains no timing, so
// equal configurations give byte-identical JSON encodings (the
// interruption fields are omitted when zero, keeping uninterrupted
// summaries byte-identical to earlier versions).
type Summary struct {
	Steps      int           `json:"steps"`
	Seeds      int           `json:"seeds"`
	Combos     []ComboReport `json:"combos"`
	Violations int           `json:"violations"`
	// Interrupted reports that Config.Stop ended the sweep early; the
	// aggregates then cover only the walks that ran.
	Interrupted bool `json:"interrupted,omitempty"`
	// Skipped counts walks never started across all combos.
	Skipped int `json:"skipped,omitempty"`
}

// Run executes the sweep: every combo × seed walk, in parallel across a
// worker pool, with deterministic aggregation (results are indexed by
// job, not by completion order — the explore package's level-pool
// discipline, applied to seeds).
func Run(cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	type job struct{ ci, si int }
	jobs := make([]job, 0, len(cfg.Combos)*len(cfg.Seeds))
	for ci := range cfg.Combos {
		for si := range cfg.Seeds {
			jobs = append(jobs, job{ci, si})
		}
	}
	results := make([][]walkOutcome, len(cfg.Combos))
	for ci := range results {
		results[ci] = make([]walkOutcome, len(cfg.Seeds))
	}
	var wg sync.WaitGroup
	var done atomic.Int64
	next := make(chan job)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				combo, seed := cfg.Combos[j.ci], cfg.Seeds[j.si]
				out := runWalk(combo, seed, cfg)
				out.ran = true
				results[j.ci][j.si] = out
				if cfg.OnWalk != nil {
					cfg.OnWalk(int(done.Add(1)), len(jobs))
				}
			}
		}()
	}
	// The feeder stops handing out jobs once Stop closes (a nil Stop
	// channel is never ready, so the select degenerates to a plain send);
	// in-flight walks always finish, and never-started walks are left with
	// ran=false for the aggregation pass to count as skipped.
	interrupted := false
feed:
	for _, j := range jobs {
		select {
		case next <- j:
		case <-cfg.Stop:
			interrupted = true
			break feed
		}
	}
	close(next)
	wg.Wait()
	if !interrupted && stopRequested(cfg.Stop) {
		interrupted = true
	}

	// Aggregation runs single-threaded in job order: the registry and
	// trace see walks in the same deterministic order every run.
	ins := newInstruments(cfg.Metrics)
	sum := &Summary{Steps: cfg.Steps, Seeds: len(cfg.Seeds), Interrupted: interrupted}
	for ci, combo := range cfg.Combos {
		rep := ComboReport{Combo: combo, Name: combo.String(), Seeds: len(cfg.Seeds)}
		for si, seed := range cfg.Seeds {
			out := results[ci][si]
			if !out.ran {
				// Never started (sweep stopped): not a clean walk, not an
				// error — counted separately so partial results are honest.
				rep.Skipped++
				sum.Skipped++
				continue
			}
			if out.err != nil {
				ins.errors.Inc()
				rep.Errors = append(rep.Errors, fmt.Sprintf("seed %d: %v", seed, out.err))
				continue
			}
			ins.observeWalk(cfg.Trace, combo, out)
			if out.report.Property != "" {
				rep.Violations++
				rep.Failing = append(rep.Failing, out.report)
				if rep.Violations == 1 {
					ins.observeViolation(cfg.Trace, combo, out)
				}
			}
		}
		// A stopped sweep skips shrinking: stop means stop promptly, and
		// the violating seed is recorded for a later focused re-run.
		if cfg.Shrink && len(rep.Failing) > 0 && !interrupted {
			cex, replays, err := shrinkSeed(combo, rep.Failing[0].Seed, cfg)
			ins.shrink.Add(int64(replays))
			if err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("shrink seed %d: %v", rep.Failing[0].Seed, err))
			} else {
				rep.Counterexample = cex
				cfg.Trace.Emit("swarm.shrink",
					obs.Str("combo", combo.String()),
					obs.Int("seed", cex.Seed),
					obs.Int("replays", int64(replays)),
					obs.Int("orig_ops", int64(cex.OrigOps)),
					obs.Int("min_ops", int64(len(cex.Ops))),
				)
			}
		}
		cfg.Trace.Emit("swarm.combo",
			obs.Str("combo", combo.String()),
			obs.Int("seeds", int64(rep.Seeds)),
			obs.Int("violations", int64(rep.Violations)),
			obs.Int("errors", int64(len(rep.Errors))),
		)
		sum.Violations += rep.Violations
		sum.Combos = append(sum.Combos, rep)
	}
	sort.SliceStable(sum.Combos, func(i, j int) bool { return sum.Combos[i].Name < sum.Combos[j].Name })
	return sum, nil
}

// walkOutcome is a worker's raw per-seed result. stats, schedule (kept
// for violating walks only) and duration feed the observability layer;
// only report reaches the Summary. ran distinguishes a completed walk
// from the zero value of one skipped by a stopped sweep.
type walkOutcome struct {
	report   SeedReport
	err      error
	ran      bool
	stats    walkStats
	schedule ioa.Schedule
	duration time.Duration
}

// stopRequested polls a graceful-stop channel without blocking.
func stopRequested(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// runWalk executes one seeded walk and condenses it into a SeedReport.
func runWalk(combo Combo, seed int64, cfg Config) walkOutcome {
	began := time.Now() // lint:ignore determinism walk timing feeds obs only; Summary carries no time
	res, stats, err := replay(combo, GenOps(seed, cfg.Steps, combo.Faults), cfg.MaxExtension, cfg.Metrics)
	if err != nil {
		return walkOutcome{err: err}
	}
	rep := SeedReport{Seed: seed, Steps: len(res.Schedule), Delivered: res.Delivered}
	// lint:ignore determinism walk timing feeds obs only; Summary carries no time
	out := walkOutcome{stats: stats, duration: time.Since(began)}
	if res.Violation != nil {
		rep.Property = string(res.Violation.Property)
		rep.Detail = res.Violation.Detail
		out.schedule = res.Schedule
	}
	out.report = rep
	return out
}
