// Corpus persistence: every counterexample the swarm finds — and every
// input a fuzzer ever crashed on — is saved as a JSON entry that
// TestCorpusReplay re-checks forever. The three entry kinds share one
// file format so a single regression test covers the swarm walks, the
// spec-checker containment fuzzing and the channel-invariant fuzzing.
package swarm

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/channel"
	"repro/internal/ioa"
	"repro/internal/spec"
)

// Entry kinds.
const (
	// KindSwarm is a shrunk violating walk: replaying Counterexample.Ops
	// against Counterexample.Combo must reproduce the recorded property
	// violation.
	KindSwarm = "swarm"
	// KindSpec is a raw input to the spec-checker containment assertions
	// (the FuzzCheckersContainment encoding): the containments must hold.
	KindSpec = "spec"
	// KindChannel is a raw input to the channel-invariant assertions (the
	// FuzzChannelInvariants encoding): the invariants must hold.
	KindChannel = "channel"
)

// Entry is one corpus item.
type Entry struct {
	Kind string `json:"kind"`
	// Note says where the entry came from (a swarm run, a fuzzer crash).
	Note string `json:"note,omitempty"`
	// Counterexample carries KindSwarm entries.
	Counterexample *Counterexample `json:"counterexample,omitempty"`
	// Data carries the fuzz input bytes for KindSpec and KindChannel.
	Data []byte `json:"data,omitempty"`
	// FIFO and Lifetime carry KindChannel's remaining fuzz arguments.
	FIFO     bool  `json:"fifo,omitempty"`
	Lifetime uint8 `json:"lifetime,omitempty"`
}

// Name returns the entry's canonical file name: kind plus a content hash,
// so re-saving an entry is idempotent and names never collide.
func (e Entry) Name() (string, error) {
	blob, err := json.Marshal(e)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return fmt.Sprintf("%s-%s.json", e.Kind, hex.EncodeToString(sum[:6])), nil
}

// Save writes the entry into dir (created if missing) under its canonical
// name and returns the path.
func Save(dir string, e Entry) (string, error) {
	name, err := e.Name()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	blob, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	return path, os.WriteFile(path, append(blob, '\n'), 0o644)
}

// Load reads every *.json entry in dir, in name order. A missing dir is
// an empty corpus.
func Load(dir string) (map[string]Entry, error) {
	items, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string]Entry)
	for _, it := range items {
		if it.IsDir() || !strings.HasSuffix(it.Name(), ".json") {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(dir, it.Name()))
		if err != nil {
			return nil, err
		}
		var e Entry
		if err := json.Unmarshal(blob, &e); err != nil {
			return nil, fmt.Errorf("swarm: corpus entry %s: %w", it.Name(), err)
		}
		out[it.Name()] = e
	}
	return out, nil
}

// SortedNames returns a corpus's entry names in order, for deterministic
// replay.
func SortedNames(corpus map[string]Entry) []string {
	names := make([]string, 0, len(corpus))
	for n := range corpus {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ReplayEntry re-checks one corpus entry: a swarm entry must still
// reproduce its recorded violation, a spec or channel entry must still
// satisfy the fuzzers' assertions. A nil error means the regression is
// still covered.
func ReplayEntry(e Entry, maxExtension int) error {
	switch e.Kind {
	case KindSwarm:
		cex := e.Counterexample
		if cex == nil {
			return fmt.Errorf("swarm corpus entry has no counterexample")
		}
		res, err := Replay(cex.Combo, cex.Ops, maxExtension)
		if err != nil {
			return err
		}
		if res.Violation == nil {
			return fmt.Errorf("counterexample no longer violates %s over %s", cex.Property, cex.Combo)
		}
		if string(res.Violation.Property) != cex.Property {
			return fmt.Errorf("counterexample violates %s, recorded %s", res.Violation.Property, cex.Property)
		}
		return nil
	case KindSpec:
		return CheckSpecContainments(SpecScheduleFromBytes(e.Data))
	case KindChannel:
		return CheckChannelOps(e.Data, e.FIFO, e.Lifetime)
	default:
		return fmt.Errorf("unknown corpus entry kind %q", e.Kind)
	}
}

// SwarmEntry wraps a counterexample as a corpus entry.
func SwarmEntry(cex *Counterexample, note string) Entry {
	return Entry{Kind: KindSwarm, Note: note, Counterexample: cex}
}

// --- Shared fuzz encodings -------------------------------------------------
//
// The spec and channel fuzz targets interpret raw bytes through the
// decoders below; keeping decoder and assertions here lets the fuzzers
// (internal/spec and internal/channel external test packages), the
// corpus and the regression test share one definition, so a crashing
// fuzz input can be pasted into a corpus entry verbatim.

// SpecActionFromBytes decodes one pseudo-random layer action from an
// (op, arg) byte pair — the FuzzCheckersContainment encoding.
func SpecActionFromBytes(op, arg byte) ioa.Action {
	dirs := []ioa.Dir{ioa.TR, ioa.RT}
	d := dirs[int(op)%2]
	msg := ioa.Message(string(rune('a' + arg%6)))
	pkt := ioa.Packet{ID: uint64(arg), Header: ioa.Header(string(rune('p' + arg%4)))}
	switch (op / 2) % 7 {
	case 0:
		return ioa.SendMsg(d, msg)
	case 1:
		return ioa.ReceiveMsg(d, msg)
	case 2:
		return ioa.SendPkt(d, pkt)
	case 3:
		return ioa.ReceivePkt(d, pkt)
	case 4:
		return ioa.Wake(d)
	case 5:
		return ioa.Fail(d)
	default:
		return ioa.Crash(d)
	}
}

// SpecScheduleFromBytes decodes a byte string into an action sequence
// (two bytes per action, capped at 200 actions).
func SpecScheduleFromBytes(data []byte) ioa.Schedule {
	var out ioa.Schedule
	for i := 0; i+1 < len(data) && len(out) < 200; i += 2 {
		out = append(out, SpecActionFromBytes(data[i], data[i+1]))
	}
	return out
}

// CheckSpecContainments asserts the paper's module containments on an
// arbitrary sequence: scheds(DL) ⊆ scheds(WDL), scheds(PL-FIFO) ⊆
// scheds(PL), and valid sequences belong to WDL. It returns an error
// naming the first broken containment.
func CheckSpecContainments(beta ioa.Schedule) error {
	dl := spec.CheckDL(beta, ioa.TR)
	wdl := spec.CheckWDL(beta, ioa.TR)
	if dl.OK() && !wdl.OK() {
		return fmt.Errorf("scheds(DL) ⊄ scheds(WDL):\nDL:  %s\nWDL: %s\nβ: %s", dl, wdl, beta)
	}
	plf := spec.CheckPLFIFO(beta, ioa.TR)
	pl := spec.CheckPL(beta, ioa.TR)
	if plf.OK() && !pl.OK() {
		return fmt.Errorf("scheds(PL-FIFO) ⊄ scheds(PL):\nPL-FIFO: %s\nPL: %s\nβ: %s", plf, pl, beta)
	}
	if valid := spec.CheckValid(beta, ioa.TR); valid.OK() && !wdl.OK() {
		return fmt.Errorf("valid sequence rejected by WDL: %s\nβ: %s", wdl, beta)
	}
	// The reverse-direction checkers must be independent (and not panic).
	_ = spec.CheckDL(beta, ioa.RT)
	_ = spec.CheckValid(beta, ioa.RT)
	return nil
}

// CheckChannelOps drives one channel with the FuzzChannelInvariants
// encoding (each byte selects send / deliver / lose / wake / fail /
// crash) and asserts the structural invariants after every accepted step
// plus the PL (resp. PL-FIFO) verdict on the produced schedule. It
// returns an error naming the first broken invariant.
func CheckChannelOps(ops []byte, fifo bool, lifetime uint8) error {
	copts := []channel.Option{channel.WithLoss()}
	if lifetime%4 > 0 {
		copts = append(copts, channel.WithMaxLifetime(int(lifetime%4)))
	}
	var c *channel.Channel
	if fifo {
		c = channel.NewPermissiveFIFO(ioa.TR, copts...)
	} else {
		c = channel.NewPermissive(ioa.TR, copts...)
	}
	st := c.Start()
	var sched ioa.Schedule
	nextID := uint64(1)
	woke := false
	firstKind := func(k ioa.Kind) (ioa.Action, bool) {
		for _, a := range c.Enabled(st) {
			if a.Kind == k {
				return a, true
			}
		}
		return ioa.Action{}, false
	}
	for _, op := range ops {
		var a ioa.Action
		switch op % 6 {
		case 0: // send a fresh packet (only once awake, for PL1)
			if !woke {
				continue
			}
			a = ioa.SendPkt(ioa.TR, ioa.Packet{ID: nextID, Header: "h", Payload: "m"})
		case 1: // deliver: pick the first enabled receive
			var ok bool
			a, ok = firstKind(ioa.KindReceivePkt)
			if !ok {
				continue
			}
		case 2: // lose: pick the first enabled lose action
			var ok bool
			a, ok = firstKind(ioa.KindInternal)
			if !ok {
				continue
			}
		case 3:
			if woke {
				continue // keep well-formedness: no double wake
			}
			a = ioa.Wake(ioa.TR)
		case 4:
			if !woke {
				continue
			}
			a = ioa.Fail(ioa.TR)
		default:
			a = ioa.Crash(ioa.TR)
		}
		next, err := c.Step(st, a)
		if err != nil {
			return fmt.Errorf("Step(%s) on enabled/derived action: %w", a, err)
		}
		st = next
		sched = append(sched, a)
		switch a.Kind {
		case ioa.KindSendPkt:
			nextID++
		case ioa.KindWake:
			woke = true
		case ioa.KindFail, ioa.KindCrash:
			woke = false
		}

		cs := st.(channel.State)
		if got := cs.SentCount(); got != int(nextID-1) {
			return fmt.Errorf("SentCount = %d, want %d", got, nextID-1)
		}
		pending := len(cs.InTransit())
		if cs.DeliveredCount()+pending > cs.SentCount() {
			return fmt.Errorf("accounting broken: delivered %d + pending %d > sent %d",
				cs.DeliveredCount(), pending, cs.SentCount())
		}
		if _, err := c.Residual(st); err != nil {
			return fmt.Errorf("Residual: %w", err)
		}
	}
	// The accepted schedule must satisfy the channel's specification.
	if fifo {
		if v := spec.CheckPLFIFO(sched, ioa.TR); !v.OK() {
			return fmt.Errorf("PL-FIFO violated by channel-accepted schedule: %s\n%s", v, sched)
		}
	} else {
		if v := spec.CheckPL(sched, ioa.TR); !v.OK() {
			return fmt.Errorf("PL violated by channel-accepted schedule: %s\n%s", v, sched)
		}
	}
	return nil
}
