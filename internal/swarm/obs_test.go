package swarm

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/ioa"
	"repro/internal/obs"
)

// obsSweepConfig is a small mixed sweep: one clean combo and the broken
// stuck-bit ABP, so both the clean and the violating paths are exercised.
func obsSweepConfig() Config {
	return Config{
		Combos: []Combo{
			{Protocol: "abp", FIFO: true, Faults: Faults{Loss: true}},
			brokenCombo(),
		},
		Seeds:   SeedRange(1, 8),
		Steps:   200,
		Workers: 4,
	}
}

// TestSwarmMetricsConsistency checks the aggregated counters against the
// Summary they ride along with: walk and violation counts must agree,
// and injected-fault counters must be live when loss faults are on.
func TestSwarmMetricsConsistency(t *testing.T) {
	cfg := obsSweepConfig()
	reg := obs.NewRegistry()
	var traceBuf bytes.Buffer
	tr := obs.NewTrace(&traceBuf)
	cfg.Metrics = reg
	cfg.Trace = tr
	var mu sync.Mutex
	seen := make(map[int]bool)
	total := 0
	cfg.OnWalk = func(done, n int) {
		mu.Lock()
		seen[done] = true
		total = n
		mu.Unlock()
	}
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	walks := len(cfg.Combos) * len(cfg.Seeds)
	if total != walks || len(seen) != walks || !seen[walks] {
		t.Errorf("OnWalk saw %d/%d distinct completions (total reported %d)", len(seen), walks, total)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("swarm.walks"); got != int64(walks) {
		t.Errorf("swarm.walks = %d, want %d", got, walks)
	}
	if got := snap.Counter("swarm.violations"); got != int64(sum.Violations) {
		t.Errorf("swarm.violations = %d, Summary.Violations = %d", got, sum.Violations)
	}
	if sum.Violations == 0 {
		t.Fatal("the broken combo produced no violations; the sweep is not exercising the violating path")
	}
	if got := snap.Counter("swarm.faults.loss"); got == 0 {
		t.Error("swarm.faults.loss = 0 on a loss-faulted sweep")
	}
	h, ok := snap.Histogram("swarm.walk_steps")
	if !ok || h.Count != int64(walks) {
		t.Errorf("swarm.walk_steps observed %d walks, want %d", h.Count, walks)
	}
	if h.Sum != snap.Counter("swarm.steps") {
		t.Errorf("walk_steps sum %d != swarm.steps %d", h.Sum, snap.Counter("swarm.steps"))
	}
	// The shared registry also carries the runners' sim.* instruments.
	var simFired int64
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "sim.fired.") {
			simFired += c.Value
		}
	}
	if simFired == 0 {
		t.Error("no sim.fired.* counters: walks did not attach the sim instruments")
	}

	// Trace stream: schema-valid, one swarm.walk per walk, one swarm.combo
	// per combo, and a violation event carrying a decodable schedule tail.
	var v obs.Validator
	events := map[string]int{}
	var violLine []byte
	sc := bufio.NewScanner(bytes.NewReader(traceBuf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		event, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatalf("trace line invalid: %v", err)
		}
		events[event]++
		if event == "swarm.violation" && violLine == nil {
			violLine = append([]byte(nil), sc.Bytes()...)
		}
	}
	if events["swarm.walk"] != walks || events["swarm.combo"] != len(cfg.Combos) {
		t.Errorf("unexpected event mix: %v", events)
	}
	if events["swarm.violation"] == 0 {
		t.Fatal("no swarm.violation event despite violations")
	}
	var payload struct {
		Steps      int          `json:"steps"`
		StartIndex int          `json:"start_index"`
		Schedule   ioa.Schedule `json:"schedule"`
	}
	if err := json.Unmarshal(violLine, &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Schedule) == 0 || len(payload.Schedule) > violationScheduleTail {
		t.Errorf("violation schedule tail has %d actions, want 1..%d", len(payload.Schedule), violationScheduleTail)
	}
	if payload.StartIndex+len(payload.Schedule) != payload.Steps {
		t.Errorf("start_index %d + tail %d != steps %d", payload.StartIndex, len(payload.Schedule), payload.Steps)
	}
}

// TestSwarmObsKeepsSummaryDeterministic re-runs the same sweep with and
// without observability and asserts byte-identical Summary JSON: the
// instruments must never leak timing or ordering into the result.
func TestSwarmObsKeepsSummaryDeterministic(t *testing.T) {
	encode := func(withObs bool) []byte {
		t.Helper()
		cfg := obsSweepConfig()
		if withObs {
			cfg.Metrics = obs.NewRegistry()
			var buf bytes.Buffer
			cfg.Trace = obs.NewTrace(&buf)
		}
		sum, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	plain := encode(false)
	if instrumented := encode(true); string(instrumented) != string(plain) {
		t.Fatalf("observability changed the summary:\n%s\n%s", plain, instrumented)
	}
}

// TestSwarmShrinkReplaysCounted enables shrinking on the broken combo and
// checks the replay counter and swarm.shrink trace event appear.
func TestSwarmShrinkReplaysCounted(t *testing.T) {
	cfg := Config{
		Combos:  []Combo{brokenCombo()},
		Seeds:   SeedRange(1, 6),
		Steps:   200,
		Workers: 2,
		Shrink:  true,
		Metrics: obs.NewRegistry(),
	}
	var traceBuf bytes.Buffer
	cfg.Trace = obs.NewTrace(&traceBuf)
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Close(); err != nil {
		t.Fatal(err)
	}
	if sum.Violations == 0 || sum.Combos[0].Counterexample == nil {
		t.Fatal("expected a shrunk counterexample from the broken combo")
	}
	// ddmin needs at least the confirmation replay plus some candidates.
	if replays := cfg.Metrics.Snapshot().Counter("swarm.shrink.replays"); replays < 3 {
		t.Errorf("swarm.shrink.replays = %d, want >= 3", replays)
	}
	if !bytes.Contains(traceBuf.Bytes(), []byte(`"event":"swarm.shrink"`)) {
		t.Error("no swarm.shrink trace event")
	}
}
