package swarm

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/protocol"
	"repro/internal/spec"
)

func TestGenOpsDeterministicAndFaultGated(t *testing.T) {
	f := Faults{Loss: true, Crash: true}
	a := GenOps(42, 300, f)
	b := GenOps(42, 300, f)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("GenOps is not deterministic for equal seeds")
	}
	if len(a) != 300 {
		t.Fatalf("GenOps length = %d, want 300", len(a))
	}
	for i, op := range a {
		switch op.K {
		case OpDup, OpFailT, OpFailR:
			t.Fatalf("op %d is %s, not in fault set %s", i, op, f)
		}
	}
	if c := GenOps(43, 300, f); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical op lists")
	}
}

func TestDefaultCombosMatrix(t *testing.T) {
	all := Faults{Loss: true, Reorder: true, Dup: true, Crash: true, Fail: true}
	combos, err := DefaultCombos(protocol.Names(), all)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Combo{}
	for _, c := range combos {
		byName[c.String()] = c
	}
	// Only stenning works over non-FIFO channels, so the matrix is one
	// combo per protocol plus one extra for stenning.
	if want := len(protocol.Names()) + 1; len(combos) != want {
		t.Fatalf("matrix has %d combos, want %d: %v", len(combos), want, SortedNames(map[string]Entry{}))
	}
	st, ok := byName["stenning/nonfifo+dup,fail,loss,reorder"]
	if !ok {
		t.Fatalf("missing stenning non-FIFO combo; have %v", byName)
	}
	if !st.Faults.Reorder {
		t.Fatal("stenning non-FIFO combo lost the reorder fault")
	}
	// Crash is tolerated only by the non-volatile protocol (Theorem 7.5:
	// crashing protocols cannot survive volatile-state wipes).
	for _, c := range combos {
		if c.Faults.Crash != (c.Protocol == "nv") {
			t.Errorf("combo %s: crash fault = %v", c, c.Faults.Crash)
		}
		if c.FIFO && c.Faults.Reorder {
			t.Errorf("combo %s: reorder on a FIFO channel", c)
		}
	}
}

// TestCleanSweep is the harness's core claim: every registered protocol,
// over every channel it claims to work on, with every fault class it
// claims to tolerate, produces only specification-conforming behaviors
// on random fault-injected walks.
func TestCleanSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	all := Faults{Loss: true, Reorder: true, Dup: true, Crash: true, Fail: true}
	combos, err := DefaultCombos(protocol.Names(), all)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(Config{
		Combos:  combos,
		Seeds:   SeedRange(1, 12),
		Steps:   150,
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range sum.Combos {
		for _, e := range rep.Errors {
			t.Errorf("combo %s: harness error: %s", rep.Name, e)
		}
		for _, f := range rep.Failing {
			t.Errorf("combo %s seed %d: %s: %s", rep.Name, f.Seed, f.Property, f.Detail)
		}
	}
	if sum.Violations != 0 {
		t.Fatalf("clean sweep found %d violations", sum.Violations)
	}
}

// brokenCombo is the known-bad target: the stuck-bit ABP receiver over
// FIFO channels with loss, which delivers duplicates (DL4).
func brokenCombo() Combo {
	return Combo{Protocol: "abp-stuck", FIFO: true, Faults: Faults{Loss: true}}
}

// findBrokenSeed returns a seed whose walk violates DL4 on the broken
// combo.
func findBrokenSeed(t *testing.T, steps int) int64 {
	t.Helper()
	for seed := int64(1); seed <= 50; seed++ {
		res, err := Replay(brokenCombo(), GenOps(seed, steps, brokenCombo().Faults), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			if res.Violation.Property != spec.PropDL4 {
				t.Fatalf("seed %d: expected a DL4 violation, got %s", seed, res.Violation)
			}
			return seed
		}
	}
	t.Fatal("no seed in 1..50 exposes the stuck-bit ABP bug")
	return 0
}

// TestBrokenABPIsFoundAndShrunk is the harness's self-test: the swarm
// must find the deliberately broken protocol's DL4 violation and shrink
// it to a minimal counterexample (the issue's bar: at most 20 schedule
// actions).
func TestBrokenABPIsFoundAndShrunk(t *testing.T) {
	combo := brokenCombo()
	seed := findBrokenSeed(t, 200)
	cex, err := ShrinkSeed(combo, seed, Config{Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if cex.Property != string(spec.PropDL4) {
		t.Fatalf("shrunk counterexample violates %s, want DL4", cex.Property)
	}
	if cex.Actions() > 20 {
		t.Fatalf("shrunk counterexample has %d schedule actions, want ≤ 20:\n%s\nops: %s",
			cex.Actions(), cex.MSC, FormatOps(cex.Ops))
	}
	if len(cex.Ops) >= cex.OrigOps {
		t.Fatalf("shrinking did not reduce the op list: %d → %d", cex.OrigOps, len(cex.Ops))
	}
	// The shrunk ops must replay through the corpus path.
	if err := ReplayEntry(SwarmEntry(cex, "self-test"), 0); err != nil {
		t.Fatalf("shrunk counterexample does not replay: %v", err)
	}
}

// TestRunDeterminism: equal configurations give byte-identical summary
// encodings, independent of worker count.
func TestRunDeterminism(t *testing.T) {
	combos, err := DefaultCombos([]string{"abp", "stenning"}, Faults{Loss: true, Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	encode := func(workers int) []byte {
		t.Helper()
		sum, err := Run(Config{Combos: combos, Seeds: SeedRange(7, 6), Steps: 100, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	first := encode(1)
	if again := encode(1); string(again) != string(first) {
		t.Fatalf("same config, different summaries:\n%s\n%s", first, again)
	}
	if par := encode(5); string(par) != string(first) {
		t.Fatalf("worker count changed the summary:\n%s\n%s", first, par)
	}
}

// TestReplayDeterminism: the same (combo, ops) give byte-identical
// schedules.
func TestReplayDeterminism(t *testing.T) {
	combo := Combo{Protocol: "gbn", N: 4, W: 2, FIFO: true,
		Faults: Faults{Loss: true, Fail: true}}
	ops := GenOps(3, 200, combo.Faults)
	a, err := Replay(combo, ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(combo, ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.String() != b.Schedule.String() {
		t.Fatal("equal ops produced different schedules")
	}
	if a.Violation != nil {
		t.Fatalf("gbn walk violated: %s", a.Violation)
	}
}

func TestCorpusSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	entries := []Entry{
		{Kind: KindSpec, Note: "containment probe", Data: []byte{8, 0, 9, 0, 0, 1, 2, 1}},
		{Kind: KindChannel, Note: "channel probe", Data: []byte{3, 0, 0, 1, 1}, FIFO: true, Lifetime: 1},
	}
	for _, e := range entries {
		if _, err := Save(dir, e); err != nil {
			t.Fatal(err)
		}
		// Saving twice is idempotent (content-addressed names).
		if _, err := Save(dir, e); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(entries) {
		t.Fatalf("loaded %d entries, want %d", len(loaded), len(entries))
	}
	for name, e := range loaded {
		if err := ReplayEntry(e, 0); err != nil {
			t.Errorf("entry %s: %v", name, err)
		}
	}
}

// TestCorpusReplay re-checks the committed regression corpus: every
// counterexample the swarm ever found, and every input a fuzzer ever
// broke on, must stay covered forever.
func TestCorpusReplay(t *testing.T) {
	corpus, err := Load(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("committed corpus is empty")
	}
	for _, name := range SortedNames(corpus) {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := ReplayEntry(corpus[name], 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStopSkipsRemainingWalks: a sweep whose Stop channel is already
// closed starts no walks at all; one stopped mid-sweep finishes the
// in-flight walks, counts the rest as skipped (never as clean), and
// marks the summary interrupted.
func TestStopSkipsRemainingWalks(t *testing.T) {
	combos, err := DefaultCombos([]string{"abp"}, Faults{Loss: true})
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	close(closed)
	sum, err := Run(Config{Combos: combos, Seeds: SeedRange(1, 4), Steps: 50, Stop: closed})
	if err != nil {
		t.Fatal(err)
	}
	total := len(combos) * 4
	if !sum.Interrupted || sum.Skipped != total {
		t.Fatalf("pre-closed stop: interrupted=%t skipped=%d, want true/%d", sum.Interrupted, sum.Skipped, total)
	}
	var comboSkipped int
	for _, rep := range sum.Combos {
		comboSkipped += rep.Skipped
	}
	if comboSkipped != total {
		t.Errorf("per-combo skipped sum = %d, want %d", comboSkipped, total)
	}

	stop := make(chan struct{})
	var once sync.Once
	sum, err = Run(Config{
		Combos: combos, Seeds: SeedRange(1, 8), Steps: 50, Workers: 1,
		Stop:   stop,
		OnWalk: func(done, total int) { once.Do(func() { close(stop) }) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Interrupted {
		t.Error("mid-sweep stop not reported as interrupted")
	}
	if sum.Skipped == 0 {
		t.Error("mid-sweep stop skipped no walks")
	}
	ran := 0
	for _, rep := range sum.Combos {
		ran += rep.Seeds - rep.Skipped
	}
	if ran+sum.Skipped != len(combos)*8 {
		t.Errorf("ran %d + skipped %d != %d walks", ran, sum.Skipped, len(combos)*8)
	}
}

// TestUninterruptedSummaryOmitsStopFields: the interruption fields are
// omitempty, so summaries of complete sweeps stay byte-identical with
// pre-checkpoint versions (and with a nil Stop channel configured).
func TestUninterruptedSummaryOmitsStopFields(t *testing.T) {
	combos, err := DefaultCombos([]string{"abp"}, Faults{Loss: true})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{}) // armed but never fired
	sum, err := Run(Config{Combos: combos, Seeds: SeedRange(1, 2), Steps: 40, Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"interrupted", "skipped"} {
		if bytes.Contains(blob, []byte(field)) {
			t.Errorf("complete sweep summary contains %q:\n%s", field, blob)
		}
	}
}
