package swarm

import (
	"fmt"

	"repro/internal/msc"
	"repro/internal/sim"
	"repro/internal/spec"
)

// Counterexample is a shrunk violating walk: everything needed to
// re-derive, replay and read the violation.
type Counterexample struct {
	Combo    Combo  `json:"combo"`
	Seed     int64  `json:"seed"`
	Property string `json:"property"`
	Detail   string `json:"detail"`
	// Ops is the minimised fault schedule; OrigOps the length it was
	// shrunk from.
	Ops     []Op `json:"ops"`
	OrigOps int  `json:"orig_ops"`
	// Schedule is the violating run's recorded schedule (rendered), MSC
	// its message sequence chart — both for human inspection; Ops is what
	// replays.
	Schedule []string `json:"schedule"`
	MSC      string   `json:"msc,omitempty"`
}

// Actions is the length of the violating schedule.
func (c *Counterexample) Actions() int { return len(c.Schedule) }

// ShrinkSeed regenerates the seed's fault schedule, confirms it violates,
// shrinks it to a minimal counterexample and replays the minimum for its
// rendered schedule and chart.
func ShrinkSeed(c Combo, seed int64, cfg Config) (*Counterexample, error) {
	cex, _, err := shrinkSeed(c, seed, cfg)
	return cex, err
}

// shrinkSeed is ShrinkSeed plus the observability surface: it also
// returns how many candidate replays the attempt cost (the two full
// confirmation replays included), whether or not it succeeded.
func shrinkSeed(c Combo, seed int64, cfg Config) (*Counterexample, int, error) {
	cfg = cfg.withDefaults()
	replays := 0
	ops := GenOps(seed, cfg.Steps, c.Faults)
	orig, err := Replay(c, ops, cfg.MaxExtension)
	replays++
	if err != nil {
		return nil, replays, err
	}
	if orig.Violation == nil {
		return nil, replays, fmt.Errorf("swarm: seed %d does not violate %s", seed, c)
	}
	minOps, tries, err := shrink(c, ops, orig.Violation.Property, cfg.MaxExtension)
	replays += tries
	if err != nil {
		return nil, replays, err
	}
	final, err := Replay(c, minOps, cfg.MaxExtension)
	replays++
	if err != nil {
		return nil, replays, err
	}
	if final.Violation == nil || final.Violation.Property != orig.Violation.Property {
		return nil, replays, fmt.Errorf("swarm: shrink lost the %s violation for seed %d", orig.Violation.Property, seed)
	}
	sched := make([]string, len(final.Schedule))
	for i, a := range final.Schedule {
		sched[i] = a.String()
	}
	return &Counterexample{
		Combo:    c,
		Seed:     seed,
		Property: string(final.Violation.Property),
		Detail:   final.Violation.Detail,
		Ops:      minOps,
		OrigOps:  len(ops),
		Schedule: sched,
		MSC:      msc.Render(final.Behavior, msc.Options{}),
	}, replays, nil
}

// Shrink minimises ops to a small subsequence (with simplified selection
// arguments) whose replay against the combo still violates the given
// property: ddmin chunk removal, then single-op removal to a fixpoint,
// then argument zeroing. Candidates are replayed through the runner's
// Snapshot/Restore — the shared prefix of consecutive candidates is never
// re-executed.
func Shrink(c Combo, ops []Op, want spec.Property, maxExtension int) ([]Op, error) {
	minOps, _, err := shrink(c, ops, want, maxExtension)
	return minOps, err
}

// shrink is Shrink plus the observability surface: it also returns how
// many candidate replays the minimisation spent.
func shrink(c Combo, ops []Op, want spec.Property, maxExtension int) ([]Op, int, error) {
	s, err := newShrinker(c, ops, want, maxExtension)
	if err != nil {
		return nil, 0, err
	}
	ok, err := s.try(0, s.base)
	if err != nil {
		return nil, s.replays, err
	}
	if !ok {
		return nil, s.replays, fmt.Errorf("swarm: ops do not violate %s over %s", want, c)
	}
	if err := s.minimize(); err != nil {
		return nil, s.replays, err
	}
	return s.base, s.replays, nil
}

// walkSnap is a rollback point for the walker: the runner snapshot plus
// the send counter (the walker's only other state; the violation field is
// recomputed, never restored).
type walkSnap struct {
	sim  sim.Snapshot
	sent int
}

// shrinker evaluates candidate op lists against one persistent runner.
// snaps[i] is the rollback point before base op i (snaps[0] is the woken
// start state); the invariant is that every retained snapshot lies on the
// current runner execution's prefix, so restoring it is sound. Running a
// candidate that diverges after prefix p invalidates later snapshots,
// which try therefore truncates first.
type shrinker struct {
	combo  Combo
	want   spec.Property
	maxExt int
	w      *walker
	// snap:ignore ddmin progress, not walk state: snap/restore rewind the runner to an execution prefix, while a committed shorter base must survive every later rollback
	base  []Op
	snaps []walkSnap
	// replays counts candidate evaluations (try calls) for the
	// observability layer's swarm.shrink.replays counter.
	// snap:ignore monotone observability counter: rolling it back would undercount replays in the telemetry snapshot
	replays int
}

func newShrinker(c Combo, ops []Op, want spec.Property, maxExtension int) (*shrinker, error) {
	sys, err := c.Build()
	if err != nil {
		return nil, err
	}
	r := sim.NewRunner(sys)
	if err := r.WakeBoth(); err != nil {
		return nil, err
	}
	s := &shrinker{
		combo:  c,
		want:   want,
		maxExt: maxExtension,
		w:      &walker{combo: c, sys: sys, r: r},
		base:   append([]Op{}, ops...),
	}
	s.snaps = []walkSnap{s.snap()}
	return s, nil
}

func (s *shrinker) snap() walkSnap { return walkSnap{sim: s.w.r.Snapshot(), sent: s.w.sent} }

func (s *shrinker) restore(i int) {
	s.w.r.Restore(s.snaps[i].sim)
	s.w.sent = s.snaps[i].sent
	s.w.viol = nil
}

// ensure replays base ops until snaps[p] exists.
func (s *shrinker) ensure(p int) error {
	if p < len(s.snaps) {
		return nil
	}
	k := len(s.snaps) - 1
	s.restore(k)
	for i := k; i < p; i++ {
		if err := s.w.apply(s.base[i]); err != nil {
			return err
		}
		s.snaps = append(s.snaps, s.snap())
	}
	return nil
}

// try replays base[:p] followed by rest and reports whether the wanted
// property is violated. The prefix comes from a snapshot; only rest and
// the fair extension execute.
func (s *shrinker) try(p int, rest []Op) (bool, error) {
	s.replays++
	if err := s.ensure(p); err != nil {
		return false, err
	}
	s.snaps = s.snaps[:p+1]
	s.restore(p)
	for _, op := range rest {
		if err := s.w.apply(op); err != nil {
			return false, err
		}
		if s.w.viol != nil {
			break
		}
	}
	if s.w.viol == nil {
		if _, err := s.w.extend(s.maxExt); err != nil {
			return false, err
		}
	}
	if s.w.viol == nil {
		v, err := s.w.finalChecks()
		if err != nil {
			return false, err
		}
		s.w.viol = v
	}
	return s.w.viol != nil && s.w.viol.Property == s.want, nil
}

// commit adopts base[:p] + rest as the new base.
func (s *shrinker) commit(p int, rest []Op) {
	nb := append([]Op{}, s.base[:p]...)
	nb = append(nb, rest...)
	s.base = nb
	if p+1 < len(s.snaps) {
		s.snaps = s.snaps[:p+1]
	}
}

// minimize shrinks base in place: ddmin, then 1-minimality, then argument
// canonicalisation.
func (s *shrinker) minimize() error {
	// Phase 1: ddmin complement reduction (Zeller-Hildebrandt): try
	// removing each of n chunks, refining granularity while nothing is
	// removable.
	n := 2
	for len(s.base) >= 2 {
		if n > len(s.base) {
			n = len(s.base)
		}
		chunk := (len(s.base) + n - 1) / n
		reduced := false
		for start := 0; start < len(s.base); start += chunk {
			end := start + chunk
			if end > len(s.base) {
				end = len(s.base)
			}
			ok, err := s.try(start, s.base[end:])
			if err != nil {
				return err
			}
			if ok {
				s.commit(start, append([]Op{}, s.base[end:]...))
				reduced = true
				break
			}
		}
		if reduced {
			if n > 2 {
				n--
			}
			continue
		}
		if n >= len(s.base) {
			break
		}
		n *= 2
	}
	// Phase 2: single-op removal to a fixpoint. Back to front, so the
	// snapshot prefix of the next candidate stays valid.
	for changed := true; changed; {
		changed = false
		for i := len(s.base) - 1; i >= 0; i-- {
			ok, err := s.try(i, s.base[i+1:])
			if err != nil {
				return err
			}
			if ok {
				s.commit(i, append([]Op{}, s.base[i+1:]...))
				changed = true
			}
		}
	}
	// Phase 3: zero the selection arguments where the violation persists,
	// so minimal counterexamples read canonically.
	for i := 0; i < len(s.base); i++ {
		if s.base[i].Arg == 0 {
			continue
		}
		cand := append([]Op{}, s.base[i:]...)
		cand[0].Arg = 0
		ok, err := s.try(i, cand)
		if err != nil {
			return err
		}
		if ok {
			s.commit(i, cand)
		}
	}
	return nil
}
