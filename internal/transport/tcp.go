package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/spec"
)

// The TCP backend runs a protocol pair over a real socket: the client
// hosts the transmitter A^t, the server hosts the receiver A^r, and
// both sides run the full online monitor bundle over the same global
// schedule. Each side applies its local actions and mirrors every one
// to its peer as an Event frame, emitted before any Data frame the
// action caused; since TCP preserves order, each side observes a
// causally-consistent linearization of the session's global schedule,
// so a monitor verdict on either side is a verdict on a genuine
// schedule of the composed system (DESIGN.md §9).
//
// Session wire protocol, all frames from frame.go:
//
//	client → server: Hello(proto, n, w, fifo)
//	server → client: Hello echo (acceptance) — or close (rejection)
//	client → server: Status(wake^{r,t}), Data(send_pkt^{t,r}), Event(...), Bye
//	server → client: Data(send_pkt^{r,t}), Event(...), Bye (seal reply)
//
// The Bye exchange is the seal barrier: the server seals its monitors
// after processing everything that precedes the client's Bye, and the
// client seals after the server's reply, which trails every mirrored
// event of the session.

// SessionSummary reports one served session.
type SessionSummary struct {
	// ID numbers the session within one Serve call, 1-based; it also
	// tags the session's trace events.
	ID        int64
	Remote    string
	Proto     string
	N, W      int
	FIFO      bool
	Delivered int
	Verdicts  VerdictSet
	// Violations counts online-monitor signals during the session.
	Violations int
	// FramesIn and FramesOut count wire frames each way.
	FramesIn, FramesOut int
	// Duration is wall time from accept to session end.
	Duration time.Duration
	// Err reports a harness failure (bad hello, broken peer, I/O);
	// specification violations live in Verdicts instead.
	Err error
}

// ServerConfig configures Serve.
type ServerConfig struct {
	// Resolve maps a Hello to a protocol (typically protocol.ByName).
	// Required.
	Resolve func(name string, n, w int) (core.Protocol, error)
	// Registry receives the transport metrics; nil disables them.
	Registry *obs.Registry
	// Trace, when set, receives each session's transport.* trace events
	// (the server's causal linearization of the global schedule).
	Trace *obs.Trace
	// OnSession, when set, observes each completed session.
	OnSession func(SessionSummary)
	// MaxSessions, when positive, closes the listener and returns from
	// Serve after that many sessions complete.
	MaxSessions int
	// SessionTimeout bounds each session; default 60s.
	SessionTimeout time.Duration
}

// Serve accepts connections on ln and runs one monitored receiver
// session per connection until the listener closes. It returns nil when
// the listener was closed deliberately (by the caller, or by reaching
// MaxSessions) and the accept error otherwise.
func Serve(ln net.Listener, cfg ServerConfig) error {
	if cfg.Resolve == nil {
		return fmt.Errorf("transport: ServerConfig.Resolve is required")
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	served, closed := 0, false
	closeLn := func() {
		mu.Lock()
		defer mu.Unlock()
		if !closed {
			closed = true
			ln.Close()
		}
	}
	defer closeLn()
	var nextID int64
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			mu.Lock()
			wasClosed := closed
			mu.Unlock()
			if wasClosed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		nextID++
		id := nextID
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum := serveConn(conn, cfg, id)
			if cfg.OnSession != nil {
				cfg.OnSession(sum)
			}
			if cfg.MaxSessions > 0 {
				mu.Lock()
				served++
				hitCap := served >= cfg.MaxSessions
				mu.Unlock()
				if hitCap {
					closeLn()
				}
			}
		}()
	}
}

// serveConn runs one receiver session. It is single-threaded: every
// state change is driven by the inbound frame stream, so no lock is
// needed; TCP's ordering does the serialisation.
func serveConn(conn net.Conn, cfg ServerConfig, id int64) (sum SessionSummary) {
	defer conn.Close()
	started := time.Now()
	sum = SessionSummary{ID: id, Remote: conn.RemoteAddr().String()}
	// Named return: the deferred stamp must land in the returned value.
	defer func() { sum.Duration = time.Since(started) }()
	timeout := cfg.SessionTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	conn.SetDeadline(time.Now().Add(timeout))

	ins := newInstruments(cfg.Registry)
	fr := NewFrameReader(conn)
	fr.OnFrame = func(n int) { ins.frameReceived(n); sum.FramesIn++ }
	fw := NewFrameWriter(conn)
	fw.OnFrame = func(n int) { ins.frameSent(n); sum.FramesOut++ }

	hello, err := fr.Next()
	if err != nil || hello.Type != FrameHello {
		sum.Err = fmt.Errorf("transport: expected hello, got %v (%v)", hello.Type, err)
		return sum
	}
	sum.Proto, sum.N, sum.W, sum.FIFO = hello.Proto, hello.N, hello.W, hello.FIFO
	p, err := cfg.Resolve(hello.Proto, hello.N, hello.W)
	if err != nil {
		sum.Err = fmt.Errorf("transport: rejecting hello: %w", err)
		return sum
	}
	if err := fw.Write(hello); err != nil {
		sum.Err = err
		return sum
	}
	tracer := newSessionTracer(cfg.Trace, "server", ioa.R, id)
	tracer.hello(hello.Proto, hello.N, hello.W, hello.FIFO)
	spans := newSpanTracker(cfg.Registry != nil, &ins)

	mons := NewMonitors(hello.FIFO, true, func(v spec.Violation) {
		ins.violations.Inc()
		sum.Violations++
		tracer.violation(v)
	})
	var writeErr error
	emit := func(a ioa.Action) {
		spans.observe(a)
		tracer.event(true, a)
		mons.Observe(a)
		if err := fw.Write(Frame{Type: FrameEvent, Action: a}); err != nil && writeErr == nil {
			writeErr = err
		}
	}
	send := func(pkt ioa.Packet) error {
		return fw.Write(Frame{Type: FrameData, Action: ioa.SendPkt(ioa.RT, pkt)})
	}
	ep, err := NewEndpoint(p, ioa.R, emit, send, func(ioa.Message) {
		sum.Delivered++
		ins.msgsDelivered.Inc()
	})
	if err != nil {
		sum.Err = err
		return sum
	}

	for {
		f, err := fr.Next()
		if err != nil {
			if errors.Is(err, ErrFrameFormat) {
				ins.decodeErrors.Inc()
			}
			sum.Err = fmt.Errorf("transport: session aborted: %w", err)
			return sum
		}
		switch f.Type {
		case FrameStatus:
			// A status input for this station; the emit mirror is the echo
			// the client merges into its own monitor stream.
			if f.Action.Dir != ioa.RT {
				sum.Err = fmt.Errorf("transport: status %s is not for the receiver", f.Action)
				return sum
			}
			if err := ep.Input(f.Action); err != nil {
				sum.Err = err
				return sum
			}
		case FrameData:
			if f.Action.Dir != ioa.TR {
				sum.Err = fmt.Errorf("transport: data %s is not transmitter-to-receiver", f.Action)
				return sum
			}
			if err := ep.HandlePacket(f.Action.Pkt); err != nil {
				sum.Err = err
				return sum
			}
		case FrameEvent:
			// The client's mirror of one of its local events: merge it
			// into the monitor stream, apply nothing.
			spans.observe(f.Action)
			tracer.event(false, f.Action)
			mons.Observe(f.Action)
			continue
		case FrameBye:
			sum.Verdicts = mons.Seal()
			tracer.seal(sum.Verdicts, sum.Delivered)
			if err := fw.Write(Frame{Type: FrameBye}); err != nil && writeErr == nil {
				writeErr = err
			}
			sum.Err = writeErr
			return sum
		default:
			sum.Err = fmt.Errorf("transport: unexpected %v frame mid-session", f.Type)
			return sum
		}
		if _, err := ep.Pump(); err != nil {
			sum.Err = err
			return sum
		}
		if writeErr != nil {
			sum.Err = writeErr
			return sum
		}
	}
}

// ClientConfig configures RunClient.
type ClientConfig struct {
	// Protocol is the pair whose transmitter this client hosts; it must
	// be the pair the server resolves ProtoName to.
	Protocol core.Protocol
	// ProtoName, N, W and FIFO form the Hello.
	ProtoName string
	N, W      int
	FIFO      bool
	// Msgs is the number of messages to push through the session.
	Msgs int
	// Window caps injected-but-unconfirmed messages; default 4.
	Window int
	// Timeout bounds the whole session; default 30s.
	Timeout time.Duration
	// Retransmit is the re-arm period for stalled sends; default 25ms.
	// Over a healthy TCP link it never fires.
	Retransmit time.Duration
	// Registry receives the transport metrics; nil disables them.
	Registry *obs.Registry
	// Trace, when set, receives the session's transport.* trace events
	// (the client's causal linearization of the global schedule).
	Trace *obs.Trace
	// Session tags this session's trace events; a client trace holds one
	// session, so zero is the usual value.
	Session int64
	// KeepLog retains the merged global schedule in the result.
	KeepLog bool
}

// ClientResult reports a completed client session.
type ClientResult struct {
	// Verdicts is the client-side monitors' sealed judgement.
	Verdicts VerdictSet
	// Delivered is the receiver's delivery sequence, reconstructed from
	// the mirrored receive_msg events.
	Delivered []ioa.Message
	// Injected counts send_msg inputs applied.
	Injected int
	// Log is the merged schedule the monitors judged (KeepLog only).
	Log ioa.Schedule
	// Violations lists online-signalled violations in signal order.
	Violations []spec.Violation
}

// RunClient drives cfg.Msgs messages through a transmitter session on
// conn. As with RunLoopback, the returned error reports harness
// failures only; specification violations are results, in Verdicts.
func RunClient(conn net.Conn, cfg ClientConfig) (*ClientResult, error) {
	if cfg.Msgs <= 0 {
		return nil, fmt.Errorf("transport: client needs Msgs > 0")
	}
	window := cfg.Window
	if window <= 0 {
		window = 4
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	retransmit := cfg.Retransmit
	if retransmit <= 0 {
		retransmit = 25 * time.Millisecond
	}
	conn.SetDeadline(time.Now().Add(timeout))

	ins := newInstruments(cfg.Registry)
	fr := NewFrameReader(conn)
	fr.OnFrame = ins.frameReceived
	fw := NewFrameWriter(conn)
	fw.OnFrame = ins.frameSent

	hello := Frame{Type: FrameHello, Proto: cfg.ProtoName, N: cfg.N, W: cfg.W, FIFO: cfg.FIFO}
	if err := fw.Write(hello); err != nil {
		return nil, err
	}
	echo, err := fr.Next()
	if err != nil {
		return nil, fmt.Errorf("transport: hello rejected: %w", err)
	}
	if echo != hello {
		return nil, fmt.Errorf("transport: hello echo mismatch: %+v", echo)
	}
	tracer := newSessionTracer(cfg.Trace, "client", ioa.T, cfg.Session)
	tracer.hello(cfg.ProtoName, cfg.N, cfg.W, cfg.FIFO)
	spans := newSpanTracker(cfg.Registry != nil, &ins)

	res := &ClientResult{}
	var (
		mu         sync.Mutex
		cond       = sync.NewCond(&mu)
		sessionErr error
		sealed     bool // server's Bye reply arrived
		closing    bool // our Bye is written; contribute no further events
		finished   bool // RunClient has returned; the result is the caller's
	)
	fail := func(err error) {
		if sessionErr == nil && err != nil {
			sessionErr = err
		}
		cond.Broadcast()
	}
	mons := NewMonitors(cfg.FIFO, true, func(v spec.Violation) {
		ins.violations.Inc()
		res.Violations = append(res.Violations, v)
		tracer.violation(v)
	})
	observe := func(local bool, a ioa.Action) {
		if cfg.KeepLog {
			res.Log = append(res.Log, a)
		}
		spans.observe(a)
		tracer.event(local, a)
		mons.Observe(a)
	}
	emit := func(a ioa.Action) {
		observe(true, a)
		if closing {
			// The session is sealed on the server's side; anything we
			// applied after our Bye stays local.
			return
		}
		if err := fw.Write(Frame{Type: FrameEvent, Action: a}); err != nil {
			fail(err)
		}
	}
	send := func(pkt ioa.Packet) error {
		return fw.Write(Frame{Type: FrameData, Action: ioa.SendPkt(ioa.TR, pkt)})
	}
	ep, err := NewEndpoint(cfg.Protocol, ioa.T, emit, send, nil)
	if err != nil {
		return nil, err
	}

	mu.Lock()
	if err := ep.Input(ioa.Wake(ioa.TR)); err != nil {
		mu.Unlock()
		return nil, err
	}
	// Ask the server to wake its station; the mirrored echo merges the
	// wake^{r,t} event into our stream in its causal position.
	if err := fw.Write(Frame{Type: FrameStatus, Action: ioa.Wake(ioa.RT)}); err != nil {
		mu.Unlock()
		return nil, err
	}
	if _, err := ep.Pump(); err != nil {
		mu.Unlock()
		return nil, err
	}
	mu.Unlock()

	// Reader: the only consumer of inbound frames.
	go func() {
		for {
			f, err := fr.Next()
			mu.Lock()
			if finished {
				mu.Unlock()
				return
			}
			if err != nil {
				if !sealed {
					fail(fmt.Errorf("transport: session aborted: %w", err))
				}
				mu.Unlock()
				return
			}
			switch f.Type {
			case FrameEvent:
				observe(false, f.Action)
				if f.Action.Kind == ioa.KindReceiveMsg {
					res.Delivered = append(res.Delivered, f.Action.Msg)
					ins.msgsDelivered.Inc()
				}
			case FrameData:
				if f.Action.Dir != ioa.RT {
					fail(fmt.Errorf("transport: data %s is not receiver-to-transmitter", f.Action))
					mu.Unlock()
					return
				}
				if closing {
					// A trailing ack racing our Bye; the workload is
					// already confirmed complete.
					break
				}
				if err := ep.HandlePacket(f.Action.Pkt); err != nil {
					fail(err)
					mu.Unlock()
					return
				}
				if _, err := ep.Pump(); err != nil {
					fail(err)
					mu.Unlock()
					return
				}
			case FrameBye:
				sealed = true
				cond.Broadcast()
				mu.Unlock()
				return
			default:
				fail(fmt.Errorf("transport: unexpected %v frame mid-session", f.Type))
				mu.Unlock()
				return
			}
			cond.Broadcast()
			mu.Unlock()
		}
	}()

	// Retransmission safety net: if no delivery progress happened over a
	// whole tick while work is outstanding, re-arm and refire.
	tickerDone := make(chan struct{})
	defer close(tickerDone)
	go func() {
		ticker := time.NewTicker(retransmit)
		defer ticker.Stop()
		last := -1
		for {
			select {
			case <-tickerDone:
				return
			case <-ticker.C:
			}
			mu.Lock()
			if sessionErr == nil && !sealed && !finished && len(res.Delivered) == last && res.Injected > len(res.Delivered) {
				ep.Rearm()
				if _, err := ep.Pump(); err != nil {
					fail(err)
				}
			}
			last = len(res.Delivered)
			mu.Unlock()
		}
	}()

	minter := core.NewMessageMinter("m")
	mu.Lock()
	defer mu.Unlock()
	for sessionErr == nil && len(res.Delivered) < cfg.Msgs {
		if res.Injected < cfg.Msgs && res.Injected-len(res.Delivered) < window {
			if err := ep.Input(ioa.SendMsg(ioa.TR, minter.Fresh())); err != nil {
				fail(err)
				break
			}
			ins.msgsSent.Inc()
			res.Injected++
			if _, err := ep.Pump(); err != nil {
				fail(err)
				break
			}
			continue
		}
		cond.Wait()
	}
	if sessionErr == nil {
		// Seal barrier: the Bye reply trails every mirrored event.
		closing = true
		if err := fw.Write(Frame{Type: FrameBye}); err != nil {
			fail(err)
		}
		for sessionErr == nil && !sealed {
			cond.Wait()
		}
	}
	res.Verdicts = mons.Seal()
	tracer.seal(res.Verdicts, len(res.Delivered))
	finished = true
	return res, sessionErr
}

// Dial connects to a dlserve address and runs a client session.
func Dial(addr string, cfg ClientConfig) (*ClientResult, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return RunClient(conn, cfg)
}
