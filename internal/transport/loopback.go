package transport

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/spec"
)

// FaultPlan selects the middlebox surgeries applied to frames in
// flight on the loopback link. Each enabled fault is applied
// independently with probability Rate per frame, driven by the seeded
// generator — the whole run is a pure function of the seed.
type FaultPlan struct {
	// Loss drops frames (channel.MarkLost).
	Loss bool
	// Dup duplicates frames in place (channel.Duplicate); a duplicated
	// frame decodes to the same packet, so the packet stream leaves
	// scheds(PL) and PL verdicts are not judged, mirroring the swarm
	// harness policy.
	Dup bool
	// Reorder delivers frames from a non-FIFO channel in random order,
	// and with probability Rate holds all pending frames for a round —
	// the delay that lets retransmitted traffic overtake old copies,
	// which is what actually surfaces sequence-number wrap anomalies.
	Reorder bool
	// Corrupt flips one byte of the encoded frame (channel.Corrupt);
	// the strict decoder's CRC turns this into an effective loss, which
	// is the designed failure mode.
	Corrupt bool
	// Rate is the per-frame probability of each enabled fault;
	// RunLoopback defaults it to 0.2 when faults are enabled.
	Rate float64
}

// Any reports whether any fault is enabled.
func (f FaultPlan) Any() bool { return f.Loss || f.Dup || f.Reorder || f.Corrupt }

// String renders the plan like "loss,dup" or "none".
func (f FaultPlan) String() string {
	var names []string
	if f.Loss {
		names = append(names, "loss")
	}
	if f.Dup {
		names = append(names, "dup")
	}
	if f.Reorder {
		names = append(names, "reorder")
	}
	if f.Corrupt {
		names = append(names, "corrupt")
	}
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ",")
}

// ParseFaultPlan parses a comma-separated fault list ("loss,dup"),
// "none" or "all". The Rate field is left zero for the caller.
func ParseFaultPlan(s string) (FaultPlan, error) {
	var f FaultPlan
	switch s {
	case "", "none":
		return f, nil
	case "all":
		return FaultPlan{Loss: true, Dup: true, Reorder: true, Corrupt: true}, nil
	}
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "loss":
			f.Loss = true
		case "dup":
			f.Dup = true
		case "reorder":
			f.Reorder = true
		case "corrupt":
			f.Corrupt = true
		default:
			return FaultPlan{}, fmt.Errorf("transport: unknown fault %q (want loss, dup, reorder, corrupt, all or none)", name)
		}
	}
	return f, nil
}

// middlebox is the lossy link between the two endpoints: a
// channel.Channel automaton carrying encoded frames as opaque packet
// payloads, with the swarm-style fault surgeries applied per frame.
// Reusing the channel automaton buys the exact delivery disciplines of
// the paper's C̄/Ĉ (including FIFO skip-loss) for the frame stream.
type middlebox struct {
	ch     *channel.Channel
	st     ioa.State
	seq    uint64
	faults FaultPlan
	rng    *rand.Rand
	ins    *instruments
	// popsSinceCompact triggers periodic state compaction, keeping the
	// channel's copy-on-write steps O(in-transit), not O(history).
	popsSinceCompact int
}

func newMiddlebox(d ioa.Dir, faults FaultPlan, rng *rand.Rand, ins *instruments) *middlebox {
	var ch *channel.Channel
	if faults.Reorder {
		ch = channel.NewPermissive(d)
	} else {
		ch = channel.NewPermissiveFIFO(d)
	}
	return &middlebox{ch: ch, st: ch.Start(), faults: faults, rng: rng, ins: ins}
}

// push sends one encoded frame into the link and applies the fault
// plan to it.
func (mb *middlebox) push(frame []byte) error {
	mb.seq++
	p := ioa.Packet{ID: mb.seq, Payload: ioa.Message(frame)}
	st, err := mb.ch.Step(mb.st, ioa.SendPkt(mb.ch.Dir(), p))
	if err != nil {
		return fmt.Errorf("transport: middlebox send: %w", err)
	}
	mb.st = st
	mb.ins.inTransit.SetMax(int64(mb.pending()))
	if !mb.faults.Any() {
		return nil
	}
	if mb.faults.Loss && mb.rng.Float64() < mb.faults.Rate {
		if st, err := mb.ch.MarkLost(mb.st, p); err == nil {
			mb.st = st
			mb.ins.faultsInjected.Inc()
		}
		return nil
	}
	idx := mb.pending() - 1 // the frame just pushed is the last pending
	if mb.faults.Corrupt && mb.rng.Float64() < mb.faults.Rate {
		flip := mb.rng.Intn(len(frame))
		mask := byte(1 + mb.rng.Intn(255))
		st, _, err := mb.ch.Corrupt(mb.st, idx, func(pkt ioa.Packet) ioa.Packet {
			b := []byte(pkt.Payload)
			b[flip] ^= mask
			pkt.Payload = ioa.Message(b)
			return pkt
		})
		if err != nil {
			return fmt.Errorf("transport: middlebox corrupt: %w", err)
		}
		mb.st = st
		mb.ins.faultsInjected.Inc()
	}
	if mb.faults.Dup && mb.rng.Float64() < mb.faults.Rate {
		mb.seq++
		st, _, err := mb.ch.Duplicate(mb.st, idx, mb.seq)
		if err != nil {
			return fmt.Errorf("transport: middlebox duplicate: %w", err)
		}
		mb.st = st
		mb.ins.faultsInjected.Inc()
	}
	return nil
}

// pop delivers the next frame, if any: the oldest on a FIFO link, a
// random deliverable one on a reordering link.
func (mb *middlebox) pop() ([]byte, bool, error) {
	enabled := mb.ch.Enabled(mb.st)
	if len(enabled) == 0 {
		return nil, false, nil
	}
	a := enabled[0]
	if mb.faults.Reorder {
		if mb.rng.Float64() < mb.faults.Rate {
			return nil, false, nil // hold everything for a round
		}
		a = enabled[mb.rng.Intn(len(enabled))]
	}
	st, err := mb.ch.Step(mb.st, a)
	if err != nil {
		return nil, false, fmt.Errorf("transport: middlebox deliver: %w", err)
	}
	mb.st = st
	mb.popsSinceCompact++
	if mb.popsSinceCompact >= 64 {
		compacted, err := mb.ch.Compact(mb.st)
		if err != nil {
			return nil, false, fmt.Errorf("transport: middlebox compact: %w", err)
		}
		mb.st = compacted
		mb.popsSinceCompact = 0
	}
	return []byte(a.Pkt.Payload), true, nil
}

func (mb *middlebox) pending() int {
	st, ok := mb.st.(channel.State)
	if !ok {
		return 0
	}
	return st.PendingCount()
}

// LoopbackConfig configures a deterministic in-process transport run.
type LoopbackConfig struct {
	// Protocol is the protocol pair to run.
	Protocol core.Protocol
	// FIFO is the link discipline the session advertises; with it set
	// (and no reorder faults) the PL monitors check (PL5) too.
	FIFO bool
	// Msgs is the number of messages to push through.
	Msgs int
	// Window caps the application-level in-flight messages (injected
	// but not yet delivered); default 4.
	Window int
	// Faults is the middlebox fault plan; zero means a clean link.
	Faults FaultPlan
	// Seed drives the fault and reorder choices; the run is a pure
	// function of the configuration including this seed.
	Seed int64
	// MaxSteps bounds the scheduler loop; default 1000 + 300·Msgs.
	MaxSteps int
	// Registry receives the transport metrics; nil disables them.
	Registry *obs.Registry
	// KeepLog retains the full global schedule in the result (tests);
	// monitors do not need it, so large workloads leave it off.
	KeepLog bool
}

// LoopbackResult reports a completed (or aborted) loopback run.
type LoopbackResult struct {
	// Verdicts is the online monitors' sealed judgement.
	Verdicts VerdictSet
	// Violations lists every violation the monitors signalled online, in
	// signal order (the sealed Verdicts may add hypothesis-sensitive
	// properties like DL7/DL8 on top).
	Violations []spec.Violation
	// Delivered is the receive_msg payload sequence, in delivery order.
	Delivered []ioa.Message
	// Injected counts send_msg inputs applied.
	Injected int
	// Log is the captured global schedule (KeepLog only).
	Log ioa.Schedule
	// Steps is the number of scheduler iterations used.
	Steps int
	// FramesSent and DecodeErrors count link traffic and strict-decoder
	// rejections (corrupted frames surface here, as effective losses).
	FramesSent   int
	DecodeErrors int
}

// RunLoopback drives cfg.Msgs messages from a transmitter endpoint to
// a receiver endpoint over the in-process middlebox link, with the
// online monitors attached to the global action stream. It is fully
// deterministic for a fixed config. The returned error reports harness
// failures (deadlock, step budget, automaton errors) — specification
// violations are a result, not an error, and live in Verdicts.
func RunLoopback(cfg LoopbackConfig) (*LoopbackResult, error) {
	if cfg.Msgs <= 0 {
		return nil, fmt.Errorf("transport: loopback needs Msgs > 0")
	}
	window := cfg.Window
	if window <= 0 {
		window = 4
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1000 + 300*cfg.Msgs
	}
	faults := cfg.Faults
	if faults.Any() && faults.Rate <= 0 {
		faults.Rate = 0.2
	}

	ins := newInstruments(cfg.Registry)
	res := &LoopbackResult{}
	mons := NewMonitors(cfg.FIFO && !faults.Reorder, !faults.Dup, func(v spec.Violation) {
		ins.violations.Inc()
		res.Violations = append(res.Violations, v)
	})

	spans := newSpanTracker(cfg.Registry != nil, &ins)
	emit := func(a ioa.Action) {
		if cfg.KeepLog {
			res.Log = append(res.Log, a)
		}
		spans.observe(a)
		mons.Observe(a)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	mbTR := newMiddlebox(ioa.TR, faults, rng, &ins)
	mbRT := newMiddlebox(ioa.RT, faults, rng, &ins)

	sendVia := func(mb *middlebox, d ioa.Dir) func(ioa.Packet) error {
		return func(p ioa.Packet) error {
			b, err := EncodeFrame(Frame{Type: FrameData, Action: ioa.SendPkt(d, p)})
			if err != nil {
				return err
			}
			ins.frameSent(len(b))
			res.FramesSent++
			return mb.push(b)
		}
	}

	et, err := NewEndpoint(cfg.Protocol, ioa.T, emit, sendVia(mbTR, ioa.TR), nil)
	if err != nil {
		return nil, err
	}
	er, err := NewEndpoint(cfg.Protocol, ioa.R, emit, sendVia(mbRT, ioa.RT), func(m ioa.Message) {
		res.Delivered = append(res.Delivered, m)
		ins.msgsDelivered.Inc()
	})
	if err != nil {
		return nil, err
	}

	if err := et.Input(ioa.Wake(ioa.TR)); err != nil {
		return nil, err
	}
	if err := er.Input(ioa.Wake(ioa.RT)); err != nil {
		return nil, err
	}
	if _, err := et.Pump(); err != nil {
		return nil, err
	}
	if _, err := er.Pump(); err != nil {
		return nil, err
	}

	// receiveOn decodes one popped frame at its destination endpoint; a
	// rejected frame is counted and dropped (an effective loss the
	// protocol's retransmission logic recovers from).
	receiveOn := func(dst *Endpoint, b []byte) error {
		ins.frameReceived(len(b))
		f, _, err := DecodeFrame(b)
		if err != nil || f.Type != FrameData {
			ins.decodeErrors.Inc()
			res.DecodeErrors++
			return nil
		}
		if err := dst.HandlePacket(f.Action.Pkt); err != nil {
			return err
		}
		_, err = dst.Pump()
		return err
	}

	minter := core.NewMessageMinter("m")
	for len(res.Delivered) < cfg.Msgs {
		if res.Steps++; res.Steps > maxSteps {
			res.Verdicts = mons.Seal()
			return res, fmt.Errorf("transport: loopback step budget (%d) exhausted with %d/%d delivered",
				maxSteps, len(res.Delivered), cfg.Msgs)
		}
		progress := false
		if res.Injected < cfg.Msgs && res.Injected-len(res.Delivered) < window {
			if err := et.Input(ioa.SendMsg(ioa.TR, minter.Fresh())); err != nil {
				return res, err
			}
			ins.msgsSent.Inc()
			res.Injected++
			if _, err := et.Pump(); err != nil {
				return res, err
			}
			progress = true
		}
		if b, ok, err := mbTR.pop(); err != nil {
			return res, err
		} else if ok {
			progress = true
			if err := receiveOn(er, b); err != nil {
				return res, err
			}
		}
		if b, ok, err := mbRT.pop(); err != nil {
			return res, err
		} else if ok {
			progress = true
			if err := receiveOn(et, b); err != nil {
				return res, err
			}
		}
		if progress {
			continue
		}
		// The link is quiet and the workload is incomplete: trigger
		// retransmission. If re-arming fires nothing and nothing is in
		// flight, no future step can change anything.
		et.Rearm()
		er.Rearm()
		tf, err := et.Pump()
		if err != nil {
			return res, err
		}
		rf, err := er.Pump()
		if err != nil {
			return res, err
		}
		if tf+rf == 0 && mbTR.pending() == 0 && mbRT.pending() == 0 {
			res.Verdicts = mons.Seal()
			return res, fmt.Errorf("transport: loopback deadlocked with %d/%d delivered",
				len(res.Delivered), cfg.Msgs)
		}
	}
	res.Verdicts = mons.Seal()
	return res, nil
}
