package transport

import (
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/spec"
)

// TestMonitorCatchesReorderingBugLive pushes go-back-N with a wrapped
// sequence space (n=2) through a reordering, lossy middlebox — traffic
// beyond the protocol's claimed envelope (it solves DL over FIFO
// channels only, Theorem 8.5's boundary). The online monitor must
// catch the resulting duplicate delivery in the live stream, and the
// violation class must be the one the explorer finds for the same
// protocol over the non-FIFO channel C̄. This closes the loop between
// the three substrates on the negative side: the bug the model checker
// proves reachable is the bug the live monitors report.
func TestMonitorCatchesReorderingBugLive(t *testing.T) {
	p, err := protocol.ByName("gbn", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLoopback(LoopbackConfig{
		Protocol: p,
		FIFO:     false, // the link no longer claims FIFO
		Msgs:     30,
		Window:   6,
		Faults:   FaultPlan{Reorder: true, Loss: true, Rate: 0.3},
		Seed:     1,
		KeepLog:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdicts.DL.OK() {
		t.Fatalf("DL verdict clean despite reordering beyond the envelope: %s", res.Verdicts)
	}
	live := map[spec.Property]bool{}
	for _, v := range res.Violations {
		live[v.Property] = true
	}
	if len(live) == 0 {
		t.Fatal("monitor signalled no online violation")
	}

	// The live DL verdict must equal the offline checker's on the
	// captured schedule — soundness holds on violating runs too.
	if offline := spec.CheckDL(projectDL(res.Log), ioa.TR); offline.OK() {
		t.Fatalf("offline checker disagrees: %s", offline)
	} else if len(offline.Violations) == 0 || offline.Violations[0].Property != res.Verdicts.DL.Violations[0].Property {
		t.Fatalf("offline %s != online %s", offline, res.Verdicts.DL)
	}

	// The explorer's verdict on the same protocol over C̄ names the
	// same violation class.
	sys, err := core.NewSystem(p, false)
	if err != nil {
		t.Fatal(err)
	}
	found, err := explore.BFS(sys, explore.Config{
		Inputs: []ioa.Action{
			ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
			ioa.SendMsg(ioa.TR, "a"), ioa.SendMsg(ioa.TR, "b"), ioa.SendMsg(ioa.TR, "c"),
		},
		Monitor:      explore.NewSafetyMonitor(false),
		MaxDepth:     26,
		MaxInTransit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if found.Violation == nil {
		t.Fatal("explorer found no violation for gbn(2,1) over C̄")
	}
	if !live[spec.Property(found.Violation.Property)] {
		t.Fatalf("explorer found %s, live monitor reported %v", found.Violation.Property, res.Violations)
	}
}

// TestStenningSurvivesReorderingLive is the paper's counterpoint run
// live: Stenning's protocol carries unbounded sequence numbers, so the
// same hostile middlebox that breaks every bounded-header protocol
// cannot induce a duplicate or reordered delivery.
func TestStenningSurvivesReorderingLive(t *testing.T) {
	p, err := protocol.ByName("stenning", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLoopback(LoopbackConfig{
		Protocol: p,
		FIFO:     false,
		Msgs:     30,
		Window:   6,
		Faults:   FaultPlan{Reorder: true, Loss: true, Rate: 0.3},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts.DL.OK() {
		t.Fatalf("stenning violated DL under reordering: %s", res.Verdicts.DL)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("online violations: %v", res.Violations)
	}
}
