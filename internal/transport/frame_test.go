package transport

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"testing"

	"repro/internal/ioa"
)

// goldenFrames covers every frame type with representative payloads.
func goldenFrames() []Frame {
	return []Frame{
		{Type: FrameHello, Proto: "abp", N: 2, W: 1, FIFO: true},
		{Type: FrameHello, Proto: "gbn", N: 8, W: 3},
		{Type: FrameData, Action: ioa.SendPkt(ioa.TR, ioa.Packet{ID: 42, Header: "data/1", Payload: "m7"})},
		{Type: FrameData, Action: ioa.SendPkt(ioa.RT, ioa.Packet{ID: 9, Header: "ack/0"})},
		{Type: FrameStatus, Action: ioa.Wake(ioa.RT)},
		{Type: FrameStatus, Action: ioa.Crash(ioa.TR)},
		{Type: FrameEvent, Action: ioa.SendMsg(ioa.TR, "m1")},
		{Type: FrameEvent, Action: ioa.ReceiveMsg(ioa.TR, "m1")},
		{Type: FrameEvent, Action: ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 42, Header: "data/1", Payload: "m7"})},
		{Type: FrameBye},
	}
}

// TestFrameRoundTrip: every encodable frame decodes to an equal frame,
// consuming exactly its encoding, and re-encodes bit-identically.
func TestFrameRoundTrip(t *testing.T) {
	for _, f := range goldenFrames() {
		enc, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %s: %v", f.Type, err)
		}
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", f.Type, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %s consumed %d of %d bytes", f.Type, n, len(enc))
		}
		if !reflect.DeepEqual(got, f) {
			t.Fatalf("round trip changed frame:\n got %#v\nwant %#v", got, f)
		}
		re, err := EncodeFrame(got)
		if err != nil || !bytes.Equal(re, enc) {
			t.Fatalf("re-encode of %s differs (err=%v)", f.Type, err)
		}
	}
}

// TestFrameRejectsEverySingleByteCorruption: for each golden frame,
// every possible value change of every byte must be rejected with
// ErrFrameFormat. Flips inside [version..crc] are caught by the CRC
// (CRC32 detects all single-byte errors); flips in the length prefix
// shift the CRC window or run past the buffer.
func TestFrameRejectsEverySingleByteCorruption(t *testing.T) {
	for _, f := range goldenFrames() {
		enc, err := EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		mut := make([]byte, len(enc))
		for pos := 0; pos < len(enc); pos++ {
			for delta := 1; delta < 256; delta++ {
				copy(mut, enc)
				mut[pos] ^= byte(delta)
				g, n, err := DecodeFrame(mut)
				if err == nil && n == len(mut) {
					t.Fatalf("%s frame: corruption at byte %d (xor %#02x) accepted as %#v", f.Type, pos, delta, g)
				}
				if err != nil && !errors.Is(err, ErrFrameFormat) {
					t.Fatalf("%s frame: corruption at byte %d: error %v does not wrap ErrFrameFormat", f.Type, pos, err)
				}
			}
		}
	}
}

// TestFrameRejectsTruncation: every strict prefix is rejected.
func TestFrameRejectsTruncation(t *testing.T) {
	for _, f := range goldenFrames() {
		enc, err := EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, _, err := DecodeFrame(enc[:cut]); !errors.Is(err, ErrFrameFormat) {
				t.Fatalf("%s frame truncated at %d: want ErrFrameFormat, got %v", f.Type, cut, err)
			}
		}
	}
}

// TestFrameRejectsOversizeAndSkew: oversize length prefixes, version
// skew and unknown types are all typed rejections.
func TestFrameRejectsOversizeAndSkew(t *testing.T) {
	// Length prefix beyond MaxFrame.
	huge := []byte{0xff, 0xff, 0xff, 0xff, frameVersion, byte(FrameBye)}
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameFormat) {
		t.Fatalf("oversize length: want ErrFrameFormat, got %v", err)
	}
	// Length prefix below the fixed overhead.
	tiny := []byte{0x00, 0x00, 0x00, 0x01, frameVersion}
	if _, _, err := DecodeFrame(tiny); !errors.Is(err, ErrFrameFormat) {
		t.Fatalf("undersize length: want ErrFrameFormat, got %v", err)
	}
	// Version skew and unknown type, with the CRC recomputed so only
	// the targeted check can reject them.
	for _, tc := range []struct {
		name    string
		version byte
		ftype   byte
	}{
		{"version skew", frameVersion + 1, byte(FrameBye)},
		{"unknown type", frameVersion, 99},
	} {
		enc, err := EncodeFrame(Frame{Type: FrameBye})
		if err != nil {
			t.Fatal(err)
		}
		enc[4] = tc.version
		enc[5] = tc.ftype
		patchCRC(enc)
		if _, _, err := DecodeFrame(enc); !errors.Is(err, ErrFrameFormat) {
			t.Fatalf("%s: want ErrFrameFormat, got %v", tc.name, err)
		}
	}
}

// TestFrameReaderWriterStream: frames written back to back decode in
// order through the streaming reader, and a clean close yields io.EOF.
func TestFrameReaderWriterStream(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFrameWriter(&buf)
	for _, f := range goldenFrames() {
		if err := fw.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for _, want := range goldenFrames() {
		got, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stream decode mismatch:\n got %#v\nwant %#v", got, want)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at clean boundary, got %v", err)
	}
}

// TestFrameReaderMidFrameEOF: an EOF inside a frame is a format error,
// not a clean end of stream.
func TestFrameReaderMidFrameEOF(t *testing.T) {
	enc, err := EncodeFrame(Frame{Type: FrameHello, Proto: "abp", N: 2, W: 1, FIFO: true})
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(enc[:len(enc)-3]))
	if _, err := fr.Next(); !errors.Is(err, ErrFrameFormat) {
		t.Fatalf("mid-frame EOF: want ErrFrameFormat, got %v", err)
	}
}

// FuzzFrameDecode mirrors FuzzCheckpointDecode: the decoder must never
// panic, and anything it accepts must re-encode bit-identically and
// decode again to the same frame.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range goldenFrames() {
		enc, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
		mut := append([]byte(nil), enc...)
		if len(mut) > 8 {
			mut[8] ^= 0x40
		}
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x06, frameVersion, byte(FrameBye), 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrFrameFormat) {
				t.Fatalf("decode error %v does not wrap ErrFrameFormat", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		re, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame %#v does not re-encode: %v", fr, err)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode differs from accepted input\n in: %x\nout: %x", data[:n], re)
		}
		fr2, n2, err := DecodeFrame(re)
		if err != nil || n2 != n || !reflect.DeepEqual(fr2, fr) {
			t.Fatalf("re-decode diverged: %#v vs %#v (n=%d/%d, err=%v)", fr2, fr, n2, n, err)
		}
	})
}

// patchCRC recomputes the trailing CRC over [version..body] so tests
// can craft frames that fail exactly one check.
func patchCRC(enc []byte) {
	inner := enc[4:]
	covered := inner[:len(inner)-4]
	c := crc32.ChecksumIEEE(covered)
	inner[len(inner)-4] = byte(c >> 24)
	inner[len(inner)-3] = byte(c >> 16)
	inner[len(inner)-2] = byte(c >> 8)
	inner[len(inner)-1] = byte(c)
}
