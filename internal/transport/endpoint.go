package transport

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/spec"
)

// Endpoint hosts one station automaton (A^t or A^r) of a protocol and
// drives it from live traffic: environment inputs and inbound packets
// are applied with Input/HandlePacket, and Pump fires the automaton's
// locally-controlled actions. Every applied action is reported, in
// application order, through the emit callback — that stream is the
// endpoint's contribution to the global schedule the online monitors
// judge.
//
// Pump's send policy replaces the simulator's fairness scheduler: a
// send_pkt action fires once when it becomes enabled and is then
// disarmed while it stays continuously enabled, so a retransmission-
// ready automaton (whose send stays enabled until acknowledged) does
// not flood the link. An action re-arms when it leaves the enabled set
// and returns (a genuinely new instance, e.g. the alternating-bit
// protocol's ack for the next 0-bit), and Rearm re-arms everything —
// the retransmit path a backend invokes when the link has gone quiet
// without the workload completing.
//
// An Endpoint is not goroutine-safe; backends serialise access.
type Endpoint struct {
	station ioa.Station
	auto    ioa.Automaton
	state   ioa.State
	out     ioa.Dir // direction this endpoint sends packets in
	in      ioa.Dir // direction packets arrive from
	ids     core.PacketIDs
	// disarmed holds the pre-relabelling (ID-zero) send actions that
	// fired and are still continuously enabled.
	disarmed map[ioa.Action]bool

	// emit observes every layer action applied at this endpoint, in
	// order. Required.
	emit func(ioa.Action)
	// send transmits a fired packet (already relabelled with a unique
	// ID). Required.
	send func(ioa.Packet) error
	// deliver observes each receive_msg payload (receiver side only).
	// Optional.
	deliver func(ioa.Message)
}

// maxPumpSteps bounds one Pump call; a protocol automaton that fires
// this many locally-controlled actions without quiescing is broken.
const maxPumpSteps = 1 << 16

// NewEndpoint returns an endpoint hosting protocol p's automaton for
// station x (ioa.T hosts p.T, ioa.R hosts p.R).
func NewEndpoint(p core.Protocol, x ioa.Station, emit func(ioa.Action), send func(ioa.Packet) error, deliver func(ioa.Message)) (*Endpoint, error) {
	if p.T == nil || p.R == nil {
		return nil, fmt.Errorf("transport: protocol %q has no automata", p.Name)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	if emit == nil || send == nil {
		return nil, fmt.Errorf("transport: endpoint requires emit and send callbacks")
	}
	e := &Endpoint{
		station:  x,
		disarmed: make(map[ioa.Action]bool),
		emit:     emit,
		send:     send,
		deliver:  deliver,
	}
	switch x {
	case ioa.T:
		e.auto, e.out, e.in = p.T, ioa.TR, ioa.RT
	case ioa.R:
		e.auto, e.out, e.in = p.R, ioa.RT, ioa.TR
	default:
		return nil, fmt.Errorf("transport: unknown station %q", x)
	}
	e.state = e.auto.Start()
	return e, nil
}

// Station returns the hosted station name.
func (e *Endpoint) Station() ioa.Station { return e.station }

// Input applies an environment input action (send_msg, wake, fail,
// crash) to the automaton and emits it.
func (e *Endpoint) Input(a ioa.Action) error {
	next, err := e.auto.Step(e.state, a)
	if err != nil {
		return fmt.Errorf("transport: %s input %s: %w", e.station, a, err)
	}
	e.state = next
	e.emit(a)
	return nil
}

// HandlePacket applies an inbound packet as the receive_pkt input.
func (e *Endpoint) HandlePacket(p ioa.Packet) error {
	return e.Input(ioa.ReceivePkt(e.in, p))
}

// Rearm clears the send dedup memory so the next Pump refires every
// enabled send — the retransmission trigger.
func (e *Endpoint) Rearm() {
	for k := range e.disarmed {
		delete(e.disarmed, k)
	}
}

// Pump fires the automaton's locally-controlled actions until none is
// eligible: deliveries (receive_msg) and internal actions always fire;
// armed sends fire once each (see the type comment). It returns the
// number of actions fired.
func (e *Endpoint) Pump() (int, error) {
	fired := 0
	for fired < maxPumpSteps {
		enabled := e.auto.Enabled(e.state)
		a, ok := e.pickAction(enabled)
		if !ok {
			e.pruneDisarmed(enabled)
			return fired, nil
		}
		if err := e.fire(a); err != nil {
			return fired, err
		}
		fired++
	}
	return fired, fmt.Errorf("transport: %s automaton did not quiesce after %d actions", e.station, maxPumpSteps)
}

// pickAction selects the next locally-controlled action: deliveries
// first, then internal actions, then the first armed send, in the
// automaton's (deterministic) enumeration order.
func (e *Endpoint) pickAction(enabled []ioa.Action) (ioa.Action, bool) {
	for _, a := range enabled {
		if a.Kind == ioa.KindReceiveMsg || a.Kind == ioa.KindInternal {
			return a, true
		}
	}
	for _, a := range enabled {
		if a.Kind == ioa.KindSendPkt && !e.disarmed[a] {
			return a, true
		}
	}
	return ioa.Action{}, false
}

func (e *Endpoint) fire(a ioa.Action) error {
	switch a.Kind {
	case ioa.KindSendPkt:
		key := a
		pkt := a.Pkt
		pkt.ID = e.ids.Next()
		labelled := ioa.SendPkt(e.out, pkt)
		next, err := e.auto.Step(e.state, labelled)
		if err != nil {
			return fmt.Errorf("transport: %s firing %s: %w", e.station, labelled, err)
		}
		e.state = next
		e.disarmed[key] = true
		e.emit(labelled)
		return e.send(pkt)
	default:
		next, err := e.auto.Step(e.state, a)
		if err != nil {
			return fmt.Errorf("transport: %s firing %s: %w", e.station, a, err)
		}
		e.state = next
		e.emit(a)
		if a.Kind == ioa.KindReceiveMsg && e.deliver != nil {
			e.deliver(a.Msg)
		}
		return nil
	}
}

// pruneDisarmed re-arms every send that has left the enabled set, so
// it fires again if it returns (a fresh instance of the same action).
func (e *Endpoint) pruneDisarmed(enabled []ioa.Action) {
	if len(e.disarmed) == 0 {
		return
	}
	still := make(map[ioa.Action]bool, len(enabled))
	for _, a := range enabled {
		if a.Kind == ioa.KindSendPkt {
			still[a] = true
		}
	}
	for k := range e.disarmed {
		if !still[k] {
			delete(e.disarmed, k)
		}
	}
}

// Monitors bundles the online spec checkers a transport session
// attaches to its global action stream: the DL monitor over the
// data-link behavior and one PL monitor per packet direction. Observe
// routes each event to the monitors whose offline projection would
// contain it, preserving index fidelity with the offline checkers.
//
// Judging policy mirrors the swarm harness: a duplicating middlebox
// puts the packet stream outside scheds(PL) by construction (a
// duplicate's receive_pkt has no matching send_pkt), so PL verdicts are
// only judged when JudgePL is set; the DL verdict is always judged.
type Monitors struct {
	DL   *spec.OnlineDL
	PLTR *spec.OnlinePL
	PLRT *spec.OnlinePL
	// JudgePL gates the PL verdicts in Verdicts.
	JudgePL bool
	// onViolation, when set, observes each violation the instant a
	// monitor signals it.
	onViolation func(spec.Violation)
}

// NewMonitors returns the standard monitor bundle for a session whose
// link claims the given FIFO discipline.
func NewMonitors(fifo, judgePL bool, onViolation func(spec.Violation)) *Monitors {
	return &Monitors{
		DL:          spec.NewOnlineDL(ioa.TR),
		PLTR:        spec.NewOnlinePL(ioa.TR, fifo),
		PLRT:        spec.NewOnlinePL(ioa.RT, fifo),
		JudgePL:     judgePL,
		onViolation: onViolation,
	}
}

// Observe routes one global-schedule event to the monitors. DL-layer
// kinds (send_msg, receive_msg, wake, fail, crash) go to the DL
// monitor; PL-layer kinds (send_pkt, receive_pkt, wake, fail, crash)
// go to the PL monitor of their direction. Wake/fail/crash are in both
// projections, exactly as in the offline behavior and packet-schedule
// projections. It returns the first violation signalled by any monitor
// at this event, if any.
func (m *Monitors) Observe(a ioa.Action) *spec.Violation {
	var first *spec.Violation
	note := func(v *spec.Violation) {
		if v == nil {
			return
		}
		if m.onViolation != nil {
			m.onViolation(*v)
		}
		if first == nil {
			first = v
		}
	}
	switch a.Kind {
	case ioa.KindSendMsg, ioa.KindReceiveMsg:
		note(m.DL.Observe(a))
	case ioa.KindSendPkt, ioa.KindReceivePkt:
		switch a.Dir {
		case ioa.TR:
			note(m.PLTR.Observe(a))
		case ioa.RT:
			note(m.PLRT.Observe(a))
		}
	case ioa.KindWake, ioa.KindFail, ioa.KindCrash:
		note(m.DL.Observe(a))
		switch a.Dir {
		case ioa.TR:
			note(m.PLTR.Observe(a))
		case ioa.RT:
			note(m.PLRT.Observe(a))
		}
	}
	return first
}

// VerdictSet is a sealed session's judgement.
type VerdictSet struct {
	DL spec.Verdict
	// PLTR and PLRT are only meaningful when PLJudged is true.
	PLTR, PLRT spec.Verdict
	PLJudged   bool
}

// Clean reports whether every judged verdict is OK.
func (v VerdictSet) Clean() bool {
	if !v.DL.OK() {
		return false
	}
	if v.PLJudged && (!v.PLTR.OK() || !v.PLRT.OK()) {
		return false
	}
	return true
}

// String summarises the verdicts in one line.
func (v VerdictSet) String() string {
	s := "DL^{t,r}: " + v.DL.String()
	if v.PLJudged {
		s += "; PL^{t,r}: " + v.PLTR.String() + "; PL^{r,t}: " + v.PLRT.String()
	} else {
		s += "; PL: not judged (duplicating link)"
	}
	return s
}

// Seal closes the observation and returns the verdicts, interpreting
// the observed prefix as a completed trace (the offline checkers'
// finite-trace reading).
func (m *Monitors) Seal() VerdictSet {
	return VerdictSet{
		DL:       m.DL.Verdict(),
		PLTR:     m.PLTR.Verdict(),
		PLRT:     m.PLRT.Verdict(),
		PLJudged: m.JudgePL,
	}
}
