package transport

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/spec"
)

// simVerdicts holds one simulator reference run's judgement.
type simVerdicts struct {
	dl, pltr, plrt spec.Verdict
	delivered      []ioa.Message
}

// runSimReference drives msgs messages through the composed system
// D'(A) in the simulator — the repo's first execution substrate — and
// judges the run with the offline checkers, exactly as ROADMAP tier-1
// tooling does.
func runSimReference(t *testing.T, p core.Protocol, msgs int) simVerdicts {
	t.Helper()
	sys, err := core.NewSystem(p, true)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRunner(sys)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	minter := core.NewMessageMinter("m")
	for i := 0; i < msgs; i++ {
		if err := r.Input(ioa.SendMsg(ioa.TR, minter.Fresh())); err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunFair(sim.RunConfig{MaxSteps: 4000}); err != nil {
			t.Fatal(err)
		}
	}
	quiesced, err := r.RunFair(sim.RunConfig{MaxSteps: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !quiesced {
		t.Fatalf("%s did not quiesce in the simulator", p.Name)
	}
	out := simVerdicts{
		dl:   spec.CheckDL(r.Behavior(), ioa.TR),
		pltr: spec.CheckPLFIFO(r.PacketSchedule(ioa.TR), ioa.TR),
		plrt: spec.CheckPLFIFO(r.PacketSchedule(ioa.RT), ioa.RT),
	}
	for _, a := range r.Behavior() {
		if a.Kind == ioa.KindReceiveMsg {
			out.delivered = append(out.delivered, a.Msg)
		}
	}
	return out
}

// TestSimTransportEquivalence is the cross-substrate conformance suite:
// the same workload through the simulator, the loopback transport and
// the TCP transport must yield, for every registered protocol,
// identical DL and PL verdicts and the identical delivery sequence.
// The simulator judges offline with spec.Check*, the transports online
// with the monitor bundle — so this also pins online ≡ offline across
// substrates.
func TestSimTransportEquivalence(t *testing.T) {
	const msgs = 25
	addr, sums, shutdown := startServer(t, ServerConfig{})
	defer shutdown()
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			p := mustProtocol(t, name)
			ref := runSimReference(t, p, msgs)
			if !ref.dl.OK() || !ref.pltr.OK() || !ref.plrt.OK() {
				t.Fatalf("simulator reference run not clean: %s / %s / %s", ref.dl, ref.pltr, ref.plrt)
			}

			lb, err := RunLoopback(LoopbackConfig{Protocol: p, FIFO: true, Msgs: msgs})
			if err != nil {
				t.Fatal(err)
			}
			if !lb.Verdicts.PLJudged {
				t.Fatal("loopback did not judge PL")
			}
			for _, mismatch := range []struct {
				layer       string
				simV, liveV spec.Verdict
			}{
				{"DL", ref.dl, lb.Verdicts.DL},
				{"PL^{t,r}", ref.pltr, lb.Verdicts.PLTR},
				{"PL^{r,t}", ref.plrt, lb.Verdicts.PLRT},
			} {
				if !reflect.DeepEqual(mismatch.simV, mismatch.liveV) {
					t.Errorf("%s: sim %s != loopback %s", mismatch.layer, mismatch.simV, mismatch.liveV)
				}
			}
			if !reflect.DeepEqual(ref.delivered, lb.Delivered) {
				t.Errorf("delivery order: sim %v != loopback %v", ref.delivered, lb.Delivered)
			}

			tcp, err := Dial(addr, ClientConfig{
				Protocol: p, ProtoName: name, N: 8, W: 3, FIFO: true,
				Msgs: msgs, Timeout: 20 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			sum := <-sums
			if sum.Err != nil {
				t.Fatalf("server session: %v", sum.Err)
			}
			for _, mismatch := range []struct {
				layer       string
				simV, liveV spec.Verdict
			}{
				{"DL (client)", ref.dl, tcp.Verdicts.DL},
				{"PL^{t,r} (client)", ref.pltr, tcp.Verdicts.PLTR},
				{"PL^{r,t} (client)", ref.plrt, tcp.Verdicts.PLRT},
				{"DL (server)", ref.dl, sum.Verdicts.DL},
				{"PL^{t,r} (server)", ref.pltr, sum.Verdicts.PLTR},
				{"PL^{r,t} (server)", ref.plrt, sum.Verdicts.PLRT},
			} {
				if !reflect.DeepEqual(mismatch.simV, mismatch.liveV) {
					t.Errorf("%s: sim %s != tcp %s", mismatch.layer, mismatch.simV, mismatch.liveV)
				}
			}
			if !reflect.DeepEqual(ref.delivered, tcp.Delivered) {
				t.Errorf("delivery order: sim %v != tcp %v", ref.delivered, tcp.Delivered)
			}
		})
	}
}

// TestLoopbackMatchesSimUnderLoss extends the equivalence to a faulty
// link: the loopback's lossy middlebox must still produce the verdicts
// the simulator's lossy channels produce — all clean, all delivered —
// for the retransmitting protocols.
func TestLoopbackMatchesSimUnderLoss(t *testing.T) {
	const msgs = 25
	for _, name := range []string{"abp", "gbn", "sr", "stenning"} {
		t.Run(name, func(t *testing.T) {
			p := mustProtocol(t, name)
			ref := runSimReference(t, p, msgs)
			lb, err := RunLoopback(LoopbackConfig{
				Protocol: p, FIFO: true, Msgs: msgs,
				Faults: FaultPlan{Loss: true, Rate: 0.25}, Seed: 9,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.dl, lb.Verdicts.DL) {
				t.Errorf("DL: sim %s != lossy loopback %s", ref.dl, lb.Verdicts.DL)
			}
			if !reflect.DeepEqual(ref.delivered, lb.Delivered) {
				t.Errorf("delivery order: sim %v != loopback %v", ref.delivered, lb.Delivered)
			}
		})
	}
}
