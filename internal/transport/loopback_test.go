package transport

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/spec"
)

// mustProtocol builds a registered protocol with the test-wide default
// parameters (n=8, w=3 — valid for every parameterised protocol).
func mustProtocol(t *testing.T, name string) core.Protocol {
	t.Helper()
	p, err := protocol.ByName(name, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func wantMessages(n int) []ioa.Message {
	out := make([]ioa.Message, n)
	for i := range out {
		out[i] = ioa.Message(fmt.Sprintf("m-%d", i+1))
	}
	return out
}

// projectDL extracts the data-link behavior from a global transport
// schedule: everything except the packet events, exactly what
// sim.Runner.Behavior returns for the composed system.
func projectDL(log ioa.Schedule) ioa.Schedule {
	var out ioa.Schedule
	for _, a := range log {
		switch a.Kind {
		case ioa.KindSendPkt, ioa.KindReceivePkt:
		default:
			out = append(out, a)
		}
	}
	return out
}

// projectPL extracts direction d's packet schedule: its send_pkt and
// receive_pkt events plus its status events, exactly what
// sim.Runner.PacketSchedule returns.
func projectPL(log ioa.Schedule, d ioa.Dir) ioa.Schedule {
	var out ioa.Schedule
	for _, a := range log {
		switch a.Kind {
		case ioa.KindSendPkt, ioa.KindReceivePkt, ioa.KindWake, ioa.KindFail, ioa.KindCrash:
			if a.Dir == d {
				out = append(out, a)
			}
		}
	}
	return out
}

// TestLoopbackCleanAllProtocols pushes a workload through every
// registered protocol over a clean FIFO loopback link: all messages
// must arrive once, in order, with clean DL and PL-FIFO verdicts.
func TestLoopbackCleanAllProtocols(t *testing.T) {
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			res, err := RunLoopback(LoopbackConfig{
				Protocol: mustProtocol(t, name),
				FIFO:     true,
				Msgs:     30,
				Window:   3,
				KeepLog:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verdicts.Clean() {
				t.Fatalf("verdicts not clean: %s", res.Verdicts)
			}
			if !res.Verdicts.PLJudged {
				t.Fatal("PL not judged on a clean link")
			}
			if got, want := res.Delivered, wantMessages(30); !reflect.DeepEqual(got, want) {
				t.Fatalf("delivered %v, want %v", got, want)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("online violations on clean link: %v", res.Violations)
			}
			if res.DecodeErrors != 0 {
				t.Fatalf("decode errors on clean link: %d", res.DecodeErrors)
			}
		})
	}
}

// TestLoopbackOnlineMatchesOffline replays the captured global schedule
// through the offline checkers and demands verdicts identical to the
// online monitors' — the soundness claim of DESIGN.md §9 — on both a
// clean run and a lossy one with retransmissions.
func TestLoopbackOnlineMatchesOffline(t *testing.T) {
	cases := []struct {
		label  string
		faults FaultPlan
	}{
		{"clean", FaultPlan{}},
		{"lossy", FaultPlan{Loss: true, Rate: 0.25}},
		{"corrupting", FaultPlan{Corrupt: true, Rate: 0.25}},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			res, err := RunLoopback(LoopbackConfig{
				Protocol: mustProtocol(t, "gbn"),
				FIFO:     true,
				Msgs:     40,
				Faults:   tc.faults,
				Seed:     7,
				KeepLog:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if offline := spec.CheckDL(projectDL(res.Log), ioa.TR); !reflect.DeepEqual(res.Verdicts.DL, offline) {
				t.Fatalf("DL: online %s != offline %s", res.Verdicts.DL, offline)
			}
			for d, online := range map[ioa.Dir]spec.Verdict{ioa.TR: res.Verdicts.PLTR, ioa.RT: res.Verdicts.PLRT} {
				if offline := spec.CheckPLFIFO(projectPL(res.Log, d), d); !reflect.DeepEqual(online, offline) {
					t.Fatalf("PL %s: online %s != offline %s", d, online, offline)
				}
			}
		})
	}
}

// TestLoopbackLossRecovers: a lossy link forces retransmissions but the
// protocol recovers; the verdicts stay clean and more frames than
// messages cross the link.
func TestLoopbackLossRecovers(t *testing.T) {
	res, err := RunLoopback(LoopbackConfig{
		Protocol: mustProtocol(t, "gbn"),
		FIFO:     true,
		Msgs:     50,
		Faults:   FaultPlan{Loss: true, Rate: 0.3},
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts.Clean() {
		t.Fatalf("verdicts not clean under loss: %s", res.Verdicts)
	}
	if got, want := res.Delivered, wantMessages(50); !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	// 50 messages need ≥ 100 frames (data + acks); loss adds retries.
	if res.FramesSent <= 100 {
		t.Fatalf("no retransmissions under 30%% loss: %d frames", res.FramesSent)
	}
}

// TestLoopbackCorruptionIsEffectiveLoss: corrupted frames must be
// rejected by the strict decoder (counted) and behave exactly like
// losses — the protocol still delivers everything in order.
func TestLoopbackCorruptionIsEffectiveLoss(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := RunLoopback(LoopbackConfig{
		Protocol: mustProtocol(t, "abp"),
		FIFO:     true,
		Msgs:     40,
		Faults:   FaultPlan{Corrupt: true, Rate: 0.3},
		Seed:     11,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts.Clean() {
		t.Fatalf("verdicts not clean under corruption: %s", res.Verdicts)
	}
	if res.DecodeErrors == 0 {
		t.Fatal("corruption injected but no decode errors recorded")
	}
	if got, want := res.Delivered, wantMessages(40); !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("transport.decode_errors"); got != int64(res.DecodeErrors) {
		t.Fatalf("obs decode_errors = %d, result says %d", got, res.DecodeErrors)
	}
	if got := snap.Counter("transport.msgs_delivered"); got != 40 {
		t.Fatalf("obs msgs_delivered = %d", got)
	}
}

// TestLoopbackDupSkipsPLJudgement: a duplicating middlebox is not a PL
// channel, so PL verdicts are withheld while DL is still judged — the
// swarm harness policy.
func TestLoopbackDupSkipsPLJudgement(t *testing.T) {
	res, err := RunLoopback(LoopbackConfig{
		Protocol: mustProtocol(t, "abp"),
		FIFO:     true,
		Msgs:     30,
		Faults:   FaultPlan{Dup: true, Rate: 0.3},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdicts.PLJudged {
		t.Fatal("PL judged under duplication faults")
	}
	if !res.Verdicts.DL.OK() {
		t.Fatalf("DL not clean under duplication: %s", res.Verdicts.DL)
	}
	if got, want := res.Delivered, wantMessages(30); !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
}

// TestLoopbackDeterminism: the whole run is a pure function of the
// configuration — same seed, same schedule, byte for byte.
func TestLoopbackDeterminism(t *testing.T) {
	run := func() *LoopbackResult {
		res, err := RunLoopback(LoopbackConfig{
			Protocol: mustProtocol(t, "sr"),
			FIFO:     true,
			Msgs:     40,
			Faults:   FaultPlan{Loss: true, Corrupt: true, Rate: 0.2},
			Seed:     42,
			KeepLog:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n%d vs %d steps, %d vs %d frames",
			a.Steps, b.Steps, a.FramesSent, b.FramesSent)
	}
}

// TestLoopbackRejectsBadConfig covers the config validation paths.
func TestLoopbackRejectsBadConfig(t *testing.T) {
	if _, err := RunLoopback(LoopbackConfig{Protocol: mustProtocol(t, "abp")}); err == nil {
		t.Fatal("Msgs=0 accepted")
	}
	if _, err := RunLoopback(LoopbackConfig{Msgs: 1}); err == nil {
		t.Fatal("zero protocol accepted")
	}
}

// TestParseFaultPlan covers the flag syntax.
func TestParseFaultPlan(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FaultPlan
		ok   bool
	}{
		{"", FaultPlan{}, true},
		{"none", FaultPlan{}, true},
		{"all", FaultPlan{Loss: true, Dup: true, Reorder: true, Corrupt: true}, true},
		{"loss", FaultPlan{Loss: true}, true},
		{"loss,corrupt", FaultPlan{Loss: true, Corrupt: true}, true},
		{"dup, reorder", FaultPlan{Dup: true, Reorder: true}, true},
		{"jitter", FaultPlan{}, false},
	} {
		got, err := ParseFaultPlan(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseFaultPlan(%q): err = %v", tc.in, err)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseFaultPlan(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if err == nil && got.String() == "" {
			t.Fatalf("ParseFaultPlan(%q).String() empty", tc.in)
		}
	}
}
