package transport

import (
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/spec"
)

// startServer runs a Serve loop on an ephemeral port and returns the
// address, a channel of session summaries, and a shutdown func.
func startServer(t *testing.T, cfg ServerConfig) (string, <-chan SessionSummary, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sums := make(chan SessionSummary, 16)
	if cfg.Resolve == nil {
		cfg.Resolve = protocol.ByName
	}
	cfg.OnSession = func(s SessionSummary) { sums <- s }
	errc := make(chan error, 1)
	go func() { errc <- Serve(ln, cfg) }()
	return ln.Addr().String(), sums, func() {
		ln.Close()
		if err := <-errc; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// TestTCPSessionAllProtocols runs every registered protocol over a real
// socket: delivery must be complete and in order, and both the client-
// and server-side monitor bundles must judge the session clean.
func TestTCPSessionAllProtocols(t *testing.T) {
	addr, sums, shutdown := startServer(t, ServerConfig{})
	defer shutdown()
	for _, name := range protocol.Names() {
		t.Run(name, func(t *testing.T) {
			res, err := Dial(addr, ClientConfig{
				Protocol:  mustProtocol(t, name),
				ProtoName: name,
				N:         8,
				W:         3,
				FIFO:      true,
				Msgs:      20,
				Timeout:   20 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verdicts.Clean() {
				t.Fatalf("client verdicts not clean: %s", res.Verdicts)
			}
			if got, want := res.Delivered, wantMessages(20); !reflect.DeepEqual(got, want) {
				t.Fatalf("delivered %v, want %v", got, want)
			}
			sum := <-sums
			if sum.Err != nil {
				t.Fatalf("server session error: %v", sum.Err)
			}
			if !sum.Verdicts.Clean() {
				t.Fatalf("server verdicts not clean: %s", sum.Verdicts)
			}
			if sum.Delivered != 20 || sum.Proto != name {
				t.Fatalf("server summary %+v", sum)
			}
		})
	}
}

// TestTCPOnlineMatchesOffline replays the client's merged schedule
// through the offline checkers: the online verdicts must be identical —
// the monitor-soundness claim, now over a real socket.
func TestTCPOnlineMatchesOffline(t *testing.T) {
	addr, sums, shutdown := startServer(t, ServerConfig{})
	defer shutdown()
	res, err := Dial(addr, ClientConfig{
		Protocol:  mustProtocol(t, "gbn"),
		ProtoName: "gbn",
		N:         8,
		W:         3,
		FIFO:      true,
		Msgs:      30,
		Timeout:   20 * time.Second,
		KeepLog:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-sums
	if offline := spec.CheckDL(projectDL(res.Log), ioa.TR); !reflect.DeepEqual(res.Verdicts.DL, offline) {
		t.Fatalf("DL: online %s != offline %s", res.Verdicts.DL, offline)
	}
	for d, online := range map[ioa.Dir]spec.Verdict{ioa.TR: res.Verdicts.PLTR, ioa.RT: res.Verdicts.PLRT} {
		if offline := spec.CheckPLFIFO(projectPL(res.Log, d), d); !reflect.DeepEqual(online, offline) {
			t.Fatalf("PL %s: online %s != offline %s", d, online, offline)
		}
	}
}

// TestTCPRejectsUnknownProtocol: a hello naming an unregistered
// protocol closes the session; the client surfaces an error and the
// server records the rejection.
func TestTCPRejectsUnknownProtocol(t *testing.T) {
	addr, sums, shutdown := startServer(t, ServerConfig{})
	defer shutdown()
	_, err := Dial(addr, ClientConfig{
		Protocol:  mustProtocol(t, "abp"),
		ProtoName: "no-such-protocol",
		Msgs:      1,
		Timeout:   10 * time.Second,
	})
	if err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if sum := <-sums; sum.Err == nil {
		t.Fatal("server recorded no error for bad hello")
	}
}

// TestTCPRejectsGarbageStream: raw non-frame bytes must abort the
// session through the strict decoder, not hang or crash it.
func TestTCPRejectsGarbageStream(t *testing.T) {
	addr, sums, shutdown := startServer(t, ServerConfig{})
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if sum := <-sums; sum.Err == nil {
		t.Fatal("server accepted a garbage stream")
	}
}

// TestTCPMaxSessions: Serve returns on its own after the configured
// number of sessions.
func TestTCPMaxSessions(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- Serve(ln, ServerConfig{Resolve: protocol.ByName, MaxSessions: 2})
	}()
	for i := 0; i < 2; i++ {
		res, err := Dial(ln.Addr().String(), ClientConfig{
			Protocol:  mustProtocol(t, "abp"),
			ProtoName: "abp",
			FIFO:      true,
			Msgs:      5,
			Timeout:   10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verdicts.Clean() {
			t.Fatalf("session %d not clean: %s", i, res.Verdicts)
		}
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not stop after MaxSessions")
	}
}
