package transport

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestLoopbackLatencySpans: a clean loopback run with a registry
// attached must record one delivery-latency span and one retransmit
// count (zero, on a clean link) per delivered message.
func TestLoopbackLatencySpans(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := RunLoopback(LoopbackConfig{
		Protocol: mustProtocol(t, "abp"),
		FIFO:     true,
		Msgs:     25,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts.Clean() {
		t.Fatalf("verdicts not clean: %s", res.Verdicts)
	}
	snap := reg.Snapshot()
	lat, ok := snap.Histogram("transport.delivery_latency")
	if !ok || lat.Count != 25 {
		t.Fatalf("delivery_latency count = %+v, want 25 spans", lat)
	}
	rtx, ok := snap.Histogram("transport.retransmits_per_msg")
	if !ok || rtx.Count != 25 {
		t.Fatalf("retransmits_per_msg count = %+v, want 25 observations", rtx)
	}
	if rtx.Sum != 0 {
		t.Fatalf("clean link recorded %d retransmits", rtx.Sum)
	}
}

// TestLoopbackLossyRetransmitSpans: under frame loss the protocol must
// retransmit, and the spans must see it — the retransmit histogram sum
// is positive while every delivered message still gets a span.
func TestLoopbackLossyRetransmitSpans(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := RunLoopback(LoopbackConfig{
		Protocol: mustProtocol(t, "abp"),
		FIFO:     true,
		Msgs:     20,
		Faults:   FaultPlan{Loss: true, Rate: 0.3},
		Seed:     7,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts.Clean() {
		t.Fatalf("verdicts not clean: %s", res.Verdicts)
	}
	snap := reg.Snapshot()
	if lat, ok := snap.Histogram("transport.delivery_latency"); !ok || lat.Count != 20 {
		t.Fatalf("delivery_latency = %+v, want 20 spans", lat)
	}
	rtx, ok := snap.Histogram("transport.retransmits_per_msg")
	if !ok || rtx.Count != 20 {
		t.Fatalf("retransmits_per_msg = %+v, want 20 observations", rtx)
	}
	if rtx.Sum == 0 {
		t.Fatal("lossy link recorded zero retransmits")
	}
}

// traceEvent is the decoded form of one transport.* trace line.
type traceEvent struct {
	Event   string `json:"event"`
	Session int64  `json:"session"`
	Side    string `json:"side"`
	Station string `json:"station"`
	Proto   string `json:"proto"`
	Origin  string          `json:"origin"`
	K       int64           `json:"k"`
	Action  json.RawMessage `json:"action"` // ioa.Action wire form; deterministic, compared raw
	Verdict string          `json:"verdict"`
	Clean   *bool           `json:"clean"`
}

// parseTrace validates a JSONL trace and decodes its events.
func parseTrace(t *testing.T, name string, buf *bytes.Buffer) []traceEvent {
	t.Helper()
	var v obs.Validator
	var out []traceEvent
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if _, err := v.Line(sc.Bytes()); err != nil {
			t.Fatalf("%s trace: %v", name, err)
		}
		var ev traceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("%s trace: %v", name, err)
		}
		out = append(out, ev)
	}
	if len(out) == 0 {
		t.Fatalf("%s trace is empty", name)
	}
	return out
}

// originSeq extracts the k-ordered action strings one origin
// contributed to a trace, checking the per-origin k indices are
// consecutive from zero.
func originSeq(t *testing.T, name string, evs []traceEvent, origin string) []string {
	t.Helper()
	var out []string
	for _, ev := range evs {
		if ev.Event != "transport.event" || ev.Origin != origin {
			continue
		}
		if ev.K != int64(len(out)) {
			t.Fatalf("%s trace: origin %s k=%d, want %d", name, origin, ev.K, len(out))
		}
		out = append(out, string(ev.Action))
	}
	return out
}

// TestTCPTraceBothSides runs one session with traces attached on both
// endpoints and pins the cross-endpoint merge contract: both traces
// validate, agree on the session parameters, assign each origin the
// same k-ordered action sequence (the client's local tail after its
// Bye is the one tolerated divergence), and seal clean. The client
// registry must also carry one latency span per message.
func TestTCPTraceBothSides(t *testing.T) {
	var serverBuf, clientBuf bytes.Buffer
	serverTrace := obs.NewTrace(&serverBuf)
	clientTrace := obs.NewTrace(&clientBuf)
	reg := obs.NewRegistry()

	addr, sums, shutdown := startServer(t, ServerConfig{Trace: serverTrace})
	res, err := Dial(addr, ClientConfig{
		Protocol:  mustProtocol(t, "gbn"),
		ProtoName: "gbn",
		N:         8,
		W:         3,
		FIFO:      true,
		Msgs:      15,
		Timeout:   20 * time.Second,
		Registry:  reg,
		Trace:     clientTrace,
		Session:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := <-sums
	shutdown()
	if err := serverTrace.Close(); err != nil {
		t.Fatal(err)
	}
	if err := clientTrace.Close(); err != nil {
		t.Fatal(err)
	}
	if !res.Verdicts.Clean() || !sum.Verdicts.Clean() {
		t.Fatalf("verdicts not clean: client %s server %s", res.Verdicts, sum.Verdicts)
	}

	client := parseTrace(t, "client", &clientBuf)
	server := parseTrace(t, "server", &serverBuf)
	for name, evs := range map[string][]traceEvent{"client": client, "server": server} {
		open, seal := evs[0], evs[len(evs)-1]
		if open.Event != "transport.session" || open.Proto != "gbn" || open.Session != 1 {
			t.Fatalf("%s trace opens with %+v", name, open)
		}
		if seal.Event != "transport.seal" || seal.Clean == nil || !*seal.Clean {
			t.Fatalf("%s trace seals with %+v", name, seal)
		}
	}
	if client[0].Side != "client" || client[0].Station != "t" {
		t.Fatalf("client session header %+v", client[0])
	}
	if server[0].Side != "server" || server[0].Station != "r" {
		t.Fatalf("server session header %+v", server[0])
	}

	// Merge soundness: per-origin subsequences agree. The server's view
	// of origin t may be a prefix of the client's (the client keeps
	// tracing local actions after its Bye); origin r must match exactly.
	for _, origin := range []string{"t", "r"} {
		c, s := originSeq(t, "client", client, origin), originSeq(t, "server", server, origin)
		if origin == "t" && len(s) < len(c) {
			c = c[:len(s)]
		}
		if len(c) != len(s) {
			t.Fatalf("origin %s: client has %d events, server %d", origin, len(c), len(s))
		}
		for k := range c {
			if c[k] != s[k] {
				t.Fatalf("origin %s diverges at k=%d: client %s, server %s", origin, k, c[k], s[k])
			}
		}
		if len(s) == 0 {
			t.Fatalf("origin %s contributed no events", origin)
		}
	}

	if lat, ok := reg.Snapshot().Histogram("transport.delivery_latency"); !ok || lat.Count != 15 {
		t.Fatalf("client delivery_latency = %+v, want 15 spans", lat)
	}
}

// TestSessionSummaryTelemetry pins the /sessions payload fields: frame
// counts, duration and session IDs are filled in for served sessions.
func TestSessionSummaryTelemetry(t *testing.T) {
	addr, sums, shutdown := startServer(t, ServerConfig{})
	defer shutdown()
	for i := 1; i <= 2; i++ {
		if _, err := Dial(addr, ClientConfig{
			Protocol:  mustProtocol(t, "abp"),
			ProtoName: "abp",
			FIFO:      true,
			Msgs:      5,
			Timeout:   10 * time.Second,
		}); err != nil {
			t.Fatal(err)
		}
		sum := <-sums
		if sum.Err != nil {
			t.Fatal(sum.Err)
		}
		if sum.ID != int64(i) {
			t.Errorf("session %d: ID = %d", i, sum.ID)
		}
		if sum.FramesIn == 0 || sum.FramesOut == 0 {
			t.Errorf("session %d: frame counts not recorded: %+v", i, sum)
		}
		if sum.Duration <= 0 {
			t.Errorf("session %d: duration not recorded", i)
		}
		if sum.Violations != 0 {
			t.Errorf("session %d: spurious violations: %d", i, sum.Violations)
		}
	}
}
