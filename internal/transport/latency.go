package transport

import (
	"time"

	"repro/internal/ioa"
)

// spanTracker measures per-message end-to-end delivery latency and
// retransmission cost from a session's causally-linearized event
// stream. It is fed every observed action (the same stream the online
// monitors judge):
//
//   - send_msg(m) opens m's span — the injection stamp at the
//     transmitter (on the server side, the stamp is taken when the
//     mirrored send_msg event arrives, which the emit-before-send
//     ordering guarantees precedes the data frame it caused);
//   - send_pkt carrying payload m counts one transmission of m, so the
//     per-message send count at delivery time is 1 + retransmits;
//   - receive_msg(m) closes the span, recording the elapsed time into
//     transport.delivery_latency (µs) and the extra transmissions into
//     transport.retransmits_per_msg.
//
// Duplicate deliveries (a duplicating link) find their span already
// closed and record nothing; protocols whose packets do not carry the
// message verbatim (frag splits messages into fragments) simply never
// match a send count, so their retransmit histogram stays empty while
// latency still records. The tracker is not goroutine-safe; sessions
// call it under the same serialisation as their monitors. The nil
// tracker is a valid no-op, which is the whole disabled mode — spans
// cost nothing unless a registry is attached.
type spanTracker struct {
	ins   *instruments
	now   func() time.Duration
	start map[ioa.Message]time.Duration
	sends map[ioa.Message]int
}

// newSpanTracker returns a tracker recording into ins, or nil (the
// no-op tracker) when enabled is false.
func newSpanTracker(enabled bool, ins *instruments) *spanTracker {
	if !enabled {
		return nil
	}
	began := time.Now()
	return &spanTracker{
		ins:   ins,
		now:   func() time.Duration { return time.Since(began) },
		start: make(map[ioa.Message]time.Duration),
		sends: make(map[ioa.Message]int),
	}
}

// observe feeds one event of the session's global schedule.
func (st *spanTracker) observe(a ioa.Action) {
	if st == nil {
		return
	}
	switch a.Kind {
	case ioa.KindSendMsg:
		if _, open := st.start[a.Msg]; !open {
			st.start[a.Msg] = st.now()
		}
	case ioa.KindSendPkt:
		if a.Pkt.Payload != "" {
			st.sends[a.Pkt.Payload]++
		}
	case ioa.KindReceiveMsg:
		if t0, open := st.start[a.Msg]; open {
			st.ins.deliveryLatency.Observe(max64(0, (st.now()-t0).Microseconds()))
			delete(st.start, a.Msg)
		}
		if n, counted := st.sends[a.Msg]; counted {
			st.ins.retransmitsPerMsg.Observe(int64(n - 1))
			delete(st.sends, a.Msg)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
