package transport

import (
	"repro/internal/obs"
)

// This file is the transport's observability surface. Handles are
// resolved once per session against an optional registry; with no
// registry attached every instrument is a nil no-op, per the obs
// package's zero-cost-when-disabled contract.
//
// Exported metric names:
//
//	transport.msgs_sent           counter   send_msg inputs injected
//	transport.msgs_delivered      counter   receive_msg events (goodput numerator)
//	transport.frames_sent         counter   frames encoded onto the link
//	transport.frames_received     counter   frames decoded off the link
//	transport.frame_bytes_sent    counter   encoded bytes onto the link
//	transport.frame_bytes_received counter  decoded bytes off the link
//	transport.frame_size          histogram per-frame encoded size
//	transport.decode_errors       counter   frames rejected by the strict decoder
//	transport.faults_injected     counter   middlebox surgeries applied
//	transport.monitor_violations  counter   online-monitor violations signalled
//	transport.link_in_transit     gauge     frames pending in the loopback link
//	                                        (high-water mark)
//	transport.delivery_latency    histogram send_msg → receive_msg span, µs
//	transport.retransmits_per_msg histogram extra payload transmissions per
//	                                        delivered message (sends − 1)
type instruments struct {
	msgsSent          *obs.Counter
	msgsDelivered     *obs.Counter
	framesSent        *obs.Counter
	framesReceived    *obs.Counter
	bytesSent         *obs.Counter
	bytesReceived     *obs.Counter
	frameSize         *obs.Histogram
	decodeErrors      *obs.Counter
	faultsInjected    *obs.Counter
	violations        *obs.Counter
	inTransit         *obs.Gauge
	deliveryLatency   *obs.Histogram
	retransmitsPerMsg *obs.Histogram
}

// newInstruments resolves the handle set; reg may be nil (disabled).
func newInstruments(reg *obs.Registry) instruments {
	return instruments{
		msgsSent:       reg.Counter("transport.msgs_sent"),
		msgsDelivered:  reg.Counter("transport.msgs_delivered"),
		framesSent:     reg.Counter("transport.frames_sent"),
		framesReceived: reg.Counter("transport.frames_received"),
		bytesSent:      reg.Counter("transport.frame_bytes_sent"),
		bytesReceived:  reg.Counter("transport.frame_bytes_received"),
		frameSize:      reg.Histogram("transport.frame_size", obs.ExpBuckets(16, 2, 12)),
		decodeErrors:   reg.Counter("transport.decode_errors"),
		faultsInjected: reg.Counter("transport.faults_injected"),
		violations:     reg.Counter("transport.monitor_violations"),
		inTransit:      reg.Gauge("transport.link_in_transit"),
		// Latency spans from 1µs to ~16s; retransmit counts 0..15 linear.
		deliveryLatency:   reg.Histogram("transport.delivery_latency", obs.ExpBuckets(1, 2, 24)),
		retransmitsPerMsg: reg.Histogram("transport.retransmits_per_msg", obs.LinearBuckets(0, 1, 16)),
	}
}

func (ins *instruments) frameSent(n int) {
	ins.framesSent.Inc()
	ins.bytesSent.Add(int64(n))
	ins.frameSize.Observe(int64(n))
}

func (ins *instruments) frameReceived(n int) {
	ins.framesReceived.Inc()
	ins.bytesReceived.Add(int64(n))
}
