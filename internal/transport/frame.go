// Package transport runs a registered core.Protocol pair over real
// connections: a length-prefixed, CRC32-protected frame codec, an
// in-process loopback backend with a fault-injecting middlebox, and a
// TCP backend (cmd/dlserve, cmd/loadgen). It is the third execution
// substrate beside the sim runner and the explore model checker — one
// protocol implementation, three ways to run it.
//
// Every layer event an endpoint applies locally is also mirrored to its
// peer as an event frame, so both sides observe the same global action
// stream and can judge it with the internal/spec checkers attached as
// online monitors (spec.OnlineDL, spec.OnlinePL). The monitor verdict
// equals the offline CheckDL/CheckPL verdict on the captured schedule;
// see DESIGN.md §9 for the soundness argument.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/ioa"
)

// ErrFrameFormat reports a malformed frame: corruption, truncation,
// version skew, an unknown frame type, an out-of-range length prefix, a
// CRC mismatch, trailing garbage, or a body that does not parse. Every
// decode failure wraps this error; a strict decoder refuses to guess.
var ErrFrameFormat = errors.New("transport: malformed frame")

// Wire layout of one frame:
//
//	u32 length   — big-endian byte count of everything after this field
//	u8  version  — frameVersion; any other value is rejected
//	u8  type     — FrameType
//	... body     — type-specific, fixed-width encodings only
//	u32 crc      — big-endian IEEE CRC32 over [version..body]
//
// The decoder is canonical: every accepted byte string re-encodes
// bit-identically (FuzzFrameDecode enforces this), which is what makes
// "reject every single-byte corruption" a checkable golden-test
// property rather than a hope.
const (
	frameVersion = 1
	// frameOverhead counts the version, type and CRC bytes covered by
	// the length prefix.
	frameOverhead = 1 + 1 + 4
	// MaxFrame bounds the length prefix; anything larger is rejected
	// before buffering.
	MaxFrame = 1 << 20
)

// FrameType discriminates the frame bodies.
type FrameType uint8

// The frame types of the transport session protocol.
const (
	// FrameHello opens a session: protocol name, parameters and the
	// link's claimed FIFO discipline. Both sides must agree exactly.
	FrameHello FrameType = 1
	// FrameData carries one protocol packet; Action is the send_pkt
	// event that produced it (the receiver applies the matching
	// receive_pkt).
	FrameData FrameType = 2
	// FrameStatus carries a wake, fail or crash to be applied as an
	// input at the receiving endpoint.
	FrameStatus FrameType = 3
	// FrameEvent mirrors one locally-applied layer event to the peer,
	// so both sides can feed the same global schedule to their online
	// monitors.
	FrameEvent FrameType = 4
	// FrameBye seals the session; the peer answers with its own Bye
	// after flushing pending event frames.
	FrameBye FrameType = 5
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameData:
		return "data"
	case FrameStatus:
		return "status"
	case FrameEvent:
		return "event"
	case FrameBye:
		return "bye"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Frame is the decoded form of one wire frame. Only the fields relevant
// to Type are meaningful; the others are zero, and the decoder enforces
// that (a Hello carries no action, a Data frame no protocol name).
type Frame struct {
	Type FrameType

	// Hello fields.
	Proto string
	N, W  int
	FIFO  bool

	// Data, Status and Event payload.
	Action ioa.Action
}

// validate checks the type-specific invariants shared by the encoder
// and the decoder.
func (f Frame) validate() error {
	switch f.Type {
	case FrameHello:
		if f.N < 0 || f.W < 0 {
			return fmt.Errorf("%w: negative hello parameters", ErrFrameFormat)
		}
	case FrameData:
		if f.Action.Kind != ioa.KindSendPkt {
			return fmt.Errorf("%w: data frame carries %s, want send_pkt", ErrFrameFormat, f.Action.Kind)
		}
	case FrameStatus:
		switch f.Action.Kind {
		case ioa.KindWake, ioa.KindFail, ioa.KindCrash:
		default:
			return fmt.Errorf("%w: status frame carries %s", ErrFrameFormat, f.Action.Kind)
		}
	case FrameEvent:
		if !f.Action.IsLayerAction() && f.Action.Kind != ioa.KindInternal {
			return fmt.Errorf("%w: event frame carries %s", ErrFrameFormat, f.Action.Kind)
		}
	case FrameBye:
	default:
		return fmt.Errorf("%w: unknown frame type %d", ErrFrameFormat, uint8(f.Type))
	}
	return nil
}

// appendBody appends the type-specific body.
func (f Frame) appendBody(dst []byte) []byte {
	switch f.Type {
	case FrameHello:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Proto)))
		dst = append(dst, f.Proto...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.N))
		dst = binary.BigEndian.AppendUint32(dst, uint32(f.W))
		if f.FIFO {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case FrameData, FrameStatus, FrameEvent:
		dst = ioa.AppendWireAction(dst, f.Action)
	case FrameBye:
	}
	return dst
}

// decodeBody parses the type-specific body, which must be consumed
// exactly.
func (f *Frame) decodeBody(body []byte) error {
	switch f.Type {
	case FrameHello:
		if len(body) < 4 {
			return fmt.Errorf("%w: truncated hello", ErrFrameFormat)
		}
		n := binary.BigEndian.Uint32(body)
		if n > MaxFrame || uint32(len(body)-4) < n {
			return fmt.Errorf("%w: hello name length %d out of range", ErrFrameFormat, n)
		}
		f.Proto = string(body[4 : 4+n])
		rest := body[4+n:]
		if len(rest) != 9 {
			return fmt.Errorf("%w: hello body has %d trailing bytes, want 9", ErrFrameFormat, len(rest))
		}
		f.N = int(binary.BigEndian.Uint32(rest))
		f.W = int(binary.BigEndian.Uint32(rest[4:]))
		switch rest[8] {
		case 0:
			f.FIFO = false
		case 1:
			f.FIFO = true
		default:
			return fmt.Errorf("%w: hello fifo flag %d", ErrFrameFormat, rest[8])
		}
	case FrameData, FrameStatus, FrameEvent:
		a, n, err := ioa.DecodeWireAction(body)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrFrameFormat, err)
		}
		if n != len(body) {
			return fmt.Errorf("%w: %d trailing bytes after action", ErrFrameFormat, len(body)-n)
		}
		f.Action = a
	case FrameBye:
		if len(body) != 0 {
			return fmt.Errorf("%w: bye frame has %d body bytes", ErrFrameFormat, len(body))
		}
	}
	return nil
}

// AppendFrame appends the wire encoding of f to dst.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if err := f.validate(); err != nil {
		return dst, err
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length placeholder
	start := len(dst)
	dst = append(dst, frameVersion, byte(f.Type))
	dst = f.appendBody(dst)
	crc := crc32.ChecksumIEEE(dst[start:])
	dst = binary.BigEndian.AppendUint32(dst, crc)
	total := len(dst) - start
	if total > MaxFrame {
		return dst[:lenAt], fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrFrameFormat, total)
	}
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(total))
	return dst, nil
}

// EncodeFrame returns the wire encoding of f.
func EncodeFrame(f Frame) ([]byte, error) {
	return AppendFrame(nil, f)
}

// DecodeFrame decodes one frame from the front of b, returning the
// frame and the number of bytes consumed. Truncated input is an error:
// this is the fixed-buffer decoder; the streaming reader handles
// frames split across reads.
func DecodeFrame(b []byte) (Frame, int, error) {
	var f Frame
	if len(b) < 4 {
		return f, 0, fmt.Errorf("%w: short length prefix", ErrFrameFormat)
	}
	length := binary.BigEndian.Uint32(b)
	if length < frameOverhead || length > MaxFrame {
		return f, 0, fmt.Errorf("%w: length %d out of range [%d, %d]", ErrFrameFormat, length, frameOverhead, MaxFrame)
	}
	if uint32(len(b)-4) < length {
		return f, 0, fmt.Errorf("%w: frame truncated (%d of %d bytes)", ErrFrameFormat, len(b)-4, length)
	}
	inner := b[4 : 4+length]
	wantCRC := binary.BigEndian.Uint32(inner[len(inner)-4:])
	covered := inner[:len(inner)-4]
	if got := crc32.ChecksumIEEE(covered); got != wantCRC {
		return f, 0, fmt.Errorf("%w: crc mismatch (got %08x, want %08x)", ErrFrameFormat, got, wantCRC)
	}
	if covered[0] != frameVersion {
		return f, 0, fmt.Errorf("%w: version %d, want %d", ErrFrameFormat, covered[0], frameVersion)
	}
	f.Type = FrameType(covered[1])
	if err := f.decodeBody(covered[2:]); err != nil {
		return f, 0, err
	}
	if err := f.validate(); err != nil {
		return f, 0, err
	}
	return f, 4 + int(length), nil
}

// FrameReader reads frames from a byte stream. A clean EOF at a frame
// boundary surfaces as io.EOF; an EOF inside a frame, and every decode
// failure, wraps ErrFrameFormat.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
	// OnFrame, when set, observes the byte size of each decoded frame
	// (the obs hook for the frame-size histogram).
	OnFrame func(n int)
}

// NewFrameReader returns a reader decoding frames from r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Next reads and decodes the next frame.
func (fr *FrameReader) Next() (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: reading length: %v", ErrFrameFormat, err)
	}
	length := binary.BigEndian.Uint32(hdr[:])
	if length < frameOverhead || length > MaxFrame {
		return Frame{}, fmt.Errorf("%w: length %d out of range [%d, %d]", ErrFrameFormat, length, frameOverhead, MaxFrame)
	}
	if cap(fr.buf) < 4+int(length) {
		fr.buf = make([]byte, 4+int(length))
	}
	buf := fr.buf[:4+int(length)]
	copy(buf, hdr[:])
	if _, err := io.ReadFull(fr.r, buf[4:]); err != nil {
		return Frame{}, fmt.Errorf("%w: reading body: %v", ErrFrameFormat, err)
	}
	f, n, err := DecodeFrame(buf)
	if err != nil {
		return Frame{}, err
	}
	if fr.OnFrame != nil {
		fr.OnFrame(n)
	}
	return f, nil
}

// FrameWriter encodes frames onto a byte stream. It is not
// goroutine-safe; sessions serialise writes with their own lock.
type FrameWriter struct {
	w   io.Writer
	buf []byte
	// OnFrame, when set, observes the byte size of each written frame.
	OnFrame func(n int)
}

// NewFrameWriter returns a writer encoding frames onto w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w}
}

// Write encodes f and writes it to the underlying stream.
func (fw *FrameWriter) Write(f Frame) error {
	b, err := AppendFrame(fw.buf[:0], f)
	if err != nil {
		return err
	}
	fw.buf = b[:0]
	if _, err := fw.w.Write(b); err != nil {
		return fmt.Errorf("transport: writing %s frame: %w", f.Type, err)
	}
	if fw.OnFrame != nil {
		fw.OnFrame(len(b))
	}
	return nil
}
