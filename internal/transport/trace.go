package transport

import (
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/spec"
)

// sessionTracer streams a session's observed event sequence — its
// causal linearization of the global schedule — as JSONL trace events,
// so two endpoints' traces can be joined offline into one timeline
// (obsreport -merge). Event vocabulary:
//
//	transport.session    session open: side, station, proto, n, w, fifo
//	transport.event      one observed action: origin station, that
//	                     origin's event index k, and the action itself
//	transport.violation  an online monitor signalled: property, detail
//	transport.seal       session sealed: verdict, clean, delivered count
//
// The (origin, k) pair is the merge key. Each side numbers its *local*
// actions 0,1,2,… in application order, and numbers the peer's mirrored
// actions by arrival order — which, because event frames are emitted
// before any data frame they cause and TCP preserves order, equals the
// peer's own local numbering. Two traces of the same session therefore
// agree on (origin, k) → action, and each trace's line order is a
// linear extension of the causal order; DESIGN.md §10 gives the
// soundness argument. The nil tracer is a valid no-op, so sessions emit
// unconditionally.
type sessionTracer struct {
	tr      *obs.Trace
	side    string // "client" or "server"
	session int64  // distinguishes concurrent sessions in one server trace
	local   ioa.Station
	localK  int64
	peerK   int64
}

// newSessionTracer returns a tracer for one session, or nil (no-op)
// when tr is nil. local is the station this side hosts.
func newSessionTracer(tr *obs.Trace, side string, local ioa.Station, session int64) *sessionTracer {
	if tr == nil {
		return nil
	}
	return &sessionTracer{tr: tr, side: side, session: session, local: local}
}

// hello records the session parameters both sides agreed on.
func (t *sessionTracer) hello(proto string, n, w int, fifo bool) {
	if t == nil {
		return
	}
	t.tr.Emit("transport.session",
		obs.Int("session", t.session),
		obs.Str("side", t.side),
		obs.Str("station", string(t.local)),
		obs.Str("proto", proto),
		obs.Int("n", int64(n)),
		obs.Int("w", int64(w)),
		obs.Bool("fifo", fifo))
}

// event records one observed action; local says whether this side
// applied it or merged it from a peer mirror.
func (t *sessionTracer) event(local bool, a ioa.Action) {
	if t == nil {
		return
	}
	origin := t.local
	k := &t.localK
	if !local {
		origin = t.local.Other()
		k = &t.peerK
	}
	t.tr.Emit("transport.event",
		obs.Int("session", t.session),
		obs.Str("origin", string(origin)),
		obs.Int("k", *k),
		obs.JSON("action", a))
	*k++
}

// violation records an online monitor signal at its causal position.
func (t *sessionTracer) violation(v spec.Violation) {
	if t == nil {
		return
	}
	t.tr.Emit("transport.violation",
		obs.Int("session", t.session),
		obs.Str("property", string(v.Property)),
		obs.Str("detail", v.Detail))
}

// seal records the sealed verdicts.
func (t *sessionTracer) seal(v VerdictSet, delivered int) {
	if t == nil {
		return
	}
	t.tr.Emit("transport.seal",
		obs.Int("session", t.session),
		obs.Str("verdict", v.String()),
		obs.Bool("clean", v.Clean()),
		obs.Int("delivered", int64(delivered)))
}
