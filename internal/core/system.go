package core

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/ioa"
)

// System is the paper's composed data link implementation: the composition
// D(A) = A^t ∥ A^r ∥ C^{t,r} ∥ C^{r,t} together with D'(A) =
// hide_Φ(D(A)), where Φ is the set of send_pkt and receive_pkt actions
// (Sections 5.2 and 6). With FIFO channels this is D̂'(A); with the
// non-FIFO permissive channels it is D̄'(A).
type System struct {
	Protocol Protocol
	// CT is the channel from t to r; CR the channel from r to t.
	CT, CR *channel.Channel
	// Comp is the raw composition D(A); Hidden is D'(A).
	Comp   *ioa.Composition
	Hidden *ioa.Hidden
	// ctIdx, crIdx cache the channels' component indices: hot paths (the
	// explorer resolves a channel state for every send_pkt successor) skip
	// the by-name component scan.
	ctIdx, crIdx int
}

// SystemOption configures system construction.
type SystemOption func(*systemConfig)

type systemConfig struct {
	channelOpts []channel.Option
}

// WithChannelOptions forwards options (e.g. channel.WithLoss()) to both
// channels.
func WithChannelOptions(opts ...channel.Option) SystemOption {
	return func(c *systemConfig) { c.channelOpts = append(c.channelOpts, opts...) }
}

// NewSystem composes the protocol with a pair of permissive channels:
// FIFO channels Ĉ when fifo is true (the Section 7 setting), the
// arbitrary-reordering channels C̄ otherwise (the Section 8 setting).
func NewSystem(p Protocol, fifo bool, opts ...SystemOption) (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var cfg systemConfig
	for _, o := range opts {
		o(&cfg)
	}
	newChan := channel.NewPermissive
	if fifo {
		newChan = channel.NewPermissiveFIFO
	}
	ct := newChan(ioa.TR, cfg.channelOpts...)
	cr := newChan(ioa.RT, cfg.channelOpts...)
	comp, err := ioa.Compose("D("+p.Name+")", p.T, p.R, ct, cr)
	if err != nil {
		return nil, fmt.Errorf("core: composing system for %s: %w", p.Name, err)
	}
	return &System{
		Protocol: p,
		CT:       ct,
		CR:       cr,
		Comp:     comp,
		Hidden:   ioa.Hide(comp, ioa.HidePacketActions()),
		ctIdx:    comp.ComponentIndex(ct.Name()),
		crIdx:    comp.ComponentIndex(cr.Name()),
	}, nil
}

// TransmitterState extracts A^t's state from a composite state.
func (s *System) TransmitterState(st ioa.State) (ioa.State, error) {
	return s.Comp.ComponentState(st, s.Protocol.T.Name())
}

// ReceiverState extracts A^r's state from a composite state.
func (s *System) ReceiverState(st ioa.State) (ioa.State, error) {
	return s.Comp.ComponentState(st, s.Protocol.R.Name())
}

// Channel returns the channel automaton carrying packets in direction d.
func (s *System) Channel(d ioa.Dir) *channel.Channel {
	if d == ioa.TR {
		return s.CT
	}
	return s.CR
}

// ChannelState extracts the state of the channel in direction d.
func (s *System) ChannelState(st ioa.State, d ioa.Dir) (channel.State, error) {
	comp, ok := st.(ioa.CompositeState)
	if !ok {
		return channel.State{}, fmt.Errorf("%w: want CompositeState, got %T", ioa.ErrBadState, st)
	}
	idx := s.ctIdx
	if d != ioa.TR {
		idx = s.crIdx
	}
	if idx < 0 || idx >= len(comp.Parts) {
		return channel.State{}, fmt.Errorf("%w: no channel component for direction %s", ioa.ErrBadState, d)
	}
	cs, ok := comp.Parts[idx].(channel.State)
	if !ok {
		return channel.State{}, fmt.Errorf("%w: want channel.State, got %T", ioa.ErrBadState, comp.Parts[idx])
	}
	return cs, nil
}

// StationAutomaton returns A^x for station x.
func (s *System) StationAutomaton(x ioa.Station) ioa.Automaton {
	if x == ioa.T {
		return s.Protocol.T
	}
	return s.Protocol.R
}

// StationState extracts A^x's state from a composite state.
func (s *System) StationState(st ioa.State, x ioa.Station) (ioa.State, error) {
	return s.Comp.ComponentState(st, s.StationAutomaton(x).Name())
}

// OutChannelDir returns the direction of the channel that carries packets
// *sent by* station x: t sends on (t,r), r sends on (r,t).
func OutChannelDir(x ioa.Station) ioa.Dir {
	if x == ioa.T {
		return ioa.TR
	}
	return ioa.RT
}

// InChannelDir returns the direction of the channel that delivers packets
// *to* station x.
func InChannelDir(x ioa.Station) ioa.Dir { return OutChannelDir(x).Rev() }

// CleanChannels applies Lemma 6.3 surgery to both channels of a composite
// state: every in-transit packet is lost, leaving both channels clean.
func (s *System) CleanChannels(st ioa.State) (ioa.State, error) {
	for _, ch := range []*channel.Channel{s.CT, s.CR} {
		raw, err := s.Comp.ComponentState(st, ch.Name())
		if err != nil {
			return nil, err
		}
		cleaned, err := ch.MakeClean(raw)
		if err != nil {
			return nil, err
		}
		st, err = s.Comp.WithComponentState(st, ch.Name(), cleaned)
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// KeepOnlyInTransit applies Lemma 6.6 surgery to the channel in direction
// d: exactly the packets in keep remain in transit; all other pending
// packets are lost.
func (s *System) KeepOnlyInTransit(st ioa.State, d ioa.Dir, keep []ioa.Packet) (ioa.State, error) {
	ch := s.Channel(d)
	raw, err := s.Comp.ComponentState(st, ch.Name())
	if err != nil {
		return nil, err
	}
	kept, err := ch.KeepOnly(raw, keep)
	if err != nil {
		return nil, err
	}
	return s.Comp.WithComponentState(st, ch.Name(), kept)
}

// InTransit returns the packets in transit in direction d.
func (s *System) InTransit(st ioa.State, d ioa.Dir) ([]ioa.Packet, error) {
	cs, err := s.ChannelState(st, d)
	if err != nil {
		return nil, err
	}
	return cs.InTransit(), nil
}

// MessageMinter mints fresh messages from the infinite alphabet M: each
// call returns a message that no previous call returned. The impossibility
// constructions rely on an inexhaustible supply of never-sent messages.
type MessageMinter struct {
	prefix string
	n      int
}

// NewMessageMinter returns a minter whose messages carry the given prefix.
func NewMessageMinter(prefix string) *MessageMinter {
	return &MessageMinter{prefix: prefix}
}

// Fresh returns the next fresh message.
func (m *MessageMinter) Fresh() ioa.Message {
	m.n++
	return ioa.Message(fmt.Sprintf("%s-%d", m.prefix, m.n))
}

// Count returns how many messages have been minted.
func (m *MessageMinter) Count() int { return m.n }

// PacketIDs allocates the unique packet labels required by (PL2). The
// labels are an analysis device (footnote 4): automata emit packets with
// ID zero and the runner relabels each send_pkt with a fresh ID before
// applying it; protocols never branch on the ID.
type PacketIDs struct {
	next uint64
}

// Next returns a fresh nonzero packet ID.
func (p *PacketIDs) Next() uint64 {
	p.next++
	return p.next
}

// Snapshot returns the current allocation point; Restore rewinds to it.
// The header-pump adversary snapshots the allocator together with the
// system state when it records-then-discards a probe run.
func (p *PacketIDs) Snapshot() uint64 { return p.next }

// Restore rewinds the allocator to a previous Snapshot value.
func (p *PacketIDs) Restore(v uint64) { p.next = v }
