package core

import "repro/internal/ioa"

// This file implements the canonical message-independence equivalence ≡ of
// Section 5.3.1. The paper allows any relation satisfying its five
// conditions; the canonical choice used throughout this repository is:
//
//   - all messages are equivalent (condition 2);
//   - packets are equivalent exactly when their headers are equal
//     (footnote 4: the header is the only information a protocol may use);
//   - actions are equivalent when they are identical except possibly for
//     their message or packet parameter, with packet parameters required
//     to be equivalent (conditions 1 and 3);
//   - states are equivalent when their EquivFingerprints are equal
//     (protocol state types erase message identities from the
//     fingerprint), which yields conditions 4 and 5 for the deterministic
//     automata in this repository.

// PacketsEquivalent reports p ≡ p': equal headers. The unique ID and the
// payload (a message) are erased by the equivalence.
func PacketsEquivalent(p, q ioa.Packet) bool { return p.Header == q.Header }

// MessagesEquivalent reports m ≡ m': always true (condition 2).
func MessagesEquivalent(_, _ ioa.Message) bool { return true }

// ActionsEquivalent reports a ≡ a': identical except possibly for a
// difference in message or packet parameter, with packet parameters
// equivalent.
func ActionsEquivalent(a, b ioa.Action) bool {
	return a.Kind == b.Kind && a.Dir == b.Dir && a.Name == b.Name &&
		PacketsEquivalent(a.Pkt, b.Pkt)
}

// SchedulesEquivalent reports x ≡ y for action sequences: equal length and
// pointwise equivalent (Section 5.3.1).
func SchedulesEquivalent(x, y ioa.Schedule) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if !ActionsEquivalent(x[i], y[i]) {
			return false
		}
	}
	return true
}

// PacketSeqsEquivalent reports Q ≡ Q' for packet sequences: equal length
// and pointwise header-equal.
func PacketSeqsEquivalent(x, y []ioa.Packet) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if !PacketsEquivalent(x[i], y[i]) {
			return false
		}
	}
	return true
}

// HeadersOf returns the multiset of headers of a packet sequence, in
// order: the sequence's image under ≡.
func HeadersOf(pkts []ioa.Packet) []ioa.Header {
	out := make([]ioa.Header, len(pkts))
	for i, p := range pkts {
		out[i] = p.Header
	}
	return out
}
