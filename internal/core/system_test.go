package core_test

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

func newSys(t *testing.T, fifo bool) *core.System {
	t.Helper()
	sys, err := core.NewSystem(protocol.NewABP(), fifo)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemComposition(t *testing.T) {
	sys := newSys(t, true)
	if !sys.CT.FIFO() || !sys.CR.FIFO() {
		t.Error("FIFO system should use FIFO channels")
	}
	nonfifo := newSys(t, false)
	if nonfifo.CT.FIFO() || nonfifo.CR.FIFO() {
		t.Error("non-FIFO system should use permissive channels")
	}
	if len(sys.Comp.Components()) != 4 {
		t.Errorf("system has %d components, want 4", len(sys.Comp.Components()))
	}
	// D'(A)'s signature hides packet actions.
	hsig := sys.Hidden.Signature()
	if hsig.ContainsOutput(ioa.SendPkt(ioa.TR, ioa.Packet{})) {
		t.Error("send_pkt should be hidden in D'(A)")
	}
	if !hsig.ContainsOutput(ioa.ReceiveMsg(ioa.TR, "m")) {
		t.Error("receive_msg should remain an output of D'(A)")
	}
	for _, in := range []ioa.Action{
		ioa.SendMsg(ioa.TR, "m"),
		ioa.Wake(ioa.TR), ioa.Fail(ioa.TR), ioa.Crash(ioa.TR),
		ioa.Wake(ioa.RT), ioa.Fail(ioa.RT), ioa.Crash(ioa.RT),
	} {
		if !hsig.ContainsInput(in) {
			t.Errorf("%s should be an input of D'(A)", in)
		}
	}
}

func TestSystemWithLossyChannels(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewABP(), true, core.WithChannelOptions(channel.WithLoss()))
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.CT.Signature().Int) == 0 || len(sys.CR.Signature().Int) == 0 {
		t.Error("channels should be lossy")
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := newSys(t, true)
	st := sys.Comp.Start()
	ts, err := sys.TransmitterState(st)
	if err != nil {
		t.Fatal(err)
	}
	if !ioa.StatesEqual(ts, sys.Protocol.T.Start()) {
		t.Error("transmitter start state mismatch")
	}
	rs, err := sys.ReceiverState(st)
	if err != nil {
		t.Fatal(err)
	}
	if !ioa.StatesEqual(rs, sys.Protocol.R.Start()) {
		t.Error("receiver start state mismatch")
	}
	for _, x := range []ioa.Station{ioa.T, ioa.R} {
		if sys.StationAutomaton(x) == nil {
			t.Fatalf("no automaton for %s", x)
		}
		if _, err := sys.StationState(st, x); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Channel(ioa.TR) != sys.CT || sys.Channel(ioa.RT) != sys.CR {
		t.Error("Channel accessor wrong")
	}
}

func TestSystemSurgery(t *testing.T) {
	sys := newSys(t, true)
	st := sys.Comp.Start()
	// Put two packets in transit t→r.
	var err error
	for _, a := range []ioa.Action{
		ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
		ioa.SendMsg(ioa.TR, "m"),
	} {
		st, err = sys.Comp.Step(st, a)
		if err != nil {
			t.Fatal(err)
		}
	}
	p1 := ioa.Packet{ID: 1, Header: "data/0", Payload: "m"}
	p2 := ioa.Packet{ID: 2, Header: "data/0", Payload: "m"}
	for _, p := range []ioa.Packet{p1, p2} {
		st, err = sys.Comp.Step(st, ioa.SendPkt(ioa.TR, p))
		if err != nil {
			t.Fatal(err)
		}
	}
	inT, err := sys.InTransit(st, ioa.TR)
	if err != nil {
		t.Fatal(err)
	}
	if len(inT) != 2 {
		t.Fatalf("in transit = %v", inT)
	}
	// KeepOnly the second.
	st2, err := sys.KeepOnlyInTransit(st, ioa.TR, []ioa.Packet{p2})
	if err != nil {
		t.Fatal(err)
	}
	inT, err = sys.InTransit(st2, ioa.TR)
	if err != nil {
		t.Fatal(err)
	}
	if len(inT) != 1 || inT[0] != p2 {
		t.Errorf("after KeepOnly: %v", inT)
	}
	// CleanChannels empties both.
	st3, err := sys.CleanChannels(st)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := sys.ChannelState(st3, ioa.TR)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Clean() {
		t.Error("CleanChannels left a dirty channel")
	}
	// Surgery must not disturb the protocol automata.
	ts3, err := sys.TransmitterState(st3)
	if err != nil {
		t.Fatal(err)
	}
	ts0, err := sys.TransmitterState(st)
	if err != nil {
		t.Fatal(err)
	}
	if !ioa.StatesEqual(ts3, ts0) {
		t.Error("surgery changed the transmitter state")
	}
}
