package core

import (
	"fmt"

	"repro/internal/ioa"
)

// TransmitterSignature returns the external signature every transmitting
// automaton for (t, r) must have (Section 5.1). Internal patterns may be
// appended by the implementation.
func TransmitterSignature() ioa.Signature {
	return ioa.Signature{
		In: []ioa.Pattern{
			{Kind: ioa.KindSendMsg, Dir: ioa.TR},
			{Kind: ioa.KindReceivePkt, Dir: ioa.RT},
			{Kind: ioa.KindWake, Dir: ioa.TR},
			{Kind: ioa.KindFail, Dir: ioa.TR},
			{Kind: ioa.KindCrash, Dir: ioa.TR},
		},
		Out: []ioa.Pattern{
			{Kind: ioa.KindSendPkt, Dir: ioa.TR},
		},
	}
}

// ReceiverSignature returns the external signature every receiving
// automaton for (t, r) must have (Section 5.1).
func ReceiverSignature() ioa.Signature {
	return ioa.Signature{
		In: []ioa.Pattern{
			{Kind: ioa.KindReceivePkt, Dir: ioa.TR},
			{Kind: ioa.KindWake, Dir: ioa.RT},
			{Kind: ioa.KindFail, Dir: ioa.RT},
			{Kind: ioa.KindCrash, Dir: ioa.RT},
		},
		Out: []ioa.Pattern{
			{Kind: ioa.KindSendPkt, Dir: ioa.RT},
			{Kind: ioa.KindReceiveMsg, Dir: ioa.TR},
		},
	}
}

// Properties records the structural constraints of Sections 5.3 and 8.1
// that a protocol claims to satisfy. The adversaries verify the claims
// they depend on at runtime (see VerifyCrashing and
// VerifyMessageIndependence) rather than trusting them.
type Properties struct {
	// MessageIndependent claims the protocol never branches on message
	// contents (Section 5.3.1). All protocols in this repository are
	// message-independent.
	MessageIndependent bool
	// Crashing claims both automata revert to their unique start state on
	// a crash input (Section 5.3.2), i.e. the protocol has no non-volatile
	// memory.
	Crashing bool
	// Headers lists headers(A, ≡) when it is finite; nil means the header
	// set is unbounded (as for Stenning's protocol).
	Headers []ioa.Header
	// KBound is the k for which the protocol is k-bounded (Section 8.1): a
	// fresh message can always be delivered using at most k receive_pkt
	// events on the t→r channel. Zero means no bound is claimed.
	KBound int
	// RequiresFIFO records that the protocol is only claimed correct with
	// respect to FIFO physical channels.
	RequiresFIFO bool
	// PayloadOpaque claims the protocol treats payload tokens as opaque
	// atoms: it never inspects, slices, or derives new tokens from their
	// contents, so any bijective renaming of payloads is an automorphism
	// of the transition system. This is strictly stronger than
	// MessageIndependent — the fragmenting protocol is message-independent
	// (it never *branches* on payloads) yet slices messages into fragment
	// sub-tokens, so whole-message renamings do not commute with its
	// dynamics. The explorer's symmetry reduction is gated on this claim.
	PayloadOpaque bool
}

// BoundedHeaders reports whether headers(A, ≡) is finite.
func (p Properties) BoundedHeaders() bool { return p.Headers != nil }

// Protocol is a data link protocol: a pair (A^t, A^r) of a transmitting
// and a receiving automaton (Section 5.1), with its claimed structural
// properties.
type Protocol struct {
	Name  string
	T     ioa.Automaton
	R     ioa.Automaton
	Props Properties
}

// Validate checks that the pair's external signatures match Section 5.1.
func (p Protocol) Validate() error {
	if err := signatureExtends(p.T.Signature(), TransmitterSignature()); err != nil {
		return fmt.Errorf("core: protocol %s transmitter: %w", p.Name, err)
	}
	if err := signatureExtends(p.R.Signature(), ReceiverSignature()); err != nil {
		return fmt.Errorf("core: protocol %s receiver: %w", p.Name, err)
	}
	return nil
}

// signatureExtends checks that got has exactly the required external
// patterns (extra internal patterns are allowed).
func signatureExtends(got, want ioa.Signature) error {
	if err := got.Validate(); err != nil {
		return err
	}
	if err := samePatternSet(got.In, want.In); err != nil {
		return fmt.Errorf("input actions: %w", err)
	}
	if err := samePatternSet(got.Out, want.Out); err != nil {
		return fmt.Errorf("output actions: %w", err)
	}
	return nil
}

func samePatternSet(got, want []ioa.Pattern) error {
	if len(got) != len(want) {
		return fmt.Errorf("have %d patterns, want %d", len(got), len(want))
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("missing pattern %s", w)
		}
	}
	return nil
}
