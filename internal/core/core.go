// Package core models data link protocols and their correctness, following
// Section 5 of "The Data Link Layer: Two Impossibility Results":
// transmitting and receiving automata, data link protocol pairs, the
// composition with physical channels (the systems D̄'(A) and D̂'(A) of
// Section 6), the message-independence equivalence ≡ and the derived
// header set headers(A, ≡), the crashing property, and k-boundedness.
package core
