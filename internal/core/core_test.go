package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ioa"
)

func TestPacketsEquivalent(t *testing.T) {
	a := ioa.Packet{ID: 1, Header: "data/0", Payload: "x"}
	b := ioa.Packet{ID: 2, Header: "data/0", Payload: "y"}
	c := ioa.Packet{ID: 1, Header: "data/1", Payload: "x"}
	if !PacketsEquivalent(a, b) {
		t.Error("same header must be equivalent regardless of ID/payload")
	}
	if PacketsEquivalent(a, c) {
		t.Error("different headers must not be equivalent")
	}
}

func TestActionsEquivalent(t *testing.T) {
	pa := ioa.Packet{ID: 1, Header: "h", Payload: "x"}
	pb := ioa.Packet{ID: 2, Header: "h", Payload: "y"}
	pc := ioa.Packet{ID: 3, Header: "g"}
	tests := []struct {
		name string
		a, b ioa.Action
		want bool
	}{
		{"messages always equivalent", ioa.SendMsg(ioa.TR, "m1"), ioa.SendMsg(ioa.TR, "m2"), true},
		{"different kinds", ioa.SendMsg(ioa.TR, "m"), ioa.ReceiveMsg(ioa.TR, "m"), false},
		{"different dirs", ioa.Wake(ioa.TR), ioa.Wake(ioa.RT), false},
		{"same header packets", ioa.SendPkt(ioa.TR, pa), ioa.SendPkt(ioa.TR, pb), true},
		{"different header packets", ioa.SendPkt(ioa.TR, pa), ioa.SendPkt(ioa.TR, pc), false},
		{"wake self", ioa.Wake(ioa.TR), ioa.Wake(ioa.TR), true},
		{"internal names", ioa.Internal("a"), ioa.Internal("b"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ActionsEquivalent(tt.a, tt.b); got != tt.want {
				t.Errorf("ActionsEquivalent = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestActionsEquivalentIsEquivalenceRelation(t *testing.T) {
	actions := []ioa.Action{
		ioa.SendMsg(ioa.TR, "a"), ioa.SendMsg(ioa.TR, "b"),
		ioa.ReceiveMsg(ioa.TR, "a"),
		ioa.SendPkt(ioa.TR, ioa.Packet{ID: 1, Header: "h"}),
		ioa.SendPkt(ioa.TR, ioa.Packet{ID: 2, Header: "h", Payload: "p"}),
		ioa.SendPkt(ioa.TR, ioa.Packet{ID: 3, Header: "g"}),
		ioa.Wake(ioa.TR), ioa.Crash(ioa.RT),
	}
	pick := func(i uint8) ioa.Action { return actions[int(i)%len(actions)] }
	reflexive := func(i uint8) bool { return ActionsEquivalent(pick(i), pick(i)) }
	symmetric := func(i, j uint8) bool {
		return ActionsEquivalent(pick(i), pick(j)) == ActionsEquivalent(pick(j), pick(i))
	}
	transitive := func(i, j, k uint8) bool {
		a, b, c := pick(i), pick(j), pick(k)
		if ActionsEquivalent(a, b) && ActionsEquivalent(b, c) {
			return ActionsEquivalent(a, c)
		}
		return true
	}
	for name, f := range map[string]interface{}{"reflexive": reflexive, "symmetric": symmetric, "transitive": transitive} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSchedulesEquivalent(t *testing.T) {
	x := ioa.Schedule{ioa.SendMsg(ioa.TR, "a"), ioa.Wake(ioa.TR)}
	y := ioa.Schedule{ioa.SendMsg(ioa.TR, "b"), ioa.Wake(ioa.TR)}
	if !SchedulesEquivalent(x, y) {
		t.Error("pointwise equivalent schedules rejected")
	}
	if SchedulesEquivalent(x, y[:1]) {
		t.Error("different lengths accepted")
	}
	z := ioa.Schedule{ioa.Wake(ioa.TR), ioa.SendMsg(ioa.TR, "b")}
	if SchedulesEquivalent(x, z) {
		t.Error("permuted schedules accepted")
	}
}

func TestPacketSeqsEquivalentAndHeadersOf(t *testing.T) {
	x := []ioa.Packet{{ID: 1, Header: "a"}, {ID: 2, Header: "b"}}
	y := []ioa.Packet{{ID: 9, Header: "a", Payload: "z"}, {ID: 8, Header: "b"}}
	if !PacketSeqsEquivalent(x, y) {
		t.Error("equivalent packet sequences rejected")
	}
	if PacketSeqsEquivalent(x, y[:1]) {
		t.Error("length mismatch accepted")
	}
	hs := HeadersOf(x)
	if len(hs) != 2 || hs[0] != "a" || hs[1] != "b" {
		t.Errorf("HeadersOf = %v", hs)
	}
}

func TestMessageMinterFreshness(t *testing.T) {
	m := NewMessageMinter("x")
	seen := map[ioa.Message]bool{}
	for i := 0; i < 100; i++ {
		msg := m.Fresh()
		if seen[msg] {
			t.Fatalf("minter repeated %q", msg)
		}
		seen[msg] = true
		if !strings.HasPrefix(string(msg), "x-") {
			t.Fatalf("minter ignored prefix: %q", msg)
		}
	}
	if m.Count() != 100 {
		t.Errorf("Count = %d", m.Count())
	}
	// Different prefixes never collide.
	other := NewMessageMinter("y")
	if seen[other.Fresh()] {
		t.Error("cross-minter collision")
	}
}

func TestPacketIDsUniqueAndRestorable(t *testing.T) {
	var ids PacketIDs
	a, b := ids.Next(), ids.Next()
	if a == 0 || a == b {
		t.Errorf("Next() = %d, %d", a, b)
	}
	mark := ids.Snapshot()
	c := ids.Next()
	ids.Restore(mark)
	c2 := ids.Next()
	if c != c2 {
		t.Errorf("restore not deterministic: %d vs %d", c, c2)
	}
}

// badProto builds a structurally invalid protocol for Validate tests: a
// transmitter missing its send_msg input.
type badTx struct{ ioa.Automaton }

func (badTx) Name() string { return "bad.T" }
func (badTx) Signature() ioa.Signature {
	return ioa.Signature{
		In:  []ioa.Pattern{{Kind: ioa.KindWake, Dir: ioa.TR}},
		Out: []ioa.Pattern{{Kind: ioa.KindSendPkt, Dir: ioa.TR}},
	}
}

func TestProtocolValidateRejectsWrongSignature(t *testing.T) {
	p := Protocol{Name: "bad", T: badTx{}, R: badTx{}}
	if err := p.Validate(); err == nil {
		t.Error("expected validation failure for wrong external signature")
	}
}

func TestStationDirections(t *testing.T) {
	if OutChannelDir(ioa.T) != ioa.TR || OutChannelDir(ioa.R) != ioa.RT {
		t.Error("OutChannelDir wrong")
	}
	if InChannelDir(ioa.T) != ioa.RT || InChannelDir(ioa.R) != ioa.TR {
		t.Error("InChannelDir wrong")
	}
}
