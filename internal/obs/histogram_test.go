package obs

import (
	"math"
	"testing"
)

// TestQuantileUniform observes the uniform distribution 1..1000 and
// checks the interpolated quantiles against the exact order statistics:
// the fixed-bucket estimator must be correct to within one bucket width.
func TestQuantileUniform(t *testing.T) {
	h := newHistogram(LinearBuckets(50, 50, 20)) // 50,100,…,1000
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	const bucketWidth = 50
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}, {0.25, 250}, {1.0, 1000}} {
		got := h.Quantile(tc.q)
		if math.Abs(float64(got-tc.want)) > bucketWidth {
			t.Errorf("Quantile(%.2f) = %d, want %d ± %d", tc.q, got, tc.want, bucketWidth)
		}
	}
}

// TestQuantileConstant puts all mass in one bucket: every quantile must
// land inside that bucket.
func TestQuantileConstant(t *testing.T) {
	h := newHistogram(LinearBuckets(10, 10, 5))
	for i := 0; i < 100; i++ {
		h.Observe(25)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < 20 || got > 30 {
			t.Errorf("Quantile(%.2f) = %d, want in [20,30]", q, got)
		}
	}
}

// TestQuantileEdges covers empty histograms, overflow mass and invalid q.
func TestQuantileEdges(t *testing.T) {
	h := newHistogram([]int64{10, 20})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Observe(1000) // overflow bucket
	if got := h.Quantile(0.5); got != 20 {
		t.Errorf("overflow-only quantile = %d, want last bound 20", got)
	}
	if h.Quantile(-0.1) != 0 || h.Quantile(1.1) != 0 {
		t.Error("out-of-range q must report 0")
	}
	if h.Count() != 1 || h.Sum() != 1000 {
		t.Errorf("count/sum = %d/%d, want 1/1000", h.Count(), h.Sum())
	}
}

// TestHistogramBoundsNormalised checks sorting and deduplication of
// constructor bounds, and exponential bucket generation.
func TestHistogramBoundsNormalised(t *testing.T) {
	h := newHistogram([]int64{30, 10, 20, 10})
	if len(h.bounds) != 3 || h.bounds[0] != 10 || h.bounds[2] != 30 {
		t.Errorf("bounds = %v, want [10 20 30]", h.bounds)
	}
	exp := ExpBuckets(1, 2, 5)
	want := []int64{1, 2, 4, 8, 16}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", exp, want)
		}
	}
	// Boundary values land in the bucket whose upper edge they equal.
	h.Observe(10)
	h.Observe(11)
	counts, overflow := h.snapshotBuckets()
	if counts[0] != 1 || counts[1] != 1 || overflow != 0 {
		t.Errorf("bucket counts = %v overflow %d, want [1 1 0] 0", counts, overflow)
	}
}
