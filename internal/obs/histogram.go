package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram over int64 observations. The
// bucket layout is immutable after construction: bounds[i] is the
// inclusive upper edge of bucket i, and one implicit overflow bucket
// catches everything above the last bound. Observations are three atomic
// adds after a binary search, safe for concurrent use; the nil histogram
// is a valid no-op instrument.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; the last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
}

// newHistogram builds a histogram over the given upper bounds, which are
// sorted and deduplicated. An empty bounds slice yields a single
// overflow bucket (count/sum still work; quantiles degrade to 0).
func newHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{bounds: dedup, counts: make([]atomic.Int64, len(dedup)+1)}
}

// LinearBuckets returns n upper bounds start, start+width, ...,
// start+(n-1)*width.
func LinearBuckets(start, width int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, start*factor²,
// … (factor ≥ 2 recommended), for scale-free quantities like
// steps-to-quiescence.
func ExpBuckets(start, factor int64, n int) []int64 {
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records v; it is a no-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations; zero on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; zero on a nil histogram.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank, assuming observations
// are uniform inside a bucket — the usual fixed-bucket estimator, exact
// to within one bucket width. The lower edge of the first bucket is
// taken as 0 (all engine quantities are non-negative); ranks landing in
// the overflow bucket report the last bound. Zero observations, a nil
// histogram, or an out-of-range q report 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || q < 0 || q > 1 {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i := range h.bounds {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			lo := int64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / c
			return lo + int64(math.Round(frac*float64(hi-lo)))
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshotBuckets returns the per-bucket counts aligned with bounds,
// plus the overflow count.
func (h *Histogram) snapshotBuckets() ([]int64, int64) {
	out := make([]int64, len(h.bounds))
	for i := range out {
		out[i] = h.counts[i].Load()
	}
	return out, h.counts[len(h.bounds)].Load()
}
