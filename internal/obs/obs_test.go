package obs

import (
	"sync"
	"testing"
)

// TestNilInstrumentsAreNoOps pins the zero-cost-when-disabled contract:
// a nil registry hands out nil instruments whose every method is safe.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", LinearBuckets(1, 1, 4))
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil instruments: %v %v %v", c, g, h)
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.SetMax(9)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments reported non-zero values")
	}
	var tr *Trace
	tr.Emit("event", Int("k", 1))
	if err := tr.Close(); err != nil {
		t.Errorf("nil trace Close: %v", err)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

// TestRegistryIdempotent asserts that lookups by the same name return
// the same instrument.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("a", []int64{1}) != r.Histogram("a", []int64{2}) {
		t.Error("Histogram not idempotent")
	}
}

// TestConcurrentInstruments hammers one counter, one high-water gauge
// and one histogram from many goroutines; run under -race this is the
// concurrency-safety test, and the totals check that no increment was
// lost.
func TestConcurrentInstruments(t *testing.T) {
	const workers, perWorker = 8, 10000
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolve by name concurrently too: the registry itself is shared.
			c := r.Counter("hits")
			g := r.Gauge("peak")
			h := r.Histogram("sizes", LinearBuckets(1000, 1000, 10))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v := int64(w*perWorker + i)
				g.SetMax(v)
				h.Observe(v % 10000)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("peak").Value(); got != workers*perWorker-1 {
		t.Errorf("gauge high-water = %d, want %d", got, workers*perWorker-1)
	}
	h := r.Histogram("sizes", nil)
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

// TestGaugeSetMaxIsMonotone checks high-water semantics.
func TestGaugeSetMaxIsMonotone(t *testing.T) {
	var g Gauge
	for _, v := range []int64{3, 7, 5, 7, 2} {
		g.SetMax(v)
	}
	if g.Value() != 7 {
		t.Errorf("SetMax high-water = %d, want 7", g.Value())
	}
	g.Set(1)
	if g.Value() != 1 {
		t.Errorf("Set = %d, want 1", g.Value())
	}
}

// TestSnapshotSortedAndComplete checks that the snapshot is sorted by
// name and carries the right values.
func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("g").Set(9)
	h := r.Histogram("h", LinearBuckets(10, 10, 3))
	for _, v := range []int64{5, 15, 25, 999} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if s.Counter("a") != 1 || s.Counter("b") != 2 || s.Counter("missing") != 0 {
		t.Errorf("counter values wrong: %+v", s.Counters)
	}
	if s.Gauge("g") != 9 {
		t.Errorf("gauge value = %d, want 9", s.Gauge("g"))
	}
	hs, ok := s.Histogram("h")
	if !ok || hs.Count != 4 || hs.Sum != 5+15+25+999 || hs.Overflow != 1 {
		t.Errorf("histogram snapshot wrong: %+v", hs)
	}
	if len(hs.Buckets) != 3 {
		t.Errorf("buckets = %+v, want 3 non-empty", hs.Buckets)
	}
}
