package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentSnapshotWhileHot is the live-scrape pin: /metrics calls
// Registry.Snapshot() while every instrument is being written from many
// goroutines, and must never torn-read. Under -race (the Makefile race
// target covers internal/obs) this doubles as the data-race proof; the
// assertions below pin the weaker-but-real consistency guarantees a
// concurrent snapshot does make:
//
//   - every individual value is read atomically, so counters are
//     monotone across successive snapshots;
//   - a histogram's buckets are read after its total, and Observe bumps
//     the bucket before the total, so the bucket sum (plus overflow) is
//     never less than the snapshotted count.
func TestConcurrentSnapshotWhileHot(t *testing.T) {
	reg := NewRegistry()
	const writers = 8
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolve some handles up front and some mid-flight: live
			// registration while a scrape holds the registry lock is
			// exactly what a lazily-instrumented session does.
			c := reg.Counter("hot.count")
			h := reg.Histogram("hot.lat", ExpBuckets(1, 2, 12))
			g := reg.Gauge("hot.peak")
			// At least one iteration even if the scraper finishes first
			// (single-core schedulers can starve the writers entirely).
			for i := int64(0); i == 0 || !stop.Load(); i++ {
				c.Inc()
				h.Observe(i % 1000)
				g.SetMax(i)
				if i%256 == 0 {
					reg.Counter(fmt.Sprintf("hot.w%d", w)).Inc()
				}
			}
		}(w)
	}

	var lastCount int64
	for scrape := 0; scrape < 200; scrape++ {
		snap := reg.Snapshot()
		if got := snap.Counter("hot.count"); got < lastCount {
			t.Fatalf("scrape %d: counter went backwards: %d then %d", scrape, lastCount, got)
		} else {
			lastCount = got
		}
		for _, h := range snap.Histograms {
			var bucketSum int64
			for _, b := range h.Buckets {
				bucketSum += b.Count
			}
			if bucketSum+h.Overflow < h.Count {
				t.Fatalf("scrape %d: torn histogram %s: buckets %d + overflow %d < count %d",
					scrape, h.Name, bucketSum, h.Overflow, h.Count)
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiesced: the final snapshot is exact.
	snap := reg.Snapshot()
	if hs, ok := snap.Histogram("hot.lat"); !ok || hs.Count == 0 {
		t.Fatal("final snapshot lost the hot histogram")
	} else {
		var bucketSum int64
		for _, b := range hs.Buckets {
			bucketSum += b.Count
		}
		if bucketSum+hs.Overflow != hs.Count {
			t.Fatalf("quiesced histogram inconsistent: buckets %d + overflow %d != count %d",
				bucketSum, hs.Overflow, hs.Count)
		}
	}
}
