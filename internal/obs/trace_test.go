package obs

import (
	"bufio"
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a clock ticking one millisecond per call.
func fixedClock() func() time.Duration {
	var n int64
	return func() time.Duration {
		n++
		return time.Duration(n) * time.Millisecond
	}
}

// TestTraceGoldenEncoding pins the exact JSONL bytes: field order
// (seq, t_us, event, then caller fields in call order), number
// formatting and string escaping are all part of the trace format that
// obsreport and external consumers parse.
func TestTraceGoldenEncoding(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTraceWithClock(&buf, fixedClock())
	tr.Emit("explore.level", Int("depth", 3), Int("frontier", 128), F64("states_per_sec", 1234.5))
	tr.Emit("note", Str("text", `he said "hi"\ and left`), Bool("ok", true), Bool("bad", false))
	tr.Emit("structured", JSON("xs", []int{1, 2, 3}), Str("ctl", "a\nb\tc"))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":1,"t_us":1000,"event":"explore.level","depth":3,"frontier":128,"states_per_sec":1234.5}
{"seq":2,"t_us":2000,"event":"note","text":"he said \"hi\"\\ and left","ok":true,"bad":false}
{"seq":3,"t_us":3000,"event":"structured","xs":[1,2,3],"ctl":"a\nb\tc"}
`
	if got := buf.String(); got != want {
		t.Errorf("golden mismatch:\ngot:  %q\nwant: %q", got, want)
	}
}

// TestTraceValidatorAcceptsOwnOutput round-trips encoder output through
// the validator.
func TestTraceValidatorAcceptsOwnOutput(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTraceWithClock(&buf, fixedClock())
	for i := 0; i < 50; i++ {
		tr.Emit("tick", Int("i", int64(i)), Str("s", "päckchen ∥ weird"))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var v Validator
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		event, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatalf("validator rejected encoder output: %v", err)
		}
		if event != "tick" {
			t.Fatalf("event = %q, want tick", event)
		}
	}
	if v.Lines() != 50 {
		t.Errorf("validated %d lines, want 50", v.Lines())
	}
}

// TestValidatorRejectsMalformedLines covers the schema failure modes.
func TestValidatorRejectsMalformedLines(t *testing.T) {
	for _, tc := range []struct {
		name string
		line string
	}{
		{"not json", `{"seq":1,`},
		{"wrong first field", `{"event":"x","seq":1,"t_us":0}`},
		{"event before t_us", `{"seq":1,"event":"x","t_us":0}`},
		{"seq gap", `{"seq":2,"t_us":0,"event":"x"}`},
		{"missing t_us", `{"seq":1,"t_us_oops":0,"event":"x"}`},
		{"empty event", `{"seq":1,"t_us":0,"event":""}`},
	} {
		var v Validator
		if _, err := v.Line([]byte(tc.line)); err == nil {
			t.Errorf("%s: validator accepted %q", tc.name, tc.line)
		}
	}
	// Decreasing t_us across lines is rejected too.
	var v Validator
	if _, err := v.Line([]byte(`{"seq":1,"t_us":100,"event":"a"}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Line([]byte(`{"seq":2,"t_us":50,"event":"b"}`)); err == nil {
		t.Error("validator accepted decreasing t_us")
	}
}

// TestTraceConcurrentEmit exercises Emit from many goroutines under
// -race; afterwards the stream must still be schema-valid with every
// line intact.
func TestTraceConcurrentEmit(t *testing.T) {
	const workers, perWorker = 8, 200
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Emit("w", Int("worker", int64(w)), Int("i", int64(i)))
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var v Validator
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		if _, err := v.Line(sc.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	if v.Lines() != workers*perWorker {
		t.Errorf("validated %d lines, want %d", v.Lines(), workers*perWorker)
	}
}

// TestTraceStickyWriteError checks that a failing sink surfaces at
// Close with the drop count, not as a panic mid-run.
func TestTraceStickyWriteError(t *testing.T) {
	tr := NewTraceWithClock(failingWriter{}, fixedClock())
	// Small buffer forced to flush: rewrap with a tiny bufio writer.
	tr.bw = bufio.NewWriterSize(failingWriter{}, 1)
	tr.Emit("a")
	tr.Emit("b")
	err := tr.Close()
	if err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Errorf("Close = %v, want sticky write error with drop count", err)
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink failed" }
