package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Trace is a structured JSONL event sink. Every event is one line
//
//	{"seq":<n>,"t_us":<µs since open>,"event":"<name>",<fields…>}
//
// with seq/t_us/event always first and in that order, followed by the
// caller's fields in call order — the encoding is deterministic given
// deterministic inputs and a fixed clock, which is what the golden test
// and the Validator below pin down. Emit is safe for concurrent use and
// buffered; the nil trace is a valid no-op sink, so engines emit
// unconditionally. Events are hand-encoded into a reused buffer: an
// Emit costs no allocations beyond amortised buffer growth (JSON-valued
// fields, which marshal eagerly, are the deliberate exception and stay
// off hot paths).
type Trace struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	c    io.Closer
	buf  []byte
	seq  int64
	now  func() time.Duration
	err  error
	drop int64
}

// NewTrace returns a trace writing to w, stamping events with the wall
// clock elapsed since this call.
func NewTrace(w io.Writer) *Trace {
	start := time.Now()
	return NewTraceWithClock(w, func() time.Duration { return time.Since(start) })
}

// NewTraceWithClock is NewTrace with an injectable elapsed-time clock;
// golden tests pin it to make encodings byte-reproducible.
func NewTraceWithClock(w io.Writer, now func() time.Duration) *Trace {
	return &Trace{bw: bufio.NewWriterSize(w, 1<<16), now: now}
}

// OpenTrace creates path and returns a trace writing to it; Close
// flushes and closes the file.
func OpenTrace(path string) (*Trace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTrace(f)
	t.c = f
	return t, nil
}

// Emit writes one event line; it is a no-op on a nil trace. Write
// errors are sticky: the first is retained for Close/Err and later
// events are dropped.
func (t *Trace) Emit(event string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		t.drop++
		return
	}
	t.seq++
	b := t.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, t.seq, 10)
	b = append(b, `,"t_us":`...)
	b = strconv.AppendInt(b, t.now().Microseconds(), 10)
	b = append(b, `,"event":`...)
	b = appendJSONString(b, event)
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSONString(b, f.Key)
		b = append(b, ':')
		b = f.appendValue(b)
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.bw.Write(b); err != nil {
		t.err = err
	}
}

// Err returns the first write error, if any.
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes the buffer and closes the underlying file (when the
// trace owns one), returning the first error seen on any event.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.c = nil
	}
	if t.err != nil {
		return fmt.Errorf("obs: trace: %w (%d events dropped)", t.err, t.drop)
	}
	return nil
}

// fieldKind discriminates Field payloads.
type fieldKind uint8

const (
	fInt fieldKind = iota
	fF64
	fStr
	fBool
	fRaw
)

// Field is one key/value pair of an event. Construct with Int, F64,
// Str, Bool or JSON.
type Field struct {
	Key  string
	kind fieldKind
	i    int64
	f    float64
	s    string
	raw  []byte
}

// Int is an integer-valued field.
func Int(key string, v int64) Field { return Field{Key: key, kind: fInt, i: v} }

// F64 is a float-valued field; non-finite values encode as null.
func F64(key string, v float64) Field { return Field{Key: key, kind: fF64, f: v} }

// Str is a string-valued field.
func Str(key string, v string) Field { return Field{Key: key, kind: fStr, s: v} }

// Bool is a boolean-valued field.
func Bool(key string, v bool) Field {
	f := Field{Key: key, kind: fBool}
	if v {
		f.i = 1
	}
	return f
}

// JSON marshals v eagerly into a raw JSON field — for structured values
// like schedules, not for hot paths. A marshal failure encodes as an
// error string so the line stays valid JSONL.
func JSON(key string, v any) Field {
	raw, err := json.Marshal(v)
	if err != nil {
		raw, _ = json.Marshal(fmt.Sprintf("<marshal error: %v>", err))
	}
	return Field{Key: key, kind: fRaw, raw: raw}
}

func (f Field) appendValue(dst []byte) []byte {
	switch f.kind {
	case fInt:
		return strconv.AppendInt(dst, f.i, 10)
	case fF64:
		if math.IsNaN(f.f) || math.IsInf(f.f, 0) {
			return append(dst, "null"...)
		}
		return strconv.AppendFloat(dst, f.f, 'g', -1, 64)
	case fStr:
		return appendJSONString(dst, f.s)
	case fBool:
		if f.i != 0 {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case fRaw:
		return append(dst, f.raw...)
	default:
		return append(dst, "null"...)
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal: quotes,
// backslashes and control characters escaped, invalid UTF-8 replaced,
// everything else passed through (JSON strings are UTF-8).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for _, r := range s {
		switch {
		case r == '"' || r == '\\':
			dst = append(dst, '\\', byte(r))
		case r == '\n':
			dst = append(dst, '\\', 'n')
		case r == '\t':
			dst = append(dst, '\\', 't')
		case r == '\r':
			dst = append(dst, '\\', 'r')
		case r < 0x20:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[r>>4], hexDigits[r&0xf])
		case r == utf8.RuneError:
			dst = append(dst, `�`...)
		default:
			dst = utf8.AppendRune(dst, r)
		}
	}
	return append(dst, '"')
}

// Validator checks a JSONL trace stream line by line against the
// encoder's schema: each line is a JSON object whose first three fields
// are exactly seq (consecutive from 1), t_us (non-decreasing) and event
// (non-empty string). cmd/obsreport and the obs-smoke CI target run
// every trace a binary produces through one of these.
type Validator struct {
	lastSeq int64
	lastTUS int64
}

// traceLineHead decodes the mandatory fields of a line.
type traceLineHead struct {
	Seq   int64  `json:"seq"`
	TUS   *int64 `json:"t_us"`
	Event string `json:"event"`
}

// Line validates one line (without its trailing newline). It returns
// the event name so summarisers can aggregate while validating.
func (v *Validator) Line(line []byte) (string, error) {
	if !json.Valid(line) {
		return "", fmt.Errorf("line %d: not valid JSON", v.lastSeq+1)
	}
	// Field order is part of the schema; the encoder always writes the
	// seq/t_us/event prefix, so the raw bytes must too.
	if !bytes.HasPrefix(line, []byte(`{"seq":`)) {
		return "", fmt.Errorf("line %d: must start with the seq field", v.lastSeq+1)
	}
	iT := bytes.Index(line, []byte(`,"t_us":`))
	iE := bytes.Index(line, []byte(`,"event":`))
	if iT < 0 || iE < 0 || iT > iE {
		return "", fmt.Errorf("line %d: fields must open with seq, t_us, event", v.lastSeq+1)
	}
	var head traceLineHead
	if err := json.Unmarshal(line, &head); err != nil {
		return "", fmt.Errorf("line %d: %w", v.lastSeq+1, err)
	}
	if head.Seq != v.lastSeq+1 {
		return "", fmt.Errorf("line %d: seq %d, want %d", v.lastSeq+1, head.Seq, v.lastSeq+1)
	}
	if head.TUS == nil || *head.TUS < v.lastTUS {
		return "", fmt.Errorf("line %d: t_us missing or decreasing", v.lastSeq+1)
	}
	if head.Event == "" {
		return "", fmt.Errorf("line %d: empty event name", v.lastSeq+1)
	}
	v.lastSeq = head.Seq
	v.lastTUS = *head.TUS
	return head.Event, nil
}

// Lines returns how many lines have been validated.
func (v *Validator) Lines() int64 { return v.lastSeq }
