package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func adminGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("transport.msgs_delivered").Add(42)
	reg.Gauge("transport.link_in_transit").Set(3)
	reg.Histogram("transport.delivery_latency", ExpBuckets(1, 2, 8)).Observe(5)

	srv, err := StartAdmin("127.0.0.1:0", AdminMux(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, text := adminGet(t, "http://"+srv.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# counters", "transport.msgs_delivered 42",
		"# gauges", "transport.link_in_transit 3",
		"# histograms", "transport.delivery_latency count=1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	code, body := adminGet(t, "http://"+srv.Addr()+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("JSON rendering does not parse: %v\n%s", err, body)
	}
	if got := snap.Counter("transport.msgs_delivered"); got != 42 {
		t.Errorf("JSON snapshot counter = %d, want 42", got)
	}

	code, _ = adminGet(t, "http://"+srv.Addr()+"/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	var nilSrv *AdminServer
	if nilSrv.Addr() != "" || nilSrv.Close() != nil {
		t.Error("nil AdminServer must be a no-op")
	}
}
