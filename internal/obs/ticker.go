package obs

import (
	"sync"
	"time"
)

// Ticker turns the one-shot metrics snapshot into a time series: at a
// fixed interval it captures the registry and emits the snapshot as a
// `metrics-snapshot` trace event, so a long-running process's trace
// carries periodic {"seq":…,"event":"metrics-snapshot","t_us":…,
// "interval_ms":…,"snapshot":{…}} lines that cmd/obsreport renders as a
// per-interval table (throughput deltas, latency quantiles).
//
// The ticker follows the package's zero-cost contract: StartTicker
// returns nil — a valid no-op whose Stop does nothing — unless both a
// registry and a trace are attached and the interval is positive, so
// callers wire it unconditionally. A running ticker costs one snapshot
// per interval and nothing on any engine hot path.
type Ticker struct {
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
	// ticks counts emitted snapshots (tests observe it via Stop).
	mu    sync.Mutex
	ticks int
}

// StartTicker begins emitting metrics-snapshot events on tr every
// interval. It returns nil (a no-op) when reg or tr is nil or the
// interval is not positive.
func StartTicker(reg *Registry, tr *Trace, every time.Duration) *Ticker {
	if reg == nil || tr == nil || every <= 0 {
		return nil
	}
	t := &Ticker{stop: make(chan struct{})}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.emit(tr, reg, every)
			}
		}
	}()
	return t
}

func (t *Ticker) emit(tr *Trace, reg *Registry, every time.Duration) {
	tr.Emit("metrics-snapshot",
		Int("interval_ms", every.Milliseconds()),
		JSON("snapshot", reg.Snapshot()))
	t.mu.Lock()
	t.ticks++
	t.mu.Unlock()
}

// Stop halts the ticker and waits for any in-flight emit to finish, so
// the caller may close the trace immediately after. It returns how many
// snapshots were emitted; the nil ticker reports zero, and repeated
// stops are no-ops (callers pair a deferred Stop with an explicit one).
func (t *Ticker) Stop() int {
	if t == nil {
		return 0
	}
	t.once.Do(func() { close(t.stop) })
	t.wg.Wait()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ticks
}
