package obs

import (
	"encoding/json"
	"io"
)

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's value at snapshot time.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Bucket is one histogram bucket: the count of observations at or below
// LE (and above the previous bucket's LE).
type Bucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is one histogram's state at snapshot time, with the
// standard quantile estimates precomputed.
type HistogramSnapshot struct {
	Name     string   `json:"name"`
	Count    int64    `json:"count"`
	Sum      int64    `json:"sum"`
	Mean     float64  `json:"mean"`
	P50      int64    `json:"p50"`
	P90      int64    `json:"p90"`
	P99      int64    `json:"p99"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow int64    `json:"overflow,omitempty"`
}

// Snapshot is a registry's full state, sorted by instrument name so the
// encoding is deterministic for deterministic runs.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value. A nil registry
// yields the zero snapshot. Concurrent writers may race individual
// reads (each value is still atomically read), so snapshots taken after
// the instrumented run finishes are exact.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		hs := HistogramSnapshot{
			Name:  name,
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
		if hs.Count > 0 {
			hs.Mean = float64(hs.Sum) / float64(hs.Count)
		}
		counts, overflow := h.snapshotBuckets()
		for i, c := range counts {
			if c != 0 {
				hs.Buckets = append(hs.Buckets, Bucket{LE: h.bounds[i], Count: c})
			}
		}
		hs.Overflow = overflow
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// Counter returns the named counter's snapshotted value (0 if absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's snapshotted value (0 if absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram snapshot and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// WriteJSON writes the snapshot as indented JSON followed by a newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}
