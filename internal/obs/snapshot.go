package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's value at snapshot time.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Bucket is one histogram bucket: the count of observations at or below
// LE (and above the previous bucket's LE).
type Bucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is one histogram's state at snapshot time, with the
// standard quantile estimates precomputed.
type HistogramSnapshot struct {
	Name     string   `json:"name"`
	Count    int64    `json:"count"`
	Sum      int64    `json:"sum"`
	Mean     float64  `json:"mean"`
	P50      int64    `json:"p50"`
	P90      int64    `json:"p90"`
	P95      int64    `json:"p95"`
	P99      int64    `json:"p99"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Overflow int64    `json:"overflow,omitempty"`
}

// Snapshot is a registry's full state, sorted by instrument name so the
// encoding is deterministic for deterministic runs.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value. A nil registry
// yields the zero snapshot. Snapshot is safe to call while instruments
// are hot — every value is read atomically, so a live scrape (the admin
// endpoint, the snapshot ticker) never tears an individual counter or
// bucket. Values written concurrently with the scrape land in this
// snapshot or the next; because instruments only grow, a histogram's
// bucket counts (read after the total) can sum to slightly more than
// Count, never less. Snapshots taken after the instrumented run
// finishes are exact.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		hs := HistogramSnapshot{
			Name:  name,
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
		if hs.Count > 0 {
			hs.Mean = float64(hs.Sum) / float64(hs.Count)
		}
		counts, overflow := h.snapshotBuckets()
		for i, c := range counts {
			if c != 0 {
				hs.Buckets = append(hs.Buckets, Bucket{LE: h.bounds[i], Count: c})
			}
		}
		hs.Overflow = overflow
		s.Histograms = append(s.Histograms, hs)
	}
	return s
}

// Counter returns the named counter's snapshotted value (0 if absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's snapshotted value (0 if absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram snapshot and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// WriteJSON writes the snapshot as indented JSON followed by a newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

// WriteText writes the snapshot in the stable line-oriented text format
// the admin endpoint's /metrics serves:
//
//	# counters
//	<name> <value>
//	# gauges
//	<name> <value>
//	# histograms
//	<name> count=<n> sum=<s> mean=<m> p50=<q> p90=<q> p95=<q> p99=<q>
//
// Sections with no instruments are omitted; names are sorted (Snapshot
// already sorts them), so the rendering is deterministic and grep- and
// diff-friendly for scrape scripts.
func (s Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if len(s.Counters) > 0 {
		fmt.Fprintln(bw, "# counters")
		for _, c := range s.Counters {
			fmt.Fprintf(bw, "%s %d\n", c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(bw, "# gauges")
		for _, g := range s.Gauges {
			fmt.Fprintf(bw, "%s %d\n", g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(bw, "# histograms")
		for _, h := range s.Histograms {
			fmt.Fprintf(bw, "%s count=%d sum=%d mean=%.1f p50=%d p90=%d p95=%d p99=%d\n",
				h.Name, h.Count, h.Sum, h.Mean, h.P50, h.P90, h.P95, h.P99)
		}
	}
	return bw.Flush()
}
