package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTickerEmitsValidatingSnapshots runs a real ticker against a hot
// registry and checks the produced trace validates and carries parseable
// metrics-snapshot events whose counter values are monotone.
func TestTickerEmitsValidatingSnapshots(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x.count")
	h := reg.Histogram("x.lat", ExpBuckets(1, 2, 10))
	var buf bytes.Buffer
	tr := NewTrace(&buf)

	tk := StartTicker(reg, tr, time.Millisecond)
	if tk == nil {
		t.Fatal("StartTicker returned nil for live inputs")
	}
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		c.Inc()
		h.Observe(int64(i % 32))
		tk.mu.Lock()
		n := tk.ticks
		tk.mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker produced fewer than 3 snapshots in 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if got := tk.Stop(); got < 3 {
		t.Fatalf("Stop reported %d ticks, want >= 3", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var v Validator
	var last int64 = -1
	snaps := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		event, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if event != "metrics-snapshot" {
			t.Fatalf("unexpected event %q", event)
		}
		var line struct {
			IntervalMS int64    `json:"interval_ms"`
			Snapshot   Snapshot `json:"snapshot"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.IntervalMS != 1 {
			t.Fatalf("interval_ms = %d, want 1", line.IntervalMS)
		}
		if got := line.Snapshot.Counter("x.count"); got < last {
			t.Fatalf("counter went backwards across snapshots: %d then %d", last, got)
		} else {
			last = got
		}
		snaps++
	}
	if snaps < 3 {
		t.Fatalf("trace carries %d snapshots, want >= 3", snaps)
	}
}

// TestTickerNoOpModes pins the zero-cost contract: any missing input
// yields a nil ticker whose Stop is a safe no-op.
func TestTickerNoOpModes(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrace(&strings.Builder{})
	for name, tk := range map[string]*Ticker{
		"nil registry": StartTicker(nil, tr, time.Millisecond),
		"nil trace":    StartTicker(reg, nil, time.Millisecond),
		"zero period":  StartTicker(reg, tr, 0),
		"nil ticker":   nil,
	} {
		if tk != nil {
			t.Errorf("%s: want nil ticker", name)
		}
		if got := tk.Stop(); got != 0 {
			t.Errorf("%s: nil Stop reported %d ticks", name, got)
		}
	}
}
