// Package obs is the repository's dependency-free tracing and metrics
// core: atomic counters, gauges, fixed-bucket histograms, and a
// structured JSONL event sink, shared by the fair-schedule runner
// (internal/sim), the model checker (internal/explore) and the swarm
// harness (internal/swarm).
//
// The design constraint is that *disabled* observability must cost
// nothing on hot paths, mirroring the AppendFingerprint discipline of
// the explorer's dedup loop. Every constructor is nil-safe: a nil
// *Registry hands out nil instruments, and every instrument method is a
// nil-receiver no-op — an engine resolves its instrument pointers once
// at start-up and then calls them unconditionally, so the disabled fast
// path is a single predictable nil check with zero allocations and zero
// atomic traffic. When enabled, counters and gauges are single atomic
// operations and histograms a binary search plus three atomics, all
// safe for concurrent use by the engines' worker pools.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil counter
// is a valid no-op instrument.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d; it is a no-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Value returns the current count; zero on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value; SetMax turns it into a
// high-water mark. The nil gauge is a valid no-op instrument.
type Gauge struct{ v atomic.Int64 }

// Set stores v; it is a no-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v exceeds the current value (a
// lock-free high-water mark); it is a no-op on a nil gauge.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value; zero on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named set of instruments. Lookups are idempotent: the
// first request for a name creates the instrument, later requests (from
// any goroutine) return the same one. The nil registry hands out nil
// instruments, which is the whole disabled mode — engines never branch
// on "is observability on", they just use what the registry gave them.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use; nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use; later lookups return the existing
// histogram regardless of bounds. Nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
