package obs

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// The admin endpoint is the live window into a running registry: where
// -metrics renders one snapshot at exit, the admin mux serves
// Registry.Snapshot() on demand, so a long-running server under heavy
// load can be scraped mid-flight. Everything here is stdlib-only and
// costs nothing unless a caller actually builds and starts it — the
// serving hot paths never see the admin plane, they share only the
// atomic instruments, which Snapshot reads without tearing.
//
// Handlers must not resolve registry handles per request (the
// obsdiscipline analyzer flags reg.Counter/Gauge/Histogram inside HTTP
// handlers): they read whole snapshots, or handles resolved at mux
// construction.

// AdminMux returns a mux serving the standard admin surface:
//
//	/metrics             stable text rendering of Registry.Snapshot()
//	/metrics?format=json the JSON rendering (Snapshot.WriteJSON)
//	/debug/pprof/...     the stdlib profiler endpoints
//
// Callers register their own process-specific handlers (e.g. /healthz,
// /sessions) on the returned mux before starting the server.
func AdminMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := snap.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := snap.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminServer is a background HTTP server bound to the admin mux.
type AdminServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	err  error
	once sync.Once
}

// StartAdmin binds addr (port 0 picks an ephemeral port) and serves h
// in the background. The returned server reports its bound address via
// Addr; Close shuts the listener down and waits for the serve loop.
func StartAdmin(addr string, h http.Handler) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen: %w", err)
	}
	a := &AdminServer{ln: ln, srv: &http.Server{Handler: h}, done: make(chan struct{})}
	go func() {
		defer close(a.done)
		if err := a.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			a.err = err
		}
	}()
	return a, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43671".
func (a *AdminServer) Addr() string {
	if a == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close stops accepting, closes the listener and waits for the serve
// loop to exit; it is idempotent. The nil server is a valid no-op.
func (a *AdminServer) Close() error {
	if a == nil {
		return nil
	}
	a.once.Do(func() {
		a.srv.Close()
		<-a.done
	})
	return a.err
}
