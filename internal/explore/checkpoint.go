package explore

import (
	"bufio"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/ioa"
)

// This file is the explorer's non-volatile memory. Theorem 7.5 says no
// data link protocol tolerates host crashes without non-volatile state;
// the model checker itself is no different — a multi-hour exhaustive
// search killed by OOM, SIGINT or a power cut used to lose everything.
// A checkpoint is a durable snapshot of the BFS taken at a level
// barrier: the current frontier (as per-node schedules, replayable
// through the deterministic Step/monitor machinery), the seen-set (hash
// seed + admitted fingerprints, or full keys in exact mode), and the
// cumulative counters. Because levels are barriers, the snapshot is a
// *complete* cut of the search: resuming from it and running to the end
// yields the same Result the uninterrupted run would have produced
// (identical StatesExplored, DepthReached, Exhausted/DepthLimited, and
// — for sequential searches — the identical violation trace; see
// DESIGN.md on the level-barrier resume invariant).
//
// On-disk format (version 1): a JSONL file of
//
//	header   {"magic":"dl-explore-checkpoint","version":1,"config":...}
//	nodes    {"n":[<action>,...]}          one line per frontier node
//	seen     {"h":"<base64 u64le...>"}     hashed mode, chunked
//	         {"k":["<base64 key>",...]}    exact mode, chunked
//	footer   {"end":<line count>,"crc":"<crc32c-hex of all prior bytes>"}
//
// written atomically (tmp + rename). The decoder is strict: wrong magic
// or version, a malformed or missing line, a line-count or checksum
// mismatch all error — a corrupt checkpoint must never silently
// misresume (the fuzz target pins "error, never panic"). The file
// contains no wall-clock timestamps: resumable state is deterministic,
// timing lives in obs events only.

// CheckpointMagic identifies explorer checkpoint files.
const CheckpointMagic = "dl-explore-checkpoint"

// CheckpointVersion is the current format version; decoders reject
// anything else.
const CheckpointVersion = 1

// ErrCheckpointFormat reports a structurally invalid checkpoint file.
var ErrCheckpointFormat = errors.New("explore: invalid checkpoint")

// ErrCheckpointMismatch reports a checkpoint taken under a different
// search configuration than the one resuming from it.
var ErrCheckpointMismatch = errors.New("explore: checkpoint was taken under a different configuration")

// CheckpointOptions configures periodic durable snapshots of a search.
type CheckpointOptions struct {
	// Path is the checkpoint file; empty disables checkpointing.
	Path string
	// EveryLevels writes a checkpoint every N completed BFS levels
	// (0: no level-based cadence).
	EveryLevels int
	// Every writes a checkpoint when at least this much wall time has
	// passed since the previous one, checked at level barriers (0: no
	// time-based cadence). The cadence clock never enters the file.
	Every time.Duration
	// A graceful stop (Config.Stop) always writes a final checkpoint
	// regardless of cadence, as does the very first barrier when any
	// cadence is configured.
}

// enabled reports whether any checkpointing is requested.
func (o CheckpointOptions) enabled() bool { return o.Path != "" }

// Checkpoint is the decoded in-memory form of a checkpoint file.
type Checkpoint struct {
	// ConfigDigest fingerprints the search configuration (inputs, bounds,
	// monitor, system start state); Resume validates it.
	ConfigDigest string
	// Level is the depth of the stored frontier nodes (meaningful when
	// Frontier is non-empty).
	Level int
	// DepthReached is Result.DepthReached at the snapshot barrier.
	DepthReached int
	// States is the cumulative distinct-state count (Result.StatesExplored
	// continues from here).
	States int64
	// Truncated records whether the state budget had already been hit.
	Truncated bool
	// Exact records the dedup mode; it must match Config.ExactDedup.
	Exact bool
	// HashSeed is the hashed seen-set's seed (hashed mode only): the
	// resumed search must map keys to the same fingerprints.
	HashSeed uint64
	// Frontier holds one schedule per frontier node, in frontier order;
	// resume replays each through the deterministic step machinery.
	Frontier []ioa.Schedule
	// SeenHashes (hashed mode) / SeenKeys (exact mode) are the admitted
	// dedup entries, sorted.
	SeenHashes []uint64
	SeenKeys   []string
}

// wire types of the JSONL lines.
type ckptHeader struct {
	Magic        string `json:"magic"`
	Version      int    `json:"version"`
	Config       string `json:"config"`
	Level        int    `json:"level"`
	DepthReached int    `json:"depth_reached"`
	States       int64  `json:"states"`
	Truncated    bool   `json:"truncated"`
	Exact        bool   `json:"exact"`
	Seed         string `json:"seed,omitempty"`
	Nodes        int    `json:"nodes"`
	SeenLines    int    `json:"seen_lines"`
}

type ckptNodeLine struct {
	N *ioa.Schedule `json:"n"`
}

type ckptSeenLine struct {
	H string   `json:"h,omitempty"`
	K []string `json:"k,omitempty"`
}

type ckptFooter struct {
	End *int   `json:"end"`
	CRC string `json:"crc"`
}

// Chunk sizes keep individual JSONL lines comfortably under the
// decoder's buffer while amortising per-line overhead.
const (
	ckptHashesPerLine = 4096
	ckptKeysPerLine   = 64
)

// seenLineCount returns how many seen lines the checkpoint encodes to.
func (c *Checkpoint) seenLineCount() int {
	if c.Exact {
		return (len(c.SeenKeys) + ckptKeysPerLine - 1) / ckptKeysPerLine
	}
	return (len(c.SeenHashes) + ckptHashesPerLine - 1) / ckptHashesPerLine
}

// EncodeCheckpoint writes the versioned JSONL encoding of c to w,
// checksummed with a trailing footer line.
func EncodeCheckpoint(w io.Writer, c *Checkpoint) error {
	crc := crc32.NewIEEE()
	body := io.MultiWriter(w, crc)
	writeLine := func(v any) error {
		blob, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = body.Write(append(blob, '\n'))
		return err
	}
	head := ckptHeader{
		Magic:        CheckpointMagic,
		Version:      CheckpointVersion,
		Config:       c.ConfigDigest,
		Level:        c.Level,
		DepthReached: c.DepthReached,
		States:       c.States,
		Truncated:    c.Truncated,
		Exact:        c.Exact,
		Nodes:        len(c.Frontier),
		SeenLines:    c.seenLineCount(),
	}
	if !c.Exact {
		head.Seed = strconv.FormatUint(c.HashSeed, 16)
	}
	if err := writeLine(head); err != nil {
		return err
	}
	// Node lines dominate the encode — one per frontier node, each a full
	// schedule — while drawing on a tiny action alphabet, so each distinct
	// action's wire form is marshalled once and the lines are assembled in
	// a reused buffer. The concatenation is byte-identical to marshalling
	// ckptNodeLine{N: &schedule}: `{"n":[a,…]}` with `null` for a nil
	// schedule, exactly encoding/json's output for a *[]Action field.
	actionWire := make(map[ioa.Action][]byte)
	line := make([]byte, 0, 1<<12)
	for i := range c.Frontier {
		if c.Frontier[i] == nil {
			line = append(line[:0], `{"n":null}`+"\n"...)
		} else {
			line = append(line[:0], `{"n":[`...)
			for j, a := range c.Frontier[i] {
				wire, ok := actionWire[a]
				if !ok {
					var err error
					wire, err = json.Marshal(a)
					if err != nil {
						return err
					}
					actionWire[a] = wire
				}
				if j > 0 {
					line = append(line, ',')
				}
				line = append(line, wire...)
			}
			line = append(line, "]}\n"...)
		}
		if _, err := body.Write(line); err != nil {
			return err
		}
	}
	if c.Exact {
		for i := 0; i < len(c.SeenKeys); i += ckptKeysPerLine {
			end := min(i+ckptKeysPerLine, len(c.SeenKeys))
			enc := make([]string, 0, end-i)
			for _, k := range c.SeenKeys[i:end] {
				enc = append(enc, base64.StdEncoding.EncodeToString([]byte(k)))
			}
			if err := writeLine(ckptSeenLine{K: enc}); err != nil {
				return err
			}
		}
	} else {
		buf := make([]byte, 0, ckptHashesPerLine*8)
		for i := 0; i < len(c.SeenHashes); i += ckptHashesPerLine {
			end := min(i+ckptHashesPerLine, len(c.SeenHashes))
			buf = buf[:0]
			for _, h := range c.SeenHashes[i:end] {
				buf = binary.LittleEndian.AppendUint64(buf, h)
			}
			if err := writeLine(ckptSeenLine{H: base64.StdEncoding.EncodeToString(buf)}); err != nil {
				return err
			}
		}
	}
	lines := 1 + len(c.Frontier) + head.SeenLines
	foot := ckptFooter{End: &lines, CRC: fmt.Sprintf("%08x", crc.Sum32())}
	blob, err := json.Marshal(foot)
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

// DecodeCheckpoint reads and validates one checkpoint stream. Every
// structural deviation — bad magic, unknown version, malformed line,
// wrong line count, checksum mismatch, trailing data — is an error
// wrapping ErrCheckpointFormat; the decoder never panics on corrupt or
// truncated input.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<23)
	crc := crc32.NewIEEE()
	lineNo := 0
	nextLine := func() ([]byte, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCheckpointFormat, err)
			}
			return nil, fmt.Errorf("%w: truncated after %d lines", ErrCheckpointFormat, lineNo)
		}
		lineNo++
		line := sc.Bytes()
		crc.Write(line)
		crc.Write([]byte{'\n'})
		return line, nil
	}
	strict := func(line []byte, v any) error {
		dec := json.NewDecoder(bytesReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return fmt.Errorf("%w: line %d: %v", ErrCheckpointFormat, lineNo, err)
		}
		return nil
	}

	line, err := nextLine()
	if err != nil {
		return nil, err
	}
	var head ckptHeader
	if err := strict(line, &head); err != nil {
		return nil, err
	}
	if head.Magic != CheckpointMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrCheckpointFormat, head.Magic)
	}
	if head.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads version %d)",
			ErrCheckpointFormat, head.Version, CheckpointVersion)
	}
	if head.Nodes < 0 || head.SeenLines < 0 || head.States < 0 {
		return nil, fmt.Errorf("%w: negative count in header", ErrCheckpointFormat)
	}
	c := &Checkpoint{
		ConfigDigest: head.Config,
		Level:        head.Level,
		DepthReached: head.DepthReached,
		States:       head.States,
		Truncated:    head.Truncated,
		Exact:        head.Exact,
	}
	if !head.Exact {
		seed, err := strconv.ParseUint(head.Seed, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad seed %q", ErrCheckpointFormat, head.Seed)
		}
		c.HashSeed = seed
	}
	c.Frontier = make([]ioa.Schedule, 0, min(head.Nodes, 1<<12))
	for i := 0; i < head.Nodes; i++ {
		line, err := nextLine()
		if err != nil {
			return nil, err
		}
		var nl ckptNodeLine
		if err := strict(line, &nl); err != nil {
			return nil, err
		}
		if nl.N == nil {
			return nil, fmt.Errorf("%w: line %d: not a node line", ErrCheckpointFormat, lineNo)
		}
		c.Frontier = append(c.Frontier, *nl.N)
	}
	for i := 0; i < head.SeenLines; i++ {
		line, err := nextLine()
		if err != nil {
			return nil, err
		}
		var sl ckptSeenLine
		if err := strict(line, &sl); err != nil {
			return nil, err
		}
		switch {
		case head.Exact && sl.K != nil && sl.H == "":
			for _, enc := range sl.K {
				key, err := base64.StdEncoding.DecodeString(enc)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrCheckpointFormat, lineNo, err)
				}
				c.SeenKeys = append(c.SeenKeys, string(key))
			}
		case !head.Exact && sl.H != "" && sl.K == nil:
			blob, err := base64.StdEncoding.DecodeString(sl.H)
			if err != nil || len(blob)%8 != 0 {
				return nil, fmt.Errorf("%w: line %d: bad hash chunk", ErrCheckpointFormat, lineNo)
			}
			for ; len(blob) >= 8; blob = blob[8:] {
				c.SeenHashes = append(c.SeenHashes, binary.LittleEndian.Uint64(blob))
			}
		default:
			return nil, fmt.Errorf("%w: line %d: not a seen line for this mode", ErrCheckpointFormat, lineNo)
		}
	}

	// The footer is checksummed over everything before it.
	sum := crc.Sum32()
	bodyLines := lineNo
	line, err = nextLine()
	if err != nil {
		return nil, err
	}
	var foot ckptFooter
	if err := strict(line, &foot); err != nil {
		return nil, err
	}
	if foot.End == nil || *foot.End != bodyLines {
		return nil, fmt.Errorf("%w: footer line count mismatch", ErrCheckpointFormat)
	}
	if foot.CRC != fmt.Sprintf("%08x", sum) {
		return nil, fmt.Errorf("%w: checksum mismatch (file corrupt?)", ErrCheckpointFormat)
	}
	if sc.Scan() {
		return nil, fmt.Errorf("%w: data after footer", ErrCheckpointFormat)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointFormat, err)
	}
	return c, nil
}

// bytesReader avoids importing bytes for one call site.
func bytesReader(b []byte) io.Reader { return &byteSliceReader{b: b} }

type byteSliceReader struct{ b []byte }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// WriteCheckpoint atomically writes c to path: encode to path+".tmp",
// sync, then rename over path — a crash mid-write leaves the previous
// checkpoint intact. It returns the encoded size in bytes.
func WriteCheckpoint(path string, c *Checkpoint) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: bufio.NewWriterSize(f, 1<<20)}
	if err := EncodeCheckpoint(cw, c); err == nil {
		err = cw.w.(*bufio.Writer).Flush()
		if err == nil {
			err = f.Sync()
		}
	} else {
		defer os.Remove(tmp)
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReadCheckpoint opens, decodes and validates the checkpoint at path.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeCheckpoint(bufio.NewReaderSize(f, 1<<20))
}

// ---- search integration ----

// configDigestSeed is the fixed hash64 seed for configuration digests
// (fixed so the digest is stable across processes, which is the point).
const configDigestSeed = 0xd1c4_c0de_0000_0001

// configDigest fingerprints everything that determines the search's
// future from a frontier cut: the input pool, the bounds, the dedup
// mode, the monitor's start state and the system's start state (which
// covers the protocol, parameters and channel variant through the dedup
// key). Two searches with equal digests expand equal frontiers equally.
func (s *search) configDigest(start *node) (string, error) {
	key, err := s.appendDedupKey(nil, start.state, start.monitor, start.used, -1, nil)
	if err != nil {
		return "", err
	}
	buf := key
	buf = append(buf, "|cfg|"...)
	for _, in := range s.cfg.Inputs {
		buf = append(buf, in.String()...)
		buf = append(buf, ';')
	}
	buf = strconv.AppendInt(buf, int64(s.maxDepth), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, s.maxStates, 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(s.cfg.MaxInTransit), 10)
	buf = append(buf, '|')
	buf = strconv.AppendBool(buf, s.cfg.AllowLoss)
	buf = append(buf, '|')
	buf = strconv.AppendBool(buf, s.cfg.ExactDedup)
	// Reductions change what the seen-set keys (symmetry) and which
	// transitions are expanded (POR), so a checkpoint is only resumable
	// under the same EFFECTIVE switches. Using s.sym (not cfg.Symmetry)
	// means a requested-but-inert symmetry flag — non-opaque protocol,
	// duplicate pool tokens — matches the unreduced digest it actually
	// ran as.
	buf = append(buf, '|')
	buf = strconv.AppendBool(buf, s.sym)
	buf = append(buf, '|')
	buf = strconv.AppendBool(buf, s.por)
	return fmt.Sprintf("%016x", hash64(configDigestSeed, buf)), nil
}

// snapshot captures the search at a level barrier: the frontier as
// per-node schedules plus the dedup set and cumulative counters. The
// frontier representation (classic or arena) and the seen-set
// representation (in-memory or spilled) both disappear here — the
// checkpoint bytes are identical across all four combinations, which is
// what keeps checkpoints resumable under a different representation than
// they were taken under.
func (s *search) snapshot(lvl levelRef, depthReached int) (*Checkpoint, error) {
	c := &Checkpoint{
		ConfigDigest: s.digest,
		DepthReached: depthReached,
		States:       s.count.Load(),
		Truncated:    s.truncated.Load(),
		Exact:        s.cfg.ExactDedup,
	}
	if lvl.size() > 0 {
		c.Level = lvl.depth()
	} else {
		c.Level = depthReached
	}
	// Pack every frontier schedule into one shared arena: snapshotting a
	// 10k-node frontier otherwise allocates 10k short-lived slices per
	// barrier, and that garbage — not the encode — dominated checkpoint
	// overhead. Growth past the estimate leaves earlier entries on the
	// old backing array, which stays correct.
	c.Frontier = make([]ioa.Schedule, lvl.size())
	flat := make(ioa.Schedule, 0, lvl.size()*(c.Level+1))
	for i := range c.Frontier {
		start := len(flat)
		flat = lvl.appendSchedule(flat, i)
		c.Frontier[i] = flat[start:len(flat):len(flat)]
	}
	switch set := s.seen.(type) {
	case *hashedSeen:
		c.HashSeed = set.hashSeed()
		c.SeenHashes = set.hashes()
	case *spilledSeen:
		c.HashSeed = set.hashSeed()
		hashes, err := set.mergedHashes()
		if err != nil {
			return nil, fmt.Errorf("explore: snapshotting spilled seen-set: %w", err)
		}
		c.SeenHashes = hashes
	case *exactSeen:
		c.SeenKeys = set.keys()
	default:
		return nil, fmt.Errorf("explore: seen-set %T does not support checkpointing", s.seen)
	}
	return c, nil
}

// restore rebuilds the search from a decoded checkpoint: validates the
// configuration digest, repopulates the seen-set and counters, and
// replays each frontier schedule through the deterministic step
// machinery to reconstruct the frontier nodes (states, monitors,
// used-input masks and the parent chains violation traces are built
// from).
func (s *search) restore(c *Checkpoint) ([]*node, error) {
	if c.ConfigDigest != s.digest {
		return nil, fmt.Errorf("%w: digest %s, this search is %s",
			ErrCheckpointMismatch, c.ConfigDigest, s.digest)
	}
	if c.Exact != s.cfg.ExactDedup {
		return nil, fmt.Errorf("%w: dedup mode differs", ErrCheckpointMismatch)
	}
	switch {
	case c.Exact:
		set := newExactSeen()
		for _, k := range c.SeenKeys {
			set.Add([]byte(k))
		}
		s.seen = set
	case s.cfg.SpillDir != "":
		// The spill set must hash with the checkpoint's seed, so the one
		// BFS pre-built (random seed, still empty, no run files) is
		// discarded for a reseeded replacement.
		if old, ok := s.seen.(*spilledSeen); ok {
			old.close()
		}
		set := newSpilledSeen(c.HashSeed, s.cfg.SpillDir, s.cfg.SpillThreshold)
		for _, h := range c.SeenHashes {
			set.addSum(h)
		}
		if err := set.Err(); err != nil {
			return nil, fmt.Errorf("explore: restoring spilled seen-set: %w", err)
		}
		s.seen = set
	default:
		set := newHashedSeenSeeded(c.HashSeed)
		if s.cfg.Checkpoint.enabled() {
			set.trackRuns()
		}
		for _, h := range c.SeenHashes {
			set.addSum(h)
		}
		s.seen = set
	}
	s.count.Store(c.States)
	s.truncated.Store(c.Truncated)
	frontier := make([]*node, len(c.Frontier))
	for i := range c.Frontier {
		n, err := s.replaySchedule(c.Frontier[i])
		if err != nil {
			return nil, err
		}
		frontier[i] = n
	}
	return frontier, nil
}

// replaySchedule reconstructs one frontier node by stepping the recorded
// schedule from the start state. Packet IDs were canonicalised before
// recording, so actions apply verbatim; monitor steps mirror expand's.
func (s *search) replaySchedule(tr ioa.Schedule) (*node, error) {
	n := &node{
		state:   s.sys.Comp.Start(),
		monitor: s.cfg.Monitor,
		used:    make([]bool, len(s.cfg.Inputs)),
	}
	for _, a := range tr {
		st, err := s.sys.Comp.Step(n.state, a)
		if err != nil {
			return nil, fmt.Errorf("explore: checkpoint replay of %s: %w", a, err)
		}
		mon := n.monitor
		if s.extSig.ContainsExternal(a) {
			mon, _ = mon.Step(a)
		}
		used := n.used
		if idx := s.poolIndex(n.used, a); idx >= 0 {
			used = append([]bool(nil), n.used...)
			used[idx] = true
		}
		n = &node{state: st, monitor: mon, used: used, depth: n.depth + 1, parent: n, action: a}
	}
	return n, nil
}

// poolIndex returns the pool input index expand would have charged for
// injecting a — the first unused instance of the action whose earlier
// duplicates are all used — or -1 when a is locally controlled. This
// mirrors expand's eligibility rule exactly; environment inputs (wake,
// send_msg, crash) are never locally controlled in a composed data link
// system, so the dichotomy is unambiguous.
func (s *search) poolIndex(used []bool, a ioa.Action) int {
	for i, in := range s.cfg.Inputs {
		if used[i] || in != a {
			continue
		}
		eligible := true
		for j := s.dupOf[i]; j >= 0; j = s.dupOf[j] {
			if !used[j] {
				eligible = false
				break
			}
		}
		if eligible {
			return i
		}
	}
	return -1
}

// checkpointer tracks cadence state and performs barrier writes.
type checkpointer struct {
	s         *search
	opts      CheckpointOptions
	sinceLast int       // completed levels since the last write
	lastWrite time.Time // cadence clock only; never serialized
	wrote     bool
}

func newCheckpointer(s *search, opts CheckpointOptions) *checkpointer {
	// lint:ignore determinism checkpoint cadence clock only; never reaches Result or the file
	return &checkpointer{s: s, opts: opts, lastWrite: time.Now()}
}

// maybeWrite runs at each level barrier and writes when the cadence is
// due; final forces a write (the graceful-stop path). Failures surface
// as search errors: a user who asked for durability must notice losing
// it.
func (c *checkpointer) maybeWrite(lvl levelRef, depthReached int, final bool) error {
	if !c.opts.enabled() {
		return nil
	}
	c.sinceLast++
	due := final
	if c.opts.EveryLevels > 0 && c.sinceLast >= c.opts.EveryLevels {
		due = true
	}
	// lint:ignore determinism checkpoint cadence clock only; never reaches Result or the file
	if c.opts.Every > 0 && time.Since(c.lastWrite) >= c.opts.Every {
		due = true
	}
	if !due {
		return nil
	}
	// lint:ignore determinism obs-only duration for the checkpoint event
	began := time.Now()
	snap, err := c.s.snapshot(lvl, depthReached)
	if err != nil {
		return err
	}
	bytes, err := WriteCheckpoint(c.opts.Path, snap)
	if err != nil {
		return fmt.Errorf("explore: writing checkpoint: %w", err)
	}
	c.sinceLast = 0
	// lint:ignore determinism checkpoint cadence clock only; never reaches Result or the file
	c.lastWrite = time.Now()
	c.wrote = true
	// lint:ignore determinism obs-only duration for the checkpoint event
	c.s.observeCheckpoint(snap.Level, len(snap.Frontier), c.s.seen.Len(), bytes, time.Since(began))
	return nil
}
