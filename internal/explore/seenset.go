package explore

import (
	"crypto/rand"
	"encoding/binary"
	"sort"
	"sync"
)

// The explorer dedups up to millions of states; the seen-set is its main
// memory consumer and, under parallel BFS, its main contention point. Both
// implementations below are mutex-striped across seenShards shards chosen
// by the key's 64-bit hash, so concurrent workers rarely collide on a
// lock, and both accept transient []byte keys so callers can build keys in
// a reused buffer.
//
// hashedSeen stores only the 64-bit hash of each key (8 bytes per state
// plus map overhead, versus the full key string — typically hundreds of
// bytes — kept by exactSeen). Dedup by hash can, in principle, merge two
// distinct states on a hash collision; with a per-search random seed and
// n states the probability of any collision is about n²/2⁶⁵ (≈ 3·10⁻⁸ for
// the default 2²⁰-state budget), and a collision can only cause a missed
// state, never a false violation — traces are re-validated by the monitor
// on the path that reaches them. Config.ExactDedup selects exactSeen for
// collision-paranoid runs.
//
// The hash is a seeded multiply-xor mix (hash64 below) rather than
// hash/maphash: maphash's seed is deliberately opaque and cannot be
// persisted, but checkpoint files (checkpoint.go) must carry the seed and
// the admitted fingerprints so a resumed search maps every key to exactly
// the fingerprint the interrupted run did.

const seenShards = 16

// seenSet is a concurrency-safe dedup set over transient byte-slice keys.
type seenSet interface {
	// Add inserts key, reporting whether it was absent; key is not retained.
	Add(key []byte) bool
	// Len returns the number of distinct keys added.
	Len() int
	// ApproxBytes estimates the heap bytes held per entry by the set.
	ApproxBytes() int64
	// ShardLens returns the per-shard entry counts: the occupancy figures
	// the observability layer exports, since shard skew is what would
	// turn the striped locks back into a contention point.
	ShardLens() []int
}

// randomSeed draws a fresh 64-bit hash seed. crypto/rand (not the global
// math/rand source the determinism analyzer forbids) never fails on
// supported platforms; the fixed fallback keeps the search usable — only
// collision resistance against pathological key sets, not correctness,
// depends on the seed being unpredictable.
func randomSeed() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0x9e3779b97f4a7c15
	}
	return binary.LittleEndian.Uint64(b[:])
}

// hash64 is the seeded 64-bit key hash shared by both seen-sets: 8-byte
// little-endian lanes folded through the splitmix64 finalizer, with the
// length and the tail mixed in so prefixes and zero-padded keys cannot
// alias. Unlike hash/maphash the (seed, key) → hash mapping is a pure
// function of its arguments, so it survives a checkpoint/restart.
func hash64(seed uint64, key []byte) uint64 {
	h := seed ^ mix64(uint64(len(key)))
	for ; len(key) >= 8; key = key[8:] {
		h = mix64(h ^ binary.LittleEndian.Uint64(key))
	}
	if len(key) > 0 {
		var tail uint64
		for i := len(key) - 1; i >= 0; i-- {
			tail = tail<<8 | uint64(key[i])
		}
		h = mix64(h ^ tail)
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashedSeen dedups on 64-bit hash64 fingerprints.
type hashedSeen struct {
	seed   uint64
	shards [seenShards]struct {
		mu sync.Mutex
		m  map[uint64]struct{}
		// pad the shard to its own cache line so neighbouring locks do not
		// false-share under contention.
		_ [40]byte
	}
}

func newHashedSeen() *hashedSeen { return newHashedSeenSeeded(randomSeed()) }

// newHashedSeenSeeded builds the set with an explicit hash seed: the
// restore path, where the checkpoint dictates the seed.
func newHashedSeenSeeded(seed uint64) *hashedSeen {
	h := &hashedSeen{seed: seed}
	for i := range h.shards {
		h.shards[i].m = make(map[uint64]struct{})
	}
	return h
}

func (h *hashedSeen) Add(key []byte) bool {
	return h.addSum(hash64(h.seed, key))
}

// addSum inserts a precomputed fingerprint; the checkpoint restore path
// feeds persisted fingerprints straight back in.
func (h *hashedSeen) addSum(sum uint64) bool {
	sh := &h.shards[sum>>(64-4)]
	sh.mu.Lock()
	_, dup := sh.m[sum]
	if !dup {
		sh.m[sum] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

// hashSeed exposes the seed for checkpointing.
func (h *hashedSeen) hashSeed() uint64 { return h.seed }

// hashes returns every admitted fingerprint in ascending order. The set
// is order-independent, and sorting makes the checkpoint encoding
// byte-deterministic for a given search state.
func (h *hashedSeen) hashes() []uint64 {
	out := make([]uint64, 0, h.Len())
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for sum := range sh.m {
			out = append(out, sum) // lint:ignore determinism set members; sorted below before any output
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (h *hashedSeen) Len() int {
	n := 0
	for i := range h.shards {
		h.shards[i].mu.Lock()
		n += len(h.shards[i].m)
		h.shards[i].mu.Unlock()
	}
	return n
}

func (h *hashedSeen) ShardLens() []int {
	out := make([]int, seenShards)
	for i := range h.shards {
		h.shards[i].mu.Lock()
		out[i] = len(h.shards[i].m)
		h.shards[i].mu.Unlock()
	}
	return out
}

// hashedEntryBytes estimates a map[uint64]struct{} entry: 8 key bytes plus
// roughly as much again in bucket overhead and load-factor slack.
const hashedEntryBytes = 16

func (h *hashedSeen) ApproxBytes() int64 { return int64(h.Len()) * hashedEntryBytes }

// exactSeen dedups on full key strings: the Config.ExactDedup escape
// hatch, immune to hash collisions at ~key-length bytes per state.
type exactSeen struct {
	seed   uint64
	shards [seenShards]struct {
		mu    sync.Mutex
		m     map[string]struct{}
		bytes int64
		_     [32]byte
	}
}

// exactEntryOverhead estimates the per-entry cost beyond the key bytes:
// the string header plus map bucket overhead.
const exactEntryOverhead = 48

func newExactSeen() *exactSeen {
	e := &exactSeen{seed: randomSeed()}
	for i := range e.shards {
		e.shards[i].m = make(map[string]struct{})
	}
	return e
}

func (e *exactSeen) Add(key []byte) bool {
	sum := hash64(e.seed, key)
	sh := &e.shards[sum>>(64-4)]
	sh.mu.Lock()
	// The map lookup with a string(key) conversion does not allocate; the
	// key is only materialized when it is genuinely new.
	_, dup := sh.m[string(key)]
	if !dup {
		k := string(key)
		sh.m[k] = struct{}{}
		sh.bytes += int64(len(k)) + exactEntryOverhead
	}
	sh.mu.Unlock()
	return !dup
}

// keys returns every admitted key in ascending order — the exact-mode
// checkpoint payload (membership is by full key, so the shard seed need
// not be persisted).
func (e *exactSeen) keys() []string {
	out := make([]string, 0, e.Len())
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			out = append(out, k) // lint:ignore determinism set members; sorted below before any output
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

func (e *exactSeen) Len() int {
	n := 0
	for i := range e.shards {
		e.shards[i].mu.Lock()
		n += len(e.shards[i].m)
		e.shards[i].mu.Unlock()
	}
	return n
}

func (e *exactSeen) ShardLens() []int {
	out := make([]int, seenShards)
	for i := range e.shards {
		e.shards[i].mu.Lock()
		out[i] = len(e.shards[i].m)
		e.shards[i].mu.Unlock()
	}
	return out
}

func (e *exactSeen) ApproxBytes() int64 {
	var b int64
	for i := range e.shards {
		e.shards[i].mu.Lock()
		b += e.shards[i].bytes
		e.shards[i].mu.Unlock()
	}
	return b
}
