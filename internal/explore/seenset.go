package explore

import (
	"hash/maphash"
	"sync"
)

// The explorer dedups up to millions of states; the seen-set is its main
// memory consumer and, under parallel BFS, its main contention point. Both
// implementations below are mutex-striped across seenShards shards chosen
// by the key's 64-bit maphash, so concurrent workers rarely collide on a
// lock, and both accept transient []byte keys so callers can build keys in
// a reused buffer.
//
// hashedSeen stores only the 64-bit hash of each key (8 bytes per state
// plus map overhead, versus the full key string — typically hundreds of
// bytes — kept by exactSeen). Dedup by hash can, in principle, merge two
// distinct states on a hash collision; with a per-search random seed and
// n states the probability of any collision is about n²/2⁶⁵ (≈ 3·10⁻⁸ for
// the default 2²⁰-state budget), and a collision can only cause a missed
// state, never a false violation — traces are re-validated by the monitor
// on the path that reaches them. Config.ExactDedup selects exactSeen for
// collision-paranoid runs.

const seenShards = 16

// seenSet is a concurrency-safe dedup set over transient byte-slice keys.
type seenSet interface {
	// Add inserts key, reporting whether it was absent; key is not retained.
	Add(key []byte) bool
	// Len returns the number of distinct keys added.
	Len() int
	// ApproxBytes estimates the heap bytes held per entry by the set.
	ApproxBytes() int64
	// ShardLens returns the per-shard entry counts: the occupancy figures
	// the observability layer exports, since shard skew is what would
	// turn the striped locks back into a contention point.
	ShardLens() []int
}

// hashedSeen dedups on 64-bit maphash fingerprints.
type hashedSeen struct {
	seed   maphash.Seed
	shards [seenShards]struct {
		mu sync.Mutex
		m  map[uint64]struct{}
		// pad the shard to its own cache line so neighbouring locks do not
		// false-share under contention.
		_ [40]byte
	}
}

func newHashedSeen() *hashedSeen {
	h := &hashedSeen{seed: maphash.MakeSeed()}
	for i := range h.shards {
		h.shards[i].m = make(map[uint64]struct{})
	}
	return h
}

func (h *hashedSeen) Add(key []byte) bool {
	sum := maphash.Bytes(h.seed, key)
	sh := &h.shards[sum>>(64-4)]
	sh.mu.Lock()
	_, dup := sh.m[sum]
	if !dup {
		sh.m[sum] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

func (h *hashedSeen) Len() int {
	n := 0
	for i := range h.shards {
		h.shards[i].mu.Lock()
		n += len(h.shards[i].m)
		h.shards[i].mu.Unlock()
	}
	return n
}

func (h *hashedSeen) ShardLens() []int {
	out := make([]int, seenShards)
	for i := range h.shards {
		h.shards[i].mu.Lock()
		out[i] = len(h.shards[i].m)
		h.shards[i].mu.Unlock()
	}
	return out
}

// hashedEntryBytes estimates a map[uint64]struct{} entry: 8 key bytes plus
// roughly as much again in bucket overhead and load-factor slack.
const hashedEntryBytes = 16

func (h *hashedSeen) ApproxBytes() int64 { return int64(h.Len()) * hashedEntryBytes }

// exactSeen dedups on full key strings: the Config.ExactDedup escape
// hatch, immune to hash collisions at ~key-length bytes per state.
type exactSeen struct {
	seed   maphash.Seed
	shards [seenShards]struct {
		mu    sync.Mutex
		m     map[string]struct{}
		bytes int64
		_     [32]byte
	}
}

// exactEntryOverhead estimates the per-entry cost beyond the key bytes:
// the string header plus map bucket overhead.
const exactEntryOverhead = 48

func newExactSeen() *exactSeen {
	e := &exactSeen{seed: maphash.MakeSeed()}
	for i := range e.shards {
		e.shards[i].m = make(map[string]struct{})
	}
	return e
}

func (e *exactSeen) Add(key []byte) bool {
	sum := maphash.Bytes(e.seed, key)
	sh := &e.shards[sum>>(64-4)]
	sh.mu.Lock()
	// The map lookup with a string(key) conversion does not allocate; the
	// key is only materialized when it is genuinely new.
	_, dup := sh.m[string(key)]
	if !dup {
		k := string(key)
		sh.m[k] = struct{}{}
		sh.bytes += int64(len(k)) + exactEntryOverhead
	}
	sh.mu.Unlock()
	return !dup
}

func (e *exactSeen) Len() int {
	n := 0
	for i := range e.shards {
		e.shards[i].mu.Lock()
		n += len(e.shards[i].m)
		e.shards[i].mu.Unlock()
	}
	return n
}

func (e *exactSeen) ShardLens() []int {
	out := make([]int, seenShards)
	for i := range e.shards {
		e.shards[i].mu.Lock()
		out[i] = len(e.shards[i].m)
		e.shards[i].mu.Unlock()
	}
	return out
}

func (e *exactSeen) ApproxBytes() int64 {
	var b int64
	for i := range e.shards {
		e.shards[i].mu.Lock()
		b += e.shards[i].bytes
		e.shards[i].mu.Unlock()
	}
	return b
}
