package explore

import (
	"crypto/rand"
	"encoding/binary"
	"math/bits"
	"sort"
	"sync"
)

// The explorer dedups up to millions of states; the seen-set is its main
// memory consumer and, under parallel BFS, its main contention point. All
// implementations below are mutex-striped across seenShards shards chosen
// by the key's 64-bit hash, so concurrent workers rarely collide on a
// lock, and all accept transient []byte keys so callers can build keys in
// a reused buffer.
//
// hashedSeen stores only the 64-bit hash of each key (8 bytes per state
// plus map overhead, versus the full key string — typically hundreds of
// bytes — kept by exactSeen). Dedup by hash can, in principle, merge two
// distinct states on a hash collision; with a per-search random seed and
// n states the probability of any collision is about n²/2⁶⁵ (≈ 3·10⁻⁸ for
// the default 2²⁰-state budget), and a collision can only cause a missed
// state, never a false violation — traces are re-validated by the monitor
// on the path that reaches them. Config.ExactDedup selects exactSeen for
// collision-paranoid runs. spilledSeen (spill.go) is the third
// implementation: hashed dedup whose cold majority lives in sorted runs
// on disk, for searches that outgrow RAM.
//
// The hash is a seeded multiply-xor mix (hash64 below) rather than
// hash/maphash: maphash's seed is deliberately opaque and cannot be
// persisted, but checkpoint files (checkpoint.go) must carry the seed and
// the admitted fingerprints so a resumed search maps every key to exactly
// the fingerprint the interrupted run did.

const seenShards = 16

// seenShardBits / seenShardShift are derived from seenShards so the
// shard-selection shift can never drift from the shard count (they used
// to be two independently hardcoded constants). The zero-length array
// pins seenShards to a power of two at compile time: a non-power-of-two
// count would make the dimension negative and refuse to compile.
var (
	_              [-(seenShards & (seenShards - 1))]struct{}
	seenShardBits  = bits.Len(uint(seenShards - 1))
	seenShardShift = uint(64 - seenShardBits)
)

// shardOf selects the shard for a 64-bit sum from its top bits. Because
// the selector is the value's MOST significant bits, shard i holds
// exactly the sums in [i<<seenShardShift, (i+1)<<seenShardShift): the
// shards partition the sum space into consecutive ascending ranges, so a
// globally sorted enumeration is the concatenation of per-shard sorted
// slices — the fact the incremental checkpoint path below relies on.
func shardOf(sum uint64) int { return int(sum >> seenShardShift) }

// seenSet is a concurrency-safe dedup set over transient byte-slice keys.
type seenSet interface {
	// Add inserts key, reporting whether it was absent; key is not retained.
	Add(key []byte) bool
	// Len returns the number of distinct keys added.
	Len() int
	// ApproxBytes estimates the heap bytes held per entry by the set.
	ApproxBytes() int64
	// ShardLens returns the per-shard entry counts: the occupancy figures
	// the observability layer exports, since shard skew is what would
	// turn the striped locks back into a contention point.
	ShardLens() []int
}

// randomSeed draws a fresh 64-bit hash seed. crypto/rand (not the global
// math/rand source the determinism analyzer forbids) never fails on
// supported platforms; the fixed fallback keeps the search usable — only
// collision resistance against pathological key sets, not correctness,
// depends on the seed being unpredictable.
func randomSeed() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0x9e3779b97f4a7c15
	}
	return binary.LittleEndian.Uint64(b[:])
}

// hash64 is the seeded 64-bit key hash shared by all seen-sets: 8-byte
// little-endian lanes folded through the splitmix64 finalizer, with the
// length and the tail mixed in so prefixes and zero-padded keys cannot
// alias. Unlike hash/maphash the (seed, key) → hash mapping is a pure
// function of its arguments, so it survives a checkpoint/restart; the
// golden vectors in seenset_test.go pin the mapping against silent
// change.
func hash64(seed uint64, key []byte) uint64 {
	h := seed ^ mix64(uint64(len(key)))
	for ; len(key) >= 8; key = key[8:] {
		h = mix64(h ^ binary.LittleEndian.Uint64(key))
	}
	if len(key) > 0 {
		var tail uint64
		for i := len(key) - 1; i >= 0; i-- {
			tail = tail<<8 | uint64(key[i])
		}
		h = mix64(h ^ tail)
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashedShard is one stripe of hashedSeen: the membership map plus — in
// checkpoint-tracking mode — the shard's sums maintained as a sorted run
// with an unsorted pending tail, so a barrier snapshot merges the small
// tail instead of re-sorting the whole set.
type hashedShard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
	// sorted holds every sum merged at a previous hashes() call, in
	// ascending order; pending holds the sums admitted since, unsorted.
	// Both are nil unless the set was built with run tracking (the
	// checkpoint-enabled mode pays ~8 extra bytes per entry for barriers
	// that cost O(new) instead of O(n log n)).
	sorted  []uint64
	pending []uint64
	// pad the shard to its own cache line so neighbouring locks do not
	// false-share under contention.
	_ [16]byte
}

// hashedSeen dedups on 64-bit hash64 fingerprints.
type hashedSeen struct {
	seed   uint64
	track  bool
	shards [seenShards]hashedShard
}

func newHashedSeen() *hashedSeen { return newHashedSeenSeeded(randomSeed()) }

// newHashedSeenSeeded builds the set with an explicit hash seed: the
// restore path, where the checkpoint dictates the seed.
func newHashedSeenSeeded(seed uint64) *hashedSeen {
	h := &hashedSeen{seed: seed}
	for i := range h.shards {
		h.shards[i].m = make(map[uint64]struct{})
	}
	return h
}

// trackRuns switches on per-shard sorted-run maintenance. BFS enables it
// exactly when checkpointing is configured: hashes() is then called at
// every cadence barrier, and the incremental merge keeps that from being
// a full re-sort of the set each time.
func (h *hashedSeen) trackRuns() { h.track = true }

func (h *hashedSeen) Add(key []byte) bool {
	return h.addSum(hash64(h.seed, key))
}

// addSum inserts a precomputed fingerprint; the checkpoint restore path
// feeds persisted fingerprints straight back in.
func (h *hashedSeen) addSum(sum uint64) bool {
	sh := &h.shards[shardOf(sum)]
	sh.mu.Lock()
	_, dup := sh.m[sum]
	if !dup {
		sh.m[sum] = struct{}{}
		if h.track {
			sh.pending = append(sh.pending, sum)
		}
	}
	sh.mu.Unlock()
	return !dup
}

// hashSeed exposes the seed for checkpointing.
func (h *hashedSeen) hashSeed() uint64 { return h.seed }

// hashes returns every admitted fingerprint in ascending order. The set
// is order-independent, and sorting makes the checkpoint encoding
// byte-deterministic for a given search state.
//
// Because shardOf splits on the sums' top bits, the shards hold disjoint
// consecutive ranges, so the global ascending order is just the
// concatenation of the per-shard ascending slices. In tracking mode each
// shard sorts only its pending tail (the sums admitted since the last
// barrier) and back-merges it into the standing sorted run — O(new log
// new + n) per barrier against the old O(n log n) full re-sort that
// dominated checkpoint overhead. Untracked sets fall back to
// extract-and-sort per shard.
func (h *hashedSeen) hashes() []uint64 {
	out := make([]uint64, 0, h.Len())
	scratch := []uint64(nil)
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		if h.track {
			sh.mergePending()
			out = append(out, sh.sorted...)
		} else {
			scratch = scratch[:0]
			for sum := range sh.m {
				scratch = append(scratch, sum)
			}
			sort.Slice(scratch, func(a, b int) bool { return scratch[a] < scratch[b] })
			out = append(out, scratch...)
		}
		sh.mu.Unlock()
	}
	return out
}

// mergePending folds the shard's unsorted pending tail into its standing
// sorted run: sort the tail, then merge from the back in place. Caller
// holds the shard lock.
func (sh *hashedShard) mergePending() {
	if len(sh.pending) == 0 {
		return
	}
	sort.Slice(sh.pending, func(a, b int) bool { return sh.pending[a] < sh.pending[b] })
	sh.sorted = mergeSortedInto(sh.sorted, sh.pending)
	sh.pending = sh.pending[:0]
}

// mergeSortedInto merges ascending tail into ascending run in place
// (growing run), walking from the back so no element is overwritten
// before it is read. O(len(run)+len(tail)), allocation-free once run's
// capacity suffices.
func mergeSortedInto(run, tail []uint64) []uint64 {
	n, p := len(run), len(tail)
	run = append(run, tail...)
	i, k := n-1, n+p-1
	for j := p - 1; j >= 0; k-- {
		if i >= 0 && run[i] > tail[j] {
			run[k] = run[i]
			i--
		} else {
			run[k] = tail[j]
			j--
		}
	}
	return run
}

func (h *hashedSeen) Len() int {
	n := 0
	for i := range h.shards {
		h.shards[i].mu.Lock()
		n += len(h.shards[i].m)
		h.shards[i].mu.Unlock()
	}
	return n
}

func (h *hashedSeen) ShardLens() []int {
	out := make([]int, seenShards)
	for i := range h.shards {
		h.shards[i].mu.Lock()
		out[i] = len(h.shards[i].m)
		h.shards[i].mu.Unlock()
	}
	return out
}

// hashedEntryBytes estimates a map[uint64]struct{} entry as held by the
// runtime: the 8 key bytes plus control bytes, load-factor slack
// (occupancy ~7/8 of capacity at best, half that just after a growth)
// and growth-time table duplication, amortised. The figure is calibrated
// against runtime.ReadMemStats over a million-entry sharded set in
// seenset_test.go — the earlier guess of 16 under-reported real heap by
// more than 2x, which matters now that the spill threshold keys off
// Result.SeenSetBytes.
const hashedEntryBytes = 32

func (h *hashedSeen) ApproxBytes() int64 {
	var b int64
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		b += int64(len(sh.m)) * hashedEntryBytes
		// Tracking mode additionally holds each sum in its sorted run.
		b += int64(cap(sh.sorted)+cap(sh.pending)) * 8
		sh.mu.Unlock()
	}
	return b
}

// exactSeen dedups on full key strings: the Config.ExactDedup escape
// hatch, immune to hash collisions at ~key-length bytes per state.
type exactSeen struct {
	seed   uint64
	shards [seenShards]struct {
		mu    sync.Mutex
		m     map[string]struct{}
		bytes int64
		_     [32]byte
	}
}

// exactEntryOverhead estimates the per-entry cost beyond the key bytes:
// the string header, the key allocation's size-class rounding, and the
// map's per-entry share of buckets and slack. Calibrated the same way as
// hashedEntryBytes (see seenset_test.go); the earlier guess of 48 was
// ~30% low.
const exactEntryOverhead = 64

func newExactSeen() *exactSeen {
	e := &exactSeen{seed: randomSeed()}
	for i := range e.shards {
		e.shards[i].m = make(map[string]struct{})
	}
	return e
}

func (e *exactSeen) Add(key []byte) bool {
	sum := hash64(e.seed, key)
	sh := &e.shards[shardOf(sum)]
	sh.mu.Lock()
	// The map lookup with a string(key) conversion does not allocate; the
	// key is only materialized when it is genuinely new.
	_, dup := sh.m[string(key)]
	if !dup {
		k := string(key)
		sh.m[k] = struct{}{}
		sh.bytes += int64(len(k)) + exactEntryOverhead
	}
	sh.mu.Unlock()
	return !dup
}

// keys returns every admitted key in ascending order — the exact-mode
// checkpoint payload (membership is by full key, so the shard seed need
// not be persisted).
func (e *exactSeen) keys() []string {
	out := make([]string, 0, e.Len())
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			out = append(out, k) // lint:ignore determinism set members; sorted below before any output
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

func (e *exactSeen) Len() int {
	n := 0
	for i := range e.shards {
		e.shards[i].mu.Lock()
		n += len(e.shards[i].m)
		e.shards[i].mu.Unlock()
	}
	return n
}

func (e *exactSeen) ShardLens() []int {
	out := make([]int, seenShards)
	for i := range e.shards {
		e.shards[i].mu.Lock()
		out[i] = len(e.shards[i].m)
		e.shards[i].mu.Unlock()
	}
	return out
}

func (e *exactSeen) ApproxBytes() int64 {
	var b int64
	for i := range e.shards {
		e.shards[i].mu.Lock()
		b += e.shards[i].bytes
		e.shards[i].mu.Unlock()
	}
	return b
}
