package explore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
)

// searchMode is one frontier/seen-set representation under test. The
// spill thresholds are tiny on purpose so even these small searches
// push sums to disk and through at least one run merge.
type searchMode struct {
	name string
	mod  func(t *testing.T, cfg *Config)
}

func allModes(t *testing.T) []searchMode {
	t.Helper()
	return []searchMode{
		{"classic", func(t *testing.T, cfg *Config) {}},
		{"arena", func(t *testing.T, cfg *Config) { cfg.Arena = true }},
		{"spill", func(t *testing.T, cfg *Config) {
			cfg.SpillDir = t.TempDir()
			cfg.SpillThreshold = 256
		}},
		{"spill+arena", func(t *testing.T, cfg *Config) {
			cfg.Arena = true
			cfg.SpillDir = t.TempDir()
			cfg.SpillThreshold = 256
		}},
	}
}

// TestModesEquivalence: the disk-spill seen-set and the frontier arena
// are pure representation changes — for both the violating and the
// clean exhaustive workload, under every combination of worker count,
// symmetry, and POR, each mode must reproduce the classic in-memory
// run bit-for-bit: same verdict, same trace, same StatesExplored and
// DepthReached.
func TestModesEquivalence(t *testing.T) {
	workloads := []struct {
		name  string
		setup func(t *testing.T) (*core.System, Config)
	}{
		{"violating", crashSearch},
		{"verifying", verifySearch},
	}
	for _, wl := range workloads {
		for _, workers := range []int{1, 4} {
			for _, sym := range []bool{false, true} {
				for _, por := range []bool{false, true} {
					label := fmt.Sprintf("%s/w%d/sym=%t/por=%t", wl.name, workers, sym, por)
					t.Run(label, func(t *testing.T) {
						sys, base := wl.setup(t)
						base.Workers = workers
						base.Symmetry = sym
						base.POR = por

						var want *Result
						for _, mode := range allModes(t) {
							cfg := base
							mode.mod(t, &cfg)
							res, err := BFS(sys, cfg)
							if err != nil {
								t.Fatalf("%s: %v", mode.name, err)
							}
							if mode.name == "classic" {
								want = res
								continue
							}
							requireEqualResults(t, mode.name, res, want)
							if cfg.SpillDir != "" {
								if res.Spill == nil {
									t.Fatalf("%s: Result.Spill not populated", mode.name)
								}
								// The violating workload halts at the counterexample
								// before the front can fill; only a search that outgrew
								// the threshold must have actually spilled.
								if res.StatesExplored > cfg.SpillThreshold && res.Spill.Spills == 0 {
									t.Errorf("%s: %d states explored but threshold %d never tripped (%+v)",
										mode.name, res.StatesExplored, cfg.SpillThreshold, *res.Spill)
								}
							}
						}
					})
				}
			}
		}
	}
}

// TestModesCheckpointBytesIdentical: a checkpoint is a statement about
// the search, not about the data structures that ran it — so the file a
// spilling arena run writes at level k must be byte-identical to the
// one the classic run writes, given the same hash seed. The seed is
// forced equal by resuming all modes from one level-1 checkpoint.
func TestModesCheckpointBytesIdentical(t *testing.T) {
	sys, seedCfg := verifySearch(t)
	dir := t.TempDir()
	seedPath := filepath.Join(dir, "seed.ckpt")
	stopAtLevel(&seedCfg, 1, seedPath)
	if _, err := BFS(sys, seedCfg); err != nil {
		t.Fatal(err)
	}
	seedCk, err := ReadCheckpoint(seedPath)
	if err != nil {
		t.Fatal(err)
	}

	var want []byte
	for _, mode := range allModes(t) {
		_, cfg := verifySearch(t)
		mode.mod(t, &cfg)
		cfg.Resume = seedCk
		path := filepath.Join(dir, mode.name+".ckpt")
		stopAtLevel(&cfg, 3, path)
		if _, err := BFS(sys, cfg); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		if mode.name == "classic" {
			want = blob
			continue
		}
		if string(blob) != string(want) {
			t.Errorf("%s: checkpoint differs from classic (%d vs %d bytes)", mode.name, len(blob), len(want))
		}
	}
}

// TestModesCrossResume: a checkpoint written under one representation
// must resume under any other — configDigest deliberately excludes
// SpillDir/SpillThreshold/Arena — and finish with the classic
// uninterrupted result.
func TestModesCrossResume(t *testing.T) {
	sys, baseCfg := crashSearch(t)
	want, err := BFS(sys, baseCfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, writer := range allModes(t) {
		for _, resumer := range allModes(t) {
			if writer.name == resumer.name {
				continue
			}
			t.Run(writer.name+"->"+resumer.name, func(t *testing.T) {
				_, cfg := crashSearch(t)
				writer.mod(t, &cfg)
				path := filepath.Join(t.TempDir(), "cross.ckpt")
				stopAtLevel(&cfg, 2, path)
				if _, err := BFS(sys, cfg); err != nil {
					t.Fatal(err)
				}
				ck, err := ReadCheckpoint(path)
				if err != nil {
					t.Fatal(err)
				}
				_, cfg2 := crashSearch(t)
				resumer.mod(t, &cfg2)
				cfg2.Resume = ck
				res, err := BFS(sys, cfg2)
				if err != nil {
					t.Fatal(err)
				}
				requireEqualResults(t, writer.name+"->"+resumer.name, res, want)
			})
		}
	}
}

// TestSpillConfigRejected pins the one composition that cannot work:
// exact dedup needs the full keys, which the spill format (sorted
// 64-bit sums) cannot hold.
func TestSpillConfigRejected(t *testing.T) {
	sys, cfg := crashSearch(t)
	cfg.ExactDedup = true
	cfg.SpillDir = t.TempDir()
	if _, err := BFS(sys, cfg); err == nil {
		t.Fatal("BFS accepted ExactDedup together with SpillDir")
	}
}

// BenchmarkFrontierPromotion isolates the per-admission cost the arena
// exists to cut: materializing one generation of the frontier from its
// parents. The classic path allocates a heap *node (plus a used-bitmap
// copy on pool admissions) per successor; the arena path appends to
// reused parallel slabs and bit-packs the bitmap. B/op and allocs/op
// are the figures of merit — in a full search successor-state cloning
// dominates wall clock, so the win only shows up isolated here and as
// retained frontier bytes at scale.
func BenchmarkFrontierPromotion(b *testing.B) {
	const parents, succs, inputs = 1024, 4, 4
	usedStride := (inputs + 63) / 64
	actions := pool(2)

	b.Run("classic", func(b *testing.B) {
		level := make([]*node, parents)
		for i := range level {
			level[i] = &node{used: make([]bool, inputs), depth: 3}
		}
		next := make([]*node, 0, parents*succs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			next = next[:0]
			for pi, parent := range level {
				for sj := 0; sj < succs; sj++ {
					used := parent.used
					if sj == 0 { // one pool admission per parent, as in a typical level
						used = append([]bool(nil), parent.used...)
						used[pi%inputs] = true
					}
					next = append(next, &node{
						used: used, depth: parent.depth + 1,
						parent: parent, action: actions[sj%len(actions)],
					})
				}
			}
		}
		b.ReportMetric(float64(parents*succs), "nodes/gen")
	})

	b.Run("arena", func(b *testing.B) {
		level := &arenaLevel{
			inputs: inputs, usedStride: usedStride, depth: 3,
			actions:  make([]ioa.Action, parents),
			parents:  make([]uint32, parents),
			states:   make([]ioa.State, parents),
			monitors: make([]Monitor, parents),
			usedBits: make([]uint64, parents*usedStride),
		}
		var batch arenaBatch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			next := nextArenaLevel(level)
			for pi := 0; pi < parents; pi++ {
				for sj := 0; sj < succs; sj++ {
					s := succ{action: actions[sj%len(actions)], usedIdx: -1}
					if sj == 0 {
						s.usedIdx = pi % inputs
					}
					batch.add(level, pi, &s)
				}
			}
			next.absorb(&batch)
		}
		b.ReportMetric(float64(parents*succs), "nodes/gen")
	})
}
