package explore

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/ioa"
)

// This file provides the standard safety monitors: online versions of the
// safety fragments of the data link specification ((DL4), (DL5), (DL6))
// that the explorer checks on every path. Liveness ((DL8)) is not a safety
// property and cannot be refuted on a prefix, so exploration targets the
// duplicate/spurious/reordering failures — which is exactly what the
// impossibility constructions produce.

// msgSet is an immutable string-set building block for monitor states.
type msgSet struct {
	members map[ioa.Message]bool
}

func (s msgSet) with(m ioa.Message) msgSet {
	next := make(map[ioa.Message]bool, len(s.members)+1)
	for k := range s.members {
		next[k] = true
	}
	next[m] = true
	return msgSet{members: next}
}

func (s msgSet) has(m ioa.Message) bool { return s.members[m] }

func (s msgSet) appendFingerprint(dst []byte) []byte {
	keys := make([]string, 0, len(s.members))
	for k := range s.members {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	dst = append(dst, '{')
	for i, k := range keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, k...)
	}
	return append(dst, '}')
}

// appendCanonFingerprint renders the set as sorted canonical indices.
// Tokens not yet known to c are assigned indices in raw-sorted order (a
// deterministic choice), and the indices are then emitted in numeric
// order, so equal renderings mean the renaming implied by the rest of the
// canonical key maps one set onto the other.
func (s msgSet) appendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	keys := make([]string, 0, len(s.members))
	for k := range s.members {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	idx := make([]int, len(keys))
	for i, k := range keys {
		idx[i] = c.MsgIndex(ioa.Message(k))
	}
	sort.Ints(idx)
	dst = append(dst, '{')
	for i, v := range idx {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, "µ"...)
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	return append(dst, '}')
}

// SafetyMonitor checks (DL4) no duplicate delivery, (DL5) no spurious
// delivery, and optionally (DL6) FIFO delivery order, over the external
// actions of D'(A). The zero value is NOT ready to use; construct with
// NewSafetyMonitor.
type SafetyMonitor struct {
	checkFIFO bool
	sent      msgSet
	delivered msgSet
	// sendOrder and nextDeliver implement the FIFO check: each message's
	// send position, and the position of the most recent delivery.
	sendOrder   map[ioa.Message]int
	sendCount   int
	lastDeliver int
}

var _ Monitor = SafetyMonitor{}

// NewSafetyMonitor returns a monitor for DL4 and DL5, plus DL6 when
// checkFIFO is set.
func NewSafetyMonitor(checkFIFO bool) SafetyMonitor {
	return SafetyMonitor{checkFIFO: checkFIFO, lastDeliver: -1}
}

// Step observes an external data link action.
func (m SafetyMonitor) Step(a ioa.Action) (Monitor, *Violation) {
	switch a.Kind {
	case ioa.KindSendMsg:
		next := m
		next.sent = m.sent.with(a.Msg)
		if m.checkFIFO {
			so := make(map[ioa.Message]int, len(m.sendOrder)+1)
			for k, v := range m.sendOrder {
				so[k] = v
			}
			if _, dup := so[a.Msg]; !dup {
				so[a.Msg] = m.sendCount
			}
			next.sendOrder = so
			next.sendCount = m.sendCount + 1
		}
		return next, nil
	case ioa.KindReceiveMsg:
		if m.delivered.has(a.Msg) {
			return m, &Violation{Property: "DL4", Detail: fmt.Sprintf("message %q delivered twice", string(a.Msg))}
		}
		if !m.sent.has(a.Msg) {
			return m, &Violation{Property: "DL5", Detail: fmt.Sprintf("message %q delivered but never sent", string(a.Msg))}
		}
		next := m
		next.delivered = m.delivered.with(a.Msg)
		if m.checkFIFO {
			pos, ok := m.sendOrder[a.Msg]
			if ok && pos <= m.lastDeliver {
				return m, &Violation{Property: "DL6", Detail: fmt.Sprintf("message %q delivered out of send order", string(a.Msg))}
			}
			next.lastDeliver = pos
		}
		return next, nil
	default:
		return m, nil
	}
}

// Fingerprint encodes the monitor state for deduplication.
func (m SafetyMonitor) Fingerprint() string { return string(m.AppendFingerprint(nil)) }

// AppendFingerprint is the monitor's allocation-free fingerprint fast
// path; the explorer's dedup loop appends it into a reused key buffer.
func (m SafetyMonitor) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "sent="...)
	dst = m.sent.appendFingerprint(dst)
	dst = append(dst, " del="...)
	dst = m.delivered.appendFingerprint(dst)
	if m.checkFIFO {
		dst = append(dst, " last="...)
		dst = strconv.AppendInt(dst, int64(m.lastDeliver), 10)
		dst = append(dst, " n="...)
		dst = strconv.AppendInt(dst, int64(m.sendCount), 10)
		dst = append(dst, " ord={"...)
		keys := make([]string, 0, len(m.sendOrder))
		for k := range m.sendOrder {
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, k...)
			dst = append(dst, ':')
			dst = strconv.AppendInt(dst, int64(m.sendOrder[ioa.Message(k)]), 10)
		}
		dst = append(dst, '}')
	}
	return dst
}

// AppendCanonFingerprint mirrors AppendFingerprint with message tokens
// replaced by canonical indices from c. Send positions are counters, not
// tokens — a payload renaming leaves them fixed — so they are emitted
// raw; the ord entries are keyed and sorted by canonical index.
func (m SafetyMonitor) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	dst = append(dst, "sent="...)
	dst = m.sent.appendCanonFingerprint(dst, c)
	dst = append(dst, " del="...)
	dst = m.delivered.appendCanonFingerprint(dst, c)
	if m.checkFIFO {
		dst = append(dst, " last="...)
		dst = strconv.AppendInt(dst, int64(m.lastDeliver), 10)
		dst = append(dst, " n="...)
		dst = strconv.AppendInt(dst, int64(m.sendCount), 10)
		dst = append(dst, " ord={"...)
		keys := make([]string, 0, len(m.sendOrder))
		for k := range m.sendOrder {
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		type ordEntry struct{ idx, pos int }
		ord := make([]ordEntry, len(keys))
		for i, k := range keys {
			ord[i] = ordEntry{c.MsgIndex(ioa.Message(k)), m.sendOrder[ioa.Message(k)]}
		}
		sort.Slice(ord, func(i, j int) bool { return ord[i].idx < ord[j].idx })
		for i, e := range ord {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, "µ"...)
			dst = strconv.AppendInt(dst, int64(e.idx), 10)
			dst = append(dst, ':')
			dst = strconv.AppendInt(dst, int64(e.pos), 10)
		}
		dst = append(dst, '}')
	}
	return dst
}
