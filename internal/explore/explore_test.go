package explore

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/spec"
)

// pool builds the standard input pool: both wakes plus n messages, plus
// optional crash/recover events.
func pool(msgs int, crashes ...ioa.Dir) []ioa.Action {
	out := []ioa.Action{ioa.Wake(ioa.TR), ioa.Wake(ioa.RT)}
	for i := 0; i < msgs; i++ {
		out = append(out, ioa.SendMsg(ioa.TR, ioa.Message(string(rune('a'+i)))))
	}
	for _, d := range crashes {
		out = append(out, ioa.Crash(d), ioa.Wake(d))
	}
	return out
}

// TestExplorerVerifiesGBNOverFIFO: bounded verification of the positive
// claim — Go-Back-N over FIFO channels has no reachable duplicate,
// spurious, or reordered delivery within the bound.
func TestExplorerVerifiesGBNOverFIFO(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewGoBackN(2, 1), true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(sys, Config{
		Inputs:       pool(2),
		Monitor:      NewSafetyMonitor(true),
		MaxDepth:     22,
		MaxInTransit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %s\ntrace:\n%s", res.Violation, ioa.FormatSchedule(res.Trace))
	}
	if !res.Exhausted {
		t.Fatal("space not exhausted; raise MaxStates")
	}
	if res.StatesExplored < 100 {
		t.Errorf("suspiciously small state space: %d", res.StatesExplored)
	}
	t.Logf("verified %d states to depth %d", res.StatesExplored, res.DepthReached)
}

// TestExplorerFindsReorderingBug: over the non-FIFO channel C̄, the same
// Go-Back-N has a reachable duplicate delivery — the Theorem 8.5
// phenomenon found by search instead of construction. The shortest
// counterexample needs the sequence space to wrap: with modulus 2, three
// messages.
func TestExplorerFindsReorderingBug(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewGoBackN(2, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(sys, Config{
		Inputs:       pool(3),
		Monitor:      NewSafetyMonitor(false),
		MaxDepth:     26,
		MaxInTransit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("no violation found in %d states (exhausted=%t)", res.StatesExplored, res.Exhausted)
	}
	if res.Violation.Property != "DL4" && res.Violation.Property != "DL5" {
		t.Errorf("violation = %s, want DL4 or DL5", res.Violation)
	}
	t.Logf("found after %d states: %s\nshortest trace (%d steps):\n%s",
		res.StatesExplored, res.Violation, len(res.Trace), ioa.FormatSchedule(res.Trace))

	// The found trace's data-link behavior must independently fail the
	// offline WDL checker (cross-validation of monitor vs. checker).
	beh := res.Trace.Behavior(sys.Hidden.Signature())
	if v := spec.CheckWDL(beh, ioa.TR); v.OK() {
		t.Errorf("offline checker disagrees with monitor: %s", v)
	}
}

// TestExplorerFindsCrashBug: over FIFO channels with crash events in the
// input pool, ABP has a reachable duplicate/spurious delivery or a lost
// message — the Theorem 7.5 phenomenon found by search. Safety monitors
// can only catch the duplicate/spurious variants; ABP's receiver-crash
// failure mode is exactly a duplicate delivery (the receiver forgets its
// expected bit and re-accepts a retransmission).
func TestExplorerFindsCrashBug(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewABP(), true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(sys, Config{
		Inputs:       pool(1, ioa.RT),
		Monitor:      NewSafetyMonitor(false),
		MaxDepth:     20,
		MaxInTransit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("no violation found in %d states (exhausted=%t)", res.StatesExplored, res.Exhausted)
	}
	if res.Violation.Property != "DL4" {
		t.Errorf("violation = %s, want DL4 (re-accepted retransmission)", res.Violation)
	}
	t.Logf("found after %d states: %s\nshortest trace (%d steps):\n%s",
		res.StatesExplored, res.Violation, len(res.Trace), ioa.FormatSchedule(res.Trace))
}

// TestExplorerVerifiesNonVolatileUnderCrashes: the non-volatile protocol
// has no reachable safety violation even with crash events of both
// stations in the pool (bounded verification of E2).
func TestExplorerVerifiesNonVolatileUnderCrashes(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewNonVolatile(), true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(sys, Config{
		Inputs:       pool(1, ioa.TR, ioa.RT),
		Monitor:      NewSafetyMonitor(true),
		MaxDepth:     20,
		MaxInTransit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %s\ntrace:\n%s", res.Violation, ioa.FormatSchedule(res.Trace))
	}
	if !res.Exhausted {
		t.Fatal("space not exhausted; raise MaxStates")
	}
	t.Logf("verified %d states to depth %d", res.StatesExplored, res.DepthReached)
}

// TestExplorerVerifiesStenningOverReordering: Stenning's protocol has no
// reachable safety violation over the arbitrarily-reordering channel
// within the bound (bounded verification of E4's safety half).
func TestExplorerVerifiesStenningOverReordering(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewStenning(), false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BFS(sys, Config{
		Inputs:       pool(3),
		Monitor:      NewSafetyMonitor(true),
		MaxDepth:     24,
		MaxInTransit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %s\ntrace:\n%s", res.Violation, ioa.FormatSchedule(res.Trace))
	}
	if !res.Exhausted {
		t.Fatal("space not exhausted; raise MaxStates")
	}
	t.Logf("verified %d states to depth %d", res.StatesExplored, res.DepthReached)
}

func TestExplorerConfigValidation(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewABP(), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BFS(sys, Config{}); err != ErrNoMonitor {
		t.Errorf("err = %v, want ErrNoMonitor", err)
	}
}

func TestSafetyMonitorDirect(t *testing.T) {
	m := Monitor(NewSafetyMonitor(true))
	step := func(a ioa.Action) *Violation {
		var v *Violation
		m, v = m.Step(a)
		return v
	}
	if v := step(ioa.SendMsg(ioa.TR, "a")); v != nil {
		t.Fatalf("send flagged: %s", v)
	}
	if v := step(ioa.ReceiveMsg(ioa.TR, "ghost")); v == nil || v.Property != "DL5" {
		t.Fatalf("spurious delivery not flagged: %v", v)
	}
	if v := step(ioa.ReceiveMsg(ioa.TR, "a")); v != nil {
		t.Fatalf("legal delivery flagged: %s", v)
	}
	if v := step(ioa.ReceiveMsg(ioa.TR, "a")); v == nil || v.Property != "DL4" {
		t.Fatalf("duplicate delivery not flagged: %v", v)
	}
	// FIFO violation: send b then c, deliver c then b.
	step(ioa.SendMsg(ioa.TR, "b"))
	step(ioa.SendMsg(ioa.TR, "c"))
	if v := step(ioa.ReceiveMsg(ioa.TR, "c")); v != nil {
		t.Fatalf("gap delivery flagged by DL6 monitor: %s", v)
	}
	if v := step(ioa.ReceiveMsg(ioa.TR, "b")); v == nil || v.Property != "DL6" {
		t.Fatalf("reordered delivery not flagged: %v", v)
	}
	// Wake/fail actions are ignored by the monitor.
	if v := step(ioa.Wake(ioa.TR)); v != nil {
		t.Fatalf("wake flagged: %s", v)
	}
}

func TestMonitorFingerprintDistinguishesStates(t *testing.T) {
	a := Monitor(NewSafetyMonitor(false))
	b := Monitor(NewSafetyMonitor(false))
	a, _ = a.Step(ioa.SendMsg(ioa.TR, "x"))
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("monitor fingerprint ignores sent set")
	}
	b, _ = b.Step(ioa.SendMsg(ioa.TR, "x"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal monitor states have different fingerprints")
	}
}
