package explore

import (
	"strconv"

	"repro/internal/ioa"
)

// This file implements the explorer's two state-space reductions. Both
// are opt-in (Config.Symmetry, Config.POR), independent, and preserve
// the search's verdict, its shortest-violating-trace level semantics,
// and the exhausted/depth-limited statuses.
//
// # Symmetry reduction (Config.Symmetry)
//
// Payload tokens and packet IDs are analysis labels: a payload-opaque
// protocol (Props.PayloadOpaque, the checked form of the paper's §5.3.1
// equivariance) never inspects, slices, or derives data from them, the
// channels transport them opaquely, and the safety monitors are
// equivariant — DL4/DL5 compare set membership and DL6 compares send
// positions, all of which commute with a bijective renaming π of the
// token universe. So π lifts to an automorphism of the transition
// system: s —a→ s' iff π(s) —π(a)→ π(s'), and π(s) violates exactly when
// s does, at the same depth.
//
// The reduction merges states in the same orbit by building dedup keys
// through canonical fingerprints: one ioa.Canon per key assigns payload
// tokens and packet IDs first-use indices during a deterministic
// traversal in fixed component order, and set-valued sections (monitor
// msgSets, sendOrder) assign fresh tokens in raw-sorted order and then
// emit indices numerically sorted. Equal canonical keys therefore
// exhibit a single bijection π mapping every component of one node onto
// the other. The inputs-used bitmap collapses to per-class counts
// (classOf): send_msg entries of one direction form one class, and any
// two states with equal counts have their remaining pools matched
// class-wise by an extension of π. Two guards keep this exact:
//
//   - The protocol must claim PayloadOpaque. The fragmenting protocol is
//     message-independent but slices payload contents into fragment
//     tokens, so whole-message renamings are not automorphisms for it.
//   - The pool's send_msg tokens must be pairwise distinct per
//     direction. With duplicate tokens, per-class counts identify states
//     whose remaining pools are NOT related by any bijection (injecting
//     the leftover duplicate then distinguishes them), so symmetry
//     silently degrades to off rather than risk a missed violation.
//
// When either guard fails, Config.Symmetry is ignored (s.sym stays
// false) and the search runs with raw keys — always sound, never wrong,
// just unreduced.
//
// # Partial-order reduction (Config.POR)
//
// Invisible channel actions — packet deliveries and losses — on
// different channels touch disjoint component sets (a delivery on c̄
// steps {c̄, R}, on c steps {c, T}; a loss steps only its channel), so
// any two of them on different channels commute and preserve each
// other's enabledness. Likewise two losses on one channel commute: each
// marks a distinct pending entry lost and cannot disable the other.
// Every maximal run of consecutive invisible actions in a schedule can
// therefore be rewritten — preserving length, endpoint, and every
// action outside the run — into a canonical form: stably partitioned by
// channel component index, with each maximal consecutive run of losses
// inside a channel segment sorted by ascending packet ID (IDs are
// per-channel send indices, so ID order is send order). porSuppressed
// prunes exactly the transitions that violate this canonical form,
// keyed on the node's incoming action:
//
//   - after an invisible action on channel k, invisible actions on
//     channels with component index < k are suppressed;
//   - after a loss of packet ID p on channel k, losses on channel k of
//     packets with ID < p are suppressed.
//
// Soundness: any reachable state u has a minimal-depth schedule; its
// canonical rewrite has the same length and endpoint and is fully
// unsuppressed, so u is still reached at the same depth. The reachable
// state set and each state's BFS admission level are unchanged — POR
// prunes transitions (dedup hits), not states — hence verdicts,
// shortest traces, StatesExplored, and Exhausted/DepthLimited are all
// byte-identical with the reduction on or off. The standard ample-set
// guards hold by construction: pool inputs, send_msg/receive_msg (the
// monitor-visible actions) and send_pkt are never suppressed, and a
// level's every node is still expanded, so no enabled transition
// starves across a level.

// setupReductions resolves the effective reduction switches and their
// lookup tables; called once from BFS after comps/chans/dupOf are built.
func (s *search) setupReductions() {
	s.por = s.cfg.POR
	s.chanByDir = make(map[ioa.Dir]int)
	s.chanLose = make(map[string]int)
	for i, ch := range s.chans {
		if ch == nil {
			continue
		}
		s.chanByDir[ch.Dir()] = i
		s.chanLose[ch.LoseActionName()] = i
	}

	s.sym = s.cfg.Symmetry && s.sys.Protocol.Props.PayloadOpaque && symPoolOK(s.cfg.Inputs)
	if !s.sym {
		return
	}
	// Used-bitmap classes: send_msg entries collapse per direction (their
	// tokens are interchangeable under renaming); every other entry
	// shares a class only with its exact duplicates, where counts and
	// bitmaps coincide because duplicates are injected in pool order.
	s.classOf = make([]int, len(s.cfg.Inputs))
	sendCls := make(map[ioa.Dir]int)
	for i, in := range s.cfg.Inputs {
		if in.Kind == ioa.KindSendMsg {
			id, ok := sendCls[in.Dir]
			if !ok {
				id = s.numClasses
				s.numClasses++
				sendCls[in.Dir] = id
			}
			s.classOf[i] = id
			continue
		}
		if j := s.dupOf[i]; j >= 0 {
			s.classOf[i] = s.classOf[j]
			continue
		}
		s.classOf[i] = s.numClasses
		s.numClasses++
	}
}

// symPoolOK reports whether the pool's send_msg tokens are pairwise
// distinct per direction — the precondition for collapsing the used
// bitmap to per-class counts.
func symPoolOK(inputs []ioa.Action) bool {
	type dirMsg struct {
		d ioa.Dir
		m ioa.Message
	}
	seen := make(map[dirMsg]bool)
	for _, a := range inputs {
		if a.Kind != ioa.KindSendMsg {
			continue
		}
		k := dirMsg{a.Dir, a.Msg}
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}

// appendUsedClassCounts appends the symmetric replacement of the used
// bitmap: one count per input class, in class order. extraIdx (or -1) is
// a pool input counted as used on top of the bitmap — the successor's
// injected input, so dedup probes need no materialised successor bitmap.
func (s *search) appendUsedClassCounts(dst []byte, used []bool, extraIdx int, b *workerBufs) []byte {
	cnt := b.classCnt
	if cap(cnt) < s.numClasses {
		cnt = make([]int, s.numClasses)
	} else {
		cnt = cnt[:s.numClasses]
		for i := range cnt {
			cnt[i] = 0
		}
	}
	b.classCnt = cnt
	for i, u := range used {
		if u {
			cnt[s.classOf[i]]++
		}
	}
	if extraIdx >= 0 {
		cnt[s.classOf[extraIdx]]++
	}
	for i, v := range cnt {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	return dst
}

// porClass classifies an action for POR: the component index of the
// channel it is an invisible action of, and whether it is a loss. ok is
// false for every action POR must leave alone (inputs, send_pkt, the
// monitor-visible send_msg/receive_msg, wake/crash/fail).
func (s *search) porClass(a ioa.Action) (k int, isLose, ok bool) {
	switch a.Kind {
	case ioa.KindReceivePkt:
		k, ok = s.chanByDir[a.Dir]
		return k, false, ok
	case ioa.KindInternal:
		k, ok = s.chanLose[a.Name]
		return k, true, ok
	}
	return 0, false, false
}

// porSuppressed reports whether exploring a from a node whose incoming
// action was prev would leave the canonical interleaving order (see the
// file comment). Never true when either action is not an invisible
// channel action — in particular never for a violating successor, since
// monitor-visible actions are never invisible.
func (s *search) porSuppressed(prev, a ioa.Action) bool {
	ak, aLose, ok := s.porClass(a)
	if !ok {
		return false
	}
	pk, pLose, ok := s.porClass(prev)
	if !ok {
		return false
	}
	if ak < pk {
		return true
	}
	return ak == pk && aLose && pLose && a.Pkt.ID < prev.Pkt.ID
}
