package explore

import "repro/internal/ioa"

// Small constructors shared by the explore tests.

func trDir() ioa.Dir { return ioa.TR }

func sendPkt(id uint64) ioa.Action {
	return ioa.SendPkt(ioa.TR, ioa.Packet{ID: id, Header: "h", Payload: "m"})
}
