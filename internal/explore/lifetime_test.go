package explore

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/protocol"
)

// mplSearch runs the bounded search for Go-Back-N mod n over non-FIFO
// channels whose packets expire after l subsequent sends (the footnote-1
// maximum-packet-lifetime assumption).
func mplSearch(t *testing.T, n, l int) *Result {
	t.Helper()
	sys, err := core.NewSystem(protocol.NewGoBackN(n, 1), false,
		core.WithChannelOptions(channel.WithMaxLifetime(l)))
	if err != nil {
		t.Fatal(err)
	}
	// The wrap-around counterexamples found by TestExplorerFindsReorderingBug
	// need about 5 steps per message plus slack, so this depth suffices to
	// find every unsafe cell while keeping the safe cells' exhaustive
	// certificates tractable.
	res, err := BFS(sys, Config{
		Inputs:       pool(n + 1), // enough messages to wrap the sequence space
		Monitor:      NewSafetyMonitor(false),
		MaxDepth:     6*(n+1) + 4,
		MaxInTransit: l + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestE12LifetimeThreshold is experiment E12, the footnote-1 claim made
// precise by search: over arbitrarily-reordering channels, a bounded
// lifetime L (in sends) makes bounded sequence numbers safe once the
// modulus exceeds the lifetime — stale packets die before the sequence
// space can wrap — while L ≥ n stays unsafe. The explorer maps the
// threshold exactly.
func TestE12LifetimeThreshold(t *testing.T) {
	type cell struct {
		n, l     int
		wantSafe bool
	}
	// The exhaustive grid is kept where tractable (n ≤ 3): the threshold
	// shape — safe exactly when n > L — is fully visible there, and the
	// n = 4 cells exceed the default state budget in both directions.
	grid := []cell{
		{2, 1, true}, {2, 2, false}, {2, 3, false},
		{3, 1, true}, {3, 2, true}, {3, 3, false},
	}
	for _, c := range grid {
		c := c
		res := mplSearch(t, c.n, c.l)
		safe := res.Violation == nil
		if safe && !res.Exhausted {
			t.Errorf("n=%d L=%d: inconclusive (state budget exceeded)", c.n, c.l)
			continue
		}
		if safe != c.wantSafe {
			detail := "no violation"
			if !safe {
				detail = res.Violation.String()
			}
			t.Errorf("n=%d L=%d: safe=%v want %v (%s, %d states)", c.n, c.l, safe, c.wantSafe, detail, res.StatesExplored)
			continue
		}
		t.Logf("n=%d L=%d: safe=%v (%d states, exhausted=%t)", c.n, c.l, safe, res.StatesExplored, res.Exhausted)
	}
}

// TestLifetimeChannelExpiry unit-tests the WithMaxLifetime channel option
// directly.
func TestLifetimeChannelExpiry(t *testing.T) {
	c := channel.NewPermissive(
		// direction t→r with lifetime 2
		trDir(), channel.WithMaxLifetime(2))
	st := c.Start()
	var err error
	send := func(id uint64) {
		t.Helper()
		st, err = c.Step(st, sendPkt(id))
		if err != nil {
			t.Fatal(err)
		}
	}
	send(1)
	send(2)
	if got := st.(channel.State).InTransit(); len(got) != 2 {
		t.Fatalf("in transit = %v, want both", got)
	}
	send(3)
	got := st.(channel.State).InTransit()
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Fatalf("after third send, packet 1 should have expired: %v", got)
	}
}
