package explore

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

// replayViolation re-executes a violating schedule from the start state
// through the composition and a fresh monitor, returning the violation
// the replay produces (nil if the schedule is clean). Reduced searches
// must return traces that replay to the same property unreduced.
func replayViolation(t *testing.T, sys *core.System, mon Monitor, sched ioa.Schedule) *Violation {
	t.Helper()
	st := sys.Comp.Start()
	extSig := sys.Hidden.Signature()
	for _, a := range sched {
		var err error
		st, err = sys.Comp.Step(st, a)
		if err != nil {
			t.Fatalf("replaying %s: %v", a, err)
		}
		if extSig.ContainsExternal(a) {
			var v *Violation
			mon, v = mon.Step(a)
			if v != nil {
				return v
			}
		}
	}
	return nil
}

// TestReductionSoundnessMatrix runs every registered protocol over both
// channel kinds under four reduction settings and checks the invariants
// the reductions promise:
//
//   - identical verdict (violation found or not, same property);
//   - violating traces replay to the same violation unreduced;
//   - identical Exhausted/DepthLimited statuses;
//   - POR alone changes nothing observable (states byte-identical);
//   - symmetry explores at most as many states, and the combination
//     explores exactly what symmetry alone does.
func TestReductionSoundnessMatrix(t *testing.T) {
	type variant struct {
		name     string
		sym, por bool
	}
	variants := []variant{
		{"base", false, false},
		{"sym", true, false},
		{"por", false, true},
		{"both", true, true},
	}
	type workload struct {
		proto  string
		fifo   bool
		inputs []ioa.Action
		depth  int
		loss   bool
	}
	var loads []workload
	for _, name := range protocol.Names() {
		for _, fifo := range []bool{true, false} {
			loads = append(loads, workload{proto: name, fifo: fifo, inputs: pool(2), depth: 12})
		}
	}
	// Violation-bearing workloads: the reorder bug needs a sequence wrap,
	// the crash bug a receiver crash; plus a lossy load so POR's
	// same-channel lose ordering is exercised.
	loads = append(loads,
		workload{proto: "gbn", fifo: false, inputs: pool(3), depth: 26},
		workload{proto: "abp", fifo: true, inputs: pool(1, ioa.RT), depth: 20},
		workload{proto: "abp-stuck", fifo: true, inputs: pool(2), depth: 18},
		workload{proto: "abp", fifo: true, inputs: pool(2), depth: 12, loss: true},
		workload{proto: "stenning", fifo: false, inputs: pool(2), depth: 12, loss: true},
	)

	for _, w := range loads {
		w := w
		t.Run(fmt.Sprintf("%s/fifo=%t/loss=%t/d%d", w.proto, w.fifo, w.loss, w.depth), func(t *testing.T) {
			t.Parallel()
			p, err := protocol.ByName(w.proto, 4, 2)
			if err != nil {
				t.Fatal(err)
			}
			var sysOpts []core.SystemOption
			if w.loss {
				sysOpts = append(sysOpts, core.WithChannelOptions(channel.WithLoss()))
			}
			results := make(map[string]*Result, len(variants))
			for _, v := range variants {
				sys, err := core.NewSystem(p, w.fifo, sysOpts...)
				if err != nil {
					t.Fatal(err)
				}
				res, err := BFS(sys, Config{
					Inputs:       w.inputs,
					Monitor:      NewSafetyMonitor(true),
					MaxDepth:     w.depth,
					MaxInTransit: 2,
					AllowLoss:    w.loss,
					Symmetry:     v.sym,
					POR:          v.por,
				})
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				results[v.name] = res
				if res.Violation != nil {
					if got := replayViolation(t, sys, NewSafetyMonitor(true), res.Trace); got == nil || got.Property != res.Violation.Property {
						t.Errorf("%s: trace does not replay to %s (replay: %v)", v.name, res.Violation, got)
					}
				}
			}
			base := results["base"]
			for _, v := range variants[1:] {
				r := results[v.name]
				if (r.Violation == nil) != (base.Violation == nil) {
					t.Fatalf("%s verdict differs: %v vs base %v", v.name, r.Violation, base.Violation)
				}
				if r.Violation != nil && r.Violation.Property != base.Violation.Property {
					t.Errorf("%s property differs: %s vs base %s", v.name, r.Violation.Property, base.Violation.Property)
				}
				if r.Violation != nil && len(r.Trace) != len(base.Trace) {
					t.Errorf("%s shortest trace length differs: %d vs base %d", v.name, len(r.Trace), len(base.Trace))
				}
				if r.Exhausted != base.Exhausted || r.DepthLimited != base.DepthLimited {
					t.Errorf("%s status differs: exhausted=%t depthLimited=%t vs base %t/%t",
						v.name, r.Exhausted, r.DepthLimited, base.Exhausted, base.DepthLimited)
				}
			}
			if got, want := results["por"].StatesExplored, base.StatesExplored; got != want {
				t.Errorf("POR must not change the state count: got %d, base %d", got, want)
			}
			if got := results["sym"].StatesExplored; got > base.StatesExplored {
				t.Errorf("symmetry explored more states than base: %d > %d", got, base.StatesExplored)
			}
			if got, want := results["both"].StatesExplored, results["sym"].StatesExplored; got != want {
				t.Errorf("sym+por state count differs from sym alone: %d vs %d", got, want)
			}
		})
	}
}

// TestSymmetryReducesStenning pins the tentpole's point: the e11-class
// workload (stenning over reordering channels) must collapse strictly
// under symmetry reduction.
func TestSymmetryReducesStenning(t *testing.T) {
	run := func(sym bool) *Result {
		sys, err := core.NewSystem(protocol.NewStenning(), false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BFS(sys, Config{
			Inputs:       pool(3),
			Monitor:      NewSafetyMonitor(true),
			MaxDepth:     16,
			MaxInTransit: 3,
			Symmetry:     sym,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("unexpected violation: %s", res.Violation)
		}
		return res
	}
	base, sym := run(false), run(true)
	if sym.StatesExplored >= base.StatesExplored {
		t.Fatalf("symmetry did not reduce: %d >= %d", sym.StatesExplored, base.StatesExplored)
	}
	t.Logf("states %d -> %d (%.2fx)", base.StatesExplored, sym.StatesExplored,
		float64(base.StatesExplored)/float64(sym.StatesExplored))
}

// TestSymmetryEquivariance: renaming the pool's payload tokens must not
// change a symmetry-reduced search at all — the canonical state space is
// the quotient by exactly that renaming.
func TestSymmetryEquivariance(t *testing.T) {
	run := func(msgs []string) *Result {
		sys, err := core.NewSystem(protocol.NewStenning(), false)
		if err != nil {
			t.Fatal(err)
		}
		inputs := []ioa.Action{ioa.Wake(ioa.TR), ioa.Wake(ioa.RT)}
		for _, m := range msgs {
			inputs = append(inputs, ioa.SendMsg(ioa.TR, ioa.Message(m)))
		}
		res, err := BFS(sys, Config{
			Inputs:       inputs,
			Monitor:      NewSafetyMonitor(true),
			MaxDepth:     14,
			MaxInTransit: 2,
			Symmetry:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run([]string{"a", "b", "c"})
	b := run([]string{"zeta", "alpha", "omega"})
	if a.StatesExplored != b.StatesExplored {
		t.Fatalf("canonical state space depends on token spelling: %d vs %d", a.StatesExplored, b.StatesExplored)
	}
}

// TestSymmetryGuards: the symmetry flag must be inert (fall back to the
// unreduced search, not misbehave) for non-payload-opaque protocols and
// for pools with duplicate send_msg tokens.
func TestSymmetryGuards(t *testing.T) {
	t.Run("frag-not-opaque", func(t *testing.T) {
		run := func(sym bool) *Result {
			p, err := protocol.ByName("frag", 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := core.NewSystem(p, true)
			if err != nil {
				t.Fatal(err)
			}
			res, err := BFS(sys, Config{
				Inputs:       pool(2),
				Monitor:      NewSafetyMonitor(true),
				MaxDepth:     14,
				MaxInTransit: 2,
				Symmetry:     sym,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		if base, sym := run(false), run(true); base.StatesExplored != sym.StatesExplored {
			t.Fatalf("symmetry must be inert for frag: %d vs %d", sym.StatesExplored, base.StatesExplored)
		}
	})
	t.Run("duplicate-pool-tokens", func(t *testing.T) {
		inputs := []ioa.Action{
			ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
			ioa.SendMsg(ioa.TR, "a"), ioa.SendMsg(ioa.TR, "b"), ioa.SendMsg(ioa.TR, "a"),
		}
		if symPoolOK(inputs) {
			t.Fatal("symPoolOK accepted duplicate send_msg tokens")
		}
		run := func(sym bool) *Result {
			sys, err := core.NewSystem(protocol.NewStenning(), true)
			if err != nil {
				t.Fatal(err)
			}
			res, err := BFS(sys, Config{
				Inputs:       inputs,
				Monitor:      NewSafetyMonitor(true),
				MaxDepth:     12,
				MaxInTransit: 2,
				Symmetry:     sym,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		if base, sym := run(false), run(true); base.StatesExplored != sym.StatesExplored {
			t.Fatalf("symmetry must be inert for duplicate tokens: %d vs %d", sym.StatesExplored, base.StatesExplored)
		}
	})
}

// TestCanonFingerprintPermutationInvariant quick-checks the core
// symmetry property at the fingerprint level: applying a random
// bijective renaming of packet IDs and payload tokens to a channel
// history and a monitor history leaves the canonical fingerprints
// byte-identical.
func TestCanonFingerprintPermutationInvariant(t *testing.T) {
	const rounds = 40
	for seed := int64(0); seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		// Random bijections: IDs are permuted within a superset, payload
		// tokens renamed injectively.
		idPerm := rng.Perm(2 * n)
		renameID := func(id uint64) uint64 { return uint64(idPerm[id-1] + 1) }
		renameMsg := func(m ioa.Message) ioa.Message {
			if m == "" {
				return ""
			}
			return ioa.Message(fmt.Sprintf("tok-%s-%d", string(m), seed))
		}

		build := func(rename bool) ([]byte, []byte) {
			ch := channel.NewPermissive(ioa.TR)
			st := ch.Start()
			mon := NewSafetyMonitor(true)
			canon := ioa.NewCanon()
			for i := 1; i <= n; i++ {
				id := uint64(i)
				m := ioa.Message(fmt.Sprintf("m%d", i))
				if rename {
					id, m = renameID(id), renameMsg(m)
				}
				var err error
				st, err = ch.Step(st, ioa.SendPkt(ioa.TR, ioa.Packet{ID: id, Header: "data/0", Payload: m}))
				if err != nil {
					t.Fatal(err)
				}
				next, v := mon.Step(ioa.SendMsg(ioa.TR, m))
				if v != nil {
					t.Fatalf("unexpected violation: %v", v)
				}
				mon = next.(SafetyMonitor)
			}
			canon.Reset()
			chFP := st.(ioa.CanonFingerprinter).AppendCanonFingerprint(nil, canon)
			monFP := mon.AppendCanonFingerprint(nil, canon)
			return chFP, monFP
		}
		chA, monA := build(false)
		chB, monB := build(true)
		if string(chA) != string(chB) {
			t.Fatalf("seed %d: channel canonical fingerprint not invariant:\n%s\n%s", seed, chA, chB)
		}
		if string(monA) != string(monB) {
			t.Fatalf("seed %d: monitor canonical fingerprint not invariant:\n%s\n%s", seed, monA, monB)
		}
	}
}

// TestResumeRejectsReductionMismatch: a checkpoint written by an
// unreduced search must not resume under different reduction flags (and
// vice versa) — the seen-set keys and expansion order are incompatible.
func TestResumeRejectsReductionMismatch(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewStenning(), false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cfg := Config{
		Inputs:       pool(2),
		Monitor:      NewSafetyMonitor(true),
		MaxDepth:     10,
		MaxInTransit: 2,
		Checkpoint:   CheckpointOptions{Path: path, EveryLevels: 2},
	}
	if _, err := BFS(sys, cfg); err != nil {
		t.Fatal(err)
	}
	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, mis := range []struct {
		name     string
		sym, por bool
	}{{"symmetry", true, false}, {"por", false, true}, {"both", true, true}} {
		bad := cfg
		bad.Checkpoint = CheckpointOptions{}
		bad.Resume = ck
		bad.Symmetry, bad.POR = mis.sym, mis.por
		sys2, err := core.NewSystem(protocol.NewStenning(), false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := BFS(sys2, bad); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("resume with %s flipped: err = %v, want ErrCheckpointMismatch", mis.name, err)
		}
	}
}
