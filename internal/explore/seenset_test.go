package explore

import (
	"fmt"
	"math/bits"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"
)

// TestShardShiftDerivation pins the shard-selection arithmetic to the
// shard count: the shift used to be an independently hardcoded
// `sum >> (64-4)`, which would silently misroute every sum if seenShards
// changed. The derivation must agree with bits.Len and shardOf must land
// in range for sums across the whole 64-bit space.
func TestShardShiftDerivation(t *testing.T) {
	if got, want := seenShardBits, bits.Len(uint(seenShards-1)); got != want {
		t.Fatalf("seenShardBits = %d, want bits.Len(%d) = %d", got, seenShards-1, want)
	}
	if got, want := seenShardShift, uint(64-seenShardBits); got != want {
		t.Fatalf("seenShardShift = %d, want %d", got, want)
	}
	sums := []uint64{0, 1, 0xff, 1 << 32, 1<<63 - 1, 1 << 63, ^uint64(0)}
	// A deterministic sweep of the sum space: every shard must be hit and
	// no index may fall out of range.
	for i := 0; i < 1<<12; i++ {
		sums = append(sums, mix64(uint64(i)))
	}
	hit := make([]bool, seenShards)
	for _, sum := range sums {
		idx := shardOf(sum)
		if idx < 0 || idx >= seenShards {
			t.Fatalf("shardOf(%016x) = %d, out of [0,%d)", sum, idx, seenShards)
		}
		hit[idx] = true
		// The shard's documented range invariant: shard i holds exactly
		// the sums in [i<<shift, (i+1)<<shift).
		if lo := uint64(idx) << seenShardShift; sum < lo {
			t.Fatalf("shardOf(%016x) = %d but shard range starts at %016x", sum, idx, lo)
		}
	}
	for i, h := range hit {
		if !h {
			t.Errorf("shard %d never selected by the sweep", i)
		}
	}
}

// TestHash64NoPrefixAliasing pins the doc comment's claim: a key and any
// proper prefix of it, and a key and its zero-padded extension, never
// hash alike (the length and tail mixing exist for exactly this).
func TestHash64NoPrefixAliasing(t *testing.T) {
	seed := uint64(0xfeed_beef_1234_5678)
	prefix := func(key []byte, cut uint8) bool {
		if len(key) == 0 {
			return true
		}
		n := int(cut) % len(key) // proper prefix
		return hash64(seed, key) != hash64(seed, key[:n])
	}
	if err := quick.Check(prefix, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("prefix aliasing: %v", err)
	}
	zeroPad := func(key []byte, pad uint8) bool {
		padded := append(append([]byte(nil), key...), make([]byte, int(pad)+1)...)
		return hash64(seed, key) != hash64(seed, padded)
	}
	if err := quick.Check(zeroPad, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("zero-pad aliasing: %v", err)
	}
	// Seed independence: the same key under different seeds must not be
	// forced to the same hash (collision by coincidence is astronomically
	// unlikely for these fixed cases).
	if hash64(1, []byte("k")) == hash64(2, []byte("k")) {
		t.Error("seeds 1 and 2 collide on the same key")
	}
}

// TestHash64GoldenVectors pins the persisted (seed, key) → hash mapping.
// Checkpoints store the seed plus raw hash64 fingerprints; if this
// mapping ever changes, every existing checkpoint silently misresumes
// (old fingerprints stop matching re-hashed keys), so a change here must
// be a deliberate format break, not a refactoring accident.
func TestHash64GoldenVectors(t *testing.T) {
	vectors := []struct {
		seed uint64
		key  string
		want uint64
	}{
		{0, "", 0x0000000000000000},
		{0, "a", 0x788fdd762d725ed4},
		{0x9e3779b97f4a7c15, "", 0xe220a8397b1dcdaf},
		{0x9e3779b97f4a7c15, "abp|0|00", 0x4a9c89e1a1c0ae85},
		{0xdeadbeefcafebabe, "stenning∥residual|m|110", 0x5f69314d8ffa19ca},
		{42, "0123456789abcdef", 0xc60616e9a8d2cad3},      // exactly two 8-byte lanes
		{42, "0123456789abcdefg", 0x020bbcb0c56219ff},     // two lanes + 1-byte tail
		{1, string(make([]byte, 32)), 0x6a0045fc52609d2f}, // all-zero key, length mixed
	}
	for _, v := range vectors {
		if got := hash64(v.seed, []byte(v.key)); got != v.want {
			t.Errorf("hash64(%#x, %q) = %#016x, want %#016x", v.seed, v.key, got, v.want)
		}
	}
}

// TestHashesTrackedMatchesUntracked: run tracking is a pure
// representation change inside hashedSeen — the enumerated fingerprints
// (and hence checkpoint bytes) must be identical whether a barrier does
// the incremental tail merge or the full extract-and-sort, including
// across multiple interleaved barriers.
func TestHashesTrackedMatchesUntracked(t *testing.T) {
	const seed = 0x1234_5678_9abc_def0
	tracked := newHashedSeenSeeded(seed)
	tracked.trackRuns()
	untracked := newHashedSeenSeeded(seed)
	key := make([]byte, 0, 16)
	for round := 0; round < 4; round++ {
		for i := 0; i < 5000; i++ {
			key = fmt.Appendf(key[:0], "key-%d-%d", round, i%3777)
			a, b := tracked.Add(key), untracked.Add(key)
			if a != b {
				t.Fatalf("round %d key %q: tracked.Add=%t untracked.Add=%t", round, key, a, b)
			}
		}
		// A barrier per round: the tracked set merges its pending tail now,
		// the untracked one re-sorts from scratch; both must agree.
		got, want := tracked.hashes(), untracked.hashes()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: tracked hashes() diverges from untracked (%d vs %d sums)", round, len(got), len(want))
		}
		if tracked.Len() != untracked.Len() {
			t.Fatalf("round %d: Len %d vs %d", round, tracked.Len(), untracked.Len())
		}
	}
}

// TestMergeSortedInto exercises the in-place back-merge on edge shapes.
func TestMergeSortedInto(t *testing.T) {
	cases := []struct{ run, tail, want []uint64 }{
		{nil, []uint64{1, 3}, []uint64{1, 3}},
		{[]uint64{2}, nil, []uint64{2}},
		{[]uint64{1, 4, 9}, []uint64{2, 3, 10}, []uint64{1, 2, 3, 4, 9, 10}},
		{[]uint64{5, 6}, []uint64{1, 2}, []uint64{1, 2, 5, 6}},
		{[]uint64{1, 2}, []uint64{5, 6}, []uint64{1, 2, 5, 6}},
	}
	for _, c := range cases {
		got := mergeSortedInto(append([]uint64(nil), c.run...), c.tail)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("mergeSortedInto(%v, %v) = %v, want %v", c.run, c.tail, got, c.want)
		}
	}
}

// measureHeap reports the live-heap delta of build's allocations that
// survive (are retained by) its return value.
func measureHeap(t *testing.T, build func() any) int64 {
	t.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	keep := build()
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(keep)
	return int64(after.HeapAlloc) - int64(before.HeapAlloc)
}

// TestApproxBytesCalibrationHashed is the calibration behind
// hashedEntryBytes: a million-entry hashed set's ApproxBytes must track
// the real retained heap measured by runtime.ReadMemStats. The old
// constant (16) under-reported by more than 2x — and SeenSetBytes is the
// figure spill thresholds and capacity planning key off, so the estimate
// staying inside a ±50% band of reality is a correctness property of the
// number, not cosmetics.
func TestApproxBytesCalibrationHashed(t *testing.T) {
	if testing.Short() {
		t.Skip("million-entry calibration is not a -short test")
	}
	const n = 1 << 20
	var set *hashedSeen
	measured := measureHeap(t, func() any {
		set = newHashedSeenSeeded(7)
		for i := 0; i < n; i++ {
			set.addSum(mix64(uint64(i)))
		}
		return set
	})
	approx := set.ApproxBytes()
	if set.Len() != n {
		t.Fatalf("Len = %d, want %d", set.Len(), n)
	}
	ratio := float64(approx) / float64(measured)
	t.Logf("hashed: measured %d B (%.1f B/entry), ApproxBytes %d B (%d B/entry), ratio %.2f",
		measured, float64(measured)/n, approx, approx/n, ratio)
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("ApproxBytes %d is off from measured %d by %.2fx (want within [0.5, 1.5]); recalibrate hashedEntryBytes", approx, measured, ratio)
	}
}

// TestApproxBytesCalibrationExact calibrates exactEntryOverhead the same
// way, with realistic fingerprint-key lengths.
func TestApproxBytesCalibrationExact(t *testing.T) {
	if testing.Short() {
		t.Skip("bulk calibration is not a -short test")
	}
	const n = 1 << 18
	var set *exactSeen
	measured := measureHeap(t, func() any {
		set = newExactSeen()
		key := make([]byte, 0, 64)
		for i := 0; i < n; i++ {
			key = fmt.Appendf(key[:0], "s0∥pend:%d|mon:%d|1010", i, i%97)
			set.Add(key)
		}
		return set
	})
	approx := set.ApproxBytes()
	if set.Len() != n {
		t.Fatalf("Len = %d, want %d", set.Len(), n)
	}
	ratio := float64(approx) / float64(measured)
	t.Logf("exact: measured %d B (%.1f B/entry), ApproxBytes %d B (%d B/entry), ratio %.2f",
		measured, float64(measured)/n, approx, approx/n, ratio)
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("ApproxBytes %d is off from measured %d by %.2fx (want within [0.5, 1.5]); recalibrate exactEntryOverhead", approx, measured, ratio)
	}
}
