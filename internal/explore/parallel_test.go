package explore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

// searchCase is one (system, config) pair used by the equivalence tests:
// two exhaustive verifications and the two impossibility-phenomenon
// violation searches, so both the "covered everything" and the
// "short-circuited on a violation" paths are exercised.
type searchCase struct {
	name      string
	fifo      bool
	proto     func() core.Protocol
	cfg       Config
	violating bool
}

func searchCases() []searchCase {
	return []searchCase{
		{
			name:  "verify-gbn-fifo",
			fifo:  true,
			proto: func() core.Protocol { return protocol.NewGoBackN(2, 1) },
			cfg: Config{
				Inputs: pool(2), Monitor: NewSafetyMonitor(true),
				MaxDepth: 22, MaxInTransit: 2,
			},
		},
		{
			name:  "verify-nv-crashes",
			fifo:  true,
			proto: protocol.NewNonVolatile,
			cfg: Config{
				Inputs: pool(1, ioa.TR, ioa.RT), Monitor: NewSafetyMonitor(true),
				MaxDepth: 20, MaxInTransit: 2,
			},
		},
		{
			name:  "find-reordering-bug",
			fifo:  false,
			proto: func() core.Protocol { return protocol.NewGoBackN(2, 1) },
			cfg: Config{
				Inputs: pool(3), Monitor: NewSafetyMonitor(false),
				MaxDepth: 26, MaxInTransit: 3,
			},
			violating: true,
		},
		{
			name:  "find-crash-bug",
			fifo:  true,
			proto: protocol.NewABP,
			cfg: Config{
				Inputs: pool(1, ioa.RT), Monitor: NewSafetyMonitor(false),
				MaxDepth: 20, MaxInTransit: 2,
			},
			violating: true,
		},
	}
}

func runCase(t *testing.T, c searchCase, mutate func(*Config)) *Result {
	t.Helper()
	sys, err := core.NewSystem(c.proto(), c.fifo)
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.cfg
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := BFS(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.violating != (res.Violation != nil) {
		t.Fatalf("%s: violation = %v, want violating=%t", c.name, res.Violation, c.violating)
	}
	return res
}

// TestParallelMatchesSequential: because BFS levels are barriers, worker
// count must not change what is explored. Exhaustive searches must agree
// exactly on StatesExplored/DepthReached/Exhausted; violating searches
// must agree on the property and on the trace length (the shortest-
// counterexample guarantee — the specific trace may differ, since workers
// race within the violating level). Run with -race this doubles as the
// explorer's data-race test.
func TestParallelMatchesSequential(t *testing.T) {
	for _, c := range searchCases() {
		t.Run(c.name, func(t *testing.T) {
			base := runCase(t, c, func(cfg *Config) { cfg.Workers = 1 })
			for _, w := range []int{2, 4, 8} {
				res := runCase(t, c, func(cfg *Config) { cfg.Workers = w })
				if c.violating {
					if res.Violation.Property != base.Violation.Property {
						t.Errorf("workers=%d: property %s, want %s", w, res.Violation.Property, base.Violation.Property)
					}
					if len(res.Trace) != len(base.Trace) {
						t.Errorf("workers=%d: trace length %d, want %d", w, len(res.Trace), len(base.Trace))
					}
					continue
				}
				if res.StatesExplored != base.StatesExplored ||
					res.DepthReached != base.DepthReached ||
					res.Exhausted != base.Exhausted {
					t.Errorf("workers=%d: (states=%d depth=%d exhausted=%t), want (%d, %d, %t)",
						w, res.StatesExplored, res.DepthReached, res.Exhausted,
						base.StatesExplored, base.DepthReached, base.Exhausted)
				}
			}
		})
	}
}

// TestHashedDedupMatchesExact is the soundness guard for the 64-bit
// hashed seen-set: on every standard case the hashed and the exact
// (full-key) sets explore identical state counts and depths and reach the
// same verdict. A hash collision would surface here as a StatesExplored
// mismatch. It also pins down the point of the hashed set: bytes per
// state must be several times lower than with exact keys.
func TestHashedDedupMatchesExact(t *testing.T) {
	for _, c := range searchCases() {
		t.Run(c.name, func(t *testing.T) {
			exact := runCase(t, c, func(cfg *Config) { cfg.ExactDedup = true })
			hashed := runCase(t, c, nil)
			if hashed.StatesExplored != exact.StatesExplored ||
				hashed.DepthReached != exact.DepthReached ||
				hashed.Exhausted != exact.Exhausted {
				t.Errorf("hashed (states=%d depth=%d exhausted=%t) != exact (%d, %d, %t)",
					hashed.StatesExplored, hashed.DepthReached, hashed.Exhausted,
					exact.StatesExplored, exact.DepthReached, exact.Exhausted)
			}
			if c.violating {
				if hashed.Violation.Property != exact.Violation.Property {
					t.Errorf("hashed violation %s != exact %s", hashed.Violation, exact.Violation)
				}
				if len(hashed.Trace) != len(exact.Trace) {
					t.Errorf("hashed trace length %d != exact %d", len(hashed.Trace), len(exact.Trace))
				}
			}
			if hashed.SeenSetBytes <= 0 || exact.SeenSetBytes <= 0 {
				t.Fatalf("seen-set accounting missing: hashed=%d exact=%d", hashed.SeenSetBytes, exact.SeenSetBytes)
			}
			ratio := float64(exact.SeenSetBytes) / float64(hashed.SeenSetBytes)
			t.Logf("states=%d seen-set bytes: exact=%d hashed=%d (%.1fx)",
				hashed.StatesExplored, exact.SeenSetBytes, hashed.SeenSetBytes, ratio)
			if ratio < 3 {
				t.Errorf("hashed seen-set only %.1fx smaller than exact, want ≥ 3x", ratio)
			}
		})
	}
}

// TestSeenSetConcurrent hammers both seen-set implementations from many
// goroutines with overlapping key streams: every key must be admitted
// exactly once in total, and Len must agree. Meaningful under -race.
func TestSeenSetConcurrent(t *testing.T) {
	const (
		goroutines = 8
		keys       = 4000
	)
	for _, tc := range []struct {
		name string
		set  seenSet
	}{
		{"hashed", newHashedSeen()},
		{"exact", newExactSeen()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			admitted := make([]int64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					buf := make([]byte, 0, 32)
					// Each goroutine offers every key; only one wins each.
					for i := 0; i < keys; i++ {
						buf = fmt.Appendf(buf[:0], "state-%d-∥-%d", i, i%7)
						if tc.set.Add(buf) {
							admitted[g]++
						}
					}
				}(g)
			}
			wg.Wait()
			var total int64
			for _, n := range admitted {
				total += n
			}
			if total != keys {
				t.Errorf("admitted %d keys total, want %d", total, keys)
			}
			if tc.set.Len() != keys {
				t.Errorf("Len() = %d, want %d", tc.set.Len(), keys)
			}
			if tc.set.ApproxBytes() <= 0 {
				t.Errorf("ApproxBytes() = %d, want > 0", tc.set.ApproxBytes())
			}
		})
	}
}
