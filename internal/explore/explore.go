// Package explore is a bounded explicit-state model checker for composed
// data link systems: it enumerates every reachable state of D(A) under a
// chosen environment-input pool and scheduling nondeterminism, checking
// safety monitors on every path.
//
// It complements the adversary package: the adversaries *construct* the
// paper's counterexample executions from the proofs, while the explorer
// *searches* for violations exhaustively. For small instances the two
// agree — the explorer finds reordering counterexamples against
// bounded-header protocols over C̄ (Theorem 8.5's phenomenon) and finds
// crash counterexamples against crashing protocols over Ĉ (Theorem 7.5's
// phenomenon), and it verifies exhaustively that no safety violation is
// reachable for the positive configurations (Stenning over C̄, sliding
// windows over Ĉ) within the explored bound.
package explore

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
)

// Monitor is an online safety checker over data-link behaviors. Monitors
// must be value-like: Step returns a new monitor. The fingerprint
// contributes to state deduplication, so two search nodes are merged only
// when both the system state and the monitor state agree.
type Monitor interface {
	// Step observes one external action and returns the successor monitor
	// and a violation if the property just failed.
	Step(a ioa.Action) (Monitor, *Violation)
	// Fingerprint canonically encodes the monitor state.
	Fingerprint() string
}

// Violation reports a safety failure found during exploration.
type Violation struct {
	Property string
	Detail   string
}

func (v Violation) String() string { return v.Property + ": " + v.Detail }

// Config parameterises a search.
type Config struct {
	// Inputs is the pool of environment inputs; each may be injected once,
	// in pool order relative to its duplicates but freely interleaved with
	// everything else. A typical pool is wake, wake, then a few send_msg
	// and crash events.
	Inputs []ioa.Action
	// Monitor is the safety property to check (required).
	Monitor Monitor
	// MaxDepth bounds the path length (0 means DefaultMaxDepth).
	MaxDepth int
	// MaxStates bounds the number of distinct explored nodes (0 means
	// DefaultMaxStates); exceeding it stops the search with Exhausted=false.
	MaxStates int
	// MaxInTransit, when positive, prunes locally-controlled send_pkt
	// actions that would exceed this many undelivered packets per channel.
	// Pruning restricts the explored subspace (found violations remain
	// real), but keeps retransmission-based protocols finite-state.
	MaxInTransit int
	// AllowLoss explores internal lose actions of lossy channels.
	AllowLoss bool
}

// Default search bounds.
const (
	DefaultMaxDepth  = 40
	DefaultMaxStates = 1 << 20
)

// Result reports a search outcome.
type Result struct {
	// Violation is nil if no safety failure was found.
	Violation *Violation
	// Trace is a schedule reaching the violation (inputs included), nil
	// when Violation is nil.
	Trace ioa.Schedule
	// StatesExplored counts distinct (state, monitor, inputs-used) nodes.
	StatesExplored int
	// Exhausted reports that the entire bounded space was covered: no node
	// was dropped for exceeding MaxStates. Together with Violation == nil
	// it is a bounded verification certificate.
	Exhausted bool
	// DepthReached is the longest path explored.
	DepthReached int
}

// ErrNoMonitor is returned when Config.Monitor is nil.
var ErrNoMonitor = errors.New("explore: config needs a monitor")

// node is a search frontier entry.
type node struct {
	state   ioa.State
	monitor Monitor
	used    []bool // which pool inputs have been injected
	depth   int
	// parent chain for trace reconstruction
	parent *node
	action ioa.Action
}

// dedupKey identifies nodes with indistinguishable futures: the protocol
// automata contribute their exact state, the channels only their residual
// (deliverable packets — delivered, lost and FIFO-blocked entries can
// never matter again, and packet IDs are analysis labels), plus the
// monitor state and the set of remaining inputs. Merging on this key is
// sound because the monitor never inspects packet identities.
func dedupKey(sys *core.System, n *node) (string, error) {
	cs, ok := n.state.(ioa.CompositeState)
	if !ok {
		return "", fmt.Errorf("%w: want CompositeState, got %T", ioa.ErrBadState, n.state)
	}
	var b strings.Builder
	for i, comp := range sys.Comp.Components() {
		if i > 0 {
			b.WriteString("∥")
		}
		if ch, isChan := comp.(*channel.Channel); isChan {
			res, err := ch.Residual(cs.Parts[i])
			if err != nil {
				return "", err
			}
			b.WriteString(res)
			continue
		}
		b.WriteString(cs.Parts[i].Fingerprint())
	}
	b.WriteByte('|')
	b.WriteString(n.monitor.Fingerprint())
	b.WriteByte('|')
	for _, u := range n.used {
		if u {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String(), nil
}

func (n *node) trace() ioa.Schedule {
	var rev ioa.Schedule
	for cur := n; cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.action)
	}
	out := make(ioa.Schedule, len(rev))
	for i := range rev {
		out[len(rev)-1-i] = rev[i]
	}
	return out
}

// BFS explores the system breadth-first from its start state. The returned
// trace (if any) is a shortest violating schedule within the explored
// space.
func BFS(sys *core.System, cfg Config) (*Result, error) {
	if cfg.Monitor == nil {
		return nil, ErrNoMonitor
	}
	maxDepth := cfg.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}

	extSig := sys.Hidden.Signature()
	start := &node{
		state:   sys.Comp.Start(),
		monitor: cfg.Monitor,
		used:    make([]bool, len(cfg.Inputs)),
	}
	startKey, err := dedupKey(sys, start)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{startKey: true}
	frontier := []*node{start}
	res := &Result{Exhausted: true, StatesExplored: 1}

	for len(frontier) > 0 {
		next := frontier[:0:0]
		for _, cur := range frontier {
			if cur.depth > res.DepthReached {
				res.DepthReached = cur.depth
			}
			if cur.depth >= maxDepth {
				continue
			}
			succ, err := expand(sys, cfg, cur, extSig)
			if err != nil {
				return nil, err
			}
			for _, nd := range succ {
				if nd.violation != nil {
					res.Violation = nd.violation
					res.Trace = nd.node.trace()
					return res, nil
				}
				k, err := dedupKey(sys, nd.node)
				if err != nil {
					return nil, err
				}
				if seen[k] {
					continue
				}
				if res.StatesExplored >= maxStates {
					res.Exhausted = false
					continue
				}
				seen[k] = true
				res.StatesExplored++
				next = append(next, nd.node)
			}
		}
		frontier = next
	}
	return res, nil
}

// succNode pairs a successor with a violation detected on its incoming
// action.
type succNode struct {
	node      *node
	violation *Violation
}

// expand computes all successors of a node: every unused pool input (the
// first unused instance of each distinct action) and every eligible
// enabled locally-controlled action.
//
// Packet IDs are assigned canonically as the per-channel send index
// ((PL2)'s uniqueness is per channel direction): structurally identical
// states then have identical fingerprints regardless of the path taken,
// which is what makes state deduplication effective — and sound, since
// the IDs carry no information a protocol may use.
func expand(sys *core.System, cfg Config, cur *node, extSig ioa.Signature) ([]succNode, error) {
	var out []succNode
	apply := func(a ioa.Action, usedIdx int) error {
		if a.Kind == ioa.KindSendPkt && a.Pkt.ID == 0 {
			cs, err := sys.ChannelState(cur.state, a.Dir)
			if err != nil {
				return err
			}
			a.Pkt.ID = uint64(cs.SentCount() + 1)
		}
		st, err := sys.Comp.Step(cur.state, a)
		if err != nil {
			return fmt.Errorf("explore: applying %s: %w", a, err)
		}
		mon := cur.monitor
		var viol *Violation
		if extSig.ContainsExternal(a) {
			mon, viol = mon.Step(a)
		}
		used := cur.used
		if usedIdx >= 0 {
			used = append([]bool(nil), cur.used...)
			used[usedIdx] = true
		}
		out = append(out, succNode{
			node:      &node{state: st, monitor: mon, used: used, depth: cur.depth + 1, parent: cur, action: a},
			violation: viol,
		})
		return nil
	}

	// Environment inputs: one successor per distinct unused pool action.
	tried := map[ioa.Action]bool{}
	for i, in := range cfg.Inputs {
		if cur.used[i] || tried[in] {
			continue
		}
		tried[in] = true
		if err := apply(in, i); err != nil {
			return nil, err
		}
	}

	// Locally-controlled actions.
	for _, a := range sys.Comp.Enabled(cur.state) {
		if isLose(a) && !cfg.AllowLoss {
			continue
		}
		if cfg.MaxInTransit > 0 && a.Kind == ioa.KindSendPkt {
			pending, err := sys.InTransit(cur.state, a.Dir)
			if err != nil {
				return nil, err
			}
			if len(pending) >= cfg.MaxInTransit {
				continue
			}
		}
		if err := apply(a, -1); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func isLose(a ioa.Action) bool {
	return a.Kind == ioa.KindInternal && strings.HasPrefix(a.Name, "lose")
}
