// Package explore is a bounded explicit-state model checker for composed
// data link systems: it enumerates every reachable state of D(A) under a
// chosen environment-input pool and scheduling nondeterminism, checking
// safety monitors on every path.
//
// It complements the adversary package: the adversaries *construct* the
// paper's counterexample executions from the proofs, while the explorer
// *searches* for violations exhaustively. For small instances the two
// agree — the explorer finds reordering counterexamples against
// bounded-header protocols over C̄ (Theorem 8.5's phenomenon) and finds
// crash counterexamples against crashing protocols over Ĉ (Theorem 7.5's
// phenomenon), and it verifies exhaustively that no safety violation is
// reachable for the positive configurations (Stenning over C̄, sliding
// windows over Ĉ) within the explored bound.
//
// The search is a level-synchronous parallel BFS: each depth level is a
// barrier, and within a level a pool of Config.Workers goroutines expands
// frontier nodes concurrently, deduplicating successors through a sharded
// hashed seen-set (see seenset.go) and building dedup keys into per-worker
// reused buffers via the AppendFingerprint fast paths. Because levels
// remain barriers, every node at depths below the first violating level is
// fully expanded before that level is entered, so a returned trace is a
// shortest violating schedule regardless of worker count.
//
// Two opt-in representations let searches scale past RAM: Config.SpillDir
// moves the cold majority of the seen-set into sorted run files on disk
// (spill.go), and Config.Arena re-lays each frontier level as flat slabs
// with 32-bit parent offsets instead of one heap node per state
// (arena.go). Both are pure representation changes: verdicts, traces,
// state counts and checkpoint files are identical to the in-memory
// defaults.
package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/obs"
)

// Monitor is an online safety checker over data-link behaviors. Monitors
// must be value-like: Step returns a new monitor. The fingerprint
// contributes to state deduplication, so two search nodes are merged only
// when both the system state and the monitor state agree. Monitors may
// additionally implement ioa.AppendFingerprinter; the explorer then builds
// dedup keys without intermediate string allocations.
type Monitor interface {
	// Step observes one external action and returns the successor monitor
	// and a violation if the property just failed.
	Step(a ioa.Action) (Monitor, *Violation)
	// Fingerprint canonically encodes the monitor state.
	Fingerprint() string
}

// Violation reports a safety failure found during exploration.
type Violation struct {
	Property string
	Detail   string
}

func (v Violation) String() string { return v.Property + ": " + v.Detail }

// Config parameterises a search.
type Config struct {
	// Inputs is the pool of environment inputs; each may be injected once,
	// in pool order relative to its duplicates but freely interleaved with
	// everything else. A typical pool is wake, wake, then a few send_msg
	// and crash events.
	Inputs []ioa.Action
	// Monitor is the safety property to check (required).
	Monitor Monitor
	// MaxDepth bounds the path length (0 means DefaultMaxDepth).
	MaxDepth int
	// MaxStates bounds the number of distinct explored nodes (0 means
	// DefaultMaxStates); exceeding it stops the search with Exhausted=false.
	MaxStates int
	// MaxInTransit, when positive, prunes locally-controlled send_pkt
	// actions that would exceed this many undelivered packets per channel.
	// Pruning restricts the explored subspace (found violations remain
	// real), but keeps retransmission-based protocols finite-state.
	MaxInTransit int
	// AllowLoss explores internal lose actions of lossy channels.
	AllowLoss bool
	// Workers is the number of goroutines expanding each BFS level; 0 or 1
	// runs sequentially. Levels are barriers, so the depth of the first
	// violation — and hence the returned trace length — does not depend on
	// Workers; for exhaustive (violation-free, within-budget) searches,
	// StatesExplored and DepthReached are also Workers-independent.
	Workers int
	// ExactDedup deduplicates on full fingerprint keys instead of 64-bit
	// hashes: the collision-paranoid escape hatch, at ~key-length bytes
	// per state instead of 8 (see seenset.go for the collision analysis).
	// Incompatible with SpillDir (runs are fixed-width sum files).
	ExactDedup bool
	// SpillDir, when non-empty, selects the disk-spill seen-set: the
	// in-memory front is bounded by SpillThreshold and cold fingerprints
	// live in sorted run files under this directory (which must exist and
	// be writable; run files are removed when the search ends). A pure
	// representation change — verdicts, traces, state counts and
	// checkpoints are identical to the in-memory hashed set. See spill.go.
	SpillDir string
	// SpillThreshold is the maximum in-memory front size (fingerprints)
	// before a spill; 0 means DefaultSpillThreshold. Only meaningful with
	// SpillDir.
	SpillThreshold int
	// Arena re-lays each frontier level as flat slabs (states, monitors,
	// bit-packed used maps) with 32-bit parent offsets instead of one
	// heap node per state; retired levels keep only the action/parent
	// trace skeleton. A pure representation change; see arena.go.
	Arena bool
	// Symmetry enables symmetry reduction: dedup keys canonicalise payload
	// tokens and packet IDs to first-use order, and the inputs-used bitmap
	// collapses to per-class counts, so states differing only by a
	// bijective payload/ID renaming merge. Effective only when the
	// protocol claims Props.PayloadOpaque and the pool's send_msg tokens
	// are pairwise distinct per direction (both checked at BFS start;
	// otherwise the flag is ignored and the search runs unreduced). See
	// reduction.go for the soundness argument.
	Symmetry bool
	// POR enables partial-order reduction: commuting invisible channel
	// actions (deliveries and losses on different channels, losses of
	// different packets on one channel) are explored in one canonical
	// order instead of all interleavings. Transitions are pruned, states
	// are not: the reachable state set and per-depth admission are
	// provably unchanged (see reduction.go), so verdicts, shortest traces
	// and exhausted/depth-limited statuses are identical.
	POR bool
	// Metrics, when non-nil, receives the explorer's counters, gauges
	// and histograms (see obs.go for the name inventory). Nil disables
	// metrics at zero hot-path cost.
	Metrics *obs.Registry
	// Trace, when non-nil, receives structured events: one per BFS
	// level, plus seen-set occupancy, the violation (schedule embedded)
	// and a final summary.
	Trace *obs.Trace
	// OnLevel, when non-nil, is called after every completed BFS level —
	// the hook progress reporters hang off for long searches.
	OnLevel func(LevelStats)
	// Checkpoint configures periodic durable snapshots of the search,
	// written at level barriers (see checkpoint.go). The zero value
	// disables checkpointing.
	Checkpoint CheckpointOptions
	// Resume, when non-nil, restores the search from a decoded checkpoint
	// instead of the start state. The rest of the Config must describe the
	// same search the checkpoint was taken under (validated by digest);
	// Workers may differ, as may SpillDir/SpillThreshold/Arena — they are
	// representation choices, not search parameters. Resuming and running
	// to the end yields the same Result the uninterrupted run would have
	// produced.
	Resume *Checkpoint
	// Stop, when non-nil, requests a graceful stop: once the channel is
	// closed the search finishes the in-flight level, writes a final
	// checkpoint (when Checkpoint is configured), sets Result.Interrupted
	// and returns. Checked only at level barriers, so a stopped search is
	// always resumable from a complete cut.
	Stop <-chan struct{}
}

// Default search bounds.
const (
	DefaultMaxDepth  = 40
	DefaultMaxStates = 1 << 20
)

// SpillReport summarises disk-spill seen-set activity for a finished
// search (Result.Spill; nil unless Config.SpillDir was set).
type SpillReport struct {
	// Spills counts spill events (front flushed to disk).
	Spills int64
	// Merges counts compacting run merges.
	Merges int64
	// Probes counts run-file lookups that got past the Bloom filter.
	Probes int64
	// Runs is the number of live run files at the end.
	Runs int
	// SpilledSums is the number of fingerprints on disk at the end.
	SpilledSums int64
	// DiskBytes is the total size of the live run files at the end.
	DiskBytes int64
}

// Result reports a search outcome.
type Result struct {
	// Violation is nil if no safety failure was found.
	Violation *Violation
	// Trace is a schedule reaching the violation (inputs included), nil
	// when Violation is nil.
	Trace ioa.Schedule
	// StatesExplored counts distinct (state, monitor, inputs-used) nodes.
	StatesExplored int
	// Exhausted reports that the entire bounded space was covered: no node
	// was dropped for exceeding MaxStates and the search was not
	// interrupted. "Exhausted" always means exhausted *within* MaxDepth —
	// check DepthLimited to see whether the depth bound was the binding
	// constraint. Together with Violation == nil it is a bounded
	// verification certificate.
	Exhausted bool
	// DepthLimited reports that the search stopped at MaxDepth with
	// unexpanded frontier nodes remaining: states beyond the depth bound
	// exist but were not explored, so the Exhausted certificate is
	// conditional on the bound.
	DepthLimited bool
	// Interrupted reports that the search stopped early at a level
	// barrier because Config.Stop was closed; Exhausted is then false and
	// the partial counters reflect the completed levels only.
	Interrupted bool
	// DepthReached is the longest path explored.
	DepthReached int
	// SeenSetBytes approximates the heap held by the dedup set: the
	// memory-per-state figure the hashed seen-set exists to shrink. In
	// spill mode this is the bounded in-memory footprint; the disk side
	// is in Spill.
	SeenSetBytes int64
	// Spill summarises disk-spill activity (nil unless Config.SpillDir
	// was set).
	Spill *SpillReport
}

// ErrNoMonitor is returned when Config.Monitor is nil.
var ErrNoMonitor = errors.New("explore: config needs a monitor")

// ErrSpillConfig is returned for spill configurations the explorer
// cannot honour.
var ErrSpillConfig = errors.New("explore: invalid spill configuration")

// node is a search frontier entry in classic (non-arena) mode, and the
// carrier the checkpoint replay path reconstructs frontiers into.
type node struct {
	state   ioa.State
	monitor Monitor
	used    []bool // which pool inputs have been injected
	depth   int
	// parent chain for trace reconstruction
	parent *node
	action ioa.Action
}

func (n *node) trace() ioa.Schedule {
	return n.appendTrace(nil)
}

// appendTrace appends the root-to-node schedule to dst, walking the
// parent chain twice — once to size, once to fill backwards — so bulk
// callers (checkpoint snapshots) can pack many traces into one shared
// arena without per-node garbage.
func (n *node) appendTrace(dst ioa.Schedule) ioa.Schedule {
	steps := 0
	for cur := n; cur.parent != nil; cur = cur.parent {
		steps++
	}
	start := len(dst)
	dst = slices.Grow(dst, steps)[:start+steps]
	k := start + steps - 1
	for cur := n; cur.parent != nil; cur = cur.parent {
		dst[k] = cur.action
		k--
	}
	return dst
}

// search carries the per-run state shared by the level workers.
type search struct {
	sys    *core.System
	cfg    Config
	extSig ioa.Signature
	// comps caches Comp.Components() (which copies per call), and chans
	// caches the channel down-casts, so the per-state dedup loop does no
	// repeated interface work.
	comps []ioa.Automaton
	chans []*channel.Channel
	// dupOf[i] is the index of the previous pool input equal to Inputs[i],
	// or -1: the "first unused instance per distinct action" rule walks
	// this chain instead of building a per-node map.
	dupOf []int

	maxDepth  int
	maxStates int64
	digest    string // configuration digest binding checkpoints to this search
	seen      seenSet
	count     atomic.Int64 // distinct states admitted (start included)
	truncated atomic.Bool  // a fresh state was dropped for budget

	// arena selects the flat-slab frontier representation; usedStride is
	// the bit-packed used-bitmap width in words.
	arena      bool
	usedStride int

	// Reduction state (see reduction.go). sym is the EFFECTIVE symmetry
	// switch: Config.Symmetry gated on the protocol's PayloadOpaque claim
	// and on pairwise-distinct send_msg pool tokens. classOf collapses the
	// inputs-used bitmap: pool entries in the same class are
	// interchangeable under payload renaming, so only per-class counts
	// enter the canonical dedup key.
	sym        bool
	por        bool
	classOf    []int
	numClasses int
	// chanByDir and chanLose classify invisible channel actions for POR:
	// component index of the channel a delivery (by direction) or a loss
	// (by internal action name) belongs to.
	chanByDir map[ioa.Dir]int
	chanLose  map[string]int
	// Per-level reduction tallies, swapped out at each level barrier into
	// the obs counters and the explore.level trace event.
	levelRenames atomic.Int64
	levelPruned  atomic.Int64

	// ins holds the resolved observability handles (all nil when
	// Config.Metrics is nil — the zero-cost disabled mode); began is the
	// search start time for trace timestamps and progress rates;
	// spillPrev is observeSpill's last stats snapshot for counter deltas.
	ins       instruments
	began     time.Time
	spillPrev spillStats
}

// nodeView is the representation-independent read view of one frontier
// node: what expand and the dedup-key builder need, whether the node
// lives as a heap *node or as row i of an arena level.
type nodeView struct {
	state   ioa.State
	monitor Monitor
	used    []bool
	depth   int
	action  ioa.Action
}

// succ is one successor produced by expand: a value, not a node. The
// admitting side decides the representation — a heap node with a parent
// pointer (classic) or a slab row with a parent offset (arena) — and
// only for successors that survive dedup, so the expansion hot path
// allocates no per-successor objects in either mode.
type succ struct {
	state   ioa.State
	monitor Monitor
	action  ioa.Action
	// usedIdx is the pool input injected by action, or -1; the successor's
	// used bitmap is the parent's with this bit set, materialised only on
	// admission.
	usedIdx   int
	violation *Violation
}

// levelRef points at the current BFS level in either representation;
// exactly one field is set (arena wins as discriminator).
type levelRef struct {
	classic []*node
	arena   *arenaLevel
}

func (l levelRef) size() int {
	if l.arena != nil {
		return l.arena.size()
	}
	return len(l.classic)
}

func (l levelRef) depth() int {
	if l.arena != nil {
		return l.arena.depth
	}
	if len(l.classic) > 0 {
		return l.classic[0].depth
	}
	return 0
}

// view materialises node i; scratch is the caller's reused unpack buffer
// (used and returned only in arena mode).
func (l levelRef) view(i int, scratch []bool) (nodeView, []bool) {
	if l.arena != nil {
		a := l.arena
		scratch = a.unpackUsed(i, scratch)
		return nodeView{state: a.states[i], monitor: a.monitors[i], used: scratch, depth: a.depth, action: a.actions[i]}, scratch
	}
	n := l.classic[i]
	return nodeView{state: n.state, monitor: n.monitor, used: n.used, depth: n.depth, action: n.action}, scratch
}

// schedule reconstructs the schedule reaching node i (a fresh slice the
// caller owns).
func (l levelRef) schedule(i int) ioa.Schedule {
	return l.appendSchedule(nil, i)
}

// appendSchedule appends node i's schedule to dst (see appendTrace).
func (l levelRef) appendSchedule(dst ioa.Schedule, i int) ioa.Schedule {
	if l.arena != nil {
		return l.arena.appendTraceOf(dst, i)
	}
	return l.classic[i].appendTrace(dst)
}

// workerBufs is one worker's reused scratch: the dedup-key buffer, the
// expand successor buffer, and the worker's slice of the next frontier
// (next in classic mode, batch in arena mode). All persist across
// levels, so steady-state expansion allocates nothing per successor.
type workerBufs struct {
	key  []byte
	succ []succ
	next []*node
	// batch is the arena-mode admission slab (unused otherwise); usedView
	// is the arena-mode bitmap unpack scratch.
	batch    arenaBatch
	usedView []bool
	// canon is the worker's token-canonicalisation table (nil unless
	// symmetry reduction is active); classCnt is its per-class used-count
	// scratch. Both are reused across every key the worker builds.
	canon    *ioa.Canon
	classCnt []int
}

// foundViolation is a violation found while expanding a level, tagged with
// its (frontier index, successor index) so the earliest-in-frontier-order
// one can be preferred; with Workers == 1 that is exactly the violation a
// sequential scan finds first. The trace is reconstructed at the barrier
// as the parent's schedule plus the violating action.
type foundViolation struct {
	violation *Violation
	action    ioa.Action
	frontIdx  int
	succIdx   int
}

// BFS explores the system breadth-first from its start state. The returned
// trace (if any) is a shortest violating schedule within the explored
// space.
func BFS(sys *core.System, cfg Config) (*Result, error) {
	if cfg.Monitor == nil {
		return nil, ErrNoMonitor
	}
	if cfg.SpillDir != "" && cfg.ExactDedup {
		return nil, fmt.Errorf("%w: spill requires hashed dedup (run files hold fixed-width sums)", ErrSpillConfig)
	}
	s := &search{
		sys:      sys,
		cfg:      cfg,
		extSig:   sys.Hidden.Signature(),
		comps:    sys.Comp.Components(),
		maxDepth: cfg.MaxDepth,
		arena:    cfg.Arena,
	}
	if s.maxDepth <= 0 {
		s.maxDepth = DefaultMaxDepth
	}
	s.maxStates = int64(cfg.MaxStates)
	if s.maxStates <= 0 {
		s.maxStates = DefaultMaxStates
	}
	s.usedStride = (len(cfg.Inputs) + 63) / 64
	switch {
	case cfg.ExactDedup:
		s.seen = newExactSeen()
	case cfg.SpillDir != "":
		s.seen = newSpilledSeen(randomSeed(), cfg.SpillDir, cfg.SpillThreshold)
	default:
		h := newHashedSeen()
		if cfg.Checkpoint.enabled() {
			// Checkpoints call hashes() at every cadence barrier; run
			// tracking turns each call into an incremental tail merge
			// instead of a full re-sort of the set.
			h.trackRuns()
		}
		s.seen = h
	}
	// Spill run files are private to this search; drop them on any exit.
	defer func() {
		if sp, ok := s.seen.(*spilledSeen); ok {
			sp.close()
		}
	}()
	s.chans = make([]*channel.Channel, len(s.comps))
	for i, comp := range s.comps {
		if ch, ok := comp.(*channel.Channel); ok {
			s.chans[i] = ch
		}
	}
	s.dupOf = make([]int, len(cfg.Inputs))
	for i := range cfg.Inputs {
		s.dupOf[i] = -1
		for j := i - 1; j >= 0; j-- {
			if cfg.Inputs[j] == cfg.Inputs[i] {
				s.dupOf[i] = j
				break
			}
		}
	}
	s.setupReductions()

	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	bufs := make([]workerBufs, workers)
	if s.sym {
		for w := range bufs {
			bufs[w].canon = ioa.NewCanon()
		}
	}
	s.ins = newInstruments(cfg.Metrics, workers)
	s.began = time.Now() // lint:ignore determinism trace-only timestamp; never reaches Result

	start := &node{
		state:   sys.Comp.Start(),
		monitor: cfg.Monitor,
		used:    make([]bool, len(cfg.Inputs)),
	}
	digest, err := s.configDigest(start)
	if err != nil {
		return nil, err
	}
	s.digest = digest

	res := &Result{Exhausted: true}
	var cur levelRef
	if cfg.Resume != nil {
		nodes, err := s.restore(cfg.Resume)
		if err != nil {
			return nil, err
		}
		if s.arena {
			cur = levelRef{arena: newArenaFromNodes(nodes, cfg.Resume.Frontier, len(cfg.Inputs), s.usedStride)}
		} else {
			cur = levelRef{classic: nodes}
		}
		res.DepthReached = cfg.Resume.DepthReached
	} else {
		key, err := s.appendDedupKey(nil, start.state, start.monitor, start.used, -1, &bufs[0])
		if err != nil {
			return nil, err
		}
		s.seen.Add(key)
		s.count.Store(1)
		if s.arena {
			cur = levelRef{arena: newArenaRoot(start, len(cfg.Inputs), s.usedStride)}
		} else {
			cur = levelRef{classic: []*node{start}}
		}
	}
	ck := newCheckpointer(s, cfg.Checkpoint)
	var spare []*node
	for cur.size() > 0 {
		depth := cur.depth()
		res.DepthReached = depth
		if depth >= s.maxDepth {
			res.DepthLimited = true
			break
		}
		found, err := s.expandLevel(cur, bufs, workers)
		if err != nil {
			return nil, err
		}
		// Spill-mode disk errors are recorded during expansion and
		// surfaced here, before anything built on their answers escapes.
		if err := s.seenErr(); err != nil {
			return nil, err
		}
		admitted := 0
		for w := range bufs {
			admitted += len(bufs[w].next) + bufs[w].batch.size()
		}
		s.observeLevel(depth, cur.size(), admitted)
		s.observeSpill()
		if found != nil {
			res.Violation = found.violation
			res.Trace = append(cur.schedule(found.frontIdx), found.action)
			// The violating node sits one level below the frontier being
			// expanded; recording the frontier depth under-reported by one
			// and disagreed with len(res.Trace).
			res.DepthReached = depth + 1
			break
		}
		if s.arena {
			next := nextArenaLevel(cur.arena)
			for w := range bufs {
				next.absorb(&bufs[w].batch)
			}
			cur.arena.retire()
			cur = levelRef{arena: next}
		} else {
			frontier := promoteNext(spare, bufs)
			// The swapped-out slice's stale slots — and the worker copies
			// promoteNext already dropped — would otherwise pin the whole
			// expanded level (and its dead branches' parent chains) for
			// another level; ancestors of live nodes stay reachable through
			// the nodes' own parent pointers.
			spare = clearNodeSlice(cur.classic)
			cur = levelRef{classic: frontier}
		}
		// Level barrier: the frontier is a complete cut of the search, so
		// this is the one place a checkpoint is coherent and a stop is
		// resumable. A graceful stop forces a final checkpoint write.
		if stopRequested(cfg.Stop) {
			res.Interrupted = true
			if err := ck.maybeWrite(cur, res.DepthReached, true); err != nil {
				return nil, err
			}
			break
		}
		if err := ck.maybeWrite(cur, res.DepthReached, false); err != nil {
			return nil, err
		}
	}
	res.StatesExplored = int(min(s.count.Load(), s.maxStates))
	res.Exhausted = res.Exhausted && !s.truncated.Load() && !res.Interrupted
	res.SeenSetBytes = s.seen.ApproxBytes()
	if sp, ok := s.seen.(*spilledSeen); ok {
		st := sp.stats()
		res.Spill = &SpillReport{
			Spills: st.Spills, Merges: st.Merges, Probes: st.Probes,
			Runs: st.Runs, SpilledSums: st.Spilled, DiskBytes: st.DiskBytes,
		}
	}
	s.observeDone(res)
	return res, nil
}

// promoteNext concatenates the workers' next buffers (in worker order,
// matching the arena barrier) into dst's storage and clears every stale
// *node the reused slices still hold — both dst's slack capacity and the
// worker buffers just copied out. Without the clears, dead nodes from
// wider earlier levels stay reachable through slice tails and pin their
// entire parent chains past their live window.
func promoteNext(dst []*node, bufs []workerBufs) []*node {
	dst = dst[:0]
	for w := range bufs {
		dst = append(dst, bufs[w].next...)
		bufs[w].next = clearNodeSlice(bufs[w].next)
	}
	clear(dst[len(dst):cap(dst)])
	return dst
}

// clearNodeSlice nils the slice's full capacity and returns it empty for
// reuse.
func clearNodeSlice(s []*node) []*node {
	s = s[:cap(s)]
	clear(s)
	return s[:0]
}

// seenErr surfaces the first disk error a spill-mode seen-set recorded
// (non-spill sets cannot fail).
func (s *search) seenErr() error {
	if sp, ok := s.seen.(*spilledSeen); ok {
		if err := sp.Err(); err != nil {
			return fmt.Errorf("explore: spill seen-set: %w", err)
		}
	}
	return nil
}

// stopRequested polls a graceful-stop channel without blocking.
func stopRequested(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// levelBatch is how many frontier nodes a worker claims per cursor bump:
// large enough to amortise the atomic, small enough to balance skewed
// expansion costs.
const levelBatch = 32

// expandLevel expands one BFS level with the configured worker pool. Each
// worker claims batches of frontier indices from an atomic cursor, builds
// dedup keys in its private reused buffer, and admits fresh successors to
// its private next slice (classic) or batch slab (arena); the caller
// concatenates those in worker order after the barrier. The first
// violation (in frontier order among those seen) or error cancels the
// level's context so the other workers stop early.
func (s *search) expandLevel(lvl levelRef, bufs []workerBufs, workers int) (*foundViolation, error) {
	if lvl.arena != nil && lvl.size() > math.MaxUint32 {
		return nil, fmt.Errorf("explore: level of %d nodes overflows 32-bit arena offsets", lvl.size())
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var (
		cursor   atomic.Int64
		mu       sync.Mutex
		best     *foundViolation
		firstErr error
	)
	report := func(fv *foundViolation, err error) {
		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if fv != nil && (best == nil || fv.frontIdx < best.frontIdx ||
			(fv.frontIdx == best.frontIdx && fv.succIdx < best.succIdx)) {
			best = fv
		}
		mu.Unlock()
		cancel()
	}

	size := lvl.size()
	work := func(w int) {
		b := &bufs[w]
		b.next = b.next[:0]
		for ctx.Err() == nil {
			i := int(cursor.Add(levelBatch)) - levelBatch
			if i >= size {
				return
			}
			end := min(i+levelBatch, size)
			for ; i < end; i++ {
				if ctx.Err() != nil {
					return
				}
				var view nodeView
				view, b.usedView = lvl.view(i, b.usedView)
				sl, err := s.expand(view, b.succ[:0])
				b.succ = sl
				if err != nil {
					report(nil, err)
					return
				}
				s.ins.workers[w].Inc()
				s.ins.expanded.Inc()
				s.ins.fanout.Observe(int64(len(sl)))
				if s.por {
					s.ins.ampleSize.Observe(int64(len(sl)))
				}
				for j := range sl {
					sj := &sl[j]
					if sj.violation != nil {
						report(&foundViolation{
							violation: sj.violation, action: sj.action,
							frontIdx: i, succIdx: j,
						}, nil)
						return
					}
					var renames0 int64
					if b.canon != nil {
						renames0 = b.canon.Assigned()
					}
					b.key, err = s.appendDedupKey(b.key[:0], sj.state, sj.monitor, view.used, sj.usedIdx, b)
					if err != nil {
						report(nil, err)
						return
					}
					if b.canon != nil {
						s.levelRenames.Add(b.canon.Assigned() - renames0)
					}
					if !s.seen.Add(b.key) {
						s.ins.dedupHit.Inc()
						continue
					}
					s.ins.dedupMiss.Inc()
					if s.count.Add(1) > s.maxStates {
						s.truncated.Store(true)
						continue
					}
					s.ins.admitted.Inc()
					if lvl.arena != nil {
						b.batch.add(lvl.arena, i, sj)
						continue
					}
					parent := lvl.classic[i]
					used := parent.used
					if sj.usedIdx >= 0 {
						used = append([]bool(nil), parent.used...)
						used[sj.usedIdx] = true
					}
					b.next = append(b.next, &node{
						state: sj.state, monitor: sj.monitor, used: used,
						depth: view.depth + 1, parent: parent, action: sj.action,
					})
				}
			}
		}
	}

	if workers == 1 || size <= 1 {
		for w := 1; w < workers; w++ {
			bufs[w].next = bufs[w].next[:0]
		}
		work(0)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				work(w)
			}(w)
		}
		wg.Wait()
	}
	mu.Lock()
	defer mu.Unlock()
	return best, firstErr
}

// appendDedupKey appends the key identifying nodes with indistinguishable
// futures: the protocol automata contribute their exact state, the
// channels only their residual (deliverable packets — delivered, lost and
// FIFO-blocked entries can never matter again, and packet IDs are analysis
// labels), plus the monitor state and the set of remaining inputs (the
// parent's used bitmap with extraIdx set, passed unmaterialised so dedup
// probes copy nothing). Merging on this key is sound because the monitor
// never inspects packet identities. The key is built through the
// AppendFingerprint fast paths into the caller's reused buffer; per
// explored state the dedup path allocates nothing beyond amortised buffer
// growth.
//
// When symmetry reduction is active (b != nil with a canon), the key is
// built through the canonical fingerprint paths instead: payload tokens
// and packet IDs become first-use indices shared across all components,
// and the inputs-used bitmap collapses to per-class counts. Equal
// canonical keys then certify a bijective token renaming between the two
// nodes — an automorphism for payload-opaque protocols — so the merge
// stays sound (see reduction.go). b == nil always takes the raw path.
func (s *search) appendDedupKey(dst []byte, state ioa.State, monitor Monitor, used []bool, extraIdx int, b *workerBufs) ([]byte, error) {
	cs, ok := state.(ioa.CompositeState)
	if !ok {
		return nil, fmt.Errorf("%w: want CompositeState, got %T", ioa.ErrBadState, state)
	}
	var canon *ioa.Canon
	if b != nil {
		canon = b.canon
	}
	if canon != nil {
		canon.Reset()
	}
	for i := range s.comps {
		if i > 0 {
			dst = append(dst, "∥"...)
		}
		if ch := s.chans[i]; ch != nil {
			var err error
			if canon != nil {
				dst, err = ch.AppendResidualCanon(dst, cs.Parts[i], canon)
			} else {
				dst, err = ch.AppendResidual(dst, cs.Parts[i])
			}
			if err != nil {
				return nil, err
			}
			continue
		}
		if canon != nil {
			dst = ioa.AppendCanonFingerprint(dst, cs.Parts[i], canon)
		} else {
			dst = ioa.AppendFingerprint(dst, cs.Parts[i])
		}
	}
	dst = append(dst, '|')
	if cf, ok := monitor.(ioa.CanonFingerprinter); ok && canon != nil {
		dst = cf.AppendCanonFingerprint(dst, canon)
	} else if af, ok := monitor.(ioa.AppendFingerprinter); ok {
		dst = af.AppendFingerprint(dst)
	} else {
		dst = append(dst, monitor.Fingerprint()...)
	}
	dst = append(dst, '|')
	if canon != nil {
		dst = s.appendUsedClassCounts(dst, used, extraIdx, b)
		return dst, nil
	}
	for i, u := range used {
		if u || i == extraIdx {
			dst = append(dst, '1')
		} else {
			dst = append(dst, '0')
		}
	}
	return dst, nil
}

// expand appends all successors of a node view to out: every eligible
// pool input (the first unused instance of each distinct action) and
// every eligible enabled locally-controlled action. Successors are
// values; out's backing array is the caller's reused buffer, and no node
// or bitmap is materialised here — that happens on admission, in the
// caller's chosen representation.
//
// Packet IDs are assigned canonically as the per-channel send index
// ((PL2)'s uniqueness is per channel direction): structurally identical
// states then have identical fingerprints regardless of the path taken,
// which is what makes state deduplication effective — and sound, since
// the IDs carry no information a protocol may use.
func (s *search) expand(cur nodeView, out []succ) ([]succ, error) {
	enabled := s.sys.Comp.Enabled(cur.state)
	if need := len(s.cfg.Inputs) + len(enabled); cap(out) < need {
		out = make([]succ, 0, need)
	}
	apply := func(a ioa.Action, usedIdx int) error {
		if a.Kind == ioa.KindSendPkt && a.Pkt.ID == 0 {
			cs, err := s.sys.ChannelState(cur.state, a.Dir)
			if err != nil {
				return err
			}
			a.Pkt.ID = uint64(cs.SentCount() + 1)
		}
		st, err := s.sys.Comp.Step(cur.state, a)
		if err != nil {
			return fmt.Errorf("explore: applying %s: %w", a, err)
		}
		mon := cur.monitor
		var viol *Violation
		if s.extSig.ContainsExternal(a) {
			mon, viol = mon.Step(a)
		}
		out = append(out, succ{state: st, monitor: mon, action: a, usedIdx: usedIdx, violation: viol})
		return nil
	}

	// Environment inputs: one successor per distinct unused pool action.
	// Pool index i is eligible when it is the first unused instance of its
	// action, i.e. every earlier duplicate (the dupOf chain) is used.
	for i, in := range s.cfg.Inputs {
		if cur.used[i] {
			continue
		}
		eligible := true
		for j := s.dupOf[i]; j >= 0; j = s.dupOf[j] {
			if !cur.used[j] {
				eligible = false
				break
			}
		}
		if !eligible {
			continue
		}
		if err := apply(in, i); err != nil {
			return out, err
		}
	}

	// Locally-controlled actions.
	pruned := int64(0)
	for _, a := range enabled {
		if channel.IsLoseAction(a) && !s.cfg.AllowLoss {
			continue
		}
		if s.cfg.MaxInTransit > 0 && a.Kind == ioa.KindSendPkt {
			cs, err := s.sys.ChannelState(cur.state, a.Dir)
			if err != nil {
				return out, err
			}
			if cs.PendingCount() >= s.cfg.MaxInTransit {
				continue
			}
		}
		if s.por && s.porSuppressed(cur.action, a) {
			pruned++
			continue
		}
		if err := apply(a, -1); err != nil {
			return out, err
		}
	}
	if pruned > 0 {
		s.levelPruned.Add(pruned)
	}
	return out, nil
}
