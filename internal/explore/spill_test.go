package explore

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func sortedSums(n int, salt uint64) []uint64 {
	sums := make([]uint64, 0, n)
	seen := make(map[uint64]bool, n)
	for i := 0; len(sums) < n; i++ {
		s := mix64(uint64(i) ^ salt)
		if !seen[s] {
			seen[s] = true
			sums = append(sums, s)
		}
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i] < sums[j] })
	return sums
}

func TestSpillRunRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, ckptHashesPerLine - 1, ckptHashesPerLine, ckptHashesPerLine + 1, 3*ckptHashesPerLine + 17} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			sums := sortedSums(n, 0xabcd)
			var buf bytes.Buffer
			if err := EncodeSpillRun(&buf, sums); err != nil {
				t.Fatalf("EncodeSpillRun: %v", err)
			}
			got, err := DecodeSpillRun(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("DecodeSpillRun: %v", err)
			}
			if len(got) != len(sums) || (n > 0 && !reflect.DeepEqual(got, sums)) {
				t.Fatalf("round trip lost data: got %d sums, want %d", len(got), len(sums))
			}
		})
	}
}

// TestSpillRunWriterMatchesEncode pins that the streaming writer used on
// the hot spill path and the one-shot encoder produce byte-identical
// files — the decoder and the fuzz corpus only have to reason about one
// format.
func TestSpillRunWriterMatchesEncode(t *testing.T) {
	sums := sortedSums(2*ckptHashesPerLine+5, 0x1122)
	var want bytes.Buffer
	if err := EncodeSpillRun(&want, sums); err != nil {
		t.Fatalf("EncodeSpillRun: %v", err)
	}
	path := filepath.Join(t.TempDir(), "run-000001.sums")
	run, err := writeSpillRun(path, sums)
	if err != nil {
		t.Fatalf("writeSpillRun: %v", err)
	}
	defer run.close(true)
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("streaming writer output differs from EncodeSpillRun (%d vs %d bytes)", len(got), want.Len())
	}
}

func TestSpillRunContainsAndIter(t *testing.T) {
	sums := sortedSums(3*ckptHashesPerLine+7, 0x7777)
	path := filepath.Join(t.TempDir(), "run-000001.sums")
	run, err := writeSpillRun(path, sums)
	if err != nil {
		t.Fatalf("writeSpillRun: %v", err)
	}
	defer run.close(true)

	// Every written sum must be found; probe a chunk-boundary-heavy subset
	// plus neighbours that were never written.
	for i := 0; i < len(sums); i += 97 {
		ok, err := run.contains(sums[i])
		if err != nil {
			t.Fatalf("contains(%016x): %v", sums[i], err)
		}
		if !ok {
			t.Fatalf("contains(%016x) = false for written sum %d", sums[i], i)
		}
		if miss := sums[i] + 1; !containsLinear(sums, miss) {
			ok, err := run.contains(miss)
			if err != nil {
				t.Fatalf("contains(%016x): %v", miss, err)
			}
			if ok {
				t.Fatalf("contains(%016x) = true for absent sum", miss)
			}
		}
	}

	it := run.iter()
	var streamed []uint64
	for {
		sum, ok, err := it.next()
		if err != nil {
			t.Fatalf("iter.next: %v", err)
		}
		if !ok {
			break
		}
		streamed = append(streamed, sum)
	}
	if !reflect.DeepEqual(streamed, sums) {
		t.Fatalf("iter streamed %d sums, want %d in order", len(streamed), len(sums))
	}
}

func containsLinear(sorted []uint64, v uint64) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	return i < len(sorted) && sorted[i] == v
}

// TestDecodeSpillRunStrict: every corruption an operator can plausibly
// hit — truncation mid-body, missing footer, flipped payload bytes,
// wrong magic/version, disordered or duplicate sums, miscounted footer,
// trailing garbage — must surface as an error wrapping ErrSpillFormat,
// never as silently short data.
func TestDecodeSpillRunStrict(t *testing.T) {
	sums := sortedSums(2*ckptHashesPerLine+9, 0x4242)
	var buf bytes.Buffer
	if err := EncodeSpillRun(&buf, sums); err != nil {
		t.Fatalf("EncodeSpillRun: %v", err)
	}
	good := buf.String()
	lines := strings.SplitAfter(strings.TrimSuffix(good, "\n"), "\n")
	// lines[0] header, lines[1..n] body, lines[last] footer.

	corrupt := map[string]string{
		"empty":              "",
		"header only":        lines[0],
		"truncated mid-line": good[:len(good)/2],
		"no footer":          strings.Join(lines[:len(lines)-1], ""),
		"bad magic":          strings.Replace(good, SpillRunMagic, "dl-explore-bogus", 1),
		"bad version":        strings.Replace(good, `"version":1`, `"version":2`, 1),
		"unknown field":      lines[0] + `{"h":"AAAAAAAAAAA=","extra":1}` + "\n" + strings.Join(lines[1:], ""),
		"flipped payload":    flipOneBase64Char(t, good),
		"trailing data":      good + `{"h":"AAAAAAAAAAA="}` + "\n",
		"footer count off":   strings.Replace(good, fmt.Sprintf(`"count":%d`, len(sums)), fmt.Sprintf(`"count":%d`, len(sums)-1), 1),
	}
	for name, data := range corrupt {
		t.Run(name, func(t *testing.T) {
			_, err := DecodeSpillRun(strings.NewReader(data))
			if err == nil {
				t.Fatalf("DecodeSpillRun accepted corrupted input")
			}
			if !errors.Is(err, ErrSpillFormat) {
				t.Fatalf("error %v does not wrap ErrSpillFormat", err)
			}
		})
	}

	// Out-of-order and duplicate sums violate the sorted-run invariant.
	// EncodeSpillRun refuses to produce such files, so craft them by hand
	// with a valid CRC: the decoder must reject on ordering, not checksum.
	for name, mangle := range map[string]func([]uint64){
		"out of order": func(s []uint64) { s[3], s[4] = s[4], s[3] },
		"duplicate":    func(s []uint64) { s[4] = s[3] },
	} {
		t.Run(name, func(t *testing.T) {
			bad := append([]uint64(nil), sums...)
			mangle(bad)
			if _, err := DecodeSpillRun(bytes.NewReader(encodeRawRun(t, bad))); !errors.Is(err, ErrSpillFormat) {
				t.Fatalf("got %v, want ErrSpillFormat for %s sums", err, name)
			}
		})
	}
}

// encodeRawRun writes a structurally valid run file (header, base64 body
// lines, CRC-correct footer) without EncodeSpillRun's ordering guard, so
// tests can feed the decoder invariant-violating but checksum-clean data.
func encodeRawRun(t *testing.T, sums []uint64) []byte {
	t.Helper()
	var out bytes.Buffer
	crc := crc32.NewIEEE()
	lines := 0
	writeLine := func(v any) {
		blob, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, '\n')
		crc.Write(blob)
		lines++
		out.Write(blob)
	}
	writeLine(spillRunHeader{Magic: SpillRunMagic, Version: SpillRunVersion})
	var payload []byte
	for i := 0; i < len(sums); i += ckptHashesPerLine {
		end := min(i+ckptHashesPerLine, len(sums))
		payload = payload[:0]
		for _, s := range sums[i:end] {
			payload = binary.LittleEndian.AppendUint64(payload, s)
		}
		writeLine(ckptSeenLine{H: base64.StdEncoding.EncodeToString(payload)})
	}
	foot := spillRunFooter{End: &lines, Count: int64(len(sums)), CRC: fmt.Sprintf("%08x", crc.Sum32())}
	blob, err := json.Marshal(foot)
	if err != nil {
		t.Fatal(err)
	}
	out.Write(append(blob, '\n'))
	return out.Bytes()
}

// flipOneBase64Char corrupts a single base64 hash character in the body
// so the CRC in the footer no longer matches.
func flipOneBase64Char(t *testing.T, s string) string {
	t.Helper()
	i := strings.Index(s, `{"h":"`)
	if i < 0 {
		t.Fatal("no body line found")
	}
	i += len(`{"h":"`)
	b := []byte(s)
	if b[i] == 'A' {
		b[i] = 'B'
	} else {
		b[i] = 'A'
	}
	return string(b)
}

func FuzzSpillRunDecode(f *testing.F) {
	for _, n := range []int{0, 3, ckptHashesPerLine + 1} {
		var buf bytes.Buffer
		if err := EncodeSpillRun(&buf, sortedSums(n, uint64(n))); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"magic":"dl-explore-spillrun","version":1}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sums, err := DecodeSpillRun(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrSpillFormat) && !strings.Contains(err.Error(), "read") {
				t.Fatalf("decode error %v is neither ErrSpillFormat nor an I/O error", err)
			}
			return
		}
		// Accepted input must satisfy the run invariants, and re-encoding
		// must reproduce an equivalent run byte-for-byte.
		for i := 1; i < len(sums); i++ {
			if sums[i] <= sums[i-1] {
				t.Fatalf("decoder accepted non-ascending sums at %d", i)
			}
		}
		var re bytes.Buffer
		if err := EncodeSpillRun(&re, sums); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := DecodeSpillRun(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(back, sums) && (len(back) != 0 || len(sums) != 0) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}

// TestSpilledSeenMatchesHashedSeen: with the same seed, the spilling set
// must accept and reject exactly the same keys as the plain in-memory
// set, across forced spills and at least one compacting merge, and
// mergedHashes must enumerate the identical global sorted sum sequence.
func TestSpilledSeenMatchesHashedSeen(t *testing.T) {
	const seed = 0xfedc_ba98_7654_3210
	dir := t.TempDir()
	// Threshold small enough that >spillMaxRuns runs get written, forcing
	// the k-way compaction path.
	sp := newSpilledSeen(seed, dir, 512)
	defer sp.close()
	mem := newHashedSeenSeeded(seed)

	key := make([]byte, 0, 24)
	const rounds, perRound = 24, 400
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			// ~30% revisit rate so both fresh inserts and hits are exercised
			// against spilled runs.
			key = fmt.Appendf(key[:0], "state-%d", (r*perRound+i*7)%(rounds*perRound*7/10))
			a, b := sp.Add(key), mem.Add(key)
			if a != b {
				t.Fatalf("round %d: spilled.Add(%q)=%t, hashed.Add=%t", r, key, a, b)
			}
		}
		if err := sp.Err(); err != nil {
			t.Fatalf("round %d: spill error: %v", r, err)
		}
	}
	if sp.Len() != mem.Len() {
		t.Fatalf("Len: spilled %d, hashed %d", sp.Len(), mem.Len())
	}
	st := sp.stats()
	if st.Spills == 0 {
		t.Fatalf("threshold never tripped (stats %+v); test is not exercising the spill path", st)
	}
	if st.Merges == 0 {
		t.Fatalf("run compaction never ran (stats %+v); shrink the threshold", st)
	}
	if st.Spilled == 0 || st.DiskBytes == 0 || st.Runs == 0 {
		t.Fatalf("implausible spill stats %+v", st)
	}

	got, err := sp.mergedHashes()
	if err != nil {
		t.Fatalf("mergedHashes: %v", err)
	}
	want := mem.hashes()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergedHashes: %d sums vs hashed %d, or order differs", len(got), len(want))
	}

	// close() must remove the run files: the checkpoint is the durable
	// artifact, not the spill scratch space.
	sp.close()
	left, err := filepath.Glob(filepath.Join(dir, "run-*.sums"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("close left run files behind: %v", left)
	}
}

// TestSpilledSeenSurfacesDiskErrors: a vanished spill directory must
// turn into a sticky Err(), not a silent false-negative Add.
func TestSpilledSeenSurfacesDiskErrors(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "gone")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	sp := newSpilledSeen(1, dir, 64)
	defer sp.close()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 0, 16)
	for i := 0; i < 4096; i++ {
		key = fmt.Appendf(key[:0], "k%d", i)
		sp.Add(key)
	}
	if sp.Err() == nil {
		t.Fatal("spill into removed directory reported no error")
	}
}
