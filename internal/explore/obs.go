package explore

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// This file is the explorer's observability surface. All instrument
// handles are resolved once per BFS from Config.Metrics; with metrics
// disabled every handle is nil and each hot-path call collapses to a
// nil check (the obs package's zero-cost-when-disabled contract), so
// the throughput of an uninstrumented search is unchanged.
//
// Exported metric names:
//
//	explore.states_expanded      counter  frontier nodes expanded
//	explore.worker.NN.expanded   counter  per-worker share of the above
//	explore.states_admitted      counter  fresh states admitted (excl. start)
//	explore.dedup_hits           counter  successors merged into seen states
//	explore.dedup_misses         counter  successors that were new
//	explore.frontier_peak        gauge    widest BFS level
//	explore.depth                gauge    deepest completed level
//	explore.seen_bytes           gauge    approximate dedup-set heap
//	explore.seen.shard_min/_max  gauge    seen-set shard occupancy spread
//	explore.fanout               histogram successors per expanded node
//	explore.checkpoints          counter  checkpoint files written
//	explore.checkpoint_bytes     gauge    size of the last checkpoint written
//	explore.symmetry_renames     counter  canonical token indices assigned
//	                                      while building dedup keys (0 when
//	                                      symmetry reduction is off)
//	explore.por_pruned           counter  transitions suppressed by
//	                                      partial-order reduction
//	explore.ample_size           histogram successors per expanded node with
//	                                      POR suppression applied (the
//	                                      ample-set sizes; only observed when
//	                                      POR is on)
//	explore.spill.runs           gauge    live disk run files (spill mode)
//	explore.spill.spilled        gauge    fingerprints resident on disk
//	explore.spill.disk_bytes     gauge    total size of the live run files
//	explore.spill.spills         counter  front-to-disk spill events
//	explore.spill.merges         counter  compacting run merges
//	explore.spill.probes         counter  run lookups past the Bloom filter
//
// Trace events: explore.level (one per completed BFS level),
// explore.checkpoint (one per durable snapshot: level, nodes, bytes,
// duration), explore.violation (with the violating schedule embedded),
// explore.seen (shard occupancy) and explore.done.

// LevelStats summarises one completed BFS level for Config.OnLevel.
type LevelStats struct {
	// Depth is the depth of the level just expanded.
	Depth int
	// Frontier is the number of nodes at this level.
	Frontier int
	// Admitted is the number of fresh states admitted at Depth+1.
	Admitted int
	// States is the total number of distinct states admitted so far.
	States int64
	// Elapsed is the wall time since the search started.
	Elapsed time.Duration
}

// instruments is the explorer's resolved handle set; the zero value
// (all nil) is the disabled mode.
type instruments struct {
	expanded     *obs.Counter
	admitted     *obs.Counter
	dedupHit     *obs.Counter
	dedupMiss    *obs.Counter
	frontierPeak *obs.Gauge
	depth        *obs.Gauge
	seenBytes    *obs.Gauge
	shardMin     *obs.Gauge
	shardMax     *obs.Gauge
	fanout       *obs.Histogram
	ckpts        *obs.Counter
	ckptBytes    *obs.Gauge
	symRenames   *obs.Counter
	porPruned    *obs.Counter
	ampleSize    *obs.Histogram
	spillRuns    *obs.Gauge
	spillSpilled *obs.Gauge
	spillBytes   *obs.Gauge
	spillSpills  *obs.Counter
	spillMerges  *obs.Counter
	spillProbes  *obs.Counter
	workers      []*obs.Counter
}

func newInstruments(reg *obs.Registry, workers int) instruments {
	ins := instruments{
		expanded:     reg.Counter("explore.states_expanded"),
		admitted:     reg.Counter("explore.states_admitted"),
		dedupHit:     reg.Counter("explore.dedup_hits"),
		dedupMiss:    reg.Counter("explore.dedup_misses"),
		frontierPeak: reg.Gauge("explore.frontier_peak"),
		depth:        reg.Gauge("explore.depth"),
		seenBytes:    reg.Gauge("explore.seen_bytes"),
		shardMin:     reg.Gauge("explore.seen.shard_min"),
		shardMax:     reg.Gauge("explore.seen.shard_max"),
		fanout:       reg.Histogram("explore.fanout", obs.LinearBuckets(2, 2, 16)),
		ckpts:        reg.Counter("explore.checkpoints"),
		ckptBytes:    reg.Gauge("explore.checkpoint_bytes"),
		symRenames:   reg.Counter("explore.symmetry_renames"),
		porPruned:    reg.Counter("explore.por_pruned"),
		ampleSize:    reg.Histogram("explore.ample_size", obs.LinearBuckets(2, 2, 16)),
		spillRuns:    reg.Gauge("explore.spill.runs"),
		spillSpilled: reg.Gauge("explore.spill.spilled"),
		spillBytes:   reg.Gauge("explore.spill.disk_bytes"),
		spillSpills:  reg.Counter("explore.spill.spills"),
		spillMerges:  reg.Counter("explore.spill.merges"),
		spillProbes:  reg.Counter("explore.spill.probes"),
		workers:      make([]*obs.Counter, workers),
	}
	for w := range ins.workers {
		ins.workers[w] = reg.Counter(fmt.Sprintf("explore.worker.%02d.expanded", w))
	}
	return ins
}

// observeLevel records one completed level on the gauges, the trace and
// the OnLevel callback.
func (s *search) observeLevel(depth, frontier, admitted int) {
	s.ins.depth.Set(int64(depth))
	s.ins.frontierPeak.SetMax(int64(frontier))
	// Flush this level's reduction tallies into the cumulative counters;
	// the per-level deltas also ride on the explore.level event so
	// obsreport can chart reduction work by depth.
	renames := s.levelRenames.Swap(0)
	pruned := s.levelPruned.Swap(0)
	s.ins.symRenames.Add(renames)
	s.ins.porPruned.Add(pruned)
	if s.cfg.Trace == nil && s.cfg.OnLevel == nil {
		return
	}
	elapsed := time.Since(s.began) // lint:ignore determinism trace/progress-only rate; never reaches Result
	states := s.count.Load()
	rate := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(states) / secs
	}
	s.cfg.Trace.Emit("explore.level",
		obs.Int("depth", int64(depth)),
		obs.Int("frontier", int64(frontier)),
		obs.Int("admitted", int64(admitted)),
		obs.Int("states", states),
		obs.F64("states_per_sec", rate),
		obs.Int("symmetry_renames", renames),
		obs.Int("por_pruned", pruned),
	)
	if s.cfg.OnLevel != nil {
		s.cfg.OnLevel(LevelStats{Depth: depth, Frontier: frontier, Admitted: admitted, States: states, Elapsed: elapsed})
	}
}

// observeSpill refreshes the disk-spill gauges and counters from the
// spilled seen-set's cumulative stats; a no-op in non-spill modes.
// Called at level barriers (single-threaded), so the previous-snapshot
// delta needs no locking.
func (s *search) observeSpill() {
	sp, ok := s.seen.(*spilledSeen)
	if !ok || s.cfg.Metrics == nil {
		return
	}
	st := sp.stats()
	s.ins.spillRuns.Set(int64(st.Runs))
	s.ins.spillSpilled.Set(st.Spilled)
	s.ins.spillBytes.Set(st.DiskBytes)
	s.ins.spillSpills.Add(st.Spills - s.spillPrev.Spills)
	s.ins.spillMerges.Add(st.Merges - s.spillPrev.Merges)
	s.ins.spillProbes.Add(st.Probes - s.spillPrev.Probes)
	s.spillPrev = st
}

// observeCheckpoint records one durable snapshot write: the counters,
// the last-write size gauge, and a trace event carrying the write
// latency — the only place checkpoint timing exists (the file itself is
// wall-clock-free).
func (s *search) observeCheckpoint(level, nodes, entries int, bytes int64, dur time.Duration) {
	s.ins.ckpts.Inc()
	s.ins.ckptBytes.Set(bytes)
	s.cfg.Trace.Emit("explore.checkpoint",
		obs.Int("level", int64(level)),
		obs.Int("nodes", int64(nodes)),
		obs.Int("seen_entries", int64(entries)),
		obs.Int("bytes", bytes),
		obs.F64("duration_ms", float64(dur.Microseconds())/1000),
	)
}

// observeDone records the final search outcome: seen-set shard
// occupancy, the violation (schedule included, so trace tooling can
// re-render it), and the closing summary event.
func (s *search) observeDone(res *Result) {
	if s.cfg.Metrics == nil && s.cfg.Trace == nil {
		return
	}
	lens := s.seen.ShardLens()
	minLen, maxLen, total := lens[0], lens[0], 0
	for _, n := range lens {
		minLen = min(minLen, n)
		maxLen = max(maxLen, n)
		total += n
	}
	s.ins.seenBytes.Set(res.SeenSetBytes)
	s.ins.shardMin.Set(int64(minLen))
	s.ins.shardMax.Set(int64(maxLen))
	s.cfg.Trace.Emit("explore.seen",
		obs.Int("shards", int64(len(lens))),
		obs.Int("entries", int64(total)),
		obs.Int("shard_min", int64(minLen)),
		obs.Int("shard_max", int64(maxLen)),
		obs.JSON("shard_lens", lens),
	)
	if res.Violation != nil {
		s.cfg.Trace.Emit("explore.violation",
			obs.Str("property", res.Violation.Property),
			obs.Str("detail", res.Violation.Detail),
			obs.Int("steps", int64(len(res.Trace))),
			obs.Int("start_index", 0),
			obs.JSON("schedule", res.Trace),
		)
	}
	s.cfg.Trace.Emit("explore.done",
		obs.Int("states", int64(res.StatesExplored)),
		obs.Int("depth", int64(res.DepthReached)),
		obs.Bool("exhausted", res.Exhausted),
		obs.Bool("depth_limited", res.DepthLimited),
		obs.Bool("interrupted", res.Interrupted),
		obs.Bool("violation", res.Violation != nil),
		obs.Int("seen_bytes", res.SeenSetBytes),
		// lint:ignore determinism trace-only timing; never reaches Result
		obs.F64("elapsed_ms", float64(time.Since(s.began).Microseconds())/1000),
	)
}
