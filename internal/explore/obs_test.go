package explore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// exploreObsRun runs a parallel BFS over ABP/Ĉ with metrics and tracing
// attached and returns the result plus the observability artifacts.
func exploreObsRun(t *testing.T, workers int, crash bool) (*Result, obs.Snapshot, *bytes.Buffer) {
	t.Helper()
	sys, err := core.NewSystem(protocol.NewABP(), true)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []ioa.Action{
		ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
		ioa.SendMsg(ioa.TR, "m1"), ioa.SendMsg(ioa.TR, "m2"),
	}
	if crash {
		inputs = append(inputs, ioa.Crash(ioa.RT), ioa.Wake(ioa.RT))
	}
	reg := obs.NewRegistry()
	var traceBuf bytes.Buffer
	tr := obs.NewTrace(&traceBuf)
	var levels []LevelStats
	res, err := BFS(sys, Config{
		Inputs:       inputs,
		Monitor:      NewSafetyMonitor(false),
		MaxDepth:     18,
		MaxInTransit: 2,
		Workers:      workers,
		Metrics:      reg,
		Trace:        tr,
		OnLevel:      func(ls LevelStats) { levels = append(levels, ls) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(levels) == 0 {
		t.Fatal("OnLevel was never called")
	}
	for i, ls := range levels {
		if ls.Depth != i {
			t.Errorf("level %d reported depth %d", i, ls.Depth)
		}
	}
	return res, reg.Snapshot(), &traceBuf
}

// TestExploreMetricsConsistency pins the acceptance-level consistency
// claims: the expanded-state count equals the sum of the per-worker
// counts, admitted states match the result's StatesExplored, and dedup
// hits + misses account for every deduplicated successor.
func TestExploreMetricsConsistency(t *testing.T) {
	res, snap, _ := exploreObsRun(t, 4, false)
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	expanded := snap.Counter("explore.states_expanded")
	var workerSum int64
	for _, c := range snap.Counters {
		if len(c.Name) > len("explore.worker.") && c.Name[:len("explore.worker.")] == "explore.worker." {
			workerSum += c.Value
		}
	}
	if expanded == 0 || expanded != workerSum {
		t.Errorf("states_expanded = %d, sum of per-worker counts = %d", expanded, workerSum)
	}
	// The start state is admitted before the counter exists; everything
	// else goes through explore.states_admitted.
	if admitted := snap.Counter("explore.states_admitted"); admitted+1 != int64(res.StatesExplored) {
		t.Errorf("states_admitted = %d, want %d", admitted, res.StatesExplored-1)
	}
	misses := snap.Counter("explore.dedup_misses")
	hits := snap.Counter("explore.dedup_hits")
	if misses+1 != int64(res.StatesExplored) {
		t.Errorf("dedup_misses = %d, want %d (run is not truncated)", misses, res.StatesExplored-1)
	}
	if hits == 0 {
		t.Error("dedup_hits = 0: the ABP space certainly re-visits states")
	}
	if peak := snap.Gauge("explore.frontier_peak"); peak <= 1 {
		t.Errorf("frontier_peak = %d, want > 1", peak)
	}
	if snap.Gauge("explore.seen.shard_max") < snap.Gauge("explore.seen.shard_min") {
		t.Error("shard occupancy gauges inverted")
	}
	fanout, ok := snap.Histogram("explore.fanout")
	if !ok || fanout.Count != expanded {
		t.Errorf("fanout histogram count = %d, want %d", fanout.Count, expanded)
	}
}

// TestExploreTraceValidatesAndCarriesViolation checks the trace stream:
// schema-valid JSONL, one explore.level event per completed level, and
// on a violating search an explore.violation event whose embedded
// schedule decodes back to the result's trace.
func TestExploreTraceValidatesAndCarriesViolation(t *testing.T) {
	res, _, traceBuf := exploreObsRun(t, 2, true)
	if res.Violation == nil {
		t.Fatal("crash search found no violation (expected the Thm 7.5 bug)")
	}
	var v obs.Validator
	events := map[string]int{}
	var violLine []byte
	sc := bufio.NewScanner(bytes.NewReader(traceBuf.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		event, err := v.Line(sc.Bytes())
		if err != nil {
			t.Fatalf("trace line invalid: %v", err)
		}
		events[event]++
		if event == "explore.violation" {
			violLine = append([]byte(nil), sc.Bytes()...)
		}
	}
	if events["explore.level"] == 0 || events["explore.done"] != 1 || events["explore.seen"] != 1 {
		t.Fatalf("unexpected event mix: %v", events)
	}
	if events["explore.violation"] != 1 {
		t.Fatalf("want exactly one explore.violation event, got %d", events["explore.violation"])
	}
	var payload struct {
		Property string       `json:"property"`
		Schedule ioa.Schedule `json:"schedule"`
	}
	if err := json.Unmarshal(violLine, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Property != res.Violation.Property {
		t.Errorf("violation event property %q, want %q", payload.Property, res.Violation.Property)
	}
	if len(payload.Schedule) != len(res.Trace) {
		t.Fatalf("embedded schedule has %d actions, result trace %d", len(payload.Schedule), len(res.Trace))
	}
	for i := range res.Trace {
		if payload.Schedule[i] != res.Trace[i] {
			t.Errorf("schedule action %d: %s != %s", i, payload.Schedule[i], res.Trace[i])
		}
	}
}

// TestExploreObsDoesNotChangeResults runs the same search with and
// without observability attached and asserts identical outcomes — the
// observer must not perturb the search.
func TestExploreObsDoesNotChangeResults(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewABP(), true)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Inputs: []ioa.Action{
			ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
			ioa.SendMsg(ioa.TR, "m1"), ioa.SendMsg(ioa.TR, "m2"),
		},
		Monitor:      NewSafetyMonitor(true),
		MaxDepth:     16,
		MaxInTransit: 2,
	}
	plain, err := BFS(sys, base)
	if err != nil {
		t.Fatal(err)
	}
	instrumented := base
	instrumented.Metrics = obs.NewRegistry()
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf)
	instrumented.Trace = tr
	obsRes, err := BFS(sys, instrumented)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if plain.StatesExplored != obsRes.StatesExplored || plain.DepthReached != obsRes.DepthReached ||
		plain.Exhausted != obsRes.Exhausted || (plain.Violation == nil) != (obsRes.Violation == nil) {
		t.Errorf("observability changed the search: %+v vs %+v", plain, obsRes)
	}
}
