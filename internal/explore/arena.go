package explore

import (
	"slices"

	"repro/internal/ioa"
)

// This file is the flat frontier arena: the []*node frontier re-laid as
// a few large parallel slabs per BFS level (ROADMAP "Disk-spill seen-set
// + flat frontier arena"). In classic mode every admitted state is its
// own heap node — a node struct, a used []bool, and a parent pointer
// that keeps the whole ancestor chain's states and monitors alive for
// trace reconstruction. At millions of states per level that is millions
// of objects for the allocator and garbage collector to track, and the
// live set includes every ancestor's full state even though only its
// incoming action can ever be needed again.
//
// In arena mode (Config.Arena) a level is one arenaLevel: states and
// monitors as interface slabs, the used bitmaps bit-packed into a single
// []uint64 at usedStride words per node, the incoming action per node,
// and the parent link as a 32-bit index into the previous level's arena.
// Workers accumulate admissions in private arenaBatch slabs (no per-node
// allocation) which the barrier concatenates in worker order — exactly
// the order classic mode concatenates its next slices. Once a level has
// been fully expanded it is retired: the state, monitor and bitmap slabs
// are dropped and only the action + parent-index skeleton survives, so a
// violation trace is reconstructed by replaying indices up the level
// chain instead of chasing node pointers, and dead branches cost nothing
// past their level.
//
// Equivalence with classic mode is structural: both modes expand the
// same views in the same frontier order, build dedup keys from the same
// (state, monitor, used, extraIdx) tuples, admit through the same
// seen-set, and order the next level identically, so verdicts, traces,
// state counts and checkpoint bytes are identical (the A/B tests and the
// spill-smoke target pin this).

// arenaLevel is one BFS level in flat form. A live level has all slabs
// populated; a retired level keeps only depth/prev/prefix/actions/
// parents — the trace skeleton.
type arenaLevel struct {
	depth  int
	inputs int // pool size, for unpacking used bitmaps
	prev   *arenaLevel
	// prefix is non-nil only on a resumed root level: the schedule that
	// reached each node, replacing the parent chain the checkpoint did
	// not persist.
	prefix []ioa.Schedule

	actions    []ioa.Action // incoming action per node (zero on a fresh root)
	parents    []uint32     // index into prev's slabs
	states     []ioa.State
	monitors   []Monitor
	usedBits   []uint64 // usedStride words per node, bit i = pool input i used
	usedStride int
}

func (a *arenaLevel) size() int { return len(a.actions) }

// newArenaRoot builds the level-0 arena for a fresh search.
func newArenaRoot(start *node, inputs, usedStride int) *arenaLevel {
	return &arenaLevel{
		inputs:     inputs,
		usedStride: usedStride,
		actions:    make([]ioa.Action, 1),
		parents:    make([]uint32, 1),
		states:     []ioa.State{start.state},
		monitors:   []Monitor{start.monitor},
		usedBits:   make([]uint64, usedStride),
	}
}

// newArenaFromNodes builds a root level from a restored frontier: the
// replayed nodes provide states/monitors/bitmaps, and the checkpoint's
// schedules become the prefix the trace reconstruction bottoms out in.
// scheds[i] must be the schedule that produced nodes[i].
func newArenaFromNodes(nodes []*node, scheds []ioa.Schedule, inputs, usedStride int) *arenaLevel {
	a := &arenaLevel{
		inputs:     inputs,
		usedStride: usedStride,
		prefix:     scheds,
		actions:    make([]ioa.Action, len(nodes)),
		parents:    make([]uint32, len(nodes)),
		states:     make([]ioa.State, len(nodes)),
		monitors:   make([]Monitor, len(nodes)),
		usedBits:   make([]uint64, len(nodes)*usedStride),
	}
	if len(nodes) > 0 {
		a.depth = nodes[0].depth
	}
	for i, n := range nodes {
		if len(scheds[i]) > 0 {
			// The incoming action feeds POR suppression, mirroring the
			// classic restore path which records it on the replayed node.
			a.actions[i] = scheds[i][len(scheds[i])-1]
		}
		a.parents[i] = uint32(i)
		a.states[i] = n.state
		a.monitors[i] = n.monitor
		packUsed(a.usedBits[i*usedStride:(i+1)*usedStride], n.used)
	}
	return a
}

// nextArenaLevel starts the successor level of prev.
func nextArenaLevel(prev *arenaLevel) *arenaLevel {
	return &arenaLevel{
		depth:      prev.depth + 1,
		inputs:     prev.inputs,
		usedStride: prev.usedStride,
		prev:       prev,
	}
}

// packUsed bit-packs a used bitmap into words (len(words) must be the
// level's usedStride; words must be zeroed).
func packUsed(words []uint64, used []bool) {
	for i, u := range used {
		if u {
			words[i/64] |= 1 << (i % 64)
		}
	}
}

// unpackUsed expands node i's bitmap into dst (reusing its capacity).
func (a *arenaLevel) unpackUsed(i int, dst []bool) []bool {
	if cap(dst) < a.inputs {
		dst = make([]bool, a.inputs)
	}
	dst = dst[:a.inputs]
	words := a.usedBits[i*a.usedStride : (i+1)*a.usedStride]
	for j := range dst {
		dst[j] = words[j/64]&(1<<(j%64)) != 0
	}
	return dst
}

// traceOf reconstructs the schedule reaching node i by replaying parent
// indices up the retired-level chain — the arena replacement for the
// classic node.trace() pointer walk.
func (a *arenaLevel) traceOf(i int) ioa.Schedule {
	return a.appendTraceOf(nil, i)
}

// appendTraceOf appends node i's schedule to dst, walking the offset
// chain twice — once to find the root index and length, once to fill
// backwards — the arena twin of (*node).appendTrace.
func (a *arenaLevel) appendTraceOf(dst ioa.Schedule, i int) ioa.Schedule {
	steps, idx, lvl := 0, i, a
	for lvl.prev != nil {
		steps++
		idx = int(lvl.parents[idx])
		lvl = lvl.prev
	}
	if lvl.prefix != nil {
		dst = append(dst, lvl.prefix[idx]...)
	}
	start := len(dst)
	dst = slices.Grow(dst, steps)[:start+steps]
	k := start + steps - 1
	idx, lvl = i, a
	for lvl.prev != nil {
		dst[k] = lvl.actions[idx]
		k--
		idx = int(lvl.parents[idx])
		lvl = lvl.prev
	}
	return dst
}

// retire drops the slabs only a live frontier needs, leaving the trace
// skeleton. Retiring the level a violation was found in would lose
// nothing — traces use actions/parents, which survive.
func (a *arenaLevel) retire() {
	a.states = nil
	a.monitors = nil
	a.usedBits = nil
}

// absorb appends one worker's batch to the level and clears the batch
// for reuse.
func (a *arenaLevel) absorb(ab *arenaBatch) {
	a.actions = append(a.actions, ab.actions...)
	a.parents = append(a.parents, ab.parents...)
	a.states = append(a.states, ab.states...)
	a.monitors = append(a.monitors, ab.monitors...)
	a.usedBits = append(a.usedBits, ab.usedBits...)
	ab.clearForReuse()
}

// arenaBatch is one worker's private admission slab for the level under
// construction: the arena-mode replacement of workerBufs.next. The
// backing arrays persist across levels, so steady-state admission is
// slab appends, not per-node allocations.
type arenaBatch struct {
	actions  []ioa.Action
	parents  []uint32
	states   []ioa.State
	monitors []Monitor
	usedBits []uint64
}

func (ab *arenaBatch) size() int { return len(ab.actions) }

// add admits one successor: parent bitmap copied from the parent level
// with the injected input's bit set.
func (ab *arenaBatch) add(parent *arenaLevel, parentIdx int, sj *succ) {
	ab.actions = append(ab.actions, sj.action)
	ab.parents = append(ab.parents, uint32(parentIdx))
	ab.states = append(ab.states, sj.state)
	ab.monitors = append(ab.monitors, sj.monitor)
	stride := parent.usedStride
	base := len(ab.usedBits)
	ab.usedBits = append(ab.usedBits, parent.usedBits[parentIdx*stride:(parentIdx+1)*stride]...)
	if sj.usedIdx >= 0 {
		ab.usedBits[base+sj.usedIdx/64] |= 1 << (sj.usedIdx % 64)
	}
}

// clearForReuse empties the batch, nilling the pointer-bearing slots so
// a shrunken next level does not pin states and monitors in the slack
// capacity — the same stale-tail discipline the classic path applies to
// its frontier slices.
func (ab *arenaBatch) clearForReuse() {
	clear(ab.actions[:cap(ab.actions)])
	ab.actions = ab.actions[:0]
	clear(ab.states[:cap(ab.states)])
	ab.states = ab.states[:0]
	clear(ab.monitors[:cap(ab.monitors)])
	ab.monitors = ab.monitors[:0]
	ab.parents = ab.parents[:0]
	ab.usedBits = ab.usedBits[:0]
}
