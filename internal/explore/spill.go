package explore

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the explorer's third seen-set: hashed dedup whose cold
// majority lives on disk. Exhaustive searches are memory-bound on the
// seen-set long before they are CPU-bound (ROADMAP "Disk-spill seen-set
// + flat frontier arena"); spilledSeen keeps a bounded in-memory front —
// the recently admitted sums plus a Bloom filter over everything spilled
// — and moves cold sums into sorted run files under Config.SpillDir
// whenever the front outgrows Config.SpillThreshold.
//
// A run file reuses the checkpoint codec's sorted-sum block format:
// JSONL, a magic/version header, base64-encoded little-endian u64 chunks
// of at most ckptHashesPerLine sums per line, and a CRC32-IEEE footer
// covering header and body (the footer also carries the sum count, which
// a streaming writer only knows at the end). The decoder is strict —
// wrong magic or version, a malformed line, a count or checksum
// mismatch, out-of-order sums or trailing data all error wrapping the
// typed ErrSpillFormat, and never panic (FuzzSpillRunDecode pins this).
//
// Membership is checked front first, then — only when the Bloom filter
// answers "maybe" — by binary-searching the runs' chunk indexes and
// reading back a single chunk per candidate run. Runs are pairwise
// disjoint and disjoint from the front (a sum is checked against both
// before admission, and spilling moves sums atomically from front to
// run), so Len is the plain total and the merged enumeration needs no
// deduplication. When the run count reaches spillMaxRuns the runs are
// compacted into one by a streaming k-way merge, which also resizes and
// rebuilds the Bloom filter. The merge invariant — every run strictly
// ascending, all runs pairwise disjoint — is what makes mergedHashes() a
// cheap streaming merge instead of an extract-and-sort of the whole set.

// ErrSpillFormat reports a structurally invalid spill run file.
var ErrSpillFormat = errors.New("explore: invalid spill run")

// SpillRunMagic identifies spill run files.
const SpillRunMagic = "dl-explore-spillrun"

// SpillRunVersion is the current run format version.
const SpillRunVersion = 1

// DefaultSpillThreshold is the in-memory front budget (sums) when
// Config.SpillDir is set but Config.SpillThreshold is zero.
const DefaultSpillThreshold = 1 << 20

// spillMaxRuns caps the run-file count before a compacting merge: small
// enough that a Bloom false positive touches few files, large enough
// that merges amortise.
const spillMaxRuns = 8

// wire types of the spill run JSONL lines. Hash lines reuse ckptSeenLine.
type spillRunHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
}

type spillRunFooter struct {
	End   *int   `json:"end"`
	Count int64  `json:"count"`
	CRC   string `json:"crc"`
}

// spillChunk locates one hash line inside a run file for random access.
type spillChunk struct {
	first uint64 // first (smallest) sum in the chunk
	off   int64  // byte offset of the line
	size  int32  // line length including the trailing newline
	n     int32  // sums in the chunk
}

// spillRun is one immutable sorted run on disk plus its in-memory chunk
// index and a one-chunk read cache (duplicate probes cluster by level,
// so the last chunk read is often the next one needed).
type spillRun struct {
	path   string
	f      *os.File
	count  int64
	last   uint64 // largest sum in the run
	bytes  int64
	chunks []spillChunk

	cacheMu  sync.Mutex
	cacheIdx int
	cache    []uint64
}

// spillRunWriter streams an ascending sum sequence into the run format,
// buffering one chunk at a time; count and CRC land in the footer.
type spillRunWriter struct {
	path  string
	f     *os.File
	w     *bufio.Writer
	crc   hash.Hash32
	off   int64
	count int64
	prev  uint64
	chunk []uint64
	idx   []spillChunk
	lines int
}

func newSpillRunWriter(path string) (*spillRunWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &spillRunWriter{path: path, f: f, w: bufio.NewWriterSize(f, 1<<20), crc: crc32.NewIEEE()}
	if err := w.writeLine(spillRunHeader{Magic: SpillRunMagic, Version: SpillRunVersion}); err != nil {
		w.abort()
		return nil, err
	}
	return w, nil
}

// abort closes and removes the partial file.
func (w *spillRunWriter) abort() {
	w.f.Close()
	os.Remove(w.path)
}

// writeLine marshals v as one JSONL line, feeding the CRC and the offset
// counter.
func (w *spillRunWriter) writeLine(v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	w.crc.Write(blob)
	n, err := w.w.Write(blob)
	w.off += int64(n)
	w.lines++
	return err
}

// add appends one sum; sums must arrive strictly ascending (the callers
// feed merged sorted sources, so this is an invariant check, not a sort).
func (w *spillRunWriter) add(sum uint64) error {
	if w.count > 0 && sum <= w.prev {
		return fmt.Errorf("explore: spill writer fed out-of-order sum %016x after %016x", sum, w.prev)
	}
	w.prev = sum
	w.count++
	w.chunk = append(w.chunk, sum)
	if len(w.chunk) >= ckptHashesPerLine {
		return w.flushChunk()
	}
	return nil
}

func (w *spillRunWriter) flushChunk() error {
	if len(w.chunk) == 0 {
		return nil
	}
	buf := make([]byte, 0, len(w.chunk)*8)
	for _, h := range w.chunk {
		buf = binary.LittleEndian.AppendUint64(buf, h)
	}
	ck := spillChunk{first: w.chunk[0], off: w.off, n: int32(len(w.chunk))}
	if err := w.writeLine(ckptSeenLine{H: base64.StdEncoding.EncodeToString(buf)}); err != nil {
		return err
	}
	ck.size = int32(w.off - ck.off)
	w.idx = append(w.idx, ck)
	w.chunk = w.chunk[:0]
	return nil
}

// finish flushes, writes the CRC footer, syncs, and returns the readable
// run (the writer's file handle is handed over for ReadAt access).
func (w *spillRunWriter) finish() (*spillRun, error) {
	fail := func(err error) (*spillRun, error) {
		w.abort()
		return nil, err
	}
	if err := w.flushChunk(); err != nil {
		return fail(err)
	}
	body := w.lines
	foot := spillRunFooter{End: &body, Count: w.count, CRC: fmt.Sprintf("%08x", w.crc.Sum32())}
	blob, err := json.Marshal(foot)
	if err != nil {
		return fail(err)
	}
	if _, err := w.w.Write(append(blob, '\n')); err != nil {
		return fail(err)
	}
	if err := w.w.Flush(); err != nil {
		return fail(err)
	}
	if err := w.f.Sync(); err != nil {
		return fail(err)
	}
	size, err := w.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fail(err)
	}
	return &spillRun{
		path: w.path, f: w.f, count: w.count, last: w.prev,
		bytes: size, chunks: w.idx, cacheIdx: -1,
	}, nil
}

// writeSpillRun writes one fully in-memory ascending batch as a run file.
func writeSpillRun(path string, sums []uint64) (*spillRun, error) {
	w, err := newSpillRunWriter(path)
	if err != nil {
		return nil, err
	}
	for _, s := range sums {
		if err := w.add(s); err != nil {
			w.abort()
			return nil, err
		}
	}
	return w.finish()
}

// EncodeSpillRun writes sums — which must be strictly ascending — to w
// in the run file format. The spill path itself uses the streaming
// spillRunWriter (it needs ReadAt-able storage and a chunk index); this
// is the plain-stream counterpart paired with DecodeSpillRun for tests,
// fuzzing and tooling.
func EncodeSpillRun(w io.Writer, sums []uint64) error {
	crc := crc32.NewIEEE()
	lines := 0
	writeLine := func(v any) error {
		blob, err := json.Marshal(v)
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		crc.Write(blob)
		lines++
		_, err = w.Write(blob)
		return err
	}
	if err := writeLine(spillRunHeader{Magic: SpillRunMagic, Version: SpillRunVersion}); err != nil {
		return err
	}
	buf := make([]byte, 0, ckptHashesPerLine*8)
	for i := 0; i < len(sums); i += ckptHashesPerLine {
		end := min(i+ckptHashesPerLine, len(sums))
		buf = buf[:0]
		for j := i; j < end; j++ {
			if j > 0 && sums[j] <= sums[j-1] {
				return fmt.Errorf("explore: EncodeSpillRun fed out-of-order sums")
			}
			buf = binary.LittleEndian.AppendUint64(buf, sums[j])
		}
		if err := writeLine(ckptSeenLine{H: base64.StdEncoding.EncodeToString(buf)}); err != nil {
			return err
		}
	}
	foot := spillRunFooter{End: &lines, Count: int64(len(sums)), CRC: fmt.Sprintf("%08x", crc.Sum32())}
	blob, err := json.Marshal(foot)
	if err != nil {
		return err
	}
	_, err = w.Write(append(blob, '\n'))
	return err
}

// DecodeSpillRun reads and validates one spill run stream, returning the
// sums in ascending order. Every structural deviation — bad magic,
// unknown version, a malformed line, out-of-order or duplicate sums, a
// count or checksum mismatch, trailing data — is an error wrapping
// ErrSpillFormat; the decoder never panics on corrupt or truncated
// input.
func DecodeSpillRun(r io.Reader) ([]uint64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<23)
	crc := crc32.NewIEEE()
	lineNo := 0
	nextLine := func() ([]byte, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrSpillFormat, err)
			}
			return nil, fmt.Errorf("%w: truncated after %d lines", ErrSpillFormat, lineNo)
		}
		lineNo++
		return sc.Bytes(), nil
	}
	strict := func(line []byte, v any) error {
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return fmt.Errorf("%w: line %d: %v", ErrSpillFormat, lineNo, err)
		}
		if dec.More() {
			return fmt.Errorf("%w: line %d: trailing data on line", ErrSpillFormat, lineNo)
		}
		return nil
	}
	// The CRC covers the header and body lines but not the footer, which
	// carries it; a line is folded in only once classified as non-footer.
	addCRC := func(line []byte) {
		crc.Write(line)
		crc.Write([]byte{'\n'})
	}

	line, err := nextLine()
	if err != nil {
		return nil, err
	}
	var head spillRunHeader
	if err := strict(line, &head); err != nil {
		return nil, err
	}
	if head.Magic != SpillRunMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrSpillFormat, head.Magic)
	}
	if head.Version != SpillRunVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads version %d)",
			ErrSpillFormat, head.Version, SpillRunVersion)
	}
	addCRC(line)

	var sums []uint64
	for {
		line, err := nextLine()
		if err != nil {
			return nil, err
		}
		// Body lines carry "h"; the first line that does not parse as one
		// must be the footer.
		var sl ckptSeenLine
		if err := strict(line, &sl); err == nil && sl.H != "" && sl.K == nil {
			blob, err := base64.StdEncoding.DecodeString(sl.H)
			if err != nil || len(blob) == 0 || len(blob)%8 != 0 {
				return nil, fmt.Errorf("%w: line %d: bad sum chunk", ErrSpillFormat, lineNo)
			}
			for ; len(blob) >= 8; blob = blob[8:] {
				s := binary.LittleEndian.Uint64(blob)
				if len(sums) > 0 && s <= sums[len(sums)-1] {
					return nil, fmt.Errorf("%w: line %d: sums out of order (%016x after %016x)",
						ErrSpillFormat, lineNo, s, sums[len(sums)-1])
				}
				sums = append(sums, s)
			}
			addCRC(line)
			continue
		}
		bodyLines := lineNo - 1
		var foot spillRunFooter
		if err := strict(line, &foot); err != nil {
			return nil, err
		}
		if foot.End == nil || *foot.End != bodyLines {
			return nil, fmt.Errorf("%w: footer line count mismatch", ErrSpillFormat)
		}
		if foot.Count != int64(len(sums)) {
			return nil, fmt.Errorf("%w: footer count %d, decoded %d sums", ErrSpillFormat, foot.Count, len(sums))
		}
		if foot.CRC != fmt.Sprintf("%08x", crc.Sum32()) {
			return nil, fmt.Errorf("%w: checksum mismatch (file corrupt?)", ErrSpillFormat)
		}
		if sc.Scan() {
			return nil, fmt.Errorf("%w: data after footer", ErrSpillFormat)
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpillFormat, err)
		}
		return sums, nil
	}
}

// contains reports membership of sum in the run by chunk-index binary
// search plus at most one (cached) chunk read.
func (r *spillRun) contains(sum uint64) (bool, error) {
	if len(r.chunks) == 0 || sum < r.chunks[0].first || sum > r.last {
		return false, nil
	}
	// Last chunk whose first <= sum.
	idx := sort.Search(len(r.chunks), func(i int) bool { return r.chunks[i].first > sum }) - 1
	if idx < 0 {
		return false, nil
	}
	r.cacheMu.Lock()
	defer r.cacheMu.Unlock()
	if r.cacheIdx != idx {
		sums, err := r.readChunk(idx, r.cache[:0])
		if err != nil {
			return false, err
		}
		r.cache, r.cacheIdx = sums, idx
	}
	c := r.cache
	j := sort.Search(len(c), func(i int) bool { return c[i] >= sum })
	return j < len(c) && c[j] == sum, nil
}

// readChunk reads and decodes one hash line by its recorded offset,
// appending the sums to dst.
func (r *spillRun) readChunk(idx int, dst []uint64) ([]uint64, error) {
	ck := r.chunks[idx]
	buf := make([]byte, ck.size)
	if _, err := r.f.ReadAt(buf, ck.off); err != nil {
		return nil, fmt.Errorf("%w: reading chunk at %d: %v", ErrSpillFormat, ck.off, err)
	}
	if len(buf) == 0 || buf[len(buf)-1] != '\n' {
		return nil, fmt.Errorf("%w: chunk at %d not newline-terminated", ErrSpillFormat, ck.off)
	}
	var sl ckptSeenLine
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sl); err != nil || sl.H == "" {
		return nil, fmt.Errorf("%w: chunk at %d malformed", ErrSpillFormat, ck.off)
	}
	blob, err := base64.StdEncoding.DecodeString(sl.H)
	if err != nil || int32(len(blob)) != ck.n*8 {
		return nil, fmt.Errorf("%w: chunk at %d: bad sum payload", ErrSpillFormat, ck.off)
	}
	for ; len(blob) >= 8; blob = blob[8:] {
		dst = append(dst, binary.LittleEndian.Uint64(blob))
	}
	return dst, nil
}

// iter returns a streaming cursor over the run's sums in ascending
// order, reading one chunk at a time.
func (r *spillRun) iter() *spillRunIter {
	return &spillRunIter{run: r}
}

type spillRunIter struct {
	run   *spillRun
	chunk int
	buf   []uint64
	pos   int
}

// next returns the next sum; ok is false at exhaustion.
func (it *spillRunIter) next() (sum uint64, ok bool, err error) {
	for it.pos >= len(it.buf) {
		if it.chunk >= len(it.run.chunks) {
			return 0, false, nil
		}
		it.buf, err = it.run.readChunk(it.chunk, it.buf[:0])
		if err != nil {
			return 0, false, err
		}
		it.chunk++
		it.pos = 0
	}
	sum = it.buf[it.pos]
	it.pos++
	return sum, true, nil
}

func (r *spillRun) close(remove bool) {
	r.f.Close()
	if remove {
		os.Remove(r.path)
	}
}

// ---- Bloom front ----

// spillBloom is a fixed-size Bloom filter over every spilled sum: the
// cheap "definitely not on disk" gate in front of the run files. It is
// mutated only while the runs lock is held for writing and read under
// the read lock, so it needs no atomics. A false positive costs one
// chunk read per run; false negatives are impossible, so correctness
// never depends on it.
type spillBloom struct {
	bits []uint64
	mask uint64
}

// bloomHashes is the number of probe positions per key; with ~12 bits
// per key this yields a false-positive rate well under 1%.
const bloomHashes = 7

// newSpillBloom sizes the filter for about capacity keys at ~12 bits
// each, rounded up to a power of two of words.
func newSpillBloom(capacity int) *spillBloom {
	words := 1
	for words*64 < capacity*12 {
		words <<= 1
	}
	return &spillBloom{bits: make([]uint64, words), mask: uint64(words*64 - 1)}
}

// Probe positions are double-hashing derived (Kirsch–Mitzenmacher) from
// two independent mixes of the sum.
func (b *spillBloom) add(sum uint64) {
	h1, h2 := mix64(sum), mix64(sum^0xa5a5a5a5a5a5a5a5)
	for i := uint64(0); i < bloomHashes; i++ {
		pos := (h1 + i*h2) & b.mask
		b.bits[pos>>6] |= 1 << (pos & 63)
	}
}

func (b *spillBloom) maybe(sum uint64) bool {
	h1, h2 := mix64(sum), mix64(sum^0xa5a5a5a5a5a5a5a5)
	for i := uint64(0); i < bloomHashes; i++ {
		pos := (h1 + i*h2) & b.mask
		if b.bits[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

func (b *spillBloom) bytes() int64 { return int64(len(b.bits) * 8) }

// ---- the spilled seen-set ----

// spillStats is the observability snapshot of a spilled set.
type spillStats struct {
	Spills    int64 // spill events
	Runs      int   // live run files
	Spilled   int64 // sums currently on disk
	DiskBytes int64 // bytes across live run files
	Merges    int64 // compacting merges performed
	Probes    int64 // run lookups past the Bloom filter
}

// spilledSeen dedups on hash64 sums like hashedSeen, but bounds its
// in-memory footprint: a striped recent-window front plus a Bloom
// filter, with the cold majority in sorted run files under dir.
type spilledSeen struct {
	seed      uint64
	dir       string
	threshold int

	front [seenShards]struct {
		mu sync.Mutex
		m  map[uint64]struct{}
		_  [40]byte
	}
	frontCount atomic.Int64

	spilling atomic.Bool
	probes   atomic.Int64

	runsMu    sync.RWMutex
	runs      []*spillRun
	blm       *spillBloom
	spilled   int64
	diskBytes int64
	runSeq    int
	spills    int64
	merges    int64

	errMu    sync.Mutex
	firstErr error
}

// newSpilledSeen builds the set; dir must exist and be writable.
func newSpilledSeen(seed uint64, dir string, threshold int) *spilledSeen {
	if threshold <= 0 {
		threshold = DefaultSpillThreshold
	}
	s := &spilledSeen{seed: seed, dir: dir, threshold: threshold, blm: newSpillBloom(threshold)}
	for i := range s.front {
		s.front[i].m = make(map[uint64]struct{})
	}
	return s
}

// fail records the first disk error; the search surfaces it at the next
// level barrier (Add itself has a boolean-only contract).
func (s *spilledSeen) fail(err error) {
	s.errMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.errMu.Unlock()
}

// Err returns the first disk error the set has hit, if any.
func (s *spilledSeen) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

func (s *spilledSeen) Add(key []byte) bool {
	return s.addSum(hash64(s.seed, key))
}

// addSum admits a precomputed fingerprint exactly once across front and
// runs (the checkpoint restore path also feeds persisted fingerprints
// straight back in).
func (s *spilledSeen) addSum(sum uint64) bool {
	sh := &s.front[shardOf(sum)]
	sh.mu.Lock()
	_, dup := sh.m[sum]
	sh.mu.Unlock()
	if dup {
		return false
	}
	if s.inSpilled(sum) {
		return false
	}
	// Fresh at first glance: insert, rechecking under the lock (a racing
	// admitter of the same sum may have won meanwhile).
	sh.mu.Lock()
	if _, dup := sh.m[sum]; dup {
		sh.mu.Unlock()
		return false
	}
	sh.m[sum] = struct{}{}
	sh.mu.Unlock()
	if s.frontCount.Add(1) >= int64(s.threshold) {
		s.spill()
	}
	return true
}

// inSpilled consults the Bloom filter and, on a maybe, the run files. A
// disk error is recorded and the sum treated as fresh: the search aborts
// at the next level barrier, before any result built on the answer can
// escape.
func (s *spilledSeen) inSpilled(sum uint64) bool {
	s.runsMu.RLock()
	defer s.runsMu.RUnlock()
	if len(s.runs) == 0 || !s.blm.maybe(sum) {
		return false
	}
	for _, r := range s.runs {
		s.probes.Add(1)
		ok, err := r.contains(sum)
		if err != nil {
			s.fail(err)
			return false
		}
		if ok {
			return true
		}
	}
	return false
}

// spill moves the current front to disk: collect and sort the front's
// sums, write them as one run (or fold them into a compacting merge of
// all runs when the run count is at its cap), publish the new run and
// Bloom bits, and only then delete exactly the collected sums from the
// front. Admissions racing in between collect and delete survive in the
// maps, and a concurrent lookup always finds a sum in the front or the
// runs, because publish precedes delete.
func (s *spilledSeen) spill() {
	if !s.spilling.CompareAndSwap(false, true) {
		return
	}
	defer s.spilling.Store(false)
	if s.frontCount.Load() < int64(s.threshold) {
		return // another spill drained the front while we raced for the flag
	}

	var collected [seenShards][]uint64
	total := 0
	for i := range s.front {
		sh := &s.front[i]
		batch := make([]uint64, 0, 1024)
		sh.mu.Lock()
		for sum := range sh.m {
			batch = append(batch, sum)
		}
		sh.mu.Unlock()
		sort.Slice(batch, func(a, b int) bool { return batch[a] < batch[b] })
		collected[i] = batch
		total += len(batch)
	}
	if total == 0 {
		return
	}
	// Shards are consecutive ascending ranges (shardOf), so the globally
	// sorted batch is the concatenation.
	batch := make([]uint64, 0, total)
	for i := range collected {
		batch = append(batch, collected[i]...)
	}

	s.runsMu.RLock()
	nRuns := len(s.runs)
	s.runsMu.RUnlock()
	var err error
	if nRuns+1 > spillMaxRuns {
		err = s.mergeWith(batch)
	} else {
		err = s.writeNewRun(batch)
	}
	if err != nil {
		s.fail(err)
		return // the front keeps the sums; membership stays correct
	}

	// The batch is durable and published: drop exactly it from the front.
	// Admissions that raced in after collection stay in the maps.
	for i := range s.front {
		sh := &s.front[i]
		sh.mu.Lock()
		for _, sum := range collected[i] {
			delete(sh.m, sum)
		}
		sh.mu.Unlock()
	}
	s.frontCount.Add(int64(-total))
}

// writeNewRun appends one run file holding batch and publishes it.
func (s *spilledSeen) writeNewRun(batch []uint64) error {
	s.runsMu.Lock()
	seq := s.runSeq
	s.runSeq++
	s.runsMu.Unlock()
	run, err := writeSpillRun(s.runPath(seq), batch)
	if err != nil {
		return err
	}
	s.runsMu.Lock()
	s.runs = append(s.runs, run)
	for _, sum := range batch {
		s.blm.add(sum)
	}
	s.spilled += int64(len(batch))
	s.diskBytes += run.bytes
	s.spills++
	s.runsMu.Unlock()
	return nil
}

// mergeWith streams all existing runs plus batch into one new run,
// rebuilding the Bloom filter at the new cardinality, then swaps the run
// list and removes the old files. Lookups proceed against the old runs
// until the swap.
func (s *spilledSeen) mergeWith(batch []uint64) error {
	s.runsMu.Lock()
	old := append([]*spillRun(nil), s.runs...)
	seq := s.runSeq
	s.runSeq++
	s.runsMu.Unlock()

	total := int64(len(batch))
	for _, r := range old {
		total += r.count
	}
	blm := newSpillBloom(int(total)*2 + s.threshold)

	w, err := newSpillRunWriter(s.runPath(seq))
	if err != nil {
		return err
	}
	abort := func(err error) error {
		w.abort()
		return err
	}

	// K-way merge: run iterators plus the in-memory batch. Sources are
	// pairwise disjoint, so strictly ascending output needs no dedup.
	iters := make([]*spillRunIter, len(old))
	heads := make([]uint64, len(old))
	alive := make([]bool, len(old))
	for i, r := range old {
		iters[i] = r.iter()
		heads[i], alive[i], err = iters[i].next()
		if err != nil {
			return abort(err)
		}
	}
	bi := 0
	for {
		best, bestSum := -1, uint64(0)
		for i := range iters {
			if alive[i] && (best == -1 || heads[i] < bestSum) {
				best, bestSum = i, heads[i]
			}
		}
		useBatch := bi < len(batch) && (best == -1 || batch[bi] < bestSum)
		if best == -1 && !useBatch {
			break
		}
		var sum uint64
		if useBatch {
			sum = batch[bi]
			bi++
		} else {
			sum = bestSum
			heads[best], alive[best], err = iters[best].next()
			if err != nil {
				return abort(err)
			}
		}
		if err := w.add(sum); err != nil {
			return abort(err)
		}
		blm.add(sum)
	}
	merged, err := w.finish()
	if err != nil {
		return err
	}

	s.runsMu.Lock()
	s.runs = []*spillRun{merged}
	s.blm = blm
	s.spilled = merged.count
	s.diskBytes = merged.bytes
	s.spills++
	s.merges++
	s.runsMu.Unlock()
	for _, r := range old {
		r.close(true)
	}
	return nil
}

func (s *spilledSeen) runPath(seq int) string {
	return filepath.Join(s.dir, fmt.Sprintf("run-%06d.sums", seq))
}

// hashSeed exposes the seed for checkpointing.
func (s *spilledSeen) hashSeed() uint64 { return s.seed }

// mergedHashes streams every admitted sum — front and runs — in
// ascending order: the checkpoint payload. The sources are disjoint
// sorted sequences, so this is a k-way merge, not an extract-and-sort.
func (s *spilledSeen) mergedHashes() ([]uint64, error) {
	s.runsMu.RLock()
	defer s.runsMu.RUnlock()

	frontSums := make([]uint64, 0, s.frontCount.Load())
	scratch := []uint64(nil)
	for i := range s.front {
		sh := &s.front[i]
		scratch = scratch[:0]
		sh.mu.Lock()
		for sum := range sh.m {
			scratch = append(scratch, sum)
		}
		sh.mu.Unlock()
		sort.Slice(scratch, func(a, b int) bool { return scratch[a] < scratch[b] })
		frontSums = append(frontSums, scratch...)
	}

	out := make([]uint64, 0, int64(len(frontSums))+s.spilled)
	iters := make([]*spillRunIter, len(s.runs))
	heads := make([]uint64, len(s.runs))
	alive := make([]bool, len(s.runs))
	var err error
	for i, r := range s.runs {
		iters[i] = r.iter()
		heads[i], alive[i], err = iters[i].next()
		if err != nil {
			return nil, err
		}
	}
	fi := 0
	for {
		best := -1
		var bestSum uint64
		for i := range iters {
			if alive[i] && (best == -1 || heads[i] < bestSum) {
				best, bestSum = i, heads[i]
			}
		}
		useFront := fi < len(frontSums) && (best == -1 || frontSums[fi] < bestSum)
		switch {
		case useFront:
			out = append(out, frontSums[fi])
			fi++
		case best >= 0:
			out = append(out, bestSum)
			heads[best], alive[best], err = iters[best].next()
			if err != nil {
				return nil, err
			}
		default:
			return out, nil
		}
	}
}

func (s *spilledSeen) Len() int {
	s.runsMu.RLock()
	spilled := s.spilled
	s.runsMu.RUnlock()
	return int(s.frontCount.Load() + spilled)
}

// ApproxBytes reports the set's in-memory footprint: the front maps, the
// Bloom filter, and the run chunk indexes — the figure that stays
// bounded no matter how many sums have spilled. Disk bytes are reported
// separately via stats().
func (s *spilledSeen) ApproxBytes() int64 {
	b := s.frontCount.Load() * hashedEntryBytes
	s.runsMu.RLock()
	b += s.blm.bytes()
	for _, r := range s.runs {
		b += int64(len(r.chunks))*24 + int64(cap(r.cache))*8
	}
	s.runsMu.RUnlock()
	return b
}

// ShardLens reports the in-memory front's shard occupancy (the spilled
// majority is off-heap and unsharded).
func (s *spilledSeen) ShardLens() []int {
	out := make([]int, seenShards)
	for i := range s.front {
		s.front[i].mu.Lock()
		out[i] = len(s.front[i].m)
		s.front[i].mu.Unlock()
	}
	return out
}

func (s *spilledSeen) stats() spillStats {
	s.runsMu.RLock()
	defer s.runsMu.RUnlock()
	return spillStats{
		Spills:    s.spills,
		Runs:      len(s.runs),
		Spilled:   s.spilled,
		DiskBytes: s.diskBytes,
		Merges:    s.merges,
		Probes:    s.probes.Load(),
	}
}

// close releases and deletes the run files: they are private to one
// search — the checkpoint, not the spill dir, is the durable artifact.
func (s *spilledSeen) close() {
	s.runsMu.Lock()
	defer s.runsMu.Unlock()
	for _, r := range s.runs {
		r.close(true)
	}
	s.runs = nil
}
