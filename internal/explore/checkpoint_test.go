package explore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

// crashSearch is the cheap violating configuration (ABP over FIFO with a
// receiver crash finds DL4) used throughout the checkpoint tests.
func crashSearch(t *testing.T) (*core.System, Config) {
	t.Helper()
	sys, err := core.NewSystem(protocol.NewABP(), true)
	if err != nil {
		t.Fatal(err)
	}
	return sys, Config{
		Inputs:       pool(1, ioa.RT),
		Monitor:      NewSafetyMonitor(false),
		MaxDepth:     20,
		MaxInTransit: 2,
	}
}

// verifySearch is the violation-free configuration (Go-Back-N over FIFO
// exhausts its bounded space cleanly).
func verifySearch(t *testing.T) (*core.System, Config) {
	t.Helper()
	sys, err := core.NewSystem(protocol.NewGoBackN(2, 1), true)
	if err != nil {
		t.Fatal(err)
	}
	return sys, Config{
		Inputs:       pool(2),
		Monitor:      NewSafetyMonitor(true),
		MaxDepth:     22,
		MaxInTransit: 2,
	}
}

// stopAtLevel arms cfg to request a graceful stop after the k-th
// completed BFS level, checkpointing to path.
func stopAtLevel(cfg *Config, k int, path string) {
	stop := make(chan struct{})
	levels := 0
	prev := cfg.OnLevel
	cfg.OnLevel = func(st LevelStats) {
		if prev != nil {
			prev(st)
		}
		levels++
		if levels == k {
			close(stop)
		}
	}
	cfg.Stop = stop
	cfg.Checkpoint = CheckpointOptions{Path: path}
}

// requireEqualResults asserts two Results agree on everything except the
// Interrupted marker (and timing-free SeenSetBytes, which is compared
// too — it is a pure function of the dedup-set contents).
func requireEqualResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	g, w := *got, *want
	g.Interrupted, w.Interrupted = false, false
	// SeenSetBytes reports the representation's real footprint, and the
	// representations legitimately differ: a checkpointing run keeps
	// sorted runs for incremental barrier merges, a spill run keeps a
	// bounded front. Search-outcome equivalence is everything else.
	g.SeenSetBytes, w.SeenSetBytes = 0, 0
	g.Spill, w.Spill = nil, nil
	if !reflect.DeepEqual(g.Violation, w.Violation) {
		t.Errorf("%s: violation = %v, want %v", label, g.Violation, w.Violation)
	}
	if !reflect.DeepEqual(g.Trace, w.Trace) {
		t.Errorf("%s: trace differs:\ngot:\n%s\nwant:\n%s",
			label, ioa.FormatSchedule(g.Trace), ioa.FormatSchedule(w.Trace))
	}
	g.Violation, w.Violation = nil, nil
	g.Trace, w.Trace = nil, nil
	if !reflect.DeepEqual(g, w) {
		t.Errorf("%s: result = %+v, want %+v", label, g, w)
	}
}

// TestDepthReachedMatchesTraceLength: regression for the violation-path
// off-by-one — the violating node lives one level below the frontier
// being expanded, so DepthReached must equal the trace length.
func TestDepthReachedMatchesTraceLength(t *testing.T) {
	sys, cfg := crashSearch(t)
	res, err := BFS(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected a violation")
	}
	if res.DepthReached != len(res.Trace) {
		t.Errorf("DepthReached = %d, want len(Trace) = %d", res.DepthReached, len(res.Trace))
	}
}

// TestDepthLimitedBoundaries: a search cut off at MaxDepth with frontier
// remaining reports DepthLimited (Exhausted stays true — it means
// exhausted within the bound); a search whose frontier empties before
// the bound reports DepthLimited=false.
func TestDepthLimitedBoundaries(t *testing.T) {
	sys, cfg := verifySearch(t)
	cfg.MaxDepth = 5
	res, err := BFS(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DepthLimited {
		t.Error("search cut at MaxDepth=5 with work remaining: DepthLimited = false")
	}
	if !res.Exhausted {
		t.Error("depth-limited but within budget: Exhausted should stay true (within-bound certificate)")
	}
	if res.DepthReached != 5 {
		t.Errorf("DepthReached = %d, want 5", res.DepthReached)
	}

	// A message-free pool quiesces in a couple of steps: the frontier
	// empties far below MaxDepth, so the bound was not binding.
	sys2, cfg2 := crashSearch(t)
	cfg2.Inputs = []ioa.Action{ioa.Wake(ioa.TR), ioa.Wake(ioa.RT)}
	cfg2.MaxDepth = DefaultMaxDepth
	res2, err := BFS(sys2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Violation != nil {
		t.Fatalf("unexpected violation: %s", res2.Violation)
	}
	if res2.DepthLimited {
		t.Errorf("frontier emptied at depth %d < MaxDepth: DepthLimited should be false", res2.DepthReached)
	}
	if !res2.Exhausted {
		t.Error("clean finite search: Exhausted = false")
	}
}

// TestCheckpointRoundTrip: Encode→Decode is the identity on the decoded
// form, in both dedup modes, including an empty frontier.
func TestCheckpointRoundTrip(t *testing.T) {
	for _, c := range []*Checkpoint{
		{
			ConfigDigest: "00112233aabbccdd",
			Level:        7,
			DepthReached: 6,
			States:       12345,
			HashSeed:     0xdeadbeefcafef00d,
			Frontier: []ioa.Schedule{
				{ioa.Wake(ioa.TR), ioa.SendMsg(ioa.TR, "a")},
				{ioa.Wake(ioa.RT)},
			},
			SeenHashes: []uint64{1, 2, 3, 1 << 63},
		},
		{
			ConfigDigest: "ffeeddccbbaa9988",
			Level:        3,
			DepthReached: 3,
			States:       9,
			Truncated:    true,
			Exact:        true,
			SeenKeys:     []string{"", "a∥b|m|01", string([]byte{0, 1, 2, 255})},
		},
		{ConfigDigest: "0", States: 1, HashSeed: 42, SeenHashes: []uint64{7}},
	} {
		var buf bytes.Buffer
		if err := EncodeCheckpoint(&buf, c); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode: %v\nfile:\n%s", err, buf.String())
		}
		// Normalise nil vs empty slices for the comparison.
		if len(got.Frontier) == 0 {
			got.Frontier, c.Frontier = nil, nil
		}
		if !reflect.DeepEqual(got, c) {
			t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, c)
		}
	}
}

// TestCheckpointDecodeRejectsCorruption: targeted corruptions of a valid
// file — truncations, bit flips, tampered counters, trailing garbage —
// must all error (never silently misresume).
func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeCheckpoint(&buf, &Checkpoint{
		ConfigDigest: "00112233aabbccdd",
		Level:        2,
		DepthReached: 1,
		States:       4,
		HashSeed:     99,
		Frontier:     []ioa.Schedule{{ioa.Wake(ioa.TR)}, {ioa.Wake(ioa.RT)}},
		SeenHashes:   []uint64{10, 20, 30, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := DecodeCheckpoint(bytes.NewReader(valid)); err != nil {
		t.Fatalf("control: valid file rejected: %v", err)
	}

	corrupt := func(name string, data []byte) {
		t.Helper()
		if _, err := DecodeCheckpoint(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if !errors.Is(err, ErrCheckpointFormat) {
			t.Errorf("%s: error %v does not wrap ErrCheckpointFormat", name, err)
		}
	}
	corrupt("empty", nil)
	for _, cut := range []int{1, len(valid) / 3, len(valid) / 2, len(valid) - 2} {
		corrupt("truncated", valid[:cut])
	}
	for _, pos := range []int{10, len(valid) / 2, len(valid) - 5} {
		flipped := append([]byte(nil), valid...)
		flipped[pos] ^= 0x20
		corrupt("bit flip", flipped)
	}
	corrupt("trailing garbage", append(append([]byte(nil), valid...), "{\"x\":1}\n"...))
	tampered := bytes.Replace(append([]byte(nil), valid...), []byte(`"states":4`), []byte(`"states":5`), 1)
	corrupt("tampered header", tampered)
	corrupt("wrong version", bytes.Replace(append([]byte(nil), valid...), []byte(`"version":1`), []byte(`"version":9`), 1))
}

// TestResumeEquivalenceEveryLevel is the kill/resume bit-equivalence
// test on the violating configuration: interrupt the search at every
// level barrier in turn, resume from the written checkpoint, and demand
// a Result identical to the uninterrupted run — including the violation
// trace (Workers=1 keeps frontier order deterministic).
func TestResumeEquivalenceEveryLevel(t *testing.T) {
	sys, base := crashSearch(t)
	want, err := BFS(sys, base)
	if err != nil {
		t.Fatal(err)
	}
	if want.Violation == nil {
		t.Fatal("baseline found no violation")
	}
	dir := t.TempDir()
	for k := 1; ; k++ {
		path := filepath.Join(dir, "ck.jsonl")
		os.Remove(path)
		_, cfg := crashSearch(t)
		stopAtLevel(&cfg, k, path)
		partial, err := BFS(sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !partial.Interrupted {
			// The stop fired at or after the level where the search ends on
			// its own; the run completed and must equal the baseline.
			requireEqualResults(t, "uninterrupted tail run", partial, want)
			break
		}
		ck, err := ReadCheckpoint(path)
		if err != nil {
			t.Fatalf("level %d: reading checkpoint: %v", k, err)
		}
		_, rcfg := crashSearch(t)
		rcfg.Resume = ck
		resumed, err := BFS(sys, rcfg)
		if err != nil {
			t.Fatalf("level %d: resume: %v", k, err)
		}
		requireEqualResults(t, "resumed after level "+string(rune('0'+k%10)), resumed, want)
	}
}

// TestResumeEquivalenceVerifyingRun: the same equivalence on a clean
// exhaustive search at a sample of interrupt levels, in both dedup
// modes, and resuming with a different worker count (StatesExplored and
// DepthReached are Workers-independent for exhaustive searches).
func TestResumeEquivalenceVerifyingRun(t *testing.T) {
	for _, exact := range []bool{false, true} {
		sys, base := verifySearch(t)
		base.ExactDedup = exact
		want, err := BFS(sys, base)
		if err != nil {
			t.Fatal(err)
		}
		if want.Violation != nil || !want.Exhausted {
			t.Fatalf("baseline not a clean exhaustive run: %+v", want)
		}
		dir := t.TempDir()
		for _, k := range []int{1, 5, 11, 17} {
			path := filepath.Join(dir, "ck.jsonl")
			_, cfg := verifySearch(t)
			cfg.ExactDedup = exact
			stopAtLevel(&cfg, k, path)
			partial, err := BFS(sys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !partial.Interrupted {
				requireEqualResults(t, "uninterrupted tail run", partial, want)
				continue
			}
			if partial.Exhausted {
				t.Errorf("exact=%t level %d: interrupted run claims Exhausted", exact, k)
			}
			ck, err := ReadCheckpoint(path)
			if err != nil {
				t.Fatalf("exact=%t level %d: %v", exact, k, err)
			}
			_, rcfg := verifySearch(t)
			rcfg.ExactDedup = exact
			rcfg.Resume = ck
			rcfg.Workers = 2
			resumed, err := BFS(sys, rcfg)
			if err != nil {
				t.Fatalf("exact=%t level %d: resume: %v", exact, k, err)
			}
			requireEqualResults(t, "resumed verifying run", resumed, want)
		}
	}
}

// TestPeriodicCheckpointCadence: EveryLevels writes decodable snapshots
// as the search runs, without perturbing the Result.
func TestPeriodicCheckpointCadence(t *testing.T) {
	sys, base := verifySearch(t)
	want, err := BFS(sys, base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	_, cfg := verifySearch(t)
	cfg.Checkpoint = CheckpointOptions{Path: path, EveryLevels: 3}
	got, err := BFS(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "checkpointing run", got, want)
	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("periodic checkpoint unreadable: %v", err)
	}
	// The last periodic snapshot is mid-search: resuming it must land on
	// the same final Result.
	_, rcfg := verifySearch(t)
	rcfg.Resume = ck
	resumed, err := BFS(sys, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "resumed from periodic checkpoint", resumed, want)
}

// TestResumeRejectsMismatchedConfig: a checkpoint resumed under a
// different search configuration must be refused, not silently blended.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	sys, cfg := crashSearch(t)
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	stopAtLevel(&cfg, 2, path)
	if _, err := BFS(sys, cfg); err != nil {
		t.Fatal(err)
	}
	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Inputs = pool(2, ioa.RT) },
		func(c *Config) { c.MaxDepth = 19 },
		func(c *Config) { c.MaxInTransit = 3 },
		func(c *Config) { c.ExactDedup = true },
		func(c *Config) { c.Monitor = NewSafetyMonitor(true) },
	} {
		_, bad := crashSearch(t)
		mutate(&bad)
		bad.Resume = ck
		if _, err := BFS(sys, bad); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("mismatched resume: err = %v, want ErrCheckpointMismatch", err)
		}
	}
}

// FuzzCheckpointDecode: the decoder must never panic, and anything it
// accepts must re-encode and re-decode to the same checkpoint (no
// mutated state can slip through to a resume).
func FuzzCheckpointDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := EncodeCheckpoint(&valid, &Checkpoint{
		ConfigDigest: "00112233aabbccdd",
		Level:        2,
		DepthReached: 1,
		States:       4,
		HashSeed:     99,
		Frontier:     []ioa.Schedule{{ioa.Wake(ioa.TR), ioa.SendMsg(ioa.TR, "a")}},
		SeenHashes:   []uint64{10, 20, 30},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte(`{"magic":"dl-explore-checkpoint","version":1}`))
	f.Add([]byte("{}\n"))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var re bytes.Buffer
		if err := EncodeCheckpoint(&re, c); err != nil {
			t.Fatalf("accepted checkpoint fails to re-encode: %v", err)
		}
		c2, err := DecodeCheckpoint(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded checkpoint fails to decode: %v", err)
		}
		if len(c.Frontier) == 0 && len(c2.Frontier) == 0 {
			c.Frontier, c2.Frontier = nil, nil
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("re-encode not idempotent:\nfirst  %+v\nsecond %+v", c, c2)
		}
	})
}
