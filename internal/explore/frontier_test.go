package explore

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ioa"
)

func TestClearNodeSlice(t *testing.T) {
	s := make([]*node, 3, 8)
	s[0], s[1], s[2] = &node{}, &node{}, &node{}
	s = append(s, &node{}) // occupy part of the spare capacity too
	got := clearNodeSlice(s)
	if len(got) != 0 || cap(got) != 8 {
		t.Fatalf("len=%d cap=%d, want 0 and 8", len(got), cap(got))
	}
	full := got[:cap(got)]
	for i, p := range full {
		if p != nil {
			t.Fatalf("slot %d still holds a pointer after clearNodeSlice", i)
		}
	}
}

func TestPromoteNextClearsStaleTail(t *testing.T) {
	// Fill a spare slice to capacity with old pointers, then promote a
	// smaller next generation into it: every slot past the new length
	// must come back nil, and the worker buffers must come back empty
	// with their own capacity scrubbed.
	spare := make([]*node, 6)
	for i := range spare {
		spare[i] = &node{}
	}
	bufs := []workerBufs{
		{next: []*node{{action: ioa.Action{}}, {}}},
		{next: []*node{{}}},
	}
	got := promoteNext(spare[:0], bufs)
	if len(got) != 3 {
		t.Fatalf("promoted %d nodes, want 3", len(got))
	}
	for i, p := range got[:cap(got)] {
		if i < 3 && p == nil {
			t.Fatalf("slot %d lost its node", i)
		}
		if i >= 3 && p != nil {
			t.Fatalf("stale pointer survives in tail slot %d", i)
		}
	}
	for w := range bufs {
		b := bufs[w].next
		if len(b) != 0 {
			t.Fatalf("worker %d next not reset", w)
		}
		for i, p := range b[:cap(b)] {
			if p != nil {
				t.Fatalf("worker %d buffer slot %d still holds a pointer", w, i)
			}
		}
	}
}

// TestFrontierSwapReleasesDeadNodes is the retained-heap probe behind
// the frontier/spare swap bugfix. Before the fix, the spare slice kept
// the previous level's *node pointers alive in its unused tail, pinning
// an entire retired generation (states, monitors, used bitmaps) for the
// rest of the search. Finalizers on the dead generation must all fire
// while the spare slice — same backing array, same capacity — is still
// reachable.
func TestFrontierSwapReleasesDeadNodes(t *testing.T) {
	const dead = 64
	var finalized atomic.Int64

	frontier := make([]*node, 0, dead)
	for i := 0; i < dead; i++ {
		nd := &node{depth: i}
		runtime.SetFinalizer(nd, func(*node) { finalized.Add(1) })
		frontier = append(frontier, nd)
	}
	live := &node{depth: dead}
	bufs := []workerBufs{{next: []*node{live}}}

	// The BFS barrier swap: next generation promoted into the spare,
	// the old frontier scrubbed and retained as the next spare.
	spare := make([]*node, 0, dead)
	next := promoteNext(spare, bufs)
	spare = clearNodeSlice(frontier)
	frontier = next

	deadline := time.Now().Add(5 * time.Second)
	for finalized.Load() < dead && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	if got := finalized.Load(); got != dead {
		t.Errorf("only %d/%d dead nodes were collected; the spare slice is pinning the retired generation", got, dead)
	}
	if cap(spare) != dead {
		t.Errorf("spare lost its capacity: %d, want %d", cap(spare), dead)
	}
	if len(frontier) != 1 || frontier[0] != live {
		t.Fatalf("live node lost by the swap")
	}
	runtime.KeepAlive(spare)
	runtime.KeepAlive(frontier)
}
