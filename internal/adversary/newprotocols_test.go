package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/spec"
)

// TestCrashPumpDefeatsNewProtocols extends E1 to the richer protocols:
// selective repeat, the handshake protocol (whose chattier reference
// execution forces a deeper pump chain), and the fragmenting protocol.
func TestCrashPumpDefeatsNewProtocols(t *testing.T) {
	targets := []core.Protocol{
		protocol.NewSelectiveRepeat(8, 4),
		protocol.NewSelectiveRepeat(4, 2),
		protocol.NewHandshake(),
		protocol.NewFragmenting(4, 2),
		protocol.NewFragmenting(4, 3),
	}
	for _, p := range targets {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rep, err := CrashPump(p, CrashPumpConfig{})
			if err != nil {
				t.Fatalf("CrashPump: %v", err)
			}
			if rep.Verdict.OK() || rep.Verdict.Vacuous {
				t.Fatalf("no WDL violation: %s", rep.Verdict)
			}
			t.Logf("\n%s", rep)
		})
	}
}

// TestCrashPumpChainDeepensWithChattiness: the handshake protocol's
// reference execution alternates between the stations more than plain
// ABP's, so the Lemma 7.3 descent produces strictly more phases — the
// ablation DESIGN.md calls out.
func TestCrashPumpChainDeepensWithChattiness(t *testing.T) {
	abp, err := CrashPump(protocol.NewABP(), CrashPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	hs, err := CrashPump(protocol.NewHandshake(), CrashPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if hs.ReferenceSteps <= abp.ReferenceSteps {
		t.Errorf("handshake reference (%d steps) should exceed ABP's (%d)", hs.ReferenceSteps, abp.ReferenceSteps)
	}
	if len(hs.Phases) <= len(abp.Phases) {
		t.Errorf("handshake pump chain (%d phases) should exceed ABP's (%d)", len(hs.Phases), len(abp.Phases))
	}
	t.Logf("abp: %d steps, %d phases; handshake: %d steps, %d phases",
		abp.ReferenceSteps, len(abp.Phases), hs.ReferenceSteps, len(hs.Phases))
}

// TestHeaderPumpDefeatsNewProtocols extends E3: selective repeat and the
// handshake protocol (k=2: the first connection's message costs a syn
// delivery plus a data delivery) over C̄.
func TestHeaderPumpDefeatsNewProtocols(t *testing.T) {
	targets := []core.Protocol{
		protocol.NewSelectiveRepeat(4, 2),
		protocol.NewSelectiveRepeat(8, 4),
		protocol.NewHandshake(),
	}
	for _, p := range targets {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rep, err := HeaderPump(p, HeaderPumpConfig{})
			if err != nil {
				t.Fatalf("HeaderPump: %v", err)
			}
			if rep.Verdict.OK() || rep.Verdict.Vacuous {
				t.Fatalf("no WDL violation: %s", rep.Verdict)
			}
			if rep.Rounds > rep.RoundBound {
				t.Errorf("rounds %d exceed the paper bound %d", rep.Rounds, rep.RoundBound)
			}
			t.Logf("\n%s", rep)
		})
	}
}

// TestHeaderPumpKGreaterThanOne is the k-boundedness ablation: the
// fragmenting protocol needs f packet deliveries per message, so the pump
// must stock k = f stale equivalents per header class before attacking,
// and its observed packet_set reaches f.
func TestHeaderPumpKGreaterThanOne(t *testing.T) {
	for _, f := range []int{2, 3} {
		p := protocol.NewFragmenting(2, f)
		rep, err := HeaderPump(p, HeaderPumpConfig{})
		if err != nil {
			t.Fatalf("frag f=%d: %v", f, err)
		}
		if rep.Verdict.OK() || rep.Verdict.Vacuous {
			t.Fatalf("frag f=%d: no WDL violation: %s", f, rep.Verdict)
		}
		if rep.KBound != f {
			t.Errorf("k-bound = %d, want %d", rep.KBound, f)
		}
		if rep.MaxPacketSet != f {
			t.Errorf("max packet_set = %d, want %d (every fragment delivered once)", rep.MaxPacketSet, f)
		}
		if rep.Rounds > rep.RoundBound {
			t.Errorf("rounds %d exceed bound %d", rep.Rounds, rep.RoundBound)
		}
		// With k = f the stale set needs f copies of each data header class
		// used by the matched round.
		counts := map[ioa.Header]int{}
		for _, pk := range rep.Withheld {
			counts[pk.Header]++
		}
		for h, c := range counts {
			if c > f {
				t.Errorf("header %s withheld %d times, more than k=%d", h, c, f)
			}
		}
		if v := rep.Verdict.Violations[0]; v.Property != spec.PropDL4 {
			t.Errorf("violated property = %s, want DL4", v.Property)
		}
		t.Logf("\n%s", rep)
	}
}
