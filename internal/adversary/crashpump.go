package adversary

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/sim"
	"repro/internal/spec"
)

// ErrHypothesisRejected is returned when a protocol does not satisfy the
// hypotheses of the theorem an adversary implements; the wrapped detail
// says which hypothesis failed. This is the expected outcome for the
// non-volatile protocol under the crash pump.
var ErrHypothesisRejected = errors.New("adversary: protocol does not satisfy the theorem's hypotheses")

// phase is one crash-and-replay segment of the pump: crash station X, then
// replay acts_A(α, X, K), the first K steps' worth of X's actions in the
// reference execution (Lemma 7.2, illustrated in the paper's Figure 4).
type phase struct {
	X ioa.Station
	K int
}

// CrashPumpReport records the outcome of the Theorem 7.5 construction.
type CrashPumpReport struct {
	Protocol string
	// ReferenceSteps is the length n of the reference execution α with
	// behavior wake wake send_msg(m) receive_msg(m).
	ReferenceSteps int
	// Phases lists the pump's crash-and-replay segments, base first.
	Phases []phase
	// PumpSteps is the length of the constructed schedule β.
	PumpSteps int
	// Via says how the WDL violation was exhibited: "DL8-quiescent" (the
	// fair extension of β quiesced without delivering the outstanding
	// message), "DL8-bounded" (no quiescence or delivery within the step
	// limit), or "replay-onto-alpha" (a delivery occurred and was replayed
	// onto α per Lemma 7.1, yielding a DL4/DL5 violation).
	Via string
	// Behavior is the data-link behavior on which the violation is
	// exhibited.
	Behavior ioa.Schedule
	// Schedule is the full schedule (packet actions included) of the
	// execution on which the violation is exhibited — the paper's Figure 4
	// pump, concretely; render it with the msc package.
	Schedule ioa.Schedule
	// Verdict is the WDL checker's verdict on Behavior; Verdict.OK() is
	// false for every protocol satisfying the hypotheses.
	Verdict spec.Verdict
}

// String renders a human-readable summary.
func (r *CrashPumpReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crash pump vs %s:\n", r.Protocol)
	fmt.Fprintf(&b, "  reference execution: %d steps\n", r.ReferenceSteps)
	fmt.Fprintf(&b, "  pump phases (crash+replay, base first):")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, " (%s,%d)", p.X, p.K)
	}
	fmt.Fprintf(&b, "\n  constructed schedule: %d steps\n", r.PumpSteps)
	fmt.Fprintf(&b, "  violation via: %s\n", r.Via)
	fmt.Fprintf(&b, "  WDL verdict: %s\n", r.Verdict)
	return b.String()
}

// CrashPumpConfig tunes the construction.
type CrashPumpConfig struct {
	// Verify controls the runtime hypothesis checks.
	Verify sim.VerifyConfig
	// SkipVerify trusts the protocol's claimed properties (used by tests
	// that deliberately feed non-conforming protocols).
	SkipVerify bool
	// MaxSteps bounds each fair run (default sim.DefaultMaxSteps).
	MaxSteps int
}

// CrashPump runs the Theorem 7.5 construction against a protocol over the
// permissive FIFO channels Ĉ: no data link protocol that is weakly correct
// with respect to FIFO physical channels can be message-independent and
// crashing. For a protocol satisfying the hypotheses it returns a report
// whose Verdict exhibits a machine-checked WDL violation. For a protocol
// violating the hypotheses (e.g. one with non-volatile memory) it returns
// ErrHypothesisRejected.
func CrashPump(p core.Protocol, cfg CrashPumpConfig) (*CrashPumpReport, error) {
	if !cfg.SkipVerify {
		if !p.Props.Crashing {
			return nil, fmt.Errorf("%w: %s does not claim the crashing property", ErrHypothesisRejected, p.Name)
		}
		if !p.Props.MessageIndependent {
			return nil, fmt.Errorf("%w: %s does not claim message-independence", ErrHypothesisRejected, p.Name)
		}
		if err := sim.VerifyCrashing(p, cfg.Verify); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHypothesisRejected, err)
		}
		if err := sim.VerifyMessageIndependence(p, cfg.Verify); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHypothesisRejected, err)
		}
	}

	// Step 1 (Lemma 4.1): obtain the reference execution α with behavior
	// wake^{t,r} wake^{r,t} send_msg(m) receive_msg(m), truncated at the
	// delivery.
	sys, err := core.NewSystem(p, true)
	if err != nil {
		return nil, err
	}
	alphaRun := sim.NewRunner(sys)
	if err := alphaRun.WakeBoth(); err != nil {
		return nil, err
	}
	minter := core.NewMessageMinter("pump")
	m0 := minter.Fresh()
	if err := alphaRun.Input(ioa.SendMsg(ioa.TR, m0)); err != nil {
		return nil, err
	}
	stopped, err := alphaRun.RunFair(sim.RunConfig{MaxSteps: cfg.MaxSteps, Until: sim.UntilReceiveMsg(m0)})
	if err != nil {
		return nil, fmt.Errorf("adversary: building reference execution: %w", err)
	}
	if stopped {
		return nil, fmt.Errorf("adversary: %s quiesced without delivering %q; protocol fails even without crashes", p.Name, string(m0))
	}
	alpha := alphaRun.Execution()
	n := alpha.Len()

	// Step 2: compute the pump phases by the descent of Lemmas 7.3/7.4.
	phases := buildPhases(sys, alpha)

	// Step 3: execute the pump on a fresh system.
	pumpSys, err := core.NewSystem(p, true)
	if err != nil {
		return nil, err
	}
	run := sim.NewRunner(pumpSys)
	if err := run.WakeBoth(); err != nil {
		return nil, err
	}
	rp := newReplayer(run, minter)
	for _, ph := range phases {
		if err := runPhase(pumpSys, run, rp, sys, alpha, ph); err != nil {
			return nil, err
		}
	}

	// Step 4 (Lemma 6.3): clean both channels, leaving the system in a
	// state componentwise ≡-equivalent to α's final state while the last
	// fresh message is outstanding.
	cleaned, err := pumpSys.CleanChannels(run.State())
	if err != nil {
		return nil, err
	}
	run.SetState(cleaned)
	if err := assertEquivalentStations(sys, alpha.Last(), pumpSys, run.State()); err != nil {
		return nil, fmt.Errorf("adversary: pump invariant: %w", err)
	}
	hyp := spec.CheckWDL(run.Behavior(), ioa.TR)
	if hyp.Vacuous {
		return nil, fmt.Errorf("adversary: internal error: pump behavior violates environment hypotheses: %s", hyp)
	}
	pumpSteps := run.Execution().Len()

	// Step 5: fair extension with no further inputs (Lemma 2.1). Either
	// nothing is delivered — a (DL8) violation, the outstanding message is
	// lost — or something is delivered, in which case the same extension
	// replayed onto α (Lemma 7.1) delivers a message after α already
	// delivered everything, violating (DL4) or (DL5).
	preExt := run.Snapshot()
	quiescent, err := run.RunFair(sim.RunConfig{MaxSteps: cfg.MaxSteps, Until: sim.UntilAnyReceiveMsg()})
	report := &CrashPumpReport{
		Protocol:       p.Name,
		ReferenceSteps: n,
		Phases:         phases,
		PumpSteps:      pumpSteps,
	}
	switch {
	case err != nil && errors.Is(err, sim.ErrStepLimit):
		report.Via = "DL8-bounded"
		report.Behavior = run.Behavior()
		report.Schedule = run.Schedule()
		report.Verdict = spec.CheckWDL(report.Behavior, ioa.TR)
	case err != nil:
		return nil, err
	case quiescent:
		report.Via = "DL8-quiescent"
		report.Behavior = run.Behavior()
		report.Schedule = run.Schedule()
		report.Verdict = spec.CheckWDL(report.Behavior, ioa.TR)
	default:
		// A receive_msg occurred. Replay the extension onto α.
		ext := run.StepsSince(preExt)
		cleanedAlpha, err := sys.CleanChannels(alphaRun.State())
		if err != nil {
			return nil, err
		}
		alphaRun.SetState(cleanedAlpha)
		alphaRp := newReplayer(alphaRun, minter)
		if err := alphaRp.replayAll(ext); err != nil {
			return nil, fmt.Errorf("adversary: replaying extension onto α (Lemma 7.1): %w", err)
		}
		report.Via = "replay-onto-alpha"
		report.Behavior = alphaRun.Behavior()
		report.Schedule = alphaRun.Schedule()
		report.Verdict = spec.CheckWDL(report.Behavior, ioa.TR)
	}
	return report, nil
}

// buildPhases computes the crash-and-replay segments: the descent of Lemma
// 7.3 starting from (r, n') — n' the last receiver step — followed by the
// final transmitter segment (t, n) of Lemma 7.4.
func buildPhases(sys *core.System, alpha *ioa.Execution) []phase {
	n := alpha.Len()
	owner := make([]ioa.Station, n+1) // 1-based step owners
	tSig := sys.Protocol.T.Signature()
	for i := 1; i <= n; i++ {
		if tSig.Contains(alpha.Actions[i-1]) {
			owner[i] = ioa.T
		} else {
			owner[i] = ioa.R
		}
	}
	lastOwned := func(x ioa.Station, below int) int {
		for j := below - 1; j >= 3; j-- {
			if owner[j] == x {
				return j
			}
		}
		return 0
	}
	nPrime := n
	for nPrime >= 1 && owner[nPrime] != ioa.R {
		nPrime--
	}
	var rev []phase
	rev = append(rev, phase{X: ioa.T, K: n})
	if nPrime >= 3 {
		x, k := ioa.R, nPrime
		for {
			rev = append(rev, phase{X: x, K: k})
			j := lastOwned(x.Other(), k)
			if j == 0 {
				break
			}
			x, k = x.Other(), j
		}
	}
	// Reverse: base phase first.
	out := make([]phase, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// runPhase executes one pump segment: crash X, then replay X's reference
// actions from the first K steps of α (Lemma 7.2). It verifies afterwards
// that the live station state is ≡-equivalent to the reference state.
func runPhase(pumpSys *core.System, run *sim.Runner, rp *replayer, refSys *core.System, alpha *ioa.Execution, ph phase) error {
	if err := run.Input(ioa.Crash(core.OutChannelDir(ph.X))); err != nil {
		return err
	}
	refs := actsOf(refSys, alpha, ph.X, ph.K)
	if err := rp.replayAll(refs); err != nil {
		return fmt.Errorf("adversary: phase (%s,%d): %w", ph.X, ph.K, err)
	}
	// Invariant of Lemma 7.2: the live station is ≡-equivalent to
	// state_A(α, X, K).
	refState, err := stationStateAt(refSys, alpha, ph.X, ph.K)
	if err != nil {
		return err
	}
	liveState, err := pumpSys.StationState(run.State(), ph.X)
	if err != nil {
		return err
	}
	eq, err := ioa.StatesEquivalent(refState, liveState)
	if err != nil {
		return err
	}
	if !eq {
		return fmt.Errorf("adversary: phase (%s,%d): replayed state %s not equivalent to reference %s (protocol not deterministic up to ≡?)",
			ph.X, ph.K, liveState.Fingerprint(), refState.Fingerprint())
	}
	return nil
}

// actsOf returns acts_A(α, x, k): the actions of A^x among the first k
// steps of α.
func actsOf(sys *core.System, alpha *ioa.Execution, x ioa.Station, k int) ioa.Schedule {
	sig := sys.StationAutomaton(x).Signature()
	return ioa.Schedule(alpha.Actions[:k]).Project(sig)
}

// stationStateAt returns state_A(α, x, k): A^x's state after the first k
// steps of α.
func stationStateAt(sys *core.System, alpha *ioa.Execution, x ioa.Station, k int) (ioa.State, error) {
	return sys.StationState(alpha.StateAt(k), x)
}

// assertEquivalentStations checks that both stations' states in two
// composite states are ≡-equivalent.
func assertEquivalentStations(sysA *core.System, sa ioa.State, sysB *core.System, sb ioa.State) error {
	for _, x := range []ioa.Station{ioa.T, ioa.R} {
		qa, err := sysA.StationState(sa, x)
		if err != nil {
			return err
		}
		qb, err := sysB.StationState(sb, x)
		if err != nil {
			return err
		}
		eq, err := ioa.StatesEquivalent(qa, qb)
		if err != nil {
			return err
		}
		if !eq {
			return fmt.Errorf("A^%s states not equivalent:\n  ref:  %s\n  live: %s", x, qa.Fingerprint(), qb.Fingerprint())
		}
	}
	return nil
}
