package adversary

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/spec"
)

// TestCrashPumpDefeatsAllCrashingProtocols is experiment E1: Theorem 7.5
// executed against every message-independent crashing protocol in the
// repository, over FIFO channels. The pump must construct a machine-checked
// WDL violation for each.
func TestCrashPumpDefeatsAllCrashingProtocols(t *testing.T) {
	targets := []core.Protocol{
		protocol.NewABP(),
		protocol.NewGoBackN(2, 1),
		protocol.NewGoBackN(4, 1),
		protocol.NewGoBackN(4, 3),
		protocol.NewGoBackN(8, 4),
		protocol.NewGoBackN(16, 15),
		protocol.NewStenning(), // unbounded headers do not help against crashes
	}
	for _, p := range targets {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rep, err := CrashPump(p, CrashPumpConfig{})
			if err != nil {
				t.Fatalf("CrashPump: %v", err)
			}
			if rep.Verdict.OK() {
				t.Fatalf("no WDL violation: %s", rep.Verdict)
			}
			if rep.Verdict.Vacuous {
				t.Fatal("verdict must not be vacuous")
			}
			if rep.ReferenceSteps < 4 {
				t.Errorf("reference execution suspiciously short: %d", rep.ReferenceSteps)
			}
			if len(rep.Phases) < 2 {
				t.Errorf("pump with fewer than 2 phases: %v", rep.Phases)
			}
			// The final phase must be the transmitter's full replay.
			last := rep.Phases[len(rep.Phases)-1]
			if last.X != ioa.T || last.K != rep.ReferenceSteps {
				t.Errorf("final phase = %+v, want (t,%d)", last, rep.ReferenceSteps)
			}
			switch rep.Via {
			case "DL8-quiescent", "DL8-bounded", "replay-onto-alpha":
			default:
				t.Errorf("unknown violation route %q", rep.Via)
			}
			t.Logf("\n%s", rep)
		})
	}
}

// TestCrashPumpViolationKind checks that the violation route matches the
// violated property: the DL8 routes flag liveness, the replay route flags
// DL4 or DL5.
func TestCrashPumpViolationKind(t *testing.T) {
	rep, err := CrashPump(protocol.NewABP(), CrashPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Verdict.Violations) == 0 {
		t.Fatal("no recorded violations")
	}
	prop := rep.Verdict.Violations[0].Property
	switch rep.Via {
	case "DL8-quiescent", "DL8-bounded":
		if prop != spec.PropDL8 {
			t.Errorf("route %s flagged %s, want DL8", rep.Via, prop)
		}
	case "replay-onto-alpha":
		if prop != spec.PropDL4 && prop != spec.PropDL5 {
			t.Errorf("route %s flagged %s, want DL4 or DL5", rep.Via, prop)
		}
	}
}

// TestCrashPumpBehaviorSatisfiesEnvironmentHypotheses: the constructed
// behavior must be well-formed and satisfy (DL1)-(DL3) — otherwise the
// "violation" would be vacuous and prove nothing.
func TestCrashPumpBehaviorSatisfiesEnvironmentHypotheses(t *testing.T) {
	rep, err := CrashPump(protocol.NewGoBackN(4, 2), CrashPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v := spec.WellFormedDL(rep.Behavior, ioa.TR); v != nil {
		t.Errorf("behavior not well-formed: %v", v)
	}
	for name, check := range map[string]func(ioa.Schedule, ioa.Dir) *spec.Violation{
		"DL1": spec.DL1, "DL2": spec.DL2, "DL3": spec.DL3,
	} {
		if v := check(rep.Behavior, ioa.TR); v != nil {
			t.Errorf("behavior violates %s: %v", name, v)
		}
	}
}

// TestCrashPumpRejectsNonCrashing: E2's hypothesis check — the
// non-volatile protocol is rejected both when it honestly declares itself
// non-crashing and when it lies about being crashing (the runtime verifier
// catches the lie).
func TestCrashPumpRejectsNonCrashing(t *testing.T) {
	honest := protocol.NewNonVolatile()
	if _, err := CrashPump(honest, CrashPumpConfig{}); !errors.Is(err, ErrHypothesisRejected) {
		t.Errorf("honest non-crashing protocol: err = %v, want hypothesis rejection", err)
	}
	liar := protocol.NewNonVolatile()
	liar.Props.Crashing = true
	if _, err := CrashPump(liar, CrashPumpConfig{}); !errors.Is(err, ErrHypothesisRejected) {
		t.Errorf("lying protocol: err = %v, want hypothesis rejection via VerifyCrashing", err)
	}
}

// TestCrashPumpDeterministic: the pump is deterministic — two runs against
// the same protocol construct the same schedule shape.
func TestCrashPumpDeterministic(t *testing.T) {
	a, err := CrashPump(protocol.NewABP(), CrashPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrashPump(protocol.NewABP(), CrashPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.PumpSteps != b.PumpSteps || len(a.Phases) != len(b.Phases) || a.Via != b.Via {
		t.Errorf("nondeterministic pump: %+v vs %+v", a, b)
	}
}

// TestCrashPumpPhasesGrowWithWindow: larger windows produce longer
// reference executions and at least as much pump work — the E1 scaling
// observation.
func TestCrashPumpPhaseStructure(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		rep, err := CrashPump(protocol.NewGoBackN(n, 1), CrashPumpConfig{})
		if err != nil {
			t.Fatalf("gbn(%d,1): %v", n, err)
		}
		// Phases must alternate stations and have nondecreasing prefixes.
		for i := 1; i < len(rep.Phases); i++ {
			if rep.Phases[i].K < rep.Phases[i-1].K {
				t.Errorf("gbn(%d,1): phase prefixes decrease: %v", n, rep.Phases)
				break
			}
		}
		for i := 1; i < len(rep.Phases)-1; i++ {
			if rep.Phases[i].X == rep.Phases[i-1].X {
				t.Errorf("gbn(%d,1): interior phases do not alternate: %v", n, rep.Phases)
				break
			}
		}
	}
}

// TestLemma41FairScheduleExists is the executable Lemma 4.1: for every
// protocol that solves WDL in the failure-free setting there is a fair
// schedule with behavior wake wake send_msg(m) receive_msg(m).
func TestLemma41FairScheduleExists(t *testing.T) {
	for _, p := range []core.Protocol{protocol.NewABP(), protocol.NewStenning(), protocol.NewGoBackN(8, 3)} {
		sys, err := core.NewSystem(p, true)
		if err != nil {
			t.Fatal(err)
		}
		r := sim.NewRunner(sys)
		if err := r.WakeBoth(); err != nil {
			t.Fatal(err)
		}
		if err := r.Input(ioa.SendMsg(ioa.TR, "m")); err != nil {
			t.Fatal(err)
		}
		quiescent, err := r.RunFair(sim.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !quiescent {
			t.Fatalf("%s: no quiescence", p.Name)
		}
		want := ioa.Schedule{
			ioa.Wake(ioa.TR), ioa.Wake(ioa.RT),
			ioa.SendMsg(ioa.TR, "m"), ioa.ReceiveMsg(ioa.TR, "m"),
		}
		got := r.Behavior()
		if len(got) != len(want) {
			t.Fatalf("%s: behavior = %s", p.Name, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: behavior[%d] = %s, want %s", p.Name, i, got[i], want[i])
			}
		}
	}
}

func TestCrashPumpReportString(t *testing.T) {
	rep, err := CrashPump(protocol.NewABP(), CrashPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, frag := range []string{"crash pump vs abp", "pump phases", "violation via", "WDL verdict"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}

// TestActsOfProjection sanity-checks the acts_A helper against a tiny
// hand-built execution.
func TestActsOfProjection(t *testing.T) {
	p := protocol.NewABP()
	sys, err := core.NewSystem(p, true)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRunner(sys)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	if err := r.Input(ioa.SendMsg(ioa.TR, "m")); err != nil {
		t.Fatal(err)
	}
	alpha := r.Execution()
	tActs := actsOf(sys, alpha, ioa.T, alpha.Len())
	rActs := actsOf(sys, alpha, ioa.R, alpha.Len())
	if fmt.Sprint(tActs) != fmt.Sprint(ioa.Schedule{ioa.Wake(ioa.TR), ioa.SendMsg(ioa.TR, "m")}) {
		t.Errorf("t acts = %s", tActs)
	}
	if fmt.Sprint(rActs) != fmt.Sprint(ioa.Schedule{ioa.Wake(ioa.RT)}) {
		t.Errorf("r acts = %s", rActs)
	}
}
