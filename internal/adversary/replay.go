// Package adversary implements the paper's two impossibility constructions
// as executable, protocol-generic algorithms:
//
//   - CrashPump (Theorem 7.5, via Lemmas 7.1-7.4): defeats every
//     message-independent, crashing data link protocol over FIFO physical
//     channels by alternately crashing and replaying the two stations,
//     pumping equivalent packets through the channels until the system
//     reaches a state equivalent to "everything delivered" while a freshly
//     sent message is outstanding.
//
//   - HeaderPump (Theorem 8.5, via Lemmas 8.3-8.4): defeats every
//     message-independent, k-bounded, bounded-header protocol over the
//     non-FIFO permissive channel by withholding one in-transit packet per
//     header class until a stale ≡-equivalent exists for every packet of a
//     fresh delivery, then replaying the receiver against the stale
//     packets.
//
// Both algorithms verify the theorems' hypotheses at runtime before
// constructing anything (see the sim package's verifiers), and both end by
// checking the constructed behavior against the WDL specification checker,
// so a successful run produces a machine-checked counterexample.
package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/sim"
)

// replayer replays reference actions onto a live runner, substituting
// ≡-equivalent parameters: fresh messages for send_msg inputs, mapped live
// packets for receive_pkt deliveries, and currently-enabled equivalent
// actions for locally-controlled steps. It implements the constructions of
// Lemmas 7.1 and 7.2 and the γ2 construction in the proof of Theorem 8.5.
type replayer struct {
	run *sim.Runner
	// pktMap maps reference packet IDs to the live packets standing in for
	// them. Replayed send_pkt steps extend the map; receive_pkt steps
	// consult it.
	pktMap map[uint64]ioa.Packet
	minter *core.MessageMinter
}

func newReplayer(run *sim.Runner, minter *core.MessageMinter) *replayer {
	return &replayer{run: run, pktMap: make(map[uint64]ioa.Packet), minter: minter}
}

// mapPacket records that live stands in for the reference packet ref.
func (rp *replayer) mapPacket(ref, live ioa.Packet) {
	rp.pktMap[ref.ID] = live
}

// replay performs the live counterpart of one reference action and returns
// the action actually performed. The returned action is ≡-equivalent to
// ref by construction; replay fails if the live system cannot match the
// reference (which would refute determinism-up-to-≡ or the hypothesis
// being exploited).
func (rp *replayer) replay(ref ioa.Action) (ioa.Action, error) {
	switch ref.Kind {
	case ioa.KindWake, ioa.KindFail, ioa.KindCrash:
		if err := rp.run.Input(ref); err != nil {
			return ref, err
		}
		return ref, nil
	case ioa.KindSendMsg:
		// Condition 2 of message-independence: substitute a fresh message,
		// never previously sent, preserving (DL3).
		a := ioa.SendMsg(ref.Dir, rp.minter.Fresh())
		if err := rp.run.Input(a); err != nil {
			return a, err
		}
		return a, nil
	case ioa.KindReceivePkt:
		live, ok := rp.pktMap[ref.Pkt.ID]
		if !ok {
			return ref, fmt.Errorf("adversary: no live packet mapped for reference %s", ref.Pkt)
		}
		if !core.PacketsEquivalent(ref.Pkt, live) {
			return ref, fmt.Errorf("adversary: mapped packet %s not equivalent to reference %s", live, ref.Pkt)
		}
		a := ioa.ReceivePkt(ref.Dir, live)
		if _, err := rp.run.Fire(a); err != nil {
			return a, fmt.Errorf("adversary: delivering mapped packet: %w", err)
		}
		return a, nil
	case ioa.KindSendPkt, ioa.KindReceiveMsg, ioa.KindInternal:
		live, err := rp.fireEquivalent(ref)
		if err != nil {
			return ref, err
		}
		if ref.Kind == ioa.KindSendPkt {
			rp.mapPacket(ref.Pkt, live.Pkt)
		}
		return live, nil
	default:
		return ref, fmt.Errorf("adversary: cannot replay %s", ref)
	}
}

// fireEquivalent finds a locally-controlled action ≡-equivalent to ref
// among the currently enabled actions and fires it. Existence is
// guaranteed by condition 4 of message-independence when the live state is
// ≡-equivalent to the reference state.
func (rp *replayer) fireEquivalent(ref ioa.Action) (ioa.Action, error) {
	for _, a := range rp.run.System().Comp.Enabled(rp.run.State()) {
		if core.ActionsEquivalent(ref, a) {
			return rp.run.Fire(a)
		}
	}
	return ref, fmt.Errorf("adversary: no enabled action equivalent to %s (live state %s)",
		ref, rp.run.State().Fingerprint())
}

// replayAll replays a sequence of reference actions in order.
func (rp *replayer) replayAll(refs ioa.Schedule) error {
	for i, ref := range refs {
		if _, err := rp.replay(ref); err != nil {
			return fmt.Errorf("adversary: replaying action %d (%s): %w", i+1, ref, err)
		}
	}
	return nil
}
