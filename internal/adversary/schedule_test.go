package adversary

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/spec"
)

// TestPumpSchedulesAreChannelLegal: the constructed executions, projected
// onto each channel direction, must satisfy the physical layer
// specification — the pumps only ever use deliveries the channels permit
// (the surgery of Lemmas 6.3/6.6 loses packets, which PL always allows).
// This guards against an adversary that "cheats" by delivering packets a
// real channel could not.
func TestPumpSchedulesAreChannelLegal(t *testing.T) {
	crash, err := CrashPump(protocol.NewGoBackN(4, 2), CrashPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(crash.Schedule) == 0 {
		t.Fatal("crash pump report missing the full schedule")
	}
	for _, d := range []ioa.Dir{ioa.TR, ioa.RT} {
		// The crash pump runs over FIFO channels Ĉ: PL-FIFO must hold.
		proj := projectPL(crash.Schedule, d)
		if v := spec.CheckPLFIFO(proj, d); !v.OK() {
			t.Errorf("crash pump schedule violates PL-FIFO^{%s}: %s", d, v)
		}
	}

	hdr, err := HeaderPump(protocol.NewGoBackN(4, 1), HeaderPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hdr.Schedule) == 0 {
		t.Fatal("header pump report missing the full schedule")
	}
	for _, d := range []ioa.Dir{ioa.TR, ioa.RT} {
		// The header pump runs over the non-FIFO C̄: PL must hold (and
		// PL-FIFO must NOT on the t→r direction — the stale delivery is a
		// genuine reordering).
		proj := projectPL(hdr.Schedule, d)
		if v := spec.CheckPL(proj, d); !v.OK() {
			t.Errorf("header pump schedule violates PL^{%s}: %s", d, v)
		}
	}
	tr := projectPL(hdr.Schedule, ioa.TR)
	if v := spec.CheckPLFIFO(tr, ioa.TR); v.OK() {
		t.Error("header pump's t→r schedule is FIFO-legal — the attack should require reordering")
	}
}

// projectPL extracts the physical-layer events of one direction: packet
// actions plus that direction's status events.
func projectPL(beta ioa.Schedule, d ioa.Dir) ioa.Schedule {
	var out ioa.Schedule
	for _, a := range beta {
		if a.Dir != d {
			continue
		}
		switch a.Kind {
		case ioa.KindSendPkt, ioa.KindReceivePkt, ioa.KindWake, ioa.KindFail, ioa.KindCrash:
			out = append(out, a)
		}
	}
	return out
}

// TestPumpScheduleContainsBehavior: the report's Behavior is exactly the
// data-link-external subsequence of its Schedule.
func TestPumpScheduleContainsBehavior(t *testing.T) {
	rep, err := CrashPump(protocol.NewABP(), CrashPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var derived ioa.Schedule
	for _, a := range rep.Schedule {
		switch a.Kind {
		case ioa.KindSendMsg, ioa.KindReceiveMsg, ioa.KindWake, ioa.KindFail, ioa.KindCrash:
			derived = append(derived, a)
		}
	}
	if len(derived) != len(rep.Behavior) {
		t.Fatalf("behavior (%d) is not the external subsequence of the schedule (%d external events)",
			len(rep.Behavior), len(derived))
	}
	for i := range derived {
		if derived[i] != rep.Behavior[i] {
			t.Fatalf("behavior[%d] = %s, schedule-derived = %s", i, rep.Behavior[i], derived[i])
		}
	}
}
