package adversary

import (
	"errors"
	"testing"

	"repro/internal/protocol"
)

func TestSmokeCrashPumpABP(t *testing.T) {
	rep, err := CrashPump(protocol.NewABP(), CrashPumpConfig{})
	if err != nil {
		t.Fatalf("CrashPump(abp): %v", err)
	}
	t.Logf("\n%s", rep)
	if rep.Verdict.OK() {
		t.Fatalf("expected WDL violation, got: %s", rep.Verdict)
	}
}

func TestSmokeHeaderPumpGBN(t *testing.T) {
	rep, err := HeaderPump(protocol.NewGoBackN(4, 1), HeaderPumpConfig{})
	if err != nil {
		t.Fatalf("HeaderPump(gbn): %v", err)
	}
	t.Logf("\n%s", rep)
	if rep.Verdict.OK() {
		t.Fatalf("expected WDL violation, got: %s", rep.Verdict)
	}
}

func TestSmokeCrashPumpRejectsNonVolatile(t *testing.T) {
	_, err := CrashPump(protocol.NewNonVolatile(), CrashPumpConfig{})
	if !errors.Is(err, ErrHypothesisRejected) {
		t.Fatalf("expected hypothesis rejection, got: %v", err)
	}
}
