package adversary

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/spec"
)

// TestHeaderPumpDefeatsBoundedHeaderProtocols is experiment E3: Theorem
// 8.5 executed against bounded-header protocols over the non-FIFO channel
// C̄, across modulus sizes. The pump must construct a machine-checked WDL
// violation within the paper's k·|H|+1 round bound; for Go-Back-N mod n
// the first header-class reuse happens at round n+1.
func TestHeaderPumpDefeatsBoundedHeaderProtocols(t *testing.T) {
	tests := []struct {
		p          core.Protocol
		wantRounds int // expected rounds to the matched round (n+1)
	}{
		{protocol.NewABP(), 3},
		{protocol.NewGoBackN(2, 1), 3},
		{protocol.NewGoBackN(4, 1), 5},
		{protocol.NewGoBackN(8, 1), 9},
		{protocol.NewGoBackN(16, 1), 17},
		{protocol.NewGoBackN(4, 3), 5},
		{protocol.NewGoBackN(8, 4), 9},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.p.Name, func(t *testing.T) {
			rep, err := HeaderPump(tt.p, HeaderPumpConfig{})
			if err != nil {
				t.Fatalf("HeaderPump: %v", err)
			}
			if rep.Verdict.OK() || rep.Verdict.Vacuous {
				t.Fatalf("no WDL violation: %s", rep.Verdict)
			}
			if rep.Rounds > rep.RoundBound {
				t.Errorf("rounds %d exceed the paper bound %d", rep.Rounds, rep.RoundBound)
			}
			if rep.Rounds != tt.wantRounds {
				t.Errorf("rounds = %d, want %d (first reuse of a data header class)", rep.Rounds, tt.wantRounds)
			}
			if rep.MaxPacketSet > rep.KBound {
				t.Errorf("packet_set %d exceeds k-bound %d", rep.MaxPacketSet, rep.KBound)
			}
			if len(rep.Withheld) != rep.Rounds-1 {
				t.Errorf("withheld %d packets in %d rounds, want rounds-1", len(rep.Withheld), rep.Rounds)
			}
			t.Logf("\n%s", rep)
		})
	}
}

// TestHeaderPumpViolationIsDuplicateDelivery: for the protocols here the
// stale packet carries a payload that was already delivered, so the
// violation is specifically (DL4).
func TestHeaderPumpViolationIsDuplicateDelivery(t *testing.T) {
	rep, err := HeaderPump(protocol.NewGoBackN(4, 1), HeaderPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Verdict.Violations) == 0 {
		t.Fatal("no violations")
	}
	if got := rep.Verdict.Violations[0].Property; got != spec.PropDL4 {
		t.Errorf("violated property = %s, want DL4", got)
	}
}

// TestHeaderPumpBehaviorHypotheses: the constructed behavior must satisfy
// the environment-side conditions so the violation is non-vacuous.
func TestHeaderPumpBehaviorHypotheses(t *testing.T) {
	rep, err := HeaderPump(protocol.NewGoBackN(4, 1), HeaderPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v := spec.WellFormedDL(rep.Behavior, ioa.TR); v != nil {
		t.Errorf("not well-formed: %v", v)
	}
	if v := spec.DL3(rep.Behavior, ioa.TR); v != nil {
		t.Errorf("DL3 broken (a message was sent twice): %v", v)
	}
	// Withheld packets must all have distinct IDs (they are genuinely
	// distinct packets in transit, per Lemma 6.7).
	seen := map[uint64]bool{}
	for _, p := range rep.Withheld {
		if seen[p.ID] {
			t.Errorf("withheld packet %s duplicated", p)
		}
		seen[p.ID] = true
	}
}

// TestHeaderPumpRejectsUnboundedHeaders: Stenning's protocol escapes the
// theorem precisely because headers(A, ≡) is infinite.
func TestHeaderPumpRejectsUnboundedHeaders(t *testing.T) {
	_, err := HeaderPump(protocol.NewStenning(), HeaderPumpConfig{})
	if !errors.Is(err, ErrHypothesisRejected) {
		t.Fatalf("err = %v, want hypothesis rejection", err)
	}
	if !strings.Contains(err.Error(), "unbounded header set") {
		t.Errorf("rejection should cite the unbounded header set: %v", err)
	}
}

// TestHeaderPumpRejectsMissingKBound: a protocol claiming no k-bound is
// outside the theorem's hypotheses.
func TestHeaderPumpRejectsMissingKBound(t *testing.T) {
	p := protocol.NewGoBackN(4, 1)
	p.Props.KBound = 0
	if _, err := HeaderPump(p, HeaderPumpConfig{}); !errors.Is(err, ErrHypothesisRejected) {
		t.Errorf("err = %v, want hypothesis rejection", err)
	}
}

// TestHeaderPumpWithheldHeadersCoverDataSpace: the pump's stale set T must
// contain one packet per data header class before the attack fires — the
// T <_k T' chain of Lemma 8.3 ending at the ≥k-per-class condition.
func TestHeaderPumpWithheldHeadersCoverDataSpace(t *testing.T) {
	n := 8
	rep, err := HeaderPump(protocol.NewGoBackN(n, 1), HeaderPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	headers := map[ioa.Header]int{}
	for _, p := range rep.Withheld {
		headers[p.Header]++
	}
	if len(headers) != n {
		t.Errorf("withheld %d distinct data headers, want %d", len(headers), n)
	}
	for h, c := range headers {
		if c != 1 {
			t.Errorf("header %s withheld %d times, want exactly 1 (k=1)", h, c)
		}
	}
}

// TestHeaderPumpDeterministic: same protocol, same construction.
func TestHeaderPumpDeterministic(t *testing.T) {
	a, err := HeaderPump(protocol.NewGoBackN(4, 1), HeaderPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HeaderPump(protocol.NewGoBackN(4, 1), HeaderPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || len(a.Withheld) != len(b.Withheld) || len(a.Behavior) != len(b.Behavior) {
		t.Errorf("nondeterministic pump: %v vs %v", a, b)
	}
}

func TestHeaderPumpReportString(t *testing.T) {
	rep, err := HeaderPump(protocol.NewABP(), HeaderPumpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, frag := range []string{"header pump vs abp", "k-bound", "rounds", "WDL verdict"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}
