package adversary

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/sim"
	"repro/internal/spec"
)

// HeaderPumpReport records the outcome of the Theorem 8.5 construction.
type HeaderPumpReport struct {
	Protocol string
	// KBound is the k for which the protocol is k-bounded.
	KBound int
	// HeaderCount is |headers(A, ≡)|, the size of the bounded header set.
	HeaderCount int
	// Rounds is the number of pump rounds executed, including the final
	// matched round. The paper bounds it by k·|H|+1.
	Rounds int
	// RoundBound is the paper's k·|H|+1 bound for comparison.
	RoundBound int
	// Withheld lists the stale packets accumulated in transit (the set T),
	// in the order they were withheld.
	Withheld []ioa.Packet
	// MaxPacketSet is the largest packet_set observed in any round — the
	// empirical k, which must be ≤ KBound.
	MaxPacketSet int
	// Behavior is the data-link behavior of βγ2: the pump schedule plus
	// the receiver replay against the stale packets.
	Behavior ioa.Schedule
	// Schedule is the full schedule (packet actions included) of βγ2;
	// render it with the msc package to see the stale deliveries.
	Schedule ioa.Schedule
	// Verdict is the WDL checker's verdict on Behavior; Verdict.OK() is
	// false for every protocol satisfying the hypotheses.
	Verdict spec.Verdict
}

// String renders a human-readable summary.
func (r *HeaderPumpReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "header pump vs %s:\n", r.Protocol)
	fmt.Fprintf(&b, "  k-bound: %d, |headers|: %d\n", r.KBound, r.HeaderCount)
	fmt.Fprintf(&b, "  rounds: %d (paper bound k·|H|+1 = %d)\n", r.Rounds, r.RoundBound)
	fmt.Fprintf(&b, "  stale packets accumulated (T): %d, max packet_set: %d\n", len(r.Withheld), r.MaxPacketSet)
	fmt.Fprintf(&b, "  WDL verdict: %s\n", r.Verdict)
	return b.String()
}

// HeaderPumpConfig tunes the construction.
type HeaderPumpConfig struct {
	// Verify controls the runtime hypothesis checks.
	Verify sim.VerifyConfig
	// SkipVerify trusts the protocol's claimed properties.
	SkipVerify bool
	// MaxSteps bounds each fair run (default sim.DefaultMaxSteps).
	MaxSteps int
}

// HeaderPump runs the Theorem 8.5 construction against a protocol over the
// non-FIFO permissive channels C̄: no weakly correct data link protocol can
// be message-independent, k-bounded and have bounded headers. Per Lemma
// 8.3 it pumps up a set T of in-transit packets — withholding, per round,
// the first data packet whose header class is underrepresented in T, and
// letting the protocol deliver the round's fresh message through
// retransmissions — until a round needs no withholding. That round's
// delivery is then recorded, rolled back, and replayed against the stale
// equivalents in T (the γ2 construction of Theorem 8.5), forcing the
// receiver to deliver a message that was already delivered or never sent.
func HeaderPump(p core.Protocol, cfg HeaderPumpConfig) (*HeaderPumpReport, error) {
	if !cfg.SkipVerify {
		if !p.Props.MessageIndependent {
			return nil, fmt.Errorf("%w: %s does not claim message-independence", ErrHypothesisRejected, p.Name)
		}
		if !p.Props.BoundedHeaders() {
			return nil, fmt.Errorf("%w: %s has an unbounded header set (like Stenning's protocol)", ErrHypothesisRejected, p.Name)
		}
		if p.Props.KBound < 1 {
			return nil, fmt.Errorf("%w: %s claims no k-bound", ErrHypothesisRejected, p.Name)
		}
		if err := sim.VerifyMessageIndependence(p, cfg.Verify); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrHypothesisRejected, err)
		}
	}
	k := p.Props.KBound
	if k < 1 {
		k = 1
	}

	sys, err := core.NewSystem(p, false) // non-FIFO permissive channels C̄
	if err != nil {
		return nil, err
	}
	run := sim.NewRunner(sys)
	if err := run.WakeBoth(); err != nil {
		return nil, err
	}
	minter := core.NewMessageMinter("hdr")

	// forbidden holds packet IDs the schedule chooses never to deliver:
	// the withheld set T plus everything in transit at each round start
	// (the k-bounded definition requires the round's γ to deliver no
	// packet sent in β; operationally we simply never deliver stale
	// packets, which Lemmas 6.3/6.7 justify).
	forbidden := make(map[uint64]bool)
	var withheld []ioa.Packet
	countByHeader := make(map[ioa.Header]int)

	report := &HeaderPumpReport{
		Protocol:    p.Name,
		KBound:      k,
		HeaderCount: len(p.Props.Headers),
		RoundBound:  k*len(p.Props.Headers) + 1,
	}

	// The paper bounds the pump by k·|H|+1 rounds with k the minimal
	// per-message delivery count. Our operational rounds are fair runs,
	// not minimal schedules, so a round may deliver a few more packets
	// than k (e.g. a duplicated handshake packet); the loop therefore
	// matches against the *observed* per-header multiplicities — Hall's
	// condition per ≡-class, which is exactly what the attack's injective
	// matching f needs — and the round bound scales with the largest
	// multiplicity observed.
	for round := 1; ; round++ {
		kEff := report.MaxPacketSet
		if kEff < k {
			kEff = k
		}
		if maxRounds := kEff*len(p.Props.Headers) + 1; round > maxRounds {
			return nil, fmt.Errorf("adversary: no matched round within %d rounds (bound %d with observed k=%d); is |headers| correct for %s?",
				round-1, maxRounds, kEff, p.Name)
		}
		report.Rounds = round

		// Freeze everything currently in transit for this round.
		for _, d := range []ioa.Dir{ioa.TR, ioa.RT} {
			pkts, err := sys.InTransit(run.State(), d)
			if err != nil {
				return nil, err
			}
			for _, pk := range pkts {
				forbidden[pk.ID] = true
			}
		}

		snap := run.Snapshot()
		m := minter.Fresh()
		delivered, _, err := runRound(run, m, forbidden, nil, cfg.MaxSteps)
		if err != nil {
			return nil, fmt.Errorf("adversary: probe round %d: %w", round, err)
		}
		if len(delivered) > report.MaxPacketSet {
			report.MaxPacketSet = len(delivered)
		}

		// needed(h) is the multiplicity of header h in this round's
		// packet_set; the attack needs that many distinct stale
		// ≡-equivalents in T.
		needed := map[ioa.Header]int{}
		for _, pk := range delivered {
			needed[pk.Header]++
		}
		var short *ioa.Packet
		for i := range delivered {
			if countByHeader[delivered[i].Header] < needed[delivered[i].Header] {
				short = &delivered[i]
				break
			}
		}
		if short == nil {
			// Matched round: T has enough stale equivalents for every
			// header class this round delivered, so an injective
			// ≡-matching f from the packet_set into T exists. Capture the
			// recorded probe (the γ1 of Theorem 8.5), roll it back, and
			// attack.
			probe := run.StepsSince(snap)
			run.Restore(snap)
			report.Withheld = append([]ioa.Packet(nil), withheld...)
			return attackFromProbe(sys, run, report, probe, withheld)
		}

		// Unmatched: roll back and rerun the round withholding the first
		// send of the underrepresented header (Lemma 8.3 case 2:
		// T' = T ∪ {p0}).
		run.Restore(snap)
		wantHeader := short.Header
		var captured *ioa.Packet
		onFired := func(a ioa.Action) {
			if captured == nil && a.Kind == ioa.KindSendPkt && a.Dir == ioa.TR && a.Pkt.Header == wantHeader {
				pk := a.Pkt
				captured = &pk
				forbidden[pk.ID] = true
			}
		}
		if _, _, err := runRound(run, m, forbidden, onFired, cfg.MaxSteps); err != nil {
			return nil, fmt.Errorf("adversary: withholding round %d: %w", round, err)
		}
		if captured == nil {
			return nil, fmt.Errorf("adversary: round %d: expected a send of header %s to withhold but saw none", round, wantHeader)
		}
		withheld = append(withheld, *captured)
		countByHeader[captured.Header]++
	}
}

// runRound performs one pump round: send a fresh message m, then run
// fairly — never delivering forbidden packets — until m is delivered, and
// drain to quiescence so the next round starts from an idle protocol. It
// returns the t→r packets delivered while m was outstanding (the round's
// packet_set) and all t→r packets sent during the round.
func runRound(run *sim.Runner, m ioa.Message, forbidden map[uint64]bool, onFired func(ioa.Action), maxSteps int) (delivered, sent []ioa.Packet, err error) {
	if err := run.Input(ioa.SendMsg(ioa.TR, m)); err != nil {
		return nil, nil, err
	}
	pre := run.Snapshot()
	filter := func(a ioa.Action) bool {
		return a.Kind != ioa.KindReceivePkt || !forbidden[a.Pkt.ID]
	}
	stopped, err := run.RunFair(sim.RunConfig{
		MaxSteps: maxSteps,
		Until:    sim.UntilReceiveMsg(m),
		Filter:   filter,
		OnFired:  onFired,
	})
	if err != nil {
		return nil, nil, err
	}
	if stopped {
		return nil, nil, fmt.Errorf("system quiesced before delivering %q", string(m))
	}
	for _, a := range run.StepsSince(pre) {
		switch {
		case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.TR:
			delivered = append(delivered, a.Pkt)
		case a.Kind == ioa.KindSendPkt && a.Dir == ioa.TR:
			sent = append(sent, a.Pkt)
		}
	}
	// Drain: let outstanding acknowledgements and duplicates settle so the
	// next round starts with an idle transmitter.
	if _, err := run.RunFair(sim.RunConfig{MaxSteps: maxSteps, Filter: filter, OnFired: onFired}); err != nil {
		return nil, nil, err
	}
	return delivered, sent, nil
}

// attackFromProbe implements the γ2 construction of Theorem 8.5. probe is
// the recorded (and rolled-back) matched round γ1, whose behavior is
// send_msg(m) receive_msg(m). From the rolled-back state the attack
// replays only the receiver's part of γ1 — feeding it, in place of each
// packet it received, the stale ≡-equivalent from the withheld set T. The
// non-FIFO channel may deliver any in-transit packet, so the stale
// deliveries are legal; the receiver, being message-independent, evolves
// equivalently and ends by delivering a message that was already delivered
// in an earlier round (violating DL4) or was never sent (violating DL5).
func attackFromProbe(sys *core.System, run *sim.Runner, report *HeaderPumpReport, probe ioa.Schedule, withheld []ioa.Packet) (*HeaderPumpReport, error) {
	// γ1 is the probe truncated at the round's delivery; the drain tail is
	// irrelevant to the construction.
	gamma1 := probe
	for i, a := range probe {
		if a.Kind == ioa.KindReceiveMsg && a.Dir == ioa.TR {
			gamma1 = probe[:i+1]
			break
		}
	}

	// Build the injective matching f from the packets the receiver
	// consumed in γ1 into the stale set T, greedily per header class. The
	// matched-round condition guarantees enough stale copies exist.
	used := make([]bool, len(withheld))
	rp := newReplayer(run, core.NewMessageMinter("attack"))
	for _, a := range gamma1 {
		if a.Kind != ioa.KindReceivePkt || a.Dir != ioa.TR {
			continue
		}
		matched := false
		for i := range withheld {
			if !used[i] && withheld[i].Header == a.Pkt.Header {
				used[i] = true
				rp.mapPacket(a.Pkt, withheld[i])
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("adversary: no unused stale packet for header %s; matching invariant broken", a.Pkt.Header)
		}
	}

	// Replay γ1|A^r: the receiver's inputs become deliveries of the stale
	// packets; its locally-controlled actions fire as enabled equivalents.
	refs := gamma1.Project(sys.Protocol.R.Signature())
	if err := rp.replayAll(refs); err != nil {
		return nil, fmt.Errorf("adversary: replaying γ2: %w", err)
	}

	report.Behavior = run.Behavior()
	report.Schedule = run.Schedule()
	report.Verdict = spec.CheckWDL(report.Behavior, ioa.TR)
	if report.Verdict.Vacuous {
		return nil, fmt.Errorf("adversary: internal error: attack behavior violates environment hypotheses: %s", report.Verdict)
	}
	return report, nil
}
