package spec

import (
	"strings"
	"testing"

	"repro/internal/ioa"
)

func pkt(id uint64, h string) ioa.Packet {
	return ioa.Packet{ID: id, Header: ioa.Header(h)}
}

func TestWellFormedPL(t *testing.T) {
	d := ioa.TR
	tests := []struct {
		name string
		beta ioa.Schedule
		ok   bool
	}{
		{"empty", nil, true},
		{"single wake", ioa.Schedule{ioa.Wake(d)}, true},
		{"wake fail wake", ioa.Schedule{ioa.Wake(d), ioa.Fail(d), ioa.Wake(d)}, true},
		{"double wake", ioa.Schedule{ioa.Wake(d), ioa.Wake(d)}, false},
		{"fail first", ioa.Schedule{ioa.Fail(d)}, false},
		{"double fail", ioa.Schedule{ioa.Wake(d), ioa.Fail(d), ioa.Fail(d)}, false},
		{"crash resets alternation", ioa.Schedule{ioa.Wake(d), ioa.Crash(d), ioa.Wake(d)}, true},
		{"crash includes failure", ioa.Schedule{ioa.Wake(d), ioa.Crash(d), ioa.Wake(d), ioa.Fail(d), ioa.Wake(d)}, true},
		{"fail right after crash", ioa.Schedule{ioa.Wake(d), ioa.Crash(d), ioa.Fail(d)}, false},
		{"other direction ignored", ioa.Schedule{ioa.Wake(d), ioa.Wake(d.Rev()), ioa.Wake(d.Rev())}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := WellFormedPL(tt.beta, d)
			if (v == nil) != tt.ok {
				t.Errorf("WellFormedPL = %v, want ok=%v", v, tt.ok)
			}
		})
	}
}

func TestPL1(t *testing.T) {
	d := ioa.TR
	inside := ioa.Schedule{ioa.Wake(d), ioa.SendPkt(d, pkt(1, "h"))}
	if v := PL1(inside, d); v != nil {
		t.Errorf("send inside working interval flagged: %v", v)
	}
	before := ioa.Schedule{ioa.SendPkt(d, pkt(1, "h")), ioa.Wake(d)}
	if v := PL1(before, d); v == nil {
		t.Error("send before wake not flagged")
	}
	afterFail := ioa.Schedule{ioa.Wake(d), ioa.Fail(d), ioa.SendPkt(d, pkt(1, "h"))}
	if v := PL1(afterFail, d); v == nil {
		t.Error("send after fail not flagged")
	} else if v.Index != 3 {
		t.Errorf("violation index = %d, want 3", v.Index)
	}
}

func TestPL2PL3Uniqueness(t *testing.T) {
	d := ioa.TR
	dup := ioa.Schedule{
		ioa.Wake(d),
		ioa.SendPkt(d, pkt(1, "h")),
		ioa.SendPkt(d, pkt(1, "h")),
	}
	if v := PL2(dup, d); v == nil {
		t.Error("duplicate send not flagged by PL2")
	}
	recvDup := ioa.Schedule{
		ioa.Wake(d),
		ioa.SendPkt(d, pkt(1, "h")),
		ioa.ReceivePkt(d, pkt(1, "h")),
		ioa.ReceivePkt(d, pkt(1, "h")),
	}
	if v := PL3(recvDup, d); v == nil {
		t.Error("duplicate receive not flagged by PL3")
	}
	distinct := ioa.Schedule{
		ioa.Wake(d),
		ioa.SendPkt(d, pkt(1, "h")),
		ioa.SendPkt(d, pkt(2, "h")), // same header, distinct ID: allowed
	}
	if v := PL2(distinct, d); v != nil {
		t.Errorf("distinct packets flagged: %v", v)
	}
}

func TestPL4ReceiveWithoutSend(t *testing.T) {
	d := ioa.TR
	bad := ioa.Schedule{ioa.Wake(d), ioa.ReceivePkt(d, pkt(9, "h"))}
	if v := PL4(bad, d); v == nil {
		t.Error("receive without send not flagged")
	}
	good := ioa.Schedule{ioa.Wake(d), ioa.SendPkt(d, pkt(9, "h")), ioa.ReceivePkt(d, pkt(9, "h"))}
	if v := PL4(good, d); v != nil {
		t.Errorf("legal receive flagged: %v", v)
	}
}

func TestPL5FIFO(t *testing.T) {
	d := ioa.TR
	send := func(i uint64) ioa.Action { return ioa.SendPkt(d, pkt(i, "h")) }
	recv := func(i uint64) ioa.Action { return ioa.ReceivePkt(d, pkt(i, "h")) }
	tests := []struct {
		name string
		beta ioa.Schedule
		ok   bool
	}{
		{"in order", ioa.Schedule{ioa.Wake(d), send(1), send(2), recv(1), recv(2)}, true},
		{"gap allowed", ioa.Schedule{ioa.Wake(d), send(1), send(2), send(3), recv(1), recv(3)}, true},
		{"reorder", ioa.Schedule{ioa.Wake(d), send(1), send(2), recv(2), recv(1)}, false},
		{"late straggler", ioa.Schedule{ioa.Wake(d), send(1), send(2), recv(2), send(3), recv(1)}, false},
		{"interleaved sends", ioa.Schedule{ioa.Wake(d), send(1), recv(1), send(2), recv(2)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := PL5(tt.beta, d)
			if (v == nil) != tt.ok {
				t.Errorf("PL5 = %v, want ok=%v", v, tt.ok)
			}
		})
	}
}

func TestCheckPLConditionalShape(t *testing.T) {
	d := ioa.TR
	// Hypotheses violated (send outside working interval): vacuously a
	// schedule of the module even though PL4 is violated too.
	bad := ioa.Schedule{ioa.SendPkt(d, pkt(1, "h")), ioa.ReceivePkt(d, pkt(2, "h"))}
	v := CheckPL(bad, d)
	if !v.Vacuous || !v.OK() {
		t.Errorf("expected vacuous membership, got %s", v)
	}
	if len(v.HypothesisFailures) == 0 {
		t.Error("expected recorded hypothesis failures")
	}
	// Hypotheses hold, guarantee violated.
	guaranteeBroken := ioa.Schedule{ioa.Wake(d), ioa.ReceivePkt(d, pkt(2, "h"))}
	v = CheckPL(guaranteeBroken, d)
	if v.Vacuous || v.OK() {
		t.Errorf("expected PL4 violation, got %s", v)
	}
	// Fully legal.
	good := ioa.Schedule{ioa.Wake(d), ioa.SendPkt(d, pkt(1, "h")), ioa.ReceivePkt(d, pkt(1, "h"))}
	if v := CheckPL(good, d); !v.OK() || v.Vacuous {
		t.Errorf("legal schedule rejected: %s", v)
	}
}

func TestCheckPLFIFO(t *testing.T) {
	d := ioa.TR
	reordered := ioa.Schedule{
		ioa.Wake(d),
		ioa.SendPkt(d, pkt(1, "h")), ioa.SendPkt(d, pkt(2, "h")),
		ioa.ReceivePkt(d, pkt(2, "h")), ioa.ReceivePkt(d, pkt(1, "h")),
	}
	if v := CheckPL(reordered, d); !v.OK() {
		t.Errorf("reordering is legal for PL (non-FIFO): %s", v)
	}
	if v := CheckPLFIFO(reordered, d); v.OK() {
		t.Error("reordering must violate PL-FIFO")
	}
	// Vacuous passes propagate.
	bad := ioa.Schedule{ioa.SendPkt(d, pkt(1, "h"))}
	if v := CheckPLFIFO(bad, d); !v.Vacuous {
		t.Error("hypothesis failure should make PL-FIFO vacuous")
	}
}

func TestVerdictString(t *testing.T) {
	v := Verdict{Violations: []Violation{{Property: PropPL4, Index: 2, Detail: "x"}}}
	if !strings.Contains(v.String(), "VIOLATED") {
		t.Errorf("String() = %q", v.String())
	}
	ok := Verdict{}
	if ok.String() != "OK" {
		t.Errorf("String() = %q", ok.String())
	}
	vac := Verdict{Vacuous: true, HypothesisFailures: []Violation{{Property: PropWellFormed, Detail: "y"}}}
	if !strings.Contains(vac.String(), "vacuously") {
		t.Errorf("String() = %q", vac.String())
	}
	viol := Violation{Property: PropPL1, Detail: "no index"}
	if strings.Contains(viol.String(), "event") {
		t.Errorf("zero-index violation should not mention an event: %q", viol)
	}
}
