// Package spec implements the paper's layer specifications as executable
// checkers over finite action sequences: the physical layer schedule
// modules PL and PL-FIFO (Section 3, properties (PL1)-(PL6)), the data
// link layer schedule modules DL and WDL (Section 4, properties
// (DL1)-(DL8)), and valid sequences (Section 8.1).
//
// The schedule modules are conditional: a sequence β is a schedule of
// PL^{t,r} if "β well-formed ∧ (PL1) ∧ (PL2) ⇒ (PL3) ∧ (PL4) ∧ (PL6)", and
// similarly for the other modules. The checkers implement exactly this
// conditional shape: if the environment-side hypotheses fail, the sequence
// is vacuously a schedule of the module.
//
// Liveness properties ((PL6), (DL8)) quantify over infinite executions. On
// finite traces the checkers interpret a trace as a *completed* behavior:
// the behavior of a fair execution that has quiesced, per Lemma 2.1. Under
// this reading an "unbounded working interval" is a wake event with no
// later fail or crash in the same direction, and (DL8) becomes decidable.
// Callers must therefore only apply CheckDL/CheckWDL liveness verdicts to
// traces produced by a fair extension (see the sim package).
package spec

import (
	"fmt"
	"strings"
)

// Property names one of the paper's specification properties.
type Property string

// The specification properties checked by this package.
const (
	PropWellFormed Property = "well-formed"
	PropPL1        Property = "PL1"
	PropPL2        Property = "PL2"
	PropPL3        Property = "PL3"
	PropPL4        Property = "PL4"
	PropPL5        Property = "PL5(FIFO)"
	PropPL6        Property = "PL6(liveness)"
	PropDL1        Property = "DL1"
	PropDL2        Property = "DL2"
	PropDL3        Property = "DL3"
	PropDL4        Property = "DL4"
	PropDL5        Property = "DL5"
	PropDL6        Property = "DL6(FIFO)"
	PropDL7        Property = "DL7(no-gaps)"
	PropDL8        Property = "DL8(liveness)"
	PropValid      Property = "valid"
)

// Violation records one failed property with the 1-based index of the
// offending event (0 when the violation is not tied to a single event).
type Violation struct {
	Property Property
	Index    int
	Detail   string
}

// String renders the violation for reports.
func (v Violation) String() string {
	if v.Index > 0 {
		return fmt.Sprintf("%s at event %d: %s", v.Property, v.Index, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Property, v.Detail)
}

// Verdict is the outcome of checking a sequence against a specification.
type Verdict struct {
	// Vacuous reports that the environment-side hypotheses (well-formedness
	// and the input-restriction properties) failed, so the sequence
	// belongs to the module unconditionally.
	Vacuous bool
	// HypothesisFailures lists the failed environment-side properties when
	// Vacuous is true.
	HypothesisFailures []Violation
	// Violations lists failures of the channel/link-side properties. Empty
	// means the sequence satisfies the specification.
	Violations []Violation
}

// OK reports whether the sequence is a schedule of the module: either the
// hypotheses failed (vacuous membership) or no guaranteed property was
// violated.
func (v Verdict) OK() bool { return v.Vacuous || len(v.Violations) == 0 }

// String summarises the verdict.
func (v Verdict) String() string {
	if v.Vacuous {
		parts := make([]string, len(v.HypothesisFailures))
		for i, h := range v.HypothesisFailures {
			parts[i] = h.String()
		}
		return "vacuously OK (hypotheses failed: " + strings.Join(parts, "; ") + ")"
	}
	if len(v.Violations) == 0 {
		return "OK"
	}
	parts := make([]string, len(v.Violations))
	for i, viol := range v.Violations {
		parts[i] = viol.String()
	}
	return "VIOLATED: " + strings.Join(parts, "; ")
}
