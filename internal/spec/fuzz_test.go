package spec

import (
	"testing"

	"repro/internal/ioa"
)

// actionFromByte decodes a pseudo-random layer action; the two-byte form
// gives fuzzing control over parameters.
func actionFromByte(op, arg byte) ioa.Action {
	dirs := []ioa.Dir{ioa.TR, ioa.RT}
	d := dirs[int(op)%2]
	msg := ioa.Message(string(rune('a' + arg%6)))
	pkt := ioa.Packet{ID: uint64(arg), Header: ioa.Header(string(rune('p' + arg%4)))}
	switch (op / 2) % 7 {
	case 0:
		return ioa.SendMsg(d, msg)
	case 1:
		return ioa.ReceiveMsg(d, msg)
	case 2:
		return ioa.SendPkt(d, pkt)
	case 3:
		return ioa.ReceivePkt(d, pkt)
	case 4:
		return ioa.Wake(d)
	case 5:
		return ioa.Fail(d)
	default:
		return ioa.Crash(d)
	}
}

func scheduleFromBytes(data []byte) ioa.Schedule {
	var out ioa.Schedule
	for i := 0; i+1 < len(data) && len(out) < 200; i += 2 {
		out = append(out, actionFromByte(data[i], data[i+1]))
	}
	return out
}

// FuzzCheckersContainment fuzzes all the specification checkers with
// arbitrary action sequences, asserting that (1) none of them panics, and
// (2) the paper's containments hold on every input: scheds(DL) ⊆
// scheds(WDL), scheds(PL-FIFO) ⊆ scheds(PL), and valid sequences belong
// to DL.
func FuzzCheckersContainment(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{8, 0, 9, 0, 0, 1, 2, 1})             // wake wake send receive
	f.Add([]byte{0, 1, 0, 1, 2, 2, 2, 2})             // duplicates everywhere
	f.Add([]byte{10, 0, 12, 0, 8, 0, 0, 3, 2, 3})     // fail/crash churn
	f.Add([]byte{4, 7, 6, 7, 4, 9, 6, 9, 5, 7, 5, 9}) // packet traffic
	f.Fuzz(func(t *testing.T, data []byte) {
		beta := scheduleFromBytes(data)
		dl := CheckDL(beta, ioa.TR)
		wdl := CheckWDL(beta, ioa.TR)
		if dl.OK() && !wdl.OK() {
			t.Fatalf("scheds(DL) ⊄ scheds(WDL):\nDL:  %s\nWDL: %s\nβ: %s", dl, wdl, beta)
		}
		plf := CheckPLFIFO(beta, ioa.TR)
		pl := CheckPL(beta, ioa.TR)
		if plf.OK() && !pl.OK() {
			t.Fatalf("scheds(PL-FIFO) ⊄ scheds(PL):\nPL-FIFO: %s\nPL: %s\nβ: %s", plf, pl, beta)
		}
		valid := CheckValid(beta, ioa.TR)
		if valid.OK() {
			// Valid sequences are well-formed and satisfy DL1-DL5 + DL8,
			// hence are DL-hypothesis-satisfying; DL6/DL7 may still fail,
			// but WDL must accept them.
			if !wdl.OK() {
				t.Fatalf("valid sequence rejected by WDL: %s\nβ: %s", wdl, beta)
			}
		}
		// The reverse direction checker must be independent.
		_ = CheckDL(beta, ioa.RT)
		_ = CheckValid(beta, ioa.RT)
	})
}
