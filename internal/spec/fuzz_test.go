package spec_test

import (
	"testing"

	"repro/internal/swarm"
)

// FuzzCheckersContainment fuzzes all the specification checkers with
// arbitrary action sequences, asserting that (1) none of them panics, and
// (2) the paper's containments hold on every input: scheds(DL) ⊆
// scheds(WDL), scheds(PL-FIFO) ⊆ scheds(PL), and valid sequences belong
// to DL.
//
// The byte encoding and the assertions live in the swarm package
// (SpecScheduleFromBytes, CheckSpecContainments), shared with the
// regression corpus: an input this fuzzer crashes on can be saved
// verbatim as a KindSpec corpus entry and is then re-checked forever by
// the swarm package's TestCorpusReplay.
func FuzzCheckersContainment(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{8, 0, 9, 0, 0, 1, 2, 1})             // wake wake send receive
	f.Add([]byte{0, 1, 0, 1, 2, 2, 2, 2})             // duplicates everywhere
	f.Add([]byte{10, 0, 12, 0, 8, 0, 0, 3, 2, 3})     // fail/crash churn
	f.Add([]byte{4, 7, 6, 7, 4, 9, 6, 9, 5, 7, 5, 9}) // packet traffic
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := swarm.CheckSpecContainments(swarm.SpecScheduleFromBytes(data)); err != nil {
			t.Fatal(err)
		}
	})
}
