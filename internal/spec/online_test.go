package spec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ioa"
)

// randDLSchedule generates an arbitrary (usually ill-formed) data-link
// schedule: status events in both directions and send/receive events
// over a small message alphabet, so duplicates, spurious receives,
// reorderings, orphaned sends and wake-wake interval discards all occur.
func randDLSchedule(rng *rand.Rand, n int) ioa.Schedule {
	dirs := []ioa.Dir{ioa.TR, ioa.RT}
	var beta ioa.Schedule
	for i := 0; i < n; i++ {
		d := dirs[rng.Intn(2)]
		m := ioa.Message(fmt.Sprintf("m%d", rng.Intn(6)))
		switch rng.Intn(10) {
		case 0, 1:
			beta = append(beta, ioa.Wake(d))
		case 2:
			beta = append(beta, ioa.Fail(d))
		case 3:
			beta = append(beta, ioa.Crash(d))
		case 4, 5, 6:
			beta = append(beta, ioa.SendMsg(ioa.TR, m))
		default:
			beta = append(beta, ioa.ReceiveMsg(ioa.TR, m))
		}
	}
	return beta
}

// randPLSchedule generates an arbitrary physical-layer schedule for one
// direction with a tiny packet space, so PL2/PL3 duplicates and PL5
// inversions occur.
func randPLSchedule(rng *rand.Rand, d ioa.Dir, n int) ioa.Schedule {
	var beta ioa.Schedule
	for i := 0; i < n; i++ {
		p := ioa.Packet{
			ID:      uint64(rng.Intn(8)),
			Header:  ioa.Header(fmt.Sprintf("h%d", rng.Intn(3))),
			Payload: ioa.Message(fmt.Sprintf("m%d", rng.Intn(3))),
		}
		switch rng.Intn(10) {
		case 0, 1:
			beta = append(beta, ioa.Wake(d))
		case 2:
			beta = append(beta, ioa.Fail(d))
		case 3:
			beta = append(beta, ioa.Crash(d))
		case 4, 5, 6:
			beta = append(beta, ioa.SendPkt(d, p))
		default:
			beta = append(beta, ioa.ReceivePkt(d, p))
		}
	}
	return beta
}

// TestOnlineDLMatchesOffline is the soundness statement of the online
// DL monitor: on any schedule — well-formed or not — feeding the events
// one at a time produces exactly CheckDL's verdict, including violation
// indices and detail strings.
func TestOnlineDLMatchesOffline(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		beta := randDLSchedule(rng, 3+rng.Intn(60))
		m := NewOnlineDL(ioa.TR)
		for _, a := range beta {
			m.Observe(a)
		}
		got, want := m.Verdict(), CheckDL(beta, ioa.TR)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: online verdict diverges from CheckDL\nonline:  %s\noffline: %s\nschedule:\n%s",
				seed, got, want, ioa.FormatSchedule(beta))
		}
	}
}

// TestOnlineDLMatchesOfflineOnEveryPrefix checks the stronger property
// that the monitor agrees with the offline checker after every single
// event, not just at the end of the trace.
func TestOnlineDLMatchesOfflineOnEveryPrefix(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		beta := randDLSchedule(rng, 3+rng.Intn(40))
		m := NewOnlineDL(ioa.TR)
		for i, a := range beta {
			m.Observe(a)
			got, want := m.Verdict(), CheckDL(beta[:i+1], ioa.TR)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: prefix %d diverges\nonline:  %s\noffline: %s\nschedule:\n%s",
					seed, i+1, got, want, ioa.FormatSchedule(beta[:i+1]))
			}
		}
	}
}

// TestOnlinePLMatchesOffline is the PL twin, for both the plain and the
// FIFO module.
func TestOnlinePLMatchesOffline(t *testing.T) {
	for _, fifo := range []bool{false, true} {
		for seed := int64(0); seed < 400; seed++ {
			rng := rand.New(rand.NewSource(seed))
			beta := randPLSchedule(rng, ioa.TR, 3+rng.Intn(60))
			m := NewOnlinePL(ioa.TR, fifo)
			for _, a := range beta {
				m.Observe(a)
			}
			got := m.Verdict()
			var want Verdict
			if fifo {
				want = CheckPLFIFO(beta, ioa.TR)
			} else {
				want = CheckPL(beta, ioa.TR)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("fifo=%v seed %d: online verdict diverges\nonline:  %s\noffline: %s\nschedule:\n%s",
					fifo, seed, got, want, ioa.FormatSchedule(beta))
			}
		}
	}
}

// TestOnlineDLWakeWakeDiscardsInterval pins the trickiest divergence
// hazard: a second wake discards the open interval, retroactively
// orphaning the sends inside it. The offline checker reports those
// sends under (DL2); the online monitor must too.
func TestOnlineDLWakeWakeDiscardsInterval(t *testing.T) {
	beta := ioa.Schedule{
		ioa.Wake(ioa.TR),
		ioa.Wake(ioa.RT),
		ioa.SendMsg(ioa.TR, "m1"),
		ioa.Wake(ioa.TR), // discards the interval holding the send of m1
		ioa.SendMsg(ioa.TR, "m2"),
		ioa.ReceiveMsg(ioa.TR, "m2"),
	}
	m := NewOnlineDL(ioa.TR)
	for _, a := range beta {
		m.Observe(a)
	}
	got, want := m.Verdict(), CheckDL(beta, ioa.TR)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("online %s != offline %s", got, want)
	}
	if !got.Vacuous {
		t.Fatalf("expected a vacuous verdict (DL2 hypothesis failure), got %s", got)
	}
	found := false
	for _, h := range got.HypothesisFailures {
		if h.Property == PropDL2 && h.Index == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected DL2 failure at event 3, got %s", got)
	}
}

// TestOnlineDLObserveSignalsSafetyViolations checks that Observe
// reports the first DL4/DL5/DL6 violation at the event that causes it.
func TestOnlineDLObserveSignalsSafetyViolations(t *testing.T) {
	m := NewOnlineDL(ioa.TR)
	steps := ioa.Schedule{
		ioa.Wake(ioa.TR),
		ioa.Wake(ioa.RT),
		ioa.SendMsg(ioa.TR, "m1"),
		ioa.ReceiveMsg(ioa.TR, "m1"),
	}
	for _, a := range steps {
		if v := m.Observe(a); v != nil {
			t.Fatalf("unexpected violation %s at %s", v, a)
		}
	}
	v := m.Observe(ioa.ReceiveMsg(ioa.TR, "m1"))
	if v == nil || v.Property != PropDL4 || v.Index != 5 {
		t.Fatalf("want DL4 at event 5, got %v", v)
	}
	if v := m.Observe(ioa.ReceiveMsg(ioa.TR, "zZz")); v == nil || v.Property != PropDL5 {
		t.Fatalf("want DL5, got %v", v)
	}
}
