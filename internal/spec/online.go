package spec

import (
	"fmt"

	"repro/internal/ioa"
)

// This file provides online (incremental) versions of the offline
// checkers CheckDL, CheckPL and CheckPLFIFO. An online monitor observes
// the events of a schedule one at a time, in order, and can produce at
// any moment the exact verdict the offline checker would produce on the
// prefix observed so far — identical down to the violation Index and
// Detail strings. The transport backend attaches these monitors to live
// action streams; the equality "online verdict == offline verdict on
// the captured schedule" is the monitors' soundness statement, and is
// enforced by randomized tests in online_test.go.
//
// Most of the paper's properties are prefix-closed and can be decided
// event by event with O(1) amortised work ((DL3)-(DL6), (PL2)-(PL5),
// well-formedness). Two subtleties force the monitors to retain a
// little more state:
//
//   - Working-interval membership ((DL2), (PL1)) cannot be decided at
//     the send event: workingIntervals discards an open interval when a
//     second wake arrives without an intervening fail/crash (the
//     ill-formed wake-wake pattern), retroactively orphaning the sends
//     inside it. Sends in the currently open interval are therefore
//     held as *candidate* violations until the interval either closes
//     properly (they are safe forever) or is discarded by a re-wake
//     (the earliest becomes the violation).
//
//   - (DL7) and (DL8) quantify over whole working intervals and the
//     trace-final receive set, so the monitor retains the per-interval
//     send lists and computes those two properties at Verdict time.
//
// Memory is O(messages + status events), never O(events²), which is
// what makes the monitors usable on long-running live connections.

// onlineWF tracks wellFormedDir for one direction.
type onlineWF struct {
	awake bool
	viol  *Violation
}

func (w *onlineWF) observe(a ioa.Action, d ioa.Dir, idx int) {
	if w.viol != nil || a.Dir != d {
		return
	}
	switch a.Kind {
	case ioa.KindCrash:
		w.awake = false
	case ioa.KindWake:
		if w.awake {
			w.viol = &Violation{Property: PropWellFormed, Index: idx,
				Detail: fmt.Sprintf("wake^{%s} without intervening fail^{%s}", d, d)}
			return
		}
		w.awake = true
	case ioa.KindFail:
		if !w.awake {
			w.viol = &Violation{Property: PropWellFormed, Index: idx,
				Detail: fmt.Sprintf("fail^{%s} without preceding wake^{%s}", d, d)}
			return
		}
		w.awake = false
	}
}

// intervalSend is one send event retained for interval-scoped checks:
// the message, its 1-based event index, and the prebuilt violation to
// surface if the enclosing interval turns out to be discarded.
type intervalSend struct {
	msg  ioa.Message
	idx  int
	cand Violation
}

// OnlineDL incrementally decides CheckDL^{d}. Feed it, in order, the
// events of the data-link behavior that the offline checker would see
// (kinds send_msg, receive_msg, wake, fail and crash, both directions;
// other kinds are ignored but still advance the event index, so feeding
// exactly the offline schedule preserves index fidelity). The zero
// value is not ready; construct with NewOnlineDL.
type OnlineDL struct {
	dir ioa.Dir
	n   int // events observed (the current 1-based index after Observe)

	// Hypotheses.
	wf   [2]onlineWF // 0: dir, 1: dir.Rev(), matching WellFormedDL order
	open [2]bool     // an interval is currently open (workingIntervals semantics)
	dl2  *Violation
	dl3  *Violation
	// Guarantees decidable online.
	dl4 *Violation
	dl5 *Violation
	dl6 *Violation

	sentAt map[ioa.Message]int // first send_msg^{d} index per message
	recvAt map[ioa.Message]int // first receive_msg^{d} index per message

	// DL6 state, mirroring the offline scan exactly.
	sendIndex     map[ioa.Message]int
	nextSend      int
	lastDelivered int

	// Interval-scoped state for DL2 candidates, DL7 and DL8.
	closedSends [][]intervalSend // send lists of properly closed intervals
	openSends   []intervalSend   // sends in the currently open interval
}

// NewOnlineDL returns an online monitor for CheckDL^{d}.
func NewOnlineDL(d ioa.Dir) *OnlineDL {
	return &OnlineDL{
		dir:           d,
		sentAt:        make(map[ioa.Message]int),
		recvAt:        make(map[ioa.Message]int),
		sendIndex:     make(map[ioa.Message]int),
		lastDelivered: -1,
	}
}

// Dir returns the monitored message direction.
func (m *OnlineDL) Dir() ioa.Dir { return m.dir }

// Events returns the number of events observed so far.
func (m *OnlineDL) Events() int { return m.n }

// Observe feeds the next event. It returns a non-nil Violation exactly
// when one of the online-decidable guarantee properties ((DL4), (DL5),
// (DL6)) is violated for the first time at this event — the signal a
// live monitor acts on immediately. Hypothesis failures and the
// Verdict-time properties (DL7), (DL8) are reported by Verdict.
func (m *OnlineDL) Observe(a ioa.Action) *Violation {
	m.n++
	idx := m.n

	m.wf[0].observe(a, m.dir, idx)
	m.wf[1].observe(a, m.dir.Rev(), idx)
	m.observeIntervals(a, idx)

	if a.Dir != m.dir {
		return nil
	}
	switch a.Kind {
	case ioa.KindSendMsg:
		return m.observeSend(a, idx)
	case ioa.KindReceiveMsg:
		return m.observeReceive(a, idx)
	}
	return nil
}

// observeIntervals maintains the workingIntervals state for both
// directions: wake opens an interval (discarding an already-open one),
// fail/crash closes it.
func (m *OnlineDL) observeIntervals(a ioa.Action, idx int) {
	for k, d := range [2]ioa.Dir{m.dir, m.dir.Rev()} {
		if a.Dir != d {
			continue
		}
		switch a.Kind {
		case ioa.KindWake:
			if k == 0 && m.open[0] {
				// Re-wake: the open interval is discarded, so its sends
				// were never in any working interval. The earliest such
				// send is the DL2 violation (any earlier failing send
				// was already recorded with a smaller index).
				if m.dl2 == nil && len(m.openSends) > 0 {
					v := m.openSends[0].cand
					m.dl2 = &v
				}
				m.openSends = m.openSends[:0]
			}
			m.open[k] = true
		case ioa.KindFail, ioa.KindCrash:
			if k == 0 && m.open[0] {
				m.closedSends = append(m.closedSends, m.openSends)
				m.openSends = nil
			}
			m.open[k] = false
		}
	}
}

func (m *OnlineDL) observeSend(a ioa.Action, idx int) *Violation {
	cand := Violation{Property: PropDL2, Index: idx,
		Detail: fmt.Sprintf("%s outside any transmitter working interval", a)}
	if m.open[0] {
		m.openSends = append(m.openSends, intervalSend{msg: a.Msg, idx: idx, cand: cand})
	} else if m.dl2 == nil {
		m.dl2 = &cand
	}
	if m.dl3 == nil {
		if j, dup := m.sentAt[a.Msg]; dup {
			m.dl3 = &Violation{Property: PropDL3, Index: idx,
				Detail: fmt.Sprintf("message %q already sent at event %d", string(a.Msg), j)}
		}
	}
	if _, ok := m.sentAt[a.Msg]; !ok {
		m.sentAt[a.Msg] = idx
	}
	if m.dl6 == nil {
		if _, dup := m.sendIndex[a.Msg]; !dup {
			m.sendIndex[a.Msg] = m.nextSend
		}
		m.nextSend++
	}
	return nil
}

func (m *OnlineDL) observeReceive(a ioa.Action, idx int) *Violation {
	var fresh *Violation
	if m.dl4 == nil {
		if j, dup := m.recvAt[a.Msg]; dup {
			m.dl4 = &Violation{Property: PropDL4, Index: idx,
				Detail: fmt.Sprintf("message %q already received at event %d", string(a.Msg), j)}
			fresh = m.dl4
		}
	}
	if m.dl5 == nil {
		if _, sent := m.sentAt[a.Msg]; !sent {
			m.dl5 = &Violation{Property: PropDL5, Index: idx,
				Detail: fmt.Sprintf("message %q received but never sent", string(a.Msg))}
			if fresh == nil {
				fresh = m.dl5
			}
		}
	}
	if m.dl6 == nil {
		if si, ok := m.sendIndex[a.Msg]; ok {
			if si <= m.lastDelivered {
				m.dl6 = &Violation{Property: PropDL6, Index: idx,
					Detail: fmt.Sprintf("message %q (send #%d) delivered after a later-sent message (send #%d)", string(a.Msg), si+1, m.lastDelivered+1)}
				if fresh == nil {
					fresh = m.dl6
				}
			} else {
				m.lastDelivered = si
			}
		}
	}
	if _, ok := m.recvAt[a.Msg]; !ok {
		m.recvAt[a.Msg] = idx
	}
	return fresh
}

// dl7 replays the offline DL7 scan over the retained interval send
// lists and the trace-final receive set.
func (m *OnlineDL) dl7() *Violation {
	intervals := m.closedSends
	if m.open[0] {
		intervals = append(intervals[:len(intervals):len(intervals)], m.openSends)
	}
	for _, sends := range intervals {
		for j := len(sends) - 1; j > 0; j-- {
			_, laterRecv := m.recvAt[sends[j].msg]
			_, earlierRecv := m.recvAt[sends[j-1].msg]
			if laterRecv && !earlierRecv {
				return &Violation{Property: PropDL7, Index: sends[j-1].idx,
					Detail: fmt.Sprintf("message %q lost but later message %q from the same working interval delivered", string(sends[j-1].msg), string(sends[j].msg))}
			}
		}
	}
	return nil
}

// dl8 interprets the observed prefix as a completed trace: every send
// in the unbounded (still open) transmitter interval must be received.
func (m *OnlineDL) dl8() *Violation {
	if !m.open[0] {
		return nil
	}
	for _, s := range m.openSends {
		if _, ok := m.recvAt[s.msg]; !ok {
			return &Violation{Property: PropDL8, Index: s.idx,
				Detail: fmt.Sprintf("message %q sent in the unbounded transmitter working interval but never received", string(s.msg))}
		}
	}
	return nil
}

// Verdict returns CheckDL's verdict on the observed prefix, interpreted
// as a completed trace (the same finite-trace liveness reading the
// offline checker uses; see the package comment).
func (m *OnlineDL) Verdict() Verdict {
	var hyp []Violation
	if m.wf[0].viol != nil {
		hyp = append(hyp, *m.wf[0].viol)
	} else if m.wf[1].viol != nil {
		hyp = append(hyp, *m.wf[1].viol)
	}
	if m.open[0] != m.open[1] {
		hyp = append(hyp, Violation{Property: PropDL1,
			Detail: fmt.Sprintf("unbounded transmitter interval=%v but unbounded receiver interval=%v", m.open[0], m.open[1])})
	}
	if m.dl2 != nil {
		hyp = append(hyp, *m.dl2)
	}
	if m.dl3 != nil {
		hyp = append(hyp, *m.dl3)
	}
	if len(hyp) > 0 {
		return Verdict{Vacuous: true, HypothesisFailures: hyp}
	}
	var out []Violation
	for _, v := range []*Violation{m.dl4, m.dl5, m.dl6, m.dl7(), m.dl8()} {
		if v != nil {
			out = append(out, *v)
		}
	}
	return Verdict{Violations: out}
}

// OnlinePL incrementally decides CheckPL^{d} (and CheckPLFIFO^{d} when
// fifo is set). Feed it, in order, the events of the physical-layer
// schedule for direction d that the offline checker would see (kinds
// send_pkt, receive_pkt, wake, fail and crash with direction d; other
// events are ignored but advance the index). The zero value is not
// ready; construct with NewOnlinePL.
type OnlinePL struct {
	dir  ioa.Dir
	fifo bool
	n    int

	wf   onlineWF
	open bool
	pl1  *Violation
	pl2  *Violation
	pl3  *Violation
	pl4  *Violation
	pl5  *Violation

	// Sends inside the currently open interval: candidate PL1
	// violations until the interval closes properly (see OnlineDL).
	pending []Violation

	sentAt map[ioa.Packet]int
	recvAt map[ioa.Packet]int

	sendIndex     map[ioa.Packet]int
	nextSend      int
	lastDelivered int
}

// NewOnlinePL returns an online monitor for CheckPL^{d}; with fifo set
// its Verdict matches CheckPLFIFO^{d}.
func NewOnlinePL(d ioa.Dir, fifo bool) *OnlinePL {
	return &OnlinePL{
		dir:           d,
		fifo:          fifo,
		sentAt:        make(map[ioa.Packet]int),
		recvAt:        make(map[ioa.Packet]int),
		sendIndex:     make(map[ioa.Packet]int),
		lastDelivered: -1,
	}
}

// Dir returns the monitored packet direction.
func (m *OnlinePL) Dir() ioa.Dir { return m.dir }

// FIFO reports whether the monitor also checks (PL5).
func (m *OnlinePL) FIFO() bool { return m.fifo }

// Events returns the number of events observed so far.
func (m *OnlinePL) Events() int { return m.n }

// Observe feeds the next event, returning a Violation when one of the
// online-decidable guarantees ((PL3), (PL4), (PL5)) first fails.
func (m *OnlinePL) Observe(a ioa.Action) *Violation {
	m.n++
	idx := m.n
	m.wf.observe(a, m.dir, idx)
	if a.Dir != m.dir {
		return nil
	}
	switch a.Kind {
	case ioa.KindWake:
		if m.open {
			if m.pl1 == nil && len(m.pending) > 0 {
				v := m.pending[0]
				m.pl1 = &v
			}
			m.pending = m.pending[:0]
		}
		m.open = true
	case ioa.KindFail, ioa.KindCrash:
		m.pending = nil
		m.open = false
	case ioa.KindSendPkt:
		cand := Violation{Property: PropPL1, Index: idx,
			Detail: fmt.Sprintf("%s outside any working interval", a)}
		if m.open {
			m.pending = append(m.pending, cand)
		} else if m.pl1 == nil {
			m.pl1 = &cand
		}
		if m.pl2 == nil {
			if j, dup := m.sentAt[a.Pkt]; dup {
				m.pl2 = &Violation{Property: PropPL2, Index: idx,
					Detail: fmt.Sprintf("packet %s already sent at event %d", a.Pkt, j)}
			}
		}
		if _, ok := m.sentAt[a.Pkt]; !ok {
			m.sentAt[a.Pkt] = idx
		}
		if m.pl5 == nil {
			m.sendIndex[a.Pkt] = m.nextSend
			m.nextSend++
		}
	case ioa.KindReceivePkt:
		var fresh *Violation
		if m.pl3 == nil {
			if j, dup := m.recvAt[a.Pkt]; dup {
				m.pl3 = &Violation{Property: PropPL3, Index: idx,
					Detail: fmt.Sprintf("packet %s already received at event %d", a.Pkt, j)}
				fresh = m.pl3
			}
		}
		if m.pl4 == nil {
			if _, sent := m.sentAt[a.Pkt]; !sent {
				m.pl4 = &Violation{Property: PropPL4, Index: idx,
					Detail: fmt.Sprintf("packet %s received but never sent", a.Pkt)}
				if fresh == nil {
					fresh = m.pl4
				}
			}
		}
		if m.pl5 == nil {
			if si, ok := m.sendIndex[a.Pkt]; ok {
				if si <= m.lastDelivered {
					m.pl5 = &Violation{Property: PropPL5, Index: idx,
						Detail: fmt.Sprintf("packet %s (send #%d) delivered after a later-sent packet (send #%d)", a.Pkt, si+1, m.lastDelivered+1)}
					if fresh == nil && m.fifo {
						fresh = m.pl5
					}
				} else {
					m.lastDelivered = si
				}
			}
		}
		if _, ok := m.recvAt[a.Pkt]; !ok {
			m.recvAt[a.Pkt] = idx
		}
		return fresh
	}
	return nil
}

// Verdict returns CheckPL's verdict (CheckPLFIFO's when the monitor is
// FIFO) on the observed prefix.
func (m *OnlinePL) Verdict() Verdict {
	var hyp []Violation
	if m.wf.viol != nil {
		hyp = append(hyp, *m.wf.viol)
	}
	if m.pl1 != nil {
		hyp = append(hyp, *m.pl1)
	}
	if m.pl2 != nil {
		hyp = append(hyp, *m.pl2)
	}
	if len(hyp) > 0 {
		return Verdict{Vacuous: true, HypothesisFailures: hyp}
	}
	var out []Violation
	if m.pl3 != nil {
		out = append(out, *m.pl3)
	}
	if m.pl4 != nil {
		out = append(out, *m.pl4)
	}
	if m.fifo && m.pl5 != nil {
		out = append(out, *m.pl5)
	}
	return Verdict{Violations: out}
}
