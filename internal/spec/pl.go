package spec

import (
	"fmt"

	"repro/internal/ioa"
)

// WellFormedPL checks well-formedness of a sequence of physical layer
// actions for direction d (Section 3): within every crash^{d}-delimited
// interval, fail^{d} and wake^{d} alternate strictly starting with
// wake^{d}.
func WellFormedPL(beta ioa.Schedule, d ioa.Dir) *Violation {
	return wellFormedDir(beta, d)
}

// PL1 checks that every send_pkt^{d} event occurs in a working interval.
// The sequence must be well-formed.
func PL1(beta ioa.Schedule, d ioa.Dir) *Violation {
	for i, a := range beta {
		if a.Kind == ioa.KindSendPkt && a.Dir == d && !inWorkingInterval(beta, d, i) {
			return &Violation{Property: PropPL1, Index: i + 1,
				Detail: fmt.Sprintf("%s outside any working interval", a)}
		}
	}
	return nil
}

// PL2 checks that every packet is sent at most once.
func PL2(beta ioa.Schedule, d ioa.Dir) *Violation {
	seen := make(map[ioa.Packet]int)
	for i, a := range beta {
		if a.Kind != ioa.KindSendPkt || a.Dir != d {
			continue
		}
		if j, dup := seen[a.Pkt]; dup {
			return &Violation{Property: PropPL2, Index: i + 1,
				Detail: fmt.Sprintf("packet %s already sent at event %d", a.Pkt, j)}
		}
		seen[a.Pkt] = i + 1
	}
	return nil
}

// PL3 checks that every packet is received at most once.
func PL3(beta ioa.Schedule, d ioa.Dir) *Violation {
	seen := make(map[ioa.Packet]int)
	for i, a := range beta {
		if a.Kind != ioa.KindReceivePkt || a.Dir != d {
			continue
		}
		if j, dup := seen[a.Pkt]; dup {
			return &Violation{Property: PropPL3, Index: i + 1,
				Detail: fmt.Sprintf("packet %s already received at event %d", a.Pkt, j)}
		}
		seen[a.Pkt] = i + 1
	}
	return nil
}

// PL4 checks that every receive_pkt^{d}(p) event has a preceding
// send_pkt^{d}(p) event.
func PL4(beta ioa.Schedule, d ioa.Dir) *Violation {
	sent := make(map[ioa.Packet]bool)
	for i, a := range beta {
		if a.Dir != d {
			continue
		}
		switch a.Kind {
		case ioa.KindSendPkt:
			sent[a.Pkt] = true
		case ioa.KindReceivePkt:
			if !sent[a.Pkt] {
				return &Violation{Property: PropPL4, Index: i + 1,
					Detail: fmt.Sprintf("packet %s received but never sent", a.Pkt)}
			}
		}
	}
	return nil
}

// PL5 checks the FIFO property: delivered packets have their receive_pkt
// events in the same order as their send_pkt events. Gaps (lost packets)
// are allowed.
func PL5(beta ioa.Schedule, d ioa.Dir) *Violation {
	sendIndex := make(map[ioa.Packet]int)
	nextSend := 0
	lastDelivered := -1
	for i, a := range beta {
		if a.Dir != d {
			continue
		}
		switch a.Kind {
		case ioa.KindSendPkt:
			sendIndex[a.Pkt] = nextSend
			nextSend++
		case ioa.KindReceivePkt:
			si, ok := sendIndex[a.Pkt]
			if !ok {
				// PL4's job; don't double-report.
				continue
			}
			if si <= lastDelivered {
				return &Violation{Property: PropPL5, Index: i + 1,
					Detail: fmt.Sprintf("packet %s (send #%d) delivered after a later-sent packet (send #%d)", a.Pkt, si+1, lastDelivered+1)}
			}
			lastDelivered = si
		}
	}
	return nil
}

// plHypotheses gathers the environment-side conditions of the PL modules:
// well-formedness, (PL1) and (PL2).
func plHypotheses(beta ioa.Schedule, d ioa.Dir) []Violation {
	var out []Violation
	if v := WellFormedPL(beta, d); v != nil {
		out = append(out, *v)
	}
	if v := PL1(beta, d); v != nil {
		out = append(out, *v)
	}
	if v := PL2(beta, d); v != nil {
		out = append(out, *v)
	}
	return out
}

// CheckPL decides membership of β in scheds(PL^{d}): if β is well-formed
// and satisfies (PL1)-(PL2), then it must satisfy (PL3) and (PL4).
//
// (PL6) is a liveness property over infinite executions and guarantees
// nothing on any finite trace (it requires infinitely many send events);
// it is exercised at the automaton level by the channel package's fairness
// tests rather than here.
func CheckPL(beta ioa.Schedule, d ioa.Dir) Verdict {
	if hyp := plHypotheses(beta, d); len(hyp) > 0 {
		return Verdict{Vacuous: true, HypothesisFailures: hyp}
	}
	var out []Violation
	if v := PL3(beta, d); v != nil {
		out = append(out, *v)
	}
	if v := PL4(beta, d); v != nil {
		out = append(out, *v)
	}
	return Verdict{Violations: out}
}

// CheckPLFIFO decides membership of β in scheds(PL-FIFO^{d}): like CheckPL
// with the FIFO condition (PL5) added.
func CheckPLFIFO(beta ioa.Schedule, d ioa.Dir) Verdict {
	v := CheckPL(beta, d)
	if v.Vacuous {
		return v
	}
	if f := PL5(beta, d); f != nil {
		v.Violations = append(v.Violations, *f)
	}
	return v
}
