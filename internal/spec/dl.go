package spec

import (
	"fmt"

	"repro/internal/ioa"
)

// WellFormedDL checks well-formedness of a sequence of data link layer
// actions for message direction d (Section 4): the transmitter-side status
// events (direction d) and the receiver-side status events (direction
// d.Rev()) must each alternate fail/wake strictly within their respective
// crash-delimited intervals, starting with wake.
func WellFormedDL(beta ioa.Schedule, d ioa.Dir) *Violation {
	if v := wellFormedDir(beta, d); v != nil {
		return v
	}
	return wellFormedDir(beta, d.Rev())
}

// DL1 checks eventual consistency of the two directions' status: there is
// an unbounded transmitter working interval iff there is an unbounded
// receiver working interval.
func DL1(beta ioa.Schedule, d ioa.Dir) *Violation {
	_, tUnbounded := unboundedInterval(beta, d)
	_, rUnbounded := unboundedInterval(beta, d.Rev())
	if tUnbounded != rUnbounded {
		return &Violation{Property: PropDL1,
			Detail: fmt.Sprintf("unbounded transmitter interval=%v but unbounded receiver interval=%v", tUnbounded, rUnbounded)}
	}
	return nil
}

// DL2 checks that every send_msg^{d} event occurs in a transmitter working
// interval.
func DL2(beta ioa.Schedule, d ioa.Dir) *Violation {
	for i, a := range beta {
		if a.Kind == ioa.KindSendMsg && a.Dir == d && !inWorkingInterval(beta, d, i) {
			return &Violation{Property: PropDL2, Index: i + 1,
				Detail: fmt.Sprintf("%s outside any transmitter working interval", a)}
		}
	}
	return nil
}

// DL3 checks that every message is sent at most once.
func DL3(beta ioa.Schedule, d ioa.Dir) *Violation {
	seen := make(map[ioa.Message]int)
	for i, a := range beta {
		if a.Kind != ioa.KindSendMsg || a.Dir != d {
			continue
		}
		if j, dup := seen[a.Msg]; dup {
			return &Violation{Property: PropDL3, Index: i + 1,
				Detail: fmt.Sprintf("message %q already sent at event %d", string(a.Msg), j)}
		}
		seen[a.Msg] = i + 1
	}
	return nil
}

// DL4 checks that every message is received at most once.
func DL4(beta ioa.Schedule, d ioa.Dir) *Violation {
	seen := make(map[ioa.Message]int)
	for i, a := range beta {
		if a.Kind != ioa.KindReceiveMsg || a.Dir != d {
			continue
		}
		if j, dup := seen[a.Msg]; dup {
			return &Violation{Property: PropDL4, Index: i + 1,
				Detail: fmt.Sprintf("message %q already received at event %d", string(a.Msg), j)}
		}
		seen[a.Msg] = i + 1
	}
	return nil
}

// DL5 checks that every receive_msg^{d}(m) event has a preceding
// send_msg^{d}(m) event.
func DL5(beta ioa.Schedule, d ioa.Dir) *Violation {
	sent := make(map[ioa.Message]bool)
	for i, a := range beta {
		if a.Dir != d {
			continue
		}
		switch a.Kind {
		case ioa.KindSendMsg:
			sent[a.Msg] = true
		case ioa.KindReceiveMsg:
			if !sent[a.Msg] {
				return &Violation{Property: PropDL5, Index: i + 1,
					Detail: fmt.Sprintf("message %q received but never sent", string(a.Msg))}
			}
		}
	}
	return nil
}

// DL6 checks the data-link FIFO property: delivered messages are received
// in the order they were sent.
func DL6(beta ioa.Schedule, d ioa.Dir) *Violation {
	sendIndex := make(map[ioa.Message]int)
	nextSend := 0
	lastDelivered := -1
	for i, a := range beta {
		if a.Dir != d {
			continue
		}
		switch a.Kind {
		case ioa.KindSendMsg:
			if _, dup := sendIndex[a.Msg]; !dup {
				sendIndex[a.Msg] = nextSend
			}
			nextSend++
		case ioa.KindReceiveMsg:
			si, ok := sendIndex[a.Msg]
			if !ok {
				continue // DL5's job
			}
			if si <= lastDelivered {
				return &Violation{Property: PropDL6, Index: i + 1,
					Detail: fmt.Sprintf("message %q (send #%d) delivered after a later-sent message (send #%d)", string(a.Msg), si+1, lastDelivered+1)}
			}
			lastDelivered = si
		}
	}
	return nil
}

// DL7 checks the no-gaps property: if two messages are sent in the same
// transmitter working interval and the later one is received, the earlier
// one is received too.
func DL7(beta ioa.Schedule, d ioa.Dir) *Violation {
	received := make(map[ioa.Message]bool)
	for _, a := range beta {
		if a.Kind == ioa.KindReceiveMsg && a.Dir == d {
			received[a.Msg] = true
		}
	}
	for _, iv := range workingIntervals(beta, d) {
		var sends []ioa.Message
		var indices []int
		for i := iv.start + 1; i < iv.end && i < len(beta); i++ {
			if beta[i].Kind == ioa.KindSendMsg && beta[i].Dir == d {
				sends = append(sends, beta[i].Msg)
				indices = append(indices, i)
			}
		}
		for j := len(sends) - 1; j > 0; j-- {
			if received[sends[j]] && !received[sends[j-1]] {
				return &Violation{Property: PropDL7, Index: indices[j-1] + 1,
					Detail: fmt.Sprintf("message %q lost but later message %q from the same working interval delivered", string(sends[j-1]), string(sends[j]))}
			}
		}
	}
	return nil
}

// DL8 checks the data-link liveness property on a completed (quiescent)
// trace: every message sent in an unbounded transmitter working interval
// must be received somewhere in the trace. Callers must only rely on this
// verdict for traces obtained by a fair extension (Lemma 2.1); on an
// arbitrary prefix a DL8 violation merely means "not delivered yet".
func DL8(beta ioa.Schedule, d ioa.Dir) *Violation {
	iv, ok := unboundedInterval(beta, d)
	if !ok {
		return nil
	}
	received := make(map[ioa.Message]bool)
	for _, a := range beta {
		if a.Kind == ioa.KindReceiveMsg && a.Dir == d {
			received[a.Msg] = true
		}
	}
	for i := iv.start + 1; i < len(beta); i++ {
		a := beta[i]
		if a.Kind == ioa.KindSendMsg && a.Dir == d && !received[a.Msg] {
			return &Violation{Property: PropDL8, Index: i + 1,
				Detail: fmt.Sprintf("message %q sent in the unbounded transmitter working interval but never received", string(a.Msg))}
		}
	}
	return nil
}

// dlHypotheses gathers the environment-side conditions of the DL modules:
// well-formedness and (DL1)-(DL3).
func dlHypotheses(beta ioa.Schedule, d ioa.Dir) []Violation {
	var out []Violation
	if v := WellFormedDL(beta, d); v != nil {
		out = append(out, *v)
	}
	if v := DL1(beta, d); v != nil {
		out = append(out, *v)
	}
	if v := DL2(beta, d); v != nil {
		out = append(out, *v)
	}
	if v := DL3(beta, d); v != nil {
		out = append(out, *v)
	}
	return out
}

// CheckDL decides membership of β in scheds(DL^{d}): if β is well-formed
// and satisfies (DL1)-(DL3), then it must satisfy (DL4)-(DL8). See DL8 for
// the finite-trace liveness caveat.
func CheckDL(beta ioa.Schedule, d ioa.Dir) Verdict {
	if hyp := dlHypotheses(beta, d); len(hyp) > 0 {
		return Verdict{Vacuous: true, HypothesisFailures: hyp}
	}
	var out []Violation
	for _, check := range []func(ioa.Schedule, ioa.Dir) *Violation{DL4, DL5, DL6, DL7, DL8} {
		if v := check(beta, d); v != nil {
			out = append(out, *v)
		}
	}
	return Verdict{Violations: out}
}

// CheckWDL decides membership of β in scheds(WDL^{d}), the weak data link
// specification: if β is well-formed and satisfies (DL1)-(DL3), then it
// must satisfy (DL4), (DL5) and (DL8). Every schedule of DL is a schedule
// of WDL, so a WDL violation refutes DL too — this is the module both
// impossibility proofs target.
func CheckWDL(beta ioa.Schedule, d ioa.Dir) Verdict {
	if hyp := dlHypotheses(beta, d); len(hyp) > 0 {
		return Verdict{Vacuous: true, HypothesisFailures: hyp}
	}
	var out []Violation
	for _, check := range []func(ioa.Schedule, ioa.Dir) *Violation{DL4, DL5, DL8} {
		if v := check(beta, d); v != nil {
			out = append(out, *v)
		}
	}
	return Verdict{Violations: out}
}

// CheckValid decides whether β is a valid sequence of data link layer
// actions (Section 8.1): (1) well-formed, (2) satisfies (DL1)-(DL5) and
// (DL8), and (3) a wake event, but no fail or crash events, occur in β.
func CheckValid(beta ioa.Schedule, d ioa.Dir) Verdict {
	var out []Violation
	if v := WellFormedDL(beta, d); v != nil {
		out = append(out, *v)
	}
	for _, check := range []func(ioa.Schedule, ioa.Dir) *Violation{DL1, DL2, DL3, DL4, DL5, DL8} {
		if v := check(beta, d); v != nil {
			out = append(out, *v)
		}
	}
	sawWake := false
	for i, a := range beta {
		switch a.Kind {
		case ioa.KindWake:
			sawWake = true
		case ioa.KindFail, ioa.KindCrash:
			out = append(out, Violation{Property: PropValid, Index: i + 1,
				Detail: fmt.Sprintf("valid sequences contain no fail or crash events, found %s", a)})
		}
	}
	if !sawWake {
		out = append(out, Violation{Property: PropValid, Detail: "no wake event occurs"})
	}
	return Verdict{Violations: out}
}
