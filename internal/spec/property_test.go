package spec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ioa"
)

// genLegalBehavior generates a random behavior that satisfies the full DL
// specification by construction: messages are sent in working intervals
// and delivered in order, with losses only in interval suffixes that end
// in a failure or crash, all FIFO.
func genLegalBehavior(rng *rand.Rand) ioa.Schedule {
	beta := ioa.Schedule{ioa.Wake(ioa.TR), ioa.Wake(ioa.RT)}
	next := 0
	var backlog []ioa.Message // sent, not yet delivered
	intervals := rng.Intn(3) + 1
	for iv := 0; iv < intervals; iv++ {
		steps := rng.Intn(6)
		for s := 0; s < steps; s++ {
			if rng.Intn(2) == 0 {
				m := ioa.Message(string(rune('a' + next)))
				next++
				beta = append(beta, ioa.SendMsg(ioa.TR, m))
				backlog = append(backlog, m)
			} else if len(backlog) > 0 {
				beta = append(beta, ioa.ReceiveMsg(ioa.TR, backlog[0]))
				backlog = backlog[1:]
			}
		}
		if iv < intervals-1 {
			// Close the interval, excusing the backlog (DL7/DL8 allow
			// losing a suffix when the interval ends).
			beta = append(beta, ioa.Fail(ioa.TR), ioa.Fail(ioa.RT),
				ioa.Wake(ioa.TR), ioa.Wake(ioa.RT))
			backlog = nil
		}
	}
	// Deliver the final backlog so DL8 is satisfied in the unbounded
	// interval.
	for _, m := range backlog {
		beta = append(beta, ioa.ReceiveMsg(ioa.TR, m))
	}
	return beta
}

// TestGeneratedLegalBehaviorsPassDL: the generator's outputs satisfy the
// full specification, non-vacuously — and therefore also WDL
// (scheds(DL) ⊆ scheds(WDL) on real traces).
func TestGeneratedLegalBehaviorsPassDL(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		beta := genLegalBehavior(rng)
		dl := CheckDL(beta, ioa.TR)
		wdl := CheckWDL(beta, ioa.TR)
		return dl.OK() && !dl.Vacuous && wdl.OK() && !wdl.Vacuous
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// mutation injects one specific defect into a legal behavior and states
// which property must flag it.
type mutation struct {
	name     string
	mutate   func(ioa.Schedule, *rand.Rand) (ioa.Schedule, bool)
	wantProp Property
	// weakToo reports whether WDL must also flag it (DL4/DL5/DL8) or only
	// the full DL does (DL6/DL7).
	weakToo bool
}

func deliveries(beta ioa.Schedule) []int {
	var idx []int
	for i, a := range beta {
		if a.Kind == ioa.KindReceiveMsg {
			idx = append(idx, i)
		}
	}
	return idx
}

var mutations = []mutation{
	{
		name: "duplicate-delivery",
		mutate: func(beta ioa.Schedule, rng *rand.Rand) (ioa.Schedule, bool) {
			d := deliveries(beta)
			if len(d) == 0 {
				return nil, false
			}
			i := d[rng.Intn(len(d))]
			out := append(beta[:i+1:i+1], beta[i:]...)
			return out, true
		},
		wantProp: PropDL4,
		weakToo:  true,
	},
	{
		name: "spurious-delivery",
		mutate: func(beta ioa.Schedule, rng *rand.Rand) (ioa.Schedule, bool) {
			i := rng.Intn(len(beta)) + 1
			out := append(beta[:i:i], ioa.ReceiveMsg(ioa.TR, "ghost"))
			out = append(out, beta[i:]...)
			return out, true
		},
		wantProp: PropDL5,
		weakToo:  true,
	},
	{
		name: "swap-deliveries",
		mutate: func(beta ioa.Schedule, rng *rand.Rand) (ioa.Schedule, bool) {
			d := deliveries(beta)
			// Swap two adjacent deliveries whose sends BOTH precede the
			// earlier delivery, so the swap breaks only the order (DL6),
			// not DL5.
			sendIdx := map[ioa.Message]int{}
			for i, a := range beta {
				if a.Kind == ioa.KindSendMsg {
					sendIdx[a.Msg] = i
				}
			}
			for k := 0; k < len(d)-1; k++ {
				i, j := d[k], d[k+1]
				if sendIdx[beta[j].Msg] < i && sendIdx[beta[i].Msg] < i {
					out := beta.Clone()
					out[i], out[j] = out[j], out[i]
					return out, true
				}
			}
			return nil, false
		},
		wantProp: PropDL6,
		weakToo:  false,
	},
	{
		name: "drop-final-delivery",
		mutate: func(beta ioa.Schedule, _ *rand.Rand) (ioa.Schedule, bool) {
			d := deliveries(beta)
			if len(d) == 0 {
				return nil, false
			}
			last := d[len(d)-1]
			// Only a DL8 violation if the dropped message was sent in the
			// unbounded interval; ensure it by re-sending it there.
			m := beta[last].Msg
			sentLate := false
			for i := last + 1; i < len(beta); i++ {
				if beta[i].Kind == ioa.KindFail || beta[i].Kind == ioa.KindCrash {
					return nil, false
				}
				_ = i
			}
			for i := range beta {
				if beta[i].Kind == ioa.KindSendMsg && beta[i].Msg == m {
					sentLate = afterLastStatusEvent(beta, i)
				}
			}
			if !sentLate {
				return nil, false
			}
			out := append(beta[:last:last], beta[last+1:]...)
			return out, true
		},
		wantProp: PropDL8,
		weakToo:  true,
	},
}

func afterLastStatusEvent(beta ioa.Schedule, i int) bool {
	for j := i; j < len(beta); j++ {
		switch beta[j].Kind {
		case ioa.KindFail, ioa.KindCrash:
			return false
		}
	}
	return true
}

// TestMutationsAreCaught: every injected defect is flagged with exactly
// the right property by CheckDL, and by CheckWDL when it is a weak-spec
// defect — the checkers have no blind spots on these defect classes.
func TestMutationsAreCaught(t *testing.T) {
	for _, mut := range mutations {
		mut := mut
		t.Run(mut.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			applied := 0
			for trial := 0; trial < 200 && applied < 50; trial++ {
				base := genLegalBehavior(rng)
				mutated, ok := mut.mutate(base, rng)
				if !ok {
					continue
				}
				applied++
				dl := CheckDL(mutated, ioa.TR)
				if dl.Vacuous {
					continue // mutation also broke a hypothesis; uninformative
				}
				found := false
				for _, v := range dl.Violations {
					if v.Property == mut.wantProp {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: mutation not flagged as %s; verdict: %s\nbehavior: %s",
						trial, mut.wantProp, dl, mutated)
				}
				wdl := CheckWDL(mutated, ioa.TR)
				if mut.weakToo && wdl.OK() {
					t.Fatalf("trial %d: WDL missed a weak-spec defect: %s", trial, mutated)
				}
				if !mut.weakToo && !wdl.OK() {
					t.Fatalf("trial %d: WDL flagged a strong-only defect: %s (%s)", trial, mutated, wdl)
				}
			}
			if applied == 0 {
				t.Fatal("mutation never applicable; generator too weak")
			}
		})
	}
}

// TestCheckersIgnoreForeignDirections: actions of the reverse message
// direction never affect verdicts for (t,r).
func TestCheckersIgnoreForeignDirections(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		beta := genLegalBehavior(rng)
		// Interleave receive_msg events of the REVERSE direction, which a
		// (t,r) checker must ignore entirely.
		noisy := ioa.Schedule{}
		for _, a := range beta {
			noisy = append(noisy, a)
			if rng.Intn(3) == 0 {
				noisy = append(noisy, ioa.ReceiveMsg(ioa.RT, "noise"))
			}
		}
		return CheckDL(noisy, ioa.TR).OK() == CheckDL(beta, ioa.TR).OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
