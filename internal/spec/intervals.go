package spec

import (
	"fmt"

	"repro/internal/ioa"
)

// wellFormedDir checks the paper's well-formedness condition for one
// direction d: within every crash^{d}-delimited interval, fail^{d} and
// wake^{d} events alternate strictly, starting with wake^{d}. It returns
// nil when the condition holds.
func wellFormedDir(beta ioa.Schedule, d ioa.Dir) *Violation {
	awake := false // whether the last status event in the current crash interval was wake
	for i, a := range beta {
		if a.Dir != d {
			continue
		}
		switch a.Kind {
		case ioa.KindCrash:
			// A crash delimits intervals; it may follow a wake with no
			// intervening fail (the crash "includes a failure").
			awake = false
		case ioa.KindWake:
			if awake {
				return &Violation{Property: PropWellFormed, Index: i + 1,
					Detail: fmt.Sprintf("wake^{%s} without intervening fail^{%s}", d, d)}
			}
			awake = true
		case ioa.KindFail:
			if !awake {
				return &Violation{Property: PropWellFormed, Index: i + 1,
					Detail: fmt.Sprintf("fail^{%s} without preceding wake^{%s}", d, d)}
			}
			awake = false
		}
	}
	return nil
}

// interval is a working interval for one direction: the half-open range of
// 0-based event indices (start, end) strictly between a wake event and the
// next fail/crash event in the same direction. Unbounded reports that no
// later fail or crash occurs (the paper's unbounded working interval).
type interval struct {
	start     int // index of the wake event
	end       int // index of the terminating fail/crash, or len(beta) if unbounded
	unbounded bool
}

// contains reports whether event index i (0-based) lies strictly inside
// the interval (the paper excludes the delimiting wake/fail/crash events).
func (iv interval) contains(i int) bool { return i > iv.start && i < iv.end }

// workingIntervals computes the working intervals of direction d in a
// well-formed sequence.
func workingIntervals(beta ioa.Schedule, d ioa.Dir) []interval {
	var out []interval
	open := -1
	for i, a := range beta {
		if a.Dir != d {
			continue
		}
		switch a.Kind {
		case ioa.KindWake:
			open = i
		case ioa.KindFail, ioa.KindCrash:
			if open >= 0 {
				out = append(out, interval{start: open, end: i})
				open = -1
			}
		}
	}
	if open >= 0 {
		out = append(out, interval{start: open, end: len(beta), unbounded: true})
	}
	return out
}

// unboundedInterval returns the unique unbounded working interval of
// direction d, if any. There is at most one (the intervals are disjoint).
func unboundedInterval(beta ioa.Schedule, d ioa.Dir) (interval, bool) {
	ivs := workingIntervals(beta, d)
	if n := len(ivs); n > 0 && ivs[n-1].unbounded {
		return ivs[n-1], true
	}
	return interval{}, false
}

// inWorkingInterval reports whether event index i (0-based) lies inside
// some working interval of direction d.
func inWorkingInterval(beta ioa.Schedule, d ioa.Dir, i int) bool {
	for _, iv := range workingIntervals(beta, d) {
		if iv.contains(i) {
			return true
		}
	}
	return false
}
