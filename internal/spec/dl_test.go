package spec

import (
	"testing"

	"repro/internal/ioa"
)

var (
	tr = ioa.TR
	rt = ioa.RT
)

// opened returns the canonical prefix: both directions woken.
func opened() ioa.Schedule {
	return ioa.Schedule{ioa.Wake(tr), ioa.Wake(rt)}
}

func sendM(m string) ioa.Action { return ioa.SendMsg(tr, ioa.Message(m)) }
func recvM(m string) ioa.Action { return ioa.ReceiveMsg(tr, ioa.Message(m)) }

func TestWellFormedDLBothDirections(t *testing.T) {
	good := append(opened(), ioa.Fail(tr), ioa.Wake(tr), ioa.Fail(rt), ioa.Wake(rt))
	if v := WellFormedDL(good, tr); v != nil {
		t.Errorf("well-formed schedule flagged: %v", v)
	}
	badT := ioa.Schedule{ioa.Wake(tr), ioa.Wake(tr)}
	if v := WellFormedDL(badT, tr); v == nil {
		t.Error("double transmitter wake not flagged")
	}
	badR := ioa.Schedule{ioa.Wake(tr), ioa.Wake(rt), ioa.Wake(rt)}
	if v := WellFormedDL(badR, tr); v == nil {
		t.Error("double receiver wake not flagged")
	}
}

func TestDL1Consistency(t *testing.T) {
	both := opened()
	if v := DL1(both, tr); v != nil {
		t.Errorf("both unbounded flagged: %v", v)
	}
	neither := append(opened(), ioa.Fail(tr), ioa.Fail(rt))
	if v := DL1(neither, tr); v != nil {
		t.Errorf("neither unbounded flagged: %v", v)
	}
	onlyT := append(opened(), ioa.Fail(rt))
	if v := DL1(onlyT, tr); v == nil {
		t.Error("inconsistent status not flagged")
	}
	onlyR := append(opened(), ioa.Crash(tr))
	if v := DL1(onlyR, tr); v == nil {
		t.Error("inconsistent status after crash not flagged")
	}
}

func TestDL2SendInWorkingInterval(t *testing.T) {
	good := append(opened(), sendM("a"))
	if v := DL2(good, tr); v != nil {
		t.Errorf("legal send flagged: %v", v)
	}
	early := ioa.Schedule{sendM("a"), ioa.Wake(tr)}
	if v := DL2(early, tr); v == nil {
		t.Error("send before wake not flagged")
	}
	afterCrash := append(opened(), ioa.Crash(tr), sendM("a"))
	if v := DL2(afterCrash, tr); v == nil {
		t.Error("send after crash (before re-wake) not flagged")
	}
}

func TestDL3DL4Uniqueness(t *testing.T) {
	dupSend := append(opened(), sendM("a"), sendM("a"))
	if v := DL3(dupSend, tr); v == nil {
		t.Error("duplicate send_msg not flagged")
	}
	dupRecv := append(opened(), sendM("a"), recvM("a"), recvM("a"))
	if v := DL4(dupRecv, tr); v == nil {
		t.Error("duplicate receive_msg not flagged")
	}
	if v := DL3(append(opened(), sendM("a"), sendM("b")), tr); v != nil {
		t.Errorf("distinct sends flagged: %v", v)
	}
}

func TestDL5ReceiveWithoutSend(t *testing.T) {
	bad := append(opened(), recvM("ghost"))
	if v := DL5(bad, tr); v == nil {
		t.Error("spurious delivery not flagged")
	}
	ordered := append(opened(), sendM("a"), recvM("a"))
	if v := DL5(ordered, tr); v != nil {
		t.Errorf("legal delivery flagged: %v", v)
	}
	reversed := append(opened(), recvM("a"), sendM("a"))
	if v := DL5(reversed, tr); v == nil {
		t.Error("delivery before send not flagged")
	}
}

func TestDL6FIFO(t *testing.T) {
	inOrder := append(opened(), sendM("a"), sendM("b"), recvM("a"), recvM("b"))
	if v := DL6(inOrder, tr); v != nil {
		t.Errorf("in-order delivery flagged: %v", v)
	}
	outOfOrder := append(opened(), sendM("a"), sendM("b"), recvM("b"), recvM("a"))
	if v := DL6(outOfOrder, tr); v == nil {
		t.Error("out-of-order delivery not flagged")
	}
	gap := append(opened(), sendM("a"), sendM("b"), sendM("c"), recvM("a"), recvM("c"))
	if v := DL6(gap, tr); v != nil {
		t.Errorf("gappy but ordered delivery flagged by DL6: %v", v)
	}
}

func TestDL7NoGaps(t *testing.T) {
	gap := append(opened(), sendM("a"), sendM("b"), recvM("b"))
	if v := DL7(gap, tr); v == nil {
		t.Error("gap within one working interval not flagged")
	}
	// A gap across working intervals is permitted: the loss is excused by
	// the intervening failure.
	acrossIntervals := append(opened(),
		sendM("a"), ioa.Fail(tr), ioa.Wake(tr), sendM("b"), recvM("b"))
	if v := DL7(acrossIntervals, tr); v != nil {
		t.Errorf("cross-interval gap flagged: %v", v)
	}
	complete := append(opened(), sendM("a"), sendM("b"), recvM("a"), recvM("b"))
	if v := DL7(complete, tr); v != nil {
		t.Errorf("complete delivery flagged: %v", v)
	}
}

func TestDL8Liveness(t *testing.T) {
	lost := append(opened(), sendM("a"))
	if v := DL8(lost, tr); v == nil {
		t.Error("undelivered message in unbounded interval not flagged")
	}
	delivered := append(opened(), sendM("a"), recvM("a"))
	if v := DL8(delivered, tr); v != nil {
		t.Errorf("delivered message flagged: %v", v)
	}
	// A send in a bounded working interval (ended by fail or crash) incurs
	// no delivery obligation.
	excusedByFail := append(opened(), sendM("a"), ioa.Fail(tr), ioa.Wake(tr))
	if v := DL8(excusedByFail, tr); v != nil {
		t.Errorf("fail-bounded send flagged: %v", v)
	}
	excusedByCrash := append(opened(), sendM("a"), ioa.Crash(tr), ioa.Wake(tr))
	if v := DL8(excusedByCrash, tr); v != nil {
		t.Errorf("crash-bounded send flagged: %v", v)
	}
	// No unbounded interval at all: vacuous.
	closed := append(opened(), sendM("a"), ioa.Fail(tr))
	if v := DL8(closed, tr); v != nil {
		t.Errorf("no unbounded interval but flagged: %v", v)
	}
}

func TestCheckDLAndWDLConditionalShape(t *testing.T) {
	// Environment hypothesis broken (DL3): vacuous for both modules.
	dup := append(opened(), sendM("a"), sendM("a"), recvM("a"), recvM("a"))
	if v := CheckDL(dup, tr); !v.Vacuous {
		t.Errorf("expected vacuous DL verdict, got %s", v)
	}
	if v := CheckWDL(dup, tr); !v.Vacuous {
		t.Errorf("expected vacuous WDL verdict, got %s", v)
	}

	// DL6 violation matters for DL but not WDL.
	reorder := append(opened(), sendM("a"), sendM("b"), recvM("b"), recvM("a"))
	if v := CheckDL(reorder, tr); v.OK() {
		t.Error("reordered delivery must violate DL")
	}
	if v := CheckWDL(reorder, tr); !v.OK() {
		t.Errorf("reordered delivery is WDL-legal, got %s", v)
	}

	// DL7 violation matters for DL but not WDL... except the lost message
	// also violates DL8 here; excuse it with a fail.
	gapThenDeliver := append(opened(),
		sendM("a"), sendM("b"), recvM("b"), ioa.Fail(tr), ioa.Fail(rt))
	if v := CheckDL(gapThenDeliver, tr); v.OK() {
		t.Error("gap must violate DL (DL7)")
	}
	if v := CheckWDL(gapThenDeliver, tr); !v.OK() {
		t.Errorf("gap is WDL-legal when excused, got %s", v)
	}

	// Clean run passes both.
	good := append(opened(), sendM("a"), recvM("a"), sendM("b"), recvM("b"))
	if v := CheckDL(good, tr); !v.OK() || v.Vacuous {
		t.Errorf("good trace rejected by DL: %s", v)
	}
	if v := CheckWDL(good, tr); !v.OK() || v.Vacuous {
		t.Errorf("good trace rejected by WDL: %s", v)
	}
}

func TestWDLWeakerThanDL(t *testing.T) {
	// Every trace accepted by DL must be accepted by WDL
	// (scheds(DL) ⊆ scheds(WDL)).
	traces := []ioa.Schedule{
		opened(),
		append(opened(), sendM("a"), recvM("a")),
		append(opened(), sendM("a"), sendM("b"), recvM("a"), recvM("b")),
		append(opened(), sendM("a"), ioa.Fail(tr), ioa.Fail(rt)),
		{sendM("x")}, // ill-formed: vacuous in both
	}
	for i, tr2 := range traces {
		if CheckDL(tr2, tr).OK() && !CheckWDL(tr2, tr).OK() {
			t.Errorf("trace %d: in scheds(DL) but not scheds(WDL)", i)
		}
	}
}

func TestCheckValid(t *testing.T) {
	good := append(opened(), sendM("a"), recvM("a"))
	if v := CheckValid(good, tr); !v.OK() {
		t.Errorf("valid sequence rejected: %s", v)
	}
	withFail := append(opened(), ioa.Fail(tr))
	if v := CheckValid(withFail, tr); v.OK() {
		t.Error("sequence with fail must not be valid")
	}
	withCrash := append(opened(), ioa.Crash(rt))
	if v := CheckValid(withCrash, tr); v.OK() {
		t.Error("sequence with crash must not be valid")
	}
	if v := CheckValid(ioa.Schedule{}, tr); v.OK() {
		t.Error("sequence without wake must not be valid")
	}
	undelivered := append(opened(), sendM("a"))
	if v := CheckValid(undelivered, tr); v.OK() {
		t.Error("valid sequences satisfy DL8; undelivered send must fail")
	}
}

// TestLemma81 checks Lemma 8.1: in a valid sequence, every sent message is
// received.
func TestLemma81(t *testing.T) {
	valid := append(opened(), sendM("a"), recvM("a"), sendM("b"), recvM("b"))
	if v := CheckValid(valid, tr); !v.OK() {
		t.Fatalf("setup: %s", v)
	}
	sent := map[ioa.Message]bool{}
	recv := map[ioa.Message]bool{}
	for _, a := range valid {
		switch a.Kind {
		case ioa.KindSendMsg:
			sent[a.Msg] = true
		case ioa.KindReceiveMsg:
			recv[a.Msg] = true
		}
	}
	for m := range sent {
		if !recv[m] {
			t.Errorf("message %q sent but not received in a valid sequence", string(m))
		}
	}
}

// TestLemma82 checks Lemma 8.2: appending send_msg(m) receive_msg(m) for a
// fresh m preserves validity.
func TestLemma82(t *testing.T) {
	valid := append(opened(), sendM("a"), recvM("a"))
	extended := append(valid.Clone(), sendM("fresh"), recvM("fresh"))
	if v := CheckValid(extended, tr); !v.OK() {
		t.Errorf("Lemma 8.2 extension rejected: %s", v)
	}
}
