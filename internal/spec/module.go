package spec

import "repro/internal/ioa"

// Module is a schedule module H = (sig(H), scheds(H)) of Section 2.3: an
// action signature together with a membership predicate on finite action
// sequences. The paper's problem specifications — PL, PL-FIFO, DL, WDL —
// are provided as constructors. An automaton A "solves" H when
// fairbehs(A) ⊆ behs(H) (Section 2.4); the sim package's SolvesBounded
// tests this on sampled fair behaviors.
type Module struct {
	// Name identifies the module, e.g. "WDL^{t,r}".
	Name string
	// Sig is the module's (external) action signature.
	Sig ioa.Signature
	// Contains decides membership of a finite sequence in scheds(H).
	Contains func(beta ioa.Schedule) Verdict
}

// plSignature is the physical layer signature of Section 3 for direction
// d, from the channel's point of view (send_pkt is an input, receive_pkt
// an output).
func plSignature(d ioa.Dir) ioa.Signature {
	return ioa.Signature{
		In: []ioa.Pattern{
			{Kind: ioa.KindSendPkt, Dir: d},
			{Kind: ioa.KindWake, Dir: d},
			{Kind: ioa.KindFail, Dir: d},
			{Kind: ioa.KindCrash, Dir: d},
		},
		Out: []ioa.Pattern{
			{Kind: ioa.KindReceivePkt, Dir: d},
		},
	}
}

// dlSignature is the data link layer signature of Section 4 for message
// direction d.
func dlSignature(d ioa.Dir) ioa.Signature {
	return ioa.Signature{
		In: []ioa.Pattern{
			{Kind: ioa.KindSendMsg, Dir: d},
			{Kind: ioa.KindWake, Dir: d},
			{Kind: ioa.KindFail, Dir: d},
			{Kind: ioa.KindCrash, Dir: d},
			{Kind: ioa.KindWake, Dir: d.Rev()},
			{Kind: ioa.KindFail, Dir: d.Rev()},
			{Kind: ioa.KindCrash, Dir: d.Rev()},
		},
		Out: []ioa.Pattern{
			{Kind: ioa.KindReceiveMsg, Dir: d},
		},
	}
}

// PLModule returns PL^{d}: the non-FIFO physical layer specification.
func PLModule(d ioa.Dir) Module {
	return Module{
		Name:     "PL^{" + d.String() + "}",
		Sig:      plSignature(d),
		Contains: func(beta ioa.Schedule) Verdict { return CheckPL(beta, d) },
	}
}

// PLFIFOModule returns PL-FIFO^{d}: the FIFO physical layer specification.
func PLFIFOModule(d ioa.Dir) Module {
	return Module{
		Name:     "PL-FIFO^{" + d.String() + "}",
		Sig:      plSignature(d),
		Contains: func(beta ioa.Schedule) Verdict { return CheckPLFIFO(beta, d) },
	}
}

// DLModule returns DL^{d}: the full data link layer specification.
func DLModule(d ioa.Dir) Module {
	return Module{
		Name:     "DL^{" + d.String() + "}",
		Sig:      dlSignature(d),
		Contains: func(beta ioa.Schedule) Verdict { return CheckDL(beta, d) },
	}
}

// WDLModule returns WDL^{d}: the weak data link layer specification that
// both impossibility theorems target.
func WDLModule(d ioa.Dir) Module {
	return Module{
		Name:     "WDL^{" + d.String() + "}",
		Sig:      dlSignature(d),
		Contains: func(beta ioa.Schedule) Verdict { return CheckWDL(beta, d) },
	}
}
