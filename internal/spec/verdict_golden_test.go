package spec

import (
	"testing"

	"repro/internal/ioa"
)

// TestFailureMessagesGolden pins the exact rendering of every checker's
// violation: each message must name the violated property and the 1-based
// index of the offending action (DL1 is the one property not attributable
// to a single event). The swarm harness and the explorer surface these
// strings verbatim, so they are part of the package's interface.
func TestFailureMessagesGolden(t *testing.T) {
	var (
		tr = ioa.TR
		rt = ioa.RT
		p1 = ioa.Packet{ID: 1, Header: "h"}
		p2 = ioa.Packet{ID: 2, Header: "h"}
	)
	wake := ioa.Wake(tr)
	wakeR := ioa.Wake(rt)
	cases := []struct {
		name  string
		check func(ioa.Schedule, ioa.Dir) *Violation
		beta  ioa.Schedule
		want  string
	}{
		{
			name:  "well-formed",
			check: WellFormedPL,
			beta:  ioa.Schedule{wake, wake},
			want:  `well-formed at event 2: wake^{t,r} without intervening fail^{t,r}`,
		},
		{
			name:  "PL1",
			check: PL1,
			beta:  ioa.Schedule{ioa.SendPkt(tr, p1)},
			want:  `PL1 at event 1: send_pkt^{t,r}(#1[h]) outside any working interval`,
		},
		{
			name:  "PL2",
			check: PL2,
			beta:  ioa.Schedule{wake, ioa.SendPkt(tr, p1), ioa.SendPkt(tr, p1)},
			want:  `PL2 at event 3: packet #1[h] already sent at event 2`,
		},
		{
			name:  "PL3",
			check: PL3,
			beta:  ioa.Schedule{wake, ioa.SendPkt(tr, p1), ioa.ReceivePkt(tr, p1), ioa.ReceivePkt(tr, p1)},
			want:  `PL3 at event 4: packet #1[h] already received at event 3`,
		},
		{
			name:  "PL4",
			check: PL4,
			beta:  ioa.Schedule{wake, ioa.ReceivePkt(tr, p1)},
			want:  `PL4 at event 2: packet #1[h] received but never sent`,
		},
		{
			name:  "PL5",
			check: PL5,
			beta: ioa.Schedule{wake, ioa.SendPkt(tr, p1), ioa.SendPkt(tr, p2),
				ioa.ReceivePkt(tr, p2), ioa.ReceivePkt(tr, p1)},
			want: `PL5(FIFO) at event 5: packet #1[h] (send #1) delivered after a later-sent packet (send #2)`,
		},
		{
			name:  "DL1",
			check: DL1,
			beta:  ioa.Schedule{wake},
			want:  `DL1: unbounded transmitter interval=true but unbounded receiver interval=false`,
		},
		{
			name:  "DL2",
			check: DL2,
			beta:  ioa.Schedule{ioa.SendMsg(tr, "m1")},
			want:  `DL2 at event 1: send_msg^{t,r}("m1") outside any transmitter working interval`,
		},
		{
			name:  "DL3",
			check: DL3,
			beta:  ioa.Schedule{wake, wakeR, ioa.SendMsg(tr, "m1"), ioa.SendMsg(tr, "m1")},
			want:  `DL3 at event 4: message "m1" already sent at event 3`,
		},
		{
			name:  "DL4",
			check: DL4,
			beta: ioa.Schedule{wake, wakeR, ioa.SendMsg(tr, "m1"),
				ioa.ReceiveMsg(tr, "m1"), ioa.ReceiveMsg(tr, "m1")},
			want: `DL4 at event 5: message "m1" already received at event 4`,
		},
		{
			name:  "DL5",
			check: DL5,
			beta:  ioa.Schedule{wake, wakeR, ioa.ReceiveMsg(tr, "m1")},
			want:  `DL5 at event 3: message "m1" received but never sent`,
		},
		{
			name:  "DL6",
			check: DL6,
			beta: ioa.Schedule{wake, wakeR, ioa.SendMsg(tr, "m1"), ioa.SendMsg(tr, "m2"),
				ioa.ReceiveMsg(tr, "m2"), ioa.ReceiveMsg(tr, "m1")},
			want: `DL6(FIFO) at event 6: message "m1" (send #1) delivered after a later-sent message (send #2)`,
		},
		{
			name:  "DL7",
			check: DL7,
			beta: ioa.Schedule{wake, wakeR, ioa.SendMsg(tr, "m1"), ioa.SendMsg(tr, "m2"),
				ioa.ReceiveMsg(tr, "m2")},
			want: `DL7(no-gaps) at event 3: message "m1" lost but later message "m2" from the same working interval delivered`,
		},
		{
			name:  "DL8",
			check: DL8,
			beta:  ioa.Schedule{wake, wakeR, ioa.SendMsg(tr, "m1")},
			want:  `DL8(liveness) at event 3: message "m1" sent in the unbounded transmitter working interval but never received`,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			v := tc.check(tc.beta, tr)
			if v == nil {
				t.Fatalf("schedule does not violate %s:\n%s", tc.name, tc.beta)
			}
			if got := v.String(); got != tc.want {
				t.Fatalf("violation message drifted:\n got: %s\nwant: %s", got, tc.want)
			}
			if tc.name != "DL1" && v.Index == 0 {
				t.Fatalf("%s violation carries no offending action index", tc.name)
			}
		})
	}
}
