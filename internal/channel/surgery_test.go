package channel

import (
	"strings"
	"testing"

	"repro/internal/ioa"
)

func mustStep(t *testing.T, c *Channel, st ioa.State, a ioa.Action) ioa.State {
	t.Helper()
	next, err := c.Step(st, a)
	if err != nil {
		t.Fatalf("step %s: %v", a, err)
	}
	return next
}

func pkt(id uint64, hdr, payload string) ioa.Packet {
	return ioa.Packet{ID: id, Header: ioa.Header(hdr), Payload: ioa.Message(payload)}
}

// TestCorruptReplacesPendingInPlace: the mutated packet sits at the
// original's queue position, the original is gone, and the other
// entries are untouched.
func TestCorruptReplacesPendingInPlace(t *testing.T) {
	c := NewPermissiveFIFO(ioa.TR)
	st := c.Start()
	for i := uint64(1); i <= 3; i++ {
		st = mustStep(t, c, st, ioa.SendPkt(ioa.TR, pkt(i, "h", "m")))
	}
	next, mutated, err := c.Corrupt(st, 1, func(p ioa.Packet) ioa.Packet {
		p.Payload = "garbled"
		return p
	})
	if err != nil {
		t.Fatal(err)
	}
	if mutated != pkt(2, "h", "garbled") {
		t.Fatalf("mutated = %s", mutated)
	}
	got := next.(State).InTransit()
	want := []ioa.Packet{pkt(1, "h", "m"), pkt(2, "h", "garbled"), pkt(3, "h", "m")}
	if len(got) != len(want) {
		t.Fatalf("in transit: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("in transit[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	// The original state is untouched (Step/surgeries are copy-on-write).
	if orig := st.(State).InTransit()[1]; orig != pkt(2, "h", "m") {
		t.Fatalf("original state mutated: %s", orig)
	}
	// Out-of-range index is an error.
	if _, _, err := c.Corrupt(st, 7, func(p ioa.Packet) ioa.Packet { return p }); err == nil {
		t.Fatal("corrupt of missing index succeeded")
	}
}

// TestCompactPreservesResidual: compaction drops the dead prefix but
// leaves the forward-relevant content — the Residual fingerprint and
// the deliverable set — exactly as it was, for both disciplines.
func TestCompactPreservesResidual(t *testing.T) {
	for _, fifo := range []bool{false, true} {
		var c *Channel
		if fifo {
			c = NewPermissiveFIFO(ioa.TR)
		} else {
			c = NewPermissive(ioa.TR)
		}
		st := c.Start()
		for i := uint64(1); i <= 6; i++ {
			st = mustStep(t, c, st, ioa.SendPkt(ioa.TR, pkt(i, "h", "m")))
		}
		// Deliver #3 (FIFO loses #1-#2), lose #4 by surgery.
		st = mustStep(t, c, st, ioa.ReceivePkt(ioa.TR, pkt(3, "h", "m")))
		lost, err := c.MarkLost(st, pkt(4, "h", "m"))
		if err != nil {
			t.Fatal(err)
		}
		st = lost

		before, err := c.Residual(st)
		if err != nil {
			t.Fatal(err)
		}
		compacted, err := c.Compact(st)
		if err != nil {
			t.Fatal(err)
		}
		after, err := c.Residual(compacted)
		if err != nil {
			t.Fatal(err)
		}
		if before != after {
			t.Fatalf("fifo=%v: residual changed by compaction: %s != %s", fifo, before, after)
		}
		cs := compacted.(State)
		if n := len(cs.entries); n != len(cs.InTransit()) {
			t.Fatalf("fifo=%v: compacted state still has %d entries for %d pending", fifo, n, len(cs.InTransit()))
		}
		// Delivery still works identically after compaction. The FIFO
		// channel had #5 and #6 pending (delivering #3 lost #1 and #2);
		// the non-FIFO one still had #1, #2, #5 and #6.
		next := mustStep(t, c, compacted, ioa.ReceivePkt(ioa.TR, pkt(5, "h", "m")))
		want := 3
		if fifo {
			want = 1
		}
		if got := len(next.(State).InTransit()); got != want {
			t.Fatalf("fifo=%v: after delivering #5, %d in transit, want %d", fifo, got, want)
		}
	}
}

// TestCompactDropsDeadEntries: after a FIFO delivery that skipped (and
// so lost) everything before it, compaction empties the state entirely.
func TestCompactDropsDeadEntries(t *testing.T) {
	c := NewPermissiveFIFO(ioa.TR)
	st := c.Start()
	st = mustStep(t, c, st, ioa.SendPkt(ioa.TR, pkt(1, "h", "m")))
	st = mustStep(t, c, st, ioa.SendPkt(ioa.TR, pkt(2, "h", "m")))
	st = mustStep(t, c, st, ioa.ReceivePkt(ioa.TR, pkt(2, "h", "m")))
	// #1 was skipped and is lost; nothing is deliverable.
	compacted, err := c.Compact(st)
	if err != nil {
		t.Fatal(err)
	}
	if cs := compacted.(State); len(cs.entries) != 0 || !cs.Clean() {
		t.Fatalf("compacted state not empty: %s", cs.Fingerprint())
	}
	if !strings.Contains(compacted.(State).Fingerprint(), "hwm=-1") {
		t.Fatalf("hwm not reset: %s", compacted.(State).Fingerprint())
	}
}
