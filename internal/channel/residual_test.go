package channel

import (
	"testing"

	"repro/internal/ioa"
)

// TestResidualForwardEquivalence: states that differ only in already-
// consumed history (delivered/lost packets, FIFO-skipped entries) have
// equal residuals, while states differing in deliverable content do not.
func TestResidualForwardEquivalence(t *testing.T) {
	c := NewPermissiveFIFO(ioa.TR)
	resOf := func(st ioa.State) string {
		t.Helper()
		r, err := c.Residual(st)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Path A: send p1, deliver p1, send p2.
	a := drive(t, c,
		ioa.SendPkt(ioa.TR, mkPkt(1, "h")),
		ioa.ReceivePkt(ioa.TR, mkPkt(1, "h")),
		ioa.SendPkt(ioa.TR, mkPkt(2, "h")),
	)
	// Path B: send p1, send p2, deliver p2 — p1 becomes FIFO-blocked
	// (lost), leaving nothing deliverable. NOT equivalent to A.
	b := drive(t, c,
		ioa.SendPkt(ioa.TR, mkPkt(1, "h")),
		ioa.SendPkt(ioa.TR, mkPkt(2, "h")),
		ioa.ReceivePkt(ioa.TR, mkPkt(2, "h")),
	)
	// Path C: like A but the first packet had a different ID and payload
	// history; the residual only sees the deliverable packet.
	cState := drive(t, c,
		ioa.SendPkt(ioa.TR, mkPkt(9, "h")),
		ioa.ReceivePkt(ioa.TR, mkPkt(9, "h")),
		ioa.SendPkt(ioa.TR, mkPkt(2, "h")),
	)
	if resOf(a) == resOf(b) {
		t.Error("states with different deliverable content share a residual")
	}
	if resOf(a) != resOf(cState) {
		t.Errorf("forward-equivalent states have different residuals:\n%s\n%s", resOf(a), resOf(cState))
	}
	if a.Fingerprint() == cState.Fingerprint() {
		t.Error("exact fingerprints should still differ (different history)")
	}
	// Residual ignores IDs but keeps payloads: same header, different
	// payload must differ.
	d1 := drive(t, c, ioa.SendPkt(ioa.TR, ioa.Packet{ID: 1, Header: "h", Payload: "x"}))
	d2 := drive(t, c, ioa.SendPkt(ioa.TR, ioa.Packet{ID: 1, Header: "h", Payload: "y"}))
	if resOf(d1) == resOf(d2) {
		t.Error("residual must distinguish payloads (the monitor sees them on delivery)")
	}
	if _, err := c.Residual(struct{ ioa.State }{}); err == nil {
		t.Error("expected error for a foreign state type")
	}
}

func TestMaxLifetimeInteractsWithFIFO(t *testing.T) {
	c := NewPermissiveFIFO(ioa.TR, WithMaxLifetime(1))
	st := drive(t, c,
		ioa.SendPkt(ioa.TR, mkPkt(1, "a")),
		ioa.SendPkt(ioa.TR, mkPkt(2, "b")),
	)
	// Lifetime 1: packet 1 expired when packet 2 was sent.
	got := st.(State).InTransit()
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("in transit = %v, want only packet 2", got)
	}
	enabled := c.Enabled(st)
	if len(enabled) != 1 || enabled[0].Pkt.ID != 2 {
		t.Fatalf("enabled = %v", enabled)
	}
}
