package channel_test

import (
	"testing"

	"repro/internal/swarm"
)

// FuzzChannelInvariants drives both channel kinds with arbitrary action
// sequences (interpreting fuzz bytes as send/deliver/lose/status choices)
// and asserts the structural invariants after every accepted step:
// sent = pending + delivered + lost, delivered packets were sent, the
// produced schedule satisfies the PL (resp. PL-FIFO) specification, and
// Step never panics or corrupts state.
//
// The byte encoding and the assertions live in the swarm package
// (CheckChannelOps), shared with the regression corpus: an input this
// fuzzer crashes on can be saved verbatim as a KindChannel corpus entry
// and is then re-checked forever by the swarm package's TestCorpusReplay.
func FuzzChannelInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, true, uint8(0))
	f.Add([]byte{0, 0, 0, 1, 1, 1}, false, uint8(2))
	f.Add([]byte{0, 4, 0, 4, 1, 5}, true, uint8(1))
	f.Fuzz(func(t *testing.T, ops []byte, fifo bool, lifetime uint8) {
		if err := swarm.CheckChannelOps(ops, fifo, lifetime); err != nil {
			t.Fatal(err)
		}
	})
}
