package channel

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/spec"
)

// FuzzChannelInvariants drives both channel kinds with arbitrary action
// sequences (interpreting fuzz bytes as send/deliver/lose/status choices)
// and asserts the structural invariants after every accepted step:
// sent = pending + delivered + lost, delivered packets were sent, the
// produced schedule satisfies the PL (resp. PL-FIFO) specification, and
// Step never panics or corrupts state.
func FuzzChannelInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, true, uint8(0))
	f.Add([]byte{0, 0, 0, 1, 1, 1}, false, uint8(2))
	f.Add([]byte{0, 4, 0, 4, 1, 5}, true, uint8(1))
	f.Fuzz(func(t *testing.T, ops []byte, fifo bool, lifetime uint8) {
		opts := []Option{WithLoss()}
		if lifetime%4 > 0 {
			opts = append(opts, WithMaxLifetime(int(lifetime%4)))
		}
		var c *Channel
		if fifo {
			c = NewPermissiveFIFO(ioa.TR, opts...)
		} else {
			c = NewPermissive(ioa.TR, opts...)
		}
		st := c.Start()
		var sched ioa.Schedule
		nextID := uint64(1)
		woke := false
		for _, op := range ops {
			var a ioa.Action
			switch op % 6 {
			case 0: // send a fresh packet (only once awake, for PL1)
				if !woke {
					continue
				}
				a = ioa.SendPkt(ioa.TR, ioa.Packet{ID: nextID, Header: "h", Payload: "m"})
			case 1: // deliver: pick the first enabled receive
				var ok bool
				a, ok = firstKind(c, st, ioa.KindReceivePkt)
				if !ok {
					continue
				}
			case 2: // lose: pick the first enabled lose action
				var ok bool
				a, ok = firstKind(c, st, ioa.KindInternal)
				if !ok {
					continue
				}
			case 3:
				if woke {
					continue // keep well-formedness: no double wake
				}
				a = ioa.Wake(ioa.TR)
			case 4:
				if !woke {
					continue
				}
				a = ioa.Fail(ioa.TR)
			default:
				a = ioa.Crash(ioa.TR)
			}
			next, err := c.Step(st, a)
			if err != nil {
				t.Fatalf("Step(%s) on enabled/derived action: %v", a, err)
			}
			st = next
			sched = append(sched, a)
			switch a.Kind {
			case ioa.KindSendPkt:
				nextID++
			case ioa.KindWake:
				woke = true
			case ioa.KindFail, ioa.KindCrash:
				woke = false
			}

			cs := st.(State)
			if got := cs.SentCount(); got != int(nextID-1) {
				t.Fatalf("SentCount = %d, want %d", got, nextID-1)
			}
			pending := len(cs.InTransit())
			if cs.DeliveredCount()+pending > cs.SentCount() {
				t.Fatalf("accounting broken: delivered %d + pending %d > sent %d",
					cs.DeliveredCount(), pending, cs.SentCount())
			}
			if _, err := c.Residual(st); err != nil {
				t.Fatalf("Residual: %v", err)
			}
		}
		// The accepted schedule must satisfy the channel's specification.
		if fifo {
			if v := spec.CheckPLFIFO(sched, ioa.TR); !v.OK() {
				t.Fatalf("PL-FIFO violated by channel-accepted schedule: %s\n%s", v, sched)
			}
		} else {
			if v := spec.CheckPL(sched, ioa.TR); !v.OK() {
				t.Fatalf("PL violated by channel-accepted schedule: %s\n%s", v, sched)
			}
		}
	})
}

func firstKind(c *Channel, st ioa.State, k ioa.Kind) (ioa.Action, bool) {
	for _, a := range c.Enabled(st) {
		if a.Kind == k {
			return a, true
		}
	}
	return ioa.Action{}, false
}
