package channel

import (
	"errors"
	"fmt"
)

// DeliverySet is the paper's explicit delivery nondeterminism (Section
// 6.1): an infinite set S of ordered pairs (i, j) of positive integers
// such that for each j there is a unique (i, j) ∈ S, and for each i at
// most one (i, j) ∈ S. The pair (i, j) correlates the j-th receive_pkt
// event with the i-th send_pkt event.
//
// The infinite set is represented finitely as an explicit prefix plus an
// eventually-linear tail: Source(j) = prefix[j-1] for j ≤ len(prefix) and
// Source(j) = j + shift for j > len(prefix). Every delivery set reachable
// from the identity set by finitely many Del operations has this shape,
// which is all the constructions in the paper require.
//
// DeliverySet is a value type; operations return new sets.
type DeliverySet struct {
	prefix []int
	shift  int
}

// ErrNotDeliverySet reports a representation that violates the delivery
// set conditions.
var ErrNotDeliverySet = errors.New("channel: not a delivery set")

// IdentityDeliverySet returns S = {(k, k) : k ≥ 1}: the FIFO, lossless
// delivery set.
func IdentityDeliverySet() DeliverySet { return DeliverySet{} }

// NewDeliverySet builds a delivery set from an explicit prefix (sources
// for j = 1..len(prefix)) and a tail shift (Source(j) = j + shift beyond
// the prefix). It validates the delivery-set conditions.
func NewDeliverySet(prefix []int, shift int) (DeliverySet, error) {
	s := DeliverySet{prefix: append([]int(nil), prefix...), shift: shift}
	if err := s.validate(); err != nil {
		return DeliverySet{}, err
	}
	return s, nil
}

func (s DeliverySet) validate() error {
	seen := make(map[int]bool, len(s.prefix))
	for j, i := range s.prefix {
		if i < 1 {
			return fmt.Errorf("%w: source %d for j=%d is not positive", ErrNotDeliverySet, i, j+1)
		}
		if seen[i] {
			return fmt.Errorf("%w: source %d used twice", ErrNotDeliverySet, i)
		}
		seen[i] = true
	}
	// The first tail element is i = len(prefix)+1+shift; it must be
	// positive, and no tail element may collide with a prefix source.
	if len(s.prefix)+1+s.shift < 1 {
		return fmt.Errorf("%w: tail source %d is not positive", ErrNotDeliverySet, len(s.prefix)+1+s.shift)
	}
	for _, i := range s.prefix {
		if i-s.shift > len(s.prefix) {
			return fmt.Errorf("%w: prefix source %d collides with tail", ErrNotDeliverySet, i)
		}
	}
	return nil
}

// Source returns the i such that (i, j) ∈ S: the send index delivered by
// the j-th receive event. j must be ≥ 1.
func (s DeliverySet) Source(j int) int {
	if j <= len(s.prefix) {
		return s.prefix[j-1]
	}
	return j + s.shift
}

// Contains reports whether (i, j) ∈ S.
func (s DeliverySet) Contains(i, j int) bool {
	return j >= 1 && s.Source(j) == i
}

// materialize extends the explicit prefix to cover j = 1..n.
func (s DeliverySet) materialize(n int) DeliverySet {
	prefix := append([]int(nil), s.prefix...)
	for j := len(prefix) + 1; j <= n; j++ {
		prefix = append(prefix, j+s.shift)
	}
	return DeliverySet{prefix: prefix, shift: s.shift}
}

// Del implements the paper's del(S, (i, j)) surgery (Section 6.3) keyed by
// j: it removes the pair (Source(j), j) and renumbers later deliveries,
// so that Del(j).Source(j') = Source(j') for j' < j and Source(j'+1) for
// j' ≥ j. The result is again a delivery set.
func (s DeliverySet) Del(j int) DeliverySet {
	m := s.materialize(j)
	prefix := append([]int(nil), m.prefix[:j-1]...)
	prefix = append(prefix, m.prefix[j:]...)
	return DeliverySet{prefix: prefix, shift: m.shift + 1}
}

// Monotone reports whether S is monotone (Section 6.2): no pairs (i1, j1)
// and (i2, j2) with i1 < i2 and j1 ≥ j2 — equivalently, Source is strictly
// increasing in j. The eventually-linear representation makes this
// decidable by checking the prefix and the prefix/tail boundary.
func (s DeliverySet) Monotone() bool {
	for j := 2; j <= len(s.prefix); j++ {
		if s.Source(j) <= s.Source(j-1) {
			return false
		}
	}
	if len(s.prefix) > 0 && s.Source(len(s.prefix)+1) <= s.Source(len(s.prefix)) {
		return false
	}
	return true
}

// Clean reports whether a channel state with counters (c1, c2) and this
// delivery set is clean (Section 6.3): (i) S contains no pair (i, j) with
// i ≤ c1 and j > c2, and (ii) S contains (c1+k, c2+k) for all k > 0 — the
// channel is empty and will henceforth act FIFO with no losses.
func (s DeliverySet) Clean(c1, c2 int) bool {
	// Both conditions together say Source(c2+k) = c1+k for all k > 0.
	for j := c2 + 1; j <= len(s.prefix); j++ {
		if s.Source(j) != c1+(j-c2) {
			return false
		}
	}
	if c2 >= len(s.prefix) {
		// All relevant j are in the tail: need j + shift = c1 + (j - c2).
		return s.shift == c1-c2
	}
	// j beyond the prefix: tail must continue the same line.
	return s.shift == c1-c2
}

// DeliveryOrder returns, for a run in which n packets are sent and the
// channel follows this delivery set greedily, the send indices delivered
// by receive events 1, 2, ...: all j such that Source(j) ≤ n, in order,
// stopping at the first j whose source has not been sent yet. It is used
// to cross-validate the explicit and lazy channel formulations.
func (s DeliverySet) DeliveryOrder(n int) []int {
	var out []int
	for j := 1; ; j++ {
		i := s.Source(j)
		if i > n {
			// Receive event j can never be enabled, and it blocks all later
			// events (counter2 advances one at a time). Tail sources grow
			// strictly with j, so this branch is always reached.
			return out
		}
		out = append(out, i)
	}
}
