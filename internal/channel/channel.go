// Package channel implements the paper's physical channels (Section 6):
// the very permissive non-FIFO channel C̄, the permissive FIFO channel Ĉ,
// and the delivery-set machinery (del surgery, clean states, waiting
// sequences) used by the impossibility constructions.
//
// The paper's channels resolve their nondeterminism by fixing an arbitrary
// delivery set S at the start. The executable channels here make the
// equivalent *lazy* choice: at each step, any in-transit packet permitted
// by the ordering discipline may be delivered next, and packets may be
// lost via internal lose actions or by the surgery methods that mirror
// Lemmas 6.3 and 6.6. The set of finite schedules is identical to the
// union over all delivery sets S of the paper's channel schedules; the
// DeliverySet type in this package implements the explicit formulation and
// the tests cross-validate the two.
package channel

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ioa"
)

// Packet delivery status inside a channel.
const (
	statusPending   uint8 = iota // sent, not yet delivered or lost
	statusDelivered              // receive_pkt has occurred
	statusLost                   // dropped; will never be delivered
)

// entry tracks one sent packet and its fate.
type entry struct {
	pkt    ioa.Packet
	status uint8
}

// State is a channel state: the send history with per-packet fates, plus
// the FIFO high-water mark (index of the most recently delivered packet,
// -1 when nothing has been delivered). It corresponds to the paper's
// (counter1, counter2, packet, S) with S resolved lazily.
type State struct {
	entries []entry
	hwm     int
}

var (
	_ ioa.State               = State{}
	_ ioa.EquivState          = State{}
	_ ioa.AppendFingerprinter = State{}
)

// Fingerprint canonically encodes the state.
func (s State) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

// AppendFingerprint appends the Fingerprint encoding to dst without
// intermediate string allocations.
func (s State) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "ch{"...)
	for i, e := range s.entries {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = e.pkt.AppendText(dst) // fp:ignore exact-dedup baseline keeps raw IDs; AppendCanonFingerprint below is the symmetry-aware twin
		dst = append(dst, ':')
		dst = strconv.AppendUint(dst, uint64(e.status), 10)
	}
	dst = append(dst, " hwm="...)
	dst = strconv.AppendInt(dst, int64(s.hwm), 10)
	return append(dst, '}')
}

var _ ioa.CanonFingerprinter = State{}

// AppendCanonFingerprint appends the fingerprint with packet IDs and
// payload tokens replaced by canonical first-use indices. Entries are
// visited in send order, which depends only on the state's structure, so
// equal canonical fingerprints imply a bijective relabelling between the
// two channel histories.
func (s State) AppendCanonFingerprint(dst []byte, c *ioa.Canon) []byte {
	dst = append(dst, "ch{"...)
	for i, e := range s.entries {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = c.AppendPktID(dst, e.pkt.ID)
		dst = append(dst, '[')
		dst = append(dst, e.pkt.Header...)
		dst = append(dst, '|')
		dst = c.AppendMsg(dst, e.pkt.Payload)
		dst = append(dst, "]:"...)
		dst = strconv.AppendUint(dst, uint64(e.status), 10)
	}
	dst = append(dst, " hwm="...)
	dst = strconv.AppendInt(dst, int64(s.hwm), 10)
	return append(dst, '}')
}

// EquivFingerprint encodes the state up to the message-independence
// equivalence ≡: packet IDs and payload contents are erased, leaving the
// header sequence and fates. Two channel states with equal equivalence
// fingerprints hold ≡-equivalent packet sequences.
func (s State) EquivFingerprint() string {
	var b strings.Builder
	b.WriteString("ch{")
	for i, e := range s.entries {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "[%s]:%d", e.pkt.Header, e.status)
	}
	fmt.Fprintf(&b, " hwm=%d}", s.hwm)
	return b.String()
}

// InTransit returns the pending packets in send order: the packets p such
// that send_pkt(p) has occurred and receive_pkt(p) has not, and that have
// not been lost.
func (s State) InTransit() []ioa.Packet {
	var out []ioa.Packet
	for _, e := range s.entries {
		if e.status == statusPending {
			out = append(out, e.pkt)
		}
	}
	return out
}

// PendingCount returns len(InTransit()) without materialising the slice;
// the explorer's MaxInTransit pruning calls this per candidate send_pkt.
func (s State) PendingCount() int {
	n := 0
	for _, e := range s.entries {
		if e.status == statusPending {
			n++
		}
	}
	return n
}

// Clean reports whether the channel is empty in the paper's sense (Lemma
// 6.3): no pending packet can ever be delivered. For the executable
// channel that simply means no packet is pending.
func (s State) Clean() bool {
	for _, e := range s.entries {
		if e.status == statusPending {
			return false
		}
	}
	return true
}

// SentCount returns counter1: the number of send_pkt events so far.
func (s State) SentCount() int { return len(s.entries) }

// DeliveredCount returns counter2: the number of receive_pkt events so far.
func (s State) DeliveredCount() int {
	n := 0
	for _, e := range s.entries {
		if e.status == statusDelivered {
			n++
		}
	}
	return n
}

// clone returns a deep copy; Step never mutates its argument.
func (s State) clone() State {
	return State{entries: append([]entry(nil), s.entries...), hwm: s.hwm}
}

// Fairness classes of a channel.
const (
	// ClassDeliver contains all receive_pkt output actions; fairness for
	// this class yields the liveness property (PL6).
	ClassDeliver ioa.Class = "deliver"
	// ClassLose contains the internal lose actions of a lossy channel.
	// Schedulers typically exempt this class from fairness (a channel is
	// never obliged to lose packets).
	ClassLose ioa.Class = "lose"
)

// Channel is a permissive physical channel automaton for one direction.
// With fifo=false it is the paper's C̄^{d}; with fifo=true, Ĉ^{d}.
type Channel struct {
	dir      ioa.Dir
	fifo     bool
	lossy    bool
	lifetime int // 0: packets may stay in transit forever
	name     string
}

var _ ioa.Automaton = (*Channel)(nil)

// Option configures a Channel.
type Option func(*Channel)

// WithLoss enables internal lose actions, making packet loss available to
// schedulers (for randomized lossy-link experiments) in addition to the
// explicit surgery methods.
func WithLoss() Option {
	return func(c *Channel) { c.lossy = true }
}

// WithMaxLifetime bounds how long a packet may remain in transit, measured
// in subsequent send_pkt events on the same channel: when the (i+L)-th
// packet is sent, the i-th is lost if still pending. This models the
// paper's footnote 1 — "a known bound on the time a message may remain on
// the link before being either lost or delivered" — with sends as the
// clock, and is what makes bounded-header protocols possible over
// reordering channels (experiment E12).
func WithMaxLifetime(l int) Option {
	return func(c *Channel) { c.lifetime = l }
}

// NewPermissive returns the non-FIFO permissive channel C̄^{d} (Section
// 6.1): any in-transit packet may be delivered next.
func NewPermissive(d ioa.Dir, opts ...Option) *Channel {
	c := &Channel{dir: d, name: fmt.Sprintf("C̄^{%s}", d)}
	for _, o := range opts {
		o(c)
	}
	return c
}

// NewPermissiveFIFO returns the FIFO permissive channel Ĉ^{d} (Section
// 6.2): packets are delivered in send order, with gaps (skipped packets
// are lost).
func NewPermissiveFIFO(d ioa.Dir, opts ...Option) *Channel {
	c := &Channel{dir: d, fifo: true, name: fmt.Sprintf("Ĉ^{%s}", d)}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Name returns the channel's name, e.g. "Ĉ^{t,r}".
func (c *Channel) Name() string { return c.name }

// Dir returns the channel's direction.
func (c *Channel) Dir() ioa.Dir { return c.dir }

// FIFO reports whether the channel enforces FIFO delivery.
func (c *Channel) FIFO() bool { return c.fifo }

// loseName is the name of the channel's internal lose action family.
func (c *Channel) loseName() string { return "lose^{" + c.dir.String() + "}" }

// LoseActionName exposes the lose action family name so explorers can
// map a lose action (whose Dir field is unset) back to its channel.
func (c *Channel) LoseActionName() string { return c.loseName() }

// Signature implements the physical layer signature of Section 3:
// inputs send_pkt^{d}, wake^{d}, fail^{d}, crash^{d}; outputs
// receive_pkt^{d}; plus the internal lose family when lossy.
func (c *Channel) Signature() ioa.Signature {
	sig := ioa.Signature{
		In: []ioa.Pattern{
			{Kind: ioa.KindSendPkt, Dir: c.dir},
			{Kind: ioa.KindWake, Dir: c.dir},
			{Kind: ioa.KindFail, Dir: c.dir},
			{Kind: ioa.KindCrash, Dir: c.dir},
		},
		Out: []ioa.Pattern{
			{Kind: ioa.KindReceivePkt, Dir: c.dir},
		},
	}
	if c.lossy {
		sig.Int = []ioa.Pattern{{Kind: ioa.KindInternal, Name: c.loseName()}}
	}
	return sig
}

// Start returns the empty channel.
func (c *Channel) Start() ioa.State { return State{hwm: -1} }

// Lose returns the internal action that drops packet p in transit.
func (c *Channel) Lose(p ioa.Packet) ioa.Action {
	return ioa.Action{Kind: ioa.KindInternal, Name: c.loseName(), Pkt: p}
}

// deliverable reports whether entry index i may be delivered next.
func (c *Channel) deliverable(s State, i int) bool {
	if s.entries[i].status != statusPending {
		return false
	}
	if c.fifo && i <= s.hwm {
		return false
	}
	return true
}

// Step implements the transition relation. wake, fail and crash have no
// effect on the channel state (Section 6.1).
func (c *Channel) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(State)
	if !ok {
		return nil, fmt.Errorf("%w: want channel.State, got %T", ioa.ErrBadState, st)
	}
	if !c.Signature().Contains(a) {
		return nil, fmt.Errorf("%w: %s not an action of %s", ioa.ErrNotInSignature, a, c.name)
	}
	switch a.Kind {
	case ioa.KindSendPkt:
		next := s.clone()
		next.entries = append(next.entries, entry{pkt: a.Pkt, status: statusPending})
		if c.lifetime > 0 {
			// Maximum packet lifetime: packets older than `lifetime`
			// subsequent sends expire.
			for i := 0; i < len(next.entries)-c.lifetime; i++ {
				if next.entries[i].status == statusPending {
					next.entries[i].status = statusLost
				}
			}
		}
		return next, nil
	case ioa.KindWake, ioa.KindFail, ioa.KindCrash:
		return s, nil
	case ioa.KindReceivePkt:
		for i := range s.entries {
			if s.entries[i].pkt == a.Pkt && c.deliverable(s, i) {
				next := s.clone()
				next.entries[i].status = statusDelivered
				if c.fifo {
					// Packets skipped over are lost: FIFO order forbids
					// delivering them later (the delivery set is monotone).
					for j := s.hwm + 1; j < i; j++ {
						if next.entries[j].status == statusPending {
							next.entries[j].status = statusLost
						}
					}
					next.hwm = i
				}
				return next, nil
			}
		}
		return nil, fmt.Errorf("%w: %s (not in transit or FIFO-blocked)", ioa.ErrNotEnabled, a)
	case ioa.KindInternal:
		if a.Name != c.loseName() || !c.lossy {
			return nil, fmt.Errorf("%w: %s", ioa.ErrNotInSignature, a)
		}
		for i := range s.entries {
			if s.entries[i].pkt == a.Pkt && s.entries[i].status == statusPending {
				next := s.clone()
				next.entries[i].status = statusLost
				return next, nil
			}
		}
		return nil, fmt.Errorf("%w: %s (packet not pending)", ioa.ErrNotEnabled, a)
	default:
		return nil, fmt.Errorf("%w: %s", ioa.ErrNotInSignature, a)
	}
}

// Enabled lists one receive_pkt action per currently deliverable packet,
// plus lose actions for pending packets when the channel is lossy.
func (c *Channel) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(State)
	if !ok {
		return nil
	}
	var out []ioa.Action
	for i := range s.entries {
		if c.deliverable(s, i) {
			out = append(out, ioa.ReceivePkt(c.dir, s.entries[i].pkt))
		}
	}
	if c.lossy {
		for i := range s.entries {
			if s.entries[i].status == statusPending {
				out = append(out, c.Lose(s.entries[i].pkt))
			}
		}
	}
	return out
}

// ClassOf assigns receive_pkt actions to ClassDeliver and lose actions to
// ClassLose. The paper's channel partition puts all outputs in one class.
func (c *Channel) ClassOf(a ioa.Action) ioa.Class {
	if a.Kind == ioa.KindInternal {
		return ClassLose
	}
	return ClassDeliver
}

// Classes lists the channel's fairness classes.
func (c *Channel) Classes() []ioa.Class {
	if c.lossy {
		return []ioa.Class{ClassDeliver, ClassLose}
	}
	return []ioa.Class{ClassDeliver}
}

// Residual returns a fingerprint of the state's future-relevant content:
// the currently deliverable packets (header and payload; the analysis ID
// is elided), in delivery-eligibility order. Packets already delivered or
// lost, and FIFO-blocked pending packets, can never influence a future
// transition, so two states with equal residuals are forward-bisimilar up
// to packet relabelling. The bounded model checker deduplicates on
// residuals.
func (c *Channel) Residual(st ioa.State) (string, error) {
	b, err := c.AppendResidual(nil, st)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// AppendResidual appends the Residual fingerprint to dst without
// intermediate string allocations: the model checker's dedup loop builds
// its per-state key into a reused buffer through this path.
func (c *Channel) AppendResidual(dst []byte, st ioa.State) ([]byte, error) {
	s, ok := st.(State)
	if !ok {
		return nil, fmt.Errorf("%w: want channel.State, got %T", ioa.ErrBadState, st)
	}
	dst = append(dst, "res{"...)
	for i := range s.entries {
		if c.deliverable(s, i) {
			dst = append(dst, '[')
			dst = append(dst, s.entries[i].pkt.Header...)
			dst = append(dst, '|')
			dst = append(dst, s.entries[i].pkt.Payload...)
			dst = append(dst, ']')
		}
	}
	return append(dst, '}'), nil
}

// AppendResidualCanon appends the residual with payload tokens replaced by
// canonical first-use indices drawn from canon. Deliverable entries are
// visited in send order (a structural order), so the explorer's symmetry
// reduction can merge residuals that differ only by a payload renaming.
func (c *Channel) AppendResidualCanon(dst []byte, st ioa.State, canon *ioa.Canon) ([]byte, error) {
	s, ok := st.(State)
	if !ok {
		return nil, fmt.Errorf("%w: want channel.State, got %T", ioa.ErrBadState, st)
	}
	dst = append(dst, "res{"...)
	for i := range s.entries {
		if c.deliverable(s, i) {
			dst = append(dst, '[')
			dst = append(dst, s.entries[i].pkt.Header...)
			dst = append(dst, '|')
			dst = canon.AppendMsg(dst, s.entries[i].pkt.Payload)
			dst = append(dst, ']')
		}
	}
	return append(dst, '}'), nil
}

// IsLoseAction reports whether a is an internal lose action of a lossy
// channel; shared by the schedulers and explorers that exempt loss from
// fairness or gate it behind an opt-in.
func IsLoseAction(a ioa.Action) bool {
	return a.Kind == ioa.KindInternal && strings.HasPrefix(a.Name, "lose")
}

// MarkLost returns a copy of st with the given packets dropped. This is
// the executable counterpart of Lemma 6.6 (the channel can lose any
// packets that have not been delivered): for any schedule leaving the
// channel with Q waiting and any subsequence Q' of Q, the same schedule
// can leave the channel with exactly Q' waiting.
func (c *Channel) MarkLost(st ioa.State, pkts ...ioa.Packet) (ioa.State, error) {
	s, ok := st.(State)
	if !ok {
		return nil, fmt.Errorf("%w: want channel.State, got %T", ioa.ErrBadState, st)
	}
	next := s.clone()
	for _, p := range pkts {
		found := false
		for i := range next.entries {
			if next.entries[i].pkt == p && next.entries[i].status == statusPending {
				next.entries[i].status = statusLost
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("channel: packet %s is not pending in %s", p, c.name)
		}
	}
	return next, nil
}

// MakeClean returns a copy of st with every pending packet dropped: the
// executable counterpart of Lemma 6.3 (every schedule can leave the
// channel in a clean state).
func (c *Channel) MakeClean(st ioa.State) (ioa.State, error) {
	s, ok := st.(State)
	if !ok {
		return nil, fmt.Errorf("%w: want channel.State, got %T", ioa.ErrBadState, st)
	}
	next := s.clone()
	for i := range next.entries {
		if next.entries[i].status == statusPending {
			next.entries[i].status = statusLost
		}
	}
	return next, nil
}

// KeepOnly returns a copy of st in which exactly the packets in keep (a
// subsequence of the in-transit packets, in send order) remain pending and
// all other pending packets are dropped: Lemma 6.6 specialised to
// selecting the waiting sequence the adversary needs.
func (c *Channel) KeepOnly(st ioa.State, keep []ioa.Packet) (ioa.State, error) {
	s, ok := st.(State)
	if !ok {
		return nil, fmt.Errorf("%w: want channel.State, got %T", ioa.ErrBadState, st)
	}
	want := make(map[ioa.Packet]bool, len(keep))
	for _, p := range keep {
		want[p] = true
	}
	next := s.clone()
	kept := 0
	for i := range next.entries {
		if next.entries[i].status != statusPending {
			continue
		}
		if want[next.entries[i].pkt] {
			kept++
			continue
		}
		next.entries[i].status = statusLost
	}
	if kept != len(keep) {
		return nil, fmt.Errorf("channel: %d of %d packets to keep are not in transit in %s", len(keep)-kept, len(keep), c.name)
	}
	return next, nil
}

// Duplicate returns a copy of st in which the idx-th pending packet (in
// send order, 0-based among the pending packets) has been duplicated: a
// clone with the same header and payload but the given fresh analysis ID
// is inserted immediately after the original, pending. This is fault
// surgery for harnesses that model a duplicating medium — the paper's
// channels never duplicate, so states produced this way lie outside
// scheds(PL) (the clone's receive_pkt has no matching send_pkt) and must
// only be judged against the data-link-level specifications. Inserting
// adjacent to the original, rather than appending, keeps a FIFO channel's
// delivery order faithful to a link that duplicates frames in place;
// id must be a fresh PacketIDs label so (PL2)-style uniqueness of the
// in-transit multiset is preserved.
func (c *Channel) Duplicate(st ioa.State, idx int, id uint64) (ioa.State, ioa.Packet, error) {
	s, ok := st.(State)
	if !ok {
		return nil, ioa.Packet{}, fmt.Errorf("%w: want channel.State, got %T", ioa.ErrBadState, st)
	}
	pending := -1
	for i := range s.entries {
		if s.entries[i].status != statusPending {
			continue
		}
		pending++
		if pending != idx {
			continue
		}
		clone := s.entries[i].pkt
		clone.ID = id
		next := State{entries: make([]entry, 0, len(s.entries)+1), hwm: s.hwm}
		next.entries = append(next.entries, s.entries[:i+1]...)
		next.entries = append(next.entries, entry{pkt: clone, status: statusPending})
		next.entries = append(next.entries, s.entries[i+1:]...)
		return next, clone, nil
	}
	return nil, ioa.Packet{}, fmt.Errorf("channel: no pending packet at index %d in %s (%d pending)", idx, c.name, pending+1)
}

// Corrupt returns a copy of st in which the idx-th pending packet (in
// send order, 0-based among the pending packets) has been replaced by
// mutate(p): fault surgery for harnesses that model a medium damaging
// frames in place. Like Duplicate, this lies outside the paper's
// channel semantics — the mutated packet's receive_pkt has no matching
// send_pkt — so states produced this way must only be judged against
// specifications that tolerate it (in the transport middlebox the
// corruption is caught by the frame CRC and becomes an effective
// loss). The mutated packet replaces the original at the same queue
// position, preserving FIFO structure; callers that keep the packet ID
// unchanged model in-place damage, callers minting a fresh ID model
// injection.
func (c *Channel) Corrupt(st ioa.State, idx int, mutate func(ioa.Packet) ioa.Packet) (ioa.State, ioa.Packet, error) {
	s, ok := st.(State)
	if !ok {
		return nil, ioa.Packet{}, fmt.Errorf("%w: want channel.State, got %T", ioa.ErrBadState, st)
	}
	pending := -1
	for i := range s.entries {
		if s.entries[i].status != statusPending {
			continue
		}
		pending++
		if pending != idx {
			continue
		}
		next := s.clone()
		next.entries[i].pkt = mutate(next.entries[i].pkt)
		return next, next.entries[i].pkt, nil
	}
	return nil, ioa.Packet{}, fmt.Errorf("channel: no pending packet at index %d in %s (%d pending)", idx, c.name, pending+1)
}

// Compact returns an equivalent state with the dead prefix discarded:
// delivered and lost entries, and (for a FIFO channel) pending entries
// at or below the high-water mark — which can never be delivered and
// would be marked lost by the next delivery anyway — are dropped, and
// the high-water mark is reset. The compacted state is
// forward-bisimilar to the original (same deliverable packets in the
// same eligibility order, same Residual), but its size is bounded by
// the in-transit count instead of the send history. Long-running
// transport sessions compact their middlebox channels periodically;
// without this, Step's copy-on-write clone makes a session cost
// O(messages²).
//
// The surgery deliberately erases the send history, so SentCount and
// DeliveredCount restart from the compacted state; harnesses that
// account for totals must keep their own counters.
func (c *Channel) Compact(st ioa.State) (ioa.State, error) {
	s, ok := st.(State)
	if !ok {
		return nil, fmt.Errorf("%w: want channel.State, got %T", ioa.ErrBadState, st)
	}
	next := State{hwm: -1}
	for i := range s.entries {
		if c.deliverable(s, i) {
			next.entries = append(next.entries, s.entries[i])
		}
	}
	return next, nil
}

// Waiting reports whether the sequence Q is waiting in st in the paper's
// sense (Section 6.3): the packets of Q are pending and can be delivered
// consecutively, in order, starting now. For the non-FIFO channel this
// just requires each packet of Q to be pending and distinct; for the FIFO
// channel Q must additionally be a subsequence of the pending packets in
// send order beyond the high-water mark.
func (c *Channel) Waiting(st ioa.State, q []ioa.Packet) bool {
	s, ok := st.(State)
	if !ok {
		return false
	}
	if !c.fifo {
		seen := make(map[ioa.Packet]bool, len(q))
		for _, p := range q {
			if seen[p] {
				return false
			}
			seen[p] = true
			pending := false
			for i := range s.entries {
				if s.entries[i].pkt == p && s.entries[i].status == statusPending {
					pending = true
					break
				}
			}
			if !pending {
				return false
			}
		}
		return true
	}
	// FIFO: Q must appear in send order among deliverable packets.
	next := 0
	for i := range s.entries {
		if next == len(q) {
			break
		}
		if c.deliverable(s, i) && s.entries[i].pkt == q[next] {
			next++
		}
	}
	return next == len(q)
}
