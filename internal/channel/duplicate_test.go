package channel

import (
	"strings"
	"testing"

	"repro/internal/ioa"
)

// sendN puts n packets (IDs 1..n, header "h") in transit after a wake.
func sendN(t *testing.T, c *Channel, n int) ioa.State {
	t.Helper()
	st, err := c.Step(c.Start(), ioa.Wake(c.Dir()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		st, err = c.Step(st, ioa.SendPkt(c.Dir(), ioa.Packet{ID: uint64(i), Header: "h"}))
		if err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestDuplicateInsertsAdjacentPendingClone(t *testing.T) {
	for _, fifo := range []bool{true, false} {
		c := NewPermissive(ioa.TR)
		if fifo {
			c = NewPermissiveFIFO(ioa.TR)
		}
		st := sendN(t, c, 3)
		next, clone, err := c.Duplicate(st, 1, 99)
		if err != nil {
			t.Fatal(err)
		}
		if clone.ID != 99 || clone.Header != "h" {
			t.Fatalf("fifo=%v: clone = %s, want #99[h]", fifo, clone)
		}
		got := next.(State).InTransit()
		ids := make([]uint64, len(got))
		for i, p := range got {
			ids[i] = p.ID
		}
		// The clone sits immediately after the original (in-place frame
		// duplication), not at the end.
		want := []uint64{1, 2, 99, 3}
		for i := range want {
			if i >= len(ids) || ids[i] != want[i] {
				t.Fatalf("fifo=%v: in-transit IDs = %v, want %v", fifo, ids, want)
			}
		}
		// The original state is untouched (surgery is persistent).
		if n := len(st.(State).InTransit()); n != 3 {
			t.Fatalf("fifo=%v: original state mutated: %d in transit", fifo, n)
		}
	}
}

func TestDuplicateCloneAndOriginalBothDeliverableFIFO(t *testing.T) {
	c := NewPermissiveFIFO(ioa.TR)
	st := sendN(t, c, 2)
	next, clone, err := c.Duplicate(st, 0, 77)
	if err != nil {
		t.Fatal(err)
	}
	// FIFO order: original #1, then clone #77, then #2 — deliverable in
	// exactly that order without losing anything.
	for _, want := range []uint64{1, 77, 2} {
		en := c.Enabled(next)
		if len(en) == 0 || en[0].Pkt.ID != want {
			t.Fatalf("next deliverable = %v, want packet #%d", en, want)
		}
		next, err = c.Step(next, en[0])
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := len(next.(State).InTransit()); n != 0 {
		t.Fatalf("%d packets still in transit after delivering all three", n)
	}
	_ = clone
}

func TestDuplicateAfterPartialDeliveryRespectsHWM(t *testing.T) {
	c := NewPermissiveFIFO(ioa.TR)
	st := sendN(t, c, 3)
	// Deliver #1 so the high-water mark moves; pending is {#2, #3}.
	next, err := c.Step(st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: "h"}))
	if err != nil {
		t.Fatal(err)
	}
	dup, _, err := c.Duplicate(next, 1, 50) // duplicate #3, the 1st pending after #2
	if err != nil {
		t.Fatal(err)
	}
	en := c.Enabled(dup)
	if len(en) != 3 { // #2, #3, clone #50 all deliverable
		t.Fatalf("enabled = %v, want 3 deliverable packets", en)
	}
	// The already-delivered packet must not resurface.
	for _, a := range en {
		if a.Pkt.ID == 1 {
			t.Fatalf("delivered packet #1 deliverable again after surgery: %v", en)
		}
	}
}

func TestDuplicateIndexOutOfRange(t *testing.T) {
	c := NewPermissiveFIFO(ioa.TR)
	st := sendN(t, c, 1)
	if _, _, err := c.Duplicate(st, 1, 9); err == nil || !strings.Contains(err.Error(), "no pending packet") {
		t.Fatalf("want an out-of-range error, got %v", err)
	}
}
