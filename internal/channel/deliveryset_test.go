package channel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityDeliverySet(t *testing.T) {
	s := IdentityDeliverySet()
	for j := 1; j <= 10; j++ {
		if s.Source(j) != j {
			t.Errorf("identity Source(%d) = %d", j, s.Source(j))
		}
	}
	if !s.Monotone() {
		t.Error("identity set must be monotone")
	}
	if !s.Clean(0, 0) {
		t.Error("identity set must be clean at (0,0)")
	}
	if !s.Clean(5, 5) {
		t.Error("identity set must be clean at (5,5)")
	}
	if s.Clean(5, 3) {
		t.Error("identity set must not be clean at (5,3): packets 4,5 still deliverable")
	}
}

func TestNewDeliverySetValidation(t *testing.T) {
	tests := []struct {
		name   string
		prefix []int
		shift  int
		ok     bool
	}{
		{"identity", nil, 0, true},
		{"loss of packet 1", []int{2}, 1, true},
		{"duplicate source", []int{3, 3}, 2, false},
		{"non-positive source", []int{0}, 1, false},
		{"non-positive tail", nil, -1, false},
		{"prefix collides with tail", []int{5}, 0, false},
		{"reordering prefix", []int{2, 1}, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewDeliverySet(tt.prefix, tt.shift)
			if (err == nil) != tt.ok {
				t.Errorf("NewDeliverySet(%v, %d) err = %v, want ok=%v", tt.prefix, tt.shift, err, tt.ok)
			}
		})
	}
}

func TestDeliverySetContains(t *testing.T) {
	s, err := NewDeliverySet([]int{2, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains(2, 1) || !s.Contains(1, 2) || !s.Contains(3, 3) {
		t.Error("expected pairs missing")
	}
	if s.Contains(1, 1) || s.Contains(2, 2) {
		t.Error("unexpected pairs present")
	}
	if s.Monotone() {
		t.Error("swapped set must not be monotone")
	}
}

func TestDelSurgery(t *testing.T) {
	// Deleting (1,1) from the identity set yields Source(j) = j+1: packet
	// 1 is lost, everything else shifts up.
	s := IdentityDeliverySet().Del(1)
	for j := 1; j <= 5; j++ {
		if s.Source(j) != j+1 {
			t.Errorf("after Del(1): Source(%d) = %d, want %d", j, s.Source(j), j+1)
		}
	}
	if !s.Monotone() {
		t.Error("del of a monotone set must stay monotone")
	}
	// Deleting in the middle: earlier deliveries unchanged, later shifted.
	s2 := IdentityDeliverySet().Del(3)
	wants := []int{1, 2, 4, 5, 6}
	for j, want := range wants {
		if got := s2.Source(j + 1); got != want {
			t.Errorf("after Del(3): Source(%d) = %d, want %d", j+1, got, want)
		}
	}
}

func TestDelDeepInTail(t *testing.T) {
	s := IdentityDeliverySet().Del(10)
	for j := 1; j <= 9; j++ {
		if s.Source(j) != j {
			t.Errorf("Source(%d) = %d, want %d", j, s.Source(j), j)
		}
	}
	for j := 10; j <= 15; j++ {
		if s.Source(j) != j+1 {
			t.Errorf("Source(%d) = %d, want %d", j, s.Source(j), j+1)
		}
	}
}

func TestCleanAfterDels(t *testing.T) {
	// Lose packets 1 and 2: deliveries are 3, 4, 5, ... so with counter1=2
	// (two packets sent) and counter2=0 the state is NOT clean (3 > 2 will
	// be delivered as the first receive: pairs (3,1),(4,2)... mean shift=2
	// and Clean(2,0) requires shift == 2-0 = 2 — actually clean).
	s := IdentityDeliverySet().Del(1).Del(1)
	if !s.Clean(2, 0) {
		t.Error("after losing both sent packets the channel is clean at (2,0)")
	}
	if s.Clean(3, 0) {
		t.Error("with a third packet sent and deliverable, not clean")
	}
}

// TestDeliverySetInvariantUnderDel is the property test for Lemma 6.3's
// substrate: delivery sets are closed under del, and monotone delivery
// sets stay monotone (the remark after the del definition).
func TestDeliverySetInvariantUnderDel(t *testing.T) {
	f := func(seed int64, dels []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := IdentityDeliverySet()
		// Apply a random sequence of deletions at random positions.
		for _, d := range dels {
			j := int(d)%20 + 1
			s = s.Del(j)
			if err := s.validate(); err != nil {
				return false
			}
			if !s.Monotone() {
				return false
			}
			// Delivery-set conditions spot-checked: all sources distinct.
			seen := map[int]bool{}
			for j := 1; j <= 40; j++ {
				src := s.Source(j)
				if src < 1 || seen[src] {
					return false
				}
				seen[src] = true
			}
		}
		_ = rng
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNonMonotoneStaysValidUnderDel checks closure under del for
// reordering (non-monotone) sets too.
func TestNonMonotoneStaysValidUnderDel(t *testing.T) {
	f := func(swapAt uint8, delAt uint8) bool {
		// Build a set with one adjacent swap, then delete somewhere.
		i := int(swapAt)%10 + 1
		prefix := make([]int, i+1)
		for k := range prefix {
			prefix[k] = k + 1
		}
		prefix[i-1], prefix[i] = prefix[i], prefix[i-1]
		s, err := NewDeliverySet(prefix, 0)
		if err != nil {
			return false
		}
		j := int(delAt)%15 + 1
		s = s.Del(j)
		return s.validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeliveryOrder(t *testing.T) {
	// Identity: n packets delivered in order.
	got := IdentityDeliverySet().DeliveryOrder(3)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("DeliveryOrder = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DeliveryOrder = %v, want %v", got, want)
		}
	}
	// Losing packet 2: delivery order 1, 3.
	s := IdentityDeliverySet().Del(2)
	got = s.DeliveryOrder(3)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("DeliveryOrder after Del(2) = %v, want [1 3]", got)
	}
	// Reordering: swap first two deliveries.
	s2, err := NewDeliverySet([]int{2, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got = s2.DeliveryOrder(2)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("DeliveryOrder reordered = %v, want [2 1]", got)
	}
	// A source beyond n blocks all later deliveries.
	s3, err := NewDeliverySet([]int{5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.DeliveryOrder(3); len(got) != 0 {
		t.Errorf("blocked DeliveryOrder = %v, want empty", got)
	}
}
