package channel

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ioa"
	"repro/internal/spec"
)

func mkPkt(id uint64, h string) ioa.Packet {
	return ioa.Packet{ID: id, Header: ioa.Header(h), Payload: "m"}
}

// drive applies a schedule to a channel, returning the final state.
func drive(t *testing.T, c *Channel, actions ...ioa.Action) ioa.State {
	t.Helper()
	st := c.Start()
	var err error
	for _, a := range actions {
		st, err = c.Step(st, a)
		if err != nil {
			t.Fatalf("Step(%s): %v", a, err)
		}
	}
	return st
}

func TestChannelSignature(t *testing.T) {
	c := NewPermissive(ioa.TR)
	sig := c.Signature()
	if !sig.ContainsInput(ioa.SendPkt(ioa.TR, mkPkt(1, "h"))) {
		t.Error("send_pkt should be an input")
	}
	if !sig.ContainsOutput(ioa.ReceivePkt(ioa.TR, mkPkt(1, "h"))) {
		t.Error("receive_pkt should be an output")
	}
	if !sig.ContainsInput(ioa.Wake(ioa.TR)) || !sig.ContainsInput(ioa.Crash(ioa.TR)) {
		t.Error("status notifications should be inputs")
	}
	if sig.Contains(ioa.SendPkt(ioa.RT, mkPkt(1, "h"))) {
		t.Error("reverse-direction actions are foreign")
	}
	if len(sig.Int) != 0 {
		t.Error("non-lossy channel has no internal actions")
	}
	lossy := NewPermissive(ioa.TR, WithLoss())
	if len(lossy.Signature().Int) != 1 {
		t.Error("lossy channel should expose the lose family")
	}
}

func TestPermissiveDeliversAnyInTransit(t *testing.T) {
	c := NewPermissive(ioa.TR)
	st := drive(t, c,
		ioa.Wake(ioa.TR),
		ioa.SendPkt(ioa.TR, mkPkt(1, "a")),
		ioa.SendPkt(ioa.TR, mkPkt(2, "b")),
		ioa.SendPkt(ioa.TR, mkPkt(3, "c")),
	)
	enabled := c.Enabled(st)
	if len(enabled) != 3 {
		t.Fatalf("non-FIFO channel should offer all 3 packets, got %v", enabled)
	}
	// Deliver out of order: 3 then 1.
	st2, err := c.Step(st, ioa.ReceivePkt(ioa.TR, mkPkt(3, "c")))
	if err != nil {
		t.Fatalf("out-of-order delivery rejected: %v", err)
	}
	st2, err = c.Step(st2, ioa.ReceivePkt(ioa.TR, mkPkt(1, "a")))
	if err != nil {
		t.Fatalf("late delivery of earlier packet rejected by non-FIFO channel: %v", err)
	}
	if got := st2.(State).InTransit(); len(got) != 1 || got[0].ID != 2 {
		t.Errorf("in transit = %v, want just packet 2", got)
	}
}

func TestFIFOOrderingAndLoss(t *testing.T) {
	c := NewPermissiveFIFO(ioa.TR)
	base := drive(t, c,
		ioa.SendPkt(ioa.TR, mkPkt(1, "a")),
		ioa.SendPkt(ioa.TR, mkPkt(2, "b")),
		ioa.SendPkt(ioa.TR, mkPkt(3, "c")),
	)
	// Delivering 2 skips (loses) 1 and blocks its later delivery.
	st, err := c.Step(base, ioa.ReceivePkt(ioa.TR, mkPkt(2, "b")))
	if err != nil {
		t.Fatalf("gap delivery rejected: %v", err)
	}
	if _, err := c.Step(st, ioa.ReceivePkt(ioa.TR, mkPkt(1, "a"))); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Errorf("FIFO channel delivered an earlier packet after a later one: %v", err)
	}
	// Packet 1 is lost, not in transit.
	if got := st.(State).InTransit(); len(got) != 1 || got[0].ID != 3 {
		t.Errorf("in transit = %v, want just packet 3", got)
	}
	// Enabled offers only packets beyond the high-water mark.
	enabled := c.Enabled(st)
	if len(enabled) != 1 || enabled[0].Pkt.ID != 3 {
		t.Errorf("enabled = %v, want just packet 3", enabled)
	}
}

func TestChannelStatusInputsNoOp(t *testing.T) {
	c := NewPermissiveFIFO(ioa.TR)
	st := drive(t, c, ioa.SendPkt(ioa.TR, mkPkt(1, "a")))
	for _, a := range []ioa.Action{ioa.Wake(ioa.TR), ioa.Fail(ioa.TR), ioa.Crash(ioa.TR)} {
		next, err := c.Step(st, a)
		if err != nil {
			t.Fatalf("Step(%s): %v", a, err)
		}
		if !ioa.StatesEqual(st, next) {
			t.Errorf("%s changed the channel state", a)
		}
	}
}

func TestChannelStepErrors(t *testing.T) {
	c := NewPermissive(ioa.TR)
	if _, err := c.Step(c.Start(), ioa.ReceivePkt(ioa.TR, mkPkt(9, "x"))); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Errorf("delivering a never-sent packet: err = %v", err)
	}
	if _, err := c.Step(c.Start(), ioa.SendMsg(ioa.TR, "m")); !errors.Is(err, ioa.ErrNotInSignature) {
		t.Errorf("foreign action: err = %v", err)
	}
	if _, err := c.Step(struct{ ioa.State }{}, ioa.Wake(ioa.TR)); !errors.Is(err, ioa.ErrBadState) {
		t.Errorf("bad state: err = %v", err)
	}
	// Double delivery.
	st := drive(t, c, ioa.SendPkt(ioa.TR, mkPkt(1, "a")), ioa.ReceivePkt(ioa.TR, mkPkt(1, "a")))
	if _, err := c.Step(st, ioa.ReceivePkt(ioa.TR, mkPkt(1, "a"))); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Errorf("double delivery: err = %v", err)
	}
}

func TestLoseActions(t *testing.T) {
	c := NewPermissive(ioa.TR, WithLoss())
	st := drive(t, c, ioa.SendPkt(ioa.TR, mkPkt(1, "a")))
	enabled := c.Enabled(st)
	// One delivery plus one lose.
	if len(enabled) != 2 {
		t.Fatalf("enabled = %v, want delivery + lose", enabled)
	}
	st2, err := c.Step(st, c.Lose(mkPkt(1, "a")))
	if err != nil {
		t.Fatalf("lose: %v", err)
	}
	if len(st2.(State).InTransit()) != 0 {
		t.Error("lost packet still in transit")
	}
	if _, err := c.Step(st2, ioa.ReceivePkt(ioa.TR, mkPkt(1, "a"))); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Error("lost packet still deliverable")
	}
	// Losing twice is not enabled.
	if _, err := c.Step(st2, c.Lose(mkPkt(1, "a"))); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Error("losing a lost packet should not be enabled")
	}
	// Lose on a non-lossy channel is out of signature.
	plain := NewPermissive(ioa.TR)
	if _, err := plain.Step(st, plain.Lose(mkPkt(1, "a"))); err == nil {
		t.Error("non-lossy channel accepted a lose action")
	}
}

func TestSurgeryMakeCleanAndKeepOnly(t *testing.T) {
	c := NewPermissive(ioa.TR)
	st := drive(t, c,
		ioa.SendPkt(ioa.TR, mkPkt(1, "a")),
		ioa.SendPkt(ioa.TR, mkPkt(2, "b")),
		ioa.SendPkt(ioa.TR, mkPkt(3, "c")),
	)
	clean, err := c.MakeClean(st)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.(State).Clean() {
		t.Error("MakeClean did not produce a clean state")
	}
	kept, err := c.KeepOnly(st, []ioa.Packet{mkPkt(2, "b")})
	if err != nil {
		t.Fatal(err)
	}
	if got := kept.(State).InTransit(); len(got) != 1 || got[0].ID != 2 {
		t.Errorf("KeepOnly in transit = %v", got)
	}
	if _, err := c.KeepOnly(st, []ioa.Packet{mkPkt(9, "zz")}); err == nil {
		t.Error("KeepOnly with a non-transit packet should fail")
	}
	lost, err := c.MarkLost(st, mkPkt(1, "a"))
	if err != nil {
		t.Fatal(err)
	}
	if got := lost.(State).InTransit(); len(got) != 2 {
		t.Errorf("MarkLost left %v", got)
	}
	if _, err := c.MarkLost(lost, mkPkt(1, "a")); err == nil {
		t.Error("MarkLost of an already-lost packet should fail")
	}
}

// TestWaiting checks the paper's "Q waiting in s" predicate (Lemmas
// 6.4-6.7 substrate).
func TestWaiting(t *testing.T) {
	nonfifo := NewPermissive(ioa.TR)
	fifo := NewPermissiveFIFO(ioa.TR)
	sends := []ioa.Action{
		ioa.SendPkt(ioa.TR, mkPkt(1, "a")),
		ioa.SendPkt(ioa.TR, mkPkt(2, "b")),
		ioa.SendPkt(ioa.TR, mkPkt(3, "c")),
	}
	stN := drive(t, nonfifo, sends...)
	stF := drive(t, fifo, sends...)

	// Non-FIFO: any ordering of distinct in-transit packets waits.
	if !nonfifo.Waiting(stN, []ioa.Packet{mkPkt(3, "c"), mkPkt(1, "a")}) {
		t.Error("non-FIFO reordering should be waiting")
	}
	if nonfifo.Waiting(stN, []ioa.Packet{mkPkt(1, "a"), mkPkt(1, "a")}) {
		t.Error("repeated packet cannot be waiting")
	}
	if nonfifo.Waiting(stN, []ioa.Packet{mkPkt(9, "zz")}) {
		t.Error("unsent packet cannot be waiting")
	}

	// FIFO: only send-order subsequences wait.
	if !fifo.Waiting(stF, []ioa.Packet{mkPkt(1, "a"), mkPkt(3, "c")}) {
		t.Error("subsequence should be waiting in FIFO channel")
	}
	if fifo.Waiting(stF, []ioa.Packet{mkPkt(3, "c"), mkPkt(1, "a")}) {
		t.Error("reordering must not be waiting in FIFO channel")
	}

	// Lemma 6.4: a waiting sequence is deliverable in order.
	q := []ioa.Packet{mkPkt(1, "a"), mkPkt(3, "c")}
	st := stF
	var err error
	for _, p := range q {
		st, err = fifo.Step(st, ioa.ReceivePkt(ioa.TR, p))
		if err != nil {
			t.Fatalf("waiting sequence not deliverable: %v", err)
		}
	}
}

// TestLemma66KeepSubsequence: if Q is waiting, any subsequence Q' can be
// waiting after surgery.
func TestLemma66KeepSubsequence(t *testing.T) {
	fifo := NewPermissiveFIFO(ioa.TR)
	st := drive(t, fifo,
		ioa.SendPkt(ioa.TR, mkPkt(1, "a")),
		ioa.SendPkt(ioa.TR, mkPkt(2, "b")),
		ioa.SendPkt(ioa.TR, mkPkt(3, "c")),
	)
	sub := []ioa.Packet{mkPkt(2, "b")}
	st2, err := fifo.KeepOnly(st, sub)
	if err != nil {
		t.Fatal(err)
	}
	if !fifo.Waiting(st2, sub) {
		t.Error("kept subsequence not waiting")
	}
	if fifo.Waiting(st2, []ioa.Packet{mkPkt(1, "a")}) {
		t.Error("dropped packet still waiting")
	}
}

// TestChannelSchedulesSatisfyPL is the executable form of Lemma 6.1: fair
// finite schedules of the permissive channels, under well-formed inputs,
// satisfy the PL (resp. PL-FIFO) safety properties — for random delivery
// and loss choices.
func TestChannelSchedulesSatisfyPL(t *testing.T) {
	f := func(seed int64, fifo bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var c *Channel
		if fifo {
			c = NewPermissiveFIFO(ioa.TR, WithLoss())
		} else {
			c = NewPermissive(ioa.TR, WithLoss())
		}
		st := c.Start()
		var sched ioa.Schedule
		apply := func(a ioa.Action) bool {
			next, err := c.Step(st, a)
			if err != nil {
				return false
			}
			st = next
			sched = append(sched, a)
			return true
		}
		if !apply(ioa.Wake(ioa.TR)) {
			return false
		}
		nextID := uint64(1)
		for i := 0; i < 60; i++ {
			switch rng.Intn(3) {
			case 0:
				if !apply(ioa.SendPkt(ioa.TR, mkPkt(nextID, "h"))) {
					return false
				}
				nextID++
			default:
				enabled := c.Enabled(st)
				if len(enabled) == 0 {
					continue
				}
				if !apply(enabled[rng.Intn(len(enabled))]) {
					return false
				}
			}
		}
		v := spec.CheckPL(sched, ioa.TR)
		if fifo {
			v = spec.CheckPLFIFO(sched, ioa.TR)
		}
		return v.OK() && !v.Vacuous
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestExplicitVsLazyChannel cross-validates the DeliverySet formulation
// against the lazy executable channel: the delivery order induced by a
// randomly surgered delivery set is executable on the lazy channel, and is
// FIFO-legal when the set is monotone.
func TestExplicitVsLazyChannel(t *testing.T) {
	f := func(seed int64, nSends uint8, nDels uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := IdentityDeliverySet()
		for i := 0; i < int(nDels%8); i++ {
			s = s.Del(rng.Intn(10) + 1)
		}
		n := int(nSends%10) + 1
		order := s.DeliveryOrder(n)

		c := NewPermissiveFIFO(ioa.TR) // monotone set ⇒ FIFO-executable
		st := c.Start()
		var err error
		for i := 1; i <= n; i++ {
			st, err = c.Step(st, ioa.SendPkt(ioa.TR, mkPkt(uint64(i), "h")))
			if err != nil {
				return false
			}
		}
		for _, src := range order {
			st, err = c.Step(st, ioa.ReceivePkt(ioa.TR, mkPkt(uint64(src), "h")))
			if err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStateCounters(t *testing.T) {
	c := NewPermissive(ioa.TR)
	st := drive(t, c,
		ioa.SendPkt(ioa.TR, mkPkt(1, "a")),
		ioa.SendPkt(ioa.TR, mkPkt(2, "b")),
		ioa.ReceivePkt(ioa.TR, mkPkt(2, "b")),
	).(State)
	if st.SentCount() != 2 {
		t.Errorf("SentCount = %d", st.SentCount())
	}
	if st.DeliveredCount() != 1 {
		t.Errorf("DeliveredCount = %d", st.DeliveredCount())
	}
	if st.Clean() {
		t.Error("packet 1 still pending; not clean")
	}
}

func TestEquivFingerprintErasesIdentities(t *testing.T) {
	c := NewPermissive(ioa.TR)
	st1 := drive(t, c, ioa.SendPkt(ioa.TR, ioa.Packet{ID: 1, Header: "h", Payload: "x"}))
	st2 := drive(t, c, ioa.SendPkt(ioa.TR, ioa.Packet{ID: 9, Header: "h", Payload: "y"}))
	e1 := st1.(State).EquivFingerprint()
	e2 := st2.(State).EquivFingerprint()
	if e1 != e2 {
		t.Errorf("equivalent channel states have different equivalence fingerprints:\n%s\n%s", e1, e2)
	}
	if st1.Fingerprint() == st2.Fingerprint() {
		t.Error("exact fingerprints should differ")
	}
}
