package sim

import (
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/obs"
)

// TestRunnerObserveCountsEverything drives ABP to quiescence under an
// attached registry and checks the fired counters account for every
// recorded step, residency high-water marks are set, and the
// steps-to-quiescence histogram sees each quiescent run.
func TestRunnerObserveCountsEverything(t *testing.T) {
	r := newABPRunner(t, true)
	reg := obs.NewRegistry()
	r.Observe(reg)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	for _, m := range []ioa.Message{"m1", "m2"} {
		if err := r.Input(ioa.SendMsg(ioa.TR, m)); err != nil {
			t.Fatal(err)
		}
		quiet, err := r.RunFair(RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !quiet {
			t.Fatal("ABP on a reliable channel should quiesce")
		}
	}
	snap := reg.Snapshot()
	var firedTotal, inputTotal int64
	for _, c := range snap.Counters {
		switch {
		case strings.HasPrefix(c.Name, "sim.fired.input."):
			inputTotal += c.Value
		case strings.HasPrefix(c.Name, "sim.fired."):
			firedTotal += c.Value
		}
	}
	// Every recorded step is either an input or a class-keyed firing.
	if got := firedTotal + inputTotal; got != int64(r.Execution().Len()) {
		t.Errorf("fired counters sum to %d, execution has %d steps", got, r.Execution().Len())
	}
	if inputTotal != 4 { // wake, wake, send_msg, send_msg
		t.Errorf("input counter sum = %d, want 4", inputTotal)
	}
	if v := snap.Counter("sim.fired.input.send_msg"); v != 2 {
		t.Errorf("sim.fired.input.send_msg = %d, want 2", v)
	}
	// Delivering two messages means a data packet and an ack were in
	// transit at least once in each direction.
	if hw := snap.Gauge("sim.residency.t,r"); hw < 1 {
		t.Errorf("sim.residency.t,r high-water = %d, want >= 1", hw)
	}
	if hw := snap.Gauge("sim.residency.r,t"); hw < 1 {
		t.Errorf("sim.residency.r,t high-water = %d, want >= 1", hw)
	}
	h, ok := snap.Histogram("sim.steps_to_quiescence")
	if !ok || h.Count != 2 {
		t.Fatalf("steps_to_quiescence observed %d runs, want 2", h.Count)
	}
	if h.Sum != firedTotal {
		t.Errorf("steps_to_quiescence sum = %d, want the %d fired steps", h.Sum, firedTotal)
	}
}

// TestRunnerObserveDetachAndNil checks that the default runner and a
// detached runner pay no observation (no registry mutation, no panic).
func TestRunnerObserveDetachAndNil(t *testing.T) {
	r := newABPRunner(t, true)
	if err := r.WakeBoth(); err != nil { // no registry attached
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r.Observe(reg)
	r.Observe(nil) // detach again
	if err := r.Input(ioa.SendMsg(ioa.TR, "m")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunFair(RunConfig{}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		if c.Value != 0 {
			t.Errorf("detached runner incremented %s to %d", c.Name, c.Value)
		}
	}
	if h, ok := snap.Histogram("sim.steps_to_quiescence"); ok && h.Count != 0 {
		t.Errorf("detached runner observed %d quiescences", h.Count)
	}
}

// TestObserveSurvivesRestore pins the telemetry-plane exemption on
// Runner.ins (the snap:ignore contract snapshotcoverage checks): a
// Restore rewinds the execution but neither detaches the instruments
// nor rolls counters back, so a replayed prefix is counted once per
// application.
func TestObserveSurvivesRestore(t *testing.T) {
	r := newABPRunner(t, true)
	reg := obs.NewRegistry()
	r.Observe(reg)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	mark := r.Snapshot()
	steps := r.Execution().Len()

	run := func() {
		t.Helper()
		if err := r.Input(ioa.SendMsg(ioa.TR, "m")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunFair(RunConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	totalFired := func() int64 {
		var total int64
		for _, c := range reg.Snapshot().Counters {
			if strings.HasPrefix(c.Name, "sim.fired.") {
				total += c.Value
			}
		}
		return total
	}

	run()
	before := totalFired()
	if before == 0 {
		t.Fatal("instrumented run recorded nothing")
	}
	r.Restore(mark)
	if got := r.Execution().Len(); got != steps {
		t.Fatalf("Restore left %d steps, want %d", got, steps)
	}
	if got := totalFired(); got != before {
		t.Fatalf("Restore changed fired counters: %d, want %d (counters are monotone)", got, before)
	}
	run() // replay the same prefix: still instrumented, counted again
	if got := totalFired(); got <= before {
		t.Fatalf("replayed prefix not counted: %d fired, want > %d", got, before)
	}
}
