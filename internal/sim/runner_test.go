package sim

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/spec"
)

func newABPRunner(t *testing.T, fifo bool) *Runner {
	t.Helper()
	sys, err := core.NewSystem(protocol.NewABP(), fifo)
	if err != nil {
		t.Fatal(err)
	}
	return NewRunner(sys)
}

func TestRunnerInputValidation(t *testing.T) {
	r := newABPRunner(t, true)
	if err := r.Input(ioa.Wake(ioa.TR)); err != nil {
		t.Fatalf("Input(wake): %v", err)
	}
	// receive_msg is an output of the composition, not an input.
	if err := r.Input(ioa.ReceiveMsg(ioa.TR, "m")); err == nil {
		t.Error("Input accepted an output action")
	}
	if _, err := r.Fire(ioa.SendMsg(ioa.TR, "m")); err == nil {
		t.Error("Fire accepted an input action")
	}
}

func TestRunnerFireAssignsPacketIDs(t *testing.T) {
	r := newABPRunner(t, true)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	if err := r.Input(ioa.SendMsg(ioa.TR, "m")); err != nil {
		t.Fatal(err)
	}
	enabled := r.System().Comp.Enabled(r.State())
	if len(enabled) != 1 || enabled[0].Pkt.ID != 0 {
		t.Fatalf("expected one unlabelled send, got %v", enabled)
	}
	fired, err := r.Fire(enabled[0])
	if err != nil {
		t.Fatal(err)
	}
	if fired.Pkt.ID == 0 {
		t.Error("Fire did not assign a packet ID")
	}
	// A second transmission of the same data gets a distinct ID (PL2).
	fired2, err := r.Fire(enabled[0])
	if err != nil {
		t.Fatal(err)
	}
	if fired2.Pkt.ID == fired.Pkt.ID {
		t.Error("two transmissions share a packet ID, violating PL2")
	}
}

func TestRunnerSnapshotRestore(t *testing.T) {
	r := newABPRunner(t, true)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	idMark := r.IDs().Snapshot()
	if err := r.Input(ioa.SendMsg(ioa.TR, "m")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunFair(RunConfig{MaxSteps: 50, Until: UntilAnyReceiveMsg()}); err != nil {
		t.Fatal(err)
	}
	if len(r.StepsSince(snap)) == 0 {
		t.Fatal("no steps recorded")
	}
	r.Restore(snap)
	if r.Execution().Len() != 2 {
		t.Errorf("after restore, execution has %d steps, want 2", r.Execution().Len())
	}
	if r.IDs().Snapshot() != idMark {
		t.Error("restore did not rewind the ID allocator")
	}
	if len(r.StepsSince(snap)) != 0 {
		t.Error("StepsSince after restore should be empty")
	}
}

func TestRunFairQuiescesEmptySystem(t *testing.T) {
	r := newABPRunner(t, true)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	quiescent, err := r.RunFair(RunConfig{MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !quiescent {
		t.Error("idle system should quiesce immediately")
	}
}

func TestRunFairStepLimit(t *testing.T) {
	r := newABPRunner(t, true)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	if err := r.Input(ioa.SendMsg(ioa.TR, "m")); err != nil {
		t.Fatal(err)
	}
	// Forbid all channel deliveries: the transmitter retransmits forever.
	_, err := r.RunFair(RunConfig{
		MaxSteps: 25,
		Filter:   func(a ioa.Action) bool { return a.Kind != ioa.KindReceivePkt },
	})
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("expected ErrStepLimit, got %v", err)
	}
}

func TestRunFairUntilStops(t *testing.T) {
	r := newABPRunner(t, true)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	if err := r.Input(ioa.SendMsg(ioa.TR, "hello")); err != nil {
		t.Fatal(err)
	}
	quiescent, err := r.RunFair(RunConfig{Until: UntilReceiveMsg("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if quiescent {
		t.Error("run should have stopped at the delivery, not quiescence")
	}
	last := r.Execution().Actions[r.Execution().Len()-1]
	if last != ioa.ReceiveMsg(ioa.TR, "hello") {
		t.Errorf("last action = %s", last)
	}
}

func TestRunnerBehaviorHidesPacketActions(t *testing.T) {
	r := newABPRunner(t, true)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	if err := r.Input(ioa.SendMsg(ioa.TR, "m")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunFair(RunConfig{Until: UntilAnyReceiveMsg()}); err != nil {
		t.Fatal(err)
	}
	for _, a := range r.Behavior() {
		if a.Kind == ioa.KindSendPkt || a.Kind == ioa.KindReceivePkt {
			t.Fatalf("behavior leaked a hidden packet action: %s", a)
		}
	}
	// The packet schedule projection, by contrast, sees them.
	ps := r.PacketSchedule(ioa.TR)
	sawSend := false
	for _, a := range ps {
		if a.Kind == ioa.KindSendPkt {
			sawSend = true
		}
	}
	if !sawSend {
		t.Error("packet schedule missing send_pkt events")
	}
	if v := spec.CheckPLFIFO(ps, ioa.TR); !v.OK() {
		t.Errorf("FIFO channel trace violates PL-FIFO: %s", v)
	}
}

func TestRoundRobinFairnessAlternatesClasses(t *testing.T) {
	// With a message in flight, both the transmitter's xmit class and the
	// channel's deliver class are repeatedly enabled; round-robin must
	// give both turns rather than starving the channel.
	r := newABPRunner(t, true)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	if err := r.Input(ioa.SendMsg(ioa.TR, "m")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunFair(RunConfig{MaxSteps: 200, Until: UntilAnyReceiveMsg()}); err != nil {
		t.Fatal(err)
	}
	classes := map[ioa.Class]int{}
	for _, a := range r.Execution().Actions {
		if cl := r.System().Comp.ClassOf(a); cl != "" {
			classes[cl]++
		}
	}
	if len(classes) < 2 {
		t.Errorf("round-robin exercised too few classes: %v", classes)
	}
}

func TestSetStateSurgery(t *testing.T) {
	r := newABPRunner(t, true)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	if err := r.Input(ioa.SendMsg(ioa.TR, "m")); err != nil {
		t.Fatal(err)
	}
	// Send one packet, then surgically clean the channel.
	enabled := r.System().Comp.Enabled(r.State())
	if _, err := r.Fire(enabled[0]); err != nil {
		t.Fatal(err)
	}
	inTransit, err := r.System().InTransit(r.State(), ioa.TR)
	if err != nil {
		t.Fatal(err)
	}
	if len(inTransit) != 1 {
		t.Fatalf("in transit = %v", inTransit)
	}
	cleaned, err := r.System().CleanChannels(r.State())
	if err != nil {
		t.Fatal(err)
	}
	r.SetState(cleaned)
	inTransit, err = r.System().InTransit(r.State(), ioa.TR)
	if err != nil {
		t.Fatal(err)
	}
	if len(inTransit) != 0 {
		t.Error("surgery did not clean the channel")
	}
}
