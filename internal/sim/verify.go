package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ioa"
)

// This file provides runtime verification of the structural hypotheses of
// the paper's theorems. The adversaries do not trust a protocol's claimed
// Properties: before constructing a counterexample they verify the
// crashing property (Section 5.3.2) and message-independence (Section
// 5.3.1) on randomly explored reachable states. A verification failure is
// how the non-volatile protocol correctly escapes the Theorem 7.5
// adversary.

// ErrNotCrashing reports that a protocol automaton does not revert to its
// start state on a crash input.
var ErrNotCrashing = errors.New("sim: protocol is not crashing (crash does not restore the start state)")

// ErrNotMessageIndependent reports observed behaviour that branches on
// message identities.
var ErrNotMessageIndependent = errors.New("sim: protocol is not message-independent")

// VerifyConfig tunes hypothesis verification.
type VerifyConfig struct {
	// Trials is the number of random executions explored (default 20).
	Trials int
	// StepsPerTrial bounds each random execution (default 200).
	StepsPerTrial int
	// Seed seeds the exploration.
	Seed int64
}

func (c VerifyConfig) withDefaults() VerifyConfig {
	if c.Trials <= 0 {
		c.Trials = 20
	}
	if c.StepsPerTrial <= 0 {
		c.StepsPerTrial = 200
	}
	return c
}

// VerifyCrashing checks the crashing property of both protocol automata on
// randomly reached states: for every sampled reachable state q of A^x,
// (q, crash, q0) must step to the unique start state q0. It returns
// ErrNotCrashing (wrapped, with the offending state) on failure.
func VerifyCrashing(p core.Protocol, cfg VerifyConfig) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	check := func(sys *core.System, st ioa.State) error {
		for _, x := range []ioa.Station{ioa.T, ioa.R} {
			a := sys.StationAutomaton(x)
			s, err := sys.StationState(st, x)
			if err != nil {
				return err
			}
			crash := ioa.Crash(core.OutChannelDir(x))
			post, err := a.Step(s, crash)
			if err != nil {
				return fmt.Errorf("sim: crash step of %s: %w", a.Name(), err)
			}
			if !ioa.StatesEqual(post, a.Start()) {
				return fmt.Errorf("%w: %s maps state %s to %s, start is %s",
					ErrNotCrashing, a.Name(), s.Fingerprint(), post.Fingerprint(), a.Start().Fingerprint())
			}
		}
		return nil
	}
	return exploreRandomly(p, cfg, rng, check)
}

// exploreRandomly runs random executions of the composed system, invoking
// check on every reached state.
func exploreRandomly(p core.Protocol, cfg VerifyConfig, rng *rand.Rand, check func(*core.System, ioa.State) error) error {
	for trial := 0; trial < cfg.Trials; trial++ {
		sys, err := core.NewSystem(p, trial%2 == 0) // alternate FIFO / non-FIFO
		if err != nil {
			return err
		}
		r := NewRunner(sys)
		if err := r.WakeBoth(); err != nil {
			return err
		}
		minter := core.NewMessageMinter(fmt.Sprintf("verify%d", trial))
		if err := check(sys, r.State()); err != nil {
			return err
		}
		for step := 0; step < cfg.StepsPerTrial; step++ {
			// Mix environment inputs with locally-controlled steps.
			if rng.Intn(5) == 0 {
				if err := r.Input(ioa.SendMsg(ioa.TR, minter.Fresh())); err != nil {
					return err
				}
			} else {
				enabled := sys.Comp.Enabled(r.State())
				if len(enabled) == 0 {
					continue
				}
				if _, err := r.Fire(enabled[rng.Intn(len(enabled))]); err != nil {
					return err
				}
			}
			if err := check(sys, r.State()); err != nil {
				return err
			}
		}
	}
	return nil
}

// VerifyMessageIndependence checks message-independence by bisimulation:
// it runs two copies of the system in lockstep, feeding them pointwise
// ≡-equivalent but distinct inputs (different message contents), making
// pointwise ≡-equivalent choices, and asserting after every step that the
// protocol automata remain in ≡-equivalent states with ≡-equivalent
// enabled action sets. Divergence means the protocol branched on message
// contents, refuting conditions 4–5 of Section 5.3.1.
func VerifyMessageIndependence(p core.Protocol, cfg VerifyConfig) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	for trial := 0; trial < cfg.Trials; trial++ {
		sysA, err := core.NewSystem(p, trial%2 == 0)
		if err != nil {
			return err
		}
		sysB, err := core.NewSystem(p, trial%2 == 0)
		if err != nil {
			return err
		}
		ra, rb := NewRunner(sysA), NewRunner(sysB)
		if err := ra.WakeBoth(); err != nil {
			return err
		}
		if err := rb.WakeBoth(); err != nil {
			return err
		}
		mintA := core.NewMessageMinter(fmt.Sprintf("mi-a%d", trial))
		mintB := core.NewMessageMinter(fmt.Sprintf("mi-b%d", trial))
		for step := 0; step < cfg.StepsPerTrial; step++ {
			if rng.Intn(5) == 0 {
				// Equivalent but distinct send_msg inputs (condition 2).
				if err := ra.Input(ioa.SendMsg(ioa.TR, mintA.Fresh())); err != nil {
					return err
				}
				if err := rb.Input(ioa.SendMsg(ioa.TR, mintB.Fresh())); err != nil {
					return err
				}
			} else {
				ea := sysA.Comp.Enabled(ra.State())
				eb := sysB.Comp.Enabled(rb.State())
				if len(ea) != len(eb) || !pointwiseEquivalent(ea, eb) {
					return fmt.Errorf("%w: enabled sets diverge at trial %d step %d:\n  A: %v\n  B: %v",
						ErrNotMessageIndependent, trial, step, ioa.Schedule(ea), ioa.Schedule(eb))
				}
				if len(ea) == 0 {
					continue
				}
				i := rng.Intn(len(ea))
				if _, err := ra.Fire(ea[i]); err != nil {
					return err
				}
				if _, err := rb.Fire(eb[i]); err != nil {
					return err
				}
			}
			if err := statesEquivalent(sysA, ra.State(), sysB, rb.State(), trial, step); err != nil {
				return err
			}
		}
	}
	return nil
}

// pointwiseEquivalent reports whether two action lists are pointwise ≡.
// Deterministic Enabled ordering makes positionwise comparison sound.
func pointwiseEquivalent(a, b []ioa.Action) bool {
	for i := range a {
		if !core.ActionsEquivalent(a[i], b[i]) {
			return false
		}
	}
	return true
}

func statesEquivalent(sysA *core.System, sa ioa.State, sysB *core.System, sb ioa.State, trial, step int) error {
	for _, x := range []ioa.Station{ioa.T, ioa.R} {
		qa, err := sysA.StationState(sa, x)
		if err != nil {
			return err
		}
		qb, err := sysB.StationState(sb, x)
		if err != nil {
			return err
		}
		eq, err := ioa.StatesEquivalent(qa, qb)
		if err != nil {
			return err
		}
		if !eq {
			return fmt.Errorf("%w: A^%s states diverge at trial %d step %d:\n  A: %s\n  B: %s",
				ErrNotMessageIndependent, x, trial, step, qa.Fingerprint(), qb.Fingerprint())
		}
	}
	return nil
}
