package sim

import (
	"repro/internal/ioa"
	"repro/internal/obs"
)

// This file is the runner's observability surface. A Runner carries no
// instruments until Observe attaches a registry; with none attached the
// per-step cost is one nil check, per the obs package's
// zero-cost-when-disabled contract.
//
// Exported metric names:
//
//	sim.fired.<class>          counter   locally-controlled actions fired,
//	                                     keyed by fairness class
//	sim.fired.input.<kind>     counter   environment inputs applied
//	sim.residency.t,r / r,t    gauge     channel residency high-water mark
//	                                     (pending packets after a send_pkt)
//	sim.steps_to_quiescence    histogram steps each RunFair took to quiesce
//
// Counters are monotone: Restore rolls the execution back but not the
// metrics, so a replayed prefix is counted once per application.

// instruments is the runner's resolved handle set; a nil *instruments is
// the disabled mode, and every method tolerates a nil receiver.
type instruments struct {
	reg *obs.Registry
	// byClass caches per-fairness-class counters so the apply path does no
	// string concatenation after a class's first firing.
	byClass map[ioa.Class]*obs.Counter
	input   [ioa.KindInternal + 1]*obs.Counter
	residTR *obs.Gauge
	residRT *obs.Gauge
	quiesce *obs.Histogram
}

// Observe attaches a metrics registry to the runner; nil detaches it.
func (r *Runner) Observe(reg *obs.Registry) {
	if reg == nil {
		r.ins = nil
		return
	}
	r.ins = &instruments{
		reg:     reg,
		byClass: make(map[ioa.Class]*obs.Counter),
		residTR: reg.Gauge("sim.residency." + ioa.TR.String()),
		residRT: reg.Gauge("sim.residency." + ioa.RT.String()),
		quiesce: reg.Histogram("sim.steps_to_quiescence", obs.ExpBuckets(1, 2, 16)),
	}
}

// observeFired records one applied action: its per-class (or per-input-kind)
// counter and, for send_pkt, the channel residency high-water mark.
func (ins *instruments) observeFired(r *Runner, a ioa.Action) {
	if ins == nil {
		return
	}
	ins.fired(r, a).Inc()
	if a.Kind == ioa.KindSendPkt {
		if cs, err := r.sys.ChannelState(r.state, a.Dir); err == nil {
			g := ins.residTR
			if a.Dir == ioa.RT {
				g = ins.residRT
			}
			g.SetMax(int64(cs.PendingCount()))
		}
	}
}

// fired resolves the counter for an action: locally-controlled actions are
// keyed by their fairness class, environment inputs by their kind.
func (ins *instruments) fired(r *Runner, a ioa.Action) *obs.Counter {
	if cl := r.sys.Comp.ClassOf(a); cl != "" {
		c, ok := ins.byClass[cl]
		if !ok {
			c = ins.reg.Counter("sim.fired." + string(cl))
			ins.byClass[cl] = c
		}
		return c
	}
	k := int(a.Kind)
	if k >= len(ins.input) {
		k = 0
	}
	if ins.input[k] == nil {
		ins.input[k] = ins.reg.Counter("sim.fired.input." + a.Kind.String())
	}
	return ins.input[k]
}

// observeQuiescence records how many steps a RunFair call fired before the
// system quiesced.
func (ins *instruments) observeQuiescence(steps int) {
	if ins == nil {
		return
	}
	ins.quiesce.Observe(int64(steps))
}
