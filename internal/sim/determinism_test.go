package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

// buildRegistered returns the registry protocol under its sweep-default
// parameters.
func buildRegistered(t *testing.T, name string) core.Protocol {
	t.Helper()
	p, err := protocol.ByName(name, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// randomWalk drives the runner for up to steps rounds: occasionally an
// environment send (deterministically minted via *sent), otherwise one
// seeded-random locally-controlled step. All choices come from rng, so
// equal rng states give equal walks — if and only if the runner's own
// state is equal, which is exactly what the snapshot test exploits.
func randomWalk(r *Runner, rng *rand.Rand, steps int, sent *int) error {
	for i := 0; i < steps; i++ {
		if rng.Intn(4) == 0 {
			*sent++
			if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("q%d", *sent)))); err != nil {
				return err
			}
			continue
		}
		stop := func(ioa.Action, ioa.State) bool { return true }
		if _, err := r.RunFair(RunConfig{MaxSteps: 1, Rand: rng, Until: stop}); err != nil {
			return err
		}
	}
	return nil
}

// TestSnapshotRestoreRoundTrip is the Snapshot/Restore contract as a
// quick property, for every registered protocol: after Restore, the
// state, the execution length, StepsSince and the packet ID allocator are
// exactly as at the snapshot — witnessed by replaying the identical
// random continuation and requiring a byte-identical schedule (packet IDs
// are part of the rendered actions, so ID drift cannot hide).
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := buildRegistered(t, name)
			prop := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				sys, err := core.NewSystem(p, true)
				if err != nil {
					t.Fatal(err)
				}
				r := NewRunner(sys)
				if err := r.WakeBoth(); err != nil {
					t.Fatal(err)
				}
				sent := 0
				if err := randomWalk(r, rng, 30, &sent); err != nil {
					t.Fatal(err)
				}
				snap := r.Snapshot()
				sentAtSnap := sent
				stateAtSnap := r.State()
				lenAtSnap := r.Execution().Len()
				contSeed := rng.Int63()
				if err := randomWalk(r, rand.New(rand.NewSource(contSeed)), 40, &sent); err != nil {
					t.Fatal(err)
				}
				first := r.StepsSince(snap).String()
				r.Restore(snap)
				sent = sentAtSnap
				if !reflect.DeepEqual(r.State(), stateAtSnap) {
					t.Fatalf("state not restored: %v != %v", r.State(), stateAtSnap)
				}
				if got := r.Execution().Len(); got != lenAtSnap {
					t.Fatalf("execution length %d after restore, want %d", got, lenAtSnap)
				}
				if left := r.StepsSince(snap); len(left) != 0 {
					t.Fatalf("StepsSince non-empty after restore: %s", left)
				}
				if err := randomWalk(r, rand.New(rand.NewSource(contSeed)), 40, &sent); err != nil {
					t.Fatal(err)
				}
				second := r.StepsSince(snap).String()
				if first != second {
					t.Fatalf("replayed continuation diverged:\nfirst:  %s\nsecond: %s", first, second)
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSchedulesAreSeedStable is the determinism contract pickRoundRobin's
// documentation promises: for every registered protocol, two fresh runs
// of the same scenario produce byte-identical schedules — under the
// round-robin scheduler and under a seeded random scheduler — and Enabled
// is stable when called twice on the same state (a component enumerating
// a Go map would fail both ways with high probability).
func TestSchedulesAreSeedStable(t *testing.T) {
	scenario := func(t *testing.T, p core.Protocol, seed int64) string {
		t.Helper()
		sys, err := core.NewSystem(p, true)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(sys)
		if err := r.WakeBoth(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 3; i++ {
			if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", i)))); err != nil {
				t.Fatal(err)
			}
		}
		cfg := RunConfig{
			MaxSteps: 2000,
			OnFired: func(ioa.Action) {
				a1 := fmt.Sprint(sys.Comp.Enabled(r.State()))
				a2 := fmt.Sprint(sys.Comp.Enabled(r.State()))
				if a1 != a2 {
					t.Fatalf("Enabled is not stable on a fixed state:\n%s\n%s", a1, a2)
				}
			},
		}
		if seed != 0 {
			cfg.Rand = rand.New(rand.NewSource(seed))
		}
		if _, err := r.RunFair(cfg); err != nil {
			t.Fatal(err)
		}
		return r.Schedule().String()
	}
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := buildRegistered(t, name)
			for _, seed := range []int64{0, 11} { // 0 = round-robin, 11 = seeded
				first := scenario(t, p, seed)
				second := scenario(t, p, seed)
				if first != second {
					t.Fatalf("seed %d: two fresh runs produced different schedules:\n%s\n---\n%s", seed, first, second)
				}
			}
		})
	}
}
