package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
)

// leakyTransmitter wraps a correct ABP transmitter but BRANCHES ON MESSAGE
// CONTENTS: it refuses to transmit messages whose payload contains the
// letter 'a'. The verifier's two lockstep copies mint messages with
// distinct prefixes ("mi-a…" vs "mi-b…"), so the copies' enabled sets
// diverge and the leak is observable. It is the negative control for
// VerifyMessageIndependence — condition 4 of Section 5.3.1 fails.
type leakyTransmitter struct {
	inner ioa.Automaton
}

func (l *leakyTransmitter) Name() string             { return "leaky.T" }
func (l *leakyTransmitter) Signature() ioa.Signature { return l.inner.Signature() }
func (l *leakyTransmitter) Start() ioa.State         { return l.inner.Start() }
func (l *leakyTransmitter) ClassOf(a ioa.Action) ioa.Class {
	return l.inner.ClassOf(a)
}
func (l *leakyTransmitter) Classes() []ioa.Class { return l.inner.Classes() }

func (l *leakyTransmitter) Step(s ioa.State, a ioa.Action) (ioa.State, error) {
	return l.inner.Step(s, a)
}

func (l *leakyTransmitter) Enabled(s ioa.State) []ioa.Action {
	var out []ioa.Action
	for _, a := range l.inner.Enabled(s) {
		// The illegal branch: message-content-dependent suppression.
		if a.Kind == ioa.KindSendPkt && strings.Contains(string(a.Pkt.Payload), "a") {
			continue
		}
		out = append(out, a)
	}
	return out
}

// newLeakyProtocol returns ABP with the message-dependent transmitter.
func newLeakyProtocol() core.Protocol {
	p := protocol.NewABP()
	p.Name = "leaky-abp"
	p.T = &leakyTransmitter{inner: p.T}
	return p
}

// TestVerifyMessageIndependenceCatchesLeak: the lockstep ≡-bisimulation
// must reject a protocol that branches on message contents.
func TestVerifyMessageIndependenceCatchesLeak(t *testing.T) {
	err := VerifyMessageIndependence(newLeakyProtocol(), VerifyConfig{Trials: 8, StepsPerTrial: 120})
	if !errors.Is(err, ErrNotMessageIndependent) {
		t.Fatalf("verifier missed a message-dependent protocol: %v", err)
	}
}

// stickyTransmitter is the negative control for VerifyCrashing: it claims
// to be crashing but keeps its queue across crashes.
type stickyTransmitter struct {
	inner ioa.Automaton
}

func (s *stickyTransmitter) Name() string             { return "sticky.T" }
func (s *stickyTransmitter) Signature() ioa.Signature { return s.inner.Signature() }
func (s *stickyTransmitter) Start() ioa.State         { return s.inner.Start() }
func (s *stickyTransmitter) Enabled(st ioa.State) []ioa.Action {
	return s.inner.Enabled(st)
}
func (s *stickyTransmitter) ClassOf(a ioa.Action) ioa.Class {
	return s.inner.ClassOf(a)
}
func (s *stickyTransmitter) Classes() []ioa.Class { return s.inner.Classes() }

func (s *stickyTransmitter) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	if a.Kind == ioa.KindCrash && a.Dir == ioa.TR {
		return st, nil // "non-volatile" everything: crash is a no-op
	}
	return s.inner.Step(st, a)
}

// TestVerifyCrashingCatchesStickyState: sampled reachable states where the
// crash step does not land in the start state must be reported.
func TestVerifyCrashingCatchesStickyState(t *testing.T) {
	p := protocol.NewABP()
	p.Name = "sticky-abp"
	p.T = &stickyTransmitter{inner: p.T}
	err := VerifyCrashing(p, VerifyConfig{Trials: 6, StepsPerTrial: 80})
	if !errors.Is(err, ErrNotCrashing) {
		t.Fatalf("verifier missed a non-crashing protocol: %v", err)
	}
}

// TestLeakyEnabledSuppression sanity-checks the negative-control wrapper
// itself: equivalently-shaped states with different payload initials give
// different enabled sets.
func TestLeakyEnabledSuppression(t *testing.T) {
	p := newLeakyProtocol()
	tx := p.T
	withA, err := tx.Step(tx.Start(), ioa.Wake(ioa.TR))
	if err != nil {
		t.Fatal(err)
	}
	withA, err = tx.Step(withA, ioa.SendMsg(ioa.TR, "has-an-a"))
	if err != nil {
		t.Fatal(err)
	}
	withO, err := tx.Step(tx.Start(), ioa.Wake(ioa.TR))
	if err != nil {
		t.Fatal(err)
	}
	withO, err = tx.Step(withO, ioa.SendMsg(ioa.TR, "ok"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tx.Enabled(withA)); got != 0 {
		t.Errorf("suppressed payload still enabled: %d", got)
	}
	if got := len(tx.Enabled(withO)); got != 1 {
		t.Errorf("allowed payload not enabled: %d", got)
	}
}
