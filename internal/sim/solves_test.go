package sim

import (
	"errors"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/spec"
)

// TestProtocolsSolveDLOverTheirChannels: the executable Section 2.4
// "solving" relation, sampled — every protocol solves the FULL DL module
// over the channel discipline it requires, under loss, in the
// crash-free setting.
func TestProtocolsSolveDLOverTheirChannels(t *testing.T) {
	for _, p := range protocolsUnderTest() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			sys, err := core.NewSystem(p, p.Props.RequiresFIFO, core.WithChannelOptions(channel.WithLoss()))
			if err != nil {
				t.Fatal(err)
			}
			err = SolvesBounded(sys, spec.DLModule(ioa.TR), SolvesConfig{
				Trials: 6, Messages: 4, Loss: true, Seed: 11,
			})
			if err != nil {
				t.Errorf("%s does not solve DL: %v", p.Name, err)
			}
		})
	}
}

// TestNonVolatileSolvesDLUnderCrashes: only the non-volatile protocol
// solves DL when crashes are in the environment script.
func TestNonVolatileSolvesDLUnderCrashes(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewNonVolatile(), true)
	if err != nil {
		t.Fatal(err)
	}
	err = SolvesBounded(sys, spec.DLModule(ioa.TR), SolvesConfig{
		Trials: 8, Messages: 4, Crashes: 3, Seed: 3,
	})
	if err != nil {
		t.Errorf("non-volatile protocol should solve DL under crashes: %v", err)
	}
}

// TestABPFailsToSolveWDLUnderCrashes: crashing protocols are caught by
// the sampled solving check too (a sampled counterexample, where the
// adversary constructs one deterministically).
func TestABPFailsToSolveWDLUnderCrashes(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewABP(), true)
	if err != nil {
		t.Fatal(err)
	}
	err = SolvesBounded(sys, spec.WDLModule(ioa.TR), SolvesConfig{
		Trials: 20, Messages: 3, Crashes: 3, Seed: 1,
	})
	if !errors.Is(err, ErrDoesNotSolve) {
		t.Errorf("expected a sampled WDL counterexample for ABP under crashes, got: %v", err)
	}
}

// TestGBNFailsToSolveWDLOverNonFIFO: the sampled check also catches the
// Theorem 8.5 phenomenon — eventually. Random schedules need the sequence
// space to wrap, so use the smallest modulus.
func TestGBNFailsToSolveWDLOverNonFIFO(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewGoBackN(2, 1), false)
	if err != nil {
		t.Fatal(err)
	}
	// Trials/seed retuned when RunFair's seeded scheduler switched to
	// canonical candidate ordering (the walk trajectories changed; the
	// reachable set did not).
	err = SolvesBounded(sys, spec.WDLModule(ioa.TR), SolvesConfig{
		Trials: 300, Messages: 6, Seed: 1,
	})
	if !errors.Is(err, ErrDoesNotSolve) {
		t.Errorf("expected a sampled WDL counterexample for gbn(2,1) over C̄, got: %v", err)
	}
}

// TestChannelsSolvePLModules: the composed channels' packet schedules
// belong to their PL modules — Lemma 6.1 at the module level.
func TestChannelsSolvePLModules(t *testing.T) {
	sys, err := core.NewSystem(protocol.NewGoBackN(4, 2), true, core.WithChannelOptions(channel.WithLoss()))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(sys)
	if err := r.WakeBoth(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(string(rune('a'+i))))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.RunFair(RunConfig{}); err != nil {
		t.Fatal(err)
	}
	for _, d := range []ioa.Dir{ioa.TR, ioa.RT} {
		mod := spec.PLFIFOModule(d)
		beh := r.Schedule().Project(mod.Sig)
		if v := mod.Contains(beh); !v.OK() {
			t.Errorf("%s rejected: %s", mod.Name, v)
		}
		// The non-FIFO module accepts FIFO behavior too (PL ⊆ PL-FIFO in
		// the containment direction scheds(PL-FIFO) ⊆ scheds(PL)).
		if v := spec.PLModule(d).Contains(beh); !v.OK() {
			t.Errorf("PL rejected a PL-FIFO behavior: %s", v)
		}
	}
}

// TestModuleSignatures: module signatures expose exactly the paper's
// action families.
func TestModuleSignatures(t *testing.T) {
	dl := spec.DLModule(ioa.TR)
	if !dl.Sig.ContainsInput(ioa.SendMsg(ioa.TR, "m")) || !dl.Sig.ContainsOutput(ioa.ReceiveMsg(ioa.TR, "m")) {
		t.Error("DL signature missing message actions")
	}
	if !dl.Sig.ContainsInput(ioa.Crash(ioa.RT)) {
		t.Error("DL signature missing receiver-side crash")
	}
	if dl.Sig.Contains(ioa.SendPkt(ioa.TR, ioa.Packet{})) {
		t.Error("DL signature must not contain packet actions")
	}
	pl := spec.PLModule(ioa.RT)
	if !pl.Sig.ContainsInput(ioa.SendPkt(ioa.RT, ioa.Packet{})) || !pl.Sig.ContainsOutput(ioa.ReceivePkt(ioa.RT, ioa.Packet{})) {
		t.Error("PL signature missing packet actions")
	}
	if pl.Sig.Contains(ioa.SendMsg(ioa.TR, "m")) {
		t.Error("PL signature must not contain message actions")
	}
}
