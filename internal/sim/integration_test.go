package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/protocol"
	"repro/internal/spec"
)

// protocolsUnderTest returns fresh instances of every protocol in the
// repository together with whether they need FIFO channels.
func protocolsUnderTest() []core.Protocol {
	return []core.Protocol{
		protocol.NewABP(),
		protocol.NewGoBackN(2, 1),
		protocol.NewGoBackN(8, 3),
		protocol.NewGoBackN(16, 15),
		protocol.NewSelectiveRepeat(8, 4),
		protocol.NewFragmenting(4, 3),
		protocol.NewHandshake(),
		protocol.NewStenning(),
		protocol.NewNonVolatile(),
	}
}

// TestFailureFreeDelivery is the executable Lemma 4.1 / experiment E8:
// over reliable permissive channels of the kind each protocol requires,
// every protocol delivers a batch of messages and the resulting quiescent
// behavior satisfies the FULL data link specification DL (not just WDL),
// non-vacuously.
func TestFailureFreeDelivery(t *testing.T) {
	for _, p := range protocolsUnderTest() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			sys, err := core.NewSystem(p, p.Props.RequiresFIFO)
			if err != nil {
				t.Fatal(err)
			}
			r := NewRunner(sys)
			if err := r.WakeBoth(); err != nil {
				t.Fatal(err)
			}
			const batch = 10
			for i := 0; i < batch; i++ {
				if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("msg-%d", i)))); err != nil {
					t.Fatal(err)
				}
			}
			quiescent, err := r.RunFair(RunConfig{})
			if err != nil {
				t.Fatalf("fair run: %v", err)
			}
			if !quiescent {
				t.Fatal("system did not quiesce")
			}
			beh := r.Behavior()
			delivered := 0
			for _, a := range beh {
				if a.Kind == ioa.KindReceiveMsg {
					delivered++
				}
			}
			if delivered != batch {
				t.Errorf("delivered %d of %d messages", delivered, batch)
			}
			v := spec.CheckDL(beh, ioa.TR)
			if v.Vacuous {
				t.Fatalf("verdict vacuous: %s", v)
			}
			if !v.OK() {
				t.Errorf("DL violated: %s", v)
			}
		})
	}
}

// TestStenningOverReorderingChannel: Stenning's protocol (unbounded
// headers) stays correct over the non-FIFO channel under adversarially
// random delivery orders — the positive complement of Theorem 8.5 (E4).
func TestStenningOverReorderingChannel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		sys, err := core.NewSystem(protocol.NewStenning(), false)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(sys)
		if err := r.WakeBoth(); err != nil {
			t.Fatal(err)
		}
		const batch = 8
		for i := 0; i < batch; i++ {
			if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("s%d-%d", seed, i)))); err != nil {
				t.Fatal(err)
			}
		}
		// Random scheduling reorders deliveries arbitrarily; finish with a
		// deterministic fair run so liveness can be judged.
		rng := rand.New(rand.NewSource(seed))
		if _, err := r.RunFair(RunConfig{MaxSteps: 2000, Rand: rng}); err != nil {
			t.Fatal(err)
		}
		quiescent, err := r.RunFair(RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !quiescent {
			t.Fatal("no quiescence")
		}
		if v := spec.CheckDL(r.Behavior(), ioa.TR); !v.OK() || v.Vacuous {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestSlidingWindowOverLossyFIFO is experiment E5: ABP and Go-Back-N over
// FIFO channels with randomized loss still satisfy DL — retransmissions
// recover every loss, and order is preserved.
func TestSlidingWindowOverLossyFIFO(t *testing.T) {
	protos := []core.Protocol{
		protocol.NewABP(),
		protocol.NewGoBackN(4, 2),
		protocol.NewGoBackN(8, 7),
		protocol.NewSelectiveRepeat(8, 4),
		protocol.NewFragmenting(4, 2),
		protocol.NewHandshake(),
	}
	for _, p := range protos {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				// Loss is injected by the random scheduler interleaving the
				// lossy channels' internal lose actions (AllowLoss below).
				sys, err := core.NewSystem(p, true, core.WithChannelOptions(channel.WithLoss()))
				if err != nil {
					t.Fatal(err)
				}
				r := NewRunner(sys)
				if err := r.WakeBoth(); err != nil {
					t.Fatal(err)
				}
				const batch = 6
				for i := 0; i < batch; i++ {
					if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", i)))); err != nil {
						t.Fatal(err)
					}
				}
				rng := rand.New(rand.NewSource(seed))
				if _, err := r.RunFair(RunConfig{MaxSteps: 3000, Rand: rng, AllowLoss: true}); err != nil {
					t.Fatal(err)
				}
				quiescent, err := r.RunFair(RunConfig{})
				if err != nil {
					t.Fatal(err)
				}
				if !quiescent {
					t.Fatal("no quiescence after deterministic settling")
				}
				if v := spec.CheckDL(r.Behavior(), ioa.TR); !v.OK() || v.Vacuous {
					t.Errorf("seed %d: %s", seed, v)
				}
			}
		})
	}
}

// TestNonVolatileSurvivesCrashSchedules is experiment E2: the
// Baratz–Segall-style protocol with non-volatile memory provides full DL
// behavior across randomized crash/recovery schedules of both stations.
func TestNonVolatileSurvivesCrashSchedules(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		sys, err := core.NewSystem(protocol.NewNonVolatile(), true)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(sys)
		if err := r.WakeBoth(); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		mint := 0
		for event := 0; event < 30; event++ {
			switch rng.Intn(6) {
			case 0: // transmitter crash + recovery
				if err := r.Input(ioa.Crash(ioa.TR)); err != nil {
					t.Fatal(err)
				}
				if err := r.Input(ioa.Wake(ioa.TR)); err != nil {
					t.Fatal(err)
				}
			case 1: // receiver crash + recovery
				if err := r.Input(ioa.Crash(ioa.RT)); err != nil {
					t.Fatal(err)
				}
				if err := r.Input(ioa.Wake(ioa.RT)); err != nil {
					t.Fatal(err)
				}
			case 2: // new message
				mint++
				if err := r.Input(ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("c%d-%d", seed, mint)))); err != nil {
					t.Fatal(err)
				}
			default: // let the system run a little (a truncated burst is fine)
				if _, err := r.RunFair(RunConfig{MaxSteps: 40, Rand: rng}); err != nil && !errors.Is(err, ErrStepLimit) {
					t.Fatal(err)
				}
			}
		}
		// Stabilize: no more faults; fair run to quiescence.
		quiescent, err := r.RunFair(RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !quiescent {
			t.Fatal("no quiescence")
		}
		if v := spec.CheckDL(r.Behavior(), ioa.TR); !v.OK() || v.Vacuous {
			t.Errorf("seed %d: %s\nbehavior:\n%s", seed, v, ioa.FormatSchedule(r.Behavior()))
		}
	}
}

// TestCrashingProtocolsAreVulnerableToNaiveCrashes demonstrates the easy
// half of the Section 7 story concretely: even a single well-placed crash
// schedule makes ABP misbehave — here, losing a message without the
// excuse of a transmitter-side failure notification would violate DL8 —
// while the non-volatile protocol handles the same schedule.
func TestCrashingProtocolsAreVulnerableToNaiveCrashes(t *testing.T) {
	runSchedule := func(p core.Protocol) spec.Verdict {
		sys, err := core.NewSystem(p, true)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(sys)
		if err := r.WakeBoth(); err != nil {
			t.Fatal(err)
		}
		// Deliver one message normally.
		if err := r.Input(ioa.SendMsg(ioa.TR, "one")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunFair(RunConfig{}); err != nil {
			t.Fatal(err)
		}
		// Crash the receiver (losing its expectation state), recover it,
		// then send another message and settle.
		if err := r.Input(ioa.Crash(ioa.RT)); err != nil {
			t.Fatal(err)
		}
		if err := r.Input(ioa.Wake(ioa.RT)); err != nil {
			t.Fatal(err)
		}
		if err := r.Input(ioa.SendMsg(ioa.TR, "two")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunFair(RunConfig{}); err != nil {
			t.Fatal(err)
		}
		return spec.CheckWDL(r.Behavior(), ioa.TR)
	}
	// ABP: after the receiver crash its expected bit resets to 0, but the
	// transmitter has moved to bit 1 — message "two" is acked by the stale
	// expectation and silently lost or mis-sequenced. Either way WDL
	// breaks on this schedule.
	if v := runSchedule(protocol.NewABP()); v.OK() {
		t.Errorf("ABP survived a receiver crash it cannot survive: %s", v)
	}
	if v := runSchedule(protocol.NewNonVolatile()); !v.OK() {
		t.Errorf("non-volatile protocol failed the naive crash schedule: %s", v)
	}
}

// TestVerifyCrashing exercises the hypothesis verifiers on all protocols.
func TestVerifyCrashing(t *testing.T) {
	for _, p := range protocolsUnderTest() {
		err := VerifyCrashing(p, VerifyConfig{Trials: 4, StepsPerTrial: 60})
		if p.Props.Crashing && err != nil {
			t.Errorf("%s should verify as crashing: %v", p.Name, err)
		}
		if !p.Props.Crashing && err == nil {
			t.Errorf("%s should fail the crashing check", p.Name)
		}
	}
}

// TestVerifyMessageIndependence exercises the bisimulation verifier; all
// protocols in the repository are message-independent.
func TestVerifyMessageIndependence(t *testing.T) {
	for _, p := range protocolsUnderTest() {
		if err := VerifyMessageIndependence(p, VerifyConfig{Trials: 4, StepsPerTrial: 80}); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}
