// Package sim executes composed data link systems: it applies environment
// inputs, fires locally-controlled actions under configurable scheduling
// policies, detects quiescence, and records executions. Its fair
// round-robin policy realises the fair executions of the I/O automaton
// model on finite prefixes, and its RunFair with no further inputs is the
// executable counterpart of Lemma 2.1's fair extension.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ioa"
)

// Runner drives one composed system D(A), recording the execution.
type Runner struct {
	sys   *core.System
	state ioa.State
	exec  *ioa.Execution
	ids   *core.PacketIDs
	// rrNext is the round-robin cursor over fairness classes.
	rrNext int
	// ins is the observability surface attached by Observe; nil (the
	// default) means every hook below is a single nil check.
	// snap:ignore telemetry plane, not automaton state: Snapshot/Restore rewind the simulation while instrument counters keep accumulating, so replay totals stay visible across rollbacks
	ins *instruments
}

// NewRunner returns a runner positioned at the system's start state.
func NewRunner(sys *core.System) *Runner {
	start := sys.Comp.Start()
	return &Runner{
		sys:   sys,
		state: start,
		exec:  ioa.NewExecution(start),
		ids:   &core.PacketIDs{},
	}
}

// System returns the system under execution.
func (r *Runner) System() *core.System { return r.sys }

// State returns the current composite state.
func (r *Runner) State() ioa.State { return r.state }

// IDs returns the packet ID allocator used to relabel send_pkt actions.
func (r *Runner) IDs() *core.PacketIDs { return r.ids }

// Execution returns the recorded execution. The returned value is live;
// callers must not mutate it.
func (r *Runner) Execution() *ioa.Execution { return r.exec }

// Schedule returns the schedule of the recorded execution.
func (r *Runner) Schedule() ioa.Schedule { return r.exec.Schedule() }

// Behavior returns the data-link-layer behavior of the recorded execution:
// the external actions of D'(A) (send_pkt/receive_pkt are hidden).
func (r *Runner) Behavior() ioa.Schedule {
	return r.exec.Behavior(r.sys.Hidden.Signature())
}

// PacketSchedule returns the physical-layer schedule in direction d:
// the send_pkt^{d} and receive_pkt^{d} events plus the direction's status
// events, for checking against the PL specifications.
func (r *Runner) PacketSchedule(d ioa.Dir) ioa.Schedule {
	return r.Schedule().Project(r.sys.Channel(d).Signature())
}

// SetState overrides the current state without recording a step. This is
// reserved for the adversaries' channel surgery (Lemmas 6.3 and 6.6),
// which replaces channel components by states the same schedule could have
// produced; using it for anything else invalidates the execution record.
func (r *Runner) SetState(s ioa.State) { r.state = s }

// Snapshot captures the runner's full state for later rollback.
type Snapshot struct {
	state    ioa.State
	steps    int
	idMark   uint64
	rrCursor int
}

// Snapshot returns a rollback point.
func (r *Runner) Snapshot() Snapshot {
	return Snapshot{state: r.state, steps: r.exec.Len(), idMark: r.ids.Snapshot(), rrCursor: r.rrNext}
}

// Restore rewinds the runner to a snapshot, discarding the steps recorded
// since. The header-pump adversary uses this to record a probe run and
// then replay a modified version of it from the same state.
func (r *Runner) Restore(s Snapshot) {
	r.state = s.state
	r.exec.States = r.exec.States[:s.steps+1]
	r.exec.Actions = r.exec.Actions[:s.steps]
	r.ids.Restore(s.idMark)
	r.rrNext = s.rrCursor
}

// StepsSince returns the actions recorded after the snapshot was taken.
func (r *Runner) StepsSince(s Snapshot) ioa.Schedule {
	return append(ioa.Schedule(nil), r.exec.Actions[s.steps:]...)
}

// Input applies an environment input action (send_msg, wake, fail, crash).
func (r *Runner) Input(a ioa.Action) error {
	if !r.sys.Comp.Signature().ContainsInput(a) {
		return fmt.Errorf("sim: %s is not an input of %s", a, r.sys.Comp.Name())
	}
	return r.apply(a)
}

// Fire performs a locally-controlled action. A send_pkt action with a zero
// packet ID is relabelled with a fresh unique ID first (the (PL2) labels
// of footnote 4), and the relabelled action is returned.
func (r *Runner) Fire(a ioa.Action) (ioa.Action, error) {
	if !r.sys.Comp.Signature().ContainsLocal(a) {
		return a, fmt.Errorf("sim: %s is not locally controlled in %s", a, r.sys.Comp.Name())
	}
	if a.Kind == ioa.KindSendPkt && a.Pkt.ID == 0 {
		a.Pkt.ID = r.ids.Next()
	}
	if err := r.apply(a); err != nil {
		return a, err
	}
	return a, nil
}

func (r *Runner) apply(a ioa.Action) error {
	next, err := r.sys.Comp.Step(r.state, a)
	if err != nil {
		return fmt.Errorf("sim: applying %s: %w", a, err)
	}
	r.state = next
	r.exec.Append(a, next)
	r.ins.observeFired(r, a)
	return nil
}

// WakeBoth issues the canonical initial inputs wake^{t,r} wake^{r,t}.
func (r *Runner) WakeBoth() error {
	if err := r.Input(ioa.Wake(ioa.TR)); err != nil {
		return err
	}
	return r.Input(ioa.Wake(ioa.RT))
}

// ErrStepLimit is returned by RunFair when MaxSteps elapses before
// quiescence or the Until condition.
var ErrStepLimit = errors.New("sim: step limit reached before quiescence")

// RunConfig configures RunFair.
type RunConfig struct {
	// MaxSteps bounds the number of locally-controlled steps fired; zero
	// means DefaultMaxSteps.
	MaxSteps int
	// Until, when non-nil, stops the run (successfully) after a step for
	// which it returns true.
	Until func(last ioa.Action, st ioa.State) bool
	// Filter, when non-nil, restricts eligible actions: only actions for
	// which it returns true may fire. Loss actions (channel.ClassLose) are
	// additionally excluded unless AllowLoss is set.
	Filter func(a ioa.Action) bool
	// AllowLoss permits internal channel lose actions to fire.
	AllowLoss bool
	// OnFired, when non-nil, observes every fired action (after it is
	// applied, before Until is evaluated). Observers may adjust state
	// captured by Filter closures; the header-pump adversary uses this to
	// withhold packets as they are sent.
	OnFired func(a ioa.Action)
	// Rand, when non-nil, selects uniformly among eligible actions instead
	// of round-robin over fairness classes. Random runs are
	// probabilistically fair; verdict-grade traces use round-robin.
	Rand *rand.Rand
}

// DefaultMaxSteps bounds fair runs that specify no limit.
const DefaultMaxSteps = 100000

// RunFair fires locally-controlled actions until no eligible action is
// enabled (quiescence), the Until condition holds, or the step limit is
// reached. The default scheduler rotates round-robin over the fairness
// classes of all components, realising a fair execution prefix: every
// class with an action continuously enabled gets turns.
//
// It returns true if the system quiesced (no eligible action enabled),
// false if Until stopped the run, and ErrStepLimit if the limit elapsed.
func (r *Runner) RunFair(cfg RunConfig) (bool, error) {
	limit := cfg.MaxSteps
	if limit <= 0 {
		limit = DefaultMaxSteps
	}
	classes := r.sys.Comp.Classes()
	eligible := func(a ioa.Action) bool {
		// A channel is never obliged to lose packets, so fairness exempts
		// lose actions unless a (randomized) run opts in.
		if !cfg.AllowLoss && channel.IsLoseAction(a) {
			return false
		}
		return cfg.Filter == nil || cfg.Filter(a)
	}
	for steps := 0; steps < limit; steps++ {
		enabled := r.sys.Comp.Enabled(r.state)
		var candidates []ioa.Action
		for _, a := range enabled {
			if eligible(a) {
				candidates = append(candidates, a)
			}
		}
		if len(candidates) == 0 {
			r.ins.observeQuiescence(steps)
			return true, nil
		}
		var pick ioa.Action
		if cfg.Rand != nil {
			// Canonicalise the candidate order so the seeded pick depends
			// only on the *set* of enabled actions, never on the order the
			// automata enumerated them in: if a component ever enumerates a
			// map in Enabled, Go is free to scramble the order between runs,
			// and an index-based pick would then diverge under the same
			// seed. Sorting makes equal seeds give byte-identical schedules.
			// Round-robin runs deliberately keep the enumeration order: an
			// automaton's Enabled order is its preference order (e.g. a
			// sliding-window transmitter lists the window base first), and
			// overriding it can starve the preferred action.
			ioa.SortActions(candidates)
			pick = candidates[cfg.Rand.Intn(len(candidates))]
		} else {
			pick = r.pickRoundRobin(classes, candidates)
		}
		fired, err := r.Fire(pick)
		if err != nil {
			return false, err
		}
		if cfg.OnFired != nil {
			cfg.OnFired(fired)
		}
		if cfg.Until != nil && cfg.Until(fired, r.state) {
			return false, nil
		}
	}
	return false, fmt.Errorf("%w (%d steps)", ErrStepLimit, limit)
}

// pickRoundRobin chooses the first candidate belonging to the next class
// (cyclically) that has any candidate, advancing the cursor. The tie-break
// among several candidates of the same class is the first in enumeration
// order: Enabled order is part of an automaton's semantics (its preference
// order — a FIFO channel lists the oldest deliverable packet first, a
// window transmitter its base), so components must enumerate it
// deterministically, never from a Go map. The sim package's determinism
// test enforces this for every registered protocol.
func (r *Runner) pickRoundRobin(classes []ioa.Class, candidates []ioa.Action) ioa.Action {
	for offset := 0; offset < len(classes); offset++ {
		cl := classes[(r.rrNext+offset)%len(classes)]
		for _, a := range candidates {
			if r.sys.Comp.ClassOf(a) == cl {
				r.rrNext = (r.rrNext + offset + 1) % len(classes)
				return a
			}
		}
	}
	// Candidates exist but match no class (cannot happen for well-formed
	// components); fall back to the first.
	return candidates[0]
}

// UntilReceiveMsg returns an Until condition that stops when the given
// message is delivered (receive_msg^{t,r}(m)).
func UntilReceiveMsg(m ioa.Message) func(ioa.Action, ioa.State) bool {
	return func(a ioa.Action, _ ioa.State) bool {
		return a.Kind == ioa.KindReceiveMsg && a.Dir == ioa.TR && a.Msg == m
	}
}

// UntilAnyReceiveMsg stops when any message is delivered.
func UntilAnyReceiveMsg() func(ioa.Action, ioa.State) bool {
	return func(a ioa.Action, _ ioa.State) bool {
		return a.Kind == ioa.KindReceiveMsg && a.Dir == ioa.TR
	}
}
