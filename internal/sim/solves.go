package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ioa"
	"repro/internal/spec"
)

// This file provides the executable counterpart of the paper's "solving"
// relation (Section 2.4): A solves H iff fairbehs(A) ⊆ behs(H). Full
// inclusion is undecidable in general; SolvesBounded samples fair
// behaviors of the composed, hidden system D'(A) under randomized
// environment scripts and checks each against the module. A failure
// yields a concrete counterexample behavior; success is evidence, not
// proof (the adversary package provides the refutations, the explore
// package the bounded proofs).

// SolvesConfig tunes the sampling.
type SolvesConfig struct {
	// Trials is the number of sampled fair behaviors (default 20).
	Trials int
	// Messages is the number of messages sent per trial (default 5).
	Messages int
	// Crashes is the number of crash/recover events injected per trial.
	Crashes int
	// Loss enables randomized packet loss (requires lossy channels).
	Loss bool
	// Seed seeds the environment scripts and schedulers.
	Seed int64
	// MaxSteps bounds each trial's fair runs.
	MaxSteps int
}

func (c SolvesConfig) withDefaults() SolvesConfig {
	if c.Trials <= 0 {
		c.Trials = 20
	}
	if c.Messages <= 0 {
		c.Messages = 5
	}
	return c
}

// ErrDoesNotSolve reports a sampled fair behavior outside the module.
var ErrDoesNotSolve = errors.New("sim: sampled fair behavior outside the module")

// SolvesBounded samples fair behaviors of D'(A) and checks them against
// the schedule module. It returns nil when every sampled behavior belongs
// to the module, and an error wrapping ErrDoesNotSolve (with the verdict
// and behavior) otherwise.
func SolvesBounded(sys *core.System, h spec.Module, cfg SolvesConfig) error {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	for trial := 0; trial < cfg.Trials; trial++ {
		r := NewRunner(sys)
		if err := r.WakeBoth(); err != nil {
			return err
		}
		mint := core.NewMessageMinter(fmt.Sprintf("solve%d", trial))
		events := cfg.Messages + cfg.Crashes
		sent, crashed := 0, 0
		for ev := 0; ev < events; ev++ {
			doCrash := crashed < cfg.Crashes && (sent >= cfg.Messages || rng.Intn(2) == 0)
			if doCrash {
				crashed++
				d := ioa.TR
				if rng.Intn(2) == 0 {
					d = ioa.RT
				}
				if err := r.Input(ioa.Crash(d)); err != nil {
					return err
				}
				if err := r.Input(ioa.Wake(d)); err != nil {
					return err
				}
			} else {
				sent++
				if err := r.Input(ioa.SendMsg(ioa.TR, mint.Fresh())); err != nil {
					return err
				}
			}
			// A bounded random burst between inputs; truncation is fine.
			burst := RunConfig{MaxSteps: 30 + rng.Intn(50), Rand: rng, AllowLoss: cfg.Loss}
			if _, err := r.RunFair(burst); err != nil && !errors.Is(err, ErrStepLimit) {
				return err
			}
		}
		// Fair extension to quiescence (Lemma 2.1): the sampled behavior
		// is the behavior of a fair execution.
		quiescent, err := r.RunFair(RunConfig{MaxSteps: cfg.MaxSteps})
		if err != nil {
			return err
		}
		if !quiescent {
			return fmt.Errorf("sim: trial %d did not quiesce; cannot judge fairness-dependent properties", trial)
		}
		beh := r.Behavior().Project(h.Sig)
		if v := h.Contains(beh); !v.OK() {
			return fmt.Errorf("%w: %s rejected by %s: %s\nbehavior:\n%s",
				ErrDoesNotSolve, sys.Comp.Name(), h.Name, v, ioa.FormatSchedule(beh))
		}
	}
	return nil
}
