package ioa

import (
	"encoding/json"
	"testing"
)

// TestActionJSONRoundTrip round-trips every action family, including a
// full schedule, through the wire codec.
func TestActionJSONRoundTrip(t *testing.T) {
	p := Packet{ID: 7, Header: "data/1", Payload: "m1"}
	sched := Schedule{
		Wake(TR), Wake(RT),
		SendMsg(TR, "m1"),
		SendPkt(TR, p),
		ReceivePkt(TR, p),
		ReceiveMsg(TR, "m1"),
		SendPkt(RT, Packet{ID: 8, Header: "ack/1"}),
		Fail(RT), Crash(TR),
		{Kind: KindInternal, Name: "lose^{t,r}", Pkt: p},
	}
	blob, err := json.Marshal(sched)
	if err != nil {
		t.Fatal(err)
	}
	var got Schedule
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sched) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(sched))
	}
	for i := range sched {
		if got[i] != sched[i] {
			t.Errorf("action %d: %+v != %+v", i, got[i], sched[i])
		}
	}
}

// TestActionJSONStableEncoding pins the wire form: obsreport and any
// external trace consumer parse these exact shapes.
func TestActionJSONStableEncoding(t *testing.T) {
	for _, tc := range []struct {
		a    Action
		want string
	}{
		{Wake(TR), `{"kind":"wake","dir":"t,r"}`},
		{SendMsg(TR, "m1"), `{"kind":"send_msg","dir":"t,r","msg":"m1"}`},
		{SendPkt(RT, Packet{ID: 2, Header: "ack/0"}), `{"kind":"send_pkt","dir":"r,t","pkt":{"id":2,"header":"ack/0"}}`},
		{Action{Kind: KindInternal, Name: "lose^{t,r}"}, `{"kind":"internal","name":"lose^{t,r}"}`},
	} {
		blob, err := json.Marshal(tc.a)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != tc.want {
			t.Errorf("encoding of %s:\ngot  %s\nwant %s", tc.a, blob, tc.want)
		}
	}
}

// TestActionJSONRejectsGarbage checks decode failure modes.
func TestActionJSONRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`{"kind":"warp","dir":"t,r"}`,
		`{"kind":"wake","dir":"tr"}`,
		`{"kind":"wake","dir":",r"}`,
		`[1,2]`,
	} {
		var a Action
		if err := json.Unmarshal([]byte(bad), &a); err == nil {
			t.Errorf("decoded %q without error (got %+v)", bad, a)
		}
	}
}
