package ioa

import (
	"errors"
	"fmt"
)

// State is an automaton state. Fingerprint must return a canonical
// encoding: two states of the same automaton are equal exactly when their
// fingerprints are equal. Implementations must be value-like; Step must
// never mutate a state it was given.
type State interface {
	Fingerprint() string
}

// AppendFingerprinter is an optional fast path for State (and monitor)
// implementations: AppendFingerprint appends exactly the bytes that
// Fingerprint returns to dst and returns the extended slice. It lets
// hot loops — the model checker builds one dedup key per explored state
// — assemble keys into a reused buffer with no intermediate string
// allocations. Implementations must append, never truncate or otherwise
// modify dst[:len(dst)].
type AppendFingerprinter interface {
	AppendFingerprint(dst []byte) []byte
}

// AppendFingerprint appends s's canonical fingerprint to dst, using the
// allocation-free fast path when s implements AppendFingerprinter and
// falling back to Fingerprint otherwise.
func AppendFingerprint(dst []byte, s State) []byte {
	if af, ok := s.(AppendFingerprinter); ok {
		return af.AppendFingerprint(dst)
	}
	return append(dst, s.Fingerprint()...)
}

// EquivState is implemented by states that additionally support the
// paper's message-independence equivalence ≡ (Section 5.3.1): the
// equivalence fingerprint erases message identities (payload contents)
// while preserving everything a message-independent protocol may branch
// on. Two states s, s' satisfy s ≡ s' exactly when their equivalence
// fingerprints are equal.
type EquivState interface {
	State
	EquivFingerprint() string
}

// Class names a fairness equivalence class of locally-controlled actions:
// one element of the partition part(A) (Section 2.2). A fair execution
// gives turns to each class.
type Class string

// Automaton is an I/O automaton (Section 2.2) with an executable
// transition relation. Automata must be input-enabled: Step must accept
// every input action of the signature in every state.
//
// Nondeterminism is expressed through Enabled: the automaton reports which
// locally-controlled actions are currently enabled, and the environment
// (a scheduler or adversary) picks one. Step itself must be deterministic:
// a given (state, action) pair always yields the same successor. This is a
// restriction relative to the full model that every protocol and channel
// in this repository satisfies, and that the replay arguments of the
// paper's Sections 7 and 8 rely on (determinism up to the equivalence ≡).
type Automaton interface {
	// Name identifies the automaton, used to qualify internal actions and
	// fairness classes in compositions.
	Name() string
	// Signature returns the automaton's action signature.
	Signature() Signature
	// Start returns the start state. Automata in this repository have a
	// unique start state (as required of crashing automata, Section 5.3.2).
	Start() State
	// Step returns the successor state after performing action a in state
	// s. It returns an error if a is not an action of the automaton, or is
	// a locally-controlled action not enabled in s.
	Step(s State, a Action) (State, error)
	// Enabled returns the locally-controlled actions enabled in s. For
	// action families with infinitely many enabled instances, a finite set
	// of representatives is returned (channels return one receive_pkt per
	// deliverable packet; protocols return concrete packets to send).
	Enabled(s State) []Action
	// ClassOf returns the fairness class of a locally-controlled action.
	ClassOf(a Action) Class
	// Classes lists the automaton's fairness classes.
	Classes() []Class
}

// ErrNotEnabled is returned by Step when asked to perform a
// locally-controlled action that is not enabled in the given state.
var ErrNotEnabled = errors.New("ioa: action not enabled")

// ErrNotInSignature is returned by Step when the action is not in the
// automaton's signature.
var ErrNotInSignature = errors.New("ioa: action not in signature")

// ErrBadState is returned when a state of the wrong dynamic type is passed
// to an automaton.
var ErrBadState = errors.New("ioa: state has wrong type for automaton")

// StatesEqual reports whether two states are equal, via fingerprints.
func StatesEqual(a, b State) bool {
	return a.Fingerprint() == b.Fingerprint()
}

// StatesEquivalent reports whether two states are related by the
// message-independence equivalence ≡. Both must implement EquivState.
func StatesEquivalent(a, b State) (bool, error) {
	ea, ok := a.(EquivState)
	if !ok {
		return false, fmt.Errorf("%w: %T does not support equivalence", ErrBadState, a)
	}
	eb, ok := b.(EquivState)
	if !ok {
		return false, fmt.Errorf("%w: %T does not support equivalence", ErrBadState, b)
	}
	return ea.EquivFingerprint() == eb.EquivFingerprint(), nil
}

// CheckEnabled verifies that action a appears among Enabled(s) of
// automaton m, comparing actions for exact equality. It is a helper for
// Step implementations and the replay drivers.
func CheckEnabled(m Automaton, s State, a Action) error {
	for _, e := range m.Enabled(s) {
		if e == a {
			return nil
		}
	}
	return fmt.Errorf("%w: %s in state %s of %s", ErrNotEnabled, a, s.Fingerprint(), m.Name())
}
