package ioa

import (
	"encoding/json"
	"fmt"
	"strings"
)

// JSON wire form of actions and packets. Observability traces embed
// violating schedules in events (internal/obs), and cmd/obsreport
// decodes them back to render message sequence charts — so Action gets
// a stable, compact JSON codec: kinds by their paper names, directions
// as the "t,r" superscript, and the parameter fields only when the kind
// carries them.

// packetJSON mirrors Packet with omitempty control fields.
type packetJSON struct {
	ID      uint64 `json:"id"`
	Header  string `json:"header,omitempty"`
	Payload string `json:"payload,omitempty"`
}

// actionJSON is the wire form of Action.
type actionJSON struct {
	Kind string      `json:"kind"`
	Dir  string      `json:"dir,omitempty"`
	Msg  string      `json:"msg,omitempty"`
	Pkt  *packetJSON `json:"pkt,omitempty"`
	Name string      `json:"name,omitempty"`
}

// MarshalJSON encodes the action in its wire form.
func (a Action) MarshalJSON() ([]byte, error) {
	out := actionJSON{Kind: a.Kind.String(), Name: a.Name}
	if a.Kind != KindInternal && a.Kind != KindInvalid {
		out.Dir = a.Dir.String()
	}
	switch a.Kind {
	case KindSendMsg, KindReceiveMsg:
		out.Msg = string(a.Msg)
	case KindSendPkt, KindReceivePkt:
		out.Pkt = &packetJSON{ID: a.Pkt.ID, Header: string(a.Pkt.Header), Payload: string(a.Pkt.Payload)}
	case KindInternal:
		// Internal actions (channel losses) carry the lost packet.
		if a.Pkt != (Packet{}) {
			out.Pkt = &packetJSON{ID: a.Pkt.ID, Header: string(a.Pkt.Header), Payload: string(a.Pkt.Payload)}
		}
	}
	return json.Marshal(out)
}

// kindByName is the inverse of kindNames.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// parseDir parses the "from,to" wire form of a direction.
func parseDir(s string) (Dir, error) {
	from, to, ok := strings.Cut(s, ",")
	if !ok || from == "" || to == "" {
		return Dir{}, fmt.Errorf("ioa: bad direction %q", s)
	}
	return Dir{From: Station(from), To: Station(to)}, nil
}

// UnmarshalJSON decodes the wire form produced by MarshalJSON.
func (a *Action) UnmarshalJSON(b []byte) error {
	var in actionJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	kind, ok := kindByName[in.Kind]
	if !ok {
		return fmt.Errorf("ioa: unknown action kind %q", in.Kind)
	}
	out := Action{Kind: kind, Msg: Message(in.Msg), Name: in.Name}
	if in.Dir != "" {
		d, err := parseDir(in.Dir)
		if err != nil {
			return err
		}
		out.Dir = d
	}
	if in.Pkt != nil {
		out.Pkt = Packet{ID: in.Pkt.ID, Header: Header(in.Pkt.Header), Payload: Message(in.Pkt.Payload)}
	}
	*a = out
	return nil
}
