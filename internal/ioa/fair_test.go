package ioa

import (
	"strings"
	"testing"
)

func TestIsFairFinite(t *testing.T) {
	comp, err := Compose("pair", echo{}, sink{})
	if err != nil {
		t.Fatal(err)
	}
	// Quiescent: fair.
	exec := NewExecution(comp.Start())
	if err := IsFairFinite(comp, exec); err != nil {
		t.Errorf("quiescent execution judged unfair: %v", err)
	}
	// After a send_msg the echo class is enabled: not fair if we stop.
	st, err := comp.Step(comp.Start(), SendMsg(TR, "a"))
	if err != nil {
		t.Fatal(err)
	}
	exec.Append(SendMsg(TR, "a"), st)
	err = IsFairFinite(comp, exec)
	if err == nil {
		t.Fatal("execution with an enabled class judged fair")
	}
	if !strings.Contains(err.Error(), "echo/echo") {
		t.Errorf("error should name the starved class: %v", err)
	}
	// Performing the enabled action restores fairness.
	st2, err := comp.Step(st, ReceiveMsg(TR, "a"))
	if err != nil {
		t.Fatal(err)
	}
	exec.Append(ReceiveMsg(TR, "a"), st2)
	if err := IsFairFinite(comp, exec); err != nil {
		t.Errorf("quiescent extension judged unfair: %v", err)
	}
}

func TestEnabledClasses(t *testing.T) {
	comp, err := Compose("pair", echo{}, sink{})
	if err != nil {
		t.Fatal(err)
	}
	if cls := EnabledClasses(comp, comp.Start()); len(cls) != 0 {
		t.Errorf("start state has enabled classes: %v", cls)
	}
	st, err := comp.Step(comp.Start(), SendMsg(TR, "a"))
	if err != nil {
		t.Fatal(err)
	}
	cls := EnabledClasses(comp, st)
	if len(cls) != 1 || cls[0] != "echo/echo" {
		t.Errorf("EnabledClasses = %v", cls)
	}
}
