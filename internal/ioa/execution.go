package ioa

import (
	"fmt"
	"strings"
)

// Schedule is a finite sequence of actions: the paper's sched(α) for an
// execution α, or a schedule of a schedule module.
type Schedule []Action

// Project returns β|S: the subsequence of actions belonging to the
// signature (the paper's β|A for an automaton A with signature S).
func (s Schedule) Project(sig Signature) Schedule {
	var out Schedule
	for _, a := range s {
		if sig.Contains(a) {
			out = append(out, a)
		}
	}
	return out
}

// Behavior returns beh(β) with respect to the signature: the subsequence
// of external actions.
func (s Schedule) Behavior(sig Signature) Schedule {
	var out Schedule
	for _, a := range s {
		if sig.ContainsExternal(a) {
			out = append(out, a)
		}
	}
	return out
}

// Inputs returns the subsequence of actions that are inputs of the
// signature: β|in(S).
func (s Schedule) Inputs(sig Signature) Schedule {
	var out Schedule
	for _, a := range s {
		if sig.ContainsInput(a) {
			out = append(out, a)
		}
	}
	return out
}

// Clone returns a copy of the schedule; schedules handed across package
// boundaries are copied per the style guide.
func (s Schedule) Clone() Schedule {
	return append(Schedule(nil), s...)
}

// String renders the schedule space-separated.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ")
}

// Execution is a finite execution fragment s0 π1 s1 ... πn sn of an
// automaton: alternating states and actions with len(States) ==
// len(Actions)+1. An Execution beginning with the automaton's start state
// is an execution proper (Section 2.2).
type Execution struct {
	States  []State
	Actions []Action
}

// NewExecution returns an execution fragment consisting of the single
// state s.
func NewExecution(s State) *Execution {
	return &Execution{States: []State{s}}
}

// Len returns the number of steps (actions) in the execution.
func (e *Execution) Len() int { return len(e.Actions) }

// Last returns the final state.
func (e *Execution) Last() State { return e.States[len(e.States)-1] }

// Append extends the execution with one step (a, s).
func (e *Execution) Append(a Action, s State) {
	e.Actions = append(e.Actions, a)
	e.States = append(e.States, s)
}

// Schedule returns sched(e): the action subsequence.
func (e *Execution) Schedule() Schedule {
	return Schedule(e.Actions).Clone()
}

// Behavior returns beh(e) with respect to the given signature.
func (e *Execution) Behavior(sig Signature) Schedule {
	return Schedule(e.Actions).Behavior(sig)
}

// Validate checks that the execution is structurally well formed and that
// every step (s_i, π_{i+1}, s_{i+1}) is a step of m, by replaying it.
func (e *Execution) Validate(m Automaton) error {
	if len(e.States) != len(e.Actions)+1 {
		return fmt.Errorf("ioa: execution has %d states for %d actions", len(e.States), len(e.Actions))
	}
	for i, a := range e.Actions {
		next, err := m.Step(e.States[i], a)
		if err != nil {
			return fmt.Errorf("ioa: step %d (%s): %w", i+1, a, err)
		}
		if !StatesEqual(next, e.States[i+1]) {
			return fmt.Errorf("ioa: step %d (%s): recorded successor %s differs from computed %s",
				i+1, a, e.States[i+1].Fingerprint(), next.Fingerprint())
		}
	}
	return nil
}

// StateAt returns the state after the first k steps (StateAt(0) is the
// initial state of the fragment). It panics if k is out of range, as this
// always indicates a caller bug.
func (e *Execution) StateAt(k int) State { return e.States[k] }

// Prefix returns the execution consisting of the first k steps. The
// returned execution shares no backing arrays with e.
func (e *Execution) Prefix(k int) *Execution {
	return &Execution{
		States:  append([]State(nil), e.States[:k+1]...),
		Actions: append([]Action(nil), e.Actions[:k]...),
	}
}
