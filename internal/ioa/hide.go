package ioa

// Hidden is hide_Φ(A): identical to the wrapped automaton except that the
// output patterns in Φ are reclassified as internal (Section 2.6). In the
// paper's data-link correctness definition, Φ is the set of send_pkt and
// receive_pkt actions of the composed system.
type Hidden struct {
	inner Automaton
	sig   Signature
}

var _ Automaton = (*Hidden)(nil)

// Hide wraps a with the output patterns phi made internal.
func Hide(a Automaton, phi []Pattern) *Hidden {
	return &Hidden{inner: a, sig: a.Signature().Hide(phi)}
}

// HidePacketActions returns the Φ used throughout the paper: all send_pkt
// and receive_pkt patterns in both directions.
func HidePacketActions() []Pattern {
	return []Pattern{
		{Kind: KindSendPkt, Dir: TR},
		{Kind: KindReceivePkt, Dir: TR},
		{Kind: KindSendPkt, Dir: RT},
		{Kind: KindReceivePkt, Dir: RT},
	}
}

// Name returns the inner automaton's name.
func (h *Hidden) Name() string { return h.inner.Name() }

// Signature returns the hidden signature.
func (h *Hidden) Signature() Signature { return h.sig }

// Inner returns the wrapped automaton.
func (h *Hidden) Inner() Automaton { return h.inner }

// Start returns the inner start state.
func (h *Hidden) Start() State { return h.inner.Start() }

// Step delegates to the inner automaton; hiding changes only the signature.
func (h *Hidden) Step(s State, a Action) (State, error) { return h.inner.Step(s, a) }

// Enabled delegates to the inner automaton.
func (h *Hidden) Enabled(s State) []Action { return h.inner.Enabled(s) }

// ClassOf delegates to the inner automaton.
func (h *Hidden) ClassOf(a Action) Class { return h.inner.ClassOf(a) }

// Classes delegates to the inner automaton.
func (h *Hidden) Classes() []Class { return h.inner.Classes() }
