package ioa

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Pattern denotes a (possibly infinite) family of actions sharing a kind
// and direction: e.g. all send_pkt^{t,r}(p) for p ∈ P. Internal actions are
// matched by Name. Signatures are finite sets of patterns even though the
// underlying action sets are infinite (parameterised by messages/packets).
type Pattern struct {
	Kind Kind
	Dir  Dir
	// Name matches internal actions exactly. An empty Name with
	// KindInternal matches no action (internal actions are always named).
	Name string
}

// Matches reports whether action a belongs to the pattern's family.
func (p Pattern) Matches(a Action) bool {
	if p.Kind != a.Kind {
		return false
	}
	if p.Kind == KindInternal {
		return p.Name != "" && p.Name == a.Name
	}
	return p.Dir == a.Dir
}

// String renders the pattern in the paper's notation with the parameter
// elided, e.g. "send_pkt^{t,r}".
func (p Pattern) String() string {
	if p.Kind == KindInternal {
		return fmt.Sprintf("internal(%s)", p.Name)
	}
	return fmt.Sprintf("%s^{%s}", p.Kind, p.Dir)
}

// Signature is an action signature S = (in(S), out(S), int(S)): an ordered
// triple of pairwise-disjoint action families (Section 2.1).
type Signature struct {
	In  []Pattern
	Out []Pattern
	Int []Pattern
}

// ErrIncompatible is returned when composing signatures that are not
// strongly compatible (Section 2.5.1).
var ErrIncompatible = errors.New("ioa: signatures not strongly compatible")

func containsPattern(ps []Pattern, q Pattern) bool {
	for _, p := range ps {
		if p == q {
			return true
		}
	}
	return false
}

func matchAny(ps []Pattern, a Action) bool {
	for _, p := range ps {
		if p.Matches(a) {
			return true
		}
	}
	return false
}

// ContainsInput reports whether a is an input action of the signature.
func (s Signature) ContainsInput(a Action) bool { return matchAny(s.In, a) }

// ContainsOutput reports whether a is an output action of the signature.
func (s Signature) ContainsOutput(a Action) bool { return matchAny(s.Out, a) }

// ContainsInternal reports whether a is an internal action of the signature.
func (s Signature) ContainsInternal(a Action) bool { return matchAny(s.Int, a) }

// Contains reports whether a ∈ acts(S).
func (s Signature) Contains(a Action) bool {
	return s.ContainsInput(a) || s.ContainsOutput(a) || s.ContainsInternal(a)
}

// ContainsExternal reports whether a ∈ ext(S) = in(S) ∪ out(S).
func (s Signature) ContainsExternal(a Action) bool {
	return s.ContainsInput(a) || s.ContainsOutput(a)
}

// ContainsLocal reports whether a ∈ local(S) = out(S) ∪ int(S), the
// locally-controlled actions.
func (s Signature) ContainsLocal(a Action) bool {
	return s.ContainsOutput(a) || s.ContainsInternal(a)
}

// Validate checks that the three component sets are pairwise disjoint.
func (s Signature) Validate() error {
	for _, p := range s.In {
		if containsPattern(s.Out, p) || containsPattern(s.Int, p) {
			return fmt.Errorf("ioa: pattern %s appears in more than one signature component", p)
		}
	}
	for _, p := range s.Out {
		if containsPattern(s.Int, p) {
			return fmt.Errorf("ioa: pattern %s appears in more than one signature component", p)
		}
	}
	return nil
}

// External reports whether the signature has no internal actions.
func (s Signature) External() bool { return len(s.Int) == 0 }

// CompatibleSignatures reports whether the signatures are strongly
// compatible: no shared outputs, and no internal action of one appearing in
// another (Section 2.5.1). The third condition (no action in infinitely
// many signatures) is vacuous for finite collections.
func CompatibleSignatures(sigs ...Signature) error {
	for i := range sigs {
		for j := range sigs {
			if i == j {
				continue
			}
			for _, p := range sigs[i].Out {
				if containsPattern(sigs[j].Out, p) {
					return fmt.Errorf("%w: output %s shared by two components", ErrIncompatible, p)
				}
			}
			for _, p := range sigs[i].Int {
				if containsPattern(sigs[j].In, p) || containsPattern(sigs[j].Out, p) || containsPattern(sigs[j].Int, p) {
					return fmt.Errorf("%w: internal action %s appears in another component", ErrIncompatible, p)
				}
			}
		}
	}
	return nil
}

// ComposeSignatures returns the composition of strongly compatible
// signatures: outputs are the union of component outputs, internal actions
// the union of component internals, and inputs are component inputs that
// are outputs of no component (Section 2.5.1).
func ComposeSignatures(sigs ...Signature) (Signature, error) {
	if err := CompatibleSignatures(sigs...); err != nil {
		return Signature{}, err
	}
	var out, in, internal []Pattern
	for _, s := range sigs {
		for _, p := range s.Out {
			if !containsPattern(out, p) {
				out = append(out, p)
			}
		}
		for _, p := range s.Int {
			if !containsPattern(internal, p) {
				internal = append(internal, p)
			}
		}
	}
	for _, s := range sigs {
		for _, p := range s.In {
			if !containsPattern(out, p) && !containsPattern(in, p) {
				in = append(in, p)
			}
		}
	}
	return Signature{In: in, Out: out, Int: internal}, nil
}

// Hide returns the signature with the given output patterns reclassified
// as internal (Section 2.6). Patterns not currently outputs are ignored.
func (s Signature) Hide(phi []Pattern) Signature {
	res := Signature{
		In:  append([]Pattern(nil), s.In...),
		Int: append([]Pattern(nil), s.Int...),
	}
	for _, p := range s.Out {
		if containsPattern(phi, p) {
			res.Int = append(res.Int, p)
		} else {
			res.Out = append(res.Out, p)
		}
	}
	return res
}

// String renders the signature's components sorted for stable output.
func (s Signature) String() string {
	part := func(label string, ps []Pattern) string {
		names := make([]string, len(ps))
		for i, p := range ps {
			names[i] = p.String()
		}
		sort.Strings(names)
		return label + ": {" + strings.Join(names, ", ") + "}"
	}
	return part("in", s.In) + " " + part("out", s.Out) + " " + part("int", s.Int)
}
