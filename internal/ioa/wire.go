package ioa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file provides a canonical binary encoding of Action for the
// transport backend's wire frames. The json.go codec is for durable,
// human-greppable artifacts; this one is for bytes on a socket, where
// the decoder must be strict and accepted encodings must re-encode
// bit-identically (the fuzzing invariant of the frame layer).
//
// The layout is deliberately fixed-width — no varints, no optional
// fields: a one-byte kind, the direction, the message, the internal
// name, and the packet (ID, header, payload), always all present, with
// every string length-prefixed by a big-endian uint32. Canonicity is
// then structural: each byte string parses to at most one Action, and
// each Action has exactly one encoding.

// ErrWire reports a malformed binary action encoding.
var ErrWire = errors.New("ioa: malformed wire action")

// maxWireString bounds each string field in a decoded action,
// protecting the reader from absurd length prefixes on corrupt input.
const maxWireString = 1 << 20

// AppendWireAction appends the canonical binary encoding of a to dst.
func AppendWireAction(dst []byte, a Action) []byte {
	dst = append(dst, byte(a.Kind))
	dst = appendWireString(dst, string(a.Dir.From))
	dst = appendWireString(dst, string(a.Dir.To))
	dst = appendWireString(dst, string(a.Msg))
	dst = appendWireString(dst, a.Name)
	dst = binary.BigEndian.AppendUint64(dst, a.Pkt.ID)
	dst = appendWireString(dst, string(a.Pkt.Header))
	dst = appendWireString(dst, string(a.Pkt.Payload))
	return dst
}

// DecodeWireAction decodes one action from the front of b, returning
// the action and the number of bytes consumed. Any structural problem —
// truncation, an unknown kind, an oversize length prefix — yields an
// error wrapping ErrWire.
func DecodeWireAction(b []byte) (Action, int, error) {
	var a Action
	if len(b) < 1 {
		return a, 0, fmt.Errorf("%w: empty input", ErrWire)
	}
	k := Kind(b[0])
	if k == KindInvalid || k > KindInternal {
		return a, 0, fmt.Errorf("%w: unknown kind %d", ErrWire, b[0])
	}
	a.Kind = k
	off := 1
	read := func() (string, error) {
		s, n, err := decodeWireString(b[off:])
		off += n
		return s, err
	}
	from, err := read()
	if err != nil {
		return a, 0, err
	}
	to, err := read()
	if err != nil {
		return a, 0, err
	}
	a.Dir = Dir{From: Station(from), To: Station(to)}
	msg, err := read()
	if err != nil {
		return a, 0, err
	}
	a.Msg = Message(msg)
	if a.Name, err = read(); err != nil {
		return a, 0, err
	}
	if len(b[off:]) < 8 {
		return a, 0, fmt.Errorf("%w: truncated packet id", ErrWire)
	}
	a.Pkt.ID = binary.BigEndian.Uint64(b[off:])
	off += 8
	hdr, err := read()
	if err != nil {
		return a, 0, err
	}
	a.Pkt.Header = Header(hdr)
	payload, err := read()
	if err != nil {
		return a, 0, err
	}
	a.Pkt.Payload = Message(payload)
	return a, off, nil
}

func appendWireString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func decodeWireString(b []byte) (string, int, error) {
	if len(b) < 4 {
		return "", len(b), fmt.Errorf("%w: truncated string length", ErrWire)
	}
	n := binary.BigEndian.Uint32(b)
	if n > maxWireString {
		return "", 4, fmt.Errorf("%w: string length %d exceeds limit", ErrWire, n)
	}
	if uint32(len(b)-4) < n {
		return "", len(b), fmt.Errorf("%w: truncated string body", ErrWire)
	}
	return string(b[4 : 4+n]), 4 + int(n), nil
}
