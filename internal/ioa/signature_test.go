package ioa

import (
	"errors"
	"strings"
	"testing"
)

func txSig() Signature {
	return Signature{
		In: []Pattern{
			{Kind: KindSendMsg, Dir: TR},
			{Kind: KindReceivePkt, Dir: RT},
			{Kind: KindWake, Dir: TR},
			{Kind: KindFail, Dir: TR},
			{Kind: KindCrash, Dir: TR},
		},
		Out: []Pattern{{Kind: KindSendPkt, Dir: TR}},
	}
}

func chanSig(d Dir) Signature {
	return Signature{
		In: []Pattern{
			{Kind: KindSendPkt, Dir: d},
			{Kind: KindWake, Dir: d},
			{Kind: KindFail, Dir: d},
			{Kind: KindCrash, Dir: d},
		},
		Out: []Pattern{{Kind: KindReceivePkt, Dir: d}},
	}
}

func TestPatternMatches(t *testing.T) {
	tests := []struct {
		name    string
		pattern Pattern
		action  Action
		want    bool
	}{
		{"kind+dir match", Pattern{Kind: KindSendPkt, Dir: TR}, SendPkt(TR, Packet{ID: 1}), true},
		{"wrong dir", Pattern{Kind: KindSendPkt, Dir: TR}, SendPkt(RT, Packet{ID: 1}), false},
		{"wrong kind", Pattern{Kind: KindSendPkt, Dir: TR}, ReceivePkt(TR, Packet{ID: 1}), false},
		{"parameter ignored", Pattern{Kind: KindSendMsg, Dir: TR}, SendMsg(TR, "anything"), true},
		{"internal by name", Pattern{Kind: KindInternal, Name: "x"}, Internal("x"), true},
		{"internal wrong name", Pattern{Kind: KindInternal, Name: "x"}, Internal("y"), false},
		{"internal empty name matches nothing", Pattern{Kind: KindInternal}, Internal(""), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.pattern.Matches(tt.action); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSignatureMembership(t *testing.T) {
	sig := txSig()
	if !sig.ContainsInput(SendMsg(TR, "m")) {
		t.Error("send_msg should be an input")
	}
	if !sig.ContainsOutput(SendPkt(TR, Packet{})) {
		t.Error("send_pkt should be an output")
	}
	if sig.Contains(ReceiveMsg(TR, "m")) {
		t.Error("receive_msg is not in the transmitter signature")
	}
	if !sig.ContainsExternal(SendPkt(TR, Packet{})) {
		t.Error("outputs are external")
	}
	if !sig.ContainsLocal(SendPkt(TR, Packet{})) {
		t.Error("outputs are locally controlled")
	}
	if sig.ContainsLocal(SendMsg(TR, "m")) {
		t.Error("inputs are not locally controlled")
	}
	if !sig.External() {
		t.Error("transmitter signature has no internal actions")
	}
}

func TestSignatureValidateDisjoint(t *testing.T) {
	bad := Signature{
		In:  []Pattern{{Kind: KindWake, Dir: TR}},
		Out: []Pattern{{Kind: KindWake, Dir: TR}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("expected disjointness violation")
	}
	if err := txSig().Validate(); err != nil {
		t.Errorf("valid signature rejected: %v", err)
	}
}

func TestCompatibleSignaturesSharedOutput(t *testing.T) {
	a := Signature{Out: []Pattern{{Kind: KindSendPkt, Dir: TR}}}
	b := Signature{Out: []Pattern{{Kind: KindSendPkt, Dir: TR}}}
	err := CompatibleSignatures(a, b)
	if !errors.Is(err, ErrIncompatible) {
		t.Errorf("expected ErrIncompatible, got %v", err)
	}
}

func TestCompatibleSignaturesInternalLeak(t *testing.T) {
	a := Signature{Int: []Pattern{{Kind: KindInternal, Name: "x"}}}
	b := Signature{In: []Pattern{{Kind: KindInternal, Name: "x"}}}
	if err := CompatibleSignatures(a, b); !errors.Is(err, ErrIncompatible) {
		t.Errorf("expected ErrIncompatible, got %v", err)
	}
}

func TestComposeSignatures(t *testing.T) {
	// Transmitter composed with its outgoing channel: send_pkt^{t,r} is an
	// output of the transmitter and an input of the channel, so it must be
	// an output (not an input) of the composition.
	comp, err := ComposeSignatures(txSig(), chanSig(TR))
	if err != nil {
		t.Fatalf("ComposeSignatures: %v", err)
	}
	sp := SendPkt(TR, Packet{})
	if !comp.ContainsOutput(sp) {
		t.Error("send_pkt^{t,r} should be an output of the composition")
	}
	if comp.ContainsInput(sp) {
		t.Error("send_pkt^{t,r} must not also be an input of the composition")
	}
	if !comp.ContainsInput(SendMsg(TR, "m")) {
		t.Error("send_msg^{t,r} should remain an input")
	}
	if !comp.ContainsOutput(ReceivePkt(TR, Packet{})) {
		t.Error("receive_pkt^{t,r} should be an output of the composition")
	}
	// wake^{t,r} is an input of both components and an output of neither.
	if !comp.ContainsInput(Wake(TR)) {
		t.Error("wake^{t,r} should be an input of the composition")
	}
}

func TestHide(t *testing.T) {
	comp, err := ComposeSignatures(txSig(), chanSig(TR))
	if err != nil {
		t.Fatalf("ComposeSignatures: %v", err)
	}
	hidden := comp.Hide(HidePacketActions())
	sp := SendPkt(TR, Packet{})
	rp := ReceivePkt(TR, Packet{})
	if hidden.ContainsOutput(sp) || hidden.ContainsOutput(rp) {
		t.Error("packet actions should no longer be outputs after hiding")
	}
	if !hidden.ContainsInternal(sp) || !hidden.ContainsInternal(rp) {
		t.Error("packet actions should be internal after hiding")
	}
	if !hidden.ContainsInput(SendMsg(TR, "m")) {
		t.Error("hiding must not affect inputs")
	}
}

func TestHideIgnoresNonOutputs(t *testing.T) {
	sig := txSig()
	hidden := sig.Hide([]Pattern{{Kind: KindReceiveMsg, Dir: TR}})
	if len(hidden.Int) != 0 {
		t.Error("hiding a non-output pattern must not create internal actions")
	}
	if len(hidden.Out) != len(sig.Out) {
		t.Error("outputs should be unchanged")
	}
}

func TestSignatureString(t *testing.T) {
	s := txSig().String()
	for _, want := range []string{"send_msg^{t,r}", "send_pkt^{t,r}", "in:", "out:", "int:"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
