package ioa

import (
	"fmt"
	"testing"
)

// echoState is the state of the test automaton: messages accepted but not
// yet echoed.
type echoState struct {
	queue []Message
}

func (s echoState) Fingerprint() string { return fmt.Sprintf("echo%v", s.queue) }

// echo is a toy automaton: it inputs send_msg^{t,r}(m) and outputs
// receive_msg^{t,r}(m), FIFO. It exercises composition mechanics without
// channels.
type echo struct{}

func (echo) Name() string { return "echo" }

func (echo) Signature() Signature {
	return Signature{
		In:  []Pattern{{Kind: KindSendMsg, Dir: TR}},
		Out: []Pattern{{Kind: KindReceiveMsg, Dir: TR}},
	}
}

func (echo) Start() State { return echoState{} }

func (echo) Step(st State, a Action) (State, error) {
	s, ok := st.(echoState)
	if !ok {
		return nil, ErrBadState
	}
	switch a.Kind {
	case KindSendMsg:
		return echoState{queue: append(append([]Message(nil), s.queue...), a.Msg)}, nil
	case KindReceiveMsg:
		if len(s.queue) == 0 || s.queue[0] != a.Msg {
			return nil, ErrNotEnabled
		}
		return echoState{queue: append([]Message(nil), s.queue[1:]...)}, nil
	default:
		return nil, ErrNotInSignature
	}
}

func (echo) Enabled(st State) []Action {
	s, ok := st.(echoState)
	if !ok || len(s.queue) == 0 {
		return nil
	}
	return []Action{ReceiveMsg(TR, s.queue[0])}
}

func (echo) ClassOf(Action) Class { return "echo" }

func (echo) Classes() []Class { return []Class{"echo"} }

// sink counts receive_msg^{t,r} inputs.
type sinkState struct{ n int }

func (s sinkState) Fingerprint() string { return fmt.Sprintf("sink%d", s.n) }

type sink struct{}

func (sink) Name() string { return "sink" }
func (sink) Signature() Signature {
	return Signature{In: []Pattern{{Kind: KindReceiveMsg, Dir: TR}}}
}
func (sink) Start() State { return sinkState{} }
func (sink) Step(st State, a Action) (State, error) {
	s, ok := st.(sinkState)
	if !ok {
		return nil, ErrBadState
	}
	if a.Kind != KindReceiveMsg {
		return nil, ErrNotInSignature
	}
	return sinkState{n: s.n + 1}, nil
}
func (sink) Enabled(State) []Action { return nil }
func (sink) ClassOf(Action) Class   { return "" }
func (sink) Classes() []Class       { return nil }

func TestComposeEchoSink(t *testing.T) {
	comp, err := Compose("pair", echo{}, sink{})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	st := comp.Start()
	st, err = comp.Step(st, SendMsg(TR, "a"))
	if err != nil {
		t.Fatalf("Step(send_msg): %v", err)
	}
	enabled := comp.Enabled(st)
	if len(enabled) != 1 || enabled[0] != ReceiveMsg(TR, "a") {
		t.Fatalf("Enabled = %v, want [receive_msg(a)]", enabled)
	}
	// receive_msg is shared: output of echo, input of sink; one step must
	// advance both components.
	st, err = comp.Step(st, ReceiveMsg(TR, "a"))
	if err != nil {
		t.Fatalf("Step(receive_msg): %v", err)
	}
	es, err := comp.ComponentState(st, "echo")
	if err != nil {
		t.Fatal(err)
	}
	if len(es.(echoState).queue) != 0 {
		t.Error("echo queue should be empty after the shared step")
	}
	ss, err := comp.ComponentState(st, "sink")
	if err != nil {
		t.Fatal(err)
	}
	if ss.(sinkState).n != 1 {
		t.Errorf("sink count = %d, want 1", ss.(sinkState).n)
	}
}

func TestCompositionSignatureClassification(t *testing.T) {
	comp, err := Compose("pair", echo{}, sink{})
	if err != nil {
		t.Fatal(err)
	}
	sig := comp.Signature()
	if !sig.ContainsOutput(ReceiveMsg(TR, "x")) {
		t.Error("receive_msg should be an output of the composition")
	}
	if sig.ContainsInput(ReceiveMsg(TR, "x")) {
		t.Error("receive_msg should not be an input of the composition")
	}
	if !sig.ContainsInput(SendMsg(TR, "x")) {
		t.Error("send_msg should be an input of the composition")
	}
}

func TestCompositionClassQualification(t *testing.T) {
	comp, err := Compose("pair", echo{}, sink{})
	if err != nil {
		t.Fatal(err)
	}
	if got := comp.ClassOf(ReceiveMsg(TR, "x")); got != "echo/echo" {
		t.Errorf("ClassOf = %q, want echo/echo", got)
	}
	classes := comp.Classes()
	if len(classes) != 1 || classes[0] != "echo/echo" {
		t.Errorf("Classes = %v", classes)
	}
}

func TestCompositionStepErrors(t *testing.T) {
	comp, err := Compose("pair", echo{}, sink{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comp.Step(comp.Start(), Wake(TR)); err == nil {
		t.Error("expected error for action outside the composed signature")
	}
	if _, err := comp.Step(sinkState{}, SendMsg(TR, "x")); err == nil {
		t.Error("expected error for a non-composite state")
	}
	if _, err := comp.Step(comp.Start(), ReceiveMsg(TR, "ghost")); err == nil {
		t.Error("expected error for a non-enabled output")
	}
}

func TestComposeIncompatible(t *testing.T) {
	if _, err := Compose("dup", echo{}, echo{}); err == nil {
		t.Error("two automata sharing an output must not compose")
	}
}

func TestWithComponentState(t *testing.T) {
	comp, err := Compose("pair", echo{}, sink{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := comp.WithComponentState(comp.Start(), "sink", sinkState{n: 42})
	if err != nil {
		t.Fatal(err)
	}
	got, err := comp.ComponentState(st, "sink")
	if err != nil {
		t.Fatal(err)
	}
	if got.(sinkState).n != 42 {
		t.Errorf("component state = %v, want n=42", got)
	}
	if _, err := comp.WithComponentState(comp.Start(), "nope", sinkState{}); err == nil {
		t.Error("expected error for unknown component")
	}
}

func TestProjectExecution(t *testing.T) {
	comp, err := Compose("pair", echo{}, sink{})
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecution(comp.Start())
	st := comp.Start()
	for _, a := range []Action{SendMsg(TR, "a"), SendMsg(TR, "b"), ReceiveMsg(TR, "a")} {
		st, err = comp.Step(st, a)
		if err != nil {
			t.Fatal(err)
		}
		exec.Append(a, st)
	}
	proj, err := comp.ProjectExecution(exec, "sink")
	if err != nil {
		t.Fatal(err)
	}
	// sink participates only in the receive_msg step.
	if proj.Len() != 1 || proj.Actions[0] != ReceiveMsg(TR, "a") {
		t.Errorf("projection = %v", proj.Actions)
	}
	if proj.Last().(sinkState).n != 1 {
		t.Errorf("projected final state = %v", proj.Last())
	}
	full, err := comp.ProjectExecution(exec, "echo")
	if err != nil {
		t.Fatal(err)
	}
	if full.Len() != 3 {
		t.Errorf("echo participates in all steps, got %d", full.Len())
	}
}

func TestHiddenDelegation(t *testing.T) {
	comp, err := Compose("pair", echo{}, sink{})
	if err != nil {
		t.Fatal(err)
	}
	h := Hide(comp, []Pattern{{Kind: KindReceiveMsg, Dir: TR}})
	if h.Signature().ContainsOutput(ReceiveMsg(TR, "x")) {
		t.Error("hidden output still classified as output")
	}
	if !h.Signature().ContainsInternal(ReceiveMsg(TR, "x")) {
		t.Error("hidden output should be internal")
	}
	st, err := h.Step(h.Start(), SendMsg(TR, "a"))
	if err != nil {
		t.Fatalf("Hidden.Step: %v", err)
	}
	if len(h.Enabled(st)) != 1 {
		t.Error("Hidden.Enabled should delegate")
	}
	if h.Name() != comp.Name() || h.Inner() != Automaton(comp) {
		t.Error("Hidden accessors should delegate")
	}
	if len(h.Classes()) != len(comp.Classes()) {
		t.Error("Hidden.Classes should delegate")
	}
	if h.ClassOf(ReceiveMsg(TR, "x")) != comp.ClassOf(ReceiveMsg(TR, "x")) {
		t.Error("Hidden.ClassOf should delegate")
	}
}

func TestExecutionValidate(t *testing.T) {
	comp, err := Compose("pair", echo{}, sink{})
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecution(comp.Start())
	st, err := comp.Step(comp.Start(), SendMsg(TR, "a"))
	if err != nil {
		t.Fatal(err)
	}
	exec.Append(SendMsg(TR, "a"), st)
	if err := exec.Validate(comp); err != nil {
		t.Errorf("valid execution rejected: %v", err)
	}
	// Corrupt the recorded successor.
	bad := &Execution{States: []State{comp.Start(), comp.Start()}, Actions: []Action{SendMsg(TR, "a")}}
	if err := bad.Validate(comp); err == nil {
		t.Error("expected validation failure for wrong successor state")
	}
	short := &Execution{States: []State{comp.Start()}, Actions: []Action{SendMsg(TR, "a")}}
	if err := short.Validate(comp); err == nil {
		t.Error("expected structural validation failure")
	}
}

func TestSchedulePrefixBehaviorProjection(t *testing.T) {
	sched := Schedule{SendMsg(TR, "a"), Wake(TR), ReceiveMsg(TR, "a")}
	sig := echo{}.Signature()
	proj := sched.Project(sig)
	if len(proj) != 2 {
		t.Errorf("Project kept %d actions, want 2 (wake is foreign)", len(proj))
	}
	beh := sched.Behavior(sig)
	if len(beh) != 2 {
		t.Errorf("Behavior kept %d actions, want 2", len(beh))
	}
	ins := sched.Inputs(sig)
	if len(ins) != 1 || ins[0].Kind != KindSendMsg {
		t.Errorf("Inputs = %v", ins)
	}
}

func TestExecutionPrefix(t *testing.T) {
	comp, err := Compose("pair", echo{}, sink{})
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecution(comp.Start())
	st := comp.Start()
	for _, m := range []Message{"a", "b"} {
		st, err = comp.Step(st, SendMsg(TR, m))
		if err != nil {
			t.Fatal(err)
		}
		exec.Append(SendMsg(TR, m), st)
	}
	p := exec.Prefix(1)
	if p.Len() != 1 {
		t.Fatalf("Prefix(1).Len() = %d", p.Len())
	}
	// Mutating the prefix must not affect the original.
	p.Actions[0] = Wake(TR)
	if exec.Actions[0].Kind != KindSendMsg {
		t.Error("Prefix aliases the original execution")
	}
}

func TestStatesEquivalentErrors(t *testing.T) {
	if _, err := StatesEquivalent(echoState{}, echoState{}); err == nil {
		t.Error("echoState does not implement EquivState; expected error")
	}
}

func TestCompositeStateEquivFingerprint(t *testing.T) {
	// Components without EquivState fall back to the exact fingerprint.
	inner := echoState{queue: []Message{"x"}}
	cs := CompositeState{Parts: []State{inner}}
	if cs.EquivFingerprint() != "⟨"+inner.Fingerprint()+"⟩" {
		t.Errorf("EquivFingerprint fallback mismatch: %s", cs.EquivFingerprint())
	}
}
