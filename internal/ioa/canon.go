package ioa

import "strconv"

// Canon canonicalises analysis labels — payload tokens and packet IDs —
// to first-use order while a fingerprint is being built. Two states whose
// canonical fingerprints agree are related by a bijective renaming of
// payloads and packet IDs; for message-independent protocols (the paper's
// §5.3.1 equivariance, machine-checked by dlvet's msgindep analyzer) such
// a renaming is an automorphism of the transition system, so deduping on
// canonical fingerprints explores one representative per orbit.
//
// A Canon is scoped to ONE state's fingerprint: callers Reset it, thread
// it through every component's canonical fingerprint in a fixed component
// order, and use the resulting key. Indices are assigned deterministically
// by first encounter, which makes equal canonical keys imply a consistent
// bijection across all components of the same composite state.
//
// Headers are never canonicalised: protocols branch on them, so renaming
// headers is not an automorphism.
type Canon struct {
	msgs map[Message]int
	ids  map[uint64]int
	// assigned counts fresh index assignments (for the
	// explore.symmetry_renames counter).
	assigned int64
}

// NewCanon returns an empty Canon ready for use.
func NewCanon() *Canon {
	return &Canon{msgs: make(map[Message]int), ids: make(map[uint64]int)}
}

// Reset clears the token tables for a new state; the assignment counter
// keeps accumulating across states so callers can sample it per level.
func (c *Canon) Reset() {
	clear(c.msgs)
	clear(c.ids)
}

// Assigned returns the total number of fresh canonical indices assigned
// since the Canon was created.
func (c *Canon) Assigned() int64 { return c.assigned }

// MsgIndex returns the canonical index of a payload token, assigning the
// next free index on first use. The empty payload is a fixed point of any
// renaming (it is the absence of a payload, not a token) and always maps
// to -1.
func (c *Canon) MsgIndex(m Message) int {
	if m == "" {
		return -1
	}
	if i, ok := c.msgs[m]; ok {
		return i
	}
	i := len(c.msgs)
	c.msgs[m] = i
	c.assigned++
	return i
}

// PktIDIndex returns the canonical index of a packet ID, assigning the
// next free index on first use. ID 0 (the unlabelled packet) maps to -1.
func (c *Canon) PktIDIndex(id uint64) int {
	if id == 0 {
		return -1
	}
	if i, ok := c.ids[id]; ok {
		return i
	}
	i := len(c.ids)
	c.ids[id] = i
	c.assigned++
	return i
}

// AppendMsg appends the canonical rendering of a payload token: "µ<idx>",
// or "·" for the empty payload.
func (c *Canon) AppendMsg(dst []byte, m Message) []byte {
	i := c.MsgIndex(m)
	if i < 0 {
		return append(dst, "·"...)
	}
	dst = append(dst, "µ"...)
	return strconv.AppendInt(dst, int64(i), 10)
}

// AppendPktID appends the canonical rendering of a packet ID: "#<idx>",
// or "#·" for the unlabelled ID 0.
func (c *Canon) AppendPktID(dst []byte, id uint64) []byte {
	i := c.PktIDIndex(id)
	if i < 0 {
		return append(dst, "#·"...)
	}
	dst = append(dst, '#')
	return strconv.AppendInt(dst, int64(i), 10)
}

// CanonFingerprinter is implemented by states that can render a canonical
// fingerprint: structurally identical to AppendFingerprint, but with
// payload tokens and packet IDs replaced by their canonical indices drawn
// from c. Implementations must visit tokens in a deterministic order that
// depends only on the state's structure (queue positions, sorted keys),
// never on raw token values of tokens not yet in c — see
// internal/explore's reduction notes for the soundness argument.
type CanonFingerprinter interface {
	AppendCanonFingerprint(dst []byte, c *Canon) []byte
}

// AppendCanonFingerprint appends s's canonical fingerprint when s
// implements CanonFingerprinter and c is non-nil, and falls back to the
// exact fingerprint otherwise. The fallback is always sound — raw tokens
// only distinguish states a renaming would merge — it just reduces less.
func AppendCanonFingerprint(dst []byte, s State, c *Canon) []byte {
	if cf, ok := s.(CanonFingerprinter); ok && c != nil {
		return cf.AppendCanonFingerprint(dst, c)
	}
	return AppendFingerprint(dst, s)
}
