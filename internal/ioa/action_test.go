package ioa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStationOther(t *testing.T) {
	if T.Other() != R {
		t.Errorf("T.Other() = %s, want %s", T.Other(), R)
	}
	if R.Other() != T {
		t.Errorf("R.Other() = %s, want %s", R.Other(), T)
	}
}

func TestDirRev(t *testing.T) {
	if TR.Rev() != RT {
		t.Errorf("TR.Rev() = %v, want %v", TR.Rev(), RT)
	}
	if RT.Rev() != TR {
		t.Errorf("RT.Rev() = %v, want %v", RT.Rev(), TR)
	}
	if TR.Rev().Rev() != TR {
		t.Error("Rev is not an involution")
	}
}

func TestDirString(t *testing.T) {
	if got := TR.String(); got != "t,r" {
		t.Errorf("TR.String() = %q, want %q", got, "t,r")
	}
	if got := RT.String(); got != "r,t" {
		t.Errorf("RT.String() = %q, want %q", got, "r,t")
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindSendMsg, "send_msg"},
		{KindReceiveMsg, "receive_msg"},
		{KindSendPkt, "send_pkt"},
		{KindReceivePkt, "receive_pkt"},
		{KindWake, "wake"},
		{KindFail, "fail"},
		{KindCrash, "crash"},
		{KindInternal, "internal"},
		{KindInvalid, "invalid"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestActionConstructors(t *testing.T) {
	pkt := Packet{ID: 7, Header: "data/0", Payload: "hello"}
	tests := []struct {
		name     string
		action   Action
		wantKind Kind
		wantDir  Dir
	}{
		{"SendMsg", SendMsg(TR, "m"), KindSendMsg, TR},
		{"ReceiveMsg", ReceiveMsg(TR, "m"), KindReceiveMsg, TR},
		{"SendPkt", SendPkt(TR, pkt), KindSendPkt, TR},
		{"ReceivePkt", ReceivePkt(RT, pkt), KindReceivePkt, RT},
		{"Wake", Wake(TR), KindWake, TR},
		{"Fail", Fail(RT), KindFail, RT},
		{"Crash", Crash(TR), KindCrash, TR},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.action.Kind != tt.wantKind {
				t.Errorf("kind = %v, want %v", tt.action.Kind, tt.wantKind)
			}
			if tt.action.Dir != tt.wantDir {
				t.Errorf("dir = %v, want %v", tt.action.Dir, tt.wantDir)
			}
			if !tt.action.IsLayerAction() {
				t.Error("expected a layer action")
			}
		})
	}
}

func TestInternalAction(t *testing.T) {
	a := Internal("lose^{t,r}")
	if a.Kind != KindInternal || a.Name != "lose^{t,r}" {
		t.Errorf("Internal() = %+v", a)
	}
	if a.IsLayerAction() {
		t.Error("internal actions are not layer actions")
	}
}

func TestActionString(t *testing.T) {
	tests := []struct {
		action Action
		want   string
	}{
		{SendMsg(TR, "m1"), `send_msg^{t,r}("m1")`},
		{Wake(RT), "wake^{r,t}"},
		{SendPkt(TR, Packet{ID: 3, Header: "ack/1"}), "send_pkt^{t,r}(#3[ack/1])"},
		{ReceivePkt(TR, Packet{ID: 4, Header: "data/0", Payload: "x"}), "receive_pkt^{t,r}(#4[data/0|x])"},
		{Internal("tick"), "internal(tick)"},
		{Action{}, "invalid-action"},
	}
	for _, tt := range tests {
		if got := tt.action.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestPacketString(t *testing.T) {
	if got := (Packet{ID: 1, Header: "syn/0"}).String(); got != "#1[syn/0]" {
		t.Errorf("control packet String() = %q", got)
	}
	if got := (Packet{ID: 2, Header: "data/1", Payload: "m"}).String(); got != "#2[data/1|m]" {
		t.Errorf("data packet String() = %q", got)
	}
}

func TestFormatSchedule(t *testing.T) {
	out := FormatSchedule([]Action{Wake(TR), SendMsg(TR, "a")})
	if !strings.Contains(out, "1  wake^{t,r}") || !strings.Contains(out, `2  send_msg^{t,r}("a")`) {
		t.Errorf("FormatSchedule output unexpected:\n%s", out)
	}
}

func TestStationOtherInvolution(t *testing.T) {
	f := func(b bool) bool {
		s := T
		if b {
			s = R
		}
		return s.Other().Other() == s && s.Other() != s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
