package ioa

import (
	"fmt"
	"strings"
)

// CompositeState is the state of a composition: a vector of component
// states (Section 2.5.2). It is exported so that adversaries and tests can
// inspect per-component states of a composed system.
type CompositeState struct {
	Parts []State
}

// Fingerprint joins the component fingerprints.
func (c CompositeState) Fingerprint() string { return string(c.AppendFingerprint(nil)) }

// AppendFingerprint appends the joined component fingerprints to dst,
// taking each component's allocation-free fast path when available.
func (c CompositeState) AppendFingerprint(dst []byte) []byte {
	dst = append(dst, "⟨"...)
	for i, s := range c.Parts {
		if i > 0 {
			dst = append(dst, " ∥ "...)
		}
		dst = AppendFingerprint(dst, s)
	}
	return append(dst, "⟩"...)
}

// EquivFingerprint joins the component equivalence fingerprints; a
// component that does not implement EquivState contributes its exact
// fingerprint.
func (c CompositeState) EquivFingerprint() string {
	parts := make([]string, len(c.Parts))
	for i, s := range c.Parts {
		if es, ok := s.(EquivState); ok {
			parts[i] = es.EquivFingerprint()
		} else {
			parts[i] = s.Fingerprint()
		}
	}
	return "⟨" + strings.Join(parts, " ∥ ") + "⟩"
}

var (
	_ State               = CompositeState{}
	_ EquivState          = CompositeState{}
	_ AppendFingerprinter = CompositeState{}
)

// Composition is the composition A = Π A_i of a strongly compatible
// collection of automata (Section 2.5.2). Each step of the composition
// consists of every component having the action in its signature
// performing it concurrently.
type Composition struct {
	name       string
	components []Automaton
	sig        Signature
}

var _ Automaton = (*Composition)(nil)

// Compose builds the composition of the given automata. It returns
// ErrIncompatible (wrapped) if the signatures are not strongly compatible.
func Compose(name string, components ...Automaton) (*Composition, error) {
	sigs := make([]Signature, len(components))
	for i, c := range components {
		sigs[i] = c.Signature()
		if err := sigs[i].Validate(); err != nil {
			return nil, fmt.Errorf("ioa: component %s: %w", c.Name(), err)
		}
	}
	sig, err := ComposeSignatures(sigs...)
	if err != nil {
		return nil, err
	}
	return &Composition{name: name, components: components, sig: sig}, nil
}

// Name returns the composition's name.
func (c *Composition) Name() string { return c.name }

// Signature returns the composed signature.
func (c *Composition) Signature() Signature { return c.sig }

// Components returns the component automata, in composition order.
func (c *Composition) Components() []Automaton {
	return append([]Automaton(nil), c.components...)
}

// ComponentIndex returns the index of the component with the given name,
// or -1 if absent.
func (c *Composition) ComponentIndex(name string) int {
	for i, m := range c.components {
		if m.Name() == name {
			return i
		}
	}
	return -1
}

// ComponentState extracts the named component's state from a composite
// state: the paper's s[i].
func (c *Composition) ComponentState(s State, name string) (State, error) {
	cs, ok := s.(CompositeState)
	if !ok {
		return nil, fmt.Errorf("%w: want CompositeState, got %T", ErrBadState, s)
	}
	i := c.ComponentIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("ioa: no component named %q in %s", name, c.name)
	}
	return cs.Parts[i], nil
}

// WithComponentState returns a copy of composite state s with the named
// component's state replaced. It is used by adversaries that perform the
// paper's "surgery" on channel states (Lemmas 6.3 and 6.6).
func (c *Composition) WithComponentState(s State, name string, part State) (State, error) {
	cs, ok := s.(CompositeState)
	if !ok {
		return nil, fmt.Errorf("%w: want CompositeState, got %T", ErrBadState, s)
	}
	i := c.ComponentIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("ioa: no component named %q in %s", name, c.name)
	}
	parts := append([]State(nil), cs.Parts...)
	parts[i] = part
	return CompositeState{Parts: parts}, nil
}

// Start returns the vector of component start states.
func (c *Composition) Start() State {
	parts := make([]State, len(c.components))
	for i, m := range c.components {
		parts[i] = m.Start()
	}
	return CompositeState{Parts: parts}
}

// Step performs action a: every component with a in its signature steps on
// it; the others are unchanged.
func (c *Composition) Step(s State, a Action) (State, error) {
	cs, ok := s.(CompositeState)
	if !ok {
		return nil, fmt.Errorf("%w: want CompositeState, got %T", ErrBadState, s)
	}
	if len(cs.Parts) != len(c.components) {
		return nil, fmt.Errorf("%w: %d parts for %d components", ErrBadState, len(cs.Parts), len(c.components))
	}
	if !c.sig.Contains(a) {
		return nil, fmt.Errorf("%w: %s not in signature of %s", ErrNotInSignature, a, c.name)
	}
	parts := append([]State(nil), cs.Parts...)
	for i, m := range c.components {
		if !m.Signature().Contains(a) {
			continue
		}
		next, err := m.Step(cs.Parts[i], a)
		if err != nil {
			return nil, fmt.Errorf("ioa: component %s: %w", m.Name(), err)
		}
		parts[i] = next
	}
	return CompositeState{Parts: parts}, nil
}

// Enabled returns the union of the components' enabled locally-controlled
// actions. Because at most one component controls each action (strong
// compatibility) and all components are input-enabled, every returned
// action is enabled in the composition.
func (c *Composition) Enabled(s State) []Action {
	cs, ok := s.(CompositeState)
	if !ok {
		return nil
	}
	var out []Action
	for i, m := range c.components {
		out = append(out, m.Enabled(cs.Parts[i])...)
	}
	return out
}

// ClassOf returns the fairness class of a locally-controlled action,
// qualified by the owning component's name. part(A) is the union of the
// component partitions (Section 2.5.2).
func (c *Composition) ClassOf(a Action) Class {
	for _, m := range c.components {
		if m.Signature().ContainsLocal(a) {
			return Class(m.Name()) + "/" + m.ClassOf(a)
		}
	}
	return ""
}

// Classes returns the union of component classes, qualified by component
// name.
func (c *Composition) Classes() []Class {
	var out []Class
	for _, m := range c.components {
		for _, cl := range m.Classes() {
			out = append(out, Class(m.Name())+"/"+cl)
		}
	}
	return out
}

// ProjectExecution returns α|A_i for the named component: the component's
// execution obtained by deleting steps on actions outside its signature
// and projecting the remaining states (Lemma 2.2).
func (c *Composition) ProjectExecution(e *Execution, name string) (*Execution, error) {
	i := c.ComponentIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("ioa: no component named %q in %s", name, c.name)
	}
	m := c.components[i]
	first, ok := e.States[0].(CompositeState)
	if !ok {
		return nil, fmt.Errorf("%w: want CompositeState, got %T", ErrBadState, e.States[0])
	}
	proj := NewExecution(first.Parts[i])
	for k, a := range e.Actions {
		if !m.Signature().Contains(a) {
			continue
		}
		next, ok := e.States[k+1].(CompositeState)
		if !ok {
			return nil, fmt.Errorf("%w: want CompositeState, got %T", ErrBadState, e.States[k+1])
		}
		proj.Append(a, next.Parts[i])
	}
	return proj, nil
}
