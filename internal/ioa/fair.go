package ioa

import "fmt"

// IsFairFinite decides whether a finite execution of m is fair (Section
// 2.2): a finite execution is fair exactly when no action of any class of
// part(A) is enabled in its final state — i.e. the system has quiesced.
// (For infinite executions fairness requires infinitely many turns per
// continuously-enabled class; the sim package's round-robin scheduler
// realises that on prefixes, and this predicate certifies the finite
// case.) It returns nil for a fair execution and an error naming an
// enabled class otherwise.
func IsFairFinite(m Automaton, e *Execution) error {
	enabled := m.Enabled(e.Last())
	if len(enabled) == 0 {
		return nil
	}
	a := enabled[0]
	return fmt.Errorf("ioa: finite execution of %s is not fair: class %q still enabled (e.g. %s)",
		m.Name(), m.ClassOf(a), a)
}

// EnabledClasses returns the fairness classes with at least one enabled
// action in state s, deduplicated in first-seen order.
func EnabledClasses(m Automaton, s State) []Class {
	var out []Class
	seen := map[Class]bool{}
	for _, a := range m.Enabled(s) {
		c := m.ClassOf(a)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
