package ioa

import (
	"errors"
	"reflect"
	"testing"
)

var wireSamples = []Action{
	SendMsg(TR, "m1"),
	ReceiveMsg(TR, "m1"),
	SendPkt(TR, Packet{ID: 7, Header: "data/1", Payload: "m2"}),
	ReceivePkt(RT, Packet{ID: 12, Header: "ack/0"}),
	Wake(TR),
	Fail(RT),
	Crash(TR),
	Internal("lose^{t,r}"),
	{Kind: KindSendMsg, Dir: Dir{From: "alpha", To: "beta"}, Msg: "µ-テスト"},
	{}, // invalid actions are rejected by decode; encode still works
}

func TestWireActionRoundTrip(t *testing.T) {
	for _, a := range wireSamples {
		if a.Kind == KindInvalid {
			continue
		}
		enc := AppendWireAction(nil, a)
		got, n, err := DecodeWireAction(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", a, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %s consumed %d of %d bytes", a, n, len(enc))
		}
		if !reflect.DeepEqual(got, a) {
			t.Fatalf("round trip changed action: %#v != %#v", got, a)
		}
		// Canonicity: the decoded action re-encodes bit-identically.
		if re := AppendWireAction(nil, got); string(re) != string(enc) {
			t.Fatalf("re-encode of %s differs", a)
		}
	}
}

func TestWireActionRejectsTruncation(t *testing.T) {
	enc := AppendWireAction(nil, SendPkt(TR, Packet{ID: 9, Header: "data/0", Payload: "m1"}))
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeWireAction(enc[:cut]); !errors.Is(err, ErrWire) {
			t.Fatalf("truncation at %d: want ErrWire, got %v", cut, err)
		}
	}
}

func TestWireActionRejectsBadKindAndOversizeLength(t *testing.T) {
	if _, _, err := DecodeWireAction([]byte{0x00}); !errors.Is(err, ErrWire) {
		t.Fatalf("invalid kind: want ErrWire, got %v", err)
	}
	if _, _, err := DecodeWireAction([]byte{0xff}); !errors.Is(err, ErrWire) {
		t.Fatalf("unknown kind: want ErrWire, got %v", err)
	}
	// A length prefix far beyond maxWireString must be rejected before
	// any allocation is attempted.
	b := []byte{byte(KindWake), 0xff, 0xff, 0xff, 0xff}
	if _, _, err := DecodeWireAction(b); !errors.Is(err, ErrWire) {
		t.Fatalf("oversize length: want ErrWire, got %v", err)
	}
}
