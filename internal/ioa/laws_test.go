package ioa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genAction derives a pseudo-random layer action from a seed byte.
func genAction(b byte) Action {
	dirs := []Dir{TR, RT}
	d := dirs[int(b)%2]
	switch (b / 2) % 7 {
	case 0:
		return SendMsg(d, Message(string(rune('a'+b%5))))
	case 1:
		return ReceiveMsg(d, Message(string(rune('a'+b%5))))
	case 2:
		return SendPkt(d, Packet{ID: uint64(b), Header: Header(string(rune('p' + b%3)))})
	case 3:
		return ReceivePkt(d, Packet{ID: uint64(b), Header: Header(string(rune('p' + b%3)))})
	case 4:
		return Wake(d)
	case 5:
		return Fail(d)
	default:
		return Crash(d)
	}
}

func genSchedule(seed int64, n int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	out := make(Schedule, n)
	for i := range out {
		out[i] = genAction(byte(rng.Intn(256)))
	}
	return out
}

// TestProjectionIdempotent: β|A|A = β|A.
func TestProjectionIdempotent(t *testing.T) {
	sig := txSig()
	f := func(seed int64, n uint8) bool {
		beta := genSchedule(seed, int(n)%40)
		once := beta.Project(sig)
		twice := once.Project(sig)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBehaviorSubsetOfProjection: beh(β) w.r.t. a signature is the
// external sub-subsequence of β|sig.
func TestBehaviorSubsetOfProjection(t *testing.T) {
	sig := txSig()
	f := func(seed int64, n uint8) bool {
		beta := genSchedule(seed, int(n)%40)
		beh := beta.Behavior(sig)
		proj := beta.Project(sig)
		// beh must equal proj filtered to external actions.
		var expect Schedule
		for _, a := range proj {
			if sig.ContainsExternal(a) {
				expect = append(expect, a)
			}
		}
		if len(beh) != len(expect) {
			return false
		}
		for i := range beh {
			if beh[i] != expect[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestHideIdempotent: hiding the same patterns twice equals hiding once.
func TestHideIdempotent(t *testing.T) {
	comp, err := ComposeSignatures(txSig(), chanSig(TR))
	if err != nil {
		t.Fatal(err)
	}
	phi := HidePacketActions()
	once := comp.Hide(phi)
	twice := once.Hide(phi)
	if once.String() != twice.String() {
		t.Errorf("hide not idempotent:\n%s\n%s", once, twice)
	}
}

// TestHidePreservesActs: hiding never changes acts(S), only the
// classification of actions.
func TestHidePreservesActs(t *testing.T) {
	comp, err := ComposeSignatures(txSig(), chanSig(TR))
	if err != nil {
		t.Fatal(err)
	}
	hidden := comp.Hide(HidePacketActions())
	f := func(b byte) bool {
		a := genAction(b)
		return comp.Contains(a) == hidden.Contains(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

// TestCompositionActsIsUnion: an action is in acts(ΠSᵢ) iff it is in some
// acts(Sᵢ).
func TestCompositionActsIsUnion(t *testing.T) {
	s1, s2 := txSig(), chanSig(TR)
	comp, err := ComposeSignatures(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(b byte) bool {
		a := genAction(b)
		return comp.Contains(a) == (s1.Contains(a) || s2.Contains(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

// TestCompositionOutputsAreUnionOfOutputs and inputs are inputs-minus-
// outputs (Section 2.5.1).
func TestCompositionClassification(t *testing.T) {
	s1, s2 := txSig(), chanSig(TR)
	comp, err := ComposeSignatures(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(b byte) bool {
		a := genAction(b)
		wantOut := s1.ContainsOutput(a) || s2.ContainsOutput(a)
		wantIn := (s1.ContainsInput(a) || s2.ContainsInput(a)) && !wantOut
		return comp.ContainsOutput(a) == wantOut && comp.ContainsInput(a) == wantIn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Error(err)
	}
}

// TestCloneIndependence: mutating a clone never affects the original.
func TestCloneIndependence(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		beta := genSchedule(seed, int(n)%20+1)
		clone := beta.Clone()
		clone[0] = Wake(TR)
		return beta[0] == genSchedule(seed, int(n)%20+1)[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
