// Package ioa implements the input/output automaton model of Lynch and
// Tuttle [LT87] as used by Lynch, Mansour and Fekete in "The Data Link
// Layer: Two Impossibility Results" (MIT/LCS/TM-355, 1988).
//
// The package provides actions and action signatures (Section 2.1 of the
// paper), automata (Section 2.2), executions, schedules and behaviors,
// composition (Section 2.5) and output hiding (Section 2.6). The action
// alphabet is specialised to the paper's physical-layer and data-link-layer
// actions: send_msg, receive_msg, send_pkt, receive_pkt, wake, fail and
// crash, all parameterised by a direction (an ordered pair of station
// names), plus named internal actions.
package ioa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Station names an endpoint of a link. The paper uses t (transmitting
// station) and r (receiving station).
type Station string

// Canonical station names used throughout the repository.
const (
	T Station = "t"
	R Station = "r"
)

// Other returns the opposite endpoint: the paper's x̄ with x ∈ {t, r}.
func (s Station) Other() Station {
	if s == T {
		return R
	}
	return T
}

// Dir is an ordered pair (from, to) of stations. Layer actions are
// superscripted with a direction in the paper, e.g. send_pkt^{t,r}.
type Dir struct {
	From, To Station
}

// TR is the direction from the transmitting to the receiving station.
var TR = Dir{From: T, To: R}

// RT is the direction from the receiving to the transmitting station.
var RT = Dir{From: R, To: T}

// Rev returns the reverse direction.
func (d Dir) Rev() Dir { return Dir{From: d.To, To: d.From} }

// String renders the direction as the paper's superscript, e.g. "t,r".
func (d Dir) String() string { return string(d.From) + "," + string(d.To) }

// Kind identifies which of the paper's action families an Action belongs
// to. The zero Kind is invalid so that uninitialised actions are caught.
type Kind uint8

// Action kinds, covering the data link layer interface (send_msg,
// receive_msg), the physical layer interface (send_pkt, receive_pkt), the
// medium status notifications (wake, fail), host crashes (crash) and named
// internal actions.
const (
	KindInvalid Kind = iota
	KindSendMsg
	KindReceiveMsg
	KindSendPkt
	KindReceivePkt
	KindWake
	KindFail
	KindCrash
	KindInternal
)

var kindNames = map[Kind]string{
	KindInvalid:    "invalid",
	KindSendMsg:    "send_msg",
	KindReceiveMsg: "receive_msg",
	KindSendPkt:    "send_pkt",
	KindReceivePkt: "receive_pkt",
	KindWake:       "wake",
	KindFail:       "fail",
	KindCrash:      "crash",
	KindInternal:   "internal",
}

// String returns the paper's name for the action family.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Message is an element of the paper's fixed infinite alphabet M. Strings
// give an effectively infinite alphabet; fresh messages are minted by
// never reusing a string.
type Message string

// Header is the information in a packet that a message-independent data
// link protocol is allowed to inspect. Packets with equal headers are
// equivalent under the paper's packet equivalence relation (Section 5.3.1,
// footnote 4): headers(A, ≡) is the set of distinct Header values the
// protocol can emit.
type Header string

// Packet is an element of the paper's fixed alphabet P. Property (PL2)
// requires each packet sent on a channel to be unique; the ID field is the
// unique label the paper describes as "included in the model for ease of
// analysis" — it does not correspond to bits on the transmission medium,
// and protocols must not branch on it. Header carries the protocol's
// control information; Payload carries the (possibly empty) message.
type Packet struct {
	// ID uniquely identifies this packet among all packets ever sent in an
	// execution. It exists purely so that (PL2)-(PL4) can be stated and
	// checked; message-independent protocols ignore it.
	ID uint64
	// Header is the bounded- or unbounded-header control information.
	Header Header
	// Payload is the message carried by a data packet; empty for pure
	// control packets such as acknowledgements.
	Payload Message
}

// String renders the packet as id:header/payload.
func (p Packet) String() string { return string(p.AppendText(nil)) }

// AppendText appends the String rendering to dst without allocating
// intermediate strings; it is the fingerprint fast path for states that
// embed packets.
func (p Packet) AppendText(dst []byte) []byte {
	dst = append(dst, '#')
	dst = strconv.AppendUint(dst, p.ID, 10)
	dst = append(dst, '[')
	dst = append(dst, p.Header...)
	if p.Payload != "" {
		dst = append(dst, '|')
		dst = append(dst, p.Payload...)
	}
	return append(dst, ']')
}

// Action is a particular action of the universal action set. Exactly one
// of Msg, Pkt or Name is meaningful, depending on Kind; wake, fail and
// crash carry only a direction.
type Action struct {
	Kind Kind
	// Dir is the direction superscript. For crash it follows the paper's
	// convention: crash^{t,r} reports a transmitting-station crash and
	// crash^{r,t} a receiving-station crash.
	Dir Dir
	// Msg is the message parameter of send_msg and receive_msg actions.
	Msg Message
	// Pkt is the packet parameter of send_pkt and receive_pkt actions.
	Pkt Packet
	// Name qualifies internal actions; it should be prefixed with the
	// owning automaton's name to keep composed signatures disjoint.
	Name string
}

// SendMsg returns the data-link input action send_msg^{d}(m).
func SendMsg(d Dir, m Message) Action { return Action{Kind: KindSendMsg, Dir: d, Msg: m} }

// ReceiveMsg returns the data-link output action receive_msg^{d}(m).
func ReceiveMsg(d Dir, m Message) Action { return Action{Kind: KindReceiveMsg, Dir: d, Msg: m} }

// SendPkt returns the physical-layer input action send_pkt^{d}(p).
func SendPkt(d Dir, p Packet) Action { return Action{Kind: KindSendPkt, Dir: d, Pkt: p} }

// ReceivePkt returns the physical-layer output action receive_pkt^{d}(p).
func ReceivePkt(d Dir, p Packet) Action { return Action{Kind: KindReceivePkt, Dir: d, Pkt: p} }

// Wake returns the medium-active notification wake^{d}.
func Wake(d Dir) Action { return Action{Kind: KindWake, Dir: d} }

// Fail returns the medium-inactive notification fail^{d}.
func Fail(d Dir) Action { return Action{Kind: KindFail, Dir: d} }

// Crash returns the host-crash notification crash^{d}.
func Crash(d Dir) Action { return Action{Kind: KindCrash, Dir: d} }

// Internal returns a named internal action.
func Internal(name string) Action { return Action{Kind: KindInternal, Name: name} }

// String renders the action in the paper's notation.
func (a Action) String() string {
	switch a.Kind {
	case KindSendMsg, KindReceiveMsg:
		return fmt.Sprintf("%s^{%s}(%q)", a.Kind, a.Dir, string(a.Msg))
	case KindSendPkt, KindReceivePkt:
		return fmt.Sprintf("%s^{%s}(%s)", a.Kind, a.Dir, a.Pkt)
	case KindWake, KindFail, KindCrash:
		return fmt.Sprintf("%s^{%s}", a.Kind, a.Dir)
	case KindInternal:
		return fmt.Sprintf("internal(%s)", a.Name)
	default:
		return "invalid-action"
	}
}

// IsLayerAction reports whether the action belongs to the physical or data
// link layer alphabets (i.e. is not internal or invalid).
func (a Action) IsLayerAction() bool {
	return a.Kind >= KindSendMsg && a.Kind <= KindCrash
}

// CompareActions is a canonical total order on actions: by kind, then
// direction, then name, then packet ID, then packet header/payload, then
// message. It exists so that schedulers and harnesses can make seed-stable
// choices among enabled actions without depending on the order in which
// automata happen to enumerate them (which Go map iteration would
// otherwise be free to scramble). Packet IDs order before headers so that
// labelled packets (everything in transit) sort in send order — the order
// a FIFO channel's Enabled enumerates deliveries in; unlabelled protocol
// outputs (ID zero, pre-relabelling) fall back to the header. It reports
// -1, 0 or +1 in the manner of strings.Compare.
func CompareActions(a, b Action) int {
	switch {
	case a.Kind != b.Kind:
		return cmpUint8(uint8(a.Kind), uint8(b.Kind))
	case a.Dir.From != b.Dir.From:
		return strings.Compare(string(a.Dir.From), string(b.Dir.From))
	case a.Dir.To != b.Dir.To:
		return strings.Compare(string(a.Dir.To), string(b.Dir.To))
	case a.Name != b.Name:
		return strings.Compare(a.Name, b.Name)
	case a.Pkt.ID != b.Pkt.ID:
		if a.Pkt.ID < b.Pkt.ID {
			return -1
		}
		return 1
	case a.Pkt.Header != b.Pkt.Header:
		return strings.Compare(string(a.Pkt.Header), string(b.Pkt.Header))
	case a.Pkt.Payload != b.Pkt.Payload:
		return strings.Compare(string(a.Pkt.Payload), string(b.Pkt.Payload))
	default:
		return strings.Compare(string(a.Msg), string(b.Msg))
	}
}

func cmpUint8(a, b uint8) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

// SortActions sorts a slice of actions into the CompareActions order.
func SortActions(as []Action) {
	sort.Slice(as, func(i, j int) bool { return CompareActions(as[i], as[j]) < 0 })
}

// FormatSchedule renders a sequence of actions one per line, for human
// inspection of constructed executions.
func FormatSchedule(actions []Action) string {
	var b strings.Builder
	for i, a := range actions {
		fmt.Fprintf(&b, "%4d  %s\n", i+1, a)
	}
	return b.String()
}
