package protocol

import (
	"fmt"
	"testing"

	"repro/internal/ioa"
)

// TestSRWindowBoundaries probes the receiver's window arithmetic at the
// exact seams: the last in-window slot, the first out-of-window slot, and
// the oldest below-window slot. With n=8, w=4 and expect=0 the windows
// are accept [0,4), re-ack [4,8) mapped as "below" via wrap — the w ≤ n/2
// condition is what keeps the two disjoint.
func TestSRWindowBoundaries(t *testing.T) {
	p := NewSelectiveRepeat(8, 4)
	rx := p.R
	st := step(t, rx, rx.Start(), ioa.Wake(ioa.RT))
	// Header 3 = expect+w-1: last acceptable slot — buffered.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: DataHeader(3), Payload: "m3"}))
	if got := st.(srRState); len(got.buffer) != 1 {
		t.Fatalf("last in-window slot rejected: %+v", got)
	}
	// Header 4 = expect+w: first slot outside the receive window. With
	// expect=0 it maps to the below-window range (diff=4, n-diff=4 ≤ w) —
	// re-acked as a presumed old duplicate, never buffered.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 2, Header: DataHeader(4), Payload: "m4"}))
	got := st.(srRState)
	if len(got.buffer) != 1 {
		t.Fatalf("out-of-window slot buffered: %+v", got)
	}
	if got.acks[len(got.acks)-1] != AckHeader(4) {
		t.Fatalf("boundary slot not re-acked: %+v", got)
	}
}

// TestGBNAckDiffBoundaries checks the transmitter's cumulative-ack window
// arithmetic at diff = 0, diff = outstanding, and diff = outstanding+1.
func TestGBNAckDiffBoundaries(t *testing.T) {
	p := NewGoBackN(8, 4)
	tx := p.T
	st := step(t, tx, tx.Start(), ioa.Wake(ioa.TR))
	for i := 0; i < 3; i++ {
		st = step(t, tx, st, ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", i))))
	}
	// diff = 3 = outstanding: all three acknowledged.
	st2 := step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 1, Header: AckHeader(3)}))
	if got := st2.(gbnTState); got.base != 3 || len(got.queue) != 0 {
		t.Fatalf("diff=outstanding: %+v", got)
	}
	// diff = 4 > outstanding (only 3 queued): ignored.
	st3 := step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 2, Header: AckHeader(4)}))
	if !ioa.StatesEqual(st, st3) {
		t.Error("ack beyond outstanding accepted")
	}
	// diff = 0: duplicate ack, ignored.
	st4 := step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 3, Header: AckHeader(0)}))
	if !ioa.StatesEqual(st, st4) {
		t.Error("duplicate ack accepted")
	}
}

// TestGBNWindowNeverExceedsW: whatever inputs arrive, the transmitter
// never offers more than w distinct sends.
func TestGBNWindowNeverExceedsW(t *testing.T) {
	p := NewGoBackN(4, 3)
	tx := p.T
	st := step(t, tx, tx.Start(), ioa.Wake(ioa.TR))
	for i := 0; i < 10; i++ {
		st = step(t, tx, st, ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("q%d", i))))
		if got := len(tx.Enabled(st)); got > 3 {
			t.Fatalf("window exposed %d sends, cap is 3", got)
		}
	}
}

// TestNVEpochNeverRegresses: receiver epochs only move to the epoch of
// the latest syn; stale data from any other epoch is dead.
func TestNVEpochNeverRegresses(t *testing.T) {
	p := NewNonVolatile()
	rx := p.R
	st := step(t, rx, rx.Start(), ioa.Wake(ioa.RT))
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: SynHeader(2)}))
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 2, Header: EpochDataHeader(2, 0), Payload: "a"}))
	// A syn for a *different* epoch (even numerically smaller — FIFO makes
	// this impossible live, but the automaton must be input-enabled)
	// switches and resets the sequence space.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 3, Header: SynHeader(1)}))
	got := st.(nvRState)
	if got.epoch != 1 || got.expect != 0 {
		t.Fatalf("epoch switch wrong: %+v", got)
	}
	// Data for the abandoned epoch 2: ignored.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 4, Header: EpochDataHeader(2, 1), Payload: "b"}))
	if got := st.(nvRState); len(got.pending) != 1 {
		t.Fatalf("stale-epoch data accepted: %+v", got)
	}
}

// TestFragBoundaryIndices: fragment indices outside [0, f) are foreign
// headers and must be ignored without panicking.
func TestFragBoundaryIndices(t *testing.T) {
	p := NewFragmenting(4, 2)
	rx := p.R
	st := step(t, rx, rx.Start(), ioa.Wake(ioa.RT))
	for _, h := range []ioa.Header{
		fragHeader(0, 2),              // fragment index = f
		fragHeader(0, -1),             // negative index
		ioa.Header("data/0"),          // wrong arity
		ioa.Header("data/0/1/2"),      // wrong arity
		ioa.Header("frag-nonsense/0"), // unknown tag
	} {
		st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 99, Header: h, Payload: "x"}))
	}
	if got := st.(fragRState); len(got.parts) != 0 && len(got.pending) != 0 {
		t.Fatalf("foreign headers accepted: %+v", got)
	}
	// Transmitter side: a fack with out-of-range index is ignored.
	tx := p.T
	ts := step(t, tx, tx.Start(), ioa.Wake(ioa.TR))
	ts = step(t, tx, ts, ioa.SendMsg(ioa.TR, "m"))
	ts2 := step(t, tx, ts, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 1, Header: fackHeader(0, 5)}))
	if !ioa.StatesEqual(ts, ts2) {
		t.Error("out-of-range fack accepted")
	}
}
