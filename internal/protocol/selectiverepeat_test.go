package protocol

import (
	"fmt"
	"testing"

	"repro/internal/ioa"
)

func TestSRTransmitterIndividualAcks(t *testing.T) {
	p := NewSelectiveRepeat(8, 4)
	tx := p.T
	st := tx.Start()
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	for i := 0; i < 4; i++ {
		st = step(t, tx, st, ioa.SendMsg(ioa.TR, ioa.Message(fmt.Sprintf("m%d", i))))
	}
	if got := len(tx.Enabled(st)); got != 4 {
		t.Fatalf("window should expose 4 sends, got %d", got)
	}
	// Ack the SECOND slot: the window must not slide yet, and slot 1 must
	// leave the retransmission set.
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 1, Header: AckHeader(1)}))
	got := st.(srTState)
	if got.base != 0 {
		t.Fatalf("window slid on an out-of-order ack: base=%d", got.base)
	}
	enabled := tx.Enabled(st)
	if len(enabled) != 3 {
		t.Fatalf("acked slot still retransmitted: %v", enabled)
	}
	for _, a := range enabled {
		if a.Pkt.Header == DataHeader(1) {
			t.Fatal("acked slot 1 still in the retransmission set")
		}
	}
	// Now ack slot 0: the window slides over BOTH acknowledged slots.
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 2, Header: AckHeader(0)}))
	got = st.(srTState)
	if got.base != 2 || len(got.queue) != 2 {
		t.Fatalf("window should slide over the acked prefix: base=%d queue=%d", got.base, len(got.queue))
	}
	// Duplicate ack for an already-slid slot: ignored.
	st2 := step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 3, Header: AckHeader(0)}))
	if !ioa.StatesEqual(st, st2) {
		t.Error("stale ack changed state")
	}
}

func TestSRReceiverBuffersOutOfOrder(t *testing.T) {
	p := NewSelectiveRepeat(8, 4)
	rx := p.R
	st := rx.Start()
	st = step(t, rx, st, ioa.Wake(ioa.RT))
	// Sequence 2 arrives first (a gap): buffered, acked, not delivered.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: DataHeader(2), Payload: "m2"}))
	got := st.(srRState)
	if len(got.pending) != 0 || got.expect != 0 {
		t.Fatalf("out-of-order packet delivered early: %+v", got)
	}
	if len(got.buffer) != 1 {
		t.Fatalf("out-of-order packet not buffered: %+v", got)
	}
	if got.acks[len(got.acks)-1] != AckHeader(2) {
		t.Fatal("out-of-order packet not individually acked")
	}
	// Buffered duplicate: re-acked, not double-buffered.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 2, Header: DataHeader(2), Payload: "m2dup"}))
	if got = st.(srRState); len(got.buffer) != 1 {
		t.Fatal("duplicate buffered twice")
	}
	// Sequences 0 and 1 arrive: the in-order prefix 0,1,2 drains at once.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 3, Header: DataHeader(0), Payload: "m0"}))
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 4, Header: DataHeader(1), Payload: "m1"}))
	got = st.(srRState)
	if got.expect != 3 || len(got.pending) != 3 || len(got.buffer) != 0 {
		t.Fatalf("in-order drain wrong: %+v", got)
	}
	if got.pending[0] != "m0" || got.pending[1] != "m1" || got.pending[2] != "m2" {
		t.Fatalf("delivery order wrong: %v", got.pending)
	}
}

func TestSRReceiverBelowWindowReacks(t *testing.T) {
	p := NewSelectiveRepeat(8, 3)
	rx := p.R
	st := rx.Start()
	st = step(t, rx, st, ioa.Wake(ioa.RT))
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: DataHeader(0), Payload: "m0"}))
	nAcks := len(st.(srRState).acks)
	// A late duplicate of sequence 0 (now below the window): re-acked so
	// the transmitter cannot wedge on a lost ack.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 2, Header: DataHeader(0), Payload: "m0late"}))
	got := st.(srRState)
	if len(got.acks) != nAcks+1 {
		t.Fatal("below-window duplicate not re-acked")
	}
	if len(got.pending) != 1 {
		t.Fatal("below-window duplicate delivered")
	}
}

func TestSRCrashResets(t *testing.T) {
	p := NewSelectiveRepeat(4, 2)
	st := step(t, p.T, p.T.Start(), ioa.Wake(ioa.TR))
	st = step(t, p.T, st, ioa.SendMsg(ioa.TR, "x"))
	st = step(t, p.T, st, ioa.Crash(ioa.TR))
	if !ioa.StatesEqual(st, p.T.Start()) {
		t.Error("SR transmitter crash does not reset")
	}
	rst := step(t, p.R, p.R.Start(), ioa.Wake(ioa.RT))
	rst = step(t, p.R, rst, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: DataHeader(1), Payload: "x"}))
	rst = step(t, p.R, rst, ioa.Crash(ioa.RT))
	if !ioa.StatesEqual(rst, p.R.Start()) {
		t.Error("SR receiver crash does not reset")
	}
}

func TestSRParameterValidation(t *testing.T) {
	for _, bad := range [][2]int{{1, 1}, {4, 0}, {4, 3}, {8, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSelectiveRepeat(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			NewSelectiveRepeat(bad[0], bad[1])
		}()
	}
	NewSelectiveRepeat(8, 4) // valid: w = n/2
}

func TestFragSplitJoinRoundTrip(t *testing.T) {
	cases := []struct {
		msg ioa.Message
		f   int
	}{
		{"", 1}, {"", 3}, {"a", 2}, {"abc", 2}, {"abcdef", 3}, {"abcdefg", 3}, {"x", 5},
	}
	for _, c := range cases {
		parts := splitFragments(c.msg, c.f)
		if len(parts) != c.f {
			t.Errorf("splitFragments(%q, %d) produced %d parts", string(c.msg), c.f, len(parts))
		}
		if got := joinFragments(parts); got != c.msg {
			t.Errorf("round trip of %q with f=%d gave %q", string(c.msg), c.f, string(got))
		}
	}
}

func TestFragReceiverAssemblesInOrder(t *testing.T) {
	p := NewFragmenting(4, 3)
	rx := p.R
	st := rx.Start()
	st = step(t, rx, st, ioa.Wake(ioa.RT))
	// Fragments must arrive in order; an out-of-order fragment is ignored
	// and — crucially — never acknowledged.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: fragHeader(0, 1), Payload: "B"}))
	if got := st.(fragRState); len(got.parts) != 0 || len(got.acks) != 0 {
		t.Fatal("out-of-order fragment accepted or acked")
	}
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 2, Header: fragHeader(0, 0), Payload: "A"}))
	if got := st.(fragRState); got.acks[len(got.acks)-1] != fackHeader(0, 0) {
		t.Fatalf("fragment 0 not individually acked: %+v", got)
	}
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 3, Header: fragHeader(0, 1), Payload: "B"}))
	if got := st.(fragRState); len(got.parts) != 2 || len(got.pending) != 0 {
		t.Fatalf("mid-assembly state wrong: %+v", got)
	}
	// A duplicate of an accepted fragment is re-acked, not re-buffered.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 4, Header: fragHeader(0, 0), Payload: "A"}))
	if got := st.(fragRState); len(got.parts) != 2 || got.acks[len(got.acks)-1] != fackHeader(0, 0) {
		t.Fatalf("duplicate fragment handling wrong: %+v", got)
	}
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 5, Header: fragHeader(0, 2), Payload: "C"}))
	got := st.(fragRState)
	if len(got.pending) != 1 || got.pending[0] != "ABC" {
		t.Fatalf("assembly wrong: %+v", got)
	}
	if got.expect != 1 || got.acks[len(got.acks)-1] != fackHeader(0, 2) {
		t.Fatalf("completion bookkeeping wrong: %+v", got)
	}
	// After completion, a stale fragment of the finished message is still
	// re-acked (its fack may have been lost).
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 6, Header: fragHeader(0, 1), Payload: "B"}))
	if got := st.(fragRState); got.acks[len(got.acks)-1] != fackHeader(0, 1) {
		t.Fatalf("stale fragment not re-acked: %+v", got)
	}
}

func TestFragTransmitterRotationAndPerFragmentAcks(t *testing.T) {
	p := NewFragmenting(4, 3)
	tx := p.T
	st := tx.Start()
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	st = step(t, tx, st, ioa.SendMsg(ioa.TR, "ABCDEF"))
	// Exactly one fragment is offered at a time; sending rotates the
	// cursor so fragments take turns: 0, 1, 2, 0, ...
	for _, wantFrag := range []int{0, 1, 2, 0} {
		enabled := tx.Enabled(st)
		if len(enabled) != 1 {
			t.Fatalf("enabled = %v, want exactly one fragment", enabled)
		}
		if enabled[0].Pkt.Header != fragHeader(0, wantFrag) {
			t.Fatalf("offered %s, want fragment %d", enabled[0].Pkt.Header, wantFrag)
		}
		sent := enabled[0]
		sent.Pkt.ID = 99
		st = step(t, tx, st, sent)
	}
	// Acking fragment 1 removes it from the rotation; the message is not
	// popped until all three facks arrive.
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 9, Header: fackHeader(0, 1)}))
	seenFrags := map[ioa.Header]bool{}
	for i := 0; i < 4; i++ {
		enabled := tx.Enabled(st)
		if len(enabled) != 1 {
			t.Fatalf("enabled = %v", enabled)
		}
		seenFrags[enabled[0].Pkt.Header] = true
		sent := enabled[0]
		sent.Pkt.ID = uint64(100 + i)
		st = step(t, tx, st, sent)
	}
	if seenFrags[fragHeader(0, 1)] {
		t.Fatal("acked fragment still in rotation")
	}
	if !seenFrags[fragHeader(0, 0)] || !seenFrags[fragHeader(0, 2)] {
		t.Fatalf("rotation incomplete: %v", seenFrags)
	}
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 10, Header: fackHeader(0, 0)}))
	st = step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 11, Header: fackHeader(0, 2)}))
	if got := st.(fragTState); len(got.queue) != 0 || got.seq != 1 || got.next != 0 {
		t.Fatalf("completion handling wrong: %+v", got)
	}
	// Stale facks for the finished sequence are ignored.
	st2 := step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 12, Header: fackHeader(0, 0)}))
	if !ioa.StatesEqual(st, st2) {
		t.Fatal("stale fack changed state")
	}
}

func TestHandshakeConnectionFlow(t *testing.T) {
	p := NewHandshake()
	tx, rx := p.T, p.R
	ts := step(t, tx, tx.Start(), ioa.Wake(ioa.TR))
	ts = step(t, tx, ts, ioa.SendMsg(ioa.TR, "m"))
	// Unconnected: only syn offered.
	if e := tx.Enabled(ts); len(e) != 1 || e[0].Pkt.Header != SynHeader(0) {
		t.Fatalf("enabled = %v, want syn", e)
	}
	rs := step(t, rx, rx.Start(), ioa.Wake(ioa.RT))
	// Data before handshake: ignored.
	rs2 := step(t, rx, rs, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: DataHeader(0), Payload: "m"}))
	if !ioa.StatesEqual(rs, rs2) {
		t.Fatal("receiver accepted data before handshake")
	}
	rs = step(t, rx, rs, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 2, Header: SynHeader(0)}))
	if got := rs.(hsRState); !got.conn || got.acks[0] != SynAckHeader(0) {
		t.Fatalf("syn handling wrong: %+v", got)
	}
	ts = step(t, tx, ts, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 3, Header: SynAckHeader(0)}))
	if e := tx.Enabled(ts); len(e) != 1 || e[0].Pkt.Header != DataHeader(0) {
		t.Fatalf("post-connect enabled = %v, want data/0", e)
	}
	// Duplicate syn re-acks but does not reset an established connection.
	rs = step(t, rx, rs, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 4, Header: DataHeader(0), Payload: "m"}))
	rs = step(t, rx, rs, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 5, Header: SynHeader(0)}))
	if got := rs.(hsRState); got.expect != 1 {
		t.Fatalf("duplicate syn reset the bit sequence: %+v", got)
	}
}

func TestHandshakeCrashResets(t *testing.T) {
	p := NewHandshake()
	ts := step(t, p.T, p.T.Start(), ioa.Wake(ioa.TR))
	ts = step(t, p.T, ts, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 1, Header: SynAckHeader(0)}))
	ts = step(t, p.T, ts, ioa.Crash(ioa.TR))
	if !ioa.StatesEqual(ts, p.T.Start()) {
		t.Error("handshake transmitter crash does not reset — it must be crashing")
	}
}
