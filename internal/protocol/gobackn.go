package protocol

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ioa"
)

// NewGoBackN returns a Go-Back-N sliding window protocol with sequence
// numbers modulo n and window size w (1 ≤ w ≤ n-1): the classic ARQ shape
// of HDLC, SDLC and LAPB. Acknowledgements are cumulative and carry the
// receiver's next expected sequence number modulo n. The protocol is
// correct over FIFO physical channels, message-independent, crashing,
// 1-bounded, and has the bounded header set {data/i, ack/i : 0 ≤ i < n}.
// It panics if the window parameters are invalid, since that is a caller
// bug, not a runtime condition.
func NewGoBackN(n, w int) core.Protocol {
	if n < 2 || w < 1 || w > n-1 {
		panic(fmt.Sprintf("protocol: invalid Go-Back-N parameters n=%d w=%d (need n ≥ 2, 1 ≤ w ≤ n-1)", n, w))
	}
	headers := make([]ioa.Header, 0, 2*n)
	for i := 0; i < n; i++ {
		headers = append(headers, DataHeader(i), AckHeader(i))
	}
	return core.Protocol{
		Name: fmt.Sprintf("gbn(n=%d,w=%d)", n, w),
		T:    &gbnTransmitter{n: n, w: w},
		R:    &gbnReceiver{n: n},
		Props: core.Properties{
			MessageIndependent: true,
			PayloadOpaque:      true,
			Crashing:           true,
			Headers:            headers,
			KBound:             1,
			RequiresFIFO:       true,
		},
	}
}

// gbnTState is the Go-Back-N transmitter state: base is the absolute
// sequence number of queue[0] (the oldest unacknowledged message); only
// base mod n appears on the wire. The zero value is the start state.
type gbnTState struct {
	awake bool
	base  int
	queue []ioa.Message
}

var (
	_ ioa.EquivState          = gbnTState{}
	_ ioa.AppendFingerprinter = gbnTState{}
)

func (s gbnTState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s gbnTState) AppendFingerprint(dst []byte) []byte {
	return appendXmtrFP(dst, "gbnT", s.awake, s.base, s.queue)
}

func (s gbnTState) EquivFingerprint() string {
	return fmt.Sprintf("gbnT{awake=%t base=%d q=%s}", s.awake, s.base, eqMsgs(s.queue))
}

func (s gbnTState) clone() gbnTState {
	s.queue = cloneMsgs(s.queue)
	return s
}

// gbnTransmitter is A^t of Go-Back-N.
type gbnTransmitter struct {
	n, w int
}

var _ ioa.Automaton = (*gbnTransmitter)(nil)

func (t *gbnTransmitter) Name() string { return fmt.Sprintf("gbn(%d,%d).T", t.n, t.w) }

func (*gbnTransmitter) Signature() ioa.Signature { return core.TransmitterSignature() }

func (*gbnTransmitter) Start() ioa.State { return gbnTState{} }

// windowSize returns how many queued messages are currently transmittable.
func (t *gbnTransmitter) windowSize(s gbnTState) int {
	if len(s.queue) < t.w {
		return len(s.queue)
	}
	return t.w
}

func (t *gbnTransmitter) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(gbnTState)
	if !ok {
		return nil, errBadState(t.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.TR:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.TR:
		return gbnTState{}, nil
	case a.Kind == ioa.KindSendMsg && a.Dir == ioa.TR:
		s = s.clone()
		s.queue = append(s.queue, a.Msg)
		return s, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.RT:
		j, isAck := parse1(a.Pkt.Header, "ack")
		if !isAck {
			return s, nil
		}
		// Cumulative ack: j is the receiver's next expected sequence mod n.
		// diff ∈ [1, window] messages are newly acknowledged; the mod-n
		// ambiguity here is exactly what reordering channels exploit.
		diff := ((j-s.base)%t.n + t.n) % t.n
		if diff >= 1 && diff <= t.windowSize(s) {
			s = s.clone()
			s.queue = s.queue[diff:]
			s.base += diff
		}
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.TR:
		if s.awake {
			for i := 0; i < t.windowSize(s); i++ {
				want := dataPkt(DataHeader((s.base+i)%t.n), s.queue[i])
				if sendPktEnabled(a.Pkt, want) {
					return s, nil
				}
			}
		}
		return nil, errNotEnabled(t.Name(), a)
	default:
		return nil, errNotInSignature(t.Name(), a)
	}
}

func (t *gbnTransmitter) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(gbnTState)
	if !ok || !s.awake {
		return nil
	}
	var out []ioa.Action
	for i := 0; i < t.windowSize(s); i++ {
		out = append(out, ioa.SendPkt(ioa.TR, dataPkt(DataHeader((s.base+i)%t.n), s.queue[i])))
	}
	return out
}

func (*gbnTransmitter) ClassOf(ioa.Action) ioa.Class { return ClassXmit }

func (*gbnTransmitter) Classes() []ioa.Class { return []ioa.Class{ClassXmit} }

// gbnRState is the Go-Back-N receiver state: expect is the absolute next
// expected sequence number (expect mod n on the wire).
type gbnRState struct {
	awake   bool
	expect  int
	acks    []ioa.Header
	pending []ioa.Message
}

var (
	_ ioa.EquivState          = gbnRState{}
	_ ioa.AppendFingerprinter = gbnRState{}
)

func (s gbnRState) Fingerprint() string { return string(s.AppendFingerprint(nil)) }

func (s gbnRState) AppendFingerprint(dst []byte) []byte {
	return appendRcvrFP(dst, "gbnR", s.awake, s.expect, s.acks, s.pending)
}

func (s gbnRState) EquivFingerprint() string {
	return fmt.Sprintf("gbnR{awake=%t exp=%d acks=%s pend=%s}",
		s.awake, s.expect, fpHeaders(s.acks), eqMsgs(s.pending))
}

func (s gbnRState) clone() gbnRState {
	s.acks = cloneHeaders(s.acks)
	s.pending = cloneMsgs(s.pending)
	return s
}

// gbnReceiver is A^r of Go-Back-N.
type gbnReceiver struct {
	n int
}

var _ ioa.Automaton = (*gbnReceiver)(nil)

func (r *gbnReceiver) Name() string { return fmt.Sprintf("gbn(%d).R", r.n) }

func (*gbnReceiver) Signature() ioa.Signature { return core.ReceiverSignature() }

func (*gbnReceiver) Start() ioa.State { return gbnRState{} }

func (r *gbnReceiver) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(gbnRState)
	if !ok {
		return nil, errBadState(r.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.RT:
		return gbnRState{}, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.TR:
		v, isData := parse1(a.Pkt.Header, "data")
		if !isData {
			return s, nil
		}
		s = s.clone()
		if v == s.expect%r.n {
			s.pending = append(s.pending, a.Pkt.Payload)
			s.expect++
		}
		// Cumulative ack of the next expected sequence, one per received
		// data packet so that fair runs quiesce.
		s.acks = append(s.acks, AckHeader(s.expect%r.n))
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.RT:
		if !s.awake || len(s.acks) == 0 || !sendPktEnabled(a.Pkt, ctrlPkt(s.acks[0])) {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.acks = s.acks[1:]
		return s, nil
	case a.Kind == ioa.KindReceiveMsg && a.Dir == ioa.TR:
		if len(s.pending) == 0 || s.pending[0] != a.Msg {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.pending = s.pending[1:]
		return s, nil
	default:
		return nil, errNotInSignature(r.Name(), a)
	}
}

func (r *gbnReceiver) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(gbnRState)
	if !ok {
		return nil
	}
	var out []ioa.Action
	if len(s.pending) > 0 {
		out = append(out, ioa.ReceiveMsg(ioa.TR, s.pending[0]))
	}
	if s.awake && len(s.acks) > 0 {
		out = append(out, ioa.SendPkt(ioa.RT, ctrlPkt(s.acks[0])))
	}
	return out
}

func (*gbnReceiver) ClassOf(a ioa.Action) ioa.Class {
	if a.Kind == ioa.KindReceiveMsg {
		return ClassDeliver
	}
	return ClassAck
}

func (*gbnReceiver) Classes() []ioa.Class { return []ioa.Class{ClassDeliver, ClassAck} }
