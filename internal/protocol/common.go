// Package protocol implements concrete data link protocols as I/O
// automata: the alternating-bit protocol, Go-Back-N sliding window
// (the HDLC/SDLC/LAPB family the paper's introduction discusses),
// Stenning's protocol with unbounded headers, and a Baratz–Segall-style
// protocol with non-volatile memory that escapes the crash impossibility
// theorem.
//
// All protocols are message-independent: their transition functions branch
// only on packet headers, never on payloads or packet IDs, and their state
// fingerprints erase message identities in EquivFingerprint. Packets are
// emitted with ID zero; the runner relabels them with unique (PL2) IDs.
package protocol

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ioa"
)

// Header constructors and parsers shared by the protocols. Headers are the
// only packet information protocols may branch on.

// DataHeader returns the header of a data packet with sequence value s.
func DataHeader(s int) ioa.Header { return ioa.Header("data/" + strconv.Itoa(s)) }

// AckHeader returns the header of an acknowledgement carrying value s.
func AckHeader(s int) ioa.Header { return ioa.Header("ack/" + strconv.Itoa(s)) }

// SynHeader returns the header of an initialization packet for epoch e.
func SynHeader(e int) ioa.Header { return ioa.Header("syn/" + strconv.Itoa(e)) }

// SynAckHeader returns the header of an initialization reply for epoch e.
func SynAckHeader(e int) ioa.Header { return ioa.Header("synack/" + strconv.Itoa(e)) }

// EpochDataHeader returns the header of a data packet with epoch e and
// sequence s.
func EpochDataHeader(e, s int) ioa.Header {
	return ioa.Header("data/" + strconv.Itoa(e) + "/" + strconv.Itoa(s))
}

// EpochAckHeader returns the header of a cumulative ack for epoch e
// acknowledging everything below s.
func EpochAckHeader(e, s int) ioa.Header {
	return ioa.Header("ack/" + strconv.Itoa(e) + "/" + strconv.Itoa(s))
}

// ParseHeader splits a header into its slash-separated fields, returning
// the tag and the integer arguments. ok is false for foreign headers,
// which protocols ignore (input-enabledness requires accepting any
// packet).
func ParseHeader(h ioa.Header) (tag string, args []int, ok bool) {
	parts := strings.Split(string(h), "/")
	if len(parts) < 2 {
		return "", nil, false
	}
	args = make([]int, 0, len(parts)-1)
	for _, p := range parts[1:] {
		v, err := strconv.Atoi(p)
		if err != nil {
			return "", nil, false
		}
		args = append(args, v)
	}
	return parts[0], args, true
}

// parse1 extracts a single-argument header with the given tag.
func parse1(h ioa.Header, tag string) (int, bool) {
	t, args, ok := ParseHeader(h)
	if !ok || t != tag || len(args) != 1 {
		return 0, false
	}
	return args[0], true
}

// parse2 extracts a two-argument header with the given tag.
func parse2(h ioa.Header, tag string) (int, int, bool) {
	t, args, ok := ParseHeader(h)
	if !ok || t != tag || len(args) != 2 {
		return 0, 0, false
	}
	return args[0], args[1], true
}

// Fairness class names shared by the protocol automata.
const (
	// ClassXmit contains a transmitter's data send_pkt actions.
	ClassXmit ioa.Class = "xmit"
	// ClassInit contains a transmitter's initialization send_pkt actions.
	ClassInit ioa.Class = "init"
	// ClassAck contains a receiver's acknowledgement send_pkt actions.
	ClassAck ioa.Class = "ack"
	// ClassDeliver contains a receiver's receive_msg output actions.
	ClassDeliver ioa.Class = "deliver"
)

// fpMsgs renders a message queue exactly for Fingerprint.
func fpMsgs(ms []ioa.Message) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = strconv.Quote(string(m))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// appendMsgs appends fpMsgs' rendering to dst; the AppendFingerprint fast
// paths use the append helpers to avoid intermediate strings.
func appendMsgs(dst []byte, ms []ioa.Message) []byte {
	dst = append(dst, '[')
	for i, m := range ms {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = strconv.AppendQuote(dst, string(m))
	}
	return append(dst, ']')
}

// eqMsgs renders a message queue with identities erased for
// EquivFingerprint: only the queue length is visible to the equivalence.
func eqMsgs(ms []ioa.Message) string {
	return "[#" + strconv.Itoa(len(ms)) + "]"
}

// fpHeaders renders a header queue (headers survive the equivalence).
func fpHeaders(hs []ioa.Header) string {
	parts := make([]string, len(hs))
	for i, h := range hs {
		parts[i] = string(h)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// appendHeaders appends fpHeaders' rendering to dst.
func appendHeaders(dst []byte, hs []ioa.Header) []byte {
	dst = append(dst, '[')
	for i, h := range hs {
		if i > 0 {
			dst = append(dst, ' ')
		}
		dst = append(dst, h...)
	}
	return append(dst, ']')
}

// appendBools appends fpBools' rendering to dst.
func appendBools(dst []byte, bs []bool) []byte {
	dst = append(dst, '[')
	for _, b := range bs {
		if b {
			dst = append(dst, '1')
		} else {
			dst = append(dst, '0')
		}
	}
	return append(dst, ']')
}

// appendInt appends the decimal rendering of v to dst.
func appendInt(dst []byte, v int) []byte { return strconv.AppendInt(dst, int64(v), 10) }

// appendXmtrFP appends the common transmitter fingerprint shape
// "tag{awake=… base=… q=…}" shared by the cumulative-ack transmitters.
func appendXmtrFP(dst []byte, tag string, awake bool, base int, queue []ioa.Message) []byte {
	dst = append(dst, tag...)
	dst = append(dst, "{awake="...)
	dst = strconv.AppendBool(dst, awake)
	dst = append(dst, " base="...)
	dst = appendInt(dst, base)
	dst = append(dst, " q="...)
	dst = appendMsgs(dst, queue)
	return append(dst, '}')
}

// appendRcvrFP appends the common receiver fingerprint shape
// "tag{awake=… exp=… acks=… pend=…}" shared by the in-order receivers.
func appendRcvrFP(dst []byte, tag string, awake bool, expect int, acks []ioa.Header, pending []ioa.Message) []byte {
	dst = append(dst, tag...)
	dst = append(dst, "{awake="...)
	dst = strconv.AppendBool(dst, awake)
	dst = append(dst, " exp="...)
	dst = appendInt(dst, expect)
	dst = append(dst, " acks="...)
	dst = appendHeaders(dst, acks)
	dst = append(dst, " pend="...)
	dst = appendMsgs(dst, pending)
	return append(dst, '}')
}

// cloneMsgs copies a message slice (states are values; steps never alias).
func cloneMsgs(ms []ioa.Message) []ioa.Message {
	if ms == nil {
		return nil
	}
	return append([]ioa.Message(nil), ms...)
}

// cloneHeaders copies a header slice.
func cloneHeaders(hs []ioa.Header) []ioa.Header {
	if hs == nil {
		return nil
	}
	return append([]ioa.Header(nil), hs...)
}

// dataPkt builds an unlabelled data packet (ID assigned by the runner).
func dataPkt(h ioa.Header, payload ioa.Message) ioa.Packet {
	return ioa.Packet{Header: h, Payload: payload}
}

// ctrlPkt builds an unlabelled control packet with no payload.
func ctrlPkt(h ioa.Header) ioa.Packet { return ioa.Packet{Header: h} }

// sendPktEnabled checks a requested send_pkt output against the single
// packet shape the automaton is currently willing to send, ignoring the
// runner-assigned ID (footnote 4: IDs are analysis labels).
func sendPktEnabled(got, want ioa.Packet) bool {
	return got.Header == want.Header && got.Payload == want.Payload
}

// errNotEnabled wraps ioa.ErrNotEnabled with context.
func errNotEnabled(name string, a ioa.Action) error {
	return fmt.Errorf("%w: %s in %s", ioa.ErrNotEnabled, a, name)
}

// errBadState wraps ioa.ErrBadState with context.
func errBadState(name string, got interface{}) error {
	return fmt.Errorf("%w: %s got %T", ioa.ErrBadState, name, got)
}

// errNotInSignature wraps ioa.ErrNotInSignature with context.
func errNotInSignature(name string, a ioa.Action) error {
	return fmt.Errorf("%w: %s for %s", ioa.ErrNotInSignature, a, name)
}
