package protocol

import (
	"repro/internal/core"
	"repro/internal/ioa"
)

// NewStuckABP returns the alternating-bit protocol with the receiver's
// alternating bit stuck: the receiver delivers the payload of *every* data
// packet instead of only packets carrying the expected bit. A single
// retransmission (forced by, say, a lost acknowledgement) therefore
// delivers the same message twice — a (DL4) violation reachable over
// perfectly FIFO channels with loss.
//
// The protocol is deliberately wrong. It exists as a known-bad target for
// the swarm conformance harness and its shrinker: a harness that cannot
// find and minimise this bug is not trustworthy on the correct protocols.
// It is reachable through ByName("abp-stuck") but excluded from Names(),
// so registry-driven sweeps over the correct protocols never pick it up by
// accident.
func NewStuckABP() core.Protocol {
	return core.Protocol{
		Name: "abp-stuck",
		T:    &abpTransmitter{},
		R:    &stuckABPReceiver{},
		Props: core.Properties{
			MessageIndependent: true,
			PayloadOpaque:      true,
			Crashing:           true,
			Headers: []ioa.Header{
				DataHeader(0), DataHeader(1), AckHeader(0), AckHeader(1),
			},
			KBound:       1,
			RequiresFIFO: true,
		},
	}
}

// stuckABPReceiver is the broken A^r: it acknowledges like the real ABP
// receiver but ignores the alternating bit when deciding whether a data
// packet is new, so duplicates are delivered.
type stuckABPReceiver struct{}

var _ ioa.Automaton = (*stuckABPReceiver)(nil)

func (*stuckABPReceiver) Name() string { return "abp-stuck.R" }

func (*stuckABPReceiver) Signature() ioa.Signature { return core.ReceiverSignature() }

func (*stuckABPReceiver) Start() ioa.State { return abpRState{} }

func (r *stuckABPReceiver) Step(st ioa.State, a ioa.Action) (ioa.State, error) {
	s, ok := st.(abpRState)
	if !ok {
		return nil, errBadState(r.Name(), st)
	}
	switch {
	case a.Kind == ioa.KindWake && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = true
		return s, nil
	case a.Kind == ioa.KindFail && a.Dir == ioa.RT:
		s = s.clone()
		s.awake = false
		return s, nil
	case a.Kind == ioa.KindCrash && a.Dir == ioa.RT:
		return abpRState{}, nil
	case a.Kind == ioa.KindReceivePkt && a.Dir == ioa.TR:
		b, isData := parse1(a.Pkt.Header, "data")
		if !isData {
			return s, nil
		}
		s = s.clone()
		// The bug: the b == s.expect check is gone, so every data packet
		// (including a retransmission of one already delivered) is queued
		// for delivery.
		s.pending = append(s.pending, a.Pkt.Payload)
		s.expect = 1 - b
		s.acks = append(s.acks, AckHeader(b))
		return s, nil
	case a.Kind == ioa.KindSendPkt && a.Dir == ioa.RT:
		if !s.awake || len(s.acks) == 0 || !sendPktEnabled(a.Pkt, ctrlPkt(s.acks[0])) {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.acks = s.acks[1:]
		return s, nil
	case a.Kind == ioa.KindReceiveMsg && a.Dir == ioa.TR:
		if len(s.pending) == 0 || s.pending[0] != a.Msg {
			return nil, errNotEnabled(r.Name(), a)
		}
		s = s.clone()
		s.pending = s.pending[1:]
		return s, nil
	default:
		return nil, errNotInSignature(r.Name(), a)
	}
}

func (r *stuckABPReceiver) Enabled(st ioa.State) []ioa.Action {
	s, ok := st.(abpRState)
	if !ok {
		return nil
	}
	var out []ioa.Action
	if len(s.pending) > 0 {
		out = append(out, ioa.ReceiveMsg(ioa.TR, s.pending[0]))
	}
	if s.awake && len(s.acks) > 0 {
		out = append(out, ioa.SendPkt(ioa.RT, ctrlPkt(s.acks[0])))
	}
	return out
}

func (*stuckABPReceiver) ClassOf(a ioa.Action) ioa.Class {
	if a.Kind == ioa.KindReceiveMsg {
		return ClassDeliver
	}
	return ClassAck
}

func (*stuckABPReceiver) Classes() []ioa.Class { return []ioa.Class{ClassDeliver, ClassAck} }
