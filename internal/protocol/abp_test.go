package protocol

import (
	"errors"
	"testing"

	"repro/internal/ioa"
)

func step(t *testing.T, a ioa.Automaton, st ioa.State, act ioa.Action) ioa.State {
	t.Helper()
	next, err := a.Step(st, act)
	if err != nil {
		t.Fatalf("Step(%s): %v", act, err)
	}
	return next
}

func TestABPTransmitterHappyPath(t *testing.T) {
	tx := &abpTransmitter{}
	st := tx.Start()
	if len(tx.Enabled(st)) != 0 {
		t.Error("nothing enabled before wake")
	}
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	st = step(t, tx, st, ioa.SendMsg(ioa.TR, "m1"))
	enabled := tx.Enabled(st)
	if len(enabled) != 1 {
		t.Fatalf("enabled = %v", enabled)
	}
	want := ioa.SendPkt(ioa.TR, ioa.Packet{Header: DataHeader(0), Payload: "m1"})
	if enabled[0] != want {
		t.Fatalf("enabled = %v, want %v", enabled[0], want)
	}
	// Sending is idempotent on state (retransmission-ready), even with a
	// runner-assigned ID.
	sent := enabled[0]
	sent.Pkt.ID = 42
	st2 := step(t, tx, st, sent)
	if !ioa.StatesEqual(st, st2) {
		t.Error("send_pkt changed transmitter state")
	}
	// The matching ack advances the bit and pops the queue.
	st3 := step(t, tx, st2, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 7, Header: AckHeader(0)}))
	if got := st3.(abpTState); got.bit != 1 || len(got.queue) != 0 {
		t.Errorf("after ack: %+v", got)
	}
	if len(tx.Enabled(st3)) != 0 {
		t.Error("nothing to send after the queue empties")
	}
}

func TestABPTransmitterIgnoresStaleAcks(t *testing.T) {
	tx := &abpTransmitter{}
	st := tx.Start()
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	st = step(t, tx, st, ioa.SendMsg(ioa.TR, "m1"))
	// Wrong-bit ack: ignored.
	st2 := step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 1, Header: AckHeader(1)}))
	if !ioa.StatesEqual(st, st2) {
		t.Error("stale ack changed state")
	}
	// Foreign packet: ignored.
	st3 := step(t, tx, st, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 2, Header: "garbage"}))
	if !ioa.StatesEqual(st, st3) {
		t.Error("foreign packet changed state")
	}
	// Ack with empty queue: ignored.
	empty := step(t, tx, tx.Start(), ioa.Wake(ioa.TR))
	empty2 := step(t, tx, empty, ioa.ReceivePkt(ioa.RT, ioa.Packet{ID: 3, Header: AckHeader(0)}))
	if !ioa.StatesEqual(empty, empty2) {
		t.Error("ack on empty queue changed state")
	}
}

func TestABPTransmitterSendGating(t *testing.T) {
	tx := &abpTransmitter{}
	st := tx.Start()
	st = step(t, tx, st, ioa.SendMsg(ioa.TR, "m1")) // accepted while asleep
	if len(tx.Enabled(st)) != 0 {
		t.Error("must not send while asleep")
	}
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	if len(tx.Enabled(st)) != 1 {
		t.Error("should send after wake")
	}
	st = step(t, tx, st, ioa.Fail(ioa.TR))
	if len(tx.Enabled(st)) != 0 {
		t.Error("must not send after fail")
	}
	// Firing a non-enabled send errors.
	if _, err := tx.Step(st, ioa.SendPkt(ioa.TR, ioa.Packet{Header: DataHeader(0), Payload: "m1"})); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Errorf("send while failed: err = %v", err)
	}
	// Wrong bit or payload errors.
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	if _, err := tx.Step(st, ioa.SendPkt(ioa.TR, ioa.Packet{Header: DataHeader(1), Payload: "m1"})); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Errorf("wrong-bit send: err = %v", err)
	}
	if _, err := tx.Step(st, ioa.SendPkt(ioa.TR, ioa.Packet{Header: DataHeader(0), Payload: "other"})); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Errorf("wrong-payload send: err = %v", err)
	}
}

func TestABPCrashResetsToStart(t *testing.T) {
	tx := &abpTransmitter{}
	rx := &abpReceiver{}
	st := tx.Start()
	st = step(t, tx, st, ioa.Wake(ioa.TR))
	st = step(t, tx, st, ioa.SendMsg(ioa.TR, "m1"))
	st = step(t, tx, st, ioa.Crash(ioa.TR))
	if !ioa.StatesEqual(st, tx.Start()) {
		t.Errorf("transmitter crash: %s != start %s", st.Fingerprint(), tx.Start().Fingerprint())
	}
	rst := rx.Start()
	rst = step(t, rx, rst, ioa.Wake(ioa.RT))
	rst = step(t, rx, rst, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: DataHeader(0), Payload: "x"}))
	rst = step(t, rx, rst, ioa.Crash(ioa.RT))
	if !ioa.StatesEqual(rst, rx.Start()) {
		t.Errorf("receiver crash: %s != start", rst.Fingerprint())
	}
}

func TestABPReceiverAcceptRejectAndAck(t *testing.T) {
	rx := &abpReceiver{}
	st := rx.Start()
	st = step(t, rx, st, ioa.Wake(ioa.RT))
	// Expected bit 0: accept, queue ack/0, flip expectation.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 1, Header: DataHeader(0), Payload: "m1"}))
	got := st.(abpRState)
	if got.expect != 1 || len(got.pending) != 1 || len(got.acks) != 1 || got.acks[0] != AckHeader(0) {
		t.Fatalf("after accept: %+v", got)
	}
	// Duplicate (bit 0 again): not accepted, but acked.
	st = step(t, rx, st, ioa.ReceivePkt(ioa.TR, ioa.Packet{ID: 2, Header: DataHeader(0), Payload: "m1-dup"}))
	got = st.(abpRState)
	if len(got.pending) != 1 {
		t.Error("duplicate accepted")
	}
	if len(got.acks) != 2 {
		t.Error("duplicate not acked")
	}
	// Enabled: deliver pending[0] and send acks[0].
	enabled := rx.Enabled(st)
	if len(enabled) != 2 {
		t.Fatalf("enabled = %v", enabled)
	}
	// Delivery pops pending.
	st = step(t, rx, st, ioa.ReceiveMsg(ioa.TR, "m1"))
	if len(st.(abpRState).pending) != 0 {
		t.Error("delivery did not pop pending")
	}
	// Delivering the wrong message errors.
	if _, err := rx.Step(st, ioa.ReceiveMsg(ioa.TR, "nope")); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Errorf("wrong delivery: err = %v", err)
	}
	// Ack send pops the ack queue; acks are not sent while asleep.
	st = step(t, rx, st, ioa.SendPkt(ioa.RT, ioa.Packet{ID: 5, Header: AckHeader(0)}))
	if len(st.(abpRState).acks) != 1 {
		t.Error("ack send did not pop")
	}
	st = step(t, rx, st, ioa.Fail(ioa.RT))
	if len(rx.Enabled(st)) != 0 {
		t.Error("asleep receiver with only acks pending must be idle")
	}
}

func TestABPEquivFingerprintErasesMessages(t *testing.T) {
	tx := &abpTransmitter{}
	a := step(t, tx, tx.Start(), ioa.SendMsg(ioa.TR, "aaa"))
	b := step(t, tx, tx.Start(), ioa.SendMsg(ioa.TR, "zzz"))
	eq, err := ioa.StatesEquivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("states differing only in message content must be equivalent")
	}
	if ioa.StatesEqual(a, b) {
		t.Error("exact fingerprints should differ")
	}
	// Queue length is structural: it must survive the equivalence.
	c := step(t, tx, a, ioa.SendMsg(ioa.TR, "bbb"))
	eq, err = ioa.StatesEquivalent(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("different queue lengths must not be equivalent")
	}
}

func TestABPBadStateAndForeignAction(t *testing.T) {
	tx := &abpTransmitter{}
	if _, err := tx.Step(gbnTState{}, ioa.Wake(ioa.TR)); !errors.Is(err, ioa.ErrBadState) {
		t.Errorf("bad state: err = %v", err)
	}
	if _, err := tx.Step(tx.Start(), ioa.Wake(ioa.RT)); !errors.Is(err, ioa.ErrNotInSignature) {
		t.Errorf("foreign action: err = %v", err)
	}
	rx := &abpReceiver{}
	if _, err := rx.Step(abpTState{}, ioa.Wake(ioa.RT)); !errors.Is(err, ioa.ErrBadState) {
		t.Errorf("bad state: err = %v", err)
	}
}
